package ortoa

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"ortoa/internal/netsim"
)

func newShardedDeployment(t *testing.T, shards int) *ShardedClient {
	t.Helper()
	var clients []*Client
	for i := 0; i < shards; i++ {
		server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { server.Close() })
		link := netsim.Listen(netsim.Loopback)
		go server.Serve(link)
		client, err := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 8, Keys: GenerateKeys()},
			func() (net.Conn, error) { return link.Dial() })
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, client)
	}
	sc, err := NewShardedClient(clients)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc
}

func TestShardedReadWrite(t *testing.T) {
	sc := newShardedDeployment(t, 3)
	data := map[string][]byte{}
	for i := 0; i < 60; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte{byte(i)}
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}
	for k, want := range data {
		got, err := sc.Read(k)
		if err != nil {
			t.Fatalf("read %q: %v", k, err)
		}
		if got[0] != want[0] {
			t.Fatalf("read %q = %v, want %v", k, got, want)
		}
	}
	if err := sc.Write("key-007", []byte{99}); err != nil {
		t.Fatal(err)
	}
	got, _ := sc.Read("key-007")
	if got[0] != 99 {
		t.Errorf("after write = %v", got)
	}
	// Other keys unaffected.
	got, _ = sc.Read("key-008")
	if got[0] != 8 {
		t.Errorf("neighbour key = %v", got)
	}
}

func TestShardedDistribution(t *testing.T) {
	// Keys must actually spread across shards (no shard left empty
	// with enough keys).
	sc := newShardedDeployment(t, 4)
	counts := make(map[*Client]int)
	for i := 0; i < 400; i++ {
		counts[sc.shardFor(fmt.Sprintf("key-%04d", i))]++
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d/4 shards", len(counts))
	}
	for c, n := range counts {
		if n < 40 {
			t.Errorf("shard %p received only %d/400 keys", c, n)
		}
	}
}

func TestShardedConcurrent(t *testing.T) {
	sc := newShardedDeployment(t, 2)
	data := map[string][]byte{}
	for i := 0; i < 16; i++ {
		data[fmt.Sprintf("k%02d", i)] = []byte{byte(i)}
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("k%02d", i)
			got, err := sc.Read(k)
			if err != nil || got[0] != byte(i) {
				t.Errorf("read %q = %v, %v", k, got, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestShardedStateRoundTrip(t *testing.T) {
	sc := newShardedDeployment(t, 2)
	if err := sc.Load(map[string][]byte{"a": {1}, "b": {2}, "c": {3}}); err != nil {
		t.Fatal(err)
	}
	sc.Read("a")
	sc.Read("b")
	prefix := t.TempDir() + "/shards"
	if err := sc.SaveState(prefix); err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadState(prefix); err != nil {
		t.Fatal(err)
	}
	got, err := sc.Read("a")
	if err != nil || !bytes.Equal(got[:1], []byte{1}) {
		t.Errorf("read after state roundtrip = %v, %v", got, err)
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedClient(nil); err == nil {
		t.Error("accepted empty shard list")
	}
	a := deploy(t, ProtocolLBL, 8, nil)
	b := deploy(t, ProtocolLBL, 16, nil)
	if _, err := NewShardedClient([]*Client{a, b}); err == nil {
		t.Error("accepted mismatched value sizes")
	}
}
