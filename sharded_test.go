package ortoa

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"ortoa/internal/netsim"
)

func newShardedDeployment(t *testing.T, shards int) *ShardedClient {
	t.Helper()
	var clients []*Client
	for i := 0; i < shards; i++ {
		server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { server.Close() })
		link := netsim.Listen(netsim.Loopback)
		go server.Serve(link)
		client, err := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 8, Keys: GenerateKeys()},
			func() (net.Conn, error) { return link.Dial() })
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, client)
	}
	sc, err := NewShardedClient(clients)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc
}

func TestShardedReadWrite(t *testing.T) {
	sc := newShardedDeployment(t, 3)
	data := map[string][]byte{}
	for i := 0; i < 60; i++ {
		data[fmt.Sprintf("key-%03d", i)] = []byte{byte(i)}
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}
	for k, want := range data {
		got, err := sc.Read(k)
		if err != nil {
			t.Fatalf("read %q: %v", k, err)
		}
		if got[0] != want[0] {
			t.Fatalf("read %q = %v, want %v", k, got, want)
		}
	}
	if err := sc.Write("key-007", []byte{99}); err != nil {
		t.Fatal(err)
	}
	got, _ := sc.Read("key-007")
	if got[0] != 99 {
		t.Errorf("after write = %v", got)
	}
	// Other keys unaffected.
	got, _ = sc.Read("key-008")
	if got[0] != 8 {
		t.Errorf("neighbour key = %v", got)
	}
}

func TestShardedDistribution(t *testing.T) {
	// Keys must actually spread across shards (no shard left empty
	// with enough keys).
	sc := newShardedDeployment(t, 4)
	counts := make(map[*Client]int)
	for i := 0; i < 400; i++ {
		counts[sc.shardFor(fmt.Sprintf("key-%04d", i))]++
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d/4 shards", len(counts))
	}
	for c, n := range counts {
		if n < 40 {
			t.Errorf("shard %p received only %d/400 keys", c, n)
		}
	}
}

func TestShardedConcurrent(t *testing.T) {
	sc := newShardedDeployment(t, 2)
	data := map[string][]byte{}
	for i := 0; i < 16; i++ {
		data[fmt.Sprintf("k%02d", i)] = []byte{byte(i)}
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := fmt.Sprintf("k%02d", i)
			got, err := sc.Read(k)
			if err != nil || got[0] != byte(i) {
				t.Errorf("read %q = %v, %v", k, got, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestShardedPlacementAgreement(t *testing.T) {
	// Load and the access paths must agree on which shard owns a key,
	// including keys chosen to stress the hash: empty, NUL bytes,
	// non-ASCII, and very long. If placement diverged, the access would
	// land on a shard that never loaded the key and fail.
	sc := newShardedDeployment(t, 5)
	adversarial := []string{
		"",
		"\x00",
		"\x00\x00\x00\x00",
		"a\x00b",
		"\xff\xfe\xfd",
		"key-with-ünïcödé-✓",
		string(bytes.Repeat([]byte("x"), 4096)),
	}
	data := map[string][]byte{}
	for i, k := range adversarial {
		data[k] = []byte{byte(i + 1)}
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}
	for i, k := range adversarial {
		got, err := sc.Read(k)
		if err != nil {
			t.Fatalf("read adversarial key %d (%q): %v", i, k, err)
		}
		if got[0] != byte(i+1) {
			t.Errorf("adversarial key %d read %v, want %d", i, got, i+1)
		}
		if err := sc.Write(k, []byte{byte(i + 100)}); err != nil {
			t.Fatalf("write adversarial key %d: %v", i, err)
		}
	}
	// shardIndex must be deterministic across calls.
	for _, k := range adversarial {
		a, b := sc.shardIndex(k), sc.shardIndex(k)
		if a != b {
			t.Fatalf("shardIndex(%q) unstable: %d then %d", k, a, b)
		}
	}
}

func TestShardedReadBatchOrder(t *testing.T) {
	// Batch results must come back in input order even though keys
	// scatter across shards and shards run in parallel.
	sc := newShardedDeployment(t, 3)
	data := map[string][]byte{}
	var keys []string
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("key-%03d", i)
		data[k] = []byte{byte(i)}
		keys = append(keys, k)
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}
	pairs, err := sc.ReadBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(keys) {
		t.Fatalf("got %d pairs, want %d", len(pairs), len(keys))
	}
	for i, p := range pairs {
		if p.Key != keys[i] {
			t.Errorf("pair %d key = %q, want %q", i, p.Key, keys[i])
		}
		if p.Value[0] != byte(i) {
			t.Errorf("pair %d value = %v, want %d", i, p.Value, i)
		}
	}
}

func TestShardedWriteBatchThenReadBatch(t *testing.T) {
	sc := newShardedDeployment(t, 2)
	data := map[string][]byte{}
	var keys []string
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("key-%02d", i)
		data[k] = []byte{0}
		keys = append(keys, k)
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}
	updates := map[string][]byte{}
	for i, k := range keys {
		updates[k] = []byte{byte(i + 50)}
	}
	if err := sc.WriteBatch(updates); err != nil {
		t.Fatal(err)
	}
	pairs, err := sc.ReadBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if p.Value[0] != byte(i+50) {
			t.Errorf("key %q = %v after batch write, want %d", p.Key, p.Value, i+50)
		}
	}
}

func TestShardedStateRoundTrip(t *testing.T) {
	sc := newShardedDeployment(t, 2)
	if err := sc.Load(map[string][]byte{"a": {1}, "b": {2}, "c": {3}}); err != nil {
		t.Fatal(err)
	}
	sc.Read("a")
	sc.Read("b")
	prefix := t.TempDir() + "/shards"
	if err := sc.SaveState(prefix); err != nil {
		t.Fatal(err)
	}
	if err := sc.LoadState(prefix); err != nil {
		t.Fatal(err)
	}
	got, err := sc.Read("a")
	if err != nil || !bytes.Equal(got[:1], []byte{1}) {
		t.Errorf("read after state roundtrip = %v, %v", got, err)
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedClient(nil); err == nil {
		t.Error("accepted empty shard list")
	}
	a := deploy(t, ProtocolLBL, 8, nil)
	b := deploy(t, ProtocolLBL, 16, nil)
	if _, err := NewShardedClient([]*Client{a, b}); err == nil {
		t.Error("accepted mismatched value sizes")
	}
}

// TestShardedReadRange checks that range reads hold across the
// partition: consecutive keys scatter over shards (FNV placement),
// and the merged result must still be the globally ordered run — in
// particular across shard boundaries, where the next key lives on a
// different shard than its predecessor.
func TestShardedReadRange(t *testing.T) {
	const total = 40
	sc := newShardedDeployment(t, 3)
	data := map[string][]byte{}
	var keys []string
	for i := 0; i < total; i++ {
		k := fmt.Sprintf("key-%03d", i)
		data[k] = []byte{byte(i)}
		keys = append(keys, k)
	}
	if err := sc.Load(data); err != nil {
		t.Fatal(err)
	}

	// Sanity: the interesting case needs consecutive keys on
	// different shards, which FNV placement gives many of here.
	straddles := false
	for i := 1; i < total; i++ {
		if sc.shardIndex(keys[i-1]) != sc.shardIndex(keys[i]) {
			straddles = true
			break
		}
	}
	if !straddles {
		t.Fatal("test data never crosses a shard boundary; pick different keys")
	}

	check := func(start string, limit int, want []string) {
		t.Helper()
		pairs, err := sc.ReadRange(start, limit)
		if err != nil {
			t.Fatalf("ReadRange(%q, %d): %v", start, limit, err)
		}
		if len(pairs) != len(want) {
			t.Fatalf("ReadRange(%q, %d) returned %d pairs, want %d", start, limit, len(pairs), len(want))
		}
		for i, p := range pairs {
			if p.Key != want[i] {
				t.Fatalf("ReadRange(%q, %d)[%d] = %q, want %q (global order broken)", start, limit, i, p.Key, want[i])
			}
			wantByte := data[want[i]][0]
			if p.Value[0] != wantByte {
				t.Errorf("ReadRange(%q, %d)[%d] value = %v, want %d", start, limit, i, p.Value, wantByte)
			}
		}
	}

	check("key-000", 7, keys[0:7])    // from the first key
	check("key-010", 11, keys[10:21]) // interior run
	check("key-0105", 4, keys[11:15]) // start between keys rounds up
	check("key-035", 20, keys[35:])   // limit past the end truncates
	check("zzz", 5, nil)              // start past every key
	check("key-020", 1, keys[20:21])  // single key
	if pairs, err := sc.ReadRange("key-000", 0); err != nil || pairs != nil {
		t.Errorf("ReadRange limit 0 = %v, %v, want nil, nil", pairs, err)
	}
	// The whole keyspace in one range.
	check("", total, keys)
}
