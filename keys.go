package ortoa

import (
	"encoding/json"
	"fmt"
	"os"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
)

// Keys holds the trusted side's secrets. The PRF key encodes object
// keys (and derives LBL labels); the data key encrypts values for the
// TEE and baseline protocols. The untrusted server never sees either.
type Keys struct {
	// PRFKey is the 32-byte master PRF secret.
	PRFKey []byte `json:"prf_key"`
	// DataKey is the 16-byte AES key for value encryption.
	DataKey []byte `json:"data_key"`
	// FHESecretKey is the BFV secret key (ProtocolFHE only; generated
	// on first use if empty).
	FHESecretKey []byte `json:"fhe_secret_key,omitempty"`
}

// GenerateKeys returns fresh random keys.
func GenerateKeys() Keys {
	return Keys{
		PRFKey:  prf.NewRandom().Key(),
		DataKey: secretbox.NewRandomKey(),
	}
}

func (k Keys) validate() error {
	if len(k.PRFKey) != prf.KeySize {
		return fmt.Errorf("ortoa: PRF key must be %d bytes, got %d", prf.KeySize, len(k.PRFKey))
	}
	switch len(k.DataKey) {
	case 16, 24, 32:
	default:
		return fmt.Errorf("ortoa: data key must be 16, 24, or 32 bytes, got %d", len(k.DataKey))
	}
	return nil
}

// Save writes the keys to path as JSON with owner-only permissions.
func (k Keys) Save(path string) error {
	data, err := json.MarshalIndent(k, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// LoadKeys reads keys saved with Save.
func LoadKeys(path string) (Keys, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Keys{}, err
	}
	var k Keys
	if err := json.Unmarshal(data, &k); err != nil {
		return Keys{}, fmt.Errorf("ortoa: parsing %s: %w", path, err)
	}
	if err := k.validate(); err != nil {
		return Keys{}, err
	}
	return k, nil
}

// LoadOrGenerateKeys loads keys from path, generating and saving a
// fresh set if the file does not exist.
func LoadOrGenerateKeys(path string) (Keys, error) {
	if _, err := os.Stat(path); os.IsNotExist(err) {
		k := GenerateKeys()
		if err := k.Save(path); err != nil {
			return Keys{}, err
		}
		return k, nil
	}
	return LoadKeys(path)
}
