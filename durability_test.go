package ortoa

import (
	"bytes"
	"net"
	"os"
	"strings"
	"testing"

	"ortoa/internal/netsim"
)

// TestDurableServerRestart is the operational scenario the durability
// API exists for: a server journaling under group commit is killed
// without a clean shutdown (no DetachWAL), a replacement recovers the
// state directory, and a proxy resuming from a stale counter snapshot
// reconciles and keeps serving — with no acknowledged write lost.
func TestDurableServerRestart(t *testing.T) {
	dir := t.TempDir() + "/state"
	keys := GenerateKeys()
	open := func() (*Server, *netsim.Listener) {
		t.Helper()
		server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := server.OpenState(dir, DurabilityOptions{Fsync: FsyncGroupCommit}); err != nil {
			t.Fatal(err)
		}
		l := netsim.Listen(netsim.Loopback)
		go server.Serve(l)
		return server, l
	}

	s1, l1 := open()
	dial1 := func() (net.Conn, error) { return l1.Dial() }
	c1, err := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 8, Keys: keys}, dial1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Load(map[string][]byte{"a": []byte("initial!"), "b": []byte("other..!")}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if gen := s1.Generation(); gen != 1 {
		t.Fatalf("generation after checkpoint = %d, want 1", gen)
	}
	statePath := t.TempDir() + "/proxy.state"
	if err := c1.SaveState(statePath); err != nil {
		t.Fatal(err)
	}
	// Writes after the snapshot: acknowledged, so they must survive the
	// crash, but the saved counters don't know about them.
	if err := c1.Write("a", []byte("updated!")); err != nil {
		t.Fatal(err)
	}
	if err := c1.Write("a", []byte("latest..")); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	s1.Close() // kill: no DetachWAL, no snapshot save

	s2, l2 := open()
	defer s2.Close()
	if s2.Records() != 2 {
		t.Fatalf("recovered %d records, want 2", s2.Records())
	}
	dial2 := func() (net.Conn, error) { return l2.Dial() }
	c2, err := NewClient(ClientConfig{
		Protocol: ProtocolLBL, ValueSize: 8, Keys: keys,
		ReconcileScan: 8, // the stale snapshot trails by the two writes
	}, dial2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.LoadState(statePath); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Read("a")
	if err != nil {
		t.Fatalf("read after crash recovery: %v", err)
	}
	if !bytes.Equal(got, []byte("latest..")) {
		t.Errorf("read after crash recovery = %q, want the last acknowledged write", got)
	}
	if err := c2.Write("b", []byte("again..!")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c2.Read("b"); !bytes.Equal(got, []byte("again..!")) {
		t.Errorf("write after recovery = %q", got)
	}
}

// TestSaveStateAtomic: SaveState must replace an existing snapshot via
// temp-file rename, leaving no partial state or stray temp files.
func TestSaveStateAtomic(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	if err := client.Load(map[string][]byte{"k": []byte("x")}); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/proxy.state"
	for i := 0; i < 3; i++ {
		if _, err := client.Read("k"); err != nil {
			t.Fatal(err)
		}
		if err := client.SaveState(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "proxy.state" {
			t.Errorf("stray file %q after SaveState (non-atomic temp left behind)", e.Name())
		}
	}
	if err := client.LoadState(path); err != nil {
		t.Errorf("reloading saved state: %v", err)
	}
}

// TestOpenStateRejectsBadPolicy guards the config surface.
func TestOpenStateRejectsBadPolicy(t *testing.T) {
	server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	err = server.OpenState(t.TempDir()+"/s", DurabilityOptions{Fsync: "sometimes"})
	if err == nil || !strings.Contains(err.Error(), "unknown fsync policy") {
		t.Errorf("OpenState with bad policy = %v", err)
	}
}
