package ortoa

import (
	"errors"
	"net"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// A ProxyGroupMember names one proxy of a multi-proxy deployment and
// how to reach it. Name must match the name the proxy claimed its
// ranges under (ClaimOwnedRanges / ortoa-proxy -peers) — the group
// places keys on the same consistent-hash ring the proxies partitioned
// ownership over, so matching names mean the first attempt lands on
// the range's owner instead of paying a redirect.
type ProxyGroupMember struct {
	Name string
	Dial func() (net.Conn, error)
}

// ProxyGroupOptions tunes a ProxyGroup; the zero value gets sane
// defaults (2 connections per member, no deadline, no retries).
type ProxyGroupOptions struct {
	// Conns sizes the connection pool to each member (default 2).
	Conns int
	// CallTimeout bounds each request attempt to one proxy; zero means
	// no deadline. Set it in failover deployments — it is what turns a
	// silently dead proxy into a prompt failover instead of a hang.
	CallTimeout time.Duration
	// RetryAttempts is the total number of attempts per request to one
	// member, including the first; values below 2 disable retries.
	// Retries are at-most-once (see ClientConfig.RetryAttempts).
	// Failover to other members happens above this, per access.
	RetryAttempts int
	// ProbeInterval is the health-prober tick for members marked down
	// (default 100ms). Probes back off exponentially per member.
	ProbeInterval time.Duration
	// BusyBreaker is the number of consecutive busy rejections (IsBusy)
	// from one member before the group circuit-breaks it: accesses to
	// that member fail fast with IsBusy — no wire round trip — until
	// its retry-after window passes, so a saturated proxy drains
	// instead of being hammered. Busy rejections never fail over to a
	// peer (the peer would adopt the key's counter range, and overload
	// would turn into ownership ping-pong); callers back off and retry.
	// Default 3.
	BusyBreaker int
	// Metrics, when non-nil, registers the group's routing metrics
	// (ortoa_router_*: redirects, failovers, probes, healthy members).
	Metrics *obs.Registry
}

// A ProxyGroup is an end-user handle over several trusted proxies with
// live failover: each access is steered to the proxy owning the key's
// counter range, a dead member is routed around immediately and
// re-admitted by background probes once it answers again, and
// ownership rejections (epoch fences during a handoff) redirect to the
// adopting peer. It holds no secrets and is safe for concurrent use.
//
// Error contract: an access that fails definitively on every reachable
// member returns that error; an access whose outcome is unknown on any
// member (connection died mid-round) returns an error for which
// Ambiguous reports true — the write may or may not have applied.
type ProxyGroup struct {
	router *core.Router
}

// DialProxyGroup connects to a set of proxies with client-side
// failover. Members that are down at dial time start unhealthy and are
// picked up by the prober; only an empty member list is an error.
func DialProxyGroup(members []ProxyGroupMember, opts ProxyGroupOptions) (*ProxyGroup, error) {
	conns := opts.Conns
	if conns <= 0 {
		conns = 2
	}
	rms := make([]core.RouterMember, len(members))
	for i, m := range members {
		rms[i] = core.RouterMember{Name: m.Name, Dial: m.Dial}
	}
	router, err := core.NewRouter(rms, core.RouterOptions{
		Client: transport.Options{
			PoolSize:    conns,
			CallTimeout: opts.CallTimeout,
			Retry:       transport.RetryPolicy{Attempts: opts.RetryAttempts},
		},
		ProbeInterval: opts.ProbeInterval,
		BusyBreaker:   opts.BusyBreaker,
		Metrics:       opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &ProxyGroup{router: router}, nil
}

// Read fetches the value stored under key via the key's owning proxy,
// failing over to peers as needed.
func (g *ProxyGroup) Read(key string) ([]byte, error) {
	v, _, err := g.router.Access(core.OpRead, key, nil)
	return v, err
}

// Write replaces the value stored under key via the key's owning
// proxy, failing over to peers as needed. The value must already match
// the store's fixed size (the proxy rejects mismatches). On an
// Ambiguous error the write may or may not have applied; rewriting the
// same value is always safe.
func (g *ProxyGroup) Write(key string, value []byte) error {
	_, _, err := g.router.Access(core.OpWrite, key, value)
	return err
}

// Ambiguous reports whether err left an access's outcome unknown (the
// connection died after the request may have reached a proxy). Definite
// rejections — unknown key, size mismatch, every-member-down — report
// false: those accesses did not happen.
func Ambiguous(err error) bool {
	// Every member unreachable means no request was ever sent; the
	// transport layer's conservative default would call this unknown,
	// but the router knows the access definitely did not execute. (When
	// any attempt's outcome was unknown, the router surfaces that
	// attempt's error instead of ErrNoProxies.)
	if errors.Is(err, core.ErrNoProxies) {
		return false
	}
	return transport.Ambiguous(err)
}

// IsBusy reports whether err is an overload rejection: the access was
// shed by admission control — on a proxy front end or on the storage
// server behind it — before executing. Busy is a definite outcome
// (Ambiguous reports false for it): nothing happened, and the caller
// should back off before retrying, ideally by the BusyError's
// RetryAfter hint. A ProxyGroup does not fail busy accesses over to
// peers (see ProxyGroupOptions.BusyBreaker); backing off and retrying
// the same call is the intended response.
func IsBusy(err error) bool { return transport.IsBusy(err) }

// Close stops the health prober and releases every member connection.
func (g *ProxyGroup) Close() error { return g.router.Close() }
