package ortoa

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"

	"ortoa/internal/netsim"
)

// deploy starts a server and returns a connected client for the
// given protocol over an in-memory link.
func deploy(t *testing.T, protocol Protocol, valueSize int, tweak func(*ClientConfig, *ServerConfig)) *Client {
	t.Helper()
	scfg := ServerConfig{Protocol: protocol, ValueSize: valueSize}
	ccfg := ClientConfig{Protocol: protocol, ValueSize: valueSize, Keys: GenerateKeys()}
	if tweak != nil {
		tweak(&ccfg, &scfg)
	}
	server, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	l := netsim.Listen(netsim.Loopback)
	go server.Serve(l)
	t.Cleanup(func() { server.Close() })

	client, err := NewClient(ccfg, func() (net.Conn, error) { return l.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	if protocol == ProtocolTEE {
		if err := client.Provision(); err != nil {
			t.Fatal(err)
		}
	}
	return client
}

func allProtocols() []Protocol {
	return []Protocol{ProtocolLBL, ProtocolTEE, ProtocolFHE, ProtocolBaseline2RTT}
}

func fheTestTweak(ccfg *ClientConfig, scfg *ServerConfig) {
	opts := FHEOptions{RingDegree: 64, ModulusBits: 220}
	ccfg.FHE, scfg.FHE = opts, opts
}

func TestEndToEndAllProtocols(t *testing.T) {
	for _, p := range allProtocols() {
		t.Run(string(p), func(t *testing.T) {
			var tweak func(*ClientConfig, *ServerConfig)
			if p == ProtocolFHE {
				tweak = fheTestTweak
			}
			client := deploy(t, p, 16, tweak)
			if err := client.Load(map[string][]byte{
				"alice": []byte("balance=100"),
				"bob":   []byte("balance=250"),
			}); err != nil {
				t.Fatal(err)
			}
			got, err := client.Read("alice")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte("balance=100")) {
				t.Errorf("Read(alice) = %q", got)
			}
			if err := client.Write("alice", []byte("balance=42")); err != nil {
				t.Fatal(err)
			}
			got, err = client.Read("alice")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte("balance=42")) {
				t.Errorf("Read after Write = %q", got)
			}
			// Untouched key unaffected.
			got, err = client.Read("bob")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte("balance=250")) {
				t.Errorf("Read(bob) = %q", got)
			}
		})
	}
}

func TestLBLVariants(t *testing.T) {
	for _, v := range []LBLVariant{LBLBasic, LBLSpaceOpt, LBLPointPermute, LBLWide, LBLWidePointPermute} {
		t.Run(string(v), func(t *testing.T) {
			client := deploy(t, ProtocolLBL, 8, func(c *ClientConfig, _ *ServerConfig) {
				c.LBLVariant = v
			})
			if err := client.Load(map[string][]byte{"k": []byte("12345678")}); err != nil {
				t.Fatal(err)
			}
			got, err := client.Read("k")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "12345678" {
				t.Errorf("Read = %q", got)
			}
		})
	}
}

func TestWritePadding(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	if err := client.Load(map[string][]byte{"k": []byte("x")}); err != nil {
		t.Fatal(err)
	}
	got, err := client.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte("x"), make([]byte, 7)...)
	if !bytes.Equal(got, want) {
		t.Errorf("padded read = %v", got)
	}
	if err := client.Write("k", bytes.Repeat([]byte{1}, 9)); err == nil {
		t.Error("Write accepted oversize value")
	}
}

func TestConcurrentClients(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	data := map[string][]byte{}
	for i := 0; i < 8; i++ {
		data[fmt.Sprintf("k%d", i)] = []byte{byte(i)}
	}
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			for j := 0; j < 5; j++ {
				got, err := client.Read(key)
				if err != nil {
					t.Error(err)
					return
				}
				if got[0] != byte(i) {
					t.Errorf("Read(%s) = %v", key, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestServerStats(t *testing.T) {
	scfg := ServerConfig{Protocol: ProtocolLBL, ValueSize: 8}
	server, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	l := netsim.Listen(netsim.Loopback)
	go server.Serve(l)
	client, err := NewClient(ClientConfig{ValueSize: 8, Keys: GenerateKeys()},
		func() (net.Conn, error) { return l.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Load(map[string][]byte{"a": {1}, "b": {2}}); err != nil {
		t.Fatal(err)
	}
	if got := server.Records(); got != 2 {
		t.Errorf("Records = %d", got)
	}
	if server.StorageBytes() <= 0 {
		t.Error("StorageBytes not positive")
	}
}

func TestServerSnapshotRoundTrip(t *testing.T) {
	scfg := ServerConfig{Protocol: ProtocolTEE, ValueSize: 8}
	server, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	l := netsim.Listen(netsim.Loopback)
	go server.Serve(l)
	keys := GenerateKeys()
	client, err := NewClient(ClientConfig{Protocol: ProtocolTEE, ValueSize: 8, Keys: keys},
		func() (net.Conn, error) { return l.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Provision(); err != nil {
		t.Fatal(err)
	}
	if err := client.Load(map[string][]byte{"k": []byte("persist!")}); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/store.snap"
	if err := server.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	// Fresh server restores the snapshot; same keys decrypt it.
	server2, err := NewServer(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Close()
	if err := server2.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	l2 := netsim.Listen(netsim.Loopback)
	go server2.Serve(l2)
	client2, err := NewClient(ClientConfig{Protocol: ProtocolTEE, ValueSize: 8, Keys: keys},
		func() (net.Conn, error) { return l2.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if err := client2.Provision(); err != nil {
		t.Fatal(err)
	}
	got, err := client2.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist!" {
		t.Errorf("restored Read = %q", got)
	}
}

func TestFHESecretKeyReuse(t *testing.T) {
	opts := FHEOptions{RingDegree: 64, ModulusBits: 220}
	server, err := NewServer(ServerConfig{Protocol: ProtocolFHE, ValueSize: 8, FHE: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	l := netsim.Listen(netsim.Loopback)
	go server.Serve(l)

	keys := GenerateKeys()
	c1, err := NewClient(ClientConfig{Protocol: ProtocolFHE, ValueSize: 8, Keys: keys, FHE: opts},
		func() (net.Conn, error) { return l.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Load(map[string][]byte{"k": []byte("87654321")}); err != nil {
		t.Fatal(err)
	}
	keys.FHESecretKey = c1.FHESecretKey()
	c1.Close()

	// A second trusted party with the shared secret key can read.
	c2, err := NewClient(ClientConfig{Protocol: ProtocolFHE, ValueSize: 8, Keys: keys, FHE: opts},
		func() (net.Conn, error) { return l.Dial() })
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.Read("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "87654321" {
		t.Errorf("shared-key Read = %q", got)
	}
}

func TestKeysSaveLoad(t *testing.T) {
	k := GenerateKeys()
	path := t.TempDir() + "/keys.json"
	if err := k.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.PRFKey, k.PRFKey) || !bytes.Equal(got.DataKey, k.DataKey) {
		t.Error("keys roundtrip mismatch")
	}
}

func TestLoadOrGenerateKeys(t *testing.T) {
	path := t.TempDir() + "/keys.json"
	k1, err := LoadOrGenerateKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := LoadOrGenerateKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k1.PRFKey, k2.PRFKey) {
		t.Error("second LoadOrGenerateKeys regenerated keys")
	}
}

func TestLoadKeysRejectsGarbage(t *testing.T) {
	path := t.TempDir() + "/bad.json"
	if err := (Keys{PRFKey: []byte{1}, DataKey: []byte{2}}).Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeys(path); err == nil {
		t.Error("LoadKeys accepted invalid key sizes")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{Protocol: ProtocolLBL}); err == nil {
		t.Error("NewServer accepted zero ValueSize")
	}
	if _, err := NewServer(ServerConfig{Protocol: "quantum", ValueSize: 8}); err == nil {
		t.Error("NewServer accepted unknown protocol")
	}
	if _, err := NewClient(ClientConfig{ValueSize: 8}, nil); err == nil {
		t.Error("NewClient accepted empty keys")
	}
	if _, err := NewClient(ClientConfig{ValueSize: 8, Keys: Keys{PRFKey: []byte{1}, DataKey: []byte{2}}}, nil); err == nil {
		t.Error("NewClient accepted bad key sizes")
	}
}

func TestProvisionOnlyForTEE(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	if err := client.Provision(); err == nil {
		t.Error("Provision succeeded on LBL client")
	}
}
