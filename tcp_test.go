package ortoa

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
)

// TestRealTCPDeployment runs the full three-tier deployment —
// end-user → proxy → server — over actual TCP sockets on loopback,
// exercising everything the netsim-based tests exercise plus the real
// network stack the binaries use.
func TestRealTCPDeployment(t *testing.T) {
	keys := GenerateKeys()

	// Untrusted server.
	server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	serverLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go server.Serve(serverLn)
	serverAddr := serverLn.Addr().String()

	// Trusted proxy.
	client, err := NewClient(ClientConfig{
		Protocol: ProtocolLBL, ValueSize: 32, Keys: keys, Conns: 4,
	}, func() (net.Conn, error) { return net.Dial("tcp", serverAddr) })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	data := map[string][]byte{}
	for i := 0; i < 32; i++ {
		data[fmt.Sprintf("acct-%03d", i)] = []byte(fmt.Sprintf("balance=%d", i*100))
	}
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}

	proxyLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go client.ServeProxy(proxyLn)
	proxyAddr := proxyLn.Addr().String()

	// End users (no secrets), concurrent.
	users, err := DialProxy(func() (net.Conn, error) { return net.Dial("tcp", proxyAddr) }, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer users.Close()

	var wg sync.WaitGroup
	for u := 0; u < 8; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			key := fmt.Sprintf("acct-%03d", u)
			got, err := users.Read(key)
			if err != nil {
				t.Errorf("user %d read: %v", u, err)
				return
			}
			want := fmt.Sprintf("balance=%d", u*100)
			if !bytes.HasPrefix(got, []byte(want)) {
				t.Errorf("user %d read %q, want prefix %q", u, got, want)
				return
			}
			newVal := make([]byte, 32)
			copy(newVal, fmt.Sprintf("balance=%d", u*100+1))
			if err := users.Write(key, newVal); err != nil {
				t.Errorf("user %d write: %v", u, err)
			}
		}(u)
	}
	wg.Wait()

	got, err := users.Read("acct-003")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(got, []byte("balance=301")) {
		t.Errorf("final read = %q", got)
	}
}

// TestTCPServerCrashRestartWithWAL simulates the server crashing (no
// snapshot save) and recovering its records from the write-ahead log.
func TestTCPServerCrashRestartWithWAL(t *testing.T) {
	keys := GenerateKeys()
	walPath := t.TempDir() + "/server.wal"
	statePath := t.TempDir() + "/proxy.state"

	run := func(load bool, fn func(c *Client)) {
		server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		if err := server.AttachWAL(walPath); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go server.Serve(ln)
		addr := ln.Addr().String()

		client, err := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 16, Keys: keys},
			func() (net.Conn, error) { return net.Dial("tcp", addr) })
		if err != nil {
			t.Fatal(err)
		}
		if load {
			if err := client.Load(map[string][]byte{"k": []byte("first-value")}); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := client.LoadState(statePath); err != nil {
				t.Fatal(err)
			}
		}
		fn(client)
		if err := client.SaveState(statePath); err != nil {
			t.Fatal(err)
		}
		client.Close()
		// "Crash": no snapshot — only the WAL survives.
		if err := server.DetachWAL(); err != nil {
			t.Fatal(err)
		}
		server.Close()
		ln.Close()
	}

	run(true, func(c *Client) {
		if err := c.Write("k", []byte("updated-value")); err != nil {
			t.Fatal(err)
		}
	})
	run(false, func(c *Client) {
		got, err := c.Read("k")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(got, []byte("updated-value")) {
			t.Errorf("after WAL recovery, read = %q", got)
		}
	})
}
