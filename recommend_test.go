package ortoa

import (
	"testing"
	"time"
)

func TestRecommendTEEWhenAvailable(t *testing.T) {
	rec, err := Recommend(Deployment{RTT: 20 * time.Millisecond, ValueSize: 160, TEEAvailable: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Protocol != ProtocolTEE {
		t.Errorf("Protocol = %s, want tee", rec.Protocol)
	}
}

func TestRecommendLBLSmallValuesLongLink(t *testing.T) {
	// The Fig 3d scenario: EU server (147.7ms), 300B values → LBL.
	rec, err := Recommend(Deployment{
		RTT: 147730 * time.Microsecond, Bandwidth: 12 << 20, ValueSize: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Protocol != ProtocolLBL {
		t.Errorf("EU/300B: Protocol = %s (c=%v p=%v o=%v), want lbl", rec.Protocol, rec.C, rec.P, rec.O)
	}
}

func TestRecommendBaselineLargeValuesShortLink(t *testing.T) {
	// §6.3.2's closing observation: low RTT + large values (images,
	// videos) → the 2RTT baseline wins.
	rec, err := Recommend(Deployment{
		RTT: 5 * time.Millisecond, Bandwidth: 12 << 20, ValueSize: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Protocol != ProtocolBaseline2RTT {
		t.Errorf("short/4KB: Protocol = %s (c=%v p=%v o=%v), want 2rtt", rec.Protocol, rec.C, rec.P, rec.O)
	}
}

func TestRecommendCrossoverNearPaperPoint(t *testing.T) {
	// Fig 3b: at the Oregon link the crossover sits near 300B. The
	// rule should pick LBL well below and the baseline well above.
	small, err := Recommend(Deployment{RTT: 21840 * time.Microsecond, Bandwidth: 12 << 20, ValueSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if small.Protocol != ProtocolLBL {
		t.Errorf("Oregon/50B = %s, want lbl", small.Protocol)
	}
	large, err := Recommend(Deployment{RTT: 21840 * time.Microsecond, Bandwidth: 12 << 20, ValueSize: 1200})
	if err != nil {
		t.Fatal(err)
	}
	if large.Protocol != ProtocolBaseline2RTT {
		t.Errorf("Oregon/1200B = %s, want 2rtt", large.Protocol)
	}
}

func TestRecommendValidation(t *testing.T) {
	if _, err := Recommend(Deployment{}); err == nil {
		t.Error("accepted zero ValueSize")
	}
}

func TestRecommendTermsPopulated(t *testing.T) {
	rec, err := Recommend(Deployment{RTT: 20 * time.Millisecond, Bandwidth: 1 << 20, ValueSize: 160})
	if err != nil {
		t.Fatal(err)
	}
	if rec.C != 20*time.Millisecond {
		t.Errorf("C = %v", rec.C)
	}
	if rec.P <= 0 || rec.O <= 0 {
		t.Errorf("terms not populated: p=%v o=%v", rec.P, rec.O)
	}
	if rec.Reason == "" {
		t.Error("empty Reason")
	}
}
