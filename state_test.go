package ortoa

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"ortoa/internal/netsim"
)

// TestLBLProxyRestart is the operational scenario counter persistence
// exists for: an LBL proxy restarts, restores its counters, and keeps
// serving against the server's existing records.
func TestLBLProxyRestart(t *testing.T) {
	keys := GenerateKeys()
	server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	l := netsim.Listen(netsim.Loopback)
	go server.Serve(l)
	dial := func() (net.Conn, error) { return l.Dial() }

	c1, err := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 8, Keys: keys}, dial)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Load(map[string][]byte{"a": []byte("initial!"), "b": []byte("other..!")}); err != nil {
		t.Fatal(err)
	}
	// Advance counters with a few accesses.
	for i := 0; i < 5; i++ {
		if _, err := c1.Read("a"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Write("a", []byte("updated!")); err != nil {
		t.Fatal(err)
	}
	statePath := t.TempDir() + "/proxy.state"
	if err := c1.SaveState(statePath); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Restart: a fresh proxy with the same keys but no counters would
	// desynchronize; with LoadState it continues seamlessly.
	c2, err := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 8, Keys: keys}, dial)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.LoadState(statePath); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Read("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("updated!")) {
		t.Errorf("read after restart = %q", got)
	}
	if err := c2.Write("b", []byte("again..!")); err != nil {
		t.Fatal(err)
	}
	got, _ = c2.Read("b")
	if !bytes.Equal(got, []byte("again..!")) {
		t.Errorf("write after restart = %q", got)
	}
}

// TestLBLProxyRestartWithoutStateFailsSafe: resuming without counters
// must error loudly (server decryption mismatch), never corrupt or
// silently return wrong data.
func TestLBLProxyRestartWithoutStateFailsSafe(t *testing.T) {
	keys := GenerateKeys()
	server, err := NewServer(ServerConfig{Protocol: ProtocolLBL, ValueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	l := netsim.Listen(netsim.Loopback)
	go server.Serve(l)
	dial := func() (net.Conn, error) { return l.Dial() }

	c1, _ := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 8, Keys: keys}, dial)
	c1.Load(map[string][]byte{"a": []byte("value123")})
	for i := 0; i < 3; i++ {
		c1.Read("a")
	}
	c1.Close()

	c2, _ := NewClient(ClientConfig{Protocol: ProtocolLBL, ValueSize: 8, Keys: keys}, dial)
	defer c2.Close()
	if _, err := c2.Read("a"); err == nil {
		t.Error("stale-counter access succeeded; desync went undetected")
	}
}

func TestSaveStateNonLBLIsNoop(t *testing.T) {
	client := deploy(t, ProtocolTEE, 8, nil)
	path := t.TempDir() + "/state"
	if err := client.SaveState(path); err != nil {
		t.Fatal(err)
	}
	if err := client.LoadState(path); err != nil {
		t.Fatal(err)
	}
}

func TestReadBatch(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	data := map[string][]byte{}
	var keys []string
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("key-%02d", i)
		data[k] = []byte{byte(i)}
		keys = append(keys, k)
	}
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	pairs, err := client.ReadBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 20 {
		t.Fatalf("batch returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if p.Key != keys[i] {
			t.Errorf("pair %d key = %q, want %q (order broken)", i, p.Key, keys[i])
		}
		if p.Value[0] != byte(i) {
			t.Errorf("pair %d value = %v", i, p.Value)
		}
	}
}

func TestReadBatchPropagatesErrors(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	client.Load(map[string][]byte{"present": []byte("x")})
	if _, err := client.ReadBatch([]string{"present", "missing"}); err == nil {
		t.Error("batch with missing key succeeded")
	}
}

func TestWriteBatch(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	data := map[string][]byte{"a": {1}, "b": {2}, "c": {3}}
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}
	updates := map[string][]byte{"a": {10}, "b": {20}, "c": {30}}
	if err := client.WriteBatch(updates); err != nil {
		t.Fatal(err)
	}
	for k, want := range updates {
		got, err := client.Read(k)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != want[0] {
			t.Errorf("after batch write, %s = %v", k, got)
		}
	}
}

func TestReadRange(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	data := map[string][]byte{}
	for i := 0; i < 30; i++ {
		data[fmt.Sprintf("acct-%03d", i)] = []byte{byte(i)}
	}
	if err := client.Load(data); err != nil {
		t.Fatal(err)
	}

	pairs, err := client.ReadRange("acct-010", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 5 {
		t.Fatalf("range returned %d pairs", len(pairs))
	}
	for i, p := range pairs {
		want := fmt.Sprintf("acct-%03d", 10+i)
		if p.Key != want {
			t.Errorf("range pair %d = %q, want %q", i, p.Key, want)
		}
		if p.Value[0] != byte(10+i) {
			t.Errorf("range pair %d value = %v", i, p.Value)
		}
	}

	// Range starting between keys snaps to the next key.
	pairs, err = client.ReadRange("acct-0105", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || pairs[0].Key != "acct-011" {
		t.Errorf("mid-range start = %+v", pairs)
	}

	// Range past the end truncates.
	pairs, err = client.ReadRange("acct-028", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Errorf("tail range returned %d pairs, want 2", len(pairs))
	}

	// Zero/negative limits are empty.
	if pairs, _ := client.ReadRange("acct-000", 0); pairs != nil {
		t.Error("zero-limit range returned pairs")
	}
}

func TestKeysDirectory(t *testing.T) {
	client := deploy(t, ProtocolLBL, 8, nil)
	client.Load(map[string][]byte{"b": {1}, "a": {2}})
	client.Load(map[string][]byte{"c": {3}, "a": {9}}) // overlap deduped
	keys := client.Keys()
	want := []string{"a", "b", "c"}
	if len(keys) != len(want) {
		t.Fatalf("Keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("Keys[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
}
