package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"ortoa/internal/crypto/prf"
)

func TestLBLBatchReadInitialValues(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			r, proxy, _ := newLBL(t, mode, 4)
			data := map[string][]byte{}
			var ops []BatchOp
			for i := 0; i < 9; i++ {
				k := fmt.Sprintf("k%d", i)
				data[k] = []byte{byte(i), byte(i * 2), byte(i * 3), byte(i * 4)}
				ops = append(ops, BatchOp{Op: OpRead, Key: k})
			}
			loadData(t, r, proxy, data)
			values, _, err := proxy.AccessBatch(ops)
			if err != nil {
				t.Fatal(err)
			}
			for i, op := range ops {
				if !bytes.Equal(values[i], data[op.Key]) {
					t.Errorf("batch read %s = %v, want %v", op.Key, values[i], data[op.Key])
				}
			}
		})
	}
}

func TestLBLBatchMixedReadWrite(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			r, proxy, _ := newLBL(t, mode, 2)
			data := map[string][]byte{}
			for i := 0; i < 8; i++ {
				data[fmt.Sprintf("k%d", i)] = []byte{byte(i), 0}
			}
			loadData(t, r, proxy, data)
			// Even indices write, odd indices read.
			var ops []BatchOp
			for i := 0; i < 8; i++ {
				k := fmt.Sprintf("k%d", i)
				if i%2 == 0 {
					ops = append(ops, BatchOp{Op: OpWrite, Key: k, Value: []byte{byte(i), 0xAA}})
				} else {
					ops = append(ops, BatchOp{Op: OpRead, Key: k})
				}
			}
			values, _, err := proxy.AccessBatch(ops)
			if err != nil {
				t.Fatal(err)
			}
			for i, op := range ops {
				want := data[op.Key]
				if op.Op == OpWrite {
					want = op.Value
				}
				if !bytes.Equal(values[i], want) {
					t.Errorf("batch %s %s = %v, want %v", op.Op, op.Key, values[i], want)
				}
			}
			// Writes must be visible to later single accesses.
			got, _, err := proxy.Access(OpRead, "k0", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte{0, 0xAA}) {
				t.Errorf("read after batch write = %v", got)
			}
		})
	}
}

func TestLBLBatchSingleRPC(t *testing.T) {
	// The tentpole property: a batch over distinct keys costs exactly
	// one round trip, independent of batch size.
	r, proxy, _ := newLBL(t, LBLPointPermute, 2)
	data := map[string][]byte{}
	var ops []BatchOp
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("k%02d", i)
		data[k] = []byte{byte(i), byte(i)}
		ops = append(ops, BatchOp{Op: OpRead, Key: k})
	}
	loadData(t, r, proxy, data)
	before := r.client.Stats().Calls
	if _, _, err := proxy.AccessBatch(ops); err != nil {
		t.Fatal(err)
	}
	if got := r.client.Stats().Calls - before; got != 1 {
		t.Errorf("batch of %d distinct keys made %d RPCs, want 1", len(ops), got)
	}
}

func TestLBLBatchDuplicateKeys(t *testing.T) {
	// Duplicate keys must not share a counter value: occurrences are
	// issued in waves, each a separate RPC, and read-after-write
	// ordering within the batch holds per key.
	r, proxy, _ := newLBL(t, LBLSpaceOpt, 2)
	loadData(t, r, proxy, map[string][]byte{"dup": {1, 1}, "other": {9, 9}})
	ops := []BatchOp{
		{Op: OpRead, Key: "dup"},
		{Op: OpWrite, Key: "dup", Value: []byte{2, 2}},
		{Op: OpRead, Key: "dup"},
		{Op: OpRead, Key: "other"},
	}
	before := r.client.Stats().Calls
	values, _, err := proxy.AccessBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	// 3 occurrences of "dup" → 3 waves → 3 RPCs ("other" rides wave 0).
	if got := r.client.Stats().Calls - before; got != 3 {
		t.Errorf("batch with triplicate key made %d RPCs, want 3", got)
	}
	want := [][]byte{{1, 1}, {2, 2}, {2, 2}, {9, 9}}
	for i := range want {
		if !bytes.Equal(values[i], want[i]) {
			t.Errorf("op %d value = %v, want %v", i, values[i], want[i])
		}
	}
}

func TestLBLBatchMissingKeyPartialFailure(t *testing.T) {
	// One unloaded key fails individually; every other access completes
	// and commits its counter, so subsequent accesses still work.
	r, proxy, _ := newLBL(t, LBLPointPermute, 2)
	loadData(t, r, proxy, map[string][]byte{"a": {1, 1}, "b": {2, 2}})
	values, _, err := proxy.AccessBatch([]BatchOp{
		{Op: OpRead, Key: "a"},
		{Op: OpRead, Key: "ghost"},
		{Op: OpWrite, Key: "b", Value: []byte{3, 3}},
	})
	if err == nil {
		t.Fatal("batch containing a missing key returned no error")
	}
	if !bytes.Equal(values[0], []byte{1, 1}) {
		t.Errorf("value[0] = %v, want [1 1]", values[0])
	}
	if values[1] != nil {
		t.Errorf("value[1] = %v for missing key, want nil", values[1])
	}
	if !bytes.Equal(values[2], []byte{3, 3}) {
		t.Errorf("value[2] = %v, want [3 3]", values[2])
	}
	// Counters of the successful accesses committed: the proxy and
	// server label schedules still agree.
	got, _, err := proxy.Access(OpRead, "a", nil)
	if err != nil {
		t.Fatalf("access after partial batch failure: %v", err)
	}
	if !bytes.Equal(got, []byte{1, 1}) {
		t.Errorf("read a = %v", got)
	}
	got, _, err = proxy.Access(OpRead, "b", nil)
	if err != nil {
		t.Fatalf("access after partial batch failure: %v", err)
	}
	if !bytes.Equal(got, []byte{3, 3}) {
		t.Errorf("read b = %v", got)
	}
}

func TestLBLBatchValueSizeValidation(t *testing.T) {
	_, proxy, _ := newLBL(t, LBLPointPermute, 4)
	_, _, err := proxy.AccessBatch([]BatchOp{{Op: OpWrite, Key: "k", Value: []byte{1}}})
	if !errors.Is(err, ErrValueSize) {
		t.Errorf("short batch write = %v, want ErrValueSize", err)
	}
}

func TestLBLBatchEmpty(t *testing.T) {
	r, proxy, _ := newLBL(t, LBLPointPermute, 4)
	before := r.client.Stats().Calls
	values, _, err := proxy.AccessBatch(nil)
	if err != nil || len(values) != 0 {
		t.Errorf("empty batch = %v, %v", values, err)
	}
	if got := r.client.Stats().Calls - before; got != 0 {
		t.Errorf("empty batch made %d RPCs", got)
	}
}

func TestLBLBatchInterleavedWithSingles(t *testing.T) {
	// Batches and single accesses racing on the same keys must keep the
	// counter schedule consistent (run with -race for full value).
	r, proxy, _ := newLBL(t, LBLPointPermute, 2)
	data := map[string][]byte{}
	var keys []string
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		data[k] = []byte{byte(i), 0}
		keys = append(keys, k)
	}
	loadData(t, r, proxy, data)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			var ops []BatchOp
			for _, k := range keys {
				ops = append(ops, BatchOp{Op: OpWrite, Key: k, Value: []byte{byte(w), 1}})
			}
			if _, _, err := proxy.AccessBatch(ops); err != nil {
				t.Errorf("batch %d: %v", w, err)
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for _, k := range keys {
				if _, _, err := proxy.Access(OpRead, k, nil); err != nil {
					t.Errorf("single read %s: %v", k, err)
				}
			}
		}(w)
	}
	wg.Wait()
	// Every key must still be consistently accessible.
	for _, k := range keys {
		if _, _, err := proxy.Access(OpRead, k, nil); err != nil {
			t.Errorf("final read %s: %v", k, err)
		}
	}
}

// --- batch obliviousness ---

// observedBatchRun issues one AccessBatch of ops accesses of the given
// op and returns the sorted observation list plus the exchange count.
func observedBatchRun(t *testing.T, mode LBLMode, op Op, valueSize, ops int) []exchange {
	t.Helper()
	r, proxy, _ := newLBL(t, mode, valueSize)
	data := map[string][]byte{}
	for i := 0; i < ops; i++ {
		data[fmt.Sprintf("key-%02d", i)] = make([]byte, valueSize)
	}
	loadData(t, r, proxy, data)
	var mu sync.Mutex
	var seen []exchange
	r.server.SetObserver(func(msgType byte, reqLen, respLen int) {
		mu.Lock()
		seen = append(seen, exchange{msgType, reqLen, respLen})
		mu.Unlock()
	})
	batch := make([]BatchOp, 0, ops)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("key-%02d", i)
		if op == OpWrite {
			v := make([]byte, valueSize)
			v[0] = byte(i)
			batch = append(batch, BatchOp{Op: OpWrite, Key: key, Value: v})
		} else {
			batch = append(batch, BatchOp{Op: OpRead, Key: key})
		}
	}
	if _, _, err := proxy.AccessBatch(batch); err != nil {
		t.Fatalf("batch of %s: %v", op, err)
	}
	sort.Slice(seen, func(i, j int) bool {
		a, b := seen[i], seen[j]
		if a.msgType != b.msgType {
			return a.msgType < b.msgType
		}
		if a.reqLen != b.reqLen {
			return a.reqLen < b.reqLen
		}
		return a.respLen < b.respLen
	})
	return seen
}

func TestObliviousnessLBLBatch(t *testing.T) {
	// A batch of pure reads and a batch of pure writes must present the
	// adversary with identical views: the same single exchange, of the
	// same message type and sizes. Batching widens the frame but adds no
	// operation-dependent signal.
	const valueSize = 8
	const ops = 12
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			reads := observedBatchRun(t, mode, OpRead, valueSize, ops)
			writes := observedBatchRun(t, mode, OpWrite, valueSize, ops)
			assertIdenticalViews(t, reads, writes)
			if len(reads) != 1 {
				t.Errorf("batch of %d distinct keys produced %d exchanges, want 1", ops, len(reads))
			}
			if reads[0].msgType != MsgLBLAccessBatch {
				t.Errorf("observed msgType %#x, want MsgLBLAccessBatch", reads[0].msgType)
			}
		})
	}
}

// --- shuffle randomness ---

func TestLBLShuffleDiffersAcrossProxies(t *testing.T) {
	// Two proxies sharing a PRF key build requests for the same key at
	// the same counter. Every input is identical, so any difference can
	// only come from the step-1.5 shuffle — which must draw fresh
	// crypto randomness per request rather than a seedable stream an
	// adversary could reproduce.
	key := bytes.Repeat([]byte{7}, prf.KeySize)
	mk := func() *LBLProxy {
		f, err := prf.New(key)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewLBLProxy(LBLConfig{ValueSize: 16, Mode: LBLBasic}, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	differed := false
	for i := 0; i < 8; i++ {
		ra, err := a.buildRequest(OpRead, "k", nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.buildRequest(OpRead, "k", nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("request sizes differ: %d vs %d", len(ra), len(rb))
		}
		if !bytes.Equal(ra, rb) {
			differed = true
			break
		}
	}
	if !differed {
		t.Error("8 independent requests for identical inputs were byte-identical — shuffle randomness is predictable")
	}
}

func TestCryptoShufflerPermutes(t *testing.T) {
	// shuffle must produce a permutation (no element lost or duplicated)
	// and must not be the identity every time.
	shuf := newCryptoShuffler()
	const n = 64
	moved := false
	for trial := 0; trial < 4; trial++ {
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		shuf.shuffle(n, func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		seen := make([]bool, n)
		for i, v := range perm {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("trial %d: not a permutation: %v", trial, perm)
			}
			seen[v] = true
			if v != i {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("4 shuffles of 64 elements were all the identity permutation")
	}
}

func TestCryptoShufflerIntNBounds(t *testing.T) {
	shuf := newCryptoShuffler()
	for i := 0; i < 10000; i++ {
		n := 1 + i%17
		if got := shuf.intN(n); got < 0 || got >= n {
			t.Fatalf("intN(%d) = %d", n, got)
		}
	}
}
