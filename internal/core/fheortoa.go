package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/fhe"
	"ortoa/internal/kvstore"
	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// FHEConfig fixes the parameters of an FHE-ORTOA deployment.
type FHEConfig struct {
	// Params is the BFV parameter set shared by client and server
	// (public; only the secret key stays with the trusted side).
	Params fhe.Parameters
	// ValueSize is the fixed plaintext value length in bytes.
	ValueSize int
	// MaxDegree caps stored ciphertext degree. Each access grows the
	// stored ciphertext's degree by one (no relinearization keys);
	// past the cap the server refuses, mirroring the point where
	// SEAL's noise made FHE-ORTOA unusable (§3.3).
	MaxDegree int
	// RelinBaseBits, when nonzero, enables relinearization: the
	// client generates an evaluation key (digit width RelinBaseBits)
	// and provisions it to the server, which then keeps stored
	// ciphertexts at degree 1 — constant size and compute per access.
	// Noise still accumulates multiplicatively, so the §3.3 access
	// budget barely moves (see ablation-fhe-relin).
	RelinBaseBits int
}

func (c FHEConfig) withDefaults() FHEConfig {
	if c.MaxDegree == 0 {
		c.MaxDegree = 24
	}
	return c
}

func (c FHEConfig) validate() error {
	if c.ValueSize <= 0 {
		return fmt.Errorf("core: FHE value size %d must be positive", c.ValueSize)
	}
	if c.ValueSize > c.Params.PlaintextCapacity()-2 {
		return fmt.Errorf("core: value size %d exceeds plaintext capacity %d", c.ValueSize, c.Params.PlaintextCapacity()-2)
	}
	return nil
}

// An FHEServer is the untrusted side of FHE-ORTOA: it evaluates
// Procedure Pcr' (§3.1) homomorphically — res = ct_old·ct_r +
// ct_new·ct_w — learning neither the values nor which selector bit is
// set.
type FHEServer struct {
	params    fhe.Parameters
	maxDegree int
	store     *kvstore.Store
	mx        fheServerObs

	mu  sync.RWMutex
	rlk *fhe.RelinKey
}

// NewFHEServer returns a server evaluating under params.
func NewFHEServer(store *kvstore.Store, cfg FHEConfig) *FHEServer {
	cfg = cfg.withDefaults()
	return &FHEServer{params: cfg.Params, maxDegree: cfg.MaxDegree, store: store}
}

// Register installs the FHE access handler on ts, plus the setup
// handler that receives a relinearization key.
func (s *FHEServer) Register(ts *transport.Server) {
	ts.Handle(MsgFHEAccess, s.handleAccess)
	ts.Handle(MsgFHESetRelin, s.handleSetRelin)
}

// handleSetRelin installs an evaluation key. It is public-key
// material: holding it does not help the server decrypt.
func (s *FHEServer) handleSetRelin(_ context.Context, payload []byte) ([]byte, error) {
	rlk, err := s.params.UnmarshalRelinKey(payload)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.rlk = rlk
	s.mu.Unlock()
	return nil, nil
}

func (s *FHEServer) relinKey() *fhe.RelinKey {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rlk
}

func (s *FHEServer) handleAccess(ctx context.Context, payload []byte) ([]byte, error) {
	sp := trace.StartChild(ctx, "server_fhe_eval")
	defer sp.End()
	if s.mx.enabled {
		defer s.mx.eval.Since(time.Now())
	}
	r := wire.NewReader(payload)
	encKey := r.Raw(prf.Size)
	rawR := r.BytesPfx()
	rawW := r.BytesPfx()
	rawNew := r.BytesPfx()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	ctR, err := fhe.UnmarshalCiphertext(s.params, rawR)
	if err != nil {
		return nil, fmt.Errorf("core: c_r: %w", err)
	}
	ctW, err := fhe.UnmarshalCiphertext(s.params, rawW)
	if err != nil {
		return nil, fmt.Errorf("core: c_w: %w", err)
	}
	ctNew, err := fhe.UnmarshalCiphertext(s.params, rawNew)
	if err != nil {
		return nil, fmt.Errorf("core: v_new: %w", err)
	}

	var result []byte
	err = s.store.Update(string(encKey), func(old []byte) ([]byte, error) {
		ctOld, err := fhe.UnmarshalCiphertext(s.params, old)
		if err != nil {
			return nil, fmt.Errorf("core: stored ciphertext: %w", err)
		}
		if ctOld.Degree()+ctR.Degree() > s.maxDegree {
			return nil, fmt.Errorf("core: ciphertext degree cap %d reached: %w", s.maxDegree, fhe.ErrNoiseOverflow)
		}
		rlk := s.relinKey()
		var left, right *fhe.Ciphertext
		if rlk != nil {
			left, err = s.params.MulRelin(ctOld, ctR, rlk)
			if err == nil {
				right, err = s.params.MulRelin(ctNew, ctW, rlk)
			}
		} else {
			left, err = s.params.Mul(ctOld, ctR)
			if err == nil {
				right, err = s.params.Mul(ctNew, ctW)
			}
		}
		if err != nil {
			return nil, err
		}
		res := s.params.Add(left, right)
		result = res.Marshal(s.params)
		return result, nil
	})
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return result, nil
}

// An FHEClient is the trusted side of FHE-ORTOA; like TEE-ORTOA it is
// proxy-less when clients share the secret key (§3.1).
type FHEClient struct {
	cfg    FHEConfig
	prf    *prf.PRF
	sk     *fhe.SecretKey
	client *transport.Client
	mx     fheClientObs
}

// ProvisionRelinKey generates a relinearization key (using
// cfg.RelinBaseBits, default 24) and ships it to the server. Call once
// at setup when relinearized evaluation is wanted.
func (c *FHEClient) ProvisionRelinKey() error {
	if c.client == nil {
		return errors.New("core: FHE client has no server connection")
	}
	baseBits := c.cfg.RelinBaseBits
	if baseBits == 0 {
		baseBits = 24
	}
	rlk, err := c.cfg.Params.RelinKeyGen(c.sk, baseBits)
	if err != nil {
		return err
	}
	_, err = c.client.Call(MsgFHESetRelin, rlk.Marshal(c.cfg.Params))
	return err
}

// NewFHEClient generates a fresh secret key for cfg.Params.
func NewFHEClient(cfg FHEConfig, f *prf.PRF, client *transport.Client) (*FHEClient, error) {
	sk, err := cfg.Params.KeyGen()
	if err != nil {
		return nil, err
	}
	return NewFHEClientWithKey(cfg, f, sk, client)
}

// NewFHEClientWithKey builds a client around an existing secret key,
// for deployments where trusted parties share it (§3.1).
func NewFHEClientWithKey(cfg FHEConfig, f *prf.PRF, sk *fhe.SecretKey, client *transport.Client) (*FHEClient, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &FHEClient{cfg: cfg, prf: f, sk: sk, client: client}, nil
}

// SecretKey returns the client's BFV secret key, for sharing with
// other trusted parties.
func (c *FHEClient) SecretKey() *fhe.SecretKey { return c.sk }

func (c *FHEClient) encryptValue(value []byte) (*fhe.Ciphertext, error) {
	coeffs, err := c.cfg.Params.EncodeBytes(value)
	if err != nil {
		return nil, err
	}
	return c.cfg.Params.Encrypt(c.sk, coeffs)
}

// BuildRecord encodes the initial record for (key, value).
func (c *FHEClient) BuildRecord(key string, value []byte) (string, []byte, error) {
	if len(value) != c.cfg.ValueSize {
		return "", nil, ErrValueSize
	}
	ct, err := c.encryptValue(value)
	if err != nil {
		return "", nil, err
	}
	ek := c.prf.EncodeKey(key)
	return string(ek[:]), ct.Marshal(c.cfg.Params), nil
}

// NoiseBudgetOf measures the remaining noise budget of the ciphertext
// stored in record — the quantity the §3.3 experiment tracks across
// repeated accesses.
func (c *FHEClient) NoiseBudgetOf(record []byte) (int, error) {
	ct, err := fhe.UnmarshalCiphertext(c.cfg.Params, record)
	if err != nil {
		return 0, err
	}
	return c.cfg.Params.NoiseBudget(c.sk, ct)
}

// Access performs one oblivious access (§3.1): it sends FHE(c_r),
// FHE(c_w), and FHE(v_new) and decrypts the homomorphic result. After
// too many accesses to the same object the accumulated noise corrupts
// decryption; the error wraps fhe.ErrNoiseOverflow.
func (c *FHEClient) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var stats AccessStats
	if op == OpWrite && len(newValue) != c.cfg.ValueSize {
		return nil, stats, ErrValueSize
	}
	if c.client == nil {
		return nil, stats, errors.New("core: FHE client has no server connection")
	}
	crBit, cwBit := 0, 1
	vNew := newValue
	if op == OpRead {
		crBit, cwBit = 1, 0
		vNew = make([]byte, c.cfg.ValueSize) // 'empty' value (§3.1)
	}
	sw := obs.StartWatch(c.mx.enabled)
	params := c.cfg.Params
	ctR, err := params.Encrypt(c.sk, params.EncodeBit(crBit))
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}
	ctW, err := params.Encrypt(c.sk, params.EncodeBit(cwBit))
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}
	ctNew, err := c.encryptValue(vNew)
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}

	ek := c.prf.EncodeKey(key)
	w := wire.NewWriter(prf.Size + 3*(params.PlaintextCapacity()*8))
	w.Raw(ek[:])
	w.BytesPfx(ctR.Marshal(params))
	w.BytesPfx(ctW.Marshal(params))
	w.BytesPfx(ctNew.Marshal(params))
	stats.PrepBytes = w.Len()
	dEncrypt := sw.Lap(c.mx.encrypt)

	resp, err := c.client.Call(MsgFHEAccess, w.Bytes())
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}
	dRPC := sw.Lap(c.mx.rpc)
	stats.RespBytes = len(resp)

	res, err := fhe.UnmarshalCiphertext(params, resp)
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}
	coeffs, err := params.Decrypt(c.sk, res)
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}
	value, err := params.DecodeBytes(coeffs)
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}
	if len(value) != c.cfg.ValueSize {
		c.mx.errors.Inc()
		return nil, stats, fmt.Errorf("core: decrypted %d bytes, want %d: %w", len(value), c.cfg.ValueSize, fhe.ErrNoiseOverflow)
	}
	dDecrypt := sw.Lap(c.mx.decrypt)
	c.mx.e2e.Observe(dEncrypt + dRPC + dDecrypt)
	return value, stats, nil
}
