package core

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// Client-side proxy-set routing for multi-proxy deployments. A Router
// fronts N proxies behind the one Accessor interface every workload
// already uses: each access is steered to the proxy owning the key's
// counter range (ring.go), a dead proxy is detected by its transport
// failures and routed around immediately, and a background prober
// re-admits it — with bounded exponential backoff — once its listener
// answers again. Ownership rejections (epoch fences that a proxy
// declined to adopt through) redirect to the next peer rather than
// failing the caller, so a kill mid-workload costs one redirect, not an
// outage. Busy rejections (admission-control sheds — a definite
// not-executed outcome) are NOT failed over: offering the access to a
// peer would adopt the key's counter range through the epoch fence, and
// under symmetric overload ownership would ping-pong between saturated
// proxies, paying a claim plus counter rebase per flip. The shed is
// surfaced to the caller, who backs off per the retry-after hint; a
// member that sheds consecutively is circuit-broken into a fail-fast
// bench — accesses return busy without a wire round trip — and the
// first access after the bench window is the readmission probe.

// A RouterMember names one proxy and how to reach it.
type RouterMember struct {
	Name string
	Dial func() (net.Conn, error)
}

// RouterOptions tunes a Router. The zero value gets sane defaults.
type RouterOptions struct {
	// Client is the per-member transport configuration (pool size,
	// call timeouts, retry policy).
	Client transport.Options
	// Attempts bounds how many members one access may try before its
	// last error is surfaced. Default: member count + 1, so a full
	// sweep plus one redirect always fits.
	Attempts int
	// ProbeInterval is the health-prober tick. Default 100ms.
	ProbeInterval time.Duration
	// ProbeBackoffMax caps the per-member probe backoff that doubles on
	// every failed probe. Default 2s.
	ProbeBackoffMax time.Duration
	// BusyBreaker is the number of consecutive busy rejections from one
	// member before the router circuit-breaks it: accesses to the member
	// fail fast with busy — no wire round trip — until its retry-after
	// window passes, and the first access after the window is the
	// readmission probe. The member stays in the routing ring throughout
	// (benching is backpressure, not failure — moving its keys to a peer
	// would steal range ownership). Default 3.
	BusyBreaker int
	// Metrics, when non-nil, registers the router's metrics
	// (ortoa_router_*) before the health prober starts.
	Metrics *obs.Registry
}

// ErrNoProxies reports an access that found no member to try.
var ErrNoProxies = errors.New("core: router has no reachable proxies")

// busyRetryAfter extracts the shedder's retry-after hint from a busy
// rejection. A busy relayed through a proxy hop arrives flattened to a
// RemoteError (the hint does not survive the flattening), so fall back
// to the probe interval — the prober's normal pace.
func busyRetryAfter(err error, fallback time.Duration) time.Duration {
	var be *transport.BusyError
	if errors.As(err, &be) && be.RetryAfter > 0 {
		return be.RetryAfter
	}
	return fallback
}

type routerMember struct {
	name    string
	dial    func() (net.Conn, error)
	healthy atomic.Bool

	mu     sync.Mutex // guards client/acc (re)creation
	client *transport.Client
	acc    *RemoteAccessor

	// busyStreak counts consecutive busy rejections; any other outcome
	// resets it. At opts.BusyBreaker the Access path benches the member.
	busyStreak atomic.Int64

	// benchedUntil (unix nanos, 0 = not benched) is the busy breaker's
	// fail-fast window: until it passes, accesses return busy without a
	// wire round trip. Written from the Access path, hence atomic.
	benchedUntil atomic.Int64

	// Probe pacing, owned by the prober — atomics only because Close
	// and tests may race a tick.
	nextProbe atomic.Int64
	backoff   atomic.Int64
}

// accessor returns the member's stub, dialing on first use (or after a
// startup failure). A nil return means the member is unreachable.
func (m *routerMember) accessor(opts transport.Options) *RemoteAccessor {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.acc != nil {
		return m.acc
	}
	c, err := transport.DialOptions(m.dial, opts)
	if err != nil {
		return nil
	}
	m.client = c
	m.acc = NewRemoteAccessor(c)
	return m.acc
}

// A Router implements Accessor over a set of proxies. Safe for
// concurrent use.
type Router struct {
	members []*routerMember
	opts    RouterOptions
	ring    atomic.Pointer[Ring]

	stop chan struct{}
	wg   sync.WaitGroup
	mx   routerObs
}

// routerObs is the Router's metric bundle (nil-safe handles).
type routerObs struct {
	redirects *obs.Counter // fence rejections redirected to a peer
	failovers *obs.Counter // accesses moved off a failed member
	busies    *obs.Counter // busy rejections routed around
	trips     *obs.Counter // busy-breaker trips (member benched until probed)
	probes    *obs.Counter // health probes sent
	healthy   *obs.Gauge   // members currently routable
}

// instrument registers the router's metrics. Called from NewRouter
// before the prober goroutine starts — the bundle is written without
// synchronization, so it must not change once the router is live.
func (r *Router) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.mx = routerObs{
		redirects: reg.Counter("ortoa_router_redirects_total", "accesses redirected to a peer after an ownership fence"),
		failovers: reg.Counter("ortoa_router_failovers_total", "accesses moved off a member after a transport failure"),
		busies:    reg.Counter("ortoa_router_busy_total", "busy rejections (shed before executing) surfaced for caller backoff"),
		trips:     reg.Counter("ortoa_router_breaker_trips_total", "members benched behind fail-fast busies after consecutive sheds"),
		probes:    reg.Counter("ortoa_router_probes_total", "health probes sent to unhealthy members"),
		healthy:   reg.Gauge("ortoa_router_healthy_members", "members currently considered routable"),
	}
}

// NewRouter connects to the given proxies and starts the health
// prober. Members that fail their initial dial start unhealthy and are
// picked up by the prober; only an empty member list is an error.
func NewRouter(members []RouterMember, opts RouterOptions) (*Router, error) {
	if len(members) == 0 {
		return nil, errors.New("core: router needs at least one member")
	}
	if opts.Attempts <= 0 {
		opts.Attempts = len(members) + 1
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 100 * time.Millisecond
	}
	if opts.ProbeBackoffMax <= 0 {
		opts.ProbeBackoffMax = 2 * time.Second
	}
	if opts.BusyBreaker <= 0 {
		opts.BusyBreaker = 3
	}
	r := &Router{opts: opts, stop: make(chan struct{})}
	r.instrument(opts.Metrics)
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Name == "" || m.Dial == nil {
			return nil, fmt.Errorf("core: router member %q needs a name and a dial function", m.Name)
		}
		if seen[m.Name] {
			return nil, fmt.Errorf("core: duplicate router member %q", m.Name)
		}
		seen[m.Name] = true
		rm := &routerMember{name: m.Name, dial: m.Dial}
		rm.backoff.Store(int64(opts.ProbeInterval))
		rm.healthy.Store(rm.accessor(opts.Client) != nil)
		r.members = append(r.members, rm)
	}
	r.rebuildRing()
	r.wg.Add(1)
	go r.probeLoop()
	return r, nil
}

// Close stops the prober and closes every member connection.
func (r *Router) Close() error {
	close(r.stop)
	r.wg.Wait()
	for _, m := range r.members {
		m.mu.Lock()
		if m.client != nil {
			m.client.Close()
		}
		m.mu.Unlock()
	}
	return nil
}

// Ring returns the current routing ring (healthy members only).
func (r *Router) Ring() *Ring { return r.ring.Load() }

func (r *Router) healthyCount() int {
	n := 0
	for _, m := range r.members {
		if m.healthy.Load() {
			n++
		}
	}
	return n
}

// rebuildRing re-resolves range ownership over the currently healthy
// member set (all members if none are healthy, so routing still has
// candidates while everything is down).
func (r *Router) rebuildRing() {
	var names []string
	for _, m := range r.members {
		if m.healthy.Load() {
			names = append(names, m.name)
		}
	}
	if len(names) == 0 {
		for _, m := range r.members {
			names = append(names, m.name)
		}
	}
	r.ring.Store(NewRing(names))
	r.mx.healthy.Set(int64(r.healthyCount()))
}

// markDown records a member transport failure: the member leaves the
// routing ring until a probe readmits it.
func (r *Router) markDown(m *routerMember) {
	if m.healthy.CompareAndSwap(true, false) {
		r.rebuildRing()
	}
}

// pick returns the next member to try for key: the ring owner first,
// then the remaining healthy members, then — last resort — unhealthy
// ones (they may have just recovered). tried is consulted and updated.
func (r *Router) pick(key string, tried map[*routerMember]bool) *routerMember {
	owner := r.ring.Load().OwnerOfKey(key)
	var healthyUntried, anyUntried *routerMember
	for _, m := range r.members {
		if tried[m] {
			continue
		}
		if m.name == owner && m.healthy.Load() {
			tried[m] = true
			return m
		}
		if healthyUntried == nil && m.healthy.Load() {
			healthyUntried = m
		}
		if anyUntried == nil {
			anyUntried = m
		}
	}
	next := healthyUntried
	if next == nil {
		next = anyUntried
	}
	if next != nil {
		tried[next] = true
	}
	return next
}

// Access implements Accessor: route to the key's owner, failing over
// on dead members and redirecting on ownership fences, up to
// opts.Attempts members.
func (r *Router) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var lastErr, ambigErr error
	var lastStats AccessStats
	tried := make(map[*routerMember]bool, 2)
	for attempt := 0; attempt < r.opts.Attempts; attempt++ {
		m := r.pick(key, tried)
		if m == nil {
			break
		}
		if until := m.benchedUntil.Load(); until != 0 {
			if wait := time.Until(time.Unix(0, until)); wait > 0 {
				// Benched by the busy breaker: fail fast with the
				// shedder's outcome instead of offering more load (or
				// letting a peer steal the key's range ownership).
				err := &transport.BusyError{RetryAfter: wait}
				if ambigErr != nil {
					return nil, lastStats, ambigErr
				}
				return nil, lastStats, err
			}
			// Window passed; this access is the readmission probe.
			m.benchedUntil.Store(0)
		}
		acc := m.accessor(r.opts.Client)
		if acc == nil {
			r.markDown(m)
			lastErr = ErrNoProxies
			continue
		}
		value, stats, err := acc.Access(op, key, newValue)
		if err == nil {
			m.busyStreak.Store(0)
			if !m.healthy.Load() {
				// It answered; readmit it without waiting for a probe.
				if m.healthy.CompareAndSwap(false, true) {
					r.rebuildRing()
				}
			}
			return value, stats, nil
		}
		lastErr, lastStats = err, stats
		var re *transport.RemoteError
		isRemote := errors.As(err, &re)
		if !transport.IsBusy(err) {
			// Only *consecutive* busy rejections trip the breaker.
			m.busyStreak.Store(0)
		}
		switch {
		case transport.IsBusy(err):
			// The member (or its upstream server) shed the access before
			// executing it — a definite outcome, not an ambiguity, so no
			// round is parked. Do NOT fail over: a peer serving this key
			// would adopt its counter range through the epoch fence, and
			// under symmetric overload ownership would ping-pong between
			// saturated proxies, burning a claim + counter rebase per
			// flip. Surface the shed so the caller backs off; consecutive
			// sheds bench the member behind fail-fast busies until its
			// retry-after window passes.
			r.mx.busies.Inc()
			if m.busyStreak.Add(1) >= int64(r.opts.BusyBreaker) {
				m.busyStreak.Store(0)
				m.benchedUntil.Store(time.Now().Add(busyRetryAfter(err, r.opts.ProbeInterval)).UnixNano())
				r.mx.trips.Inc()
			}
			if ambigErr != nil {
				return nil, lastStats, ambigErr
			}
			return nil, stats, err
		case isFencedRound(err), isStaleRound(err):
			// The member declined ownership of this key's range (fenced
			// at the server and did not adopt), or its counter snapshot
			// lost an ownership ping-pong during a live handoff (stale
			// past its reconcile allowance). Another member is — or will
			// become — the authoritative owner; redirect.
			r.mx.redirects.Inc()
		case isRemote && !transport.Ambiguous(err):
			// Any other definite application-level error is the
			// access's real outcome (unknown key, bad value): failing
			// over cannot change it.
			return nil, stats, err
		case isRemote:
			// The member is alive but its own server round's outcome is
			// unknown (AmbiguousMsgPrefix). Retrying on a peer is safe —
			// the at-most-once replay and the protocol's counter
			// self-fencing make a duplicate application impossible — and
			// the member stays in the ring.
			r.mx.failovers.Inc()
			ambigErr = err
		default:
			// Transport failure reaching the member — including
			// ambiguous ones, safe to retry for the same reason.
			r.mx.failovers.Inc()
			r.markDown(m)
			if transport.Ambiguous(err) {
				ambigErr = err
			}
		}
	}
	// If any attempt left its outcome unknown, the access's overall
	// outcome is unknown no matter what a later member answered —
	// surface the ambiguity, not a definite-looking rejection.
	if ambigErr != nil {
		return nil, lastStats, ambigErr
	}
	if lastErr == nil {
		lastErr = ErrNoProxies
	}
	return nil, lastStats, lastErr
}

// probeLoop periodically probes unhealthy members' listeners and
// readmits the ones that answer, with per-member exponential backoff so
// a dead proxy is not hammered.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case now := <-t.C:
			for _, m := range r.members {
				if m.healthy.Load() || now.UnixNano() < m.nextProbe.Load() {
					continue
				}
				r.mx.probes.Inc()
				if conn, err := m.dial(); err == nil {
					conn.Close()
					m.backoff.Store(int64(r.opts.ProbeInterval))
					m.nextProbe.Store(0)
					if m.healthy.CompareAndSwap(false, true) {
						r.rebuildRing()
					}
				} else {
					b := 2 * time.Duration(m.backoff.Load())
					if b > r.opts.ProbeBackoffMax {
						b = r.opts.ProbeBackoffMax
					}
					m.backoff.Store(int64(b))
					m.nextProbe.Store(now.Add(b).UnixNano())
				}
			}
		}
	}
}
