package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// LBLMode selects the LBL-ORTOA variant.
type LBLMode uint8

const (
	// LBLBasic is the §5.2 protocol: one label per plaintext bit
	// (y=1), entries shuffled, server try-decrypts both.
	LBLBasic LBLMode = iota
	// LBLSpaceOpt is the §10.1 space optimization: one label per two
	// bits (y=2), halving server storage; the server try-decrypts up
	// to four entries per group.
	LBLSpaceOpt
	// LBLPointPermute adds the §10.2 point-and-permute optimization
	// to y=2: the server stores two decryption bits per group and
	// decrypts exactly one entry. This is the configuration the
	// paper's cost analysis assumes (§6.3.3).
	LBLPointPermute
	// LBLWide generalizes the space optimization to y=4 (one label
	// per four plaintext bits, 2^4 = 16 shuffled entries per group).
	// Appendix §10.1 analyzes this point: storage shrinks to ℓ/4
	// labels but communication doubles relative to y=2, which is why
	// the paper settles on y=2. Implemented so the Fig 6 trade-off can
	// be measured rather than only computed.
	LBLWide
	// LBLWidePointPermute is y=4 with point-and-permute decryption
	// bits (four per group).
	LBLWidePointPermute
)

// String names the mode for experiment labels.
func (m LBLMode) String() string {
	switch m {
	case LBLBasic:
		return "basic(y=1)"
	case LBLSpaceOpt:
		return "spaceopt(y=2)"
	case LBLPointPermute:
		return "point-permute(y=2)"
	case LBLWide:
		return "wide(y=4)"
	case LBLWidePointPermute:
		return "wide-point-permute(y=4)"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Y returns how many plaintext bits one label represents.
func (m LBLMode) Y() int {
	switch m {
	case LBLBasic:
		return 1
	case LBLWide, LBLWidePointPermute:
		return 4
	default:
		return 2
	}
}

// entries returns the encryption-table entries per group (2^y).
func (m LBLMode) entries() int { return 1 << m.Y() }

// hasDbits reports whether records carry decryption bits.
func (m LBLMode) hasDbits() bool {
	return m == LBLPointPermute || m == LBLWidePointPermute
}

// entryPlainLen is the plaintext length of one table entry: the new
// label, plus the next decryption bits under point-and-permute.
func (m LBLMode) entryPlainLen() int {
	if m.hasDbits() {
		return prf.Size + 1
	}
	return prf.Size
}

// entryLen is the sealed length of one table entry.
func (m LBLMode) entryLen() int { return m.entryPlainLen() + secretbox.LabelOverhead }

// LBLConfig fixes the parameters shared by an LBL proxy and the
// records it creates.
type LBLConfig struct {
	// ValueSize is the fixed plaintext value length in bytes (ℓ/8).
	ValueSize int
	// Mode selects the protocol variant.
	Mode LBLMode
	// ReconcileScan, when positive, lets the proxy recover from
	// counter desynchronization after a crash (a server restarted from
	// older durable state, or a proxy restarted from an older counter
	// snapshot) by probing up to this many counter steps each way from
	// its own value. Zero disables reconciliation: a desynchronized key
	// fails every access with the server's stale rejection, the §5.3.1
	// behavior. See reconcile.go.
	ReconcileScan int
	// AutoAdopt, in multi-proxy deployments, lets the proxy adopt a
	// counter range on demand: when an access is epoch-fenced (another
	// proxy owned the range more recently — typically because this
	// proxy was just handed the range by the router after its owner
	// died), the proxy claims the range, bumping its epoch, and retries.
	// The retry then rebases the key's counter through ReconcileScan,
	// which AutoAdopt therefore requires to be useful. See epoch.go.
	AutoAdopt bool
	// StreamChunkBytes, when positive, selects the chunked-streaming
	// request path (MsgLBLAccessStream): the proxy writes sealed groups
	// to the wire in chunks of about this many table bytes as workers
	// produce them, and the server trial-decrypts each chunk before the
	// last one lands, pipelining the garbling CPU against the WAN. It
	// also bounds the proxy's peak table memory per access to one chunk
	// instead of the full ℓ/y groups. Zero keeps the monolithic
	// single-frame path. Tables that fit in one chunk fall back to the
	// monolithic path automatically.
	StreamChunkBytes int
}

// Groups returns the number of label groups per value (ℓ/y).
func (c LBLConfig) Groups() int { return c.ValueSize * 8 / c.Mode.Y() }

// ServerBytesPerValue returns the server-side record size, the
// quantity §5.3.1 and the Fig 6 storage factor analysis price.
func (c LBLConfig) ServerBytesPerValue() int {
	n := 1 + c.Groups()*prf.Size
	if c.Mode.hasDbits() {
		n += c.Groups()
	}
	return n
}

// TableBytes returns the size of one access's encryption table
// (2^y · E_len · ℓ/y).
func (c LBLConfig) TableBytes() int {
	return c.Groups() * c.Mode.entries() * c.Mode.entryLen()
}

// RequestBytesPerAccess returns the exact access payload size
// (§5.3.2: 2^y · E_len · ℓ/y table entries plus framing, including the
// fixed-width ownership claim of epoch.go).
func (c LBLConfig) RequestBytesPerAccess() int {
	return prf.Size + lblClaimLen + 1 +
		wire.UvarintLen(uint64(c.Groups())) +
		wire.UvarintLen(uint64(c.Mode.entryLen())) +
		c.TableBytes()
}

// BatchRequestBytes returns the exact MsgLBLAccessBatch payload size
// for n accesses: one shared geometry header plus n (key, claim, table)
// triples.
func (c LBLConfig) BatchRequestBytes(n int) int {
	return 1 +
		wire.UvarintLen(uint64(c.Groups())) +
		wire.UvarintLen(uint64(c.Mode.entryLen())) +
		wire.UvarintLen(uint64(n)) +
		n*(prf.Size+lblClaimLen+c.TableBytes())
}

// streamChunkGroups returns how many whole groups one stream chunk
// carries under the configured chunk budget, at least one.
func (c LBLConfig) streamChunkGroups() int {
	per := c.Mode.entries() * c.Mode.entryLen()
	g := c.StreamChunkBytes / per
	if g < 1 {
		g = 1
	}
	if max := c.Groups(); g > max {
		g = max
	}
	return g
}

// streamChunks returns how many chunk frames one access's table spans.
func (c LBLConfig) streamChunks() int {
	cg := c.streamChunkGroups()
	return (c.Groups() + cg - 1) / cg
}

// streaming reports whether the chunked-streaming path is active: a
// chunk budget is configured and the table actually spans more than
// one chunk (a single-chunk stream would add frames without overlap).
func (c LBLConfig) streaming() bool {
	return c.StreamChunkBytes > 0 && c.streamChunks() > 1
}

// batchStreamLayout returns how a batch of n accesses is chunked under
// the configured budget: whole per-key segments per chunk, at least
// one.
func (c LBLConfig) batchStreamLayout(n int) (perChunk, nChunks int) {
	segLen := prf.Size + lblClaimLen + c.TableBytes()
	perChunk = c.StreamChunkBytes / segLen
	if perChunk < 1 {
		perChunk = 1
	}
	if perChunk > n {
		perChunk = n
	}
	nChunks = (n + perChunk - 1) / perChunk
	return perChunk, nChunks
}

// batchStreaming reports whether a batch of n accesses takes the
// chunked-streaming path: a budget is configured and the batch spans
// more than one chunk. Single-chunk batches keep the monolithic frame
// — which then never exceeds roughly one chunk budget plus a segment.
func (c LBLConfig) batchStreaming(n int) bool {
	if c.StreamChunkBytes <= 0 {
		return false
	}
	_, nChunks := c.batchStreamLayout(n)
	return nChunks > 1
}

// streamBeginSingleLen is the fixed width of a single-access stream
// begin frame: kind, sub, encoded key, ownership claim, mode, then
// little-endian u32 groups, entry length, chunk groups, chunk count.
const streamBeginSingleLen = 2 + prf.Size + lblClaimLen + 1 + 4*4

// streamBeginBatchLen is the fixed width of a batch stream begin
// frame: kind, sub, mode, then little-endian u32 groups, entry length,
// batch size, keys per chunk, chunk count.
const streamBeginBatchLen = 2 + 1 + 5*4

// StreamRequestBytes returns the total streamed request bytes for one
// access: begin and end frames, per-chunk headers, and the table.
func (c LBLConfig) StreamRequestBytes() int {
	return streamBeginSingleLen + c.streamChunks()*wire.StreamChunkHeaderLen +
		c.TableBytes() + wire.StreamEndLen
}

func (c LBLConfig) validate() error {
	if c.ValueSize <= 0 {
		return fmt.Errorf("core: LBL value size %d must be positive", c.ValueSize)
	}
	if c.Mode > LBLWidePointPermute {
		return fmt.Errorf("core: unknown LBL mode %d", c.Mode)
	}
	if c.StreamChunkBytes < 0 {
		return fmt.Errorf("core: negative stream chunk budget %d", c.StreamChunkBytes)
	}
	return nil
}

// groupBits extracts the y-bit group g from value (little-endian bit
// order within each byte; y ∈ {1, 2, 4} always divides 8, so a group
// never straddles a byte boundary).
func groupBits(value []byte, g, y int) uint8 {
	bit := g * y
	mask := uint8(1)<<y - 1
	return (value[bit/8] >> (uint(bit) % 8)) & mask
}

// setGroupBits writes the y-bit group g of value.
func setGroupBits(value []byte, g, y int, bits uint8) {
	pos := g * y
	mask := uint8(1)<<y - 1
	value[pos/8] |= (bits & mask) << (uint(pos) % 8)
}

// An LBLProxy is the trusted, stateful side of LBL-ORTOA. It holds the
// PRF master secret and the per-key access counters, and talks to the
// untrusted server over client.
type LBLProxy struct {
	cfg      LBLConfig
	prf      *prf.PRF
	counters *counterTable
	client   *transport.Client
	tracer   atomic.Pointer[trace.Tracer]
	// epochs holds the proxy's last granted epoch per counter range,
	// stamped into every access frame (epoch.go). All zeros — the
	// single-proxy state — stamps legacy epoch-0 claims the server
	// always admits.
	epochs [NumRanges]atomic.Uint64
	mx     lblProxyObs
}

// TraceWith attaches a tracer: subsequent accesses record per-stage
// span trees, and their trace ids ride the request frames so the
// server's spans join the same trace.
func (p *LBLProxy) TraceWith(t *trace.Tracer) {
	if t != nil {
		p.tracer.Store(t)
	}
}

// traceStart opens the root span for one proxy-side operation: a child
// of the caller's span when the request arrived traced (the proxy front
// end's server_handle span), else a fresh root from the proxy's own
// tracer, else nil no-op spans throughout.
func (p *LBLProxy) traceStart(ctx context.Context, name string) (*trace.Span, context.Context) {
	if sp := trace.FromContext(ctx); sp != nil {
		c := sp.Child(name)
		return c, trace.ContextWith(ctx, c)
	}
	return p.tracer.Load().Start(ctx, name)
}

// NewLBLProxy returns a proxy using f as its PRF and client to reach
// the server. client may be nil for offline uses (BuildRecord only).
func NewLBLProxy(cfg LBLConfig, f *prf.PRF, client *transport.Client) (*LBLProxy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &LBLProxy{cfg: cfg, prf: f, counters: newCounterTable(), client: client}, nil
}

// Config returns the proxy's configuration.
func (p *LBLProxy) Config() LBLConfig { return p.cfg }

// CounterKeys returns the number of keys with tracked access counters
// — the proxy state whose size §5.3.1 analyzes.
func (p *LBLProxy) CounterKeys() int { return p.counters.Len() }

// SaveCounters persists the access-counter table — the one piece of
// proxy state LBL-ORTOA cannot regenerate. Quiesce accesses first.
func (p *LBLProxy) SaveCounters(w io.Writer) error { return p.counters.save(w) }

// LoadCounters restores a SaveCounters snapshot, merging over current
// entries. A proxy restarted without its counters will fail its first
// access per key with a server-side decryption error rather than
// corrupt data.
func (p *LBLProxy) LoadCounters(r io.Reader) error { return p.counters.load(r) }

// BuildRecord encodes the initial record for (key, value) at access
// counter 0, to be bulk-loaded into the server's store (the Init
// procedure of Figure 1). value must be exactly ValueSize bytes.
func (p *LBLProxy) BuildRecord(key string, value []byte) (encKey string, record []byte, err error) {
	if len(value) != p.cfg.ValueSize {
		return "", nil, ErrValueSize
	}
	y := p.cfg.Mode.Y()
	groups := p.cfg.Groups()
	gen := p.prf.LabelGen(key)
	rec := make([]byte, 0, p.cfg.ServerBytesPerValue())
	rec = append(rec, byte(p.cfg.Mode))
	for g := 0; g < groups; g++ {
		bits := groupBits(value, g, y)
		label := gen.Label(g, bits, 0)
		rec = append(rec, label[:]...)
	}
	if p.cfg.Mode.hasDbits() {
		mask := uint8(p.cfg.Mode.entries() - 1)
		for g := 0; g < groups; g++ {
			bits := groupBits(value, g, y)
			r := gen.PermuteBits(g, 0) & mask
			rec = append(rec, bits^r)
		}
	}
	ek := p.prf.EncodeKey(key)
	return string(ek[:]), rec, nil
}

// Access performs one oblivious access (§5.2). For reads, newValue is
// ignored and the stored value is returned. For writes, newValue
// (exactly ValueSize bytes) replaces the stored value; the returned
// slice echoes the written value.
func (p *LBLProxy) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	return p.AccessContext(context.Background(), op, key, newValue)
}

// AccessContext is Access with a caller context: cancellation plus the
// active trace span, under which the whole proxy-side stage tree
// (counter_acquire, table_build, rpc, label_recover) is recorded.
func (p *LBLProxy) AccessContext(ctx context.Context, op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var stats AccessStats
	if op == OpWrite && len(newValue) != p.cfg.ValueSize {
		return nil, stats, ErrValueSize
	}
	if p.client == nil {
		return nil, stats, fmt.Errorf("core: LBL proxy has no server connection")
	}
	root, ctx := p.traceStart(ctx, "lbl_access")
	defer root.End()

	// Per-key serialization: the label schedule is counter-indexed,
	// so a key's accesses must not interleave (see counterTable).
	sw := obs.StartWatch(p.mx.enabled)
	spAcq := root.Child("counter_acquire")
	entry := p.counters.acquire(key)
	defer entry.mu.Unlock()
	if entry.pending != nil {
		// A previous round for this key failed ambiguously; settle it
		// (at-most-once replay, see pending.go) before building a table
		// at a counter value that may already be stale.
		if err := p.resolvePending(key, entry); err != nil {
			spAcq.End()
			p.mx.errors.Inc()
			return nil, stats, err
		}
	}
	spAcq.End()
	dAcquire := sw.Lap(p.mx.acquire)

	var dBuild, dRPC time.Duration
	var resp []byte
	// Each recovery transition below is bounded per access, and they may
	// chain: an adoption (fence → claim) typically exposes a
	// desynchronized counter on its retry (the adopter starts from a
	// stale or empty snapshot), which reconciliation then rebases. The
	// allowance is >1 because during a live ownership handoff a peer can
	// adopt the range back (or advance the counter) between our recovery
	// step and its retry; the transient resolves within a lap or two.
	const recoveryAllowance = 3
	var claimed, reconciled int
	streamed := p.cfg.streaming()
	for {
		// Dead callers get no table: garbling is the proxy's most
		// expensive stage, so an access whose propagated deadline has
		// already passed is dropped before building anything
		// (DESIGN.md §15). Nothing was sent — a definite non-execution,
		// never parked as ambiguous.
		if ctx.Err() != nil {
			p.mx.errors.Inc()
			return nil, stats, errDeadlineBeforeBuild
		}
		var reqW *wire.Writer
		var id uint64
		var err error
		if streamed {
			// Chunked-streaming path: build and send are one pipelined
			// stage, so the build/rpc split comes from streamAccess's own
			// sealing measurement rather than stopwatch laps.
			id = p.client.NextID()
			var db time.Duration
			resp, db, err = p.streamAccess(ctx, root, id, op, key, newValue, entry.ct)
			wall := sw.Lap(nil)
			dBuild += db
			dr := wall - db
			if dr < 0 {
				dr = 0
			}
			dRPC += dr
			if p.mx.enabled {
				p.mx.build.Observe(db)
				p.mx.rpc.Observe(dr)
			}
			stats.PrepBytes = p.cfg.StreamRequestBytes()
		} else {
			// The request buffer is pooled: framing allocates nothing in
			// steady state. It is released after the RPC settles — except
			// when the round is parked for at-most-once replay, which
			// retains the bytes.
			spBuild := root.Child("table_build")
			reqW = wire.GetWriter(p.cfg.RequestBytesPerAccess())
			if err = p.buildRequestInto(reqW, op, key, newValue, entry.ct); err != nil {
				spBuild.End()
				wire.PutWriter(reqW)
				p.mx.errors.Inc()
				return nil, stats, err
			}
			req := reqW.Bytes()
			spBuild.End()
			dBuild += sw.Lap(p.mx.build)
			stats.PrepBytes = len(req)

			id = p.client.NextID()
			spRPC := root.Child("rpc")
			resp, err = p.client.CallContextID(trace.ContextWith(ctx, spRPC), id, MsgLBLAccess, req)
			spRPC.End()
		}
		if err == nil {
			if reqW != nil {
				wire.PutWriter(reqW)
			}
			break
		}
		if transport.Ambiguous(err) {
			// The round may have executed; park it so the key's next
			// access settles the outcome before trusting the counter.
			// A monolithic round parks its request bytes, so reqW is not
			// returned to the pool; a streamed round's chunks went out in
			// pooled frames, so it parks none — resolution rebuilds a
			// monolithic request at the same counter (pending.go).
			pr := &pendingRound{id: id, msgType: MsgLBLAccess,
				op: op, value: pendingValue(op, newValue)}
			if reqW != nil {
				pr.req = reqW.Bytes()
			}
			entry.pending = pr
			p.mx.pendingSaved.Inc()
			p.mx.errors.Inc()
			return nil, stats, err
		}
		if reqW != nil {
			wire.PutWriter(reqW)
		}
		if claimed < recoveryAllowance && p.cfg.AutoAdopt && isFencedRound(err) {
			// The range's epoch moved past ours: we are being handed
			// ownership (or re-learning it after a restart). Claim the
			// range — fencing out every older owner — and retry at the
			// granted epoch.
			claimed++
			p.mx.fencedRounds.Inc()
			if !streamed {
				sw.Lap(p.mx.rpc)
			}
			if _, cerr := p.ClaimRange(RangeOf(key)); cerr == nil {
				sw.Lap(nil)
				continue
			}
			p.mx.errors.Inc()
			return nil, stats, err
		}
		if reconciled < recoveryAllowance && p.cfg.ReconcileScan > 0 && isStaleRound(err) {
			// A fresh stale rejection with no parked round means the
			// counter and the server's record have desynchronized
			// (crash recovery on either side, or a just-adopted range
			// whose counters we never held). Re-locate the server's
			// counter and retry this access at the rebased value.
			reconciled++
			if !streamed {
				sw.Lap(p.mx.rpc)
			}
			if rerr := p.reconcile(key, entry); rerr == nil {
				sw.Lap(nil)
				continue
			}
			p.mx.errors.Inc()
			return nil, stats, err
		}
		p.mx.errors.Inc()
		return nil, stats, err
	}
	if !streamed {
		dRPC += sw.Lap(p.mx.rpc)
	}
	stats.RespBytes = len(resp)

	spRec := root.Child("label_recover")
	value, err := p.recover(op, key, newValue, entry.ct+1, resp)
	spRec.End()
	if err != nil {
		p.mx.errors.Inc()
		return nil, stats, err
	}
	dRecover := sw.Lap(p.mx.recover)
	entry.ct++ // commit the counter only after a successful round
	if p.mx.enabled {
		total := dAcquire + dBuild + dRPC + dRecover
		p.mx.e2e.ObserveExemplar(total, root.TraceID())
		if p.mx.slow.Worthy(total) {
			ek := p.prf.EncodeKey(key)
			p.mx.slow.Record(obs.Trace{
				At:    time.Now(),
				Label: traceLabel(ek[:]),
				Total: total,
				Stages: []obs.Stage{
					{Name: "counter_acquire", D: dAcquire},
					{Name: "table_build", D: dBuild},
					{Name: "rpc", D: dRPC},
					{Name: "label_recover", D: dRecover},
				},
			})
		}
	}
	return value, stats, nil
}

// minGroupsPerWorker bounds the table-build and recovery fan-out:
// below this many groups per worker the goroutine handoff costs more
// than the crypto it offloads.
const minGroupsPerWorker = 64

// tableWorkers returns the worker count for a CPU-bound pass over a
// groups-group table under GOMAXPROCS, never exceeding one worker per
// minGroupsPerWorker groups.
func tableWorkers(groups int) int {
	w := runtime.GOMAXPROCS(0)
	if cap := groups / minGroupsPerWorker; w > cap {
		w = cap
	}
	if w < 1 {
		w = 1
	}
	return w
}

// buildRequestInto encodes the MsgLBLAccess request for key at counter
// ct into w (steps 1.1–1.5 of §5.2).
func (p *LBLProxy) buildRequestInto(w *wire.Writer, op Op, key string, newValue []byte, ct uint64) error {
	cfg := p.cfg
	ek := p.prf.EncodeKey(key)
	w.Raw(ek[:])
	rid := RangeOf(key)
	w.Uint32(rid)
	w.Uint64(p.rangeEpoch(rid))
	w.Byte(byte(cfg.Mode))
	w.Uvarint(uint64(cfg.Groups()))
	w.Uvarint(uint64(cfg.Mode.entryLen()))
	return p.appendAccessTable(w, key, op, newValue, ct, tableWorkers(cfg.Groups()))
}

// buildRequest is the allocating form of buildRequestInto, used by the
// cold paths (reconciliation probes, pending-round resolution) whose
// requests may be retained indefinitely and so must not come from the
// writer pool.
func (p *LBLProxy) buildRequest(op Op, key string, newValue []byte, ct uint64) ([]byte, error) {
	w := wire.NewWriter(p.cfg.RequestBytesPerAccess())
	if err := p.buildRequestInto(w, op, key, newValue, ct); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// appendAccessTable appends key's encryption table for counter ct to w
// (steps 1.2–1.5 of §5.2), building it in place in w's buffer.
func (p *LBLProxy) appendAccessTable(w *wire.Writer, key string, op Op, newValue []byte, ct uint64, workers int) error {
	return p.buildAccessTable(w.Extend(p.cfg.TableBytes()), key, op, newValue, ct, workers)
}

// buildAccessTable fills table — exactly cfg.TableBytes() bytes — with
// key's encryption table for counter ct, fanning group ranges out
// across workers. Entry slots are fixed-size, so each worker seals
// directly into its precomputed offsets; workers share nothing but the
// read-only inputs, a cloned label generator each, and one lane each of
// a seeded crypto-strength shuffle stream (see shuffle.go). The label
// schedule and the entry-placement distribution are identical to the
// sequential build, so the server-visible transcript distribution — and
// with it the obliviousness argument — is unchanged. workers <= 1
// builds inline, allocation-free.
func (p *LBLProxy) buildAccessTable(table []byte, key string, op Op, newValue []byte, ct uint64, workers int) error {
	groups := p.cfg.Groups()
	gen := p.prf.LabelGen(key)
	if workers > groups {
		workers = groups
	}
	if workers <= 1 {
		return p.buildGroupRange(table, gen, newCryptoShuffler(), op, newValue, ct, 0, groups, 0)
	}
	seed := newShuffleSeed()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		g0 := groups * wk / workers
		g1 := groups * (wk + 1) / workers
		wg.Add(1)
		go func(wk, g0, g1 int) {
			defer wg.Done()
			errs[wk] = p.buildGroupRange(table, gen.Clone(), seed.stream(uint32(wk)), op, newValue, ct, g0, g1, 0)
		}(wk, g0, g1)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// buildGroupRange seals groups [g0, g1) of the table into their slots
// (steps 1.2–1.5 of §5.2 for those groups). gen and shuf are owned by
// the caller — one per worker — so the loop body allocates nothing.
// table holds groups starting at absolute group gBase: full-table
// builders pass 0, the streaming path passes its chunk's first group
// so one chunk-sized buffer serves the whole table.
func (p *LBLProxy) buildGroupRange(table []byte, gen *prf.LabelGen, shuf *cryptoShuffler, op Op, newValue []byte, ct uint64, g0, g1, gBase int) error {
	cfg := p.cfg
	y := cfg.Mode.Y()
	nEntries := cfg.Mode.entries()
	entryLen := cfg.Mode.entryLen()
	sealer := secretbox.NewLabelSealer()

	var olds, news [16]prf.Output
	var plain [prf.Size + 1]byte
	var perm [16]int
	for g := g0; g < g1; g++ {
		slots := table[(g-gBase)*nEntries*entryLen : (g-gBase+1)*nEntries*entryLen]
		for b := 0; b < nEntries; b++ {
			olds[b] = gen.Label(g, uint8(b), ct)
			news[b] = gen.Label(g, uint8(b), ct+1)
		}
		var newBits uint8
		if op == OpWrite {
			newBits = groupBits(newValue, g, y)
		}

		if cfg.Mode.hasDbits() {
			// Point-and-permute: entry e is keyed by old label
			// ol_{e⊕r}; its plaintext carries the new label and the
			// next decryption bits, linked through r' (§10.2).
			mask := uint8(nEntries - 1)
			r := gen.PermuteBits(g, ct) & mask
			rNew := gen.PermuteBits(g, ct+1) & mask
			for e := 0; e < nEntries; e++ {
				b := uint8(e) ^ r
				target := b
				if op == OpWrite {
					target = newBits
				}
				copy(plain[:prf.Size], news[target][:])
				plain[prf.Size] = target ^ rNew
				if err := sealer.SealInto(slots[e*entryLen:(e+1)*entryLen], olds[b][:], plain[:]); err != nil {
					return err
				}
			}
			continue
		}

		// Basic / space-optimized: entries are generated in bit-value
		// order, so each is sealed directly into a uniformly random slot
		// (step 1.5). The slot permutation must be cryptographically
		// unpredictable — a guessable placement would leak plaintext
		// bits by position.
		shuf.perm(nEntries, perm[:])
		for b := 0; b < nEntries; b++ {
			target := uint8(b)
			if op == OpWrite {
				target = newBits
			}
			slot := perm[b]
			if err := sealer.SealInto(slots[slot*entryLen:(slot+1)*entryLen], olds[b][:], news[target][:]); err != nil {
				return err
			}
		}
	}
	return nil
}

// buildChunkGroups seals groups [g0, g1) into a chunk-local table
// buffer (table[0] holds group g0), fanning out across workers like
// buildAccessTable. Entry placement draws fresh crypto-random shuffle
// streams per chunk; placements are independent and uniform per group
// in every variant, so the transcript distribution is identical to the
// monolithic build's.
func (p *LBLProxy) buildChunkGroups(table []byte, gen *prf.LabelGen, op Op, newValue []byte, ct uint64, g0, g1 int) error {
	n := g1 - g0
	workers := tableWorkers(n)
	if workers <= 1 {
		return p.buildGroupRange(table, gen, newCryptoShuffler(), op, newValue, ct, g0, g1, g0)
	}
	seed := newShuffleSeed()
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		a := g0 + n*wk/workers
		b := g0 + n*(wk+1)/workers
		wg.Add(1)
		go func(wk, a, b int) {
			defer wg.Done()
			errs[wk] = p.buildGroupRange(table, gen.Clone(), seed.stream(uint32(wk)), op, newValue, ct, a, b, g0)
		}(wk, a, b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// streamAccess performs one access over the chunked-streaming path
// (MsgLBLAccessStream): the table is sealed chunk-by-chunk into one
// pooled buffer and each chunk is written to the wire as soon as it is
// sealed, so the server trial-decrypts chunk i while the proxy seals
// chunk i+1 and the WAN carries both. Returns the response labels and
// the time spent sealing (the build share of the wall time; the rest
// is wire and server time the pipeline overlaps).
func (p *LBLProxy) streamAccess(ctx context.Context, root *trace.Span, id uint64, op Op, key string, newValue []byte, ct uint64) ([]byte, time.Duration, error) {
	cfg := p.cfg
	groups := cfg.Groups()
	nEntries := cfg.Mode.entries()
	entryLen := cfg.Mode.entryLen()
	cg := cfg.streamChunkGroups()
	nChunks := cfg.streamChunks()
	gen := p.prf.LabelGen(key)

	// The spans deliberately overlap: table_build ends when the last
	// chunk is sealed, rpc when the response lands — the gap between
	// their ends is the pipeline's tail, visible per trace.
	spBuild := root.Child("table_build")
	buildEnded := false
	endBuild := func() {
		if !buildEnded {
			buildEnded = true
			spBuild.End()
		}
	}
	defer endBuild()
	spRPC := root.Child("rpc")
	defer spRPC.End()

	var buildTime time.Duration
	resp, err := p.client.CallStreamContextID(trace.ContextWith(ctx, spRPC), id, MsgLBLAccessStream,
		func(send func([]byte) error) error {
			bw := wire.GetWriter(streamBeginSingleLen)
			bw.Byte(wire.StreamBegin)
			bw.Byte(wire.StreamSingle)
			ek := p.prf.EncodeKey(key)
			bw.Raw(ek[:])
			rid := RangeOf(key)
			putClaim(bw.Extend(lblClaimLen), rid, p.rangeEpoch(rid))
			bw.Byte(byte(cfg.Mode))
			bw.Uint32(uint32(groups))
			bw.Uint32(uint32(entryLen))
			bw.Uint32(uint32(cg))
			bw.Uint32(uint32(nChunks))
			serr := send(bw.Bytes())
			wire.PutWriter(bw)
			if serr != nil {
				return serr
			}
			// One pooled chunk buffer, reused for every chunk: the
			// transport copies the payload into its frame buffer before
			// send returns, so peak proxy table memory per access is one
			// chunk budget, not the full ℓ/y-group table.
			cw := wire.GetWriter(wire.StreamChunkHeaderLen + cg*nEntries*entryLen)
			defer wire.PutWriter(cw)
			for i := 0; i < nChunks; i++ {
				g0 := i * cg
				g1 := g0 + cg
				if g1 > groups {
					g1 = groups
				}
				cw.Reset()
				wire.PutStreamChunkHeader(cw, wire.StreamSingle, byte(cfg.Mode), uint32(groups), uint32(i), uint32(g1-g0))
				t0 := time.Now()
				if berr := p.buildChunkGroups(cw.Extend((g1-g0)*nEntries*entryLen), gen, op, newValue, ct, g0, g1); berr != nil {
					return berr
				}
				buildTime += time.Since(t0)
				if serr := send(cw.Bytes()); serr != nil {
					return serr
				}
				p.mx.streamChunks.Inc()
			}
			endBuild()
			ew := wire.GetWriter(wire.StreamEndLen)
			wire.PutStreamEnd(ew, wire.StreamSingle, uint32(nChunks))
			serr = send(ew.Bytes())
			wire.PutWriter(ew)
			return serr
		})
	if err == nil {
		p.mx.streamRounds.Inc()
	}
	return resp, buildTime, err
}

// streamBatch performs one batched round over the chunked-streaming
// path: whole per-key segments (key, claim, table) are sealed
// chunk-by-chunk into one pooled buffer and shipped as they complete,
// so the server decrypts the first keys while later tables are still
// being garbled. Returns the batch response and the time spent
// sealing.
func (p *LBLProxy) streamBatch(ctx context.Context, root *trace.Span, id uint64, ops []BatchOp, idxs []int, entries []*counterEntry, inner int) ([]byte, time.Duration, error) {
	cfg := p.cfg
	groups := cfg.Groups()
	segLen := prf.Size + lblClaimLen + cfg.TableBytes()
	n := len(idxs)
	perChunk, nChunks := cfg.batchStreamLayout(n)

	spBuild := root.Child("table_build")
	buildEnded := false
	endBuild := func() {
		if !buildEnded {
			buildEnded = true
			spBuild.End()
		}
	}
	defer endBuild()
	spRPC := root.Child("rpc")
	defer spRPC.End()

	var buildTime time.Duration
	resp, err := p.client.CallStreamContextID(trace.ContextWith(ctx, spRPC), id, MsgLBLAccessStream,
		func(send func([]byte) error) error {
			bw := wire.GetWriter(streamBeginBatchLen)
			bw.Byte(wire.StreamBegin)
			bw.Byte(wire.StreamBatch)
			bw.Byte(byte(cfg.Mode))
			bw.Uint32(uint32(groups))
			bw.Uint32(uint32(cfg.Mode.entryLen()))
			bw.Uint32(uint32(n))
			bw.Uint32(uint32(perChunk))
			bw.Uint32(uint32(nChunks))
			serr := send(bw.Bytes())
			wire.PutWriter(bw)
			if serr != nil {
				return serr
			}
			cw := wire.GetWriter(wire.StreamChunkHeaderLen + perChunk*segLen)
			defer wire.PutWriter(cw)
			buildErrs := make([]error, perChunk)
			for c := 0; c < nChunks; c++ {
				k0 := c * perChunk
				k1 := k0 + perChunk
				if k1 > n {
					k1 = n
				}
				cw.Reset()
				wire.PutStreamChunkHeader(cw, wire.StreamBatch, byte(cfg.Mode), uint32(groups), uint32(c), uint32(k1-k0))
				segs := cw.Extend((k1 - k0) * segLen)
				t0 := time.Now()
				forEachBatched(k1-k0, func(j int) {
					op := ops[idxs[k0+j]]
					seg := segs[j*segLen : (j+1)*segLen]
					ek := p.prf.EncodeKey(op.Key)
					copy(seg, ek[:])
					rid := RangeOf(op.Key)
					putClaim(seg[prf.Size:], rid, p.rangeEpoch(rid))
					buildErrs[j] = p.buildAccessTable(seg[prf.Size+lblClaimLen:], op.Key, op.Op, op.Value, entries[k0+j].ct, inner)
				})
				buildTime += time.Since(t0)
				for _, berr := range buildErrs[:k1-k0] {
					if berr != nil {
						return berr
					}
				}
				if serr := send(cw.Bytes()); serr != nil {
					return serr
				}
				p.mx.streamChunks.Inc()
			}
			endBuild()
			ew := wire.GetWriter(wire.StreamEndLen)
			wire.PutStreamEnd(ew, wire.StreamBatch, uint32(nChunks))
			serr = send(ew.Bytes())
			wire.PutWriter(ew)
			return serr
		})
	if err == nil {
		p.mx.streamRounds.Inc()
	}
	return resp, buildTime, err
}

// recover maps the server's returned labels back to plaintext bits
// using the counter-(ct+1) label schedule, and performs the §5.4
// integrity check: every returned label must be one the proxy could
// have generated.
func (p *LBLProxy) recover(op Op, key string, newValue []byte, ctNew uint64, resp []byte) ([]byte, error) {
	return p.recoverWorkers(op, key, newValue, ctNew, resp, tableWorkers(p.cfg.Groups()))
}

// recoverWorkers is recover with an explicit fan-out: group ranges are
// recovered across workers, each with a cloned label generator. Ranges
// are aligned to whole value bytes because setGroupBits read-modify-
// writes its byte — two workers must never share one.
func (p *LBLProxy) recoverWorkers(op Op, key string, newValue []byte, ctNew uint64, resp []byte, workers int) ([]byte, error) {
	cfg := p.cfg
	groups := cfg.Groups()
	if len(resp) != groups*prf.Size {
		return nil, fmt.Errorf("%w: response has %d bytes, want %d", ErrTampered, len(resp), groups*prf.Size)
	}
	gen := p.prf.LabelGen(key)
	value := make([]byte, cfg.ValueSize)
	if workers > cfg.ValueSize {
		workers = cfg.ValueSize
	}
	if workers <= 1 {
		if err := p.recoverRange(value, resp, gen, ctNew, 0, groups); err != nil {
			return nil, err
		}
	} else {
		groupsPerByte := 8 / cfg.Mode.Y()
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			b0 := cfg.ValueSize * wk / workers
			b1 := cfg.ValueSize * (wk + 1) / workers
			wg.Add(1)
			go func(wk, g0, g1 int) {
				defer wg.Done()
				errs[wk] = p.recoverRange(value, resp, gen.Clone(), ctNew, g0, g1)
			}(wk, b0*groupsPerByte, b1*groupsPerByte)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	if op == OpWrite {
		// The installed labels must reflect exactly the written value.
		for i := range value {
			if value[i] != newValue[i] {
				return nil, fmt.Errorf("%w: write-back mismatch at byte %d", ErrTampered, i)
			}
		}
	}
	return value, nil
}

// recoverRange recovers groups [g0, g1) of value from the response
// labels (§5.4 check included).
func (p *LBLProxy) recoverRange(value, resp []byte, gen *prf.LabelGen, ctNew uint64, g0, g1 int) error {
	cfg := p.cfg
	y := cfg.Mode.Y()
	nEntries := cfg.Mode.entries()
	var got prf.Output
	for g := g0; g < g1; g++ {
		copy(got[:], resp[g*prf.Size:])
		matched := false
		for b := 0; b < nEntries; b++ {
			if got.Equal(gen.Label(g, uint8(b), ctNew)) {
				setGroupBits(value, g, y, uint8(b))
				matched = true
				break
			}
		}
		if !matched {
			return fmt.Errorf("%w: group %d label unrecognized", ErrTampered, g)
		}
	}
	return nil
}

// A BatchOp is one operation of an AccessBatch. For OpWrite, Value must
// be exactly ValueSize bytes; for OpRead it is ignored.
type BatchOp struct {
	Op    Op
	Key   string
	Value []byte
}

// maxBatchFrameBytes caps one MsgLBLAccessBatch payload, leaving ample
// headroom under transport.MaxFrameSize; larger batches are split into
// several RPCs transparently.
const maxBatchFrameBytes = 48 << 20

// AccessBatch performs many oblivious accesses in (normally) one round
// trip: it acquires every key's counter, builds all encryption tables,
// sends them in a single MsgLBLAccessBatch frame, and recovers every
// value from the single response (§5.2 amortized; see DESIGN.md).
//
// Results are returned in input order; reads yield the stored value,
// writes echo the written value. Two cases need more than one RPC:
// batches whose tables exceed the frame cap are split, and accesses to
// a key that appears more than once are issued in occurrence-order
// waves, because a key's label schedule is counter-indexed and its
// accesses must not share a counter value.
//
// On a per-key server error (e.g. an unloaded key), the remaining
// accesses still complete — their values are set and their counters
// committed — and AccessBatch returns the first error alongside the
// partial results.
func (p *LBLProxy) AccessBatch(ops []BatchOp) ([][]byte, AccessStats, error) {
	var stats AccessStats
	if p.client == nil {
		return nil, stats, fmt.Errorf("core: LBL proxy has no server connection")
	}
	for i := range ops {
		switch ops[i].Op {
		case OpRead:
		case OpWrite:
			if len(ops[i].Value) != p.cfg.ValueSize {
				return nil, stats, fmt.Errorf("batch op %d (%q): %w", i, ops[i].Key, ErrValueSize)
			}
		default:
			return nil, stats, fmt.Errorf("core: batch op %d: unknown op %d", i, ops[i].Op)
		}
	}

	all := make([]int, len(ops))
	for i := range all {
		all[i] = i
	}
	values := make([][]byte, len(ops))
	firstErr := p.accessBatchIndices(context.Background(), ops, all, values, make([]error, len(ops)), &stats)
	return values, stats, firstErr
}

// A BatchResult is one access's outcome within a batched round: the
// value (the stored value for a read, the written value echoed for a
// write) or that access's individual error.
type BatchResult struct {
	Value []byte
	Err   error
}

// AccessBatchResults is AccessBatch with per-access outcomes instead
// of first-error-wins: every access's value or error is reported at
// its own index, and an invalid op (unknown op code, wrong write
// size) fails only itself — the rest of the batch still runs. It
// exists for front ends that multiplex independent sessions into one
// frame (the Aggregator): one session's unloaded key must not fail
// its window mates.
func (p *LBLProxy) AccessBatchResults(ctx context.Context, ops []BatchOp) ([]BatchResult, AccessStats) {
	var stats AccessStats
	results := make([]BatchResult, len(ops))
	if p.client == nil {
		err := fmt.Errorf("core: LBL proxy has no server connection")
		for i := range results {
			results[i].Err = err
		}
		return results, stats
	}
	valid := make([]int, 0, len(ops))
	for i := range ops {
		switch ops[i].Op {
		case OpRead:
			valid = append(valid, i)
		case OpWrite:
			if len(ops[i].Value) != p.cfg.ValueSize {
				results[i].Err = fmt.Errorf("batch op %d (%q): %w", i, ops[i].Key, ErrValueSize)
				continue
			}
			valid = append(valid, i)
		default:
			results[i].Err = fmt.Errorf("core: batch op %d: unknown op %d", i, ops[i].Op)
		}
	}
	values := make([][]byte, len(ops))
	errs := make([]error, len(ops))
	p.accessBatchIndices(ctx, ops, valid, values, errs, &stats)
	for _, i := range valid {
		results[i] = BatchResult{Value: values[i], Err: errs[i]}
	}
	return results, stats
}

// accessBatchIndices runs the accesses ops[include...] through the
// wave/chunk pipeline, filling values and errs at the original
// indices, and returns the first error in chunk-processing order.
// Callers have already validated the included ops.
func (p *LBLProxy) accessBatchIndices(ctx context.Context, ops []BatchOp, include []int, values [][]byte, errs []error, stats *AccessStats) error {
	// Wave w holds the w-th occurrence of each key, so duplicate keys
	// never share a frame (their counters must advance between them).
	occurrence := make(map[string]int, len(include))
	var waves [][]int
	for _, i := range include {
		w := occurrence[ops[i].Key]
		occurrence[ops[i].Key] = w + 1
		if w == len(waves) {
			waves = append(waves, nil)
		}
		waves[w] = append(waves[w], i)
	}

	// Monolithic batches must fit one request frame, so the per-call cap
	// derives from the per-key segment (key, claim, table) size. With a
	// stream chunk budget configured, each chunk travels in its own
	// frame, so the binding frame is the single response — a status byte
	// plus a label block per key — and large-value batches no longer
	// split into extra waves just because their tables would not share
	// one request frame.
	var maxPerCall int
	if p.cfg.StreamChunkBytes > 0 {
		maxPerCall = (maxBatchFrameBytes - 32) / (1 + p.cfg.Groups()*prf.Size)
		if maxPerCall > maxBatchAccesses {
			maxPerCall = maxBatchAccesses
		}
	} else {
		maxPerCall = (maxBatchFrameBytes - 32) / (prf.Size + lblClaimLen + p.cfg.TableBytes())
	}
	if maxPerCall < 1 {
		maxPerCall = 1
	}

	var firstErr error
	for _, wave := range waves {
		// Deterministic lock order: counters are acquired in sorted key
		// order, so concurrent AccessBatch calls cannot deadlock.
		sort.Slice(wave, func(a, b int) bool { return ops[wave[a]].Key < ops[wave[b]].Key })
		for start := 0; start < len(wave); start += maxPerCall {
			end := start + maxPerCall
			if end > len(wave) {
				end = len(wave)
			}
			st, err := p.accessBatchChunk(ctx, ops, wave[start:end], values, errs)
			stats.PrepBytes += st.PrepBytes
			stats.RespBytes += st.RespBytes
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// batchWorkers returns the worker count for the CPU-bound stages of a
// batch of n accesses: table construction and label recovery both fan
// out across cores, mirroring the server's handler, so the one-frame
// pipeline never loses to the concurrent fallback on compute.
func batchWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachBatched runs fn(i) for i in [0, n) across batchWorkers(n)
// goroutines and returns after all complete.
func forEachBatched(n int, fn func(i int)) {
	workers := batchWorkers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// accessBatchChunk performs one MsgLBLAccessBatch RPC for the accesses
// ops[idxs...], whose keys are unique and sorted. It fills values at
// the original indices and commits the counter of every access the
// server completed. Per-access failures are recorded in errs at the
// original indices; a failure before the frame is sent (or a
// transport failure of the frame itself) fails every access in the
// chunk, since none of them ran.
func (p *LBLProxy) accessBatchChunk(ctx context.Context, ops []BatchOp, idxs []int, values [][]byte, errs []error) (AccessStats, error) {
	var stats AccessStats
	root, ctx := p.traceStart(ctx, "lbl_access_batch")
	defer root.End()
	cfg := p.cfg
	groups := cfg.Groups()
	failChunk := func(err error) {
		for _, idx := range idxs {
			if errs[idx] == nil {
				errs[idx] = err
			}
		}
	}

	sw := obs.StartWatch(p.mx.enabled)
	spAcq := root.Child("counter_acquire")
	entries := make([]*counterEntry, len(idxs))
	for i, idx := range idxs {
		entries[i] = p.counters.acquire(ops[idx].Key)
	}
	defer func() {
		for _, e := range entries {
			e.mu.Unlock()
		}
	}()
	// Settle any ambiguous earlier rounds before building tables: a
	// resolution can advance a key's counter, and the tables below must
	// be built at the settled values. An unresolvable round fails the
	// whole chunk — no frame was sent, so no counter state changed.
	for i, idx := range idxs {
		if entries[i].pending != nil {
			if err := p.resolvePending(ops[idx].Key, entries[i]); err != nil {
				failChunk(err)
				return stats, err
			}
		}
	}
	spAcq.End()
	sw.Lap(p.mx.batchAcquire)
	p.mx.batchKeys.Add(int64(len(idxs)))

	// Dead callers get no tables: drop the chunk before garbling
	// anything if the propagated deadline has already passed — no frame
	// was sent, so this is a definite non-execution for every key.
	if ctx.Err() != nil {
		failChunk(errDeadlineBeforeBuild)
		return stats, errDeadlineBeforeBuild
	}

	segLen := prf.Size + lblClaimLen + cfg.TableBytes()
	inner := runtime.GOMAXPROCS(0) / len(idxs)
	if inner < 1 {
		inner = 1
	}

	var resp []byte
	var req []byte
	var id uint64
	var err error
	if cfg.batchStreaming(len(idxs)) {
		// Chunked-streaming path: segments are sealed and shipped
		// chunk-by-chunk, so the server starts decrypting the first keys
		// while later tables are still being garbled.
		id = p.client.NextID()
		var db time.Duration
		resp, db, err = p.streamBatch(ctx, root, id, ops, idxs, entries, inner)
		wall := sw.Lap(nil)
		dr := wall - db
		if dr < 0 {
			dr = 0
		}
		if p.mx.enabled {
			p.mx.batchBuild.Observe(db)
			p.mx.batchRPC.Observe(dr)
		}
		_, nChunks := cfg.batchStreamLayout(len(idxs))
		stats.PrepBytes = streamBeginBatchLen + nChunks*wire.StreamChunkHeaderLen +
			len(idxs)*segLen + wire.StreamEndLen
	} else {
		// Build every key's ek‖table segment in parallel, sealing directly
		// into the frame: segments are fixed-size, so each builder owns a
		// precomputed byte range of the pooled request buffer — no per-key
		// writers, no splice pass. Table construction is the proxy's
		// dominant CPU cost (2·ℓ PRFs plus 2^y·ℓ/y seals per key, §6.3.3),
		// so it must not serialize behind a single core when the concurrent
		// fallback would not. The batch already fans out across keys; inner
		// per-table workers only multiply up to the core count when the
		// batch is smaller than the machine.
		spBuild := root.Child("table_build")
		w := wire.GetWriter(cfg.BatchRequestBytes(len(idxs)))
		// Exactly-once release: every exit funnels through this flag, so
		// no error path can double-return the buffer or leak it. The
		// parked-rounds path below keeps the bytes by setting the flag
		// without putting.
		released := false
		release := func(keep bool) {
			if !released {
				released = true
				if !keep {
					wire.PutWriter(w)
				}
			}
		}
		defer release(false)
		w.Byte(byte(cfg.Mode))
		w.Uvarint(uint64(groups))
		w.Uvarint(uint64(cfg.Mode.entryLen()))
		w.Uvarint(uint64(len(idxs)))
		segs := w.Extend(len(idxs) * segLen)
		buildErrs := make([]error, len(idxs))
		forEachBatched(len(idxs), func(i int) {
			op := ops[idxs[i]]
			seg := segs[i*segLen : (i+1)*segLen]
			ek := p.prf.EncodeKey(op.Key)
			copy(seg, ek[:])
			rid := RangeOf(op.Key)
			putClaim(seg[prf.Size:], rid, p.rangeEpoch(rid))
			buildErrs[i] = p.buildAccessTable(seg[prf.Size+lblClaimLen:], op.Key, op.Op, op.Value, entries[i].ct, inner)
		})
		for _, berr := range buildErrs {
			if berr != nil {
				spBuild.End()
				failChunk(berr)
				return stats, berr
			}
		}
		spBuild.End()
		sw.Lap(p.mx.batchBuild)
		stats.PrepBytes = w.Len()

		id = p.client.NextID()
		req = w.Bytes()
		spRPC := root.Child("rpc")
		resp, err = p.client.CallContextID(trace.ContextWith(ctx, spRPC), id, MsgLBLAccessBatch, req)
		spRPC.End()
		if transport.Ambiguous(err) {
			release(true) // the parked rounds below own the bytes
		} else {
			release(false)
		}
		if err == nil {
			sw.Lap(p.mx.batchRPC)
		}
	}
	if err != nil {
		if transport.Ambiguous(err) {
			// The whole chunk is ambiguous. Park the same round on every
			// key; each key settles its own slice of the outcome on its
			// next access (replays of one id dedup to a single execution
			// server-side). Monolithic rounds share the retained request
			// bytes; streamed rounds park none — the server applies their
			// chunks incrementally, so resolution probes each key
			// individually instead of replaying bytes (pending.go).
			for i, e := range entries {
				op := ops[idxs[i]]
				e.pending = &pendingRound{id: id, msgType: MsgLBLAccessBatch, req: req,
					batch: true, pos: i, op: op.Op, value: pendingValue(op.Op, op.Value)}
			}
			p.mx.pendingSaved.Add(int64(len(entries)))
			failChunk(err)
			return stats, err
		}
		failChunk(err)
		return stats, err
	}
	stats.RespBytes = len(resp)

	// First pass, sequential: walk the variable-length response to
	// slice out each access's labels or error.
	r := wire.NewReader(resp)
	labelSlices := make([][]byte, len(idxs))
	remoteMsgs := make([]string, len(idxs))
	failed := make([]bool, len(idxs))
	for i := range idxs {
		if status := r.Byte(); status != 0 {
			failed[i] = true
			remoteMsgs[i] = r.String()
			continue
		}
		labelSlices[i] = r.Raw(groups * prf.Size)
		if r.Err() != nil {
			break // truncated response; reported via Finish below
		}
	}
	if err := r.Finish(); err != nil {
		err = fmt.Errorf("%w: malformed batch response: %v", ErrTampered, err)
		failChunk(err)
		return stats, err
	}

	// Second pass, parallel: recover each value from its labels (2^y·ℓ/y
	// PRF comparisons per key in the worst case).
	spRec := root.Child("label_recover")
	recovered := make([][]byte, len(idxs))
	recoverErrs := make([]error, len(idxs))
	forEachBatched(len(idxs), func(i int) {
		if failed[i] {
			return
		}
		op := ops[idxs[i]]
		recovered[i], recoverErrs[i] = p.recoverWorkers(op.Op, op.Key, op.Value, entries[i].ct+1, labelSlices[i], inner)
	})
	spRec.End()
	sw.Lap(p.mx.batchRecover)

	var firstErr error
	for i, idx := range idxs {
		op := ops[idx]
		if failed[i] {
			// Per-key failure: the server left this record untouched,
			// so the counter must not advance.
			errs[idx] = fmt.Errorf("core: batch access %q: %w", op.Key, &transport.RemoteError{Msg: remoteMsgs[i]})
			if firstErr == nil {
				firstErr = errs[idx]
			}
			continue
		}
		if recoverErrs[i] != nil {
			errs[idx] = fmt.Errorf("core: batch access %q: %w", op.Key, recoverErrs[i])
			if firstErr == nil {
				firstErr = errs[idx]
			}
			continue
		}
		entries[i].ct++ // commit only after a successful round
		values[idx] = recovered[i]
	}
	return stats, firstErr
}
