package core

import (
	"fmt"
	"io"
	"math/rand/v2"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// LBLMode selects the LBL-ORTOA variant.
type LBLMode uint8

const (
	// LBLBasic is the §5.2 protocol: one label per plaintext bit
	// (y=1), entries shuffled, server try-decrypts both.
	LBLBasic LBLMode = iota
	// LBLSpaceOpt is the §10.1 space optimization: one label per two
	// bits (y=2), halving server storage; the server try-decrypts up
	// to four entries per group.
	LBLSpaceOpt
	// LBLPointPermute adds the §10.2 point-and-permute optimization
	// to y=2: the server stores two decryption bits per group and
	// decrypts exactly one entry. This is the configuration the
	// paper's cost analysis assumes (§6.3.3).
	LBLPointPermute
	// LBLWide generalizes the space optimization to y=4 (one label
	// per four plaintext bits, 2^4 = 16 shuffled entries per group).
	// Appendix §10.1 analyzes this point: storage shrinks to ℓ/4
	// labels but communication doubles relative to y=2, which is why
	// the paper settles on y=2. Implemented so the Fig 6 trade-off can
	// be measured rather than only computed.
	LBLWide
	// LBLWidePointPermute is y=4 with point-and-permute decryption
	// bits (four per group).
	LBLWidePointPermute
)

// String names the mode for experiment labels.
func (m LBLMode) String() string {
	switch m {
	case LBLBasic:
		return "basic(y=1)"
	case LBLSpaceOpt:
		return "spaceopt(y=2)"
	case LBLPointPermute:
		return "point-permute(y=2)"
	case LBLWide:
		return "wide(y=4)"
	case LBLWidePointPermute:
		return "wide-point-permute(y=4)"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Y returns how many plaintext bits one label represents.
func (m LBLMode) Y() int {
	switch m {
	case LBLBasic:
		return 1
	case LBLWide, LBLWidePointPermute:
		return 4
	default:
		return 2
	}
}

// entries returns the encryption-table entries per group (2^y).
func (m LBLMode) entries() int { return 1 << m.Y() }

// hasDbits reports whether records carry decryption bits.
func (m LBLMode) hasDbits() bool {
	return m == LBLPointPermute || m == LBLWidePointPermute
}

// entryPlainLen is the plaintext length of one table entry: the new
// label, plus the next decryption bits under point-and-permute.
func (m LBLMode) entryPlainLen() int {
	if m.hasDbits() {
		return prf.Size + 1
	}
	return prf.Size
}

// entryLen is the sealed length of one table entry.
func (m LBLMode) entryLen() int { return m.entryPlainLen() + secretbox.LabelOverhead }

// LBLConfig fixes the parameters shared by an LBL proxy and the
// records it creates.
type LBLConfig struct {
	// ValueSize is the fixed plaintext value length in bytes (ℓ/8).
	ValueSize int
	// Mode selects the protocol variant.
	Mode LBLMode
}

// Groups returns the number of label groups per value (ℓ/y).
func (c LBLConfig) Groups() int { return c.ValueSize * 8 / c.Mode.Y() }

// ServerBytesPerValue returns the server-side record size, the
// quantity §5.3.1 and the Fig 6 storage factor analysis price.
func (c LBLConfig) ServerBytesPerValue() int {
	n := 1 + c.Groups()*prf.Size
	if c.Mode.hasDbits() {
		n += c.Groups()
	}
	return n
}

// RequestBytesPerAccess returns the exact access payload size
// (§5.3.2: 2^y · E_len · ℓ/y table entries plus framing).
func (c LBLConfig) RequestBytesPerAccess() int {
	return prf.Size + 1 +
		wire.UvarintLen(uint64(c.Groups())) +
		wire.UvarintLen(uint64(c.Mode.entryLen())) +
		c.Groups()*c.Mode.entries()*c.Mode.entryLen()
}

func (c LBLConfig) validate() error {
	if c.ValueSize <= 0 {
		return fmt.Errorf("core: LBL value size %d must be positive", c.ValueSize)
	}
	if c.Mode > LBLWidePointPermute {
		return fmt.Errorf("core: unknown LBL mode %d", c.Mode)
	}
	return nil
}

// groupBits extracts the y-bit group g from value (little-endian bit
// order within each byte; y ∈ {1, 2, 4} always divides 8, so a group
// never straddles a byte boundary).
func groupBits(value []byte, g, y int) uint8 {
	bit := g * y
	mask := uint8(1)<<y - 1
	return (value[bit/8] >> (uint(bit) % 8)) & mask
}

// setGroupBits writes the y-bit group g of value.
func setGroupBits(value []byte, g, y int, bits uint8) {
	pos := g * y
	mask := uint8(1)<<y - 1
	value[pos/8] |= (bits & mask) << (uint(pos) % 8)
}

// An LBLProxy is the trusted, stateful side of LBL-ORTOA. It holds the
// PRF master secret and the per-key access counters, and talks to the
// untrusted server over client.
type LBLProxy struct {
	cfg      LBLConfig
	prf      *prf.PRF
	counters *counterTable
	client   *transport.Client
}

// NewLBLProxy returns a proxy using f as its PRF and client to reach
// the server. client may be nil for offline uses (BuildRecord only).
func NewLBLProxy(cfg LBLConfig, f *prf.PRF, client *transport.Client) (*LBLProxy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &LBLProxy{cfg: cfg, prf: f, counters: newCounterTable(), client: client}, nil
}

// Config returns the proxy's configuration.
func (p *LBLProxy) Config() LBLConfig { return p.cfg }

// CounterKeys returns the number of keys with tracked access counters
// — the proxy state whose size §5.3.1 analyzes.
func (p *LBLProxy) CounterKeys() int { return p.counters.Len() }

// SaveCounters persists the access-counter table — the one piece of
// proxy state LBL-ORTOA cannot regenerate. Quiesce accesses first.
func (p *LBLProxy) SaveCounters(w io.Writer) error { return p.counters.save(w) }

// LoadCounters restores a SaveCounters snapshot, merging over current
// entries. A proxy restarted without its counters will fail its first
// access per key with a server-side decryption error rather than
// corrupt data.
func (p *LBLProxy) LoadCounters(r io.Reader) error { return p.counters.load(r) }

// BuildRecord encodes the initial record for (key, value) at access
// counter 0, to be bulk-loaded into the server's store (the Init
// procedure of Figure 1). value must be exactly ValueSize bytes.
func (p *LBLProxy) BuildRecord(key string, value []byte) (encKey string, record []byte, err error) {
	if len(value) != p.cfg.ValueSize {
		return "", nil, ErrValueSize
	}
	y := p.cfg.Mode.Y()
	groups := p.cfg.Groups()
	gen := p.prf.LabelGen(key)
	rec := make([]byte, 0, p.cfg.ServerBytesPerValue())
	rec = append(rec, byte(p.cfg.Mode))
	for g := 0; g < groups; g++ {
		bits := groupBits(value, g, y)
		label := gen.Label(g, bits, 0)
		rec = append(rec, label[:]...)
	}
	if p.cfg.Mode.hasDbits() {
		mask := uint8(p.cfg.Mode.entries() - 1)
		for g := 0; g < groups; g++ {
			bits := groupBits(value, g, y)
			r := gen.PermuteBits(g, 0) & mask
			rec = append(rec, bits^r)
		}
	}
	ek := p.prf.EncodeKey(key)
	return string(ek[:]), rec, nil
}

// Access performs one oblivious access (§5.2). For reads, newValue is
// ignored and the stored value is returned. For writes, newValue
// (exactly ValueSize bytes) replaces the stored value; the returned
// slice echoes the written value.
func (p *LBLProxy) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var stats AccessStats
	if op == OpWrite && len(newValue) != p.cfg.ValueSize {
		return nil, stats, ErrValueSize
	}
	if p.client == nil {
		return nil, stats, fmt.Errorf("core: LBL proxy has no server connection")
	}

	// Per-key serialization: the label schedule is counter-indexed,
	// so a key's accesses must not interleave (see counterTable).
	entry := p.counters.acquire(key)
	defer entry.mu.Unlock()

	req, err := p.buildRequest(op, key, newValue, entry.ct)
	if err != nil {
		return nil, stats, err
	}
	stats.PrepBytes = len(req)

	resp, err := p.client.Call(MsgLBLAccess, req)
	if err != nil {
		return nil, stats, err
	}
	stats.RespBytes = len(resp)

	value, err := p.recover(op, key, newValue, entry.ct+1, resp)
	if err != nil {
		return nil, stats, err
	}
	entry.ct++ // commit the counter only after a successful round
	return value, stats, nil
}

// buildRequest constructs the encryption table for key at counter ct
// (steps 1.1–1.5 of §5.2).
func (p *LBLProxy) buildRequest(op Op, key string, newValue []byte, ct uint64) ([]byte, error) {
	cfg := p.cfg
	y := cfg.Mode.Y()
	groups := cfg.Groups()
	nEntries := cfg.Mode.entries()
	entryLen := cfg.Mode.entryLen()

	gen := p.prf.LabelGen(key)
	w := wire.NewWriter(cfg.RequestBytesPerAccess())
	ek := p.prf.EncodeKey(key)
	w.Raw(ek[:])
	w.Byte(byte(cfg.Mode))
	w.Uvarint(uint64(groups))
	w.Uvarint(uint64(entryLen))

	var olds, news [16]prf.Output
	var plain [prf.Size + 1]byte
	// Scratch buffers for the shuffled variants: one per entry slot,
	// reused across groups, so sealing allocates nothing per group.
	var scratch [16][]byte
	for i := range scratch[:nEntries] {
		scratch[i] = make([]byte, 0, entryLen)
	}
	var sealErr error
	// One closure for every table entry: sealKey/plain are set before
	// each Append call, avoiding a closure allocation per entry.
	var sealKey []byte
	appendEntry := func(dst []byte) []byte {
		dst, sealErr = secretbox.AppendSealLabel(dst, sealKey, plain[:])
		return dst
	}
	for g := 0; g < groups; g++ {
		for b := 0; b < nEntries; b++ {
			olds[b] = gen.Label(g, uint8(b), ct)
			news[b] = gen.Label(g, uint8(b), ct+1)
		}
		var newBits uint8
		if op == OpWrite {
			newBits = groupBits(newValue, g, y)
		}

		if cfg.Mode.hasDbits() {
			// Point-and-permute: entry e is keyed by old label
			// ol_{e⊕r}; its plaintext carries the new label and the
			// next decryption bits, linked through r' (§10.2).
			mask := uint8(nEntries - 1)
			r := gen.PermuteBits(g, ct) & mask
			rNew := gen.PermuteBits(g, ct+1) & mask
			for e := 0; e < nEntries; e++ {
				b := uint8(e) ^ r
				target := b
				if op == OpWrite {
					target = newBits
				}
				copy(plain[:prf.Size], news[target][:])
				plain[prf.Size] = target ^ rNew
				sealKey = olds[b][:]
				w.Append(appendEntry)
				if sealErr != nil {
					return nil, sealErr
				}
			}
			continue
		}

		// Basic / space-optimized: seal per bit value, then shuffle
		// pairwise so position leaks nothing (step 1.5).
		for b := 0; b < nEntries; b++ {
			target := uint8(b)
			if op == OpWrite {
				target = newBits
			}
			scratch[b], sealErr = secretbox.AppendSealLabel(scratch[b][:0], olds[b][:], news[target][:])
			if sealErr != nil {
				return nil, sealErr
			}
		}
		rand.Shuffle(nEntries, func(i, j int) {
			scratch[i], scratch[j] = scratch[j], scratch[i]
		})
		for _, ctext := range scratch[:nEntries] {
			w.Raw(ctext)
		}
	}
	return w.Bytes(), nil
}

// recover maps the server's returned labels back to plaintext bits
// using the counter-(ct+1) label schedule, and performs the §5.4
// integrity check: every returned label must be one the proxy could
// have generated.
func (p *LBLProxy) recover(op Op, key string, newValue []byte, ctNew uint64, resp []byte) ([]byte, error) {
	cfg := p.cfg
	y := cfg.Mode.Y()
	groups := cfg.Groups()
	if len(resp) != groups*prf.Size {
		return nil, fmt.Errorf("%w: response has %d bytes, want %d", ErrTampered, len(resp), groups*prf.Size)
	}
	gen := p.prf.LabelGen(key)
	value := make([]byte, cfg.ValueSize)
	var got prf.Output
	for g := 0; g < groups; g++ {
		copy(got[:], resp[g*prf.Size:])
		matched := false
		for b := 0; b < cfg.Mode.entries(); b++ {
			if got.Equal(gen.Label(g, uint8(b), ctNew)) {
				setGroupBits(value, g, y, uint8(b))
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("%w: group %d label unrecognized", ErrTampered, g)
		}
	}
	if op == OpWrite {
		// The installed labels must reflect exactly the written value.
		for i := range value {
			if value[i] != newValue[i] {
				return nil, fmt.Errorf("%w: write-back mismatch at byte %d", ErrTampered, i)
			}
		}
	}
	return value, nil
}
