package core

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// LBLMode selects the LBL-ORTOA variant.
type LBLMode uint8

const (
	// LBLBasic is the §5.2 protocol: one label per plaintext bit
	// (y=1), entries shuffled, server try-decrypts both.
	LBLBasic LBLMode = iota
	// LBLSpaceOpt is the §10.1 space optimization: one label per two
	// bits (y=2), halving server storage; the server try-decrypts up
	// to four entries per group.
	LBLSpaceOpt
	// LBLPointPermute adds the §10.2 point-and-permute optimization
	// to y=2: the server stores two decryption bits per group and
	// decrypts exactly one entry. This is the configuration the
	// paper's cost analysis assumes (§6.3.3).
	LBLPointPermute
	// LBLWide generalizes the space optimization to y=4 (one label
	// per four plaintext bits, 2^4 = 16 shuffled entries per group).
	// Appendix §10.1 analyzes this point: storage shrinks to ℓ/4
	// labels but communication doubles relative to y=2, which is why
	// the paper settles on y=2. Implemented so the Fig 6 trade-off can
	// be measured rather than only computed.
	LBLWide
	// LBLWidePointPermute is y=4 with point-and-permute decryption
	// bits (four per group).
	LBLWidePointPermute
)

// String names the mode for experiment labels.
func (m LBLMode) String() string {
	switch m {
	case LBLBasic:
		return "basic(y=1)"
	case LBLSpaceOpt:
		return "spaceopt(y=2)"
	case LBLPointPermute:
		return "point-permute(y=2)"
	case LBLWide:
		return "wide(y=4)"
	case LBLWidePointPermute:
		return "wide-point-permute(y=4)"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Y returns how many plaintext bits one label represents.
func (m LBLMode) Y() int {
	switch m {
	case LBLBasic:
		return 1
	case LBLWide, LBLWidePointPermute:
		return 4
	default:
		return 2
	}
}

// entries returns the encryption-table entries per group (2^y).
func (m LBLMode) entries() int { return 1 << m.Y() }

// hasDbits reports whether records carry decryption bits.
func (m LBLMode) hasDbits() bool {
	return m == LBLPointPermute || m == LBLWidePointPermute
}

// entryPlainLen is the plaintext length of one table entry: the new
// label, plus the next decryption bits under point-and-permute.
func (m LBLMode) entryPlainLen() int {
	if m.hasDbits() {
		return prf.Size + 1
	}
	return prf.Size
}

// entryLen is the sealed length of one table entry.
func (m LBLMode) entryLen() int { return m.entryPlainLen() + secretbox.LabelOverhead }

// LBLConfig fixes the parameters shared by an LBL proxy and the
// records it creates.
type LBLConfig struct {
	// ValueSize is the fixed plaintext value length in bytes (ℓ/8).
	ValueSize int
	// Mode selects the protocol variant.
	Mode LBLMode
	// ReconcileScan, when positive, lets the proxy recover from
	// counter desynchronization after a crash (a server restarted from
	// older durable state, or a proxy restarted from an older counter
	// snapshot) by probing up to this many counter steps each way from
	// its own value. Zero disables reconciliation: a desynchronized key
	// fails every access with the server's stale rejection, the §5.3.1
	// behavior. See reconcile.go.
	ReconcileScan int
}

// Groups returns the number of label groups per value (ℓ/y).
func (c LBLConfig) Groups() int { return c.ValueSize * 8 / c.Mode.Y() }

// ServerBytesPerValue returns the server-side record size, the
// quantity §5.3.1 and the Fig 6 storage factor analysis price.
func (c LBLConfig) ServerBytesPerValue() int {
	n := 1 + c.Groups()*prf.Size
	if c.Mode.hasDbits() {
		n += c.Groups()
	}
	return n
}

// TableBytes returns the size of one access's encryption table
// (2^y · E_len · ℓ/y).
func (c LBLConfig) TableBytes() int {
	return c.Groups() * c.Mode.entries() * c.Mode.entryLen()
}

// RequestBytesPerAccess returns the exact access payload size
// (§5.3.2: 2^y · E_len · ℓ/y table entries plus framing).
func (c LBLConfig) RequestBytesPerAccess() int {
	return prf.Size + 1 +
		wire.UvarintLen(uint64(c.Groups())) +
		wire.UvarintLen(uint64(c.Mode.entryLen())) +
		c.TableBytes()
}

// BatchRequestBytes returns the exact MsgLBLAccessBatch payload size
// for n accesses: one shared geometry header plus n (key, table) pairs.
func (c LBLConfig) BatchRequestBytes(n int) int {
	return 1 +
		wire.UvarintLen(uint64(c.Groups())) +
		wire.UvarintLen(uint64(c.Mode.entryLen())) +
		wire.UvarintLen(uint64(n)) +
		n*(prf.Size+c.TableBytes())
}

func (c LBLConfig) validate() error {
	if c.ValueSize <= 0 {
		return fmt.Errorf("core: LBL value size %d must be positive", c.ValueSize)
	}
	if c.Mode > LBLWidePointPermute {
		return fmt.Errorf("core: unknown LBL mode %d", c.Mode)
	}
	return nil
}

// groupBits extracts the y-bit group g from value (little-endian bit
// order within each byte; y ∈ {1, 2, 4} always divides 8, so a group
// never straddles a byte boundary).
func groupBits(value []byte, g, y int) uint8 {
	bit := g * y
	mask := uint8(1)<<y - 1
	return (value[bit/8] >> (uint(bit) % 8)) & mask
}

// setGroupBits writes the y-bit group g of value.
func setGroupBits(value []byte, g, y int, bits uint8) {
	pos := g * y
	mask := uint8(1)<<y - 1
	value[pos/8] |= (bits & mask) << (uint(pos) % 8)
}

// An LBLProxy is the trusted, stateful side of LBL-ORTOA. It holds the
// PRF master secret and the per-key access counters, and talks to the
// untrusted server over client.
type LBLProxy struct {
	cfg      LBLConfig
	prf      *prf.PRF
	counters *counterTable
	client   *transport.Client
	mx       lblProxyObs
}

// NewLBLProxy returns a proxy using f as its PRF and client to reach
// the server. client may be nil for offline uses (BuildRecord only).
func NewLBLProxy(cfg LBLConfig, f *prf.PRF, client *transport.Client) (*LBLProxy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &LBLProxy{cfg: cfg, prf: f, counters: newCounterTable(), client: client}, nil
}

// Config returns the proxy's configuration.
func (p *LBLProxy) Config() LBLConfig { return p.cfg }

// CounterKeys returns the number of keys with tracked access counters
// — the proxy state whose size §5.3.1 analyzes.
func (p *LBLProxy) CounterKeys() int { return p.counters.Len() }

// SaveCounters persists the access-counter table — the one piece of
// proxy state LBL-ORTOA cannot regenerate. Quiesce accesses first.
func (p *LBLProxy) SaveCounters(w io.Writer) error { return p.counters.save(w) }

// LoadCounters restores a SaveCounters snapshot, merging over current
// entries. A proxy restarted without its counters will fail its first
// access per key with a server-side decryption error rather than
// corrupt data.
func (p *LBLProxy) LoadCounters(r io.Reader) error { return p.counters.load(r) }

// BuildRecord encodes the initial record for (key, value) at access
// counter 0, to be bulk-loaded into the server's store (the Init
// procedure of Figure 1). value must be exactly ValueSize bytes.
func (p *LBLProxy) BuildRecord(key string, value []byte) (encKey string, record []byte, err error) {
	if len(value) != p.cfg.ValueSize {
		return "", nil, ErrValueSize
	}
	y := p.cfg.Mode.Y()
	groups := p.cfg.Groups()
	gen := p.prf.LabelGen(key)
	rec := make([]byte, 0, p.cfg.ServerBytesPerValue())
	rec = append(rec, byte(p.cfg.Mode))
	for g := 0; g < groups; g++ {
		bits := groupBits(value, g, y)
		label := gen.Label(g, bits, 0)
		rec = append(rec, label[:]...)
	}
	if p.cfg.Mode.hasDbits() {
		mask := uint8(p.cfg.Mode.entries() - 1)
		for g := 0; g < groups; g++ {
			bits := groupBits(value, g, y)
			r := gen.PermuteBits(g, 0) & mask
			rec = append(rec, bits^r)
		}
	}
	ek := p.prf.EncodeKey(key)
	return string(ek[:]), rec, nil
}

// Access performs one oblivious access (§5.2). For reads, newValue is
// ignored and the stored value is returned. For writes, newValue
// (exactly ValueSize bytes) replaces the stored value; the returned
// slice echoes the written value.
func (p *LBLProxy) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var stats AccessStats
	if op == OpWrite && len(newValue) != p.cfg.ValueSize {
		return nil, stats, ErrValueSize
	}
	if p.client == nil {
		return nil, stats, fmt.Errorf("core: LBL proxy has no server connection")
	}

	// Per-key serialization: the label schedule is counter-indexed,
	// so a key's accesses must not interleave (see counterTable).
	sw := obs.StartWatch(p.mx.enabled)
	entry := p.counters.acquire(key)
	defer entry.mu.Unlock()
	if entry.pending != nil {
		// A previous round for this key failed ambiguously; settle it
		// (at-most-once replay, see pending.go) before building a table
		// at a counter value that may already be stale.
		if err := p.resolvePending(key, entry); err != nil {
			p.mx.errors.Inc()
			return nil, stats, err
		}
	}
	dAcquire := sw.Lap(p.mx.acquire)

	var dBuild, dRPC time.Duration
	var resp []byte
	for attempt := 0; ; attempt++ {
		req, err := p.buildRequest(op, key, newValue, entry.ct)
		if err != nil {
			p.mx.errors.Inc()
			return nil, stats, err
		}
		dBuild += sw.Lap(p.mx.build)
		stats.PrepBytes = len(req)

		id := p.client.NextID()
		resp, err = p.client.CallContextID(context.Background(), id, MsgLBLAccess, req)
		if err == nil {
			break
		}
		if transport.Ambiguous(err) {
			// The round may have executed; park it so the key's next
			// access settles the outcome before trusting the counter.
			entry.pending = &pendingRound{id: id, msgType: MsgLBLAccess, req: req,
				op: op, value: pendingValue(op, newValue)}
			p.mx.pendingSaved.Inc()
			p.mx.errors.Inc()
			return nil, stats, err
		}
		if attempt == 0 && p.cfg.ReconcileScan > 0 && isStaleRound(err) {
			// A fresh stale rejection with no parked round means the
			// counter and the server's record have desynchronized
			// (crash recovery on either side). Re-locate the server's
			// counter and retry this access once at the rebased value.
			sw.Lap(p.mx.rpc)
			if rerr := p.reconcile(key, entry); rerr == nil {
				sw.Lap(nil)
				continue
			}
			p.mx.errors.Inc()
			return nil, stats, err
		}
		p.mx.errors.Inc()
		return nil, stats, err
	}
	dRPC += sw.Lap(p.mx.rpc)
	stats.RespBytes = len(resp)

	value, err := p.recover(op, key, newValue, entry.ct+1, resp)
	if err != nil {
		p.mx.errors.Inc()
		return nil, stats, err
	}
	dRecover := sw.Lap(p.mx.recover)
	entry.ct++ // commit the counter only after a successful round
	if p.mx.enabled {
		total := dAcquire + dBuild + dRPC + dRecover
		p.mx.e2e.Observe(total)
		if p.mx.slow.Worthy(total) {
			ek := p.prf.EncodeKey(key)
			p.mx.slow.Record(obs.Trace{
				At:    time.Now(),
				Label: traceLabel(ek[:]),
				Total: total,
				Stages: []obs.Stage{
					{Name: "counter_acquire", D: dAcquire},
					{Name: "table_build", D: dBuild},
					{Name: "rpc", D: dRPC},
					{Name: "label_recover", D: dRecover},
				},
			})
		}
	}
	return value, stats, nil
}

// buildRequest constructs the encryption table for key at counter ct
// (steps 1.1–1.5 of §5.2).
func (p *LBLProxy) buildRequest(op Op, key string, newValue []byte, ct uint64) ([]byte, error) {
	cfg := p.cfg
	w := wire.NewWriter(cfg.RequestBytesPerAccess())
	ek := p.prf.EncodeKey(key)
	w.Raw(ek[:])
	w.Byte(byte(cfg.Mode))
	w.Uvarint(uint64(cfg.Groups()))
	w.Uvarint(uint64(cfg.Mode.entryLen()))
	if err := p.appendAccessTable(w, key, op, newValue, ct, newCryptoShuffler()); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// appendAccessTable appends key's encryption table for counter ct to w
// (steps 1.1–1.5 of §5.2). shuf supplies the step-1.5 shuffle
// randomness; it must be crypto-strength (see shuffle.go), because a
// predictable entry order would link table positions to plaintext bits.
func (p *LBLProxy) appendAccessTable(w *wire.Writer, key string, op Op, newValue []byte, ct uint64, shuf *cryptoShuffler) error {
	cfg := p.cfg
	y := cfg.Mode.Y()
	groups := cfg.Groups()
	nEntries := cfg.Mode.entries()
	entryLen := cfg.Mode.entryLen()
	gen := p.prf.LabelGen(key)

	var olds, news [16]prf.Output
	var plain [prf.Size + 1]byte
	// Scratch buffers for the shuffled variants: one per entry slot,
	// reused across groups, so sealing allocates nothing per group.
	var scratch [16][]byte
	for i := range scratch[:nEntries] {
		scratch[i] = make([]byte, 0, entryLen)
	}
	var sealErr error
	// One closure for every table entry: sealKey/plain are set before
	// each Append call, avoiding a closure allocation per entry.
	var sealKey []byte
	appendEntry := func(dst []byte) []byte {
		dst, sealErr = secretbox.AppendSealLabel(dst, sealKey, plain[:])
		return dst
	}
	for g := 0; g < groups; g++ {
		for b := 0; b < nEntries; b++ {
			olds[b] = gen.Label(g, uint8(b), ct)
			news[b] = gen.Label(g, uint8(b), ct+1)
		}
		var newBits uint8
		if op == OpWrite {
			newBits = groupBits(newValue, g, y)
		}

		if cfg.Mode.hasDbits() {
			// Point-and-permute: entry e is keyed by old label
			// ol_{e⊕r}; its plaintext carries the new label and the
			// next decryption bits, linked through r' (§10.2).
			mask := uint8(nEntries - 1)
			r := gen.PermuteBits(g, ct) & mask
			rNew := gen.PermuteBits(g, ct+1) & mask
			for e := 0; e < nEntries; e++ {
				b := uint8(e) ^ r
				target := b
				if op == OpWrite {
					target = newBits
				}
				copy(plain[:prf.Size], news[target][:])
				plain[prf.Size] = target ^ rNew
				sealKey = olds[b][:]
				w.Append(appendEntry)
				if sealErr != nil {
					return sealErr
				}
			}
			continue
		}

		// Basic / space-optimized: seal per bit value, then shuffle so
		// position leaks nothing (step 1.5). The permutation must be
		// cryptographically unpredictable — entries are generated in
		// bit-value order, so a guessable shuffle would leak plaintext
		// bits by position.
		for b := 0; b < nEntries; b++ {
			target := uint8(b)
			if op == OpWrite {
				target = newBits
			}
			scratch[b], sealErr = secretbox.AppendSealLabel(scratch[b][:0], olds[b][:], news[target][:])
			if sealErr != nil {
				return sealErr
			}
		}
		shuf.shuffle(nEntries, func(i, j int) {
			scratch[i], scratch[j] = scratch[j], scratch[i]
		})
		for _, ctext := range scratch[:nEntries] {
			w.Raw(ctext)
		}
	}
	return nil
}

// recover maps the server's returned labels back to plaintext bits
// using the counter-(ct+1) label schedule, and performs the §5.4
// integrity check: every returned label must be one the proxy could
// have generated.
func (p *LBLProxy) recover(op Op, key string, newValue []byte, ctNew uint64, resp []byte) ([]byte, error) {
	cfg := p.cfg
	y := cfg.Mode.Y()
	groups := cfg.Groups()
	if len(resp) != groups*prf.Size {
		return nil, fmt.Errorf("%w: response has %d bytes, want %d", ErrTampered, len(resp), groups*prf.Size)
	}
	gen := p.prf.LabelGen(key)
	value := make([]byte, cfg.ValueSize)
	var got prf.Output
	for g := 0; g < groups; g++ {
		copy(got[:], resp[g*prf.Size:])
		matched := false
		for b := 0; b < cfg.Mode.entries(); b++ {
			if got.Equal(gen.Label(g, uint8(b), ctNew)) {
				setGroupBits(value, g, y, uint8(b))
				matched = true
				break
			}
		}
		if !matched {
			return nil, fmt.Errorf("%w: group %d label unrecognized", ErrTampered, g)
		}
	}
	if op == OpWrite {
		// The installed labels must reflect exactly the written value.
		for i := range value {
			if value[i] != newValue[i] {
				return nil, fmt.Errorf("%w: write-back mismatch at byte %d", ErrTampered, i)
			}
		}
	}
	return value, nil
}

// A BatchOp is one operation of an AccessBatch. For OpWrite, Value must
// be exactly ValueSize bytes; for OpRead it is ignored.
type BatchOp struct {
	Op    Op
	Key   string
	Value []byte
}

// maxBatchFrameBytes caps one MsgLBLAccessBatch payload, leaving ample
// headroom under transport.MaxFrameSize; larger batches are split into
// several RPCs transparently.
const maxBatchFrameBytes = 48 << 20

// AccessBatch performs many oblivious accesses in (normally) one round
// trip: it acquires every key's counter, builds all encryption tables,
// sends them in a single MsgLBLAccessBatch frame, and recovers every
// value from the single response (§5.2 amortized; see DESIGN.md).
//
// Results are returned in input order; reads yield the stored value,
// writes echo the written value. Two cases need more than one RPC:
// batches whose tables exceed the frame cap are split, and accesses to
// a key that appears more than once are issued in occurrence-order
// waves, because a key's label schedule is counter-indexed and its
// accesses must not share a counter value.
//
// On a per-key server error (e.g. an unloaded key), the remaining
// accesses still complete — their values are set and their counters
// committed — and AccessBatch returns the first error alongside the
// partial results.
func (p *LBLProxy) AccessBatch(ops []BatchOp) ([][]byte, AccessStats, error) {
	var stats AccessStats
	if p.client == nil {
		return nil, stats, fmt.Errorf("core: LBL proxy has no server connection")
	}
	for i := range ops {
		switch ops[i].Op {
		case OpRead:
		case OpWrite:
			if len(ops[i].Value) != p.cfg.ValueSize {
				return nil, stats, fmt.Errorf("batch op %d (%q): %w", i, ops[i].Key, ErrValueSize)
			}
		default:
			return nil, stats, fmt.Errorf("core: batch op %d: unknown op %d", i, ops[i].Op)
		}
	}

	// Wave w holds the w-th occurrence of each key, so duplicate keys
	// never share a frame (their counters must advance between them).
	occurrence := make(map[string]int, len(ops))
	var waves [][]int
	for i := range ops {
		w := occurrence[ops[i].Key]
		occurrence[ops[i].Key] = w + 1
		if w == len(waves) {
			waves = append(waves, nil)
		}
		waves[w] = append(waves[w], i)
	}

	maxPerCall := (maxBatchFrameBytes - 32) / (prf.Size + p.cfg.TableBytes())
	if maxPerCall < 1 {
		maxPerCall = 1
	}

	values := make([][]byte, len(ops))
	var firstErr error
	for _, wave := range waves {
		// Deterministic lock order: counters are acquired in sorted key
		// order, so concurrent AccessBatch calls cannot deadlock.
		sort.Slice(wave, func(a, b int) bool { return ops[wave[a]].Key < ops[wave[b]].Key })
		for start := 0; start < len(wave); start += maxPerCall {
			end := start + maxPerCall
			if end > len(wave) {
				end = len(wave)
			}
			st, err := p.accessBatchChunk(ops, wave[start:end], values)
			stats.PrepBytes += st.PrepBytes
			stats.RespBytes += st.RespBytes
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return values, stats, firstErr
}

// batchWorkers returns the worker count for the CPU-bound stages of a
// batch of n accesses: table construction and label recovery both fan
// out across cores, mirroring the server's handler, so the one-frame
// pipeline never loses to the concurrent fallback on compute.
func batchWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEachBatched runs fn(i) for i in [0, n) across batchWorkers(n)
// goroutines and returns after all complete.
func forEachBatched(n int, fn func(i int)) {
	workers := batchWorkers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// accessBatchChunk performs one MsgLBLAccessBatch RPC for the accesses
// ops[idxs...], whose keys are unique and sorted. It fills values at
// the original indices and commits the counter of every access the
// server completed.
func (p *LBLProxy) accessBatchChunk(ops []BatchOp, idxs []int, values [][]byte) (AccessStats, error) {
	var stats AccessStats
	cfg := p.cfg
	groups := cfg.Groups()

	sw := obs.StartWatch(p.mx.enabled)
	entries := make([]*counterEntry, len(idxs))
	for i, idx := range idxs {
		entries[i] = p.counters.acquire(ops[idx].Key)
	}
	defer func() {
		for _, e := range entries {
			e.mu.Unlock()
		}
	}()
	// Settle any ambiguous earlier rounds before building tables: a
	// resolution can advance a key's counter, and the tables below must
	// be built at the settled values. An unresolvable round fails the
	// whole chunk — no frame was sent, so no counter state changed.
	for i, idx := range idxs {
		if entries[i].pending != nil {
			if err := p.resolvePending(ops[idx].Key, entries[i]); err != nil {
				return stats, err
			}
		}
	}
	sw.Lap(p.mx.batchAcquire)
	p.mx.batchKeys.Add(int64(len(idxs)))

	// Build every key's ek‖table segment in parallel — each builder has
	// its own writer and shuffler — then splice the segments into the
	// frame. Table construction is the proxy's dominant CPU cost (2·ℓ
	// PRFs plus 2^y·ℓ/y seals per key, §6.3.3), so it must not serialize
	// behind a single core when the concurrent fallback would not.
	segments := make([][]byte, len(idxs))
	buildErrs := make([]error, len(idxs))
	forEachBatched(len(idxs), func(i int) {
		op := ops[idxs[i]]
		sw := wire.NewWriter(prf.Size + cfg.TableBytes())
		ek := p.prf.EncodeKey(op.Key)
		sw.Raw(ek[:])
		buildErrs[i] = p.appendAccessTable(sw, op.Key, op.Op, op.Value, entries[i].ct, newCryptoShuffler())
		segments[i] = sw.Bytes()
	})
	for _, err := range buildErrs {
		if err != nil {
			return stats, err
		}
	}
	sw.Lap(p.mx.batchBuild)

	w := wire.NewWriter(cfg.BatchRequestBytes(len(idxs)))
	w.Byte(byte(cfg.Mode))
	w.Uvarint(uint64(groups))
	w.Uvarint(uint64(cfg.Mode.entryLen()))
	w.Uvarint(uint64(len(idxs)))
	for _, seg := range segments {
		w.Raw(seg)
	}
	stats.PrepBytes = w.Len()

	id := p.client.NextID()
	req := w.Bytes()
	resp, err := p.client.CallContextID(context.Background(), id, MsgLBLAccessBatch, req)
	if err != nil {
		if transport.Ambiguous(err) {
			// The whole chunk is ambiguous. Park the same round on every
			// key, sharing the request bytes; each key settles its own
			// slice of the outcome on its next access (replays of one id
			// dedup to a single execution server-side).
			for i, e := range entries {
				op := ops[idxs[i]]
				e.pending = &pendingRound{id: id, msgType: MsgLBLAccessBatch, req: req,
					batch: true, pos: i, op: op.Op, value: pendingValue(op.Op, op.Value)}
			}
			p.mx.pendingSaved.Add(int64(len(entries)))
		}
		return stats, err
	}
	sw.Lap(p.mx.batchRPC)
	stats.RespBytes = len(resp)

	// First pass, sequential: walk the variable-length response to
	// slice out each access's labels or error.
	r := wire.NewReader(resp)
	labelSlices := make([][]byte, len(idxs))
	remoteMsgs := make([]string, len(idxs))
	failed := make([]bool, len(idxs))
	for i := range idxs {
		if status := r.Byte(); status != 0 {
			failed[i] = true
			remoteMsgs[i] = r.String()
			continue
		}
		labelSlices[i] = r.Raw(groups * prf.Size)
		if r.Err() != nil {
			break // truncated response; reported via Finish below
		}
	}
	if err := r.Finish(); err != nil {
		return stats, fmt.Errorf("%w: malformed batch response: %v", ErrTampered, err)
	}

	// Second pass, parallel: recover each value from its labels (2^y·ℓ/y
	// PRF comparisons per key in the worst case).
	recovered := make([][]byte, len(idxs))
	recoverErrs := make([]error, len(idxs))
	forEachBatched(len(idxs), func(i int) {
		if failed[i] {
			return
		}
		op := ops[idxs[i]]
		recovered[i], recoverErrs[i] = p.recover(op.Op, op.Key, op.Value, entries[i].ct+1, labelSlices[i])
	})
	sw.Lap(p.mx.batchRecover)

	var firstErr error
	for i, idx := range idxs {
		op := ops[idx]
		if failed[i] {
			// Per-key failure: the server left this record untouched,
			// so the counter must not advance.
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch access %q: %w", op.Key, &transport.RemoteError{Msg: remoteMsgs[i]})
			}
			continue
		}
		if recoverErrs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: batch access %q: %w", op.Key, recoverErrs[i])
			}
			continue
		}
		entries[i].ct++ // commit only after a successful round
		values[idx] = recovered[i]
	}
	return stats, firstErr
}
