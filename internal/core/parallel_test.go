package core

import (
	"bytes"
	"math/rand/v2"
	"runtime"
	"testing"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
)

// applyTable runs the server half of one access directly against a
// fresh store seeded with record, returning the response labels and the
// post-access stored record.
func applyTable(t *testing.T, cfg LBLConfig, ek string, record, table []byte) (labels, newRec []byte) {
	t.Helper()
	store := kvstore.New()
	if err := store.Put(ek, append([]byte(nil), record...)); err != nil {
		t.Fatal(err)
	}
	srv := NewLBLServer(store)
	geo := tableGeometry{mode: cfg.Mode, groups: cfg.Groups(), entryLen: cfg.Mode.entryLen(), nEntries: cfg.Mode.entries()}
	labels = make([]byte, cfg.Groups()*prf.Size)
	if err := srv.accessOne(ek, geo, table, labels); err != nil {
		t.Fatal(err)
	}
	newRec, err := store.Get(ek)
	if err != nil {
		t.Fatal(err)
	}
	return labels, newRec
}

// A table built with a worker pool must be exactly as applicable as a
// sequential one: applied to identical server state, both installs end
// at the identical record (the new-label schedule is deterministic),
// and both recover to the same value — the cross-check that parallel
// sealing writes every slot of every worker's range correctly.
func TestParallelBuildMatchesSequential(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := LBLConfig{ValueSize: 64, Mode: mode}
			proxy, err := NewLBLProxy(cfg, prf.NewRandom(), nil)
			if err != nil {
				t.Fatal(err)
			}
			value := make([]byte, cfg.ValueSize)
			rnd := rand.New(rand.NewPCG(1, 2))
			for i := range value {
				value[i] = byte(rnd.Uint32())
			}
			ek, rec, err := proxy.BuildRecord("obj", value)
			if err != nil {
				t.Fatal(err)
			}

			newValue := make([]byte, cfg.ValueSize)
			for i := range newValue {
				newValue[i] = byte(rnd.Uint32())
			}
			seq := make([]byte, cfg.TableBytes())
			par := make([]byte, cfg.TableBytes())
			if err := proxy.buildAccessTable(seq, "obj", OpWrite, newValue, 0, 1); err != nil {
				t.Fatal(err)
			}
			if err := proxy.buildAccessTable(par, "obj", OpWrite, newValue, 0, 4); err != nil {
				t.Fatal(err)
			}

			seqLabels, seqRec := applyTable(t, cfg, ek, rec, seq)
			parLabels, parRec := applyTable(t, cfg, ek, rec, par)
			if !bytes.Equal(seqRec, parRec) {
				t.Error("stored records diverge after sequential vs parallel table")
			}
			if !bytes.Equal(seqLabels, parLabels) {
				t.Error("response labels diverge")
			}

			// Both recoveries — sequential and fanned out — must yield
			// the written value.
			for _, workers := range []int{1, 4} {
				got, err := proxy.recoverWorkers(OpWrite, "obj", newValue, 1, parLabels, workers)
				if err != nil {
					t.Fatalf("recover with %d workers: %v", workers, err)
				}
				if !bytes.Equal(got, newValue) {
					t.Errorf("recover with %d workers = %x, want %x", workers, got, newValue)
				}
			}
		})
	}
}

// Each worker's shuffle lane must still place entries uniformly: in
// basic mode the bit-0 entry is generated first, so any placement bias
// would leak plaintext bits by table position (§5.2 step 1.5). Locate
// the bit-0 entry in every group of many parallel-built tables and
// check both slots are hit evenly — across the table, i.e. in every
// worker's range.
func TestParallelBuildShuffleUniform(t *testing.T) {
	cfg := LBLConfig{ValueSize: 16, Mode: LBLBasic} // 128 groups
	proxy, err := NewLBLProxy(cfg, prf.NewRandom(), nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := proxy.prf.LabelGen("obj")
	table := make([]byte, cfg.TableBytes())
	entryLen := cfg.Mode.entryLen()
	groups := cfg.Groups()

	const rounds = 200
	slot0 := 0
	perWorkerSlot0 := [4]int{}
	for ct := uint64(0); ct < rounds; ct++ {
		if err := proxy.buildAccessTable(table, "obj", OpRead, nil, ct, 4); err != nil {
			t.Fatal(err)
		}
		for g := 0; g < groups; g++ {
			old0 := gen.Label(g, 0, ct)
			e0 := table[g*2*entryLen : g*2*entryLen+entryLen]
			if _, err := secretbox.OpenLabel(old0[:], e0); err == nil {
				slot0++
				perWorkerSlot0[g*4/groups]++
			}
		}
	}
	total := rounds * groups
	frac := float64(slot0) / float64(total)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("bit-0 entry in slot 0 fraction = %.4f over %d samples, want ~0.5", frac, total)
	}
	// And per worker lane (groups/4 ranges): no lane may be degenerate.
	perLane := rounds * groups / 4
	for lane, n := range perWorkerSlot0 {
		lf := float64(n) / float64(perLane)
		if lf < 0.42 || lf > 0.58 {
			t.Errorf("worker lane %d slot-0 fraction = %.4f, want ~0.5", lane, lf)
		}
	}
}

// End-to-end accesses with the worker pool engaged (GOMAXPROCS raised
// so tableWorkers fans out): values must round-trip exactly as in the
// sequential configuration. Run under -race this also checks the
// build/recover goroutines share no state.
func TestAccessEndToEndWithWorkerPool(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for _, mode := range []LBLMode{LBLBasic, LBLPointPermute} {
		t.Run(mode.String(), func(t *testing.T) {
			// 64 B basic → 512 groups → 4 workers per table.
			r, proxy, _ := newLBL(t, mode, 64)
			v0 := bytes.Repeat([]byte{0x5A}, 64)
			loadData(t, r, proxy, map[string][]byte{"k": v0})
			got, _, err := proxy.Access(OpRead, "k", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, v0) {
				t.Errorf("read = %x, want %x", got, v0)
			}
			v1 := bytes.Repeat([]byte{0xC3}, 64)
			if _, _, err := proxy.Access(OpWrite, "k", v1); err != nil {
				t.Fatal(err)
			}
			got, _, err = proxy.Access(OpRead, "k", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, v1) {
				t.Errorf("read after write = %x, want %x", got, v1)
			}
		})
	}
}

// The batched path with inner workers engaged: batch of few keys on a
// many-core setting multiplies inner fan-out.
func TestAccessBatchWithInnerWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	r, proxy, _ := newLBL(t, LBLBasic, 64)
	data := map[string][]byte{
		"a": bytes.Repeat([]byte{1}, 64),
		"b": bytes.Repeat([]byte{2}, 64),
	}
	loadData(t, r, proxy, data)
	ops := []BatchOp{
		{Op: OpRead, Key: "a"},
		{Op: OpWrite, Key: "b", Value: bytes.Repeat([]byte{9}, 64)},
		{Op: OpRead, Key: "b"},
	}
	vals, _, err := proxy.AccessBatch(ops)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(vals[0], data["a"]) {
		t.Errorf("batch read a = %x", vals[0])
	}
	if !bytes.Equal(vals[2], bytes.Repeat([]byte{9}, 64)) {
		t.Errorf("batch read-after-write b = %x", vals[2])
	}
}

// The sequential (workers<=1) build path is the per-access hot path on
// small tables; pin its allocation budget so the pooled-buffer work
// cannot silently regress. The budget covers the per-access LabelGen
// (HMAC + AES key schedule) and the shuffler — not per-entry or
// per-group garbage, which this test would catch.
func TestSequentialBuildAllocBudget(t *testing.T) {
	cfg := LBLConfig{ValueSize: 160, Mode: LBLBasic}
	k, err := NewTableBuildKernel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	k.Op() // warm
	allocs := testing.AllocsPerRun(50, func() {
		if err := k.Op(); err != nil {
			t.Fatal(err)
		}
	})
	// LabelGen ~6 allocs (HMAC state + AES cipher), shuffler 1,
	// generous headroom for runtime internals; 1280 groups × 2 entries
	// would add thousands if per-entry garbage returned.
	if allocs > 16 {
		t.Errorf("sequential table build allocates %v times per op, want <= 16", allocs)
	}
}
