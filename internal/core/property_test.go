package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"ortoa/internal/crypto/prf"
)

// TestQuickRequestSizeFormula: the §5.3.2 accounting exposed by
// LBLConfig must exactly match what buildRequest produces, for every
// mode, value size, operation, and counter.
func TestQuickRequestSizeFormula(t *testing.T) {
	f := prf.NewRandom()
	check := func(modeSel, sizeSel uint8, isWrite bool, ct uint16) bool {
		mode := allLBLModes()[int(modeSel)%len(allLBLModes())]
		size := int(sizeSel)%64 + 1
		cfg := LBLConfig{ValueSize: size, Mode: mode}
		proxy, err := NewLBLProxy(cfg, f, nil)
		if err != nil {
			return false
		}
		op := OpRead
		var value []byte
		if isWrite {
			op = OpWrite
			value = bytes.Repeat([]byte{0xA5}, size)
		}
		req, err := proxy.buildRequest(op, "some-key", value, uint64(ct))
		if err != nil {
			return false
		}
		return len(req) == cfg.RequestBytesPerAccess()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGroupBitsRoundTrip: bit-group packing must be a bijection
// for every supported y and any value.
func TestQuickGroupBitsRoundTrip(t *testing.T) {
	check := func(value []byte, ySel uint8) bool {
		if len(value) == 0 {
			return true
		}
		y := []int{1, 2, 4}[int(ySel)%3]
		out := make([]byte, len(value))
		for g := 0; g < len(value)*8/y; g++ {
			setGroupBits(out, g, y, groupBits(value, g, y))
		}
		return bytes.Equal(out, value)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLBLRecordShape: BuildRecord output must match the size the
// config advertises, for every mode and size.
func TestQuickLBLRecordShape(t *testing.T) {
	f := prf.NewRandom()
	check := func(modeSel, sizeSel uint8) bool {
		mode := allLBLModes()[int(modeSel)%len(allLBLModes())]
		size := int(sizeSel)%64 + 1
		cfg := LBLConfig{ValueSize: size, Mode: mode}
		proxy, err := NewLBLProxy(cfg, f, nil)
		if err != nil {
			return false
		}
		ek, rec, err := proxy.BuildRecord("k", make([]byte, size))
		if err != nil {
			return false
		}
		return len(ek) == prf.Size && len(rec) == cfg.ServerBytesPerValue()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPadValue: padding must preserve the prefix and fill with
// zeros.
func TestQuickPadValue(t *testing.T) {
	check := func(v []byte, extra uint8) bool {
		size := len(v) + int(extra)
		out, err := PadValue(v, size)
		if err != nil {
			return false
		}
		if len(out) != size || !bytes.Equal(out[:len(v)], v) {
			return false
		}
		for _, b := range out[len(v):] {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
