package core

import (
	"bytes"
	"testing"

	"ortoa/internal/crypto/prf"
)

// These tests exercise the testable projection of ROR-RW
// indistinguishability (§7, §11): real read transcripts, real write
// transcripts, and simulator transcripts must be structurally
// identical — same lengths, same framing — and fresh randomness must
// make repeated transcripts non-equal.

func TestLBLReadWriteTranscriptShape(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			proxy, err := NewLBLProxy(LBLConfig{ValueSize: 8, Mode: mode}, prf.NewRandom(), nil)
			if err != nil {
				t.Fatal(err)
			}
			newVal := bytes.Repeat([]byte{0x5A}, 8)
			read, err := proxy.buildRequest(OpRead, "k", nil, 3)
			if err != nil {
				t.Fatal(err)
			}
			write, err := proxy.buildRequest(OpWrite, "k", newVal, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(read) != len(write) {
				t.Fatalf("read transcript %dB, write %dB — adversary distinguishes by length", len(read), len(write))
			}
			// Identical framing prefix (encoded key, mode, counts).
			prefix := prf.Size + 1 + 2
			if !bytes.Equal(read[prf.Size:prefix], write[prf.Size:prefix]) {
				t.Error("framing differs between read and write")
			}
			if bytes.Equal(read[prefix:], write[prefix:]) {
				t.Error("read and write tables identical — randomness missing")
			}
		})
	}
}

func TestLBLTranscriptFreshPerCounter(t *testing.T) {
	proxy, err := NewLBLProxy(LBLConfig{ValueSize: 4, Mode: LBLPointPermute}, prf.NewRandom(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := proxy.buildRequest(OpRead, "k", nil, 1)
	b, _ := proxy.buildRequest(OpRead, "k", nil, 2)
	if bytes.Equal(a[prf.Size:], b[prf.Size:]) {
		t.Error("transcripts for successive counters identical")
	}
}

func TestLBLSimulatorMatchesRealShape(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := LBLConfig{ValueSize: 8, Mode: mode}
			proxy, err := NewLBLProxy(cfg, prf.NewRandom(), nil)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := NewLBLSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			real, err := proxy.buildRequest(OpWrite, "k", bytes.Repeat([]byte{1}, 8), 0)
			if err != nil {
				t.Fatal(err)
			}
			simulated, err := sim.Simulate("k")
			if err != nil {
				t.Fatal(err)
			}
			if len(real) != len(simulated) {
				t.Errorf("real transcript %dB, simulated %dB", len(real), len(simulated))
			}
			// Multi-access sequence: every simulated transcript keeps
			// the real shape.
			for i := 0; i < 5; i++ {
				again, err := sim.Simulate("k")
				if err != nil {
					t.Fatal(err)
				}
				if len(again) != len(real) {
					t.Errorf("access %d: simulated %dB, want %dB", i, len(again), len(real))
				}
				if bytes.Equal(again, simulated) {
					t.Error("simulator repeated a transcript verbatim")
				}
				simulated = again
			}
		})
	}
}

func TestTEESimulatorMatchesRealShape(t *testing.T) {
	cfg := TEEConfig{ValueSize: 16}
	client, err := NewTEEClient(cfg, prf.NewRandom(), newTestKey(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Build a real request by hand the way Access does, without a
	// server: reuse the client's sealing path via exported pieces.
	// The request layout is encKey ‖ len‖Seal(c_r) ‖ len‖Seal(v_new);
	// sizes are deterministic, so compare against the simulator.
	sim, err := NewTEESimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := sim.Simulate("k")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.Simulate("k")
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Error("simulator output length varies")
	}
	if bytes.Equal(s1, s2) {
		t.Error("simulator repeated a transcript")
	}
	_ = client
}

func newTestKey() []byte { return bytes.Repeat([]byte{7}, 16) }

func TestTEERealReadWriteSameShapeEndToEnd(t *testing.T) {
	// End-to-end capture: the request bytes of a read and a write must
	// have identical length (newRig captures sizes via Stats).
	r, client, _ := newTEE(t, 16)
	loadData(t, r, client, map[string][]byte{"k": bytes.Repeat([]byte{3}, 16)})
	sent0 := r.client.Stats().BytesSent
	if _, _, err := client.Access(OpRead, "k", nil); err != nil {
		t.Fatal(err)
	}
	sent1 := r.client.Stats().BytesSent
	if _, _, err := client.Access(OpWrite, "k", bytes.Repeat([]byte{4}, 16)); err != nil {
		t.Fatal(err)
	}
	sent2 := r.client.Stats().BytesSent
	if sent1-sent0 != sent2-sent1 {
		t.Errorf("read sent %dB, write sent %dB", sent1-sent0, sent2-sent1)
	}
}

func TestLBLRealReadWriteSameShapeEndToEnd(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			r, proxy, _ := newLBL(t, mode, 8)
			loadData(t, r, proxy, map[string][]byte{"k": bytes.Repeat([]byte{3}, 8)})
			sent0, recv0 := r.client.Stats().BytesSent, r.client.Stats().BytesReceived
			if _, _, err := proxy.Access(OpRead, "k", nil); err != nil {
				t.Fatal(err)
			}
			sent1, recv1 := r.client.Stats().BytesSent, r.client.Stats().BytesReceived
			if _, _, err := proxy.Access(OpWrite, "k", bytes.Repeat([]byte{9}, 8)); err != nil {
				t.Fatal(err)
			}
			sent2, recv2 := r.client.Stats().BytesSent, r.client.Stats().BytesReceived
			if sent1-sent0 != sent2-sent1 {
				t.Errorf("read sent %dB, write sent %dB", sent1-sent0, sent2-sent1)
			}
			if recv1-recv0 != recv2-recv1 {
				t.Errorf("read recv %dB, write recv %dB", recv1-recv0, recv2-recv1)
			}
		})
	}
}

func TestFHERealReadWriteSameShapeEndToEnd(t *testing.T) {
	r, client := newFHE(t)
	loadData(t, r, client, map[string][]byte{"k": bytes.Repeat([]byte{1}, 8)})
	sent0 := r.client.Stats().BytesSent
	if _, _, err := client.Access(OpRead, "k", nil); err != nil {
		t.Fatal(err)
	}
	sent1 := r.client.Stats().BytesSent
	if _, _, err := client.Access(OpWrite, "k", bytes.Repeat([]byte{2}, 8)); err != nil {
		t.Fatal(err)
	}
	sent2 := r.client.Stats().BytesSent
	if sent1-sent0 != sent2-sent1 {
		t.Errorf("read sent %dB, write sent %dB", sent1-sent0, sent2-sent1)
	}
}
