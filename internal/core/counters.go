package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// A counterTable is the proxy's only persistent state for LBL-ORTOA:
// the per-key access counter (§5.3.1 — 8 bytes per key, ~8 MB for 1M
// objects). It also provides the per-key mutual exclusion LBL-ORTOA
// needs: two concurrent accesses to one key must not build tables from
// the same counter value, or the second would target labels the first
// already replaced.
type counterTable struct {
	shards [64]counterShard
}

type counterShard struct {
	mu      sync.Mutex
	entries map[string]*counterEntry
}

type counterEntry struct {
	mu sync.Mutex
	ct uint64
	// pending, when non-nil, records a round at counter ct whose
	// outcome is unknown (the transport failed ambiguously). The next
	// access to the key must settle it — by replaying the same request
	// id, which the server answers at-most-once — before ct can be
	// trusted again. Guarded by mu.
	pending *pendingRound
}

func newCounterTable() *counterTable {
	t := &counterTable{}
	for i := range t.shards {
		t.shards[i].entries = make(map[string]*counterEntry)
	}
	return t
}

func (t *counterTable) shardFor(key string) *counterShard {
	// FNV-1a, inlined to avoid an allocation per access.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &t.shards[h%64]
}

// acquire locks key's counter and returns its entry. The caller must
// call entry.mu.Unlock when the access completes.
func (t *counterTable) acquire(key string) *counterEntry {
	sh := t.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if !ok {
		e = &counterEntry{}
		sh.entries[key] = e
	}
	sh.mu.Unlock()
	e.mu.Lock()
	return e
}

// Len returns the number of tracked keys.
func (t *counterTable) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].entries)
		t.shards[i].mu.Unlock()
	}
	return n
}

// counterMagic heads the counter snapshot format.
var counterMagic = [8]byte{'O', 'R', 'T', 'O', 'A', 'C', 'T', '1'}

// save serializes all counters. The proxy's counters are the only
// state LBL-ORTOA cannot regenerate (§5.3.1): losing them desynchronizes
// the label schedule from the server's records, so deployments persist
// them across proxy restarts.
//
// Snapshotting concurrent with in-flight accesses captures each
// counter either before or after its access — safe only if the server
// saw no later access; quiesce the proxy before saving, as ortoa-proxy
// does on shutdown.
func (t *counterTable) save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(counterMagic[:]); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(t.Len()))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	written := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for key, e := range sh.entries {
			var lenBuf [binary.MaxVarintLen64]byte
			n := binary.PutUvarint(lenBuf[:], uint64(len(key)))
			if _, err := bw.Write(lenBuf[:n]); err != nil {
				sh.mu.Unlock()
				return err
			}
			if _, err := bw.WriteString(key); err != nil {
				sh.mu.Unlock()
				return err
			}
			e.mu.Lock()
			ct := e.ct
			e.mu.Unlock()
			binary.LittleEndian.PutUint64(cnt[:], ct)
			if _, err := bw.Write(cnt[:]); err != nil {
				sh.mu.Unlock()
				return err
			}
			written++
		}
		sh.mu.Unlock()
	}
	if got := t.Len(); got != written {
		return fmt.Errorf("core: counters mutated during save (%d vs %d)", written, got)
	}
	return bw.Flush()
}

// maxCounterEntries bounds the entry count a snapshot may claim. A
// count above it (≈268M keys, a multi-gigabyte snapshot) means the
// header is corrupt, not that the deployment is large; rejecting it
// up front keeps a flipped bit in the count field from turning load
// into an unbounded allocation loop.
const maxCounterEntries = 1 << 28

// load restores counters saved with save, replacing current entries
// for the same keys. The snapshot is parsed and validated in full
// before any counter is applied: counters the server has moved past
// are the one piece of proxy state that cannot be regenerated
// (§5.3.1), so a truncated or corrupt snapshot must reject cleanly
// rather than leave the table half-updated with no way to tell which
// keys were touched.
func (t *counterTable) load(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("core: reading counter magic: %w", err)
	}
	if magic != counterMagic {
		return fmt.Errorf("core: bad counter snapshot magic %q", magic[:])
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return fmt.Errorf("core: reading counter count: %w", err)
	}
	n := binary.LittleEndian.Uint64(buf[:])
	if n > maxCounterEntries {
		return fmt.Errorf("core: counter snapshot claims %d entries (cap %d); header corrupt", n, maxCounterEntries)
	}
	type kv struct {
		key string
		ct  uint64
	}
	capHint := n
	if capHint > 4096 {
		capHint = 4096 // trust the data, not the claimed count
	}
	parsed := make([]kv, 0, capHint)
	for i := uint64(0); i < n; i++ {
		klen, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("core: counter entry %d: %w", i, err)
		}
		if klen > 1<<20 {
			return fmt.Errorf("core: counter entry %d key length %d implausible", i, klen)
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(br, key); err != nil {
			return fmt.Errorf("core: counter entry %d key: %w", i, err)
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return fmt.Errorf("core: counter entry %d value: %w", i, err)
		}
		parsed = append(parsed, kv{string(key), binary.LittleEndian.Uint64(buf[:])})
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return fmt.Errorf("core: trailing data after %d counter entries", n)
	}
	for _, e := range parsed {
		ent := t.acquire(e.key)
		ent.ct = e.ct
		ent.pending = nil // a restored counter supersedes any ambiguous round
		ent.mu.Unlock()
	}
	return nil
}
