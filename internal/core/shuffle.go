package core

import (
	"crypto/rand"
	"encoding/binary"
)

// This file provides the randomness for the §5.2 step-1.5 table
// shuffle. The shuffle is security-critical: the encryption-table
// entries of the basic and space-optimized LBL variants are ordered by
// bit value before shuffling, so a predictable permutation would let
// the server correlate entry positions with plaintext bits across
// accesses. The permutation must therefore be drawn from a
// cryptographically strong source — math/rand's default generators are
// seedable and predictable and MUST NOT be used here.

// A cryptoShuffler produces uniform random integers and Fisher–Yates
// permutations driven by crypto/rand. It buffers randomness so a
// request that shuffles hundreds of groups costs a handful of
// crypto/rand reads rather than one per swap. Not safe for concurrent
// use; callers create one per request.
type cryptoShuffler struct {
	buf [512]byte
	off int
}

// newCryptoShuffler returns a shuffler with an empty buffer; the first
// draw fills it from crypto/rand.
func newCryptoShuffler() *cryptoShuffler {
	s := &cryptoShuffler{}
	s.off = len(s.buf)
	return s
}

func (s *cryptoShuffler) uint64() uint64 {
	if s.off+8 > len(s.buf) {
		if _, err := rand.Read(s.buf[:]); err != nil {
			// crypto/rand never fails on supported platforms; a silent
			// fallback to weak randomness would break obliviousness.
			panic("core: crypto/rand failed: " + err.Error())
		}
		s.off = 0
	}
	v := binary.LittleEndian.Uint64(s.buf[s.off:])
	s.off += 8
	return v
}

// intN returns a uniform integer in [0, n) via rejection sampling, so
// the permutation is unbiased as well as unpredictable.
func (s *cryptoShuffler) intN(n int) int {
	if n <= 0 {
		panic("core: intN with non-positive n")
	}
	max := uint64(n)
	// Reject draws from the tail that would bias v % max.
	limit := (^uint64(0)) - (^uint64(0))%max
	for {
		if v := s.uint64(); v < limit {
			return int(v % max)
		}
	}
}

// shuffle performs a crypto/rand-driven Fisher–Yates shuffle of n
// elements.
func (s *cryptoShuffler) shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.intN(i+1))
	}
}
