package core

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
)

// This file provides the randomness for the §5.2 step-1.5 table
// shuffle. The shuffle is security-critical: the encryption-table
// entries of the basic and space-optimized LBL variants are ordered by
// bit value before shuffling, so a predictable permutation would let
// the server correlate entry positions with plaintext bits across
// accesses. The permutation must therefore be drawn from a
// cryptographically strong source — math/rand's default generators are
// seedable and predictable and MUST NOT be used here.
//
// Two sources satisfy that bar. newCryptoShuffler draws directly from
// crypto/rand. The parallel table build instead derives one shuffleSeed
// per request from crypto/rand and expands it with AES-CTR, one lane
// per worker: the stream is as unpredictable as AES under a random key,
// each worker's lane is disjoint by construction, and expansion costs
// no syscalls — getrandom reads were a measurable slice of the
// sequential build.

// A cryptoShuffler produces uniform random integers and Fisher–Yates
// permutations from a buffered crypto-strength source, so a request
// that shuffles hundreds of groups costs a handful of refills rather
// than one draw per swap. Not safe for concurrent use; callers create
// one per request (or per worker).
type cryptoShuffler struct {
	refill func(p []byte)
	buf    [512]byte
	off    int
}

// newCryptoShuffler returns a shuffler backed directly by crypto/rand,
// with an empty buffer; the first draw fills it.
func newCryptoShuffler() *cryptoShuffler {
	s := &cryptoShuffler{refill: osRandom}
	s.off = len(s.buf)
	return s
}

func osRandom(p []byte) {
	if _, err := rand.Read(p); err != nil {
		// crypto/rand never fails on supported platforms; a silent
		// fallback to weak randomness would break obliviousness.
		panic("core: crypto/rand failed: " + err.Error())
	}
}

// A shuffleSeed keys a family of deterministic crypto-strength shuffle
// streams. One seed is drawn per table build; each worker expands its
// own lane.
type shuffleSeed [16]byte

// newShuffleSeed draws a fresh random seed.
func newShuffleSeed() shuffleSeed {
	var s shuffleSeed
	osRandom(s[:])
	return s
}

// stream returns a shuffler drawing from AES-128-CTR keyed by the seed.
// The lane index occupies the top of the IV and CTR increments from the
// bottom, so distinct lanes use disjoint counter ranges: workers of one
// build share a single 16-byte seed yet never reuse a stream block.
func (seed shuffleSeed) stream(lane uint32) *cryptoShuffler {
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		panic("core: " + err.Error()) // 16-byte key; cannot fail
	}
	var iv [16]byte
	binary.LittleEndian.PutUint32(iv[:4], lane)
	ctr := cipher.NewCTR(block, iv[:])
	s := &cryptoShuffler{refill: func(p []byte) {
		clear(p)
		ctr.XORKeyStream(p, p)
	}}
	s.off = len(s.buf)
	return s
}

func (s *cryptoShuffler) uint64() uint64 {
	if s.off+8 > len(s.buf) {
		s.refill(s.buf[:])
		s.off = 0
	}
	v := binary.LittleEndian.Uint64(s.buf[s.off:])
	s.off += 8
	return v
}

// intN returns a uniform integer in [0, n) via rejection sampling, so
// the permutation is unbiased as well as unpredictable.
func (s *cryptoShuffler) intN(n int) int {
	if n <= 0 {
		panic("core: intN with non-positive n")
	}
	max := uint64(n)
	// Reject draws from the tail that would bias v % max.
	limit := (^uint64(0)) - (^uint64(0))%max
	for {
		if v := s.uint64(); v < limit {
			return int(v % max)
		}
	}
}

// shuffle performs a crypto-strength Fisher–Yates shuffle of n
// elements.
func (s *cryptoShuffler) shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.intN(i+1))
	}
}

// perm fills out[:n] with a uniform random permutation of [0, n) using
// the inside-out Fisher–Yates construction. The table build uses it as
// a slot map — entry b is sealed directly at offset out[b] — so entries
// land shuffled without a post-hoc swap pass over sealed bytes.
func (s *cryptoShuffler) perm(n int, out []int) {
	if n <= 0 {
		return
	}
	out[0] = 0
	for i := 1; i < n; i++ {
		j := s.intN(i + 1)
		out[i] = out[j]
		out[j] = i
	}
}
