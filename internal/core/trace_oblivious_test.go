package core

import (
	"testing"

	"ortoa/internal/obs"
)

// TestObliviousnessLBLTraced re-runs the adversary's-view transcript
// comparison with distributed tracing armed on every hop. The trace
// ref is a fixed-size header field, so the observed
// (type, reqLen, respLen) multisets must stay identical between pure
// reads and pure writes — tracing must not change the transcript
// shape. The shape auditors are shared across BOTH runs, so they also
// pin that a read-run frame and a write-run frame of the same class
// have the same length, not just that each run is internally uniform.
func TestObliviousnessLBLTraced(t *testing.T) {
	const valueSize = 8
	const ops = 12
	reg := obs.NewRegistry()
	serverAud := obs.NewShapeAuditor(reg, "server")
	proxyAud := obs.NewShapeAuditor(reg, "proxy")
	mkTraced := func(t *testing.T) (*rig, Accessor) {
		r, acc := lblObsRig(LBLPointPermute, valueSize)(t)
		r.server.SetTracer(reg.Tracer("server", 1<<12))
		r.server.AuditShape(serverAud, ShapeClassify)
		r.client.SetTracer(reg.Tracer("proxy", 1<<12))
		r.client.AuditShape(proxyAud, ShapeClassify)
		acc.(*LBLProxy).TraceWith(reg.Tracer("proxy", 1<<12))
		return r, acc
	}

	reads := observedRun(t, mkTraced, OpRead, valueSize, ops)
	writes := observedRun(t, mkTraced, OpWrite, valueSize, ops)
	assertIdenticalViews(t, reads, writes)

	if vp, vs := proxyAud.Violations(), serverAud.Violations(); vp != 0 || vs != 0 {
		t.Fatalf("shape auditor: proxy=%d server=%d violations across read+write runs, want 0/0", vp, vs)
	}

	// Tracing was genuinely on: both processes recorded spans, joined
	// into cross-process trees by ids that crossed the wire.
	serverByTrace := map[uint64]bool{}
	have := map[string]bool{}
	for _, rec := range reg.TraceRecords() {
		have[rec.Name] = true
		if rec.Process == "server" {
			serverByTrace[rec.TraceID] = true
		}
	}
	for _, want := range []string{"lbl_access", "counter_acquire", "table_build", "rpc",
		"label_recover", "transport_attempt", "server_handle", "server_decrypt"} {
		if !have[want] {
			t.Fatalf("no %q span recorded; tracing was not actually exercised", want)
		}
	}
	joined := 0
	for _, rec := range reg.TraceRecords() {
		if rec.Process == "proxy" && rec.Name == "lbl_access" && serverByTrace[rec.TraceID] {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("no proxy trace id reached the server: span context did not propagate")
	}
}
