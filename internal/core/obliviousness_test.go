package core

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/fhe"
)

// These tests check operation-type obliviousness at the exact boundary
// the paper's adversary controls (§2.3): the server's view of the
// exchanged messages. For each protocol, a run of pure reads and a run
// of pure writes must produce identical multisets of
// (message type, request size, response size) observations — if they
// differ in any way the adversary could count, the protocol leaks.

// exchange is one observed request/response pair.
type exchange struct {
	msgType byte
	reqLen  int
	respLen int
}

// observedRun performs ops accesses of the given op and returns the
// sorted observation list.
func observedRun(t *testing.T, mkRig func(t *testing.T) (*rig, Accessor), op Op, valueSize, ops int) []exchange {
	t.Helper()
	r, accessor := mkRig(t)
	var mu sync.Mutex
	var seen []exchange
	r.server.SetObserver(func(msgType byte, reqLen, respLen int) {
		mu.Lock()
		seen = append(seen, exchange{msgType, reqLen, respLen})
		mu.Unlock()
	})
	value := make([]byte, valueSize)
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("key-%02d", i%4)
		var err error
		if op == OpWrite {
			value[0] = byte(i)
			_, _, err = accessor.Access(OpWrite, key, value)
		} else {
			_, _, err = accessor.Access(OpRead, key, nil)
		}
		if err != nil {
			t.Fatalf("%s %d: %v", op, i, err)
		}
	}
	sort.Slice(seen, func(i, j int) bool {
		a, b := seen[i], seen[j]
		if a.msgType != b.msgType {
			return a.msgType < b.msgType
		}
		if a.reqLen != b.reqLen {
			return a.reqLen < b.reqLen
		}
		return a.respLen < b.respLen
	})
	return seen
}

func assertIdenticalViews(t *testing.T, reads, writes []exchange) {
	t.Helper()
	if len(reads) != len(writes) {
		t.Fatalf("adversary counts %d exchanges for reads, %d for writes", len(reads), len(writes))
	}
	for i := range reads {
		if reads[i] != writes[i] {
			t.Fatalf("observation %d differs: reads %+v, writes %+v — operation type leaks", i, reads[i], writes[i])
		}
	}
}

func lblObsRig(mode LBLMode, valueSize int) func(t *testing.T) (*rig, Accessor) {
	return func(t *testing.T) (*rig, Accessor) {
		r, proxy, _ := newLBL(t, mode, valueSize)
		data := map[string][]byte{}
		for i := 0; i < 4; i++ {
			data[fmt.Sprintf("key-%02d", i)] = make([]byte, valueSize)
		}
		loadData(t, r, proxy, data)
		return r, proxy
	}
}

func TestObliviousnessLBLAllModes(t *testing.T) {
	const valueSize = 8
	const ops = 12
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			reads := observedRun(t, lblObsRig(mode, valueSize), OpRead, valueSize, ops)
			writes := observedRun(t, lblObsRig(mode, valueSize), OpWrite, valueSize, ops)
			assertIdenticalViews(t, reads, writes)
		})
	}
}

func TestObliviousnessTEE(t *testing.T) {
	const valueSize = 16
	const ops = 12
	mkRig := func(t *testing.T) (*rig, Accessor) {
		r, client, _ := newTEE(t, valueSize)
		data := map[string][]byte{}
		for i := 0; i < 4; i++ {
			data[fmt.Sprintf("key-%02d", i)] = make([]byte, valueSize)
		}
		loadData(t, r, client, data)
		return r, client
	}
	reads := observedRun(t, mkRig, OpRead, valueSize, ops)
	writes := observedRun(t, mkRig, OpWrite, valueSize, ops)
	assertIdenticalViews(t, reads, writes)
}

func TestObliviousnessFHE(t *testing.T) {
	const valueSize = 8
	const ops = 4 // noise-limited
	mkRig := func(t *testing.T) (*rig, Accessor) {
		r := newRig(t)
		params, err := fhe.NewParameters(64, 220)
		if err != nil {
			t.Fatal(err)
		}
		cfg := FHEConfig{Params: params, ValueSize: valueSize}
		NewFHEServer(r.store, cfg).Register(r.server)
		client, err := NewFHEClient(cfg, prf.NewRandom(), r.client)
		if err != nil {
			t.Fatal(err)
		}
		data := map[string][]byte{}
		for i := 0; i < 4; i++ {
			data[fmt.Sprintf("key-%02d", i)] = make([]byte, valueSize)
		}
		loadData(t, r, client, data)
		return r, client
	}
	reads := observedRun(t, mkRig, OpRead, valueSize, ops)
	writes := observedRun(t, mkRig, OpWrite, valueSize, ops)
	assertIdenticalViews(t, reads, writes)
}

// TestBaselineAlsoOblivious documents that the 2RTT baseline achieves
// the same observable indistinguishability — at double the round
// count, which is the paper's entire point.
func TestBaselineAlsoOblivious(t *testing.T) {
	const valueSize = 8
	const ops = 12
	mkRig := func(t *testing.T) (*rig, Accessor) {
		r := newRig(t)
		NewBaselineServer(r.store).Register(r.server)
		proxy, err := NewBaselineProxy(BaselineConfig{ValueSize: valueSize}, prf.NewRandom(), secretbox.NewRandomKey(), r.client)
		if err != nil {
			t.Fatal(err)
		}
		data := map[string][]byte{}
		for i := 0; i < 4; i++ {
			data[fmt.Sprintf("key-%02d", i)] = make([]byte, valueSize)
		}
		loadData(t, r, proxy, data)
		return r, proxy
	}
	reads := observedRun(t, mkRig, OpRead, valueSize, ops)
	writes := observedRun(t, mkRig, OpWrite, valueSize, ops)
	assertIdenticalViews(t, reads, writes)
	// And it costs two exchanges per access where ORTOA costs one.
	if len(reads) != 2*ops {
		t.Errorf("baseline produced %d exchanges for %d accesses, want %d", len(reads), ops, 2*ops)
	}
}
