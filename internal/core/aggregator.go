package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
)

// Aggregation defaults; see AggregatorConfig.
const (
	DefaultAggMaxBatch      = 64
	defaultAggPendingFactor = 4
)

// ErrAggregatorOverloaded rejects an access admitted beyond the
// aggregator's pending budget — the backpressure signal. The access
// was not executed; the caller may retry after backing off.
var ErrAggregatorOverloaded = errors.New("core: aggregator overloaded: pending-access budget exhausted")

// ErrAggregatorClosed rejects accesses arriving after Close.
var ErrAggregatorClosed = errors.New("core: aggregator closed")

// A BatchAccessor executes many oblivious accesses as one round trip,
// reporting each access's outcome individually. *LBLProxy implements
// it via AccessBatchResults.
type BatchAccessor interface {
	AccessBatchResults(ctx context.Context, ops []BatchOp) ([]BatchResult, AccessStats)
}

// AggregatorConfig tunes an Aggregator.
type AggregatorConfig struct {
	// Window is the longest an access waits for company: the window
	// dispatches at most this long after its first access arrives.
	// It is the latency the slowest-coalescing access pays to buy the
	// round-trip amortization; it must be positive.
	Window time.Duration
	// MaxBatch dispatches a window early once it holds this many
	// accesses (default DefaultAggMaxBatch). It bounds the batch frame
	// size and the tail latency added by table-build time.
	MaxBatch int
	// MaxPending is the admission budget: the total number of accesses
	// admitted but not yet answered — waiting in the open window or in
	// flight in a dispatched batch. An access arriving beyond it is
	// rejected with ErrAggregatorOverloaded instead of queueing
	// unboundedly (default 4×MaxBatch).
	MaxPending int
	// BrownoutPending is the pending depth at which new windows open in
	// brownout mode: a larger size trigger (BrownoutMaxBatch) and a
	// quarter-length time trigger, trading per-access coalescing
	// latency for throughput while the backlog drains. Default
	// MaxPending/2.
	BrownoutPending int
	// BrownoutMaxBatch is the size trigger for windows opened under
	// brownout. Default 2×MaxBatch.
	BrownoutMaxBatch int
}

func (c AggregatorConfig) maxBatch() int {
	if c.MaxBatch > 0 {
		return c.MaxBatch
	}
	return DefaultAggMaxBatch
}

func (c AggregatorConfig) maxPending() int {
	if c.MaxPending > 0 {
		return c.MaxPending
	}
	return defaultAggPendingFactor * c.maxBatch()
}

func (c AggregatorConfig) brownoutPending() int {
	if c.BrownoutPending > 0 {
		return c.BrownoutPending
	}
	return (c.maxPending() + 1) / 2
}

func (c AggregatorConfig) brownoutMaxBatch() int {
	if c.BrownoutMaxBatch > 0 {
		return c.BrownoutMaxBatch
	}
	return 2 * c.maxBatch()
}

// An Aggregator multiplexes concurrent single-object accesses from
// independent sessions into shared oblivious batch round trips: the
// first access opens a time/size window, later arrivals join it in
// FIFO order, and when the window closes — its timer fires or it
// reaches MaxBatch — one session issues the whole window as a single
// MsgLBLAccessBatch frame and demultiplexes the per-access results
// (and per-access errors) back to the waiters.
//
// The hand-off mirrors the WAL's group commit (DESIGN.md §10): the
// closer becomes the window's leader while a fresh window opens
// immediately for new arrivals, so dispatch never blocks admission
// and windows pipeline behind one another.
//
// Aggregator implements Accessor, so it drops into the proxy service
// in place of the per-request LBLProxy (see Client.ServeProxy).
// Security: the server sees exactly the batch frames a native
// AccessBatch of the same sizes would produce — aggregation changes
// who contributed the accesses, never their shape on the wire
// (TestObliviousnessAggregatedWindow).
type Aggregator struct {
	cfg     AggregatorConfig
	backend BatchAccessor
	tracer  atomic.Pointer[trace.Tracer]

	mu      sync.Mutex
	cur     *aggWindow // open window accepting arrivals, nil if none
	pending int        // admitted accesses not yet answered
	closed  bool

	accesses  atomic.Int64 // admitted accesses
	batches   atomic.Int64 // windows dispatched
	rejected  atomic.Int64 // accesses refused by backpressure
	brownouts atomic.Int64 // windows opened in brownout mode
	expired   atomic.Int64 // waiters answered unsent: deadline passed in the window

	mx aggObs
}

// An aggWaiter is one admitted access: its op and the buffered
// channel its session blocks on.
type aggWaiter struct {
	op       BatchOp
	ch       chan BatchResult
	ctx      context.Context // caller context; a passed deadline drops the access unsent
	admitted time.Time       // when the access joined the window
	sp       *trace.Span     // agg_session span, ended when the result is delivered
}

// An aggWindow is one open or in-flight aggregation window. waiters
// is append-only in admission order (FIFO — results demultiplex by
// index, so no session can be starved or reordered past another).
type aggWindow struct {
	waiters    []aggWaiter
	limit      int // size trigger, fixed at window open (brownout-aware)
	timer      *time.Timer
	sp         *trace.Span // agg_window span, opened with the window
	dispatched bool        // detached from the aggregator; owned by its leader
}

// NewAggregator returns an aggregator dispatching to backend. Window
// must be positive.
func NewAggregator(cfg AggregatorConfig, backend BatchAccessor) *Aggregator {
	if cfg.Window <= 0 {
		panic("core: AggregatorConfig.Window must be positive")
	}
	return &Aggregator{cfg: cfg, backend: backend}
}

// Access admits one oblivious access into the current window and
// blocks until the window's batch round trip answers it. It is the
// Accessor implementation the proxy service calls once per end-user
// request. AccessStats is zero: the frame's preparation and response
// bytes belong to the shared batch, not to any single access.
func (a *Aggregator) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	return a.AccessContext(context.Background(), op, key, newValue)
}

// AccessContext is Access with a caller context. When ctx carries a
// trace span (a traced end-user request through the proxy front end),
// the access's agg_session span — its wait for the window plus the
// shared round trip — is recorded in that request's own trace;
// otherwise it parents on the window's agg_window span, so the window
// trace shows one window span parenting its N session spans.
func (a *Aggregator) AccessContext(ctx context.Context, op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var stats AccessStats
	ch := make(chan BatchResult, 1)
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, stats, ErrAggregatorClosed
	}
	if a.pending >= a.cfg.maxPending() {
		a.mu.Unlock()
		a.rejected.Add(1)
		return nil, stats, ErrAggregatorOverloaded
	}
	a.pending++
	a.accesses.Add(1)
	if a.mx.enabled {
		a.mx.queueDepth.Set(int64(a.pending))
	}
	w := a.cur
	if w == nil {
		// First access of a new window: arm the time trigger. The
		// window's triggers are fixed at open from the pending depth —
		// under brownout pressure, a bigger size trigger and a shorter
		// time trigger amortize the round trip across more accesses and
		// drain the backlog before waiters age to deadline-death.
		limit, window := a.cfg.maxBatch(), a.cfg.Window
		if a.pending >= a.cfg.brownoutPending() {
			limit, window = a.cfg.brownoutMaxBatch(), a.cfg.Window/4
			if window <= 0 {
				window = time.Millisecond
			}
			a.brownouts.Add(1)
		}
		w = &aggWindow{limit: limit, sp: a.tracer.Load().StartRoot("agg_window")}
		w.timer = time.AfterFunc(window, func() { a.timerFire(w) })
		a.cur = w
	}
	var sp *trace.Span
	if p := trace.FromContext(ctx); p != nil {
		sp = p.Child("agg_session")
	} else {
		sp = w.sp.Child("agg_session")
	}
	w.waiters = append(w.waiters, aggWaiter{op: BatchOp{Op: op, Key: key, Value: newValue},
		ch: ch, ctx: ctx, admitted: time.Now(), sp: sp})
	full := len(w.waiters) >= w.limit
	if full {
		a.detachLocked(w)
	}
	a.mu.Unlock()
	if full {
		// Size trigger: the filling session is the leader — it issues
		// the batch itself while a.cur == nil lets the next arrival
		// open a fresh window concurrently (leader/follower hand-off).
		a.dispatch(w)
	}
	res := <-ch
	return res.Value, stats, res.Err
}

// TraceWith attaches a tracer: subsequent windows record agg_window
// spans parenting their sessions' agg_session spans.
func (a *Aggregator) TraceWith(t *trace.Tracer) {
	if t != nil {
		a.tracer.Store(t)
	}
}

// timerFire is the window's time trigger. It races the size trigger
// and Close; whoever detaches the window first (under a.mu) leads it.
func (a *Aggregator) timerFire(w *aggWindow) {
	a.mu.Lock()
	if w.dispatched {
		a.mu.Unlock()
		return
	}
	a.detachLocked(w)
	a.mu.Unlock()
	a.dispatch(w)
}

// detachLocked removes w from the admission path: new arrivals open a
// fresh window. Callers hold a.mu; exactly one caller wins (guarded
// by w.dispatched) and must then call dispatch(w) outside the lock.
func (a *Aggregator) detachLocked(w *aggWindow) {
	w.dispatched = true
	w.timer.Stop()
	if a.cur == w {
		a.cur = nil
	}
}

// dispatch issues a detached window's accesses as one batch round
// trip and hands each waiter its result. Waiters whose deadline passed
// while they coalesced are answered without joining the batch — the
// access was never sent, a definite outcome (IsDeadlineExpired), and
// the server never spends trial decryptions on work the caller has
// already abandoned.
func (a *Aggregator) dispatch(w *aggWindow) {
	a.shedExpired(w)
	if len(w.waiters) == 0 {
		// Everyone aged out: nothing to send.
		w.sp.End()
		return
	}
	n := len(w.waiters)
	ops := make([]BatchOp, n)
	for i := range w.waiters {
		ops[i] = w.waiters[i].op
	}
	a.batches.Add(1)
	if a.mx.enabled {
		// The histogram's integer scale records a count, not a time:
		// bucket k holds windows that coalesced ~2^k accesses.
		a.mx.windowSize.Observe(time.Duration(n))
	}
	// The batch executes under the window's span: the proxy-side stage
	// tree and the server's decrypt span join the window trace, shared
	// by all n sessions.
	dispatchedAt := time.Now()
	results, _ := a.backend.AccessBatchResults(trace.ContextWith(context.Background(), w.sp), ops)
	rpcDone := time.Now()
	a.mu.Lock()
	a.pending -= n
	if a.mx.enabled {
		a.mx.queueDepth.Set(int64(a.pending))
	}
	a.mu.Unlock()
	for i := range w.waiters {
		w.waiters[i].sp.End()
		if a.mx.enabled {
			// Slowlog attribution: the time an access spent waiting for
			// window mates is coalescing latency, not server time — it is
			// reported as its own stage, never folded into the rpc stage.
			wait := dispatchedAt.Sub(w.waiters[i].admitted)
			total := wait + rpcDone.Sub(dispatchedAt)
			if a.mx.slow.Worthy(total) {
				a.mx.slow.Record(obs.Trace{
					At:    w.waiters[i].admitted,
					Label: fmt.Sprintf("window=%d key=%s", n, traceLabel([]byte(ops[i].Key))),
					Total: total,
					Stages: []obs.Stage{
						{Name: "window_wait", D: wait},
						{Name: "batch_rpc", D: rpcDone.Sub(dispatchedAt)},
					},
				})
			}
		}
	}
	w.sp.End()
	for i := range w.waiters {
		w.waiters[i].ch <- results[i]
	}
}

// shedExpired answers — and removes from w — every waiter whose
// context deadline has already passed, so a dispatched batch carries
// only accesses someone is still waiting for.
func (a *Aggregator) shedExpired(w *aggWindow) {
	live := w.waiters[:0]
	var dead int
	for _, wt := range w.waiters {
		if wt.ctx != nil && wt.ctx.Err() != nil {
			dead++
			wt.sp.End()
			wt.ch <- BatchResult{Err: errDeadlineBeforeBuild}
			continue
		}
		live = append(live, wt)
	}
	if dead == 0 {
		return
	}
	w.waiters = live
	a.expired.Add(int64(dead))
	a.mu.Lock()
	a.pending -= dead
	if a.mx.enabled {
		a.mx.queueDepth.Set(int64(a.pending))
	}
	a.mu.Unlock()
}

// Close dispatches the open window immediately and rejects later
// accesses with ErrAggregatorClosed. Every already-admitted access is
// answered: callers that need those answers delivered must drain
// their request sources first (Client.Close drains the proxy
// transport servers before closing the aggregator).
func (a *Aggregator) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	w := a.cur
	if w != nil {
		a.detachLocked(w)
	}
	a.mu.Unlock()
	if w != nil {
		a.dispatch(w)
	}
}

// AggregatorStats is a point-in-time view of an aggregator's
// counters. CoalesceRatio is accesses per dispatched window — the
// round-trip amortization factor.
type AggregatorStats struct {
	Accesses  int64
	Batches   int64
	Rejected  int64
	Brownouts int64 // windows opened in brownout mode
	Expired   int64 // waiters answered unsent after their deadline passed
}

// CoalesceRatio returns accesses per dispatched window (0 before the
// first dispatch).
func (s AggregatorStats) CoalesceRatio() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Accesses) / float64(s.Batches)
}

// Stats returns the aggregator's cumulative counters.
func (a *Aggregator) Stats() AggregatorStats {
	return AggregatorStats{
		Accesses:  a.accesses.Load(),
		Batches:   a.batches.Load(),
		Rejected:  a.rejected.Load(),
		Brownouts: a.brownouts.Load(),
		Expired:   a.expired.Load(),
	}
}

// aggObs instruments the aggregation front end.
type aggObs struct {
	enabled    bool
	windowSize *obs.Histogram // accesses coalesced per dispatched window
	queueDepth *obs.Gauge     // admitted accesses awaiting an answer
	slow       *obs.SlowLog   // slowest aggregated accesses, window metadata attached
}

// Instrument registers the aggregator's metrics (ortoa_agg_*) with
// reg. Call before serving accesses; a nil registry leaves the
// aggregator uninstrumented.
func (a *Aggregator) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("ortoa_agg_accesses_total", "accesses admitted into aggregation windows", a.accesses.Load)
	reg.CounterFunc("ortoa_agg_windows_total", "aggregation windows dispatched; accesses/windows is the coalesce ratio", a.batches.Load)
	reg.CounterFunc("ortoa_agg_rejected_total", "accesses refused by the pending-budget backpressure", a.rejected.Load)
	reg.CounterFunc("ortoa_agg_brownout_windows_total", "aggregation windows opened in brownout mode (pending depth past BrownoutPending)", a.brownouts.Load)
	reg.CounterFunc("ortoa_agg_expired_total", "admitted accesses answered unsent because their deadline passed while coalescing", a.expired.Load)
	a.mx = aggObs{
		enabled: true,
		windowSize: reg.Histogram("ortoa_agg_window_accesses",
			"accesses coalesced per dispatched window (integer count on the duration scale)"),
		queueDepth: reg.Gauge("ortoa_agg_queue_depth",
			"admitted accesses waiting in the open window or in flight"),
		slow: reg.SlowLog("agg_access", 32),
	}
}
