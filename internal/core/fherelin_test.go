package core

import (
	"bytes"
	"testing"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/fhe"
)

func newFHERelin(t *testing.T) (*rig, *FHEClient) {
	t.Helper()
	r := newRig(t)
	params, err := fhe.NewParameters(64, 220)
	if err != nil {
		t.Fatal(err)
	}
	cfg := FHEConfig{Params: params, ValueSize: 8, RelinBaseBits: 20}
	NewFHEServer(r.store, cfg).Register(r.server)
	client, err := NewFHEClient(cfg, prf.NewRandom(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.ProvisionRelinKey(); err != nil {
		t.Fatal(err)
	}
	return r, client
}

func TestFHERelinReadWrite(t *testing.T) {
	r, client := newFHERelin(t)
	loadData(t, r, client, map[string][]byte{"k": {1, 2, 3, 4, 5, 6, 7, 8}})
	got, _, err := client.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("read = %v", got)
	}
	want := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	if _, _, err := client.Access(OpWrite, "k", want); err != nil {
		t.Fatal(err)
	}
	got, _, err = client.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read after write = %v", got)
	}
}

func TestFHERelinConstantCiphertextSize(t *testing.T) {
	// The point of relinearization: stored records stop growing.
	r, client := newFHERelin(t)
	loadData(t, r, client, map[string][]byte{"k": {1, 1, 1, 1, 1, 1, 1, 1}})
	ek := keyOf(t, r.store)
	var sizes []int
	for i := 0; i < 3; i++ {
		if _, _, err := client.Access(OpRead, "k", nil); err != nil {
			t.Fatal(err)
		}
		rec, _ := r.store.Get(ek)
		sizes = append(sizes, len(rec))
		ct, err := fhe.UnmarshalCiphertext(client.cfg.Params, rec)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Degree() != 1 {
			t.Fatalf("access %d: stored degree = %d, want 1", i+1, ct.Degree())
		}
	}
	if sizes[0] != sizes[1] || sizes[1] != sizes[2] {
		t.Errorf("record sizes grew despite relinearization: %v", sizes)
	}
}

func TestFHERelinRejectsGarbageKey(t *testing.T) {
	r, _ := newFHERelin(t)
	if _, err := r.client.Call(MsgFHESetRelin, []byte("garbage")); err == nil {
		t.Error("server accepted a garbage relin key")
	}
}
