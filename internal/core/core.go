// Package core implements the ORTOA protocol family: LBL-ORTOA (§5),
// TEE-ORTOA (§4), FHE-ORTOA (§3), and the two-round-trip baseline the
// paper evaluates against (§6).
//
// Each protocol is split into a trusted side (proxy or key-holding
// client) and an untrusted server side that registers handlers on a
// transport.Server. All four expose the same single-object access
// operation: read a key, or write a key with a fixed-length value,
// without the server learning which of the two happened.
package core

import (
	"errors"
	"fmt"
)

// Op is a client operation type — the secret ORTOA protects.
type Op uint8

// Operation types.
const (
	OpRead Op = iota
	OpWrite
)

// String renders the op for logs and workload descriptions.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Transport message types used by the ORTOA protocols.
const (
	// MsgLoad bulk-loads opaque (key, record) pairs into the server's
	// store during initialization; records are already encoded by the
	// trusted side, so one handler serves every protocol.
	MsgLoad byte = 0x01
	// MsgLBLAccess is an LBL-ORTOA access (§5.2).
	MsgLBLAccess byte = 0x02
	// MsgTEEAccess is a TEE-ORTOA access (§4.1).
	MsgTEEAccess byte = 0x03
	// MsgFHEAccess is an FHE-ORTOA access (§3.1).
	MsgFHEAccess byte = 0x04
	// MsgBaselineGet / MsgBaselinePut are the two rounds of the 2RTT
	// baseline.
	MsgBaselineGet byte = 0x05
	MsgBaselinePut byte = 0x06
	// MsgClientAccess is the client→proxy request envelope.
	MsgClientAccess byte = 0x07
	// MsgTEEAttest / MsgTEEProvision are the TEE-ORTOA setup
	// handshake: challenge the enclave, verify its report, provision
	// the data key (§4.1). Setup-path only, never on the access path.
	MsgTEEAttest    byte = 0x08
	MsgTEEProvision byte = 0x09
	// MsgFHESetRelin ships a relinearization (evaluation) key to the
	// FHE server, which then keeps stored ciphertexts at degree 1.
	MsgFHESetRelin byte = 0x0A
	// MsgLBLAccessBatch packs many LBL-ORTOA accesses into a single
	// frame: one shared table geometry header followed by one
	// (encoded key, encryption table) pair per access, answered by one
	// frame carrying every access's response labels. Batching amortizes
	// the per-frame and per-round-trip overhead ORTOA's one-round-trip
	// design targets (§5.2, §6.3) without changing what the adversary
	// learns per access.
	MsgLBLAccessBatch byte = 0x0B
	// MsgEpochClaim asserts ownership of one counter range in a
	// multi-proxy deployment: the server bumps the range's fencing
	// epoch past every epoch it has granted and returns the new one
	// (epoch.go). Fixed-width request (rangeID ‖ minEpoch) and response
	// (epoch), so claims are strict shape classes both ways.
	MsgEpochClaim byte = 0x0C
	// MsgLBLAccessStream is a chunked LBL access: the same round as
	// MsgLBLAccess / MsgLBLAccessBatch, but the request arrives as a
	// begin/chunk/end frame sequence (wire/stream.go) sharing one
	// request id, so the proxy can write sealed groups to the wire as
	// workers produce them and the server can trial-decrypt each chunk
	// before the last one lands. The response is the single existing
	// frame; every segment header is fixed-width so the streamed shape
	// is as operation-oblivious as the monolithic one.
	MsgLBLAccessStream byte = 0x0D
)

// Protocol errors.
var (
	// ErrValueSize reports a value that does not match the store's
	// fixed value length. Fixed lengths are a security requirement
	// (§2.2); callers pad with PadValue.
	ErrValueSize = errors.New("core: value does not match configured value size")
	// ErrNotFound reports an access to a key the store was not
	// initialized with.
	ErrNotFound = errors.New("core: key not found")
	// ErrTampered reports server behaviour inconsistent with the
	// protocol: for LBL-ORTOA, a returned label matching neither
	// candidate (§5.4).
	ErrTampered = errors.New("core: server response failed integrity check (tampering or state divergence)")
)

// AccessStats describes one access, for the latency breakdown of
// Fig 3c and the communication accounting of §5.3.2.
type AccessStats struct {
	// PrepBytes is the request payload size sent to the server.
	PrepBytes int
	// RespBytes is the response payload size received.
	RespBytes int
	// ServerAttempts counts server-side decryption attempts
	// (LBL only; 2 per bit-group without point-and-permute, 1 with).
	ServerAttempts int
}

// PadValue right-pads v with zeros to size. It returns an error if v
// is longer than size. ORTOA stores require equal-length values so
// ciphertext sizes leak nothing (§2.2).
func PadValue(v []byte, size int) ([]byte, error) {
	if len(v) > size {
		return nil, fmt.Errorf("core: value of %d bytes exceeds fixed size %d", len(v), size)
	}
	if len(v) == size {
		return v, nil
	}
	out := make([]byte, size)
	copy(out, v)
	return out, nil
}
