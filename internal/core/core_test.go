package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/fhe"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

// rig is an in-process protocol deployment over a loopback netsim link.
type rig struct {
	store  *kvstore.Store
	server *transport.Server
	client *transport.Client
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{store: kvstore.New(), server: transport.NewServer()}
	l := netsim.Listen(netsim.Loopback)
	go r.server.Serve(l)
	t.Cleanup(func() { r.server.Close() })
	RegisterLoader(r.server, r.store)
	c, err := transport.Dial(l.Dial, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	r.client = c
	return r
}

type recordBuilder interface {
	BuildRecord(key string, value []byte) (string, []byte, error)
}

func loadData(t *testing.T, r *rig, b recordBuilder, data map[string][]byte) {
	t.Helper()
	var records []KV
	for k, v := range data {
		ek, rec, err := b.BuildRecord(k, v)
		if err != nil {
			t.Fatalf("BuildRecord(%q): %v", k, err)
		}
		records = append(records, KV{Key: ek, Record: rec})
	}
	if err := BulkLoad(r.client, records); err != nil {
		t.Fatal(err)
	}
}

func newLBL(t *testing.T, mode LBLMode, valueSize int) (*rig, *LBLProxy, *LBLServer) {
	t.Helper()
	r := newRig(t)
	srv := NewLBLServer(r.store)
	srv.Register(r.server)
	proxy, err := NewLBLProxy(LBLConfig{ValueSize: valueSize, Mode: mode}, prf.NewRandom(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	return r, proxy, srv
}

func allLBLModes() []LBLMode {
	return []LBLMode{LBLBasic, LBLSpaceOpt, LBLPointPermute, LBLWide, LBLWidePointPermute}
}

func TestLBLReadInitialValue(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			r, proxy, _ := newLBL(t, mode, 4)
			loadData(t, r, proxy, map[string][]byte{
				"alpha": {1, 2, 3, 4},
				"beta":  {0xFF, 0, 0xAA, 0x55},
			})
			got, _, err := proxy.Access(OpRead, "alpha", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
				t.Errorf("read alpha = %v", got)
			}
			got, _, err = proxy.Access(OpRead, "beta", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte{0xFF, 0, 0xAA, 0x55}) {
				t.Errorf("read beta = %v", got)
			}
		})
	}
}

func TestLBLWriteThenRead(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			r, proxy, _ := newLBL(t, mode, 4)
			loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})
			want := []byte{0xDE, 0xAD, 0xBE, 0xEF}
			if _, _, err := proxy.Access(OpWrite, "k", want); err != nil {
				t.Fatal(err)
			}
			got, _, err := proxy.Access(OpRead, "k", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("read after write = %x, want %x", got, want)
			}
		})
	}
}

func TestLBLManySequentialAccesses(t *testing.T) {
	// Exercises the counter schedule across many accesses, alternating
	// reads and writes.
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			r, proxy, _ := newLBL(t, mode, 2)
			loadData(t, r, proxy, map[string][]byte{"k": {7, 7}})
			current := []byte{7, 7}
			for i := 0; i < 30; i++ {
				if i%3 == 0 {
					current = []byte{byte(i), byte(i * 3)}
					if _, _, err := proxy.Access(OpWrite, "k", current); err != nil {
						t.Fatalf("access %d: %v", i, err)
					}
				} else {
					got, _, err := proxy.Access(OpRead, "k", nil)
					if err != nil {
						t.Fatalf("access %d: %v", i, err)
					}
					if !bytes.Equal(got, current) {
						t.Fatalf("access %d: read %v, want %v", i, got, current)
					}
				}
			}
		})
	}
}

func TestLBLServerStateChangesOnRead(t *testing.T) {
	// The observable server behaviour must be identical for reads and
	// writes: both replace the stored record.
	r, proxy, _ := newLBL(t, LBLPointPermute, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {9, 9, 9, 9}})
	ek := keyOf(t, r.store)
	before, _ := r.store.Get(ek)
	if _, _, err := proxy.Access(OpRead, "k", nil); err != nil {
		t.Fatal(err)
	}
	after, _ := r.store.Get(ek)
	if bytes.Equal(before, after) {
		t.Error("server record unchanged after a read — reads are distinguishable from writes")
	}
	if len(before) != len(after) {
		t.Error("record length changed — leaks operation information")
	}
}

func keyOf(t *testing.T, s *kvstore.Store) string {
	t.Helper()
	var key string
	n := 0
	s.Range(func(k string, _ []byte) bool {
		key = k
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("store has %d keys, want 1", n)
	}
	return key
}

func TestLBLDecryptAttempts(t *testing.T) {
	// Point-and-permute must do exactly one decryption per group;
	// the shuffled variants average more (§10.2).
	const valueSize = 4
	for _, tc := range []struct {
		mode        LBLMode
		wantExact   bool
		perGroupMax float64
	}{
		{LBLPointPermute, true, 1},
		{LBLWidePointPermute, true, 1},
		{LBLBasic, false, 2},
		{LBLSpaceOpt, false, 4},
		{LBLWide, false, 16},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			r, proxy, srv := newLBL(t, tc.mode, valueSize)
			loadData(t, r, proxy, map[string][]byte{"k": {1, 2, 3, 4}})
			const ops = 20
			for i := 0; i < ops; i++ {
				if _, _, err := proxy.Access(OpRead, "k", nil); err != nil {
					t.Fatal(err)
				}
			}
			groups := proxy.Config().Groups()
			attempts := srv.DecryptAttempts()
			perGroup := float64(attempts) / float64(ops*groups)
			if tc.wantExact && perGroup != 1 {
				t.Errorf("point-permute attempts/group = %.2f, want exactly 1", perGroup)
			}
			if !tc.wantExact {
				if perGroup <= 1 || perGroup > tc.perGroupMax {
					t.Errorf("attempts/group = %.2f, want in (1, %.0f]", perGroup, tc.perGroupMax)
				}
			}
		})
	}
}

func TestLBLValueSizeValidation(t *testing.T) {
	_, proxy, _ := newLBL(t, LBLPointPermute, 4)
	if _, _, err := proxy.Access(OpWrite, "k", []byte{1}); !errors.Is(err, ErrValueSize) {
		t.Errorf("short write = %v, want ErrValueSize", err)
	}
	if _, _, err := proxy.BuildRecord("k", []byte{1, 2, 3}); !errors.Is(err, ErrValueSize) {
		t.Errorf("short BuildRecord = %v, want ErrValueSize", err)
	}
}

func TestLBLMissingKey(t *testing.T) {
	_, proxy, _ := newLBL(t, LBLPointPermute, 4)
	_, _, err := proxy.Access(OpRead, "ghost", nil)
	if err == nil {
		t.Fatal("access to missing key succeeded")
	}
}

func TestLBLTamperDetection(t *testing.T) {
	// A server returning forged labels must trip the §5.4 check. We
	// simulate a malicious server with a handler that returns
	// random bytes of the correct length.
	r := newRig(t)
	cfg := LBLConfig{ValueSize: 4, Mode: LBLPointPermute}
	r.server.Handle(MsgLBLAccess, func(_ context.Context, payload []byte) ([]byte, error) {
		return make([]byte, cfg.Groups()*prf.Size), nil // forged all-zero labels
	})
	proxy, err := NewLBLProxy(cfg, prf.NewRandom(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = proxy.Access(OpRead, "k", nil)
	if !errors.Is(err, ErrTampered) {
		t.Errorf("forged response error = %v, want ErrTampered", err)
	}
}

func TestLBLCorruptedStoreDetected(t *testing.T) {
	// Flipping bits in the server's stored labels must surface as an
	// error (the server can no longer decrypt any entry).
	r, proxy, _ := newLBL(t, LBLSpaceOpt, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {1, 2, 3, 4}})
	ek := keyOf(t, r.store)
	rec, _ := r.store.Get(ek)
	rec[5] ^= 0xFF
	r.store.Put(ek, rec)
	if _, _, err := proxy.Access(OpRead, "k", nil); err == nil {
		t.Error("access over corrupted store succeeded")
	}
}

func TestLBLConcurrentSameKey(t *testing.T) {
	r, proxy, _ := newLBL(t, LBLPointPermute, 2)
	loadData(t, r, proxy, map[string][]byte{"hot": {0, 0}})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var err error
			if i%2 == 0 {
				_, _, err = proxy.Access(OpWrite, "hot", []byte{byte(i), 1})
			} else {
				_, _, err = proxy.Access(OpRead, "hot", nil)
			}
			if err != nil {
				t.Errorf("concurrent access %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	// The key must still be readable and consistent afterwards.
	got, _, err := proxy.Access(OpRead, "hot", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 && !bytes.Equal(got, []byte{0, 0}) {
		t.Errorf("final value %v is not any written value", got)
	}
}

func TestLBLConcurrentDistinctKeys(t *testing.T) {
	r, proxy, _ := newLBL(t, LBLPointPermute, 2)
	data := map[string][]byte{}
	for i := 0; i < 16; i++ {
		data[fmt.Sprintf("k%d", i)] = []byte{byte(i), byte(i)}
	}
	loadData(t, r, proxy, data)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			for j := 0; j < 5; j++ {
				got, _, err := proxy.Access(OpRead, key, nil)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, data[key]) {
					t.Errorf("key %s read %v", key, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestLBLStatsPopulated(t *testing.T) {
	r, proxy, _ := newLBL(t, LBLPointPermute, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {1, 2, 3, 4}})
	_, stats, err := proxy.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PrepBytes != proxy.Config().RequestBytesPerAccess() {
		t.Errorf("PrepBytes = %d, want %d", stats.PrepBytes, proxy.Config().RequestBytesPerAccess())
	}
	if stats.RespBytes != proxy.Config().Groups()*prf.Size {
		t.Errorf("RespBytes = %d, want %d", stats.RespBytes, proxy.Config().Groups()*prf.Size)
	}
}

func TestLBLCounterState(t *testing.T) {
	r, proxy, _ := newLBL(t, LBLPointPermute, 2)
	loadData(t, r, proxy, map[string][]byte{"a": {0, 0}, "b": {0, 0}})
	proxy.Access(OpRead, "a", nil)
	proxy.Access(OpRead, "b", nil)
	proxy.Access(OpRead, "a", nil)
	if got := proxy.CounterKeys(); got != 2 {
		t.Errorf("CounterKeys = %d, want 2", got)
	}
}

func TestLBLRequestSizeFormula(t *testing.T) {
	// §5.3.2: communication is 2^y·E_len·(ℓ/y) plus fixed framing;
	// the config's accounting must match what Access actually sends.
	for _, mode := range allLBLModes() {
		for _, size := range []int{1, 4, 16, 160} {
			cfg := LBLConfig{ValueSize: size, Mode: mode}
			wantTable := cfg.Groups() * mode.entries() * mode.entryLen()
			if got := cfg.RequestBytesPerAccess(); got < wantTable {
				t.Errorf("%v/%dB: RequestBytesPerAccess %d < table %d", mode, size, got, wantTable)
			}
		}
	}
}

func TestGroupBitsRoundTrip(t *testing.T) {
	for _, y := range []int{1, 2} {
		value := []byte{0b10110010, 0b01011101}
		out := make([]byte, len(value))
		for g := 0; g < len(value)*8/y; g++ {
			setGroupBits(out, g, y, groupBits(value, g, y))
		}
		if !bytes.Equal(out, value) {
			t.Errorf("y=%d: roundtrip %08b -> %08b", y, value, out)
		}
	}
}

// --- TEE-ORTOA ---

func newTEE(t *testing.T, valueSize int) (*rig, *TEEClient, *TEEServer) {
	t.Helper()
	r := newRig(t)
	srv, err := NewTEEServer(r.store, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(r.server)
	client, err := NewTEEClient(TEEConfig{ValueSize: valueSize}, prf.NewRandom(), secretbox.NewRandomKey(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.AttestAndProvision(srv.Enclave()); err != nil {
		t.Fatal(err)
	}
	return r, client, srv
}

func TestTEEReadWrite(t *testing.T) {
	r, client, _ := newTEE(t, 8)
	loadData(t, r, client, map[string][]byte{"k": {1, 2, 3, 4, 5, 6, 7, 8}})
	got, _, err := client.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("read = %v", got)
	}
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if _, _, err := client.Access(OpWrite, "k", want); err != nil {
		t.Fatal(err)
	}
	got, _, err = client.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read after write = %v, want %v", got, want)
	}
}

func TestTEEServerStateChangesOnRead(t *testing.T) {
	r, client, _ := newTEE(t, 4)
	loadData(t, r, client, map[string][]byte{"k": {1, 1, 1, 1}})
	ek := keyOf(t, r.store)
	before, _ := r.store.Get(ek)
	client.Access(OpRead, "k", nil)
	after, _ := r.store.Get(ek)
	if bytes.Equal(before, after) {
		t.Error("TEE record unchanged after read")
	}
	if len(before) != len(after) {
		t.Error("TEE record length changed")
	}
}

func TestTEEUnprovisionedEnclaveFails(t *testing.T) {
	r := newRig(t)
	srv, err := NewTEEServer(r.store, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Register(r.server)
	client, err := NewTEEClient(TEEConfig{ValueSize: 4}, prf.NewRandom(), secretbox.NewRandomKey(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	loadData(t, r, client, map[string][]byte{"k": {1, 2, 3, 4}})
	if _, _, err := client.Access(OpRead, "k", nil); err == nil {
		t.Error("access succeeded without enclave provisioning")
	}
}

func TestTEEEcallCount(t *testing.T) {
	r, client, srv := newTEE(t, 4)
	loadData(t, r, client, map[string][]byte{"k": {0, 0, 0, 0}})
	for i := 0; i < 7; i++ {
		client.Access(OpRead, "k", nil)
	}
	if got := srv.Enclave().ECalls(); got != 7 {
		t.Errorf("ECalls = %d, want 7", got)
	}
}

func TestTEERequestSizesEqualForReadAndWrite(t *testing.T) {
	// Read and write requests must be byte-for-byte the same length.
	r, client, _ := newTEE(t, 16)
	loadData(t, r, client, map[string][]byte{"k": bytes.Repeat([]byte{1}, 16)})
	_, readStats, err := client.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, writeStats, err := client.Access(OpWrite, "k", bytes.Repeat([]byte{2}, 16))
	if err != nil {
		t.Fatal(err)
	}
	if readStats.PrepBytes != writeStats.PrepBytes {
		t.Errorf("request sizes differ: read %d, write %d", readStats.PrepBytes, writeStats.PrepBytes)
	}
	if readStats.RespBytes != writeStats.RespBytes {
		t.Errorf("response sizes differ: read %d, write %d", readStats.RespBytes, writeStats.RespBytes)
	}
}

// --- FHE-ORTOA ---

func fheTestConfig(t *testing.T) FHEConfig {
	t.Helper()
	params, err := fhe.NewParameters(64, 220)
	if err != nil {
		t.Fatal(err)
	}
	return FHEConfig{Params: params, ValueSize: 8}
}

func newFHE(t *testing.T) (*rig, *FHEClient) {
	t.Helper()
	r := newRig(t)
	cfg := fheTestConfig(t)
	NewFHEServer(r.store, cfg).Register(r.server)
	client, err := NewFHEClient(cfg, prf.NewRandom(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	return r, client
}

func TestFHEReadWrite(t *testing.T) {
	r, client := newFHE(t)
	loadData(t, r, client, map[string][]byte{"k": {1, 2, 3, 4, 5, 6, 7, 8}})
	got, _, err := client.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Errorf("read = %v", got)
	}
	want := []byte{9, 9, 9, 9, 8, 8, 8, 8}
	if _, _, err := client.Access(OpWrite, "k", want); err != nil {
		t.Fatal(err)
	}
	got, _, err = client.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read after write = %v, want %v", got, want)
	}
}

func TestFHENoiseEventuallyFails(t *testing.T) {
	// §3.3: repeated accesses to one object exhaust the noise budget
	// (or hit the degree cap) within a small number of accesses.
	r, client := newFHE(t)
	loadData(t, r, client, map[string][]byte{"k": {1, 2, 3, 4, 5, 6, 7, 8}})
	failedAt := -1
	for i := 0; i < 30; i++ {
		got, _, err := client.Access(OpRead, "k", nil)
		if err != nil || !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
			failedAt = i + 1
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("30 FHE accesses all decrypted correctly; expected noise failure (§3.3)")
	}
	if failedAt < 2 {
		t.Errorf("failed at access %d; expected at least a couple of successes first", failedAt)
	}
	t.Logf("FHE-ORTOA degraded at access %d (paper: ~10 with SEAL defaults)", failedAt)
}

func TestFHENoiseBudgetDecreases(t *testing.T) {
	r, client := newFHE(t)
	loadData(t, r, client, map[string][]byte{"k": {1, 2, 3, 4, 5, 6, 7, 8}})
	ek := keyOf(t, r.store)
	rec, _ := r.store.Get(ek)
	before, err := client.NoiseBudgetOf(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Access(OpRead, "k", nil); err != nil {
		t.Fatal(err)
	}
	rec, _ = r.store.Get(ek)
	after, err := client.NoiseBudgetOf(rec)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("noise budget did not decrease: %d -> %d bits", before, after)
	}
	t.Logf("noise budget: %d -> %d bits after one access", before, after)
}

func TestFHEValueSizeValidation(t *testing.T) {
	params, err := fhe.NewParameters(64, 110)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFHEClient(FHEConfig{Params: params, ValueSize: 1 << 20}, prf.NewRandom(), nil); err == nil {
		t.Error("accepted value size beyond plaintext capacity")
	}
}

// --- 2RTT baseline ---

func newBaseline(t *testing.T, valueSize int) (*rig, *BaselineProxy) {
	t.Helper()
	r := newRig(t)
	NewBaselineServer(r.store).Register(r.server)
	proxy, err := NewBaselineProxy(BaselineConfig{ValueSize: valueSize}, prf.NewRandom(), secretbox.NewRandomKey(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	return r, proxy
}

func TestBaselineReadWrite(t *testing.T) {
	r, proxy := newBaseline(t, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {1, 2, 3, 4}})
	got, _, err := proxy.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("read = %v", got)
	}
	want := []byte{4, 3, 2, 1}
	if _, _, err := proxy.Access(OpWrite, "k", want); err != nil {
		t.Fatal(err)
	}
	got, _, _ = proxy.Access(OpRead, "k", nil)
	if !bytes.Equal(got, want) {
		t.Errorf("read after write = %v", got)
	}
}

func TestBaselineReencryptsOnRead(t *testing.T) {
	r, proxy := newBaseline(t, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {5, 5, 5, 5}})
	ek := keyOf(t, r.store)
	before, _ := r.store.Get(ek)
	proxy.Access(OpRead, "k", nil)
	after, _ := r.store.Get(ek)
	if bytes.Equal(before, after) {
		t.Error("baseline record unchanged after read — reads distinguishable")
	}
}

func TestBaselineTwoRounds(t *testing.T) {
	// Every baseline access must cost exactly two RPCs.
	r, proxy := newBaseline(t, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})
	callsBefore := r.client.Stats().Calls
	proxy.Access(OpRead, "k", nil)
	proxy.Access(OpWrite, "k", []byte{1, 1, 1, 1})
	callsAfter := r.client.Stats().Calls
	if got := callsAfter - callsBefore; got != 4 {
		t.Errorf("2 accesses made %d RPCs, want 4 (two rounds each)", got)
	}
}

func TestBaselineConcurrentSameKey(t *testing.T) {
	r, proxy := newBaseline(t, 2)
	loadData(t, r, proxy, map[string][]byte{"hot": {0, 0}})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := proxy.Access(OpWrite, "hot", []byte{byte(i), 9}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	got, _, err := proxy.Access(OpRead, "hot", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 9 {
		t.Errorf("final value %v is not any written value", got)
	}
}

// --- one-round property, across protocols ---

func TestSingleRoundTripProperty(t *testing.T) {
	// LBL, TEE, and FHE must serve any access in exactly one RPC; the
	// baseline takes two. This is the paper's headline claim.
	t.Run("lbl", func(t *testing.T) {
		r, proxy, _ := newLBL(t, LBLPointPermute, 4)
		loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})
		before := r.client.Stats().Calls
		proxy.Access(OpRead, "k", nil)
		proxy.Access(OpWrite, "k", []byte{1, 2, 3, 4})
		if got := r.client.Stats().Calls - before; got != 2 {
			t.Errorf("2 LBL accesses made %d RPCs, want 2", got)
		}
	})
	t.Run("tee", func(t *testing.T) {
		r, client, _ := newTEE(t, 4)
		loadData(t, r, client, map[string][]byte{"k": {0, 0, 0, 0}})
		before := r.client.Stats().Calls
		client.Access(OpRead, "k", nil)
		client.Access(OpWrite, "k", []byte{1, 2, 3, 4})
		if got := r.client.Stats().Calls - before; got != 2 {
			t.Errorf("2 TEE accesses made %d RPCs, want 2", got)
		}
	})
	t.Run("fhe", func(t *testing.T) {
		r, client := newFHE(t)
		loadData(t, r, client, map[string][]byte{"k": {0, 0, 0, 0, 0, 0, 0, 0}})
		before := r.client.Stats().Calls
		client.Access(OpRead, "k", nil)
		if got := r.client.Stats().Calls - before; got != 1 {
			t.Errorf("1 FHE access made %d RPCs, want 1", got)
		}
	})
}

// --- client→proxy→server chain ---

func TestRemoteAccessorChain(t *testing.T) {
	// Full deployment: client → (RPC) → proxy → (RPC) → server.
	r, proxy, _ := newLBL(t, LBLPointPermute, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {3, 1, 4, 1}})

	proxyServer := transport.NewServer()
	pl := netsim.Listen(netsim.Loopback)
	go proxyServer.Serve(pl)
	defer proxyServer.Close()
	RegisterProxyService(proxyServer, proxy)

	pc, err := transport.Dial(pl.Dial, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	remote := NewRemoteAccessor(pc)

	got, _, err := remote.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{3, 1, 4, 1}) {
		t.Errorf("remote read = %v", got)
	}
	want := []byte{2, 7, 1, 8}
	if _, _, err := remote.Access(OpWrite, "k", want); err != nil {
		t.Fatal(err)
	}
	got, _, err = remote.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("remote read after write = %v", got)
	}
}

// --- model-based property test ---

// TestLBLMatchesModel runs a random operation sequence against
// LBL-ORTOA and a plain in-memory map and checks they agree.
func TestLBLMatchesModel(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			const valueSize = 3
			r, proxy, _ := newLBL(t, mode, valueSize)
			model := map[string][]byte{
				"a": {1, 0, 0}, "b": {2, 0, 0}, "c": {3, 0, 0},
			}
			loadData(t, r, proxy, model)
			rng := rand.New(rand.NewPCG(42, uint64(mode)))
			keys := []string{"a", "b", "c"}
			for i := 0; i < 100; i++ {
				key := keys[rng.IntN(len(keys))]
				if rng.IntN(2) == 0 {
					got, _, err := proxy.Access(OpRead, key, nil)
					if err != nil {
						t.Fatalf("op %d read %s: %v", i, key, err)
					}
					if !bytes.Equal(got, model[key]) {
						t.Fatalf("op %d: read %s = %v, model %v", i, key, got, model[key])
					}
				} else {
					v := []byte{byte(rng.IntN(256)), byte(rng.IntN(256)), byte(rng.IntN(256))}
					if _, _, err := proxy.Access(OpWrite, key, v); err != nil {
						t.Fatalf("op %d write %s: %v", i, key, err)
					}
					model[key] = v
				}
			}
		})
	}
}

func TestPadValue(t *testing.T) {
	got, err := PadValue([]byte{1, 2}, 4)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 0, 0}) {
		t.Errorf("PadValue = %v, %v", got, err)
	}
	if _, err := PadValue([]byte{1, 2, 3}, 2); err == nil {
		t.Error("PadValue accepted oversize input")
	}
	same := []byte{9, 9}
	got, _ = PadValue(same, 2)
	if &got[0] != &same[0] {
		t.Error("PadValue copied an already-sized value")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("Op.String broken")
	}
}
