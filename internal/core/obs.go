package core

import (
	"encoding/hex"

	"ortoa/internal/obs"
)

// This file holds the protocol layer's observability bundles: one
// value-typed struct of metric handles per protocol side, embedded in
// the proxy/client/server structs. The zero value (all-nil handles,
// enabled=false) is the "observability off" state, so uninstrumented
// hot paths pay one branch per stage and never read the clock (see
// obs.Stopwatch). Instrument methods must be called before the
// component serves traffic — the bundle is written without
// synchronization.
//
// Stage names follow the step structure of the paper: LBL stages are
// the proxy-side steps 1.1–1.5 and 3.1–3.2 of §5.2 plus the wire time
// between them, which together make up the per-access latency that
// Fig 3 decomposes. DESIGN.md §8 maps every metric to its paper
// stage.

// traceLabel renders an encoded (PRF-image) key prefix for slow-trace
// labels. Plaintext keys never reach the trace log — the label is the
// same pseudonym the untrusted server sees on the wire.
func traceLabel(encKey []byte) string {
	n := 4
	if len(encKey) < n {
		n = len(encKey)
	}
	return "ek=" + hex.EncodeToString(encKey[:n])
}

// lblProxyObs instruments the trusted LBL proxy: one histogram per
// access stage, end-to-end latency, the batch pipeline's stages, and
// a slow-trace log of the worst accesses.
type lblProxyObs struct {
	enabled bool

	acquire *obs.Histogram // per-key counter acquisition (serialization point)
	build   *obs.Histogram // encryption-table build, steps 1.1–1.5
	rpc     *obs.Histogram // wire round trip, request out to response in
	recover *obs.Histogram // label→bit recovery + §5.4 integrity check
	e2e     *obs.Histogram // sum of the four stages
	errors  *obs.Counter

	batchAcquire *obs.Histogram // per-chunk counter acquisition
	batchBuild   *obs.Histogram // parallel table build, per chunk
	batchRPC     *obs.Histogram // one MsgLBLAccessBatch round trip
	batchRecover *obs.Histogram // parallel label recovery, per chunk
	batchKeys    *obs.Counter   // accesses carried in batch chunks

	streamRounds *obs.Counter // rounds carried by the chunked-streaming path
	streamChunks *obs.Counter // chunk frames emitted on the streaming path

	pendingSaved    *obs.Counter // rounds parked after ambiguous transport failures
	pendingResolved *obs.Counter // parked rounds settled by at-most-once replay

	reconcileProbes *obs.Counter // read-shaped probes sent to re-locate a server counter
	reconciledKeys  *obs.Counter // keys whose counter was rebased after crash desync

	epochClaims  *obs.Counter // counter ranges claimed (adoption or startup, epoch.go)
	fencedRounds *obs.Counter // accesses rejected by the server's epoch fence

	slow *obs.SlowLog
}

// Instrument registers the proxy's access-stage metrics
// (ortoa_lbl_*) with reg. Call before serving accesses; a nil
// registry leaves the proxy uninstrumented at zero cost.
func (p *LBLProxy) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram(`ortoa_lbl_stage_seconds{stage="`+name+`"}`,
			"LBL proxy per-access stage latency (§5.2 steps)")
	}
	batchStage := func(name string) *obs.Histogram {
		return reg.Histogram(`ortoa_lbl_batch_stage_seconds{stage="`+name+`"}`,
			"LBL proxy per-chunk batch pipeline stage latency")
	}
	p.mx = lblProxyObs{
		enabled: true,
		acquire: stage("counter_acquire"),
		build:   stage("table_build"),
		rpc:     stage("rpc"),
		recover: stage("label_recover"),
		e2e:     reg.Histogram("ortoa_lbl_access_seconds", "LBL proxy end-to-end access latency"),
		errors:  reg.Counter("ortoa_lbl_access_errors_total", "LBL accesses that failed"),

		batchAcquire: batchStage("counter_acquire"),
		batchBuild:   batchStage("table_build"),
		batchRPC:     batchStage("rpc"),
		batchRecover: batchStage("label_recover"),
		batchKeys:    reg.Counter("ortoa_lbl_batch_accesses_total", "accesses carried in batch chunks"),

		streamRounds: reg.Counter("ortoa_lbl_stream_rounds_total", "rounds carried by the chunked-streaming request path (MsgLBLAccessStream)"),
		streamChunks: reg.Counter("ortoa_lbl_stream_chunks_total", "stream chunk frames emitted by the proxy"),

		pendingSaved:    reg.Counter("ortoa_lbl_pending_rounds_total", "LBL rounds parked after an ambiguous transport failure"),
		pendingResolved: reg.Counter("ortoa_lbl_pending_resolved_total", "parked LBL rounds settled by at-most-once replay"),

		reconcileProbes: reg.Counter("ortoa_lbl_reconcile_probes_total", "read-shaped probes sent to re-locate a server counter after crash desync"),
		reconciledKeys:  reg.Counter("ortoa_lbl_reconciled_keys_total", "keys whose counter was rebased by reconciliation"),

		epochClaims:  reg.Counter("ortoa_lbl_epoch_claims_total", "counter-range ownership claims issued (startup or failover adoption)"),
		fencedRounds: reg.Counter("ortoa_lbl_fenced_rounds_total", "accesses rejected by the server's epoch fence before adoption"),

		slow: reg.SlowLog("lbl_access", 32),
	}
	reg.GaugeFunc("ortoa_lbl_owned_ranges", "counter ranges this proxy has claimed (epoch > 0)", p.OwnedRanges)
}

// lblServerObs instruments the untrusted LBL server's handler work:
// the atomic read-decrypt-install of steps 2.1–2.2.
type lblServerObs struct {
	enabled bool
	access  *obs.Histogram
}

// Instrument registers the server's metrics (ortoa_lbl_server_*) with
// reg, including scrape-time views of the ops and decrypt-attempt
// totals the server already tracks. Call before Register.
func (s *LBLServer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("ortoa_lbl_server_ops_total", "LBL accesses served", s.ops.Load)
	reg.CounterFunc("ortoa_lbl_server_decrypt_attempts_total",
		"authenticated decryptions attempted (the cost §10.2 halves)", s.decryptAttempts.Load)
	reg.CounterFunc("ortoa_lbl_server_fenced_rounds_total",
		"accesses rejected by the epoch fence (stale range ownership)", s.fencedRounds.Load)
	reg.CounterFunc("ortoa_lbl_server_epoch_bumps_total",
		"range-epoch installs (claims plus relearned epochs after restart)", s.epochBumps.Load)
	reg.GaugeFunc("ortoa_lbl_server_max_epoch",
		"highest range ownership epoch granted", func() int64 { return int64(s.maxEpoch.Load()) })
	reg.CounterFunc("ortoa_lbl_server_expired_rounds_total",
		"accesses dropped because their deadline budget expired before trial decryption", s.expiredRounds.Load)
	s.mx = lblServerObs{
		enabled: true,
		access:  reg.Histogram("ortoa_lbl_server_access_seconds", "store read + label swap per access (§5.2 steps 2.1–2.2)"),
	}
}

// fheClientObs instruments the trusted FHE side's access stages.
type fheClientObs struct {
	enabled bool
	encrypt *obs.Histogram // selector + value encryption and marshalling
	rpc     *obs.Histogram
	decrypt *obs.Histogram // result decryption and decoding
	e2e     *obs.Histogram
	errors  *obs.Counter
}

// Instrument registers the client's access-stage metrics (ortoa_fhe_*)
// with reg. Call before serving accesses.
func (c *FHEClient) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram(`ortoa_fhe_stage_seconds{stage="`+name+`"}`,
			"FHE client per-access stage latency (§3.1)")
	}
	c.mx = fheClientObs{
		enabled: true,
		encrypt: stage("encrypt"),
		rpc:     stage("rpc"),
		decrypt: stage("decrypt"),
		e2e:     reg.Histogram("ortoa_fhe_access_seconds", "FHE end-to-end access latency"),
		errors:  reg.Counter("ortoa_fhe_access_errors_total", "FHE accesses that failed"),
	}
}

// fheServerObs instruments the homomorphic evaluation of Pcr'.
type fheServerObs struct {
	enabled bool
	eval    *obs.Histogram
}

// Instrument registers the server's metrics (ortoa_fhe_server_*) with
// reg. Call before Register.
func (s *FHEServer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mx = fheServerObs{
		enabled: true,
		eval:    reg.Histogram("ortoa_fhe_server_eval_seconds", "homomorphic Pcr' evaluation per access (§3.1)"),
	}
}

// teeClientObs instruments the trusted TEE side's access stages.
type teeClientObs struct {
	enabled bool
	seal    *obs.Histogram // selector + value sealing
	rpc     *obs.Histogram
	open    *obs.Histogram // result unsealing + length check
	e2e     *obs.Histogram
	errors  *obs.Counter
}

// Instrument registers the client's access-stage metrics (ortoa_tee_*)
// with reg. Call before serving accesses.
func (c *TEEClient) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	stage := func(name string) *obs.Histogram {
		return reg.Histogram(`ortoa_tee_stage_seconds{stage="`+name+`"}`,
			"TEE client per-access stage latency (§4.1)")
	}
	c.mx = teeClientObs{
		enabled: true,
		seal:    stage("seal"),
		rpc:     stage("rpc"),
		open:    stage("open"),
		e2e:     reg.Histogram("ortoa_tee_access_seconds", "TEE end-to-end access latency"),
		errors:  reg.Counter("ortoa_tee_access_errors_total", "TEE accesses that failed"),
	}
}

// teeServerObs instruments the host-side handler and the enclave
// crossing it pays per access.
type teeServerObs struct {
	enabled bool
	access  *obs.Histogram
	ecall   *obs.Histogram
}

// Instrument registers the server's metrics (ortoa_tee_server_*) with
// reg. Call before Register.
func (s *TEEServer) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mx = teeServerObs{
		enabled: true,
		access:  reg.Histogram("ortoa_tee_server_access_seconds", "store read + enclave selection per access (§4.1)"),
		ecall:   reg.Histogram("ortoa_tee_server_ecall_seconds", "enclave crossing (ECall) latency"),
	}
}
