package core

import (
	"context"
	"errors"
	"fmt"

	"ortoa/internal/kvstore"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// An Accessor performs one oblivious single-object access. All four
// protocol clients (LBL, TEE, FHE, baseline) implement it, as does the
// client→proxy RPC stub, so workloads and experiments are written once.
type Accessor interface {
	Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error)
}

// A ContextAccessor is an Accessor that can additionally thread a
// context through the access — cancellation plus the active trace
// span. The proxy front end type-asserts for it so an inbound traced
// request's span parents the whole proxy-side span tree.
type ContextAccessor interface {
	AccessContext(ctx context.Context, op Op, key string, newValue []byte) ([]byte, AccessStats, error)
}

// A KV is one record for bulk loading.
type KV struct {
	Key    string // server-side (encoded) key
	Record []byte // opaque, protocol-encoded record
}

// RegisterLoader installs the MsgLoad bulk-load handler on ts, writing
// records into store. Records arrive pre-encoded by the trusted side,
// so one loader serves every protocol.
func RegisterLoader(ts *transport.Server, store *kvstore.Store) {
	ts.Handle(MsgLoad, loaderHandler(store))
}

func loaderHandler(store *kvstore.Store) transport.HandlerFunc {
	return func(_ context.Context, payload []byte) ([]byte, error) {
		r := wire.NewReader(payload)
		n := int(r.Uvarint())
		if err := r.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			key := r.BytesPfx()
			rec := r.BytesCopy()
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("core: load entry %d: %w", i, err)
			}
			// Durable-on-ack holds for bulk load too: a journaling failure
			// must fail the batch, not acknowledge records the WAL lost.
			if err := store.Put(string(key), rec); err != nil {
				return nil, fmt.Errorf("core: load entry %d: %w", i, err)
			}
		}
		if err := r.Finish(); err != nil {
			return nil, err
		}
		return nil, nil
	}
}

// BulkLoad sends records to the server in batches.
func BulkLoad(client *transport.Client, records []KV) error {
	const batchSize = 1024
	for start := 0; start < len(records); start += batchSize {
		end := start + batchSize
		if end > len(records) {
			end = len(records)
		}
		w := wire.NewWriter(64 * (end - start))
		w.Uvarint(uint64(end - start))
		for _, kv := range records[start:end] {
			w.BytesPfx([]byte(kv.Key))
			w.BytesPfx(kv.Record)
		}
		if _, err := client.Call(MsgLoad, w.Bytes()); err != nil {
			return fmt.Errorf("core: bulk load: %w", err)
		}
	}
	return nil
}

// RegisterProxyService exposes accessor as the MsgClientAccess RPC, so
// untrusted-network clients can route requests through the proxy
// (§2.1's client→proxy→server deployment).
func RegisterProxyService(ts *transport.Server, accessor Accessor) {
	ctxAccessor, _ := accessor.(ContextAccessor)
	ts.Handle(MsgClientAccess, func(ctx context.Context, payload []byte) ([]byte, error) {
		r := wire.NewReader(payload)
		op := Op(r.Byte())
		key := r.String()
		value := r.BytesCopy()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if err := r.Finish(); err != nil {
			return nil, err
		}
		if op != OpRead && op != OpWrite {
			return nil, fmt.Errorf("core: unknown op %d", op)
		}
		var out []byte
		var err error
		if ctxAccessor != nil {
			out, _, err = ctxAccessor.AccessContext(ctx, op, key, value)
		} else {
			out, _, err = accessor.Access(op, key, value)
		}
		if err != nil {
			if transport.IsBusy(err) {
				// The proxy's own server round was shed before executing.
				// Mislabeling it ambiguous would park a phantom round on
				// the caller's counter entry; the busy prefix keeps the
				// definite-but-backoff classification intact across the
				// hop, so a router backs off this path instead of
				// resolving an ambiguity that never existed.
				return nil, fmt.Errorf("%s%w", transport.BusyMsgPrefix, err)
			}
			if transport.Ambiguous(err) ||
				errors.Is(err, transport.ErrClosed) ||
				errors.Is(err, transport.ErrNoLiveConns) {
				// The proxy could not complete its own server round —
				// outcome unknown, or (closed pool, a proxy being torn
				// down) definitely not executed. Flattening to a plain
				// RemoteError would read as "executed, failed"; the
				// prefix keeps the client's classification honest across
				// the hop, and a multi-proxy router knows the access is
				// safe to retry on a peer.
				return nil, fmt.Errorf("%s%w", transport.AmbiguousMsgPrefix, err)
			}
			return nil, err
		}
		return out, nil
	})
}

// A RemoteAccessor is the client-side stub for a proxy reached over
// the network. It implements Accessor.
type RemoteAccessor struct {
	client *transport.Client
}

// NewRemoteAccessor wraps client as an Accessor.
func NewRemoteAccessor(client *transport.Client) *RemoteAccessor {
	return &RemoteAccessor{client: client}
}

// Access sends the request to the proxy and returns its response.
func (a *RemoteAccessor) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	w := wire.NewWriter(2 + len(key) + len(newValue) + 16)
	w.Byte(byte(op))
	w.String(key)
	w.BytesPfx(newValue)
	var stats AccessStats
	stats.PrepBytes = w.Len()
	resp, err := a.client.Call(MsgClientAccess, w.Bytes())
	if err != nil {
		return nil, stats, err
	}
	stats.RespBytes = len(resp)
	return resp, stats, nil
}
