package core

import (
	"fmt"
	"testing"
)

func ringMembers(n int) []string {
	m := make([]string, n)
	for i := range m {
		m[i] = fmt.Sprintf("proxy-%d", i)
	}
	return m
}

// TestRangeOfDistribution checks that key→range placement is close to
// uniform: over a large keyspace no range should be starved or pile up
// far beyond its fair share.
func TestRangeOfDistribution(t *testing.T) {
	const keys = 64 << 10
	var counts [NumRanges]int
	for i := 0; i < keys; i++ {
		counts[RangeOf(fmt.Sprintf("user:%d", i))]++
	}
	mean := keys / NumRanges
	for rid, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("range %d holds %d keys, mean %d — placement badly skewed", rid, c, mean)
		}
	}
}

// TestRangeOfDeterministic pins that placement is a pure function of
// the key: routing and claim stamping must always agree.
func TestRangeOfDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a, b := RangeOf(k), RangeOf(k); a != b {
			t.Fatalf("RangeOf(%q) unstable: %d vs %d", k, a, b)
		}
		if RangeOf(k) >= NumRanges {
			t.Fatalf("RangeOf(%q) = %d out of space", k, RangeOf(k))
		}
	}
}

// TestRingDistribution checks every member owns a reasonable share of
// the NumRanges ranges across deployment sizes.
func TestRingDistribution(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		t.Run(fmt.Sprintf("members=%d", n), func(t *testing.T) {
			r := NewRing(ringMembers(n))
			total := 0
			fair := NumRanges / n
			for _, m := range r.Members() {
				owned := len(r.Ranges(m))
				total += owned
				// With 64 ranges over ≤8 members the vnode smoothing
				// keeps every member within ~3x of fair share, and no
				// member may own nothing.
				if owned == 0 {
					t.Errorf("member %s owns no ranges", m)
				}
				if owned > 3*fair+1 {
					t.Errorf("member %s owns %d ranges, fair share %d", m, owned, fair)
				}
			}
			if total != NumRanges {
				t.Fatalf("ranges owned sum to %d, want %d", total, NumRanges)
			}
		})
	}
}

// ringOwners snapshots owner-per-range for movement comparisons.
func ringOwners(r *Ring) [NumRanges]string {
	var o [NumRanges]string
	for rid := uint32(0); rid < NumRanges; rid++ {
		o[rid] = r.Owner(rid)
	}
	return o
}

// TestRingMinimalMovement is the consistent-hashing contract, exactly:
// adding a member moves ranges only TO the new member, removing one
// moves only the removed member's ranges, and the moved fraction is
// about 1/N either way.
func TestRingMinimalMovement(t *testing.T) {
	cases := []struct{ from, to int }{
		{1, 2}, {2, 3}, {3, 4}, {4, 5}, {7, 8}, // grow by one
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("add_%d_to_%d", tc.from, tc.to), func(t *testing.T) {
			before := ringOwners(NewRing(ringMembers(tc.from)))
			after := ringOwners(NewRing(ringMembers(tc.to)))
			newcomer := fmt.Sprintf("proxy-%d", tc.to-1)
			moved := 0
			for rid := 0; rid < NumRanges; rid++ {
				if before[rid] == after[rid] {
					continue
				}
				moved++
				if after[rid] != newcomer {
					t.Errorf("range %d moved %s→%s, but only moves to the newcomer %s are allowed",
						rid, before[rid], after[rid], newcomer)
				}
			}
			// The newcomer's fair share is NumRanges/to; allow generous
			// slack for hash placement but fail on wholesale reshuffles.
			if max := 3*NumRanges/tc.to + 1; moved > max {
				t.Errorf("adding one member moved %d/%d ranges, want ≤ %d (~1/N)", moved, NumRanges, max)
			}
		})
	}
	for _, n := range []int{2, 3, 5, 8} {
		t.Run(fmt.Sprintf("remove_from_%d", n), func(t *testing.T) {
			full := NewRing(ringMembers(n))
			before := ringOwners(full)
			// Remove the last member; survivors' ranges must not move.
			gone := fmt.Sprintf("proxy-%d", n-1)
			after := ringOwners(NewRing(ringMembers(n - 1)))
			for rid := 0; rid < NumRanges; rid++ {
				if before[rid] != gone && before[rid] != after[rid] {
					t.Errorf("range %d owned by survivor %s moved to %s on unrelated removal",
						rid, before[rid], after[rid])
				}
				if before[rid] == gone && after[rid] == gone {
					t.Errorf("range %d still owned by removed member %s", rid, gone)
				}
			}
		})
	}
}

// TestRingMembershipEdgeCases covers empty rings, duplicates, and
// order-independence.
func TestRingMembershipEdgeCases(t *testing.T) {
	if owner := NewRing(nil).Owner(0); owner != "" {
		t.Errorf("empty ring owner = %q, want \"\"", owner)
	}
	if owner := NewRing([]string{"a"}).Owner(NumRanges); owner != "" {
		t.Errorf("out-of-space range owner = %q, want \"\"", owner)
	}
	dup := ringOwners(NewRing([]string{"a", "b", "a", "", "b"}))
	plain := ringOwners(NewRing([]string{"a", "b"}))
	if dup != plain {
		t.Error("duplicate/empty member names changed the assignment")
	}
	shuffled := ringOwners(NewRing([]string{"b", "a"}))
	if shuffled != plain {
		t.Error("member order changed the assignment")
	}
}
