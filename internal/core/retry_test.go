package core

import (
	"fmt"
	"testing"
	"time"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// faultedLBLRig builds an LBL proxy/server pair whose link runs plan,
// with a retrying client. The plan's PRNG is the only randomness the
// fault layer consumes, and the workload below is sequential over one
// connection, so a fixed seed injects an identical fault sequence into
// every run.
func faultedLBLRig(t *testing.T, plan *netsim.FaultPlan, reg *obs.Registry) (*rig, *LBLProxy) {
	t.Helper()
	r := &rig{store: kvstore.New(), server: transport.NewServer()}
	l := netsim.Listen(netsim.Link{Fault: plan})
	go r.server.Serve(l)
	t.Cleanup(func() { r.server.Close() })
	RegisterLoader(r.server, r.store)
	NewLBLServer(r.store).Register(r.server)
	client, err := transport.DialOptions(l.Dial, transport.Options{
		PoolSize:         1,
		CallTimeout:      60 * time.Millisecond,
		Retry:            transport.RetryPolicy{Attempts: 12, Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	client.Instrument(reg)
	r.client = client
	proxy, err := NewLBLProxy(LBLConfig{ValueSize: 8, Mode: LBLPointPermute}, prf.NewRandom(), client)
	if err != nil {
		t.Fatal(err)
	}
	return r, proxy
}

// TestObliviousnessLBLUnderRetries checks that the fault-tolerance
// layer does not open an operation-type side channel: with a
// deterministic fault plan blackholing responses — so calls time out
// and retry — a run of pure reads and a run of pure writes must still
// produce identical adversary views, retries, replays and all. The
// transport retries every call the same way regardless of payload, and
// dedup replays have the same shape as first responses; this test is
// the end-to-end evidence.
func TestObliviousnessLBLUnderRetries(t *testing.T) {
	const valueSize = 8
	const ops = 16
	mkPlan := func() *netsim.FaultPlan {
		// Blackholes only: resets and stalls perturb timing but not the
		// adversary's view; blackholed responses are what force the
		// retry/replay path this test is about. One seed, two runs.
		return &netsim.FaultPlan{Seed: 11, BlackholeProb: 0.25, MaxFaults: 12}
	}
	var regs []*obs.Registry
	mkRig := func(t *testing.T) (*rig, Accessor) {
		reg := obs.NewRegistry()
		regs = append(regs, reg)
		r, proxy := faultedLBLRig(t, mkPlan(), reg)
		data := map[string][]byte{}
		for i := 0; i < 4; i++ {
			data[fmt.Sprintf("key-%02d", i)] = make([]byte, valueSize)
		}
		loadData(t, r, proxy, data)
		return r, proxy
	}

	reads := observedRun(t, mkRig, OpRead, valueSize, ops)
	writes := observedRun(t, mkRig, OpWrite, valueSize, ops)
	assertIdenticalViews(t, reads, writes)

	// The runs must actually have exercised the retry path, or the test
	// proves nothing; the fixed seed makes this deterministic.
	for i, reg := range regs {
		if v := reg.Counter("ortoa_transport_client_retries_total", "").Value(); v < 1 {
			t.Fatalf("run %d retried %d times; the fault plan injected nothing (adjust seed/probability)", i, v)
		}
	}
}
