package core

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"time"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
	"ortoa/internal/tee"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// teeProgramID names the trusted selector program; its measurement is
// what the verifier checks before provisioning the data key.
var teeProgramID = []byte("ortoa/tee-selector-v1")

// teeSelector is Procedure Pcr' (§4.1) as the enclave program: decrypt
// the selector bit and both values, pick v_old for reads or v_new for
// writes, and release only a fresh re-encryption of the chosen value.
// The host cannot tell which branch ran — both produce one ciphertext
// of identical length and fresh randomness.
func teeSelector(key, payload []byte) ([]byte, error) {
	box, err := secretbox.NewBox(key)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	sealedCr := r.BytesPfx()
	sealedOld := r.BytesPfx()
	sealedNew := r.BytesPfx()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	crPlain, err := box.Open(sealedCr)
	if err != nil {
		return nil, fmt.Errorf("tee selector: c_r: %w", err)
	}
	vOld, err := box.Open(sealedOld)
	if err != nil {
		return nil, fmt.Errorf("tee selector: v_old: %w", err)
	}
	vNew, err := box.Open(sealedNew)
	if err != nil {
		return nil, fmt.Errorf("tee selector: v_new: %w", err)
	}
	if len(crPlain) != 1 || crPlain[0] > 1 {
		return nil, errors.New("tee selector: malformed c_r")
	}
	if len(vOld) != len(vNew) {
		return nil, errors.New("tee selector: value length mismatch")
	}
	chosen := vNew
	if crPlain[0] == 1 {
		chosen = vOld
	}
	return box.Seal(chosen), nil
}

// A TEEServer is the untrusted host plus its enclave (§4.1): it
// fetches v_old outside the enclave (non-sensitive), crosses into the
// enclave for the selection, and installs the enclave's output.
type TEEServer struct {
	store   *kvstore.Store
	enclave *tee.Enclave
	mx      teeServerObs
}

// NewTEEServer creates the host and loads the selector enclave.
// transitionCost models the enclave entry/exit overhead per ECall.
func NewTEEServer(store *kvstore.Store, transitionCost time.Duration) (*TEEServer, error) {
	enclave, err := tee.Create(tee.Config{
		Program:        teeSelector,
		ProgramID:      teeProgramID,
		TransitionCost: transitionCost,
	})
	if err != nil {
		return nil, err
	}
	return &TEEServer{store: store, enclave: enclave}, nil
}

// Enclave exposes the enclave for attestation and provisioning by the
// trusted side.
func (s *TEEServer) Enclave() *tee.Enclave { return s.enclave }

// Register installs the TEE access handler on ts, plus the
// attestation/provisioning setup handlers used by remote trusted
// parties.
func (s *TEEServer) Register(ts *transport.Server) {
	ts.Handle(MsgTEEAccess, s.handleAccess)
	ts.Handle(MsgTEEAttest, s.handleAttest)
	ts.Handle(MsgTEEProvision, s.handleProvision)
}

// handleAttest returns the enclave's report over the caller's nonce.
func (s *TEEServer) handleAttest(_ context.Context, payload []byte) ([]byte, error) {
	if len(payload) != 16 {
		return nil, errors.New("core: attestation nonce must be 16 bytes")
	}
	var nonce [16]byte
	copy(nonce[:], payload)
	report := s.enclave.Attest(nonce)
	w := wire.NewWriter(32 + 16 + 32)
	w.Raw(report.Measurement[:])
	w.Raw(report.Nonce[:])
	w.Raw(report.MAC[:])
	return w.Bytes(), nil
}

// handleProvision installs the data key into the enclave. The host
// just forwards bytes; in a real deployment this payload arrives
// inside the attested secure channel (RA-TLS) so the host never sees
// the key. The simulation documents the boundary rather than
// encrypting against the simulated host.
func (s *TEEServer) handleProvision(_ context.Context, payload []byte) ([]byte, error) {
	if err := s.enclave.Provision(payload); err != nil {
		return nil, err
	}
	return nil, nil
}

func (s *TEEServer) handleAccess(ctx context.Context, payload []byte) ([]byte, error) {
	sp := trace.StartChild(ctx, "server_ecall")
	defer sp.End()
	if s.mx.enabled {
		defer s.mx.access.Since(time.Now())
	}
	r := wire.NewReader(payload)
	encKey := r.Raw(prf.Size)
	sealedCr := r.BytesPfx()
	sealedNew := r.BytesPfx()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	var result []byte
	err := s.store.Update(string(encKey), func(old []byte) ([]byte, error) {
		w := wire.NewWriter(len(sealedCr) + len(old) + len(sealedNew) + 16)
		w.BytesPfx(sealedCr)
		w.BytesPfx(old)
		w.BytesPfx(sealedNew)
		sw := obs.StartWatch(s.mx.enabled)
		out, err := s.enclave.ECall(w.Bytes())
		sw.Lap(s.mx.ecall)
		if err != nil {
			return nil, err
		}
		result = out
		return out, nil
	})
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	return result, nil
}

// TEEConfig fixes the parameters of a TEE-ORTOA deployment.
type TEEConfig struct {
	// ValueSize is the fixed plaintext value length in bytes.
	ValueSize int
}

// A TEEClient is the trusted side of TEE-ORTOA. The paper treats this
// version as proxy-less — clients share the symmetric data key (§4) —
// so the "client" here may equally be deployed as a proxy.
type TEEClient struct {
	cfg    TEEConfig
	prf    *prf.PRF
	box    *secretbox.Box
	key    []byte
	client *transport.Client
	mx     teeClientObs
}

// NewTEEClient returns a trusted client keyed with dataKey.
func NewTEEClient(cfg TEEConfig, f *prf.PRF, dataKey []byte, client *transport.Client) (*TEEClient, error) {
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("core: TEE value size %d must be positive", cfg.ValueSize)
	}
	box, err := secretbox.NewBox(dataKey)
	if err != nil {
		return nil, err
	}
	return &TEEClient{cfg: cfg, prf: f, box: box, key: append([]byte(nil), dataKey...), client: client}, nil
}

// AttestAndProvision verifies the enclave runs the expected selector
// program and provisions the data key into it (in-process deployment).
func (c *TEEClient) AttestAndProvision(e *tee.Enclave) error {
	return tee.NewVerifier(teeProgramID).AttestAndProvision(e, c.key)
}

// AttestAndProvisionRemote performs the attestation handshake over the
// client's server connection: challenge with a fresh nonce, verify the
// report's MAC and measurement, then provision the data key.
func (c *TEEClient) AttestAndProvisionRemote() error {
	if c.client == nil {
		return errors.New("core: TEE client has no server connection")
	}
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return err
	}
	resp, err := c.client.Call(MsgTEEAttest, nonce[:])
	if err != nil {
		return err
	}
	r := wire.NewReader(resp)
	var report tee.Report
	copy(report.Measurement[:], r.Raw(32))
	copy(report.Nonce[:], r.Raw(16))
	copy(report.MAC[:], r.Raw(32))
	if err := r.Err(); err != nil {
		return err
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if report.Nonce != nonce {
		return tee.ErrBadReport
	}
	if err := tee.VerifyReport(report, teeProgramID); err != nil {
		return err
	}
	_, err = c.client.Call(MsgTEEProvision, c.key)
	return err
}

// BuildRecord encodes the initial record for (key, value).
func (c *TEEClient) BuildRecord(key string, value []byte) (string, []byte, error) {
	if len(value) != c.cfg.ValueSize {
		return "", nil, ErrValueSize
	}
	ek := c.prf.EncodeKey(key)
	return string(ek[:]), c.box.Seal(value), nil
}

// Access performs one oblivious access (§4.1). Reads send an
// indistinguishable random dummy as v_new; the enclave discards it.
func (c *TEEClient) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var stats AccessStats
	if op == OpWrite && len(newValue) != c.cfg.ValueSize {
		return nil, stats, ErrValueSize
	}
	if c.client == nil {
		return nil, stats, errors.New("core: TEE client has no server connection")
	}
	cr := byte(0)
	vNew := newValue
	if op == OpRead {
		cr = 1
		vNew = make([]byte, c.cfg.ValueSize)
		if _, err := rand.Read(vNew); err != nil {
			return nil, stats, err
		}
	}
	sw := obs.StartWatch(c.mx.enabled)
	ek := c.prf.EncodeKey(key)
	w := wire.NewWriter(prf.Size + 2*c.cfg.ValueSize)
	w.Raw(ek[:])
	w.BytesPfx(c.box.Seal([]byte{cr}))
	w.BytesPfx(c.box.Seal(vNew))
	stats.PrepBytes = w.Len()
	dSeal := sw.Lap(c.mx.seal)

	resp, err := c.client.Call(MsgTEEAccess, w.Bytes())
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, err
	}
	dRPC := sw.Lap(c.mx.rpc)
	stats.RespBytes = len(resp)
	value, err := c.box.Open(resp)
	if err != nil {
		c.mx.errors.Inc()
		return nil, stats, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	if len(value) != c.cfg.ValueSize {
		c.mx.errors.Inc()
		return nil, stats, fmt.Errorf("%w: result has %d bytes", ErrTampered, len(value))
	}
	dOpen := sw.Lap(c.mx.open)
	c.mx.e2e.Observe(dSeal + dRPC + dOpen)
	return value, stats, nil
}
