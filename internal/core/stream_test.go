package core

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// These tests exercise the chunked-streaming request path
// (MsgLBLAccessStream): correctness of streamed single and batch
// accesses, the obliviousness of the per-frame wire view, parity with
// the SimulateStream simulator, and ambiguity resolution when a stream
// dies mid-flight.

// streamCfg returns an LBL config whose table spans roughly nChunks
// stream chunks.
func streamCfg(mode LBLMode, valueSize, nChunks int) LBLConfig {
	cfg := LBLConfig{ValueSize: valueSize, Mode: mode}
	cfg.StreamChunkBytes = cfg.TableBytes() / nChunks
	if cfg.StreamChunkBytes < 1 {
		cfg.StreamChunkBytes = 1
	}
	return cfg
}

func newLBLStream(t *testing.T, cfg LBLConfig) (*rig, *LBLProxy, *LBLServer) {
	t.Helper()
	r := newRig(t)
	srv := NewLBLServer(r.store)
	srv.Register(r.server)
	proxy, err := NewLBLProxy(cfg, prf.NewRandom(), r.client)
	if err != nil {
		t.Fatal(err)
	}
	return r, proxy, srv
}

func TestLBLStreamReadWrite(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := streamCfg(mode, 8, 4)
			if !cfg.streaming() {
				t.Fatalf("config does not stream: budget %dB, table %dB", cfg.StreamChunkBytes, cfg.TableBytes())
			}
			r, proxy, _ := newLBLStream(t, cfg)
			loadData(t, r, proxy, map[string][]byte{"k": bytes.Repeat([]byte{7}, 8)})
			got, _, err := proxy.Access(OpRead, "k", nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, bytes.Repeat([]byte{7}, 8)) {
				t.Errorf("streamed read = %v", got)
			}
			current := bytes.Repeat([]byte{7}, 8)
			for i := 0; i < 12; i++ {
				if i%3 == 0 {
					current = bytes.Repeat([]byte{byte(i + 1)}, 8)
					if _, _, err := proxy.Access(OpWrite, "k", current); err != nil {
						t.Fatalf("access %d: %v", i, err)
					}
				} else {
					got, _, err := proxy.Access(OpRead, "k", nil)
					if err != nil {
						t.Fatalf("access %d: %v", i, err)
					}
					if !bytes.Equal(got, current) {
						t.Fatalf("access %d: read %v, want %v", i, got, current)
					}
				}
			}
		})
	}
}

func TestLBLStreamStatsAndSingleCall(t *testing.T) {
	// A streamed access is still ONE logical RPC (the paper's one-round
	// claim), spread over nChunks+2 frames, and its stats account the
	// streamed framing exactly.
	cfg := streamCfg(LBLPointPermute, 8, 4)
	r, proxy, _ := newLBLStream(t, cfg)
	loadData(t, r, proxy, map[string][]byte{"k": make([]byte, 8)})

	frames := 0
	r.server.SetObserver(func(msgType byte, reqLen, respLen int) {
		if msgType == MsgLBLAccessStream {
			frames++
		}
	})
	before := r.client.Stats().Calls
	_, stats, err := proxy.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.client.Stats().Calls - before; got != 1 {
		t.Errorf("streamed access made %d logical calls, want 1", got)
	}
	if want := cfg.streamChunks() + 2; frames != want {
		t.Errorf("streamed access crossed as %d frames, want %d (begin + chunks + end)", frames, want)
	}
	if stats.PrepBytes != cfg.StreamRequestBytes() {
		t.Errorf("PrepBytes = %d, want %d", stats.PrepBytes, cfg.StreamRequestBytes())
	}
	if stats.RespBytes != cfg.Groups()*prf.Size {
		t.Errorf("RespBytes = %d, want %d", stats.RespBytes, cfg.Groups()*prf.Size)
	}
}

func TestLBLStreamFallbackMonolithic(t *testing.T) {
	// A chunk budget the whole table fits in must fall back to the
	// monolithic single-frame path: no stream frames on the wire.
	cfg := LBLConfig{ValueSize: 8, Mode: LBLPointPermute}
	cfg.StreamChunkBytes = cfg.TableBytes() // one chunk: no overlap to win
	if cfg.streaming() {
		t.Fatal("single-chunk config claims to stream")
	}
	r, proxy, _ := newLBLStream(t, cfg)
	loadData(t, r, proxy, map[string][]byte{"k": make([]byte, 8)})
	mono, streamed := 0, 0
	r.server.SetObserver(func(msgType byte, reqLen, respLen int) {
		switch msgType {
		case MsgLBLAccess:
			mono++
		case MsgLBLAccessStream:
			streamed++
		}
	})
	if _, _, err := proxy.Access(OpWrite, "k", bytes.Repeat([]byte{1}, 8)); err != nil {
		t.Fatal(err)
	}
	if mono != 1 || streamed != 0 {
		t.Errorf("single-chunk access used %d monolithic / %d stream frames, want 1/0", mono, streamed)
	}
}

func TestLBLStreamBatch(t *testing.T) {
	cfg := streamCfg(LBLPointPermute, 8, 2)
	const n = 9
	if !cfg.batchStreaming(n) {
		t.Fatalf("batch of %d does not stream under budget %dB", n, cfg.StreamChunkBytes)
	}
	r, proxy, _ := newLBLStream(t, cfg)
	data := map[string][]byte{}
	for i := 0; i < n; i++ {
		data[fmt.Sprintf("k%d", i)] = bytes.Repeat([]byte{byte(i)}, 8)
	}
	loadData(t, r, proxy, data)

	var writes []BatchOp
	for i := 0; i < n; i++ {
		writes = append(writes, BatchOp{Op: OpWrite, Key: fmt.Sprintf("k%d", i), Value: bytes.Repeat([]byte{byte(0x40 + i)}, 8)})
	}
	if _, _, err := proxy.AccessBatch(writes); err != nil {
		t.Fatal(err)
	}
	var reads []BatchOp
	for i := 0; i < n; i++ {
		reads = append(reads, BatchOp{Op: OpRead, Key: fmt.Sprintf("k%d", i)})
	}
	values, _, err := proxy.AccessBatch(reads)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range values {
		if want := bytes.Repeat([]byte{byte(0x40 + i)}, 8); !bytes.Equal(v, want) {
			t.Errorf("batch read %d = %v, want %v", i, v, want)
		}
	}
}

func lblStreamObsRig(cfg LBLConfig) func(t *testing.T) (*rig, Accessor) {
	return func(t *testing.T) (*rig, Accessor) {
		r, proxy, _ := newLBLStream(t, cfg)
		data := map[string][]byte{}
		for i := 0; i < 4; i++ {
			data[fmt.Sprintf("key-%02d", i)] = make([]byte, cfg.ValueSize)
		}
		loadData(t, r, proxy, data)
		return r, proxy
	}
}

// TestObliviousnessLBLStream extends the adversary's-view comparison
// to the streamed path: every frame of a streamed access — begin,
// each chunk, end — is observed individually, and the per-frame
// multisets of (type, reqLen, respLen) must be identical between pure
// reads and pure writes.
func TestObliviousnessLBLStream(t *testing.T) {
	const valueSize = 8
	const ops = 8
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := streamCfg(mode, valueSize, 4)
			reads := observedRun(t, lblStreamObsRig(cfg), OpRead, valueSize, ops)
			writes := observedRun(t, lblStreamObsRig(cfg), OpWrite, valueSize, ops)
			assertIdenticalViews(t, reads, writes)
			// The streamed path was genuinely on: more frames than
			// accesses, in the exact begin+chunks+end count.
			want := ops * (cfg.streamChunks() + 2)
			if len(reads) != want {
				t.Errorf("observed %d stream frames for %d accesses, want %d", len(reads), ops, want)
			}
		})
	}
}

// TestObliviousnessLBLStreamTraced re-runs the streamed comparison
// with tracing armed on every hop and shape auditors shared across the
// read and write runs: per-class frame lengths must be pinned across
// both runs, traced or not, with zero violations.
func TestObliviousnessLBLStreamTraced(t *testing.T) {
	const valueSize = 8
	const ops = 8
	cfg := streamCfg(LBLPointPermute, valueSize, 4)
	reg := obs.NewRegistry()
	serverAud := obs.NewShapeAuditor(reg, "server")
	proxyAud := obs.NewShapeAuditor(reg, "proxy")
	mkTraced := func(traced bool) func(t *testing.T) (*rig, Accessor) {
		return func(t *testing.T) (*rig, Accessor) {
			r, acc := lblStreamObsRig(cfg)(t)
			r.server.AuditShape(serverAud, ShapeClassify)
			r.client.AuditShape(proxyAud, ShapeClassify)
			if traced {
				r.server.SetTracer(reg.Tracer("server", 1<<10))
				r.client.SetTracer(reg.Tracer("proxy", 1<<10))
				acc.(*LBLProxy).TraceWith(reg.Tracer("proxy", 1<<10))
			}
			return r, acc
		}
	}
	reads := observedRun(t, mkTraced(true), OpRead, valueSize, ops)
	writes := observedRun(t, mkTraced(false), OpWrite, valueSize, ops)
	assertIdenticalViews(t, reads, writes)
	if vp, vs := proxyAud.Violations(), serverAud.Violations(); vp != 0 || vs != 0 {
		t.Fatalf("shape auditor: proxy=%d server=%d violations across traced read + untraced write runs, want 0/0", vp, vs)
	}
	// The traced run produced the streamed pipeline's stage spans.
	have := map[string]bool{}
	for _, rec := range reg.TraceRecords() {
		have[rec.Name] = true
	}
	for _, want := range []string{"table_build", "rpc", "server_decrypt"} {
		if !have[want] {
			t.Fatalf("no %q span recorded on the streamed path", want)
		}
	}
}

// TestLBLStreamSimulatorParity checks the frame-by-frame ROR-RW
// projection: the real streamed request and SimulateStream's output
// have identical frame counts and per-frame lengths, and the simulated
// frames carry the exact segment headers the wire format pins.
func TestLBLStreamSimulatorParity(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := streamCfg(mode, 8, 4)
			r, proxy, _ := newLBLStream(t, cfg)
			loadData(t, r, proxy, map[string][]byte{"k": make([]byte, 8)})
			var real []int
			r.server.SetObserver(func(msgType byte, reqLen, respLen int) {
				if msgType == MsgLBLAccessStream {
					real = append(real, reqLen)
				}
			})
			if _, _, err := proxy.Access(OpWrite, "k", bytes.Repeat([]byte{9}, 8)); err != nil {
				t.Fatal(err)
			}

			sim, err := NewLBLSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			frames, err := sim.SimulateStream("k")
			if err != nil {
				t.Fatal(err)
			}
			if len(frames) != len(real) {
				t.Fatalf("simulator emitted %d frames, real stream %d", len(frames), len(real))
			}
			// The begin frame's observation is recorded with its paired
			// response, after the continuation frames — compare as
			// multisets of frame lengths.
			simLens := make([]int, len(frames))
			for i, f := range frames {
				simLens[i] = len(f)
			}
			realLens := append([]int(nil), real...)
			sort.Ints(simLens)
			sort.Ints(realLens)
			for i := range simLens {
				if simLens[i] != realLens[i] {
					t.Fatalf("frame length multisets differ: simulated %v, real %v", simLens, realLens)
				}
			}
			// Header structure: begin, then indexed chunks, then end.
			if frames[0][0] != 0x01 || frames[0][1] != 0x00 {
				t.Errorf("begin frame header = % x", frames[0][:2])
			}
			for i := 1; i < len(frames)-1; i++ {
				if frames[i][0] != 0x02 {
					t.Errorf("frame %d kind = %#x, want chunk", i, frames[i][0])
				}
			}
			if frames[len(frames)-1][0] != 0x03 {
				t.Errorf("last frame kind = %#x, want end", frames[len(frames)-1][0])
			}
			// Fresh randomness: a second simulated stream has the same
			// shape but different bytes.
			again, err := sim.SimulateStream("k")
			if err != nil {
				t.Fatal(err)
			}
			for i := range again {
				if len(again[i]) != len(frames[i]) {
					t.Errorf("second stream frame %d: %dB, want %dB", i, len(again[i]), len(frames[i]))
				}
			}
			if bytes.Equal(again[1], frames[1]) {
				t.Error("simulator repeated a chunk verbatim")
			}
		})
	}
}

// newFaultStreamRig builds a streamed LBL deployment over a faulty
// link. The plan starts deactivated so setup traffic is clean.
func newFaultStreamRig(t *testing.T, cfg LBLConfig, plan *netsim.FaultPlan) (*rig, *LBLProxy) {
	t.Helper()
	plan.SetActive(false)
	r := &rig{store: kvstore.New(), server: transport.NewServer()}
	l := netsim.Listen(netsim.Link{Fault: plan})
	go r.server.Serve(l)
	t.Cleanup(func() { r.server.Close() })
	RegisterLoader(r.server, r.store)
	srv := NewLBLServer(r.store)
	srv.Register(r.server)
	c, err := transport.Dial(l.Dial, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	r.client = c
	proxy, err := NewLBLProxy(cfg, prf.NewRandom(), c)
	if err != nil {
		t.Fatal(err)
	}
	return r, proxy
}

// TestLBLStreamBlackholedResponse kills the response of a streamed
// write after the server executed it. The access must fail ambiguous,
// park the round, and the next access must settle it through the
// dedup replay so the acked-by-server write is not lost.
func TestLBLStreamBlackholedResponse(t *testing.T) {
	cfg := streamCfg(LBLPointPermute, 8, 4)
	plan := &netsim.FaultPlan{BlackholeProb: 1, MaxFaults: 1}
	r, proxy := newFaultStreamRig(t, cfg, plan)
	loadData(t, r, proxy, map[string][]byte{"k": make([]byte, 8)})

	plan.SetActive(true)
	want := bytes.Repeat([]byte{0xAB}, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	_, _, err := proxy.AccessContext(ctx, OpWrite, "k", want)
	cancel()
	if err == nil {
		t.Fatal("blackholed streamed write succeeded")
	}
	if !transport.Ambiguous(err) {
		t.Fatalf("blackholed streamed write failed definitely (%v); want ambiguous", err)
	}
	plan.SetActive(false)

	// The next access first resolves the parked streamed round (dedup
	// replay of a rebuilt monolithic frame under the same id), then
	// reads at the settled counter.
	got, _, err := proxy.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatalf("read after ambiguous streamed write: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("server-executed streamed write lost: read %v, want %v", got, want)
	}
	if n := plan.Stats().Blackholes; n != 1 {
		t.Fatalf("fault plan injected %d blackholes, want 1", n)
	}
}

// TestLBLStreamResetStorm runs a sequential streamed workload through
// random connection resets, tracking the set of values each failed
// write could have left behind, with shape auditors armed: no access
// may return a value outside the possible set, no acked write may be
// lost, and the mid-stream deaths must not change any frame's shape.
func TestLBLStreamResetStorm(t *testing.T) {
	cfg := streamCfg(LBLPointPermute, 8, 4)
	plan := &netsim.FaultPlan{Seed: 7, ResetProb: 0.04, MaxFaults: 12}
	r, proxy := newFaultStreamRig(t, cfg, plan)
	reg := obs.NewRegistry()
	serverAud := obs.NewShapeAuditor(reg, "server")
	proxyAud := obs.NewShapeAuditor(reg, "proxy")
	r.server.AuditShape(serverAud, ShapeClassify)
	r.client.AuditShape(proxyAud, ShapeClassify)
	initial := make([]byte, 8)
	loadData(t, r, proxy, map[string][]byte{"k": initial})

	plan.SetActive(true)
	possible := map[string]bool{string(initial): true}
	failures := 0
	for i := 0; i < 60; i++ {
		if i%3 == 2 {
			got, _, err := proxy.Access(OpRead, "k", nil)
			if err != nil {
				failures++
				continue
			}
			if !possible[string(got)] {
				t.Fatalf("access %d: read %v not among possible values", i, got)
			}
			possible = map[string]bool{string(got): true}
			continue
		}
		v := bytes.Repeat([]byte{byte(i + 1)}, 8)
		if _, _, err := proxy.Access(OpWrite, "k", v); err != nil {
			failures++
			if transport.Ambiguous(err) {
				possible[string(v)] = true // may or may not have applied
			}
			continue
		}
		possible = map[string]bool{string(v): true}
	}
	plan.SetActive(false)

	// The storm's last reset may have left a dead pooled connection
	// (restored by the background redial loop) and a parked round; each
	// retry makes resolution progress on a healthy network.
	var got []byte
	for attempt := 0; ; attempt++ {
		var err error
		got, _, err = proxy.Access(OpRead, "k", nil)
		if err == nil {
			break
		}
		if attempt == 40 {
			t.Fatalf("final read: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !possible[string(got)] {
		t.Fatalf("final value %v not among %d possible values — an acked write was lost or a ghost write applied", got, len(possible))
	}
	if vp, vs := proxyAud.Violations(), serverAud.Violations(); vp != 0 || vs != 0 {
		t.Fatalf("shape auditor under faults: proxy=%d server=%d violations, want 0/0", vp, vs)
	}
	if plan.Stats().Resets == 0 {
		t.Skip("fault plan injected no resets; storm did not exercise mid-stream death")
	}
	t.Logf("injected %d resets, %d failed accesses, %d possible final values",
		plan.Stats().Resets, failures, len(possible))
}
