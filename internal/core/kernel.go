package core

import (
	"errors"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/kvstore"
)

// This file exports fixtures for the two dominant LBL-ORTOA CPU
// kernels — proxy-side table construction and the server recover/apply
// pass plus proxy label recovery — so the harness "bench" experiment
// and the benchmark smoke job measure the real hot paths with explicit
// worker counts, without a transport in the way.

// A TableBuildKernel repeatedly builds one access's encryption table
// (§5.2 steps 1.2–1.5) into a reused buffer.
type TableBuildKernel struct {
	proxy   *LBLProxy
	table   []byte
	value   []byte
	workers int
	ct      uint64
}

// NewTableBuildKernel returns a kernel for cfg that builds each table
// with the given worker count (0 or 1 means sequential).
func NewTableBuildKernel(cfg LBLConfig, workers int) (*TableBuildKernel, error) {
	p, err := NewLBLProxy(cfg, prf.NewRandom(), nil)
	if err != nil {
		return nil, err
	}
	return &TableBuildKernel{
		proxy:   p,
		table:   make([]byte, cfg.TableBytes()),
		value:   make([]byte, cfg.ValueSize),
		workers: workers,
	}, nil
}

// TableBytes returns the size of the table each Op builds.
func (k *TableBuildKernel) TableBytes() int { return len(k.table) }

// Op builds one table. It is write-shaped; by design reads cost the
// same (operation-type obliviousness).
func (k *TableBuildKernel) Op() error {
	k.ct++
	return k.proxy.buildAccessTable(k.table, "bench", OpWrite, k.value, k.ct, k.workers)
}

// A RecoverKernel repeatedly performs one access's server half — trial
// decryption and label install (§5.2 steps 2.1–2.2) — followed by the
// proxy's label recovery and §5.4 integrity check, against prebuilt
// tables. Table construction is paid in Prepare, outside the measured
// op.
type RecoverKernel struct {
	proxy   *LBLProxy
	srv     *LBLServer
	geo     tableGeometry
	ek      string
	tables  [][]byte
	labels  []byte
	workers int
	ct      uint64 // counter the record sits at; tables[used:] are built from it
	used    int
}

// NewRecoverKernel returns a kernel for cfg holding window prebuilt
// tables per Prepare; the proxy-side recovery runs with the given
// worker count.
func NewRecoverKernel(cfg LBLConfig, window, workers int) (*RecoverKernel, error) {
	p, err := NewLBLProxy(cfg, prf.NewRandom(), nil)
	if err != nil {
		return nil, err
	}
	store := kvstore.New()
	ek, rec, err := p.BuildRecord("bench", make([]byte, cfg.ValueSize))
	if err != nil {
		return nil, err
	}
	if err := store.Put(ek, rec); err != nil {
		return nil, err
	}
	k := &RecoverKernel{
		proxy: p,
		srv:   NewLBLServer(store),
		geo: tableGeometry{
			mode:     cfg.Mode,
			groups:   cfg.Groups(),
			entryLen: cfg.Mode.entryLen(),
			nEntries: cfg.Mode.entries(),
		},
		ek:      ek,
		tables:  make([][]byte, window),
		labels:  make([]byte, cfg.Groups()*prf.Size),
		workers: workers,
	}
	for i := range k.tables {
		k.tables[i] = make([]byte, cfg.TableBytes())
	}
	return k, nil
}

// Window returns the number of ops one Prepare provisions.
func (k *RecoverKernel) Window() int { return len(k.tables) }

// Prepare rebuilds the window of tables at the record's next counters.
// Call it before each run of Window() Ops.
func (k *RecoverKernel) Prepare() error {
	for i := range k.tables {
		if err := k.proxy.buildAccessTable(k.tables[i], "bench", OpRead, nil, k.ct+uint64(i), k.workers); err != nil {
			return err
		}
	}
	k.used = 0
	return nil
}

// Op applies the next prepared table at the server and recovers the
// value at the proxy.
func (k *RecoverKernel) Op() error {
	if k.used >= len(k.tables) {
		return errors.New("core: recover kernel window exhausted; call Prepare")
	}
	if err := k.srv.accessOne(k.ek, k.geo, k.tables[k.used], k.labels); err != nil {
		return err
	}
	k.used++
	k.ct++
	_, err := k.proxy.recoverWorkers(OpRead, "bench", nil, k.ct, k.labels, k.workers)
	return err
}
