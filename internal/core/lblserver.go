package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
	"ortoa/internal/obs/trace"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// An LBLServer is the untrusted side of LBL-ORTOA: it stores one
// secret label per bit group (plus decryption bits under
// point-and-permute) and, per access, decrypts exactly the table
// entries its stored labels open, installing the recovered new labels
// (steps 2.1–2.2 of §5.2). It learns nothing about the operation type:
// reads and writes present identical work.
type LBLServer struct {
	store *kvstore.Store
	mx    lblServerObs

	ops             atomic.Int64
	decryptAttempts atomic.Int64

	// epochs is the per-range ownership fence (epoch.go): the highest
	// epoch claimed for each counter range. In-memory only — a restarted
	// server relearns epochs from the first frame per range, and fencing
	// correctness never depends on the server remembering them (the
	// label schedule itself is the at-most-once guarantee; epochs only
	// shut out ex-owners promptly).
	epochs       [NumRanges]atomic.Uint64
	fencedRounds atomic.Int64
	epochBumps   atomic.Int64
	maxEpoch     atomic.Uint64

	// expiredRounds counts accesses dropped because their propagated
	// deadline budget ran out before trial decryption (DESIGN.md §15).
	expiredRounds atomic.Int64
}

// NewLBLServer returns a server over store.
func NewLBLServer(store *kvstore.Store) *LBLServer {
	return &LBLServer{store: store}
}

// Register installs the LBL access handlers on ts.
func (s *LBLServer) Register(ts *transport.Server) {
	ts.Handle(MsgLBLAccess, s.handleAccess)
	ts.Handle(MsgLBLAccessBatch, s.handleAccessBatch)
	ts.Handle(MsgLBLAccessStream, s.handleAccessStream)
	ts.Handle(MsgEpochClaim, s.handleEpochClaim)
}

// Ops returns the number of accesses served.
func (s *LBLServer) Ops() int64 { return s.ops.Load() }

// DecryptAttempts returns the cumulative number of authenticated
// decryptions attempted — the server-compute quantity the
// point-and-permute optimization halves (§10.2).
func (s *LBLServer) DecryptAttempts() int64 { return s.decryptAttempts.Load() }

// lblRecord is the parsed server-side state for one object.
type lblRecord struct {
	mode   LBLMode
	labels []byte // groups × prf.Size
	dbits  []byte // groups × 1, point-and-permute only
}

func parseLBLRecord(raw []byte, wantMode LBLMode, wantGroups int) (*lblRecord, error) {
	if len(raw) < 1 {
		return nil, errors.New("core: empty LBL record")
	}
	rec := &lblRecord{mode: LBLMode(raw[0])}
	if rec.mode != wantMode {
		return nil, fmt.Errorf("core: record mode %v does not match request mode %v", rec.mode, wantMode)
	}
	body := raw[1:]
	need := wantGroups * prf.Size
	if rec.mode.hasDbits() {
		need += wantGroups
	}
	if len(body) != need {
		return nil, fmt.Errorf("core: LBL record body %d bytes, want %d", len(body), need)
	}
	rec.labels = body[:wantGroups*prf.Size]
	if rec.mode.hasDbits() {
		rec.dbits = body[wantGroups*prf.Size:]
	}
	return rec, nil
}

// tableGeometry is the shared shape of the encryption tables in one
// request: the variant plus the derived per-table sizes.
type tableGeometry struct {
	mode     LBLMode
	groups   int
	entryLen int
	nEntries int
}

func (g tableGeometry) tableBytes() int { return g.groups * g.nEntries * g.entryLen }

// readGeometry consumes and validates the (mode, groups, entryLen)
// header shared by MsgLBLAccess and MsgLBLAccessBatch.
func readGeometry(r *wire.Reader) (tableGeometry, error) {
	var g tableGeometry
	g.mode = LBLMode(r.Byte())
	g.groups = int(r.Uvarint())
	g.entryLen = int(r.Uvarint())
	if err := r.Err(); err != nil {
		return g, err
	}
	err := g.validate()
	return g, err
}

// readStreamGeometry is readGeometry for stream begin frames, whose
// geometry fields are fixed-width u32s (wire/stream.go) so begin-frame
// lengths are class-invariant.
func readStreamGeometry(r *wire.Reader) (tableGeometry, error) {
	var g tableGeometry
	g.mode = LBLMode(r.Byte())
	g.groups = int(r.Uint32())
	g.entryLen = int(r.Uint32())
	if err := r.Err(); err != nil {
		return g, err
	}
	err := g.validate()
	return g, err
}

// validate checks the parsed header fields and fills nEntries.
func (g *tableGeometry) validate() error {
	if g.mode > LBLWidePointPermute {
		return fmt.Errorf("core: unknown LBL mode %d", g.mode)
	}
	if g.groups <= 0 || g.groups > 1<<22 {
		return fmt.Errorf("core: implausible group count %d", g.groups)
	}
	if g.entryLen != g.mode.entryLen() {
		return fmt.Errorf("core: entry length %d, want %d", g.entryLen, g.mode.entryLen())
	}
	g.nEntries = g.mode.entries()
	return nil
}

// staleTableMarker tags the server's fencing rejections: an access
// table keyed at a counter whose labels this record has already moved
// past. The proxy's ambiguous-round resolution (pending.go) relies on
// the marker — a stale rejection proves some round at that counter
// executed — so both the point-and-permute and try-all decrypt
// failures below must carry it.
const staleTableMarker = "stale access table"

// expiredRoundMarker tags the server's deadline drops: the request's
// propagated budget (frame header, DESIGN.md §15) ran out before trial
// decryption began, so the round was dropped without touching the
// record — a definite, retryable non-execution. Constant text, like
// the fence and staleness markers, so rejections carry no
// request-specific information.
const expiredRoundMarker = "deadline budget expired before decrypt"

var errExpiredRound = errors.New("core: " + expiredRoundMarker)

// expiredBuildMarker is the proxy-side analogue of expiredRoundMarker:
// the caller's deadline passed before the access table was built, so
// nothing was ever sent. One constant error value — like the fence —
// so the rejection carries no request-specific information.
const expiredBuildMarker = "deadline expired before table build; access not sent"

var errDeadlineBeforeBuild = errors.New("core: " + expiredBuildMarker)

// IsDeadlineExpired reports whether err is a deadline-budget drop —
// the proxy refusing to build a table for a dead caller, or the server
// dropping an expired-on-arrival round before trial decryption
// (locally or relayed as a RemoteError). Either way the access
// demonstrably did not execute; callers may retry with a fresh
// deadline.
func IsDeadlineExpired(err error) bool {
	if errors.Is(err, errDeadlineBeforeBuild) || errors.Is(err, errExpiredRound) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) &&
		(strings.Contains(re.Msg, expiredRoundMarker) || strings.Contains(re.Msg, expiredBuildMarker))
}

// checkBudget drops a round whose deadline already passed. It runs
// after parsing but before the epoch fence and any record work: an
// expired round must cost the server no trial decryption and leave the
// store untouched.
func (s *LBLServer) checkBudget(ctx context.Context) error {
	if ctx.Err() == nil {
		return nil
	}
	s.expiredRounds.Add(1)
	return errExpiredRound
}

// recPool recycles server-side record buffers: each successful access
// displaces the store's previous record slice — same length, exclusively
// ours once the update commits — which becomes a later access's
// new-record buffer. Steady-state record churn then allocates nothing.
var recPool = sync.Pool{New: func() any { return new([]byte) }}

// decryptRange executes step 2.1 of §5.2 for groups [g0, g1): trial-
// decrypt the table entries rec's stored labels open, writing the
// recovered new labels (and, under point-and-permute, the next
// decryption bits) into newLabels/newDbits at absolute group offsets.
// table is the full table, absolutely indexed. Returns the number of
// authenticated decryptions attempted; a group none of whose entries
// opens yields a staleTableMarker error — fencing proof for the
// proxy's ambiguous-round resolution. Shared by the monolithic
// handlers (whole-table ranges inside the store update) and the
// streaming handlers (one chunk's range per arriving frame).
func decryptRange(geo tableGeometry, rec *lblRecord, table []byte, g0, g1 int, newLabels, newDbits []byte) (int64, error) {
	mode, entryLen, nEntries := geo.mode, geo.entryLen, geo.nEntries
	var attempts int64
	var plainBuf [prf.Size + 1]byte
	plain := plainBuf[:mode.entryPlainLen()]
	sealer := secretbox.NewLabelSealer()
	for g := g0; g < g1; g++ {
		stored := rec.labels[g*prf.Size : (g+1)*prf.Size]
		entries := table[g*nEntries*entryLen : (g+1)*nEntries*entryLen]
		// Every trial in a group opens under the same stored label,
		// so the pad is derived once and each trial is a tag
		// comparison — up to 2^y−1 hashes saved per group on the
		// try-all path.
		opener, oerr := sealer.Opener(stored)
		if oerr != nil {
			return attempts, oerr
		}
		if mode.hasDbits() {
			// Point-and-permute: exactly one decryption, at the
			// stored entry index.
			d := int(rec.dbits[g]) & (nEntries - 1)
			attempts++
			if derr := opener.OpenInto(plain, entries[d*entryLen:(d+1)*entryLen]); derr != nil {
				return attempts, fmt.Errorf("core: %s: group %d entry %d undecryptable", staleTableMarker, g, d)
			}
			newDbits[g] = plain[prf.Size]
		} else {
			// Try each shuffled entry; the recognition tag
			// identifies the one our label opens (§5.2 step 2.1).
			hit := false
			for e := 0; e < nEntries; e++ {
				attempts++
				if derr := opener.OpenInto(plain, entries[e*entryLen:(e+1)*entryLen]); derr == nil {
					hit = true
					break
				}
			}
			if !hit {
				return attempts, fmt.Errorf("core: %s: group %d: no table entry decryptable", staleTableMarker, g)
			}
		}
		copy(newLabels[g*prf.Size:], plain[:prf.Size])
	}
	return attempts, nil
}

// accessOne executes steps 2.1–2.2 of §5.2 for one key: atomically
// decrypt the table entries the stored labels open and install the
// recovered new labels. The new labels are written to labelsOut, which
// must be groups × prf.Size bytes and is owned by the caller — batch
// handlers point workers at disjoint ranges of one response-sized
// buffer.
func (s *LBLServer) accessOne(encKey string, geo tableGeometry, table, labelsOut []byte) error {
	if s.mx.enabled {
		defer s.mx.access.Since(time.Now())
	}
	mode, groups := geo.mode, geo.groups
	// Trial decryptions are counted locally and published once per
	// access: a per-entry atomic add is a cross-core cacheline ping-pong
	// when batch workers run in parallel.
	var attempts int64
	bp := recPool.Get().(*[]byte)
	applied := false
	err := s.store.Update(encKey, func(old []byte) ([]byte, error) {
		rec, err := parseLBLRecord(old, mode, groups)
		if err != nil {
			return nil, err
		}
		newRec := *bp
		if cap(newRec) < len(old) {
			newRec = make([]byte, len(old))
		} else {
			newRec = newRec[:len(old)]
		}
		*bp = newRec
		newRec[0] = byte(mode)
		newLabels := newRec[1 : 1+groups*prf.Size]
		var newDbits []byte
		if mode.hasDbits() {
			newDbits = newRec[1+groups*prf.Size:]
		}
		a, derr := decryptRange(geo, rec, table, 0, groups, newLabels, newDbits)
		attempts += a
		if derr != nil {
			return nil, derr
		}
		copy(labelsOut, newLabels)
		// Hand the store the new record; the displaced old slice is
		// recycled below once the update commits.
		*bp = old
		applied = true
		return newRec, nil
	})
	if err != nil && applied {
		// The closure succeeded but journaling or the durability wait
		// failed; the store may retain either buffer, so recycle
		// neither.
		*bp = nil
	}
	recPool.Put(bp)
	if errors.Is(err, kvstore.ErrNotFound) {
		return ErrNotFound
	}
	if err != nil {
		return err
	}
	s.ops.Add(1)
	s.decryptAttempts.Add(attempts)
	return nil
}

func (s *LBLServer) handleAccess(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	encKey := r.Raw(prf.Size)
	claim := r.Raw(lblClaimLen)
	if err := r.Err(); err != nil {
		return nil, err
	}
	geo, err := readGeometry(r)
	if err != nil {
		return nil, err
	}
	table := r.Raw(geo.tableBytes())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	// Expired-on-arrival rounds are dropped before the fence and before
	// any decryption: nobody is waiting for the answer.
	if err := s.checkBudget(ctx); err != nil {
		return nil, err
	}
	// The ownership fence runs before any record work: a fenced round
	// must leave the store untouched (epoch.go).
	if err := s.checkEpoch(readClaim(claim)); err != nil {
		return nil, err
	}
	sp := trace.StartChild(ctx, "server_decrypt")
	defer sp.End()
	// The response is retained by the transport's at-most-once dedup
	// cache, so it must be freshly allocated, never pooled.
	labels := make([]byte, geo.groups*prf.Size)
	if err := s.accessOne(string(encKey), geo, table, labels); err != nil {
		return nil, err
	}
	return labels, nil
}

// maxBatchAccesses bounds one batch frame's key count, limiting the
// memory a single request can pin.
const maxBatchAccesses = 1 << 16

// handleAccessBatch serves MsgLBLAccessBatch: one geometry header, then
// n (encoded key, table) pairs. Accesses fan out across the kvstore's
// shards in parallel and every access is answered in the one response
// frame — a status byte per key, then the response labels (or an error
// string). Work and response shape depend only on the table geometry
// and key count, never on operation types, so a batch leaks exactly as
// much as n single accesses: nothing beyond "n objects were accessed".
func (s *LBLServer) handleAccessBatch(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	geo, err := readGeometry(r)
	if err != nil {
		return nil, err
	}
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n <= 0 || n > maxBatchAccesses {
		return nil, fmt.Errorf("core: implausible batch size %d", n)
	}
	sp := trace.StartChild(ctx, "server_decrypt")
	defer sp.End()
	keys := make([]string, n)
	claims := make([][]byte, n)
	tables := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = string(r.Raw(prf.Size))
		claims[i] = r.Raw(lblClaimLen)
		tables[i] = r.Raw(geo.tableBytes())
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}

	// One label buffer for the whole batch: workers write into disjoint
	// per-key ranges, so the fan-out costs one allocation rather than n.
	stride := geo.groups * prf.Size
	labelsBuf := make([]byte, n*stride)
	errs := make([]error, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Per-key budget check: the batch's remaining deadline is
				// re-tested before every key's decryption, so a batch that
				// expires mid-flight stops burning trial decryptions on
				// keys whose answers nobody will read.
				if err := s.checkBudget(ctx); err != nil {
					errs[i] = err
					continue
				}
				// Per-key fence: one stale-epoch access must not fail
				// its batch mates, so the fence is a per-key status like
				// any other access error.
				if err := s.checkEpoch(readClaim(claims[i])); err != nil {
					errs[i] = err
					continue
				}
				errs[i] = s.accessOne(keys[i], geo, tables[i], labelsBuf[i*stride:(i+1)*stride])
			}
		}()
	}
	wg.Wait()

	// Like handleAccess, the assembled response is retained by the
	// transport's dedup cache — not poolable.
	out := wire.NewWriter(n * (1 + stride))
	for i := range errs {
		if errs[i] != nil {
			out.Byte(1)
			out.String(errs[i].Error())
			continue
		}
		out.Byte(0)
		out.Raw(labelsBuf[i*stride : (i+1)*stride])
	}
	return out.Bytes(), nil
}

// streamAbortMarker tags rejections of a chunked stream that died or
// misbehaved before completing: the record (or, for a batch, the keys
// in chunks that never arrived) was left untouched. Constant text like
// the other rejection markers — and deliberately free of the
// staleness, fence, and expiry markers, so the proxy's ambiguous-round
// resolution classifies an aborted stream as a definite rejection
// rather than proof of execution.
const streamAbortMarker = "stream aborted before completion"

// handleAccessStream serves MsgLBLAccessStream: the begin frame
// arrives as the handler payload, the chunk and end frames through the
// transport's StreamReader. The logical round — and its single
// response, dedup entry, deadline budget, and trace — is exactly a
// monolithic access's; only the request arrival is incremental.
func (s *LBLServer) handleAccessStream(ctx context.Context, payload []byte) ([]byte, error) {
	sr := transport.StreamFrom(ctx)
	if sr == nil {
		return nil, errors.New("core: " + streamAbortMarker + ": no stream attached")
	}
	r := wire.NewReader(payload)
	if kind := r.Byte(); kind != wire.StreamBegin {
		return nil, fmt.Errorf("core: stream request opens with segment kind %d", kind)
	}
	switch sub := r.Byte(); sub {
	case wire.StreamSingle:
		return s.streamAccessOne(ctx, r, sr)
	case wire.StreamBatch:
		return s.streamAccessBatch(ctx, r, sr)
	default:
		return nil, fmt.Errorf("core: unknown stream sub-type %d", sub)
	}
}

// nextStreamChunk reads and validates one chunk segment: correct
// sub-type, geometry, position, and element count, with a body of
// exactly wantCount × elemLen bytes. A read failure is an abort (the
// stream died mid-flight) unless the handler's own deadline expired.
func (s *LBLServer) nextStreamChunk(ctx context.Context, sr *transport.StreamReader, wantSub byte, geo tableGeometry, wantIndex, wantCount, elemLen int) ([]byte, error) {
	seg, err := sr.Next(ctx)
	if err != nil {
		if ctx.Err() != nil {
			s.expiredRounds.Add(1)
			return nil, errExpiredRound
		}
		return nil, fmt.Errorf("core: %s: %v", streamAbortMarker, err)
	}
	r := wire.NewReader(seg)
	if kind := r.Byte(); kind != wire.StreamChunk {
		return nil, fmt.Errorf("core: %s: segment kind %d where chunk %d expected", streamAbortMarker, kind, wantIndex)
	}
	sub, mode, groups, index, count := wire.ReadStreamChunkHeader(r)
	if rerr := r.Err(); rerr != nil {
		return nil, rerr
	}
	if sub != wantSub || LBLMode(mode) != geo.mode || int(groups) != geo.groups {
		return nil, fmt.Errorf("core: %s: chunk %d does not match the stream's geometry", streamAbortMarker, wantIndex)
	}
	if int(index) != wantIndex || int(count) != wantCount {
		return nil, fmt.Errorf("core: %s: chunk (%d×%d) where (%d×%d) expected", streamAbortMarker, index, count, wantIndex, wantCount)
	}
	body := r.Raw(wantCount * elemLen)
	if rerr := r.Err(); rerr != nil {
		return nil, rerr
	}
	if rerr := r.Finish(); rerr != nil {
		return nil, rerr
	}
	return body, nil
}

// nextStreamEnd reads and validates the end segment, which re-commits
// the chunk count so a truncated stream can never pass as complete.
func (s *LBLServer) nextStreamEnd(ctx context.Context, sr *transport.StreamReader, wantSub byte, wantChunks int) error {
	seg, err := sr.Next(ctx)
	if err != nil {
		if ctx.Err() != nil {
			s.expiredRounds.Add(1)
			return errExpiredRound
		}
		return fmt.Errorf("core: %s: %v", streamAbortMarker, err)
	}
	r := wire.NewReader(seg)
	if kind := r.Byte(); kind != wire.StreamEnd {
		return fmt.Errorf("core: %s: segment kind %d where end expected", streamAbortMarker, kind)
	}
	sub := r.Byte()
	chunks := r.Uint32()
	if rerr := r.Err(); rerr != nil {
		return rerr
	}
	if rerr := r.Finish(); rerr != nil {
		return rerr
	}
	if sub != wantSub || int(chunks) != wantChunks {
		return fmt.Errorf("core: %s: end frame re-commits %d chunks, want %d", streamAbortMarker, chunks, wantChunks)
	}
	return nil
}

// streamAccessOne serves a single-access stream: trial decryption of
// each chunk's groups runs as the chunk arrives — against a snapshot
// of the record — overlapping the remaining chunks' wire time, and the
// labels install atomically once the end frame confirms the stream
// complete. If the record moved between snapshot and install (a
// concurrent round for the same key, which a correct proxy never
// issues), the install falls back to re-decrypting the accumulated
// table against the current record inside the store update.
func (s *LBLServer) streamAccessOne(ctx context.Context, r *wire.Reader, sr *transport.StreamReader) ([]byte, error) {
	encKey := r.Raw(prf.Size)
	claim := r.Raw(lblClaimLen)
	if err := r.Err(); err != nil {
		return nil, err
	}
	geo, err := readStreamGeometry(r)
	if err != nil {
		return nil, err
	}
	chunkGroups := int(r.Uint32())
	nChunks := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if chunkGroups <= 0 || chunkGroups > geo.groups ||
		nChunks != (geo.groups+chunkGroups-1)/chunkGroups {
		return nil, fmt.Errorf("core: implausible stream chunking %d×%d for %d groups", nChunks, chunkGroups, geo.groups)
	}
	// Budget and fence run before any record work, as on the monolithic
	// path; the budget is re-tested per chunk below.
	if err := s.checkBudget(ctx); err != nil {
		return nil, err
	}
	if err := s.checkEpoch(readClaim(claim)); err != nil {
		return nil, err
	}
	sp := trace.StartChild(ctx, "server_decrypt")
	defer sp.End()

	key := string(encKey)
	snap, err := s.store.Get(key)
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	snapRec, err := parseLBLRecord(snap, geo.mode, geo.groups)
	if err != nil {
		return nil, err
	}

	table := make([]byte, geo.tableBytes())
	newLabels := make([]byte, geo.groups*prf.Size)
	var newDbits []byte
	if geo.mode.hasDbits() {
		newDbits = make([]byte, geo.groups)
	}
	groupLen := geo.nEntries * geo.entryLen
	var attempts int64
	for i := 0; i < nChunks; i++ {
		g0 := i * chunkGroups
		g1 := g0 + chunkGroups
		if g1 > geo.groups {
			g1 = geo.groups
		}
		body, cerr := s.nextStreamChunk(ctx, sr, wire.StreamSingle, geo, i, g1-g0, groupLen)
		if cerr != nil {
			return nil, cerr
		}
		if berr := s.checkBudget(ctx); berr != nil {
			return nil, berr
		}
		copy(table[g0*groupLen:], body)
		// A decryption failure against the snapshot is a staleness
		// rejection (the proxy's counter is behind): abort now, record
		// untouched, remaining frames drain as audited orphans.
		a, derr := decryptRange(geo, snapRec, table, g0, g1, newLabels, newDbits)
		attempts += a
		if derr != nil {
			return nil, derr
		}
	}
	if eerr := s.nextStreamEnd(ctx, sr, wire.StreamSingle, nChunks); eerr != nil {
		return nil, eerr
	}
	if err := s.checkBudget(ctx); err != nil {
		return nil, err
	}

	// The response is retained by the transport's dedup cache, so it
	// must be freshly allocated, never pooled.
	labels := make([]byte, geo.groups*prf.Size)
	bp := recPool.Get().(*[]byte)
	applied := false
	err = s.store.Update(key, func(old []byte) ([]byte, error) {
		rec, perr := parseLBLRecord(old, geo.mode, geo.groups)
		if perr != nil {
			return nil, perr
		}
		newRec := *bp
		if cap(newRec) < len(old) {
			newRec = make([]byte, len(old))
		} else {
			newRec = newRec[:len(old)]
		}
		*bp = newRec
		newRec[0] = byte(geo.mode)
		dstLabels := newRec[1 : 1+geo.groups*prf.Size]
		var dstDbits []byte
		if geo.mode.hasDbits() {
			dstDbits = newRec[1+geo.groups*prf.Size:]
		}
		if bytes.Equal(old, snap) {
			// Fast path: the record is exactly the snapshot the chunks
			// were decrypted against — install the precomputed labels.
			copy(dstLabels, newLabels)
			copy(dstDbits, newDbits)
		} else {
			a, derr := decryptRange(geo, rec, table, 0, geo.groups, dstLabels, dstDbits)
			attempts += a
			if derr != nil {
				return nil, derr
			}
		}
		copy(labels, dstLabels)
		*bp = old
		applied = true
		return newRec, nil
	})
	if err != nil && applied {
		*bp = nil
	}
	recPool.Put(bp)
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	s.ops.Add(1)
	s.decryptAttempts.Add(attempts)
	return labels, nil
}

// streamAccessBatch serves a batch stream: each chunk carries whole
// per-key (key, claim, table) segments, applied through accessOne as
// the chunk arrives — so the first keys' decryptions overlap the later
// keys' garbling and wire time — and the single response frame is
// identical to handleAccessBatch's. Keys in chunks that never arrive
// are untouched; because earlier chunks may already have applied, the
// proxy resolves an aborted batch stream by probing each key rather
// than replaying bytes (pending.go).
func (s *LBLServer) streamAccessBatch(ctx context.Context, r *wire.Reader, sr *transport.StreamReader) ([]byte, error) {
	geo, err := readStreamGeometry(r)
	if err != nil {
		return nil, err
	}
	n := int(r.Uint32())
	perChunk := int(r.Uint32())
	nChunks := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if n <= 0 || n > maxBatchAccesses {
		return nil, fmt.Errorf("core: implausible batch size %d", n)
	}
	if perChunk <= 0 || perChunk > n || nChunks != (n+perChunk-1)/perChunk {
		return nil, fmt.Errorf("core: implausible stream chunking %d×%d for %d accesses", nChunks, perChunk, n)
	}
	if err := s.checkBudget(ctx); err != nil {
		return nil, err
	}
	sp := trace.StartChild(ctx, "server_decrypt")
	defer sp.End()

	segLen := prf.Size + lblClaimLen + geo.tableBytes()
	stride := geo.groups * prf.Size
	labelsBuf := make([]byte, n*stride)
	errs := make([]error, n)
	for c := 0; c < nChunks; c++ {
		k0 := c * perChunk
		k1 := k0 + perChunk
		if k1 > n {
			k1 = n
		}
		body, cerr := s.nextStreamChunk(ctx, sr, wire.StreamBatch, geo, c, k1-k0, segLen)
		if cerr != nil {
			return nil, cerr
		}
		// Fan this chunk's accesses out like the monolithic batch
		// handler; the next chunk's wire time overlaps the decryption.
		count := k1 - k0
		workers := runtime.GOMAXPROCS(0)
		if workers > count {
			workers = count
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= count {
						return
					}
					k := k0 + j
					seg := body[j*segLen : (j+1)*segLen]
					if err := s.checkBudget(ctx); err != nil {
						errs[k] = err
						continue
					}
					if err := s.checkEpoch(readClaim(seg[prf.Size : prf.Size+lblClaimLen])); err != nil {
						errs[k] = err
						continue
					}
					errs[k] = s.accessOne(string(seg[:prf.Size]), geo, seg[prf.Size+lblClaimLen:], labelsBuf[k*stride:(k+1)*stride])
				}
			}()
		}
		wg.Wait()
	}
	if eerr := s.nextStreamEnd(ctx, sr, wire.StreamBatch, nChunks); eerr != nil {
		return nil, eerr
	}

	out := wire.NewWriter(n * (1 + stride))
	for i := range errs {
		if errs[i] != nil {
			out.Byte(1)
			out.String(errs[i].Error())
			continue
		}
		out.Byte(0)
		out.Raw(labelsBuf[i*stride : (i+1)*stride])
	}
	return out.Bytes(), nil
}
