package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// An LBLServer is the untrusted side of LBL-ORTOA: it stores one
// secret label per bit group (plus decryption bits under
// point-and-permute) and, per access, decrypts exactly the table
// entries its stored labels open, installing the recovered new labels
// (steps 2.1–2.2 of §5.2). It learns nothing about the operation type:
// reads and writes present identical work.
type LBLServer struct {
	store *kvstore.Store

	ops             atomic.Int64
	decryptAttempts atomic.Int64
}

// NewLBLServer returns a server over store.
func NewLBLServer(store *kvstore.Store) *LBLServer {
	return &LBLServer{store: store}
}

// Register installs the LBL access handler on ts.
func (s *LBLServer) Register(ts *transport.Server) {
	ts.Handle(MsgLBLAccess, s.handleAccess)
}

// Ops returns the number of accesses served.
func (s *LBLServer) Ops() int64 { return s.ops.Load() }

// DecryptAttempts returns the cumulative number of authenticated
// decryptions attempted — the server-compute quantity the
// point-and-permute optimization halves (§10.2).
func (s *LBLServer) DecryptAttempts() int64 { return s.decryptAttempts.Load() }

// lblRecord is the parsed server-side state for one object.
type lblRecord struct {
	mode   LBLMode
	labels []byte // groups × prf.Size
	dbits  []byte // groups × 1, point-and-permute only
}

func parseLBLRecord(raw []byte, wantMode LBLMode, wantGroups int) (*lblRecord, error) {
	if len(raw) < 1 {
		return nil, errors.New("core: empty LBL record")
	}
	rec := &lblRecord{mode: LBLMode(raw[0])}
	if rec.mode != wantMode {
		return nil, fmt.Errorf("core: record mode %v does not match request mode %v", rec.mode, wantMode)
	}
	body := raw[1:]
	need := wantGroups * prf.Size
	if rec.mode.hasDbits() {
		need += wantGroups
	}
	if len(body) != need {
		return nil, fmt.Errorf("core: LBL record body %d bytes, want %d", len(body), need)
	}
	rec.labels = body[:wantGroups*prf.Size]
	if rec.mode.hasDbits() {
		rec.dbits = body[wantGroups*prf.Size:]
	}
	return rec, nil
}

func (s *LBLServer) handleAccess(payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	encKey := r.Raw(prf.Size)
	mode := LBLMode(r.Byte())
	groups := int(r.Uvarint())
	entryLen := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if mode > LBLWidePointPermute {
		return nil, fmt.Errorf("core: unknown LBL mode %d", mode)
	}
	if groups <= 0 || groups > 1<<22 {
		return nil, fmt.Errorf("core: implausible group count %d", groups)
	}
	if entryLen != mode.entryLen() {
		return nil, fmt.Errorf("core: entry length %d, want %d", entryLen, mode.entryLen())
	}
	nEntries := mode.entries()
	table := r.Raw(groups * nEntries * entryLen)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}

	resp := make([]byte, 0, groups*prf.Size)
	err := s.store.Update(string(encKey), func(old []byte) ([]byte, error) {
		rec, err := parseLBLRecord(old, mode, groups)
		if err != nil {
			return nil, err
		}
		newRec := make([]byte, len(old))
		newRec[0] = byte(mode)
		newLabels := newRec[1 : 1+groups*prf.Size]
		var newDbits []byte
		if mode.hasDbits() {
			newDbits = newRec[1+groups*prf.Size:]
		}
		scratch := make([]byte, 0, mode.entryPlainLen())
		for g := 0; g < groups; g++ {
			stored := rec.labels[g*prf.Size : (g+1)*prf.Size]
			entries := table[g*nEntries*entryLen : (g+1)*nEntries*entryLen]
			var plain []byte
			if mode.hasDbits() {
				// Point-and-permute: exactly one decryption, at the
				// stored entry index.
				d := int(rec.dbits[g]) & (nEntries - 1)
				s.decryptAttempts.Add(1)
				plain, err = secretbox.AppendOpenLabel(scratch[:0], stored, entries[d*entryLen:(d+1)*entryLen])
				if err != nil {
					return nil, fmt.Errorf("core: group %d entry %d undecryptable (proxy/server divergence?)", g, d)
				}
				newDbits[g] = plain[prf.Size]
			} else {
				// Try each shuffled entry; authenticated encryption
				// identifies the one our label opens (§5.2 step 2.1).
				plain = nil
				for e := 0; e < nEntries; e++ {
					s.decryptAttempts.Add(1)
					p, derr := secretbox.AppendOpenLabel(scratch[:0], stored, entries[e*entryLen:(e+1)*entryLen])
					if derr == nil {
						plain = p
						break
					}
				}
				if plain == nil {
					return nil, fmt.Errorf("core: group %d: no table entry decryptable", g)
				}
			}
			copy(newLabels[g*prf.Size:], plain[:prf.Size])
		}
		resp = append(resp, newLabels...)
		return newRec, nil
	})
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, err
	}
	s.ops.Add(1)
	return resp, nil
}
