package core

import (
	"context"
	"fmt"

	"ortoa/internal/transport"
)

// Counter reconciliation. The label schedule is counter-indexed, so
// LBL-ORTOA works only while the proxy's per-key counter ct matches
// the counter of the labels the server's record actually holds. Two
// crash scenarios break the match:
//
//   - The server restarts from older durable state (a crash under a
//     lossy fsync policy): its record holds labels for some ct* < ct.
//   - The proxy restarts from an older counter snapshot: its ct is
//     below the server's ct*.
//
// Either way every access to the key fails with the server's stale
// fencing rejection, forever — the §5.3.1 failure mode. When
// LBLConfig.ReconcileScan is positive the proxy treats a fresh stale
// rejection (no parked ambiguous round to explain it) as possible
// desynchronization and searches for the server's actual counter: it
// issues read-shaped probe accesses at candidate counters spiraling
// out from ct (ct-1, ct+1, ct-2, ct+2, …) up to ReconcileScan steps
// each way. Fencing makes probing safe — a probe keyed at the wrong
// counter is rejected with the record untouched — and the one probe
// that decrypts proves the server's position, advances the record one
// step as any read does, and rebases ct to match. The triggering
// access is then retried once at the reconciled counter.
//
// Obliviousness of recovery traffic: probes are always read-shaped
// and are triggered by the stale rejection alone, which the server
// emits identically for reads and writes. An adversary watching a
// recovery episode sees the same exchange sequence whatever the
// operation types involved, so crashes add no op-type leak (the
// recovery-path analogue of the §5.2 argument; asserted by
// TestRecoveryObliviousness).
//
// Under a lossy policy the server can regress while rounds are parked,
// in which case pending resolution's fencing inferences can commit a
// counter step the regressed server never saw. Reconciliation is also
// the backstop for that: the key's next access hits a fresh stale
// rejection and the scan re-locates the true counter.

// errReconcile wraps a reconciliation failure; callers see the
// original stale rejection context too.
func errReconcile(key string, err error) error {
	return fmt.Errorf("core: reconciling counter for %q: %w", key, err)
}

// reconcile locates the server's actual counter for key by probing and
// rebases entry.ct to it. On nil return the entry's counter is
// trustworthy again. The caller must hold entry.mu and must have seen
// a stale rejection for a round keyed at entry.ct with no pending
// round parked.
func (p *LBLProxy) reconcile(key string, entry *counterEntry) error {
	scan := p.cfg.ReconcileScan
	for d := uint64(1); d <= uint64(scan); d++ {
		for _, down := range []bool{true, false} {
			var cand uint64
			if down {
				if d > entry.ct {
					continue // counters never go below 0
				}
				cand = entry.ct - d
			} else {
				cand = entry.ct + d
			}
			hit, err := p.probeCounter(key, entry, cand)
			if err != nil {
				return err
			}
			if hit {
				p.mx.reconciledKeys.Inc()
				return nil
			}
		}
	}
	return errReconcile(key, fmt.Errorf("server counter not within %d of %d", scan, entry.ct))
}

// probeCounter issues one read-shaped access keyed at counter cand.
// A hit (the server's record was at cand) advances the record to
// cand+1 and rebases entry.ct; a stale rejection means cand is wrong
// and the record is untouched. An ambiguous transport failure parks
// the probe as the entry's pending round — rebased to cand, so the
// standard resolution path applies — and surfaces the error.
func (p *LBLProxy) probeCounter(key string, entry *counterEntry, cand uint64) (bool, error) {
	req, err := p.buildRequest(OpRead, key, nil, cand)
	if err != nil {
		return false, errReconcile(key, err)
	}
	p.mx.reconcileProbes.Inc()
	id := p.client.NextID()
	resp, err := p.client.CallContextID(context.Background(), id, MsgLBLAccess, req)
	switch {
	case err == nil:
		if _, rerr := p.recover(OpRead, key, nil, cand+1, resp); rerr != nil {
			return false, errReconcile(key, rerr)
		}
		entry.ct = cand + 1
		return true, nil
	case isStaleRound(err):
		return false, nil // wrong candidate; record untouched
	case transport.Ambiguous(err):
		// The probe may have executed. Rebase to the candidate and park
		// the probe so the key's next access settles it exactly like any
		// other ambiguous round.
		entry.ct = cand
		entry.pending = &pendingRound{id: id, msgType: MsgLBLAccess, req: req, op: OpRead}
		p.mx.pendingSaved.Inc()
		return false, errReconcile(key, err)
	case transport.IsReplayEvicted(err):
		// Executed, response gone: the probe decrypted, so cand was
		// right and the record is now at cand+1.
		entry.ct = cand + 1
		return true, nil
	default:
		return false, errReconcile(key, err)
	}
}
