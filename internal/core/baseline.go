package core

import (
	"context"
	"errors"
	"fmt"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// A BaselineServer is the storage side of the two-round-trip (2RTT)
// baseline (§6): a plain encrypted GET/PUT store. Operation-type
// privacy comes entirely from the proxy issuing a read round followed
// by a write round for every client request.
type BaselineServer struct {
	store *kvstore.Store
}

// NewBaselineServer returns a server over store.
func NewBaselineServer(store *kvstore.Store) *BaselineServer {
	return &BaselineServer{store: store}
}

// Register installs the GET and PUT handlers on ts.
func (s *BaselineServer) Register(ts *transport.Server) {
	ts.Handle(MsgBaselineGet, s.handleGet)
	ts.Handle(MsgBaselinePut, s.handlePut)
}

func (s *BaselineServer) handleGet(_ context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	encKey := r.Raw(prf.Size)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	v, err := s.store.Get(string(encKey))
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, ErrNotFound
	}
	return v, err
}

func (s *BaselineServer) handlePut(_ context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	encKey := r.Raw(prf.Size)
	sealed := r.BytesCopy()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	s.store.Put(string(encKey), sealed)
	return nil, nil
}

// BaselineConfig fixes the parameters of a 2RTT deployment.
type BaselineConfig struct {
	// ValueSize is the fixed plaintext value length in bytes.
	ValueSize int
}

// A BaselineProxy hides operation types the way existing oblivious
// datastores do (§1.1, §6): every client request becomes a GET round
// followed by a PUT round. Reads re-encrypt the fetched value with
// fresh randomness; writes encrypt the new value; the server cannot
// tell them apart — at the cost of a second round trip.
type BaselineProxy struct {
	cfg    BaselineConfig
	prf    *prf.PRF
	box    *secretbox.Box
	locks  *counterTable // per-key serialization of get→put pairs
	client *transport.Client
}

// NewBaselineProxy returns a proxy keyed with dataKey.
func NewBaselineProxy(cfg BaselineConfig, f *prf.PRF, dataKey []byte, client *transport.Client) (*BaselineProxy, error) {
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("core: baseline value size %d must be positive", cfg.ValueSize)
	}
	box, err := secretbox.NewBox(dataKey)
	if err != nil {
		return nil, err
	}
	return &BaselineProxy{cfg: cfg, prf: f, box: box, locks: newCounterTable(), client: client}, nil
}

// BuildRecord encodes the initial record for (key, value).
func (p *BaselineProxy) BuildRecord(key string, value []byte) (string, []byte, error) {
	if len(value) != p.cfg.ValueSize {
		return "", nil, ErrValueSize
	}
	ek := p.prf.EncodeKey(key)
	return string(ek[:]), p.box.Seal(value), nil
}

// Access performs the two-round read-then-write dance.
func (p *BaselineProxy) Access(op Op, key string, newValue []byte) ([]byte, AccessStats, error) {
	var stats AccessStats
	if op == OpWrite && len(newValue) != p.cfg.ValueSize {
		return nil, stats, ErrValueSize
	}
	if p.client == nil {
		return nil, stats, errors.New("core: baseline proxy has no server connection")
	}
	// Serialize per key so a concurrent get→put pair cannot interleave
	// and lose an update.
	entry := p.locks.acquire(key)
	defer entry.mu.Unlock()

	ek := p.prf.EncodeKey(key)

	// Round 1: GET.
	getReq := make([]byte, prf.Size)
	copy(getReq, ek[:])
	stats.PrepBytes += len(getReq)
	sealed, err := p.client.Call(MsgBaselineGet, getReq)
	if err != nil {
		return nil, stats, err
	}
	stats.RespBytes += len(sealed)
	value, err := p.box.Open(sealed)
	if err != nil {
		return nil, stats, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	if len(value) != p.cfg.ValueSize {
		return nil, stats, fmt.Errorf("%w: stored value has %d bytes", ErrTampered, len(value))
	}

	// Round 2: PUT a fresh encryption — of the same value for reads,
	// of the new value for writes. AES-GCM's random nonces make the
	// two indistinguishable.
	toStore := value
	if op == OpWrite {
		toStore = newValue
	}
	w := wire.NewWriter(prf.Size + len(toStore) + secretbox.Overhead + 8)
	w.Raw(ek[:])
	w.BytesPfx(p.box.Seal(toStore))
	stats.PrepBytes += w.Len()
	if _, err := p.client.Call(MsgBaselinePut, w.Bytes()); err != nil {
		return nil, stats, err
	}
	return toStore, stats, nil
}
