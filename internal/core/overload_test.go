package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

// Overload-path tests (DESIGN.md §15): deadline budgets dropping work
// before it costs trial decryptions or table builds, aggregator
// brownout, and the router's busy breaker.

func TestCheckBudget(t *testing.T) {
	s := NewLBLServer(kvstore.New())
	if err := s.checkBudget(context.Background()); err != nil {
		t.Fatalf("fresh ctx: %v", err)
	}
	if got := s.expiredRounds.Load(); got != 0 {
		t.Fatalf("expiredRounds after fresh ctx = %d", got)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	err := s.checkBudget(ctx)
	if !errors.Is(err, errExpiredRound) {
		t.Fatalf("expired ctx: err = %v, want errExpiredRound", err)
	}
	if !IsDeadlineExpired(err) {
		t.Error("IsDeadlineExpired(errExpiredRound) = false")
	}
	if got := s.expiredRounds.Load(); got != 1 {
		t.Errorf("expiredRounds = %d, want 1", got)
	}
}

// TestIsDeadlineExpiredClassification pins that both expiry markers —
// the server's pre-decrypt drop and the proxy's pre-build drop —
// classify locally, wrapped, and after the handler-error flattening a
// relayed hop applies (RemoteError with the marker embedded).
func TestIsDeadlineExpiredClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"server marker", errExpiredRound, true},
		{"proxy marker", errDeadlineBeforeBuild, true},
		{"wrapped server marker", fmt.Errorf("access %q: %w", "k", errExpiredRound), true},
		{"relayed server marker", &transport.RemoteError{Msg: "proxy hop: " + expiredRoundMarker}, true},
		{"relayed proxy marker", &transport.RemoteError{Msg: "proxy hop: " + expiredBuildMarker}, true},
		{"plain remote error", &transport.RemoteError{Msg: "unknown key"}, false},
		{"busy rejection", &transport.BusyError{}, false},
		{"generic error", errors.New("deadline-ish but unrelated"), false},
		{"ctx deadline", context.DeadlineExceeded, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsDeadlineExpired(tc.err); got != tc.want {
				t.Errorf("IsDeadlineExpired = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestAccessExpiredBeforeBuild: an access whose deadline already
// passed is dropped before the proxy builds a table — nothing goes on
// the wire, the label schedule is untouched, and the next access works.
func TestAccessExpiredBeforeBuild(t *testing.T) {
	r, proxy, _ := newLBL(t, LBLPointPermute, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {9, 9, 9, 9}})

	callsBefore := r.client.Stats().Calls
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	_, _, err := proxy.AccessContext(ctx, OpRead, "k", nil)
	if !IsDeadlineExpired(err) {
		t.Fatalf("err = %v, want deadline-expired", err)
	}
	if got := r.client.Stats().Calls; got != callsBefore {
		t.Errorf("calls went from %d to %d; expired access must not reach the wire", callsBefore, got)
	}
	// The drop left no parked round: a fresh access succeeds.
	got, _, err := proxy.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatalf("access after expired drop: %v", err)
	}
	if !bytes.Equal(got, []byte{9, 9, 9, 9}) {
		t.Errorf("read = %v", got)
	}
}

// TestServerDropsExpiredRound holds an LBL access in the server's
// admission queue past its deadline budget (ShedExpired off, so it
// still runs) and checks the server drops it at checkBudget — before
// any trial decryption — and that the proxy recovers the round through
// the dedup replay: the next access resolves the parked round as
// definitively-not-applied and succeeds.
func TestServerDropsExpiredRound(t *testing.T) {
	r, proxy, srv := newLBL(t, LBLPointPermute, 4)
	loadData(t, r, proxy, map[string][]byte{"k": {1, 2, 3, 4}})

	// One slot, occupied by a gated raw call, so the access queues.
	const msgOccupy = 0xEE
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	r.server.Handle(msgOccupy, func(context.Context, []byte) ([]byte, error) {
		entered <- struct{}{}
		<-gate
		return nil, nil
	})
	r.server.LimitAdmission(transport.AdmissionConfig{MaxInflight: 1, MaxQueue: 2})

	occupied := make(chan struct{})
	go func() {
		defer close(occupied)
		r.client.Call(msgOccupy, nil)
	}()
	<-entered

	// 15ms of budget, then 40ms stuck in queue: the handler finally
	// runs with its rehydrated deadline already passed.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	if _, _, err := proxy.AccessContext(ctx, OpRead, "k", nil); err == nil {
		t.Fatal("expired access succeeded")
	}
	time.Sleep(40 * time.Millisecond)
	close(gate)
	<-occupied

	deadline := time.Now().Add(5 * time.Second)
	for srv.expiredRounds.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never dropped the expired round")
		}
		time.Sleep(time.Millisecond)
	}

	// The dropped round was never applied; the proxy's ambiguity
	// resolution (dedup replay under the original request id) must
	// conclude exactly that and leave the key readable.
	got, _, err := proxy.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatalf("access after expired round: %v", err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("read after expired round = %v, want original value", got)
	}
	if got := srv.expiredRounds.Load(); got != 1 {
		t.Errorf("expiredRounds = %d, want 1", got)
	}
}

// gatedBackend is a BatchAccessor whose round trips block on gate,
// recording each batch's size — a stand-in proxy for aggregator tests
// that need pending depth held high deterministically.
type gatedBackend struct {
	mu      sync.Mutex
	sizes   []int
	entered chan struct{} // one tick per batch arrival
	gate    chan struct{} // closed to release all batches
}

func (b *gatedBackend) AccessBatchResults(_ context.Context, ops []BatchOp) ([]BatchResult, AccessStats) {
	b.mu.Lock()
	b.sizes = append(b.sizes, len(ops))
	b.mu.Unlock()
	b.entered <- struct{}{}
	if b.gate != nil {
		<-b.gate
	}
	res := make([]BatchResult, len(ops))
	for i := range res {
		res[i] = BatchResult{Value: []byte{byte(i)}}
	}
	return res, AccessStats{}
}

func (b *gatedBackend) batchSizes() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]int(nil), b.sizes...)
}

// TestAggregatorBrownout: once pending depth reaches BrownoutPending,
// new windows open with the larger brownout size trigger, amortizing
// the round trip across more accesses while the backlog drains.
func TestAggregatorBrownout(t *testing.T) {
	backend := &gatedBackend{entered: make(chan struct{}, 4), gate: make(chan struct{})}
	agg := NewAggregator(AggregatorConfig{
		Window:           time.Hour, // size triggers only
		MaxBatch:         2,
		MaxPending:       100,
		BrownoutPending:  3,
		BrownoutMaxBatch: 4,
	}, backend)

	var wg sync.WaitGroup
	access := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := agg.Access(OpRead, "k", nil); err != nil {
				t.Errorf("access: %v", err)
			}
		}()
	}
	waitStat := func(name string, get func() int64, want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for get() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %d (now %d)", name, want, get())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Two accesses fill a normal window (limit 2); its leader blocks in
	// the backend holding pending at 2.
	access()
	waitStat("accesses", func() int64 { return agg.Stats().Accesses }, 1)
	access()
	<-backend.entered

	// Third access: pending hits BrownoutPending, so ITS window opens
	// in brownout with the bigger size trigger.
	access()
	waitStat("accesses", func() int64 { return agg.Stats().Accesses }, 3)
	if got := agg.Stats().Brownouts; got != 1 {
		t.Fatalf("brownouts = %d, want 1 (window opened at pending >= 3)", got)
	}

	// Three more fill the brownout window to its limit of 4.
	access()
	access()
	access()
	<-backend.entered

	close(backend.gate)
	wg.Wait()
	if sizes := backend.batchSizes(); len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 4 {
		t.Errorf("batch sizes = %v, want [2 4]", sizes)
	}
}

// TestAggregatorShedsExpiredWaiter: a waiter whose deadline passes
// while its window coalesces is answered unsent at dispatch — the
// batch that goes out carries only live accesses.
func TestAggregatorShedsExpiredWaiter(t *testing.T) {
	backend := &gatedBackend{entered: make(chan struct{}, 1)}
	agg := NewAggregator(AggregatorConfig{Window: 40 * time.Millisecond, MaxBatch: 64}, backend)

	var wg sync.WaitGroup
	wg.Add(1)
	var expiredErr error
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		_, _, expiredErr = agg.AccessContext(ctx, OpRead, "dead", nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for agg.Stats().Accesses == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first access never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	v, _, err := agg.Access(OpRead, "live", nil)
	wg.Wait()
	if err != nil {
		t.Fatalf("live access: %v", err)
	}
	if v == nil {
		t.Error("live access returned no value")
	}
	if !IsDeadlineExpired(expiredErr) {
		t.Errorf("expired waiter err = %v, want deadline-expired", expiredErr)
	}
	if st := agg.Stats(); st.Expired != 1 {
		t.Errorf("Expired = %d, want 1", st.Expired)
	}
	if sizes := backend.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Errorf("batch sizes = %v, want [1] (expired waiter shed before send)", sizes)
	}
}

// TestRouterBusyBreaker: consecutive busy rejections bench a member
// behind fail-fast busies — no wire traffic — and the first access
// after the retry-after window is the readmission probe. The member is
// never evicted from the ring (benching must not move range ownership).
func TestRouterBusyBreaker(t *testing.T) {
	const retryAfter = 60 * time.Millisecond
	s := transport.NewServer()
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	s.Handle(MsgClientAccess, func(context.Context, []byte) ([]byte, error) {
		entered <- struct{}{}
		<-gate
		return nil, errors.New("occupier done")
	})
	s.LimitAdmission(transport.AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: retryAfter})
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	t.Cleanup(func() { close(gate) })

	// Occupy the single admission slot so every routed access sheds.
	raw, err := transport.Dial(l.Dial, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	go raw.Call(MsgClientAccess, []byte("occupy"))
	<-entered

	router, err := NewRouter([]RouterMember{{Name: "p0", Dial: l.Dial}}, RouterOptions{
		Client:      transport.Options{PoolSize: 1, Retry: transport.RetryPolicy{Attempts: 1}},
		BusyBreaker: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	// Two busy rejections trip the breaker.
	for i := 0; i < 2; i++ {
		_, _, err := router.Access(OpRead, "k", nil)
		if !transport.IsBusy(err) || transport.Ambiguous(err) {
			t.Fatalf("access %d: err = %v, want definite busy", i, err)
		}
	}
	shedsAtTrip := s.AdmissionStats().Shed

	// Benched: accesses fail fast with busy and produce no wire traffic.
	_, _, err = router.Access(OpRead, "k", nil)
	var be *transport.BusyError
	if !errors.As(err, &be) {
		t.Fatalf("benched access err = %v, want *BusyError", err)
	}
	if be.RetryAfter <= 0 || be.RetryAfter > retryAfter {
		t.Errorf("benched RetryAfter = %v, want within (0, %v]", be.RetryAfter, retryAfter)
	}
	if got := s.AdmissionStats().Shed; got != shedsAtTrip {
		t.Errorf("server sheds moved %d -> %d during bench; benched access must not reach the wire", shedsAtTrip, got)
	}

	// After the window the next access is the readmission probe: it
	// reaches the (still saturated) server again.
	time.Sleep(retryAfter + 20*time.Millisecond)
	_, _, err = router.Access(OpRead, "k", nil)
	if !transport.IsBusy(err) {
		t.Fatalf("probe access err = %v, want busy (server still saturated)", err)
	}
	if got := s.AdmissionStats().Shed; got != shedsAtTrip+1 {
		t.Errorf("server sheds after probe = %d, want %d (probe must reach the wire)", got, shedsAtTrip+1)
	}
}
