package core

import (
	"context"
	"testing"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/kvstore"
)

// The server-side handlers parse payloads from an untrusted network.
// Arbitrary bytes must produce errors, never panics or state
// corruption.

func seededLBLStore(f *testing.F) (*LBLServer, []byte) {
	f.Helper()
	store := kvstore.New()
	srv := NewLBLServer(store)
	proxy, err := NewLBLProxy(LBLConfig{ValueSize: 4, Mode: LBLPointPermute}, prf.NewRandom(), nil)
	if err != nil {
		f.Fatal(err)
	}
	ek, rec, err := proxy.BuildRecord("k", []byte{1, 2, 3, 4})
	if err != nil {
		f.Fatal(err)
	}
	store.Put(ek, rec)
	// A well-formed request as fuzz seed.
	req, err := proxy.buildRequest(OpRead, "k", nil, 0)
	if err != nil {
		f.Fatal(err)
	}
	return srv, req
}

func FuzzLBLServerPayload(f *testing.F) {
	srv, seed := seededLBLStore(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 17))
	f.Fuzz(func(t *testing.T, payload []byte) {
		// Errors are expected; panics are bugs.
		srv.handleAccess(context.Background(), payload) //nolint:errcheck
	})
}

func FuzzTEEServerPayload(f *testing.F) {
	store := kvstore.New()
	srv, err := NewTEEServer(store, 0)
	if err != nil {
		f.Fatal(err)
	}
	store.Put("0123456789abcdef", []byte("sealed-record"))
	f.Add([]byte("0123456789abcdef\x05aaaaa\x05bbbbb"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		srv.handleAccess(context.Background(), payload) //nolint:errcheck
	})
}

func FuzzLoaderPayload(f *testing.F) {
	store := kvstore.New()
	f.Add([]byte{1, 1, 'k', 1, 'v'})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		// Reconstruct the loader handler logic through a server the
		// same way RegisterLoader does, via a direct call.
		handler := loaderHandler(store)
		handler(context.Background(), payload) //nolint:errcheck
	})
}

func FuzzLBLRecordParse(f *testing.F) {
	f.Add([]byte{byte(LBLPointPermute)}, uint16(4))
	f.Add([]byte{}, uint16(1))
	f.Fuzz(func(t *testing.T, raw []byte, groups uint16) {
		g := int(groups)%64 + 1
		parseLBLRecord(raw, LBLPointPermute, g) //nolint:errcheck
		parseLBLRecord(raw, LBLBasic, g)        //nolint:errcheck
		parseLBLRecord(raw, LBLWide, g)         //nolint:errcheck
	})
}
