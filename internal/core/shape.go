package core

import (
	"ortoa/internal/crypto/prf"
	"ortoa/internal/wire"
)

// ShapeClassify is the transport.ShapeClassifier for the ORTOA message
// set: it maps each access frame to the public parameters its length
// is allowed to depend on, so the ShapeAuditor can pin "all access
// frames of a given class are byte-identical in length" as a live
// invariant (§2.2, §5.3.2).
//
//   - MsgLBLAccess / MsgLBLAccessBatch: class folds the table geometry
//     (mode, group count, entry length — all in the clear in the frame)
//     and the batch size. Requests are strict; single-access responses
//     (a fixed block of labels) are strict too, while batch responses
//     carry per-key error strings and are only distribution-tracked.
//   - MsgTEEAccess: fixed-size sealed request and response per
//     deployment; strict both ways.
//   - Everything else is observed but never length-checked: MsgClientAccess
//     is the client→proxy hop inside the trust boundary, where request
//     lengths legitimately differ between reads and writes; the 2RTT
//     baseline leaks operation types by design; FHE ciphertext sizes
//     vary with degree growth; loads and setup messages are unbounded.
func ShapeClassify(msgType byte, payload []byte) (class uint64, strictReq, strictResp bool) {
	switch msgType {
	case MsgLBLAccess:
		r := wire.NewReader(payload)
		r.Raw(prf.Size)
		r.Raw(lblClaimLen) // fixed-width ownership claim (epoch.go)
		geo, err := readGeometry(r)
		if err != nil {
			return 0, false, false
		}
		return lblShapeClass(geo, 1), true, true
	case MsgLBLAccessBatch:
		r := wire.NewReader(payload)
		geo, err := readGeometry(r)
		n := r.Uvarint()
		if err != nil || r.Err() != nil {
			return 0, false, false
		}
		return lblShapeClass(geo, n), true, false
	case MsgLBLAccessStream:
		return streamShapeClassify(payload)
	case MsgTEEAccess:
		return 0, true, true
	case MsgEpochClaim:
		// Ownership claims are fixed-width both ways (epoch.go), and
		// carry no secrets — but pinning them strict proves failover
		// traffic is as shape-invariant as access traffic.
		return 0, true, true
	}
	return 0, false, false
}

// streamShapeClassify classifies one frame of a chunked stream
// (wire/stream.go). Every segment header field is fixed-width and
// public (segment kind, sub-type, geometry, chunk index, element
// count), so every stream request frame is strict: within a class the
// length is fully determined. The single logical response rides on the
// begin frame's class — strict for single accesses (a fixed label
// block), distribution-tracked for batches (per-key error strings),
// exactly like the monolithic encodings.
func streamShapeClassify(payload []byte) (uint64, bool, bool) {
	r := wire.NewReader(payload)
	kind := r.Byte()
	switch kind {
	case wire.StreamBegin:
		sub := r.Byte()
		if sub == wire.StreamSingle {
			r.Raw(prf.Size)
			r.Raw(lblClaimLen)
		}
		mode := r.Byte()
		groups := r.Uint32()
		if r.Err() != nil {
			return 0, false, false
		}
		return streamShapeClass(kind, sub, mode, groups, 0), true, sub == wire.StreamSingle
	case wire.StreamChunk:
		sub, mode, groups, _, count := wire.ReadStreamChunkHeader(r)
		if r.Err() != nil {
			return 0, false, false
		}
		// The chunk index is deliberately not folded in: all chunks of
		// one class must be the same length, and merging indices makes
		// the auditor check exactly that. Only the final short chunk
		// differs, and its smaller count gives it its own class.
		return streamShapeClass(kind, sub, mode, groups, uint64(count)), true, false
	case wire.StreamEnd:
		sub := r.Byte()
		chunks := r.Uint32()
		if r.Err() != nil {
			return 0, false, false
		}
		return streamShapeClass(kind, sub, 0, 0, uint64(chunks)), true, false
	}
	return 0, false, false
}

// streamShapeClass packs a stream frame's public parameters into one
// class value, disjoint from lblShapeClass by the 0xA tag in the top
// nibble. Fields occupy non-overlapping bit ranges for every realistic
// configuration (groups < 2^24, count ≤ max(groups, batch size)).
func streamShapeClass(kind, sub, mode byte, groups uint32, n uint64) uint64 {
	return uint64(0xA)<<60 ^ uint64(kind)<<56 ^ uint64(sub)<<52 ^ uint64(mode)<<48 ^ uint64(groups)<<24 ^ n
}

// lblShapeClass packs the public geometry parameters and batch size
// into one class value. Collisions would only ever merge classes —
// which can produce a false alarm, never mask a real divergence — and
// the fields are small enough that the packing is collision-free for
// every realistic configuration.
func lblShapeClass(geo tableGeometry, n uint64) uint64 {
	return uint64(geo.mode)<<56 ^ uint64(geo.groups)<<32 ^ uint64(geo.entryLen)<<24 ^ n
}
