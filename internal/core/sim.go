package core

import (
	"crypto/rand"
	"fmt"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/wire"
)

// This file implements the Ideal-world simulators of the paper's
// ROR-RW security analysis (§7, §11). A simulator sees only the key of
// each access — never the operation type or the value — and emits a
// server-bound message. ROR-RW security says the real protocol's
// transcripts are computationally indistinguishable from the
// simulator's; the testable projection of that claim (exercised in
// sim_test.go) is that real read transcripts, real write transcripts,
// and simulated transcripts are structurally identical: same message
// count, same sizes, same framing.

// An LBLSimulator is the §11.2 simulator (Figure 7): it keeps one
// random "old label" per group per key and, per access, emits one
// valid encryption (a fresh random label under the stored old label)
// and 2^y−1 encryptions of zeros under fresh random labels, shuffled.
type LBLSimulator struct {
	cfg   LBLConfig
	state map[string][][]byte // key → stored per-group labels
}

// NewLBLSimulator returns a simulator for cfg.
func NewLBLSimulator(cfg LBLConfig) (*LBLSimulator, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &LBLSimulator{cfg: cfg, state: make(map[string][][]byte)}, nil
}

func randomLabel() ([]byte, error) {
	l := make([]byte, prf.Size)
	if _, err := rand.Read(l); err != nil {
		return nil, err
	}
	return l, nil
}

// labelState returns (creating on first use) the simulator's stored
// per-group labels for key.
func (s *LBLSimulator) labelState(key string) ([][]byte, error) {
	if labels, ok := s.state[key]; ok {
		return labels, nil
	}
	labels := make([][]byte, s.cfg.Groups())
	for g := range labels {
		l, err := randomLabel()
		if err != nil {
			return nil, err
		}
		labels[g] = l
	}
	s.state[key] = labels
	return labels, nil
}

// Simulate produces a server-bound access message for key, shaped
// exactly like a real LBL request, from dummy values only.
func (s *LBLSimulator) Simulate(key string) ([]byte, error) {
	cfg := s.cfg
	groups := cfg.Groups()
	labels, err := s.labelState(key)
	if err != nil {
		return nil, err
	}

	nEntries := cfg.Mode.entries()
	entryLen := cfg.Mode.entryLen()
	plainLen := cfg.Mode.entryPlainLen()

	w := wire.NewWriter(cfg.RequestBytesPerAccess())
	// The simulator does not know the PRF key; a random encoded key of
	// the right size stands in (the adversary sees PRF outputs either
	// way).
	ek := make([]byte, prf.Size)
	if _, err := rand.Read(ek); err != nil {
		return nil, err
	}
	w.Raw(ek)
	// The fixed-width ownership claim (epoch.go). The simulator knows
	// the key — range placement is routing data, the same datum sharded
	// deployments already reveal by which server a request reaches —
	// and stamps the single-proxy epoch 0. Fixed width keeps simulated
	// and real frames structurally identical whatever the epoch.
	putClaim(w.Extend(lblClaimLen), RangeOf(key), 0)
	w.Byte(byte(cfg.Mode))
	w.Uvarint(uint64(groups))
	w.Uvarint(uint64(entryLen))

	// Scratch shared across groups: the valid entry's plaintext, one
	// junk-key buffer, the all-zeros junk plaintext, and the slot
	// permutation. Entries are sealed directly into the frame at
	// permuted slots, mirroring the real proxy's build — per group only
	// the retained new label allocates.
	shuf := newCryptoShuffler()
	sealer := secretbox.NewLabelSealer()
	table := w.Extend(cfg.TableBytes())
	plain := make([]byte, plainLen)
	junkKey := make([]byte, prf.Size)
	zeroPlain := make([]byte, plainLen)
	var perm [16]int
	for g := 0; g < groups; g++ {
		nl, err := randomLabel()
		if err != nil {
			return nil, err
		}
		// Like the real proxy's step 1.5, the simulator's entry order
		// must be cryptographically unpredictable — the single openable
		// entry is generated first, so a guessable placement would
		// distinguish simulated transcripts.
		shuf.perm(nEntries, perm[:])
		slots := table[g*nEntries*entryLen : (g+1)*nEntries*entryLen]
		// One valid entry: Enc_{ol}(nl ‖ pad).
		copy(plain, nl)
		if err := sealer.SealInto(slots[perm[0]*entryLen:(perm[0]+1)*entryLen], labels[g], plain); err != nil {
			return nil, err
		}
		// 2^y − 1 entries of zeros under fresh labels the server
		// cannot open.
		for e := 1; e < nEntries; e++ {
			if _, err := rand.Read(junkKey); err != nil {
				return nil, err
			}
			slot := perm[e]
			if err := sealer.SealInto(slots[slot*entryLen:(slot+1)*entryLen], junkKey, zeroPlain); err != nil {
				return nil, err
			}
		}
		// The simulator's server now stores the new label.
		labels[g] = nl
	}
	return w.Bytes(), nil
}

// SimulateStream produces the frame payload sequence of one streamed
// access (MsgLBLAccessStream begin/chunk/end, wire/stream.go) for key,
// shaped exactly like the real proxy's stream, from dummy values only.
// The ROR-RW projection extends frame-by-frame: real read streams,
// real write streams, and simulated streams have identical frame
// counts, per-frame lengths, and headers.
func (s *LBLSimulator) SimulateStream(key string) ([][]byte, error) {
	cfg := s.cfg
	groups := cfg.Groups()
	labels, err := s.labelState(key)
	if err != nil {
		return nil, err
	}

	nEntries := cfg.Mode.entries()
	entryLen := cfg.Mode.entryLen()
	plainLen := cfg.Mode.entryPlainLen()
	cg := cfg.streamChunkGroups()
	nChunks := cfg.streamChunks()

	frames := make([][]byte, 0, nChunks+2)
	bw := wire.NewWriter(streamBeginSingleLen)
	bw.Byte(wire.StreamBegin)
	bw.Byte(wire.StreamSingle)
	ek := make([]byte, prf.Size)
	if _, err := rand.Read(ek); err != nil {
		return nil, err
	}
	bw.Raw(ek)
	putClaim(bw.Extend(lblClaimLen), RangeOf(key), 0)
	bw.Byte(byte(cfg.Mode))
	bw.Uint32(uint32(groups))
	bw.Uint32(uint32(entryLen))
	bw.Uint32(uint32(cg))
	bw.Uint32(uint32(nChunks))
	frames = append(frames, bw.Bytes())

	shuf := newCryptoShuffler()
	sealer := secretbox.NewLabelSealer()
	plain := make([]byte, plainLen)
	junkKey := make([]byte, prf.Size)
	zeroPlain := make([]byte, plainLen)
	var perm [16]int
	for i := 0; i < nChunks; i++ {
		g0 := i * cg
		g1 := g0 + cg
		if g1 > groups {
			g1 = groups
		}
		cw := wire.NewWriter(wire.StreamChunkHeaderLen + (g1-g0)*nEntries*entryLen)
		wire.PutStreamChunkHeader(cw, wire.StreamSingle, byte(cfg.Mode), uint32(groups), uint32(i), uint32(g1-g0))
		table := cw.Extend((g1 - g0) * nEntries * entryLen)
		for g := g0; g < g1; g++ {
			nl, err := randomLabel()
			if err != nil {
				return nil, err
			}
			shuf.perm(nEntries, perm[:])
			slots := table[(g-g0)*nEntries*entryLen : (g-g0+1)*nEntries*entryLen]
			copy(plain, nl)
			if err := sealer.SealInto(slots[perm[0]*entryLen:(perm[0]+1)*entryLen], labels[g], plain); err != nil {
				return nil, err
			}
			for e := 1; e < nEntries; e++ {
				if _, err := rand.Read(junkKey); err != nil {
					return nil, err
				}
				slot := perm[e]
				if err := sealer.SealInto(slots[slot*entryLen:(slot+1)*entryLen], junkKey, zeroPlain); err != nil {
					return nil, err
				}
			}
			labels[g] = nl
		}
		frames = append(frames, cw.Bytes())
	}
	ew := wire.NewWriter(wire.StreamEndLen)
	wire.PutStreamEnd(ew, wire.StreamSingle, uint32(nChunks))
	frames = append(frames, ew.Bytes())
	return frames, nil
}

// A TEESimulator emits TEE-ORTOA-shaped requests from dummy values
// (§11.1): an encryption of a dummy selector and a dummy value under
// an unrelated key.
type TEESimulator struct {
	cfg TEEConfig
	box *secretbox.Box
}

// NewTEESimulator returns a simulator for cfg.
func NewTEESimulator(cfg TEEConfig) (*TEESimulator, error) {
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("core: TEE simulator value size %d", cfg.ValueSize)
	}
	box, err := secretbox.NewBox(secretbox.NewRandomKey())
	if err != nil {
		return nil, err
	}
	return &TEESimulator{cfg: cfg, box: box}, nil
}

// Simulate produces a server-bound access message for key.
func (s *TEESimulator) Simulate(key string) ([]byte, error) {
	ek := make([]byte, prf.Size)
	if _, err := rand.Read(ek); err != nil {
		return nil, err
	}
	dummy := make([]byte, s.cfg.ValueSize)
	if _, err := rand.Read(dummy); err != nil {
		return nil, err
	}
	w := wire.NewWriter(prf.Size + 2*s.cfg.ValueSize)
	w.Raw(ek)
	w.BytesPfx(s.box.Seal([]byte{0}))
	w.BytesPfx(s.box.Seal(dummy))
	return w.Bytes(), nil
}
