package core

import (
	"fmt"
	"testing"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// BenchmarkLBLBuildRequest isolates the proxy's table construction
// (steps 1.1–1.5 of §5.2) — the "p" term of the §6.3.2 decision rule.
func BenchmarkLBLBuildRequest(b *testing.B) {
	for _, mode := range allLBLModes() {
		for _, size := range []int{10, 160, 600} {
			b.Run(fmt.Sprintf("%v/%dB", mode, size), func(b *testing.B) {
				proxy, err := NewLBLProxy(LBLConfig{ValueSize: size, Mode: mode}, prf.NewRandom(), nil)
				if err != nil {
					b.Fatal(err)
				}
				value := make([]byte, size)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := proxy.buildRequest(OpWrite, "k", value, uint64(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLBLServerDecrypt isolates the server's per-access work: the
// decrypt-and-install pass over the encryption table (step 2 of §5.2).
func BenchmarkLBLServerDecrypt(b *testing.B) {
	for _, mode := range allLBLModes() {
		b.Run(mode.String(), func(b *testing.B) {
			r, proxy, _ := newBenchLBL(b, mode, 160)
			// Pre-build b.N requests at successive counters so the
			// timed loop is server-side only... a request can only be
			// applied once, so measure full round trips minus a
			// precomputed build cost instead: here we simply measure
			// the full access as a proxy for server work under
			// loopback (network-free).
			for i := 0; i < b.N; i++ {
				if _, _, err := proxy.Access(OpRead, "bench", nil); err != nil {
					b.Fatal(err)
				}
			}
			_ = r
		})
	}
}

// BenchmarkLBLAccess160B measures a full in-process LBL access
// (loopback link) with instrumentation off vs on — the observability
// overhead budget is ≤2%.
func BenchmarkLBLAccess160B(b *testing.B) {
	for _, instrumented := range []bool{false, true} {
		name := "bare"
		if instrumented {
			name = "instrumented"
		}
		b.Run(name, func(b *testing.B) {
			r, proxy, srv := newBenchLBL(b, LBLPointPermute, 160)
			if instrumented {
				reg := obs.NewRegistry()
				proxy.Instrument(reg)
				srv.Instrument(reg)
				r.client.Instrument(reg)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := proxy.Access(OpRead, "bench", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func newBenchLBL(b *testing.B, mode LBLMode, valueSize int) (*rig, *LBLProxy, *LBLServer) {
	b.Helper()
	r := &rig{store: kvstore.New(), server: transport.NewServer()}
	l := netsim.Listen(netsim.Loopback)
	go r.server.Serve(l)
	b.Cleanup(func() { r.server.Close() })
	c, err := transport.Dial(l.Dial, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	r.client = c

	srv := NewLBLServer(r.store)
	srv.Register(r.server)
	proxy, err := NewLBLProxy(LBLConfig{ValueSize: valueSize, Mode: mode}, prf.NewRandom(), c)
	if err != nil {
		b.Fatal(err)
	}
	ek, rec, err := proxy.BuildRecord("bench", make([]byte, valueSize))
	if err != nil {
		b.Fatal(err)
	}
	r.store.Put(ek, rec)
	return r, proxy, srv
}

// BenchmarkTableBuildKernel1KiB measures the headline perf kernel:
// 1 KiB basic-mode encryption-table construction across worker counts.
// CI runs this as a smoke check; BENCH_5.json records the calibrated
// numbers (see `make bench-json`).
func BenchmarkTableBuildKernel1KiB(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			k, err := NewTableBuildKernel(LBLConfig{ValueSize: 1024, Mode: LBLBasic}, workers)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(k.TableBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := k.Op(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecoverKernel1KiB measures the server decrypt/install pass
// plus proxy label recovery against prebuilt tables; table construction
// happens outside the timer.
func BenchmarkRecoverKernel1KiB(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			k, err := NewRecoverKernel(LBLConfig{ValueSize: 1024, Mode: LBLBasic}, 64, workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			left := 0
			for i := 0; i < b.N; i++ {
				if left == 0 {
					b.StopTimer()
					if err := k.Prepare(); err != nil {
						b.Fatal(err)
					}
					left = k.Window()
					b.StartTimer()
				}
				if err := k.Op(); err != nil {
					b.Fatal(err)
				}
				left--
			}
		})
	}
}
