package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/obs"
)

// newLBLReconcile builds an LBL deployment whose proxy may reconcile
// counter desync by probing up to scan steps.
func newLBLReconcile(t *testing.T, mode LBLMode, scan int, f *prf.PRF) (*rig, *LBLProxy) {
	t.Helper()
	r := newRig(t)
	srv := NewLBLServer(r.store)
	srv.Register(r.server)
	proxy, err := NewLBLProxy(LBLConfig{ValueSize: 4, Mode: mode, ReconcileScan: scan}, f, r.client)
	if err != nil {
		t.Fatal(err)
	}
	return r, proxy
}

// serverRecord reads the raw record bytes the server holds for key.
func serverRecord(t *testing.T, r *rig, p *LBLProxy, key string) []byte {
	t.Helper()
	ek := p.prf.EncodeKey(key)
	rec, err := r.store.Get(string(ek[:]))
	if err != nil {
		t.Fatalf("server record for %q: %v", key, err)
	}
	return rec
}

// regressServer overwrites the server's record for key with an older
// snapshot, simulating a server that crashed under a lossy fsync
// policy and recovered older durable state.
func regressServer(t *testing.T, r *rig, p *LBLProxy, key string, rec []byte) {
	t.Helper()
	ek := p.prf.EncodeKey(key)
	if err := r.store.Put(string(ek[:]), rec); err != nil {
		t.Fatal(err)
	}
}

func mustWrite(t *testing.T, p *LBLProxy, key string, value []byte) {
	t.Helper()
	if _, _, err := p.Access(OpWrite, key, value); err != nil {
		t.Fatalf("write %q: %v", key, err)
	}
}

func TestReconcileAfterServerRollback(t *testing.T) {
	for _, mode := range allLBLModes() {
		t.Run(mode.String(), func(t *testing.T) {
			r, proxy := newLBLReconcile(t, mode, 8, prf.NewRandom())
			loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})

			mustWrite(t, proxy, "k", []byte{1, 1, 1, 1})
			mustWrite(t, proxy, "k", []byte{2, 2, 2, 2})
			mustWrite(t, proxy, "k", []byte{3, 3, 3, 3})
			old := serverRecord(t, r, proxy, "k") // counter 3, value 3333

			mustWrite(t, proxy, "k", []byte{4, 4, 4, 4})
			if _, _, err := proxy.Access(OpRead, "k", nil); err != nil {
				t.Fatal(err)
			}
			// The server "crashes" and loses the last two rounds: its
			// record regresses to counter 3 while the proxy believes 5.
			regressServer(t, r, proxy, "k", old)

			got, _, err := proxy.Access(OpRead, "k", nil)
			if err != nil {
				t.Fatalf("access after rollback did not reconcile: %v", err)
			}
			// The durable value is the one from before the lost rounds.
			if !bytes.Equal(got, []byte{3, 3, 3, 3}) {
				t.Errorf("reconciled read = %v, want the rolled-back value 3333", got)
			}
			// The schedule has re-converged: ordinary traffic flows.
			mustWrite(t, proxy, "k", []byte{5, 5, 5, 5})
			got, _, err = proxy.Access(OpRead, "k", nil)
			if err != nil || !bytes.Equal(got, []byte{5, 5, 5, 5}) {
				t.Errorf("post-reconcile write/read = %v, %v", got, err)
			}
		})
	}
}

func TestReconcileAfterProxyStateLoss(t *testing.T) {
	f := prf.NewRandom()
	r, proxy := newLBLReconcile(t, LBLPointPermute, 8, f)
	loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})

	mustWrite(t, proxy, "k", []byte{1, 1, 1, 1})
	mustWrite(t, proxy, "k", []byte{2, 2, 2, 2})
	var snap bytes.Buffer
	if err := proxy.SaveCounters(&snap); err != nil { // counter 2
		t.Fatal(err)
	}
	mustWrite(t, proxy, "k", []byte{3, 3, 3, 3})
	mustWrite(t, proxy, "k", []byte{4, 4, 4, 4}) // server now at 4

	// A replacement proxy restarts from the stale snapshot: its counter
	// (2) trails the server (4) by the save-to-crash window.
	fresh, err := NewLBLProxy(proxy.Config(), f, r.client)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadCounters(&snap); err != nil {
		t.Fatal(err)
	}
	got, _, err := fresh.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatalf("access after proxy state loss did not reconcile: %v", err)
	}
	if !bytes.Equal(got, []byte{4, 4, 4, 4}) {
		t.Errorf("reconciled read = %v, want the server's live value 4444", got)
	}
	mustWrite(t, fresh, "k", []byte{5, 5, 5, 5})
	if got, _, err := fresh.Access(OpRead, "k", nil); err != nil || !bytes.Equal(got, []byte{5, 5, 5, 5}) {
		t.Errorf("post-reconcile write/read = %v, %v", got, err)
	}
}

func TestReconcileDisabledPreservesFailure(t *testing.T) {
	r, proxy := newLBLReconcile(t, LBLSpaceOpt, 0, prf.NewRandom())
	loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})
	old := serverRecord(t, r, proxy, "k")
	mustWrite(t, proxy, "k", []byte{1, 1, 1, 1})
	regressServer(t, r, proxy, "k", old)

	if _, _, err := proxy.Access(OpRead, "k", nil); !isStaleRound(err) {
		t.Errorf("with reconciliation off, rollback access = %v, want stale rejection", err)
	}
}

func TestReconcileScanBudgetExceeded(t *testing.T) {
	r, proxy := newLBLReconcile(t, LBLSpaceOpt, 1, prf.NewRandom())
	loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})
	old := serverRecord(t, r, proxy, "k") // counter 0
	for i := 0; i < 4; i++ {
		mustWrite(t, proxy, "k", []byte{byte(i), 0, 0, 0})
	}
	regressServer(t, r, proxy, "k", old) // desync of 4, scan budget 1

	if _, _, err := proxy.Access(OpRead, "k", nil); err == nil {
		t.Error("access succeeded despite desync beyond the scan budget")
	}
}

func TestReconcileMetrics(t *testing.T) {
	r, proxy := newLBLReconcile(t, LBLPointPermute, 8, prf.NewRandom())
	reg := obs.NewRegistry()
	proxy.Instrument(reg)
	loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})
	mustWrite(t, proxy, "k", []byte{1, 1, 1, 1})
	old := serverRecord(t, r, proxy, "k")
	mustWrite(t, proxy, "k", []byte{2, 2, 2, 2})
	regressServer(t, r, proxy, "k", old)
	if _, _, err := proxy.Access(OpRead, "k", nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf) //nolint:errcheck
	out := buf.String()
	if !strings.Contains(out, "ortoa_lbl_reconciled_keys_total 1") {
		t.Error("reconciled_keys_total not incremented")
	}
	if strings.Contains(out, "ortoa_lbl_reconcile_probes_total 0") {
		t.Error("reconcile_probes_total stayed zero through a reconciliation")
	}
}

// TestRecoveryObliviousness checks that a crash-recovery episode leaks
// no operation type: the adversary's view of a reconciliation
// triggered by a read must be identical to one triggered by a write —
// same exchange count, same message types, same sizes. Probes are
// always read-shaped and stale rejections are emitted identically for
// both op types, so the episodes must be indistinguishable.
func TestRecoveryObliviousness(t *testing.T) {
	const valueSize = 4
	episode := func(t *testing.T, op Op) []exchange {
		r, proxy := newLBLReconcile(t, LBLSpaceOpt, 8, prf.NewRandom())
		loadData(t, r, proxy, map[string][]byte{"k": {0, 0, 0, 0}})
		mustWrite(t, proxy, "k", []byte{1, 1, 1, 1})
		old := serverRecord(t, r, proxy, "k")
		mustWrite(t, proxy, "k", []byte{2, 2, 2, 2})
		mustWrite(t, proxy, "k", []byte{3, 3, 3, 3})
		regressServer(t, r, proxy, "k", old) // server at 1, proxy at 3

		// Observe only the recovery episode itself.
		var mu sync.Mutex
		var seen []exchange
		r.server.SetObserver(func(msgType byte, reqLen, respLen int) {
			mu.Lock()
			seen = append(seen, exchange{msgType, reqLen, respLen})
			mu.Unlock()
		})
		value := make([]byte, valueSize)
		var err error
		if op == OpWrite {
			_, _, err = proxy.Access(OpWrite, "k", value)
		} else {
			_, _, err = proxy.Access(OpRead, "k", nil)
		}
		if err != nil {
			t.Fatalf("%v-triggered recovery failed: %v", op, err)
		}
		return seen
	}
	reads := episode(t, OpRead)
	writes := episode(t, OpWrite)
	assertIdenticalViews(t, reads, writes)
}
