package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ortoa/internal/obs"
)

// sortExchanges orders observations the way observedRun does, so
// multisets compare positionally.
func sortExchanges(s []exchange) {
	sort.Slice(s, func(i, j int) bool {
		a, b := s[i], s[j]
		if a.msgType != b.msgType {
			return a.msgType < b.msgType
		}
		if a.reqLen != b.reqLen {
			return a.reqLen < b.reqLen
		}
		return a.respLen < b.respLen
	})
}

// newAggRig builds an LBL deployment with n loaded keys ("key-00"…)
// whose value byte i is the key index, plus an aggregator over the
// proxy with the given window config.
func newAggRig(t *testing.T, n, valueSize int, cfg AggregatorConfig) (*rig, *LBLProxy, *Aggregator) {
	t.Helper()
	r, proxy, _ := newLBL(t, LBLPointPermute, valueSize)
	data := map[string][]byte{}
	for i := 0; i < n; i++ {
		v := make([]byte, valueSize)
		v[0] = byte(i)
		data[fmt.Sprintf("key-%02d", i)] = v
	}
	loadData(t, r, proxy, data)
	agg := NewAggregator(cfg, proxy)
	t.Cleanup(agg.Close)
	return r, proxy, agg
}

// TestAggregatorCoalescesConcurrentSessions checks the core promise:
// concurrent sessions' single-key accesses land in one window, go out
// as one batch, and every session gets its own key's value back.
func TestAggregatorCoalescesConcurrentSessions(t *testing.T) {
	const n = 8
	_, _, agg := newAggRig(t, n, 4, AggregatorConfig{Window: time.Hour, MaxBatch: n})

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := agg.Access(OpRead, fmt.Sprintf("key-%02d", i), nil)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			if v[0] != byte(i) {
				t.Errorf("session %d read %v, want first byte %d", i, v, i)
			}
		}(i)
	}
	wg.Wait()

	st := agg.Stats()
	if st.Accesses != n || st.Batches != 1 {
		t.Errorf("stats = %+v, want %d accesses in 1 window", st, n)
	}
	if got := st.CoalesceRatio(); got != n {
		t.Errorf("coalesce ratio = %v, want %d", got, n)
	}
}

// TestAggregatorTimerDispatch checks the time trigger: a window that
// never fills still dispatches after Window.
func TestAggregatorTimerDispatch(t *testing.T) {
	_, _, agg := newAggRig(t, 4, 4, AggregatorConfig{Window: 2 * time.Millisecond, MaxBatch: 64})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := agg.Access(OpRead, fmt.Sprintf("key-%02d", i), nil)
			if err != nil {
				t.Errorf("session %d: %v", i, err)
			} else if v[0] != byte(i) {
				t.Errorf("session %d read %v", i, v)
			}
		}(i)
	}
	wg.Wait()
	if st := agg.Stats(); st.Accesses != 3 || st.Batches == 0 {
		t.Errorf("stats = %+v, want 3 accesses dispatched", st)
	}
}

// TestAggregatorWindowCloseRacesArrivals hammers the hand-off: tiny
// windows and a small size trigger while many sessions issue
// dependent read/write sequences, so window closes (timer and size
// triggers racing) constantly overlap new arrivals. Run under -race
// this is the aggregator's main concurrency test.
func TestAggregatorWindowCloseRacesArrivals(t *testing.T) {
	const sessions = 8
	const rounds = 6
	const valueSize = 4
	_, _, agg := newAggRig(t, sessions, valueSize,
		AggregatorConfig{Window: 200 * time.Microsecond, MaxBatch: 4})

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%02d", s)
			want := byte(s)
			for r := 0; r < rounds; r++ {
				v, _, err := agg.Access(OpRead, key, nil)
				if err != nil {
					t.Errorf("session %d round %d read: %v", s, r, err)
					return
				}
				if v[0] != want {
					t.Errorf("session %d round %d read %d, want %d", s, r, v[0], want)
					return
				}
				want = byte(s + 16 + r)
				nv := make([]byte, valueSize)
				nv[0] = want
				if _, _, err := agg.Access(OpWrite, key, nv); err != nil {
					t.Errorf("session %d round %d write: %v", s, r, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	st := agg.Stats()
	if st.Accesses != sessions*rounds*2 {
		t.Errorf("accesses = %d, want %d", st.Accesses, sessions*rounds*2)
	}
	if st.Batches == 0 || st.Rejected != 0 {
		t.Errorf("stats = %+v, want dispatched windows and no rejections", st)
	}
}

// stubBatch is a BatchAccessor that answers instantly, echoing each
// op's key as its value.
type stubBatch struct{}

func (stubBatch) AccessBatchResults(_ context.Context, ops []BatchOp) ([]BatchResult, AccessStats) {
	res := make([]BatchResult, len(ops))
	for i := range ops {
		res[i] = BatchResult{Value: []byte(ops[i].Key)}
	}
	return res, AccessStats{}
}

// TestAggregatorBackpressure fills the pending budget with parked
// accesses and checks that the next arrival is rejected rather than
// queued, and that the parked accesses still complete.
func TestAggregatorBackpressure(t *testing.T) {
	const budget = 4
	agg := NewAggregator(AggregatorConfig{Window: time.Hour, MaxBatch: 100, MaxPending: budget}, stubBatch{})

	var wg sync.WaitGroup
	for i := 0; i < budget; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := agg.Access(OpRead, fmt.Sprintf("k%d", i), nil)
			if err != nil {
				t.Errorf("parked access %d: %v", i, err)
			} else if string(v) != fmt.Sprintf("k%d", i) {
				t.Errorf("parked access %d got %q", i, v)
			}
		}(i)
	}
	// The window is an hour long, so the budget stays full until Close.
	for deadline := time.Now().Add(5 * time.Second); agg.Stats().Accesses < budget; {
		if time.Now().After(deadline) {
			t.Fatal("parked accesses never admitted")
		}
		time.Sleep(100 * time.Microsecond)
	}

	if _, _, err := agg.Access(OpRead, "overflow", nil); !errors.Is(err, ErrAggregatorOverloaded) {
		t.Fatalf("overflow access error = %v, want ErrAggregatorOverloaded", err)
	}
	if st := agg.Stats(); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	agg.Close() // flushes the parked window; every admitted access answers
	wg.Wait()

	if _, _, err := agg.Access(OpRead, "late", nil); !errors.Is(err, ErrAggregatorClosed) {
		t.Errorf("post-close access error = %v, want ErrAggregatorClosed", err)
	}
}

// TestAggregatorErrorIsolation puts two doomed accesses — an unloaded
// key and a wrong-size write — in a window with six good ones: the
// bad accesses fail individually and the rest of the window is
// unaffected.
func TestAggregatorErrorIsolation(t *testing.T) {
	const n = 8
	_, _, agg := newAggRig(t, n-2, 4, AggregatorConfig{Window: time.Hour, MaxBatch: n})

	errs := make([]error, n)
	vals := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			switch i {
			case n - 2: // never loaded
				vals[i], _, errs[i] = agg.Access(OpRead, "ghost", nil)
			case n - 1: // wrong write size
				vals[i], _, errs[i] = agg.Access(OpWrite, "key-00", []byte{1, 2})
			default:
				vals[i], _, errs[i] = agg.Access(OpRead, fmt.Sprintf("key-%02d", i), nil)
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < n-2; i++ {
		if errs[i] != nil {
			t.Errorf("good access %d failed: %v", i, errs[i])
		} else if vals[i][0] != byte(i) {
			t.Errorf("good access %d read %v", i, vals[i])
		}
	}
	if errs[n-2] == nil {
		t.Error("ghost-key access succeeded, want error")
	}
	if !errors.Is(errs[n-1], ErrValueSize) {
		t.Errorf("wrong-size write error = %v, want ErrValueSize", errs[n-1])
	}
	if st := agg.Stats(); st.Batches != 1 {
		t.Errorf("batches = %d, want the whole window in one dispatch", st.Batches)
	}
}

// TestAccessBatchResultsPerOpErrors exercises the per-op outcome API
// directly: valid and invalid ops mixed in one call.
func TestAccessBatchResultsPerOpErrors(t *testing.T) {
	r, proxy, _ := newLBL(t, LBLPointPermute, 4)
	loadData(t, r, proxy, map[string][]byte{
		"alpha": {1, 0, 0, 0},
		"beta":  {2, 0, 0, 0},
	})
	res, _ := proxy.AccessBatchResults(context.Background(), []BatchOp{
		{Op: OpRead, Key: "alpha"},
		{Op: OpWrite, Key: "beta", Value: []byte{9}}, // wrong size
		{Op: OpRead, Key: "missing"},
		{Op: OpWrite, Key: "beta", Value: []byte{7, 0, 0, 0}},
		{Op: Op(99), Key: "alpha"},
		{Op: OpRead, Key: "beta"},
	})
	if res[0].Err != nil || res[0].Value[0] != 1 {
		t.Errorf("op 0 = %+v, want alpha's value", res[0])
	}
	if !errors.Is(res[1].Err, ErrValueSize) {
		t.Errorf("op 1 err = %v, want ErrValueSize", res[1].Err)
	}
	if res[2].Err == nil {
		t.Error("op 2 (missing key) succeeded, want error")
	}
	if res[3].Err != nil || !bytes.Equal(res[3].Value, []byte{7, 0, 0, 0}) {
		t.Errorf("op 3 = %+v, want written value echoed", res[3])
	}
	if res[4].Err == nil {
		t.Error("op 4 (unknown op) succeeded, want error")
	}
	// Ops 3 and 5 hit the same key, so they ran in counter-ordered
	// waves; the read in the later wave sees the write.
	if res[5].Err != nil || res[5].Value[0] != 7 {
		t.Errorf("op 5 = %+v, want beta's new value", res[5])
	}
}

// TestObliviousnessAggregatedWindow checks the aggregation security
// argument at the adversary's boundary: the server's view of one
// aggregated window of n concurrent single-key sessions is identical
// to its view of a natural AccessBatch of n keys — and aggregated
// read windows are indistinguishable from aggregated write windows.
func TestObliviousnessAggregatedWindow(t *testing.T) {
	const n = 6
	const valueSize = 8

	observe := func(r *rig) (*[]exchange, *sync.Mutex) {
		var mu sync.Mutex
		seen := &[]exchange{}
		r.server.SetObserver(func(msgType byte, reqLen, respLen int) {
			mu.Lock()
			*seen = append(*seen, exchange{msgType, reqLen, respLen})
			mu.Unlock()
		})
		return seen, &mu
	}
	sorted := func(seen []exchange) []exchange {
		out := append([]exchange(nil), seen...)
		sortExchanges(out)
		return out
	}

	aggregatedRun := func(t *testing.T, op Op) []exchange {
		r, _, agg := newAggRig(t, n, valueSize, AggregatorConfig{Window: time.Hour, MaxBatch: n})
		seen, _ := observe(r)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var err error
				if op == OpWrite {
					v := make([]byte, valueSize)
					v[0] = byte(i + 100)
					_, _, err = agg.Access(OpWrite, fmt.Sprintf("key-%02d", i), v)
				} else {
					_, _, err = agg.Access(OpRead, fmt.Sprintf("key-%02d", i), nil)
				}
				if err != nil {
					t.Errorf("session %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		return sorted(*seen)
	}

	naturalRun := func(t *testing.T) []exchange {
		r, proxy, _ := newLBL(t, LBLPointPermute, valueSize)
		data := map[string][]byte{}
		for i := 0; i < n; i++ {
			data[fmt.Sprintf("key-%02d", i)] = make([]byte, valueSize)
		}
		loadData(t, r, proxy, data)
		seen, _ := observe(r)
		ops := make([]BatchOp, n)
		for i := range ops {
			ops[i] = BatchOp{Op: OpRead, Key: fmt.Sprintf("key-%02d", i)}
		}
		if _, _, err := proxy.AccessBatch(ops); err != nil {
			t.Fatal(err)
		}
		return sorted(*seen)
	}

	aggReads := aggregatedRun(t, OpRead)
	aggWrites := aggregatedRun(t, OpWrite)
	natural := naturalRun(t)

	// Aggregated window vs natural batch of the same size: identical.
	assertIdenticalViews(t, aggReads, natural)
	// Aggregated reads vs aggregated writes: identical.
	assertIdenticalViews(t, aggReads, aggWrites)
}

// TestAggregatorSlowlogWindowMetadata checks the slowlog attribution
// fix: an aggregated access's entry names the window it rode
// (window=N) and reports coalescing latency as its own window_wait
// stage plus a batch_rpc stage — the wait is never folded into rpc.
func TestAggregatorSlowlogWindowMetadata(t *testing.T) {
	const n = 4
	_, _, agg := newAggRig(t, n, 4, AggregatorConfig{Window: time.Hour, MaxBatch: n})
	reg := obs.NewRegistry()
	agg.Instrument(reg)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := agg.Access(OpRead, fmt.Sprintf("key-%02d", i), nil); err != nil {
				t.Errorf("session %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	slow := reg.SlowLog("agg_access", 32)
	entries := slow.Entries()
	if len(entries) != n {
		t.Fatalf("slowlog retained %d entries, want %d", len(entries), n)
	}
	for _, e := range entries {
		if !strings.Contains(e.Label, fmt.Sprintf("window=%d", n)) {
			t.Fatalf("entry label %q missing window size", e.Label)
		}
		stages := map[string]time.Duration{}
		var sum time.Duration
		for _, s := range e.Stages {
			stages[s.Name] = s.D
			sum += s.D
		}
		if _, ok := stages["window_wait"]; !ok {
			t.Fatalf("entry %q has no window_wait stage: %+v", e.Label, e.Stages)
		}
		if _, ok := stages["batch_rpc"]; !ok {
			t.Fatalf("entry %q has no batch_rpc stage: %+v", e.Label, e.Stages)
		}
		if sum != e.Total {
			t.Fatalf("entry %q stages sum to %v but total is %v: latency misattributed", e.Label, sum, e.Total)
		}
	}
}
