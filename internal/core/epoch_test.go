package core

import (
	"bytes"
	"fmt"
	"testing"

	"ortoa/internal/crypto/prf"
)

// newLBLPeers returns n proxies sharing one PRF secret and one server —
// the multi-proxy deployment shape: any peer can serve any key, and the
// epoch fence arbitrates which one may.
func newLBLPeers(t *testing.T, n int, cfg LBLConfig) (*rig, []*LBLProxy, *LBLServer) {
	t.Helper()
	r := newRig(t)
	srv := NewLBLServer(r.store)
	srv.Register(r.server)
	f := prf.NewRandom()
	peers := make([]*LBLProxy, n)
	for i := range peers {
		p, err := NewLBLProxy(cfg, f, r.client)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	return r, peers, srv
}

func TestEpochClaimBumpsMonotonically(t *testing.T) {
	_, peers, srv := newLBLPeers(t, 2, LBLConfig{ValueSize: 4, Mode: LBLPointPermute})
	a, b := peers[0], peers[1]
	const rid = uint32(7)
	e1, err := a.ClaimRange(rid)
	if err != nil {
		t.Fatal(err)
	}
	if e1 == 0 {
		t.Fatalf("first claim granted epoch 0")
	}
	e2, err := b.ClaimRange(rid)
	if err != nil {
		t.Fatal(err)
	}
	if e2 <= e1 {
		t.Fatalf("second claim epoch %d not past first %d", e2, e1)
	}
	if got := srv.RangeEpoch(rid); got != e2 {
		t.Fatalf("server range epoch %d, want %d", got, e2)
	}
	if a.rangeEpoch(rid) != e1 || b.rangeEpoch(rid) != e2 {
		t.Fatalf("proxy epochs a=%d b=%d, want %d/%d", a.rangeEpoch(rid), b.rangeEpoch(rid), e1, e2)
	}
}

func TestEpochFenceRejectsStaleOwner(t *testing.T) {
	r, peers, _ := newLBLPeers(t, 2, LBLConfig{ValueSize: 4, Mode: LBLPointPermute, ReconcileScan: 8})
	a, b := peers[0], peers[1]
	loadData(t, r, a, map[string][]byte{"k": {1, 2, 3, 4}})
	if _, _, err := a.Access(OpWrite, "k", []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}

	// b adopts k's range; a — AutoAdopt off — is now fenced out.
	if _, err := b.ClaimRange(RangeOf("k")); err != nil {
		t.Fatal(err)
	}
	_, _, err := a.Access(OpWrite, "k", []byte{7, 7, 7, 7})
	if !isFencedRound(err) {
		t.Fatalf("stale owner's access: got %v, want a fenced-round rejection", err)
	}

	// The fence fired before any record work: b reads the pre-fence
	// value (rebasing its empty counter through reconciliation).
	got, _, err := b.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{9, 9, 9, 9}) {
		t.Fatalf("post-fence read = %v, want the pre-fence value", got)
	}
}

func TestEpochFenceErrorTextConstant(t *testing.T) {
	r, peers, _ := newLBLPeers(t, 2, LBLConfig{ValueSize: 4, Mode: LBLPointPermute})
	a, b := peers[0], peers[1]
	loadData(t, r, a, map[string][]byte{"k": {1, 2, 3, 4}, "zzz9": {5, 6, 7, 8}})
	if _, err := b.ClaimRange(RangeOf("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ClaimRange(RangeOf("zzz9")); err != nil {
		t.Fatal(err)
	}
	// Two fenced rounds — different keys, ops, ranges, epochs — must be
	// rejected with byte-identical error text, or fence responses would
	// form distinguishable frame classes (DESIGN.md §14).
	_, _, err1 := a.Access(OpRead, "k", nil)
	_, _, err2 := a.Access(OpWrite, "zzz9", []byte{0, 0, 0, 0})
	if !isFencedRound(err1) || !isFencedRound(err2) {
		t.Fatalf("expected fence rejections, got %v / %v", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("fence texts differ:\n  %q\n  %q", err1, err2)
	}
}

func TestAutoAdoptReclaimsAndRetries(t *testing.T) {
	r, peers, srv := newLBLPeers(t, 2, LBLConfig{ValueSize: 4, Mode: LBLPointPermute, ReconcileScan: 8, AutoAdopt: true})
	a, b := peers[0], peers[1]
	loadData(t, r, a, map[string][]byte{"k": {1, 2, 3, 4}})
	if _, _, err := a.Access(OpWrite, "k", []byte{5, 5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	rid := RangeOf("k")
	eb, err := b.ClaimRange(rid)
	if err != nil {
		t.Fatal(err)
	}

	// a's next access is fenced behind b's claim; AutoAdopt makes a
	// claim the range back and retry, all inside one Access call.
	got, _, err := a.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatalf("auto-adopting access: %v", err)
	}
	if !bytes.Equal(got, []byte{5, 5, 5, 5}) {
		t.Fatalf("read after adoption = %v", got)
	}
	if a.rangeEpoch(rid) <= eb {
		t.Fatalf("adopter's epoch %d not past the fenced one %d", a.rangeEpoch(rid), eb)
	}
	if srv.RangeEpoch(rid) != a.rangeEpoch(rid) {
		t.Fatalf("server epoch %d, adopter epoch %d", srv.RangeEpoch(rid), a.rangeEpoch(rid))
	}
}

func TestAdoptionRebasesCountersViaReconcile(t *testing.T) {
	r, peers, _ := newLBLPeers(t, 2, LBLConfig{ValueSize: 4, Mode: LBLPointPermute, ReconcileScan: 8, AutoAdopt: true})
	a, b := peers[0], peers[1]
	loadData(t, r, a, map[string][]byte{"k": {0, 0, 0, 0}})
	// a advances k's schedule well past a fresh proxy's counter.
	for i := 0; i < 5; i++ {
		if _, _, err := a.Access(OpWrite, "k", []byte{byte(i), 0, 0, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// b — empty counter table, as a just-started adopter — claims the
	// range and reads: the claim passes the fence, the stale counter is
	// rebased by the probe spiral, and the read returns a's last write.
	if _, err := b.ClaimRange(RangeOf("k")); err != nil {
		t.Fatal(err)
	}
	got, _, err := b.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatalf("adopter's first access: %v", err)
	}
	if !bytes.Equal(got, []byte{4, 0, 0, 4}) {
		t.Fatalf("adopter read = %v, want {4 0 0 4}", got)
	}
	// And writes land: the full ownership transfer works end to end.
	if _, _, err := b.Access(OpWrite, "k", []byte{8, 8, 8, 8}); err != nil {
		t.Fatal(err)
	}
	got, _, err = b.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{8, 8, 8, 8}) {
		t.Fatalf("read after adopter write = %v", got)
	}
}

// TestEpochFencePerKeyInBatch: one fenced key must not fail its batch
// mates, and the fenced key's record stays untouched.
func TestEpochFencePerKeyInBatch(t *testing.T) {
	r, peers, _ := newLBLPeers(t, 2, LBLConfig{ValueSize: 4, Mode: LBLPointPermute, ReconcileScan: 8})
	a, b := peers[0], peers[1]
	// Find two keys in different ranges so only one is fenced.
	k1, k2 := "k1", ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("other-%d", i)
		if RangeOf(cand) != RangeOf(k1) {
			k2 = cand
			break
		}
	}
	if k2 == "" {
		t.Fatal("could not find a key outside k1's range")
	}
	loadData(t, r, a, map[string][]byte{k1: {1, 1, 1, 1}, k2: {2, 2, 2, 2}})
	if _, err := b.ClaimRange(RangeOf(k1)); err != nil {
		t.Fatal(err)
	}
	values, _, err := a.AccessBatch([]BatchOp{
		{Op: OpRead, Key: k1},
		{Op: OpRead, Key: k2},
	})
	if err == nil || !isFencedRound(err) {
		t.Fatalf("batch with fenced key: err = %v, want fenced-round", err)
	}
	if values[0] != nil {
		t.Fatalf("fenced key returned a value: %v", values[0])
	}
	if !bytes.Equal(values[1], []byte{2, 2, 2, 2}) {
		t.Fatalf("unfenced batch mate = %v, want {2 2 2 2}", values[1])
	}
}
