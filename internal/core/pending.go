package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ortoa/internal/crypto/prf"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// Ambiguous-round resolution. An LBL access whose transport call fails
// ambiguously (lost connection, deadline) may or may not have executed
// on the server. The proxy cannot simply retry with a fresh request:
// the counter-indexed label schedule (§5.2) means a re-execution at
// the same counter value would install new labels twice and the server
// would then hold labels the proxy's recovery cannot recognize —
// permanent desynchronization, the one failure §5.3.1 flags as
// unrecoverable.
//
// Instead the proxy parks the exact round — request id and request
// bytes (tables embed shuffle randomness, so they cannot be rebuilt
// bit-identically) — on the key's counter entry. The next access to
// that key first replays the parked round under the same request id.
// The transport's at-most-once dedup cache makes the replay safe:
// whether the original executed or was lost, the replay yields the
// outcome of exactly one execution. The proxy then commits or discards
// the counter increment accordingly, and only after that builds the
// new access at a counter value it can trust.
//
// Two properties of the protocol make resolution total, not just
// likely. First, rounds are self-fencing: a table is keyed by the
// counter-ct labels, so out of all rounds ever built for a key at
// counter ct, at most ONE can apply — the server rejects the rest as
// stale (the staleTableMarker errors in lblserver.go). A stale
// rejection during resolution is therefore proof that some round at
// ct already executed, and the counter can be committed. Second, the
// transport distinguishes "executed but response evicted"
// (transport.IsReplayEvicted) from never-executed, which also proves
// execution. Between replays, fencing, and eviction tombstones, every
// resolution path ends with the proxy knowing whether ct advanced.

// A pendingRound is one ambiguous in-flight round parked on a
// counterEntry.
type pendingRound struct {
	id      uint64 // transport request id; the replay reuses it
	msgType byte
	// req is the exact request payload of the original attempt. It is
	// nil for rounds that went out over the chunked-streaming path,
	// whose table bytes lived in pooled chunk frames: a single access
	// rebuilds a monolithic request at the same counter on resolution
	// (the dedup cache replays by id alone if the original executed,
	// and a rebuilt table is a fresh valid round at ct if it did not),
	// while a streamed batch must probe per key instead — the server
	// applies streamed chunks incrementally, so a byte replay could
	// re-answer keys from chunks that already applied.
	req   []byte
	batch bool // the round was a MsgLBLAccessBatch-shaped batch
	pos   int  // this key's index within the batch chunk
	op    Op
	value []byte // written value (private copy), for write-back verification
}

// pendingValue copies newValue for parking on a pendingRound; the
// caller may reuse its slice after Access returns.
func pendingValue(op Op, newValue []byte) []byte {
	if op != OpWrite {
		return nil
	}
	return append([]byte(nil), newValue...)
}

// resolvePending settles entry's parked round so the counter is
// trustworthy again. On return with nil error the round's outcome is
// known — the counter was committed (a round at ct executed) or left
// unchanged (the server provably rejected it without touching the
// record) — and the pending mark is cleared. A non-nil error means
// either the network is still failing (a pending round remains parked
// for the next access) or the outcome failed integrity checks
// (pending dropped; replaying a tampered round cannot help). The
// caller must hold entry.mu.
func (p *LBLProxy) resolvePending(key string, entry *counterEntry) error {
	pr := entry.pending
	req := pr.req
	if req == nil {
		// A streamed round parked no bytes. Batches settle by probing
		// (see pendingRound.req); single accesses rebuild a monolithic
		// request at the parked counter and replay under the same id.
		if pr.batch {
			return p.probePending(key, entry)
		}
		var err error
		if req, err = p.buildRequest(pr.op, key, pr.value, entry.ct); err != nil {
			return fmt.Errorf("core: rebuilding streamed round for %q: %w", key, err)
		}
	}
	resp, err := p.client.CallContextID(context.Background(), pr.id, pr.msgType, req)
	switch {
	case err == nil:
		// One execution's response in hand — the original's, replayed
		// from the dedup cache, or the round executing just now.
	case transport.Ambiguous(err):
		return fmt.Errorf("core: round for %q still unresolved: %w", key, err)
	case transport.IsReplayEvicted(err):
		// The round executed; only its response bytes are gone. For a
		// single access that alone settles the counter. For a batch the
		// per-key statuses are lost with the response, so probe the
		// key's counter state instead.
		if pr.batch {
			return p.probePending(key, entry)
		}
		return p.settlePending(entry, true)
	case isStaleRound(err):
		// Fencing rejection: the server's labels have moved past this
		// table's counter, which only a round at ct executing can
		// cause. The parked round is that round (or was fenced out by
		// it — for a single access they are the same round).
		return p.settlePending(entry, true)
	default:
		// Any other RemoteError is the outcome of the one execution:
		// the server rejected the round and left the record untouched.
		return p.settlePending(entry, false)
	}
	labels, remoteMsg, err := pr.extract(resp, p.cfg)
	if err != nil {
		entry.pending = nil
		return fmt.Errorf("core: resolving round for %q: %w", key, err)
	}
	if remoteMsg != "" {
		// Per-key rejection inside a batch frame. A stale rejection is
		// fencing proof that this key's sub-access (or its original)
		// executed at ct; anything else left the record untouched.
		return p.settlePending(entry, strings.Contains(remoteMsg, staleTableMarker))
	}
	if _, err := p.recover(pr.op, key, pr.value, entry.ct+1, labels); err != nil {
		entry.pending = nil
		return fmt.Errorf("core: resolving round for %q: %w", key, err)
	}
	return p.settlePending(entry, true)
}

// settlePending clears the parked round, committing its counter step
// if a round at ct is known to have executed.
func (p *LBLProxy) settlePending(entry *counterEntry, executed bool) error {
	if executed {
		entry.ct++
	}
	entry.pending = nil
	p.mx.pendingResolved.Inc()
	return nil
}

// probePending settles a parked round whose per-key outcome is
// unrecoverable (a batch whose cached response was evicted) by issuing
// a fresh read keyed at the current counter. Fencing makes the probe
// decisive: at most one round keyed at ct can ever execute, so either
// the probe executes (the parked round never did, and now never can)
// or the probe is rejected stale (the parked round did). Both
// outcomes advance the counter exactly one step; they differ only in
// whether the parked operation applied, which the original caller
// already treats as unknown.
func (p *LBLProxy) probePending(key string, entry *counterEntry) error {
	req, err := p.buildRequest(OpRead, key, nil, entry.ct)
	if err != nil {
		return err
	}
	id := p.client.NextID()
	resp, err := p.client.CallContextID(context.Background(), id, MsgLBLAccess, req)
	switch {
	case err == nil:
		if _, rerr := p.recover(OpRead, key, nil, entry.ct+1, resp); rerr != nil {
			entry.pending = nil
			return fmt.Errorf("core: probing round for %q: %w", key, rerr)
		}
		return p.settlePending(entry, true) // the probe's own step
	case transport.Ambiguous(err):
		// The probe's outcome is itself unknown. Park the probe in
		// place of the batch round: it lives in the same two-state
		// space, so the next access resolves it the ordinary way (and
		// its single-access response replays cheaply).
		entry.pending = &pendingRound{id: id, msgType: MsgLBLAccess, req: req, op: OpRead}
		return fmt.Errorf("core: round for %q still unresolved: %w", key, err)
	case isStaleRound(err) || transport.IsReplayEvicted(err):
		return p.settlePending(entry, true)
	default:
		entry.pending = nil
		return fmt.Errorf("core: probing round for %q: %w", key, err)
	}
}

// isStaleRound reports whether err is the server's fencing rejection:
// an access table keyed at a counter whose labels the server has
// already replaced.
func isStaleRound(err error) bool {
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, staleTableMarker)
}

// extract slices this round's labels out of the replayed response
// payload; remoteMsg is non-empty if the server rejected this key's
// access within an otherwise-successful batch frame.
func (pr *pendingRound) extract(resp []byte, cfg LBLConfig) (labels []byte, remoteMsg string, err error) {
	if !pr.batch {
		return resp, "", nil
	}
	labelLen := cfg.Groups() * prf.Size
	r := wire.NewReader(resp)
	for i := 0; ; i++ {
		var l []byte
		var msg string
		if r.Byte() != 0 {
			msg = r.String()
			if msg == "" {
				msg = "unspecified server error"
			}
		} else {
			l = r.Raw(labelLen)
		}
		if r.Err() != nil {
			return nil, "", fmt.Errorf("%w: malformed batch replay: %v", ErrTampered, r.Err())
		}
		if i == pr.pos {
			return l, msg, nil
		}
	}
}
