package core

import "sort"

// Counter-range partitioning for multi-proxy deployments. The LBL
// proxy's only irreplaceable state is the per-key access counter
// (§5.3.1); running N proxies therefore means partitioning counter
// OWNERSHIP, not data — every proxy holds the same PRF secret and can
// serve any key, but at any moment exactly one proxy should be
// advancing a given key's counter, or two proxies would race the same
// label schedule. Keys are folded into a fixed number of counter
// ranges, and a consistent-hash ring maps each range to the proxy that
// currently owns it. Ownership is enforced by the server's epoch fence
// (epoch.go): the ring is a routing hint, the fence is the guarantee.

// NumRanges is the fixed size of the counter-range partition space.
// Ranges — not raw keys — are the unit of ownership, epoch fencing,
// and failover handoff, so the space must be stable across membership
// changes; 64 ranges keep the per-range epoch tables one cache line's
// worth of counters while still splitting finely across the ≤8-proxy
// deployments the failover experiment scales to.
const NumRanges = 64

// RangeOf maps a plaintext key to its counter range. Same inlined
// FNV-1a as counterTable.shardFor, so the mapping allocates nothing on
// the access path.
func RangeOf(key string) uint32 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return uint32(h % NumRanges)
}

// ringVnodes is the number of virtual points each member contributes
// to the ring. More points smooth the range distribution; 128 keeps
// the max/min ownership skew low even at two members.
const ringVnodes = 128

// A Ring is a consistent-hash assignment of the NumRanges counter
// ranges to a set of named members (proxies). It is immutable once
// built; membership changes build a new Ring, and consistent hashing
// guarantees the rebuild moves only the ranges that must move — on
// average 1/N of them when one of N members joins or leaves, never a
// range whose owner survived the change.
type Ring struct {
	members []string
	points  []ringPoint       // sorted by hash
	owners  [NumRanges]string // resolved owner per range
}

type ringPoint struct {
	hash  uint64
	owner string
}

// ringHash hashes a ring point name onto the circle (FNV-1a over the
// full 64-bit space, distinct from RangeOf's mod-NumRanges fold).
func ringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewRing builds the ring for the given member names. Order does not
// matter and duplicates are ignored; an empty member set yields a ring
// that owns nothing (Owner returns "").
func NewRing(members []string) *Ring {
	r := &Ring{}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	if len(r.members) == 0 {
		return r
	}
	r.points = make([]ringPoint, 0, len(r.members)*ringVnodes)
	var vbuf [8]byte
	for _, m := range r.members {
		for v := 0; v < ringVnodes; v++ {
			vbuf = [8]byte{byte(v), byte(v >> 8), '#', 'v', 'n', 'o', 'd', 'e'}
			r.points = append(r.points, ringPoint{ringHash(m + string(vbuf[:])), m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break deterministically so equal hashes cannot make
		// ownership depend on sort order.
		return r.points[i].owner < r.points[j].owner
	})
	for rid := uint32(0); rid < NumRanges; rid++ {
		r.owners[rid] = r.resolve(rid)
	}
	return r
}

// resolve walks clockwise from the range's position to the first
// member point.
func (r *Ring) resolve(rangeID uint32) string {
	h := ringHash(rangeIDName(rangeID))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].owner
}

// rangeIDName names a range on the ring; the prefix keeps range points
// from colliding with member vnode points.
func rangeIDName(rangeID uint32) string {
	return "range:" + string([]byte{byte(rangeID), byte(rangeID >> 8), byte(rangeID >> 16), byte(rangeID >> 24)})
}

// Owner returns the member owning rangeID, or "" for an empty ring or
// an out-of-space id.
func (r *Ring) Owner(rangeID uint32) string {
	if len(r.members) == 0 || rangeID >= NumRanges {
		return ""
	}
	return r.owners[rangeID]
}

// OwnerOfKey returns the member owning key's counter range.
func (r *Ring) OwnerOfKey(key string) string { return r.Owner(RangeOf(key)) }

// Members returns the ring's member names in sorted order. The slice
// is shared; callers must not modify it.
func (r *Ring) Members() []string { return r.members }

// Ranges returns the range ids owned by member, in ascending order.
func (r *Ring) Ranges(member string) []uint32 {
	var out []uint32
	for rid := uint32(0); rid < NumRanges; rid++ {
		if r.owners[rid] == member {
			out = append(out, rid)
		}
	}
	return out
}
