package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

func TestCounterAcquireCreatesAtZero(t *testing.T) {
	tbl := newCounterTable()
	e := tbl.acquire("k")
	if e.ct != 0 {
		t.Errorf("fresh counter = %d", e.ct)
	}
	e.ct = 5
	e.mu.Unlock()
	e = tbl.acquire("k")
	if e.ct != 5 {
		t.Errorf("counter lost: %d", e.ct)
	}
	e.mu.Unlock()
}

func TestCounterMutualExclusion(t *testing.T) {
	tbl := newCounterTable()
	const workers = 16
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				e := tbl.acquire("hot")
				e.ct++
				e.mu.Unlock()
			}
		}()
	}
	wg.Wait()
	e := tbl.acquire("hot")
	defer e.mu.Unlock()
	if e.ct != workers*rounds {
		t.Errorf("counter = %d, want %d (lost increments)", e.ct, workers*rounds)
	}
}

func TestCounterSaveLoadRoundTrip(t *testing.T) {
	tbl := newCounterTable()
	want := map[string]uint64{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%04d", i)
		e := tbl.acquire(key)
		e.ct = uint64(i * 7)
		e.mu.Unlock()
		want[key] = uint64(i * 7)
	}
	var buf bytes.Buffer
	if err := tbl.save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := newCounterTable()
	if err := restored.load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != len(want) {
		t.Fatalf("restored %d keys, want %d", restored.Len(), len(want))
	}
	for key, ct := range want {
		e := restored.acquire(key)
		if e.ct != ct {
			t.Errorf("restored[%q] = %d, want %d", key, e.ct, ct)
		}
		e.mu.Unlock()
	}
}

func TestCounterLoadBadMagic(t *testing.T) {
	tbl := newCounterTable()
	if err := tbl.load(bytes.NewReader([]byte("GARBAGE--PADDING"))); err == nil {
		t.Error("load accepted bad magic")
	}
}

func TestCounterLoadTruncated(t *testing.T) {
	tbl := newCounterTable()
	e := tbl.acquire("k")
	e.ct = 9
	e.mu.Unlock()
	var buf bytes.Buffer
	if err := tbl.save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if err := newCounterTable().load(bytes.NewReader(trunc)); err == nil {
		t.Error("load accepted truncated snapshot")
	}
}

func TestCounterSaveEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := newCounterTable().save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := newCounterTable()
	if err := restored.load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 0 {
		t.Errorf("restored empty table has %d keys", restored.Len())
	}
}

// TestLBLCountersSurviveProxySwap exercises the protocol-level
// round-trip: proxy A advances counters, proxy B (same PRF key)
// restores them and continues against the same server.
func TestLBLCountersSurviveProxySwap(t *testing.T) {
	r, proxyA, _ := newLBL(t, LBLPointPermute, 4)
	loadData(t, r, proxyA, map[string][]byte{"k": {1, 2, 3, 4}})
	for i := 0; i < 4; i++ {
		if _, _, err := proxyA.Access(OpRead, "k", nil); err != nil {
			t.Fatal(err)
		}
	}
	var state bytes.Buffer
	if err := proxyA.SaveCounters(&state); err != nil {
		t.Fatal(err)
	}

	proxyB, err := NewLBLProxy(proxyA.Config(), proxyA.prf, r.client)
	if err != nil {
		t.Fatal(err)
	}
	if err := proxyB.LoadCounters(&state); err != nil {
		t.Fatal(err)
	}
	got, _, err := proxyB.Access(OpRead, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Errorf("read after counter transfer = %v", got)
	}
}

// TestCounterLoadCorruptSnapshots drives load through the corruption
// classes a real snapshot file can exhibit: wrong or short magic, a
// count field the data cannot back, implausible key lengths, truncation
// at every field boundary, and trailing garbage. Counters are the
// proxy's only unrecoverable state, so every corrupt input must be
// rejected — never half-applied.
func TestCounterLoadCorruptSnapshots(t *testing.T) {
	// A valid two-entry snapshot to mutate: keys "alpha"→3, "beta"→9.
	valid := func() []byte {
		tbl := newCounterTable()
		for k, ct := range map[string]uint64{"alpha": 3, "beta": 9} {
			e := tbl.acquire(k)
			e.ct = ct
			e.mu.Unlock()
		}
		var buf bytes.Buffer
		if err := tbl.save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", valid[:5]},
		{"bad magic", append([]byte("NOTORTOA"), valid[8:]...)},
		{"missing count", valid[:8]},
		{"short count", valid[:12]},
		{"absurd count", func() []byte {
			d := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(d[8:16], maxCounterEntries+1)
			return d
		}()},
		{"count exceeds data", func() []byte {
			d := append([]byte(nil), valid...)
			binary.LittleEndian.PutUint64(d[8:16], 50)
			return d
		}()},
		{"implausible key length", func() []byte {
			d := append([]byte(nil), valid[:16]...)
			return binary.AppendUvarint(d, 1<<21)
		}()},
		{"truncated mid-key", valid[:16+1+2]},
		{"truncated mid-value", valid[:len(valid)-8-3]},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xde, 0xad)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl := newCounterTable()
			if err := tbl.load(bytes.NewReader(tc.data)); err == nil {
				t.Fatal("load accepted corrupt snapshot")
			}
			if n := tbl.Len(); n != 0 {
				t.Errorf("corrupt load left %d entries behind (partial application)", n)
			}
		})
	}
}

// TestCounterLoadRejectsWithoutClobbering is the partial-application
// guarantee on a live table: a failed load must leave existing
// counters exactly as they were, even when the snapshot's early
// entries parsed cleanly before the corruption.
func TestCounterLoadRejectsWithoutClobbering(t *testing.T) {
	snap := func() []byte {
		tbl := newCounterTable()
		for i := 0; i < 50; i++ {
			e := tbl.acquire(fmt.Sprintf("key-%02d", i))
			e.ct = 1000 + uint64(i)
			e.mu.Unlock()
		}
		var buf bytes.Buffer
		if err := tbl.save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	live := newCounterTable()
	e := live.acquire("key-00")
	e.ct = 7
	e.mu.Unlock()

	if err := live.load(bytes.NewReader(snap[:len(snap)-4])); err == nil {
		t.Fatal("load accepted truncated snapshot")
	}
	if n := live.Len(); n != 1 {
		t.Errorf("failed load grew the table to %d entries", n)
	}
	e = live.acquire("key-00")
	defer e.mu.Unlock()
	if e.ct != 7 {
		t.Errorf("failed load overwrote live counter: %d, want 7", e.ct)
	}
}
