package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// Epoch-fenced counter-range ownership. With several proxies live
// (ring.go), two proxies advancing the same key's counter would fork
// its label schedule. The protocol's own self-fencing already limits
// the damage — at most one round per counter value ever applies
// (pending.go) — but it cannot stop a partitioned ex-owner from
// burning counter values the new owner is about to use. Epoch fencing
// closes that: every access frame carries an ownership claim
// (rangeID, epoch), the server keeps the highest epoch it has seen per
// range, and a frame behind the stored epoch is rejected before the
// record is touched. Adopting a dead peer's range is therefore one
// MsgEpochClaim round — bump the range's epoch at the server — after
// which every in-flight or retried round from the previous owner is
// dead on arrival, and the adopter rebases the range's counters lazily
// through the ordinary ReconcileScan probe spiral.
//
// Shape neutrality: the claim is fixed-width (4+8 bytes, never
// varint), so request frames are byte-identical in length whatever the
// epoch's magnitude; the fence rejection is a constant error text, so
// all fence responses are byte-identical too, and the ShapeAuditor
// sees one frame class for fenced rounds regardless of which range,
// epoch, or operation type was fenced (DESIGN.md §14).

// lblClaimLen is the wire size of the ownership claim embedded in every
// LBL access: rangeID (uint32 LE) ‖ epoch (uint64 LE). Fixed-width on
// purpose — see the shape-neutrality note above.
const lblClaimLen = 4 + 8

// fencedEpochMarker tags the server's epoch-fence rejections, the
// ownership analogue of staleTableMarker. The text is constant — no
// range ids or epoch values — so every fence response frame is
// byte-identical.
const fencedEpochMarker = "fenced stale epoch"

// errFencedEpoch is the one error value the fence ever returns; its
// message length (and thus the error frame length) never varies.
var errFencedEpoch = errors.New("core: " + fencedEpochMarker + ": range ownership has moved")

// IsHandoffTransient reports whether err is a definite ownership or
// counter-position rejection (epoch fence, stale access table) that
// surfaced through every recovery layer during a live ownership
// handoff. The round demonstrably did not execute — the server rejects
// before touching the record — so callers may simply retry the
// operation; fence/adoption churn resolves within a few rounds.
func IsHandoffTransient(err error) bool {
	return isFencedRound(err) || isStaleRound(err)
}

// isFencedRound reports whether err is the server's epoch-fence
// rejection: the round's ownership claim is behind the range's current
// epoch, meaning another proxy has claimed the range since the frame
// was built. The record is untouched — fencing happens before decrypt.
func isFencedRound(err error) bool {
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, fencedEpochMarker)
}

// putClaim encodes one ownership claim into dst[:lblClaimLen]
// (little-endian, fixed-width).
func putClaim(dst []byte, rangeID uint32, epoch uint64) {
	binary.LittleEndian.PutUint32(dst, rangeID)
	binary.LittleEndian.PutUint64(dst[4:], epoch)
}

// readClaim decodes one ownership claim from raw (lblClaimLen bytes).
func readClaim(raw []byte) (rangeID uint32, epoch uint64) {
	return binary.LittleEndian.Uint32(raw), binary.LittleEndian.Uint64(raw[4:])
}

// storeMaxEpoch raises e to at least v (CAS loop; concurrent raisers
// both land on the max).
func storeMaxEpoch(e *atomic.Uint64, v uint64) {
	for {
		cur := e.Load()
		if v <= cur || e.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ---- server side ----

// checkEpoch admits or fences one access's ownership claim. A claim at
// the stored epoch passes; a claim ahead of it installs the higher
// epoch and passes (a restarted server has forgotten its epochs — the
// first frame from the rightful owner reteaches it); a claim behind it
// is fenced with the record untouched. Epoch 0 against epoch 0 passes,
// so single-proxy deployments that never claim anything run exactly as
// before.
func (s *LBLServer) checkEpoch(rangeID uint32, epoch uint64) error {
	if rangeID >= NumRanges {
		return fmt.Errorf("core: range id %d out of space [0,%d)", rangeID, NumRanges)
	}
	for {
		cur := s.epochs[rangeID].Load()
		if epoch < cur {
			s.fencedRounds.Add(1)
			return errFencedEpoch
		}
		if epoch == cur {
			return nil
		}
		if s.epochs[rangeID].CompareAndSwap(cur, epoch) {
			s.epochBumps.Add(1)
			storeMaxEpoch(&s.maxEpoch, epoch)
			return nil
		}
	}
}

// RangeEpoch returns the server's current epoch for rangeID (0 if
// never claimed).
func (s *LBLServer) RangeEpoch(rangeID uint32) uint64 {
	if rangeID >= NumRanges {
		return 0
	}
	return s.epochs[rangeID].Load()
}

// handleEpochClaim serves MsgEpochClaim: a proxy adopting (or
// re-asserting) a range asks the server to move the range to a fresh
// epoch. The new epoch is max(current+1, minEpoch) — always a strict
// bump past the current one, so the moment the claim commits, every
// frame built under any earlier epoch is fenced. Request and response
// are fixed-width (12 and 8 bytes): strict shape classes both ways.
func (s *LBLServer) handleEpochClaim(ctx context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	rangeID := r.Uint32()
	minEpoch := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if rangeID >= NumRanges {
		return nil, fmt.Errorf("core: range id %d out of space [0,%d)", rangeID, NumRanges)
	}
	var granted uint64
	for {
		cur := s.epochs[rangeID].Load()
		granted = cur + 1
		if minEpoch > granted {
			granted = minEpoch
		}
		if s.epochs[rangeID].CompareAndSwap(cur, granted) {
			break
		}
	}
	s.epochBumps.Add(1)
	storeMaxEpoch(&s.maxEpoch, granted)
	w := wire.NewWriter(8)
	w.Uint64(granted)
	return w.Bytes(), nil
}

// ---- proxy side ----

// rangeEpoch returns the epoch this proxy stamps on accesses to
// rangeID's keys: the epoch of its last successful claim, or 0 if it
// has never claimed the range (the legacy single-proxy value).
func (p *LBLProxy) rangeEpoch(rangeID uint32) uint64 {
	return p.epochs[rangeID].Load()
}

// ClaimRange asserts ownership of one counter range: the server bumps
// the range past every epoch it has seen and returns the granted
// epoch, which the proxy stamps on subsequent accesses to the range's
// keys. Rounds built by the previous owner — in flight, parked, or
// retried — are fenced from this moment on. Counters are NOT
// transferred; the adopter's first access per key rebases through the
// ReconcileScan spiral (reconcile.go), which the fence makes safe: the
// ex-owner can no longer advance the record mid-probe.
func (p *LBLProxy) ClaimRange(rangeID uint32) (uint64, error) {
	if rangeID >= NumRanges {
		return 0, fmt.Errorf("core: range id %d out of space [0,%d)", rangeID, NumRanges)
	}
	if p.client == nil {
		return 0, fmt.Errorf("core: LBL proxy has no server connection")
	}
	w := wire.NewWriter(lblClaimLen)
	w.Uint32(rangeID)
	w.Uint64(p.epochs[rangeID].Load() + 1)
	resp, err := p.client.Call(MsgEpochClaim, w.Bytes())
	if err != nil {
		return 0, fmt.Errorf("core: claiming range %d: %w", rangeID, err)
	}
	r := wire.NewReader(resp)
	granted := r.Uint64()
	if err := r.Finish(); err != nil {
		return 0, fmt.Errorf("core: claiming range %d: malformed grant: %w", rangeID, err)
	}
	storeMaxEpoch(&p.epochs[rangeID], granted)
	p.mx.epochClaims.Inc()
	return granted, nil
}

// ClaimRanges claims every range in rangeIDs, stopping at the first
// failure.
func (p *LBLProxy) ClaimRanges(rangeIDs []uint32) error {
	for _, rid := range rangeIDs {
		if _, err := p.ClaimRange(rid); err != nil {
			return err
		}
	}
	return nil
}

// ClaimOwned claims every range the ring assigns to member self —
// the startup handshake of a multi-proxy deployment.
func (p *LBLProxy) ClaimOwned(ring *Ring, self string) error {
	return p.ClaimRanges(ring.Ranges(self))
}

// OwnedRanges returns how many ranges this proxy has ever claimed
// (epoch > 0) — the value behind the ortoa_lbl_owned_ranges gauge.
func (p *LBLProxy) OwnedRanges() int64 {
	var n int64
	for i := range p.epochs {
		if p.epochs[i].Load() > 0 {
			n++
		}
	}
	return n
}
