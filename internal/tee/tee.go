// Package tee simulates the trusted execution environment TEE-ORTOA
// runs its selection logic in (§4). It stands in for Intel SGX /
// ARM TrustZone, which this environment does not have.
//
// The simulation preserves the interface shape and trust boundary of a
// real enclave rather than its hardware guarantees:
//
//   - an Enclave is created from a measured "program" and exposes only
//     ECall; its internal state (the provisioned data key) is
//     unexported and never crosses the boundary,
//   - a verifier attests the enclave by checking a Report (a MAC over
//     measurement and a caller nonce under a key model standing in for
//     Intel's attestation infrastructure) before provisioning secrets,
//   - each ECall charges a configurable transition cost, modeling the
//     enclave entry/exit overhead the paper observes when concurrency
//     grows past the core count (§6.2.1).
//
// Side channels are explicitly out of scope, as in the paper (§4.3).
package tee

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors returned across the enclave boundary.
var (
	// ErrNotProvisioned reports an ECall before key provisioning.
	ErrNotProvisioned = errors.New("tee: enclave has no provisioned key")
	// ErrBadReport reports a failed attestation verification.
	ErrBadReport = errors.New("tee: attestation report verification failed")
	// ErrBadMeasurement reports an attested measurement that does not
	// match the program the verifier expects.
	ErrBadMeasurement = errors.New("tee: enclave measurement mismatch")
)

// A Measurement identifies the code loaded into an enclave (MRENCLAVE
// in SGX terms).
type Measurement [32]byte

// Measure computes the measurement of an enclave program description.
func Measure(program []byte) Measurement {
	return sha256.Sum256(program)
}

// A Report is the enclave's attestation evidence: its measurement
// bound to a verifier-chosen nonce.
type Report struct {
	Measurement Measurement
	Nonce       [16]byte
	MAC         [32]byte
}

// attestationKey stands in for the hardware root of trust that signs
// real SGX quotes. In this simulation it is a process-wide secret
// shared by enclaves and the Verifier, hidden from package clients.
var attestationKey = func() []byte {
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		panic("tee: crypto/rand failed: " + err.Error())
	}
	return k
}()

func reportMAC(m Measurement, nonce [16]byte) [32]byte {
	mac := hmac.New(sha256.New, attestationKey)
	mac.Write(m[:])
	mac.Write(nonce[:])
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// An ECallFunc is the trusted program: it runs inside the enclave with
// access to the provisioned key and the call payload, and returns the
// bytes to release to the untrusted host.
type ECallFunc func(key []byte, payload []byte) ([]byte, error)

// An Enclave is a simulated trusted execution environment.
type Enclave struct {
	measurement Measurement
	program     ECallFunc
	transition  time.Duration

	mu  sync.RWMutex
	key []byte // provisioned data key; never leaves the enclave

	ecalls int64
}

// Config controls enclave creation.
type Config struct {
	// Program is the trusted function; ProgramID is the code identity
	// that produces the measurement (a real enclave measures its
	// binary — here code identity must be named explicitly).
	Program   ECallFunc
	ProgramID []byte
	// TransitionCost is charged on every ECall, modeling the
	// enclave entry/exit (EENTER/EEXIT + page-in) overhead.
	TransitionCost time.Duration
}

// Create loads a program into a new enclave.
func Create(cfg Config) (*Enclave, error) {
	if cfg.Program == nil || len(cfg.ProgramID) == 0 {
		return nil, errors.New("tee: Config requires Program and ProgramID")
	}
	return &Enclave{
		measurement: Measure(cfg.ProgramID),
		program:     cfg.Program,
		transition:  cfg.TransitionCost,
	}, nil
}

// Measurement returns the enclave's code identity.
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Attest produces a Report over the verifier's nonce.
func (e *Enclave) Attest(nonce [16]byte) Report {
	return Report{
		Measurement: e.measurement,
		Nonce:       nonce,
		MAC:         reportMAC(e.measurement, nonce),
	}
}

// Provision installs the data key inside the enclave. In a real
// deployment the key arrives over a secure channel established during
// attestation; the simulation keeps that handshake in the Verifier.
func (e *Enclave) Provision(key []byte) error {
	if len(key) == 0 {
		return errors.New("tee: empty provisioned key")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.key = append([]byte(nil), key...)
	return nil
}

// ECall crosses into the enclave and runs the trusted program.
func (e *Enclave) ECall(payload []byte) ([]byte, error) {
	if e.transition > 0 {
		time.Sleep(e.transition)
	}
	e.mu.RLock()
	key := e.key
	e.mu.RUnlock()
	if key == nil {
		return nil, ErrNotProvisioned
	}
	e.mu.Lock()
	e.ecalls++
	e.mu.Unlock()
	return e.program(key, payload)
}

// ECalls returns the number of calls served, for experiment reporting.
func (e *Enclave) ECalls() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.ecalls
}

// VerifyReport checks a report's MAC and that its measurement matches
// the given program identity, without provisioning anything. The
// caller is responsible for nonce freshness.
func VerifyReport(report Report, programID []byte) error {
	want := reportMAC(report.Measurement, report.Nonce)
	if !hmac.Equal(report.MAC[:], want[:]) {
		return ErrBadReport
	}
	if report.Measurement != Measure(programID) {
		return ErrBadMeasurement
	}
	return nil
}

// A Verifier performs remote attestation and key provisioning on
// behalf of the data owner (the proxy/client side of TEE-ORTOA).
type Verifier struct {
	expected Measurement
}

// NewVerifier returns a Verifier that accepts only enclaves running
// the program identified by programID.
func NewVerifier(programID []byte) *Verifier {
	return &Verifier{expected: Measure(programID)}
}

// AttestAndProvision challenges the enclave with a fresh nonce,
// verifies the report, and provisions key on success.
func (v *Verifier) AttestAndProvision(e *Enclave, key []byte) error {
	var nonce [16]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return fmt.Errorf("tee: nonce: %w", err)
	}
	report := e.Attest(nonce)
	if report.Nonce != nonce {
		return ErrBadReport
	}
	want := reportMAC(report.Measurement, nonce)
	if !hmac.Equal(report.MAC[:], want[:]) {
		return ErrBadReport
	}
	if report.Measurement != v.expected {
		return ErrBadMeasurement
	}
	return e.Provision(key)
}
