package tee

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

var testProgramID = []byte("ortoa-tee-test-program-v1")

func echoProgram(key, payload []byte) ([]byte, error) {
	return append(append([]byte{}, key[0]), payload...), nil
}

func newTestEnclave(t *testing.T) *Enclave {
	t.Helper()
	e, err := Create(Config{Program: echoProgram, ProgramID: testProgramID})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(Config{}); err == nil {
		t.Error("Create accepted empty config")
	}
	if _, err := Create(Config{Program: echoProgram}); err == nil {
		t.Error("Create accepted missing ProgramID")
	}
}

func TestECallBeforeProvisionFails(t *testing.T) {
	e := newTestEnclave(t)
	if _, err := e.ECall([]byte("x")); !errors.Is(err, ErrNotProvisioned) {
		t.Errorf("ECall = %v, want ErrNotProvisioned", err)
	}
}

func TestAttestAndProvisionThenECall(t *testing.T) {
	e := newTestEnclave(t)
	v := NewVerifier(testProgramID)
	key := []byte{0x42, 1, 2, 3}
	if err := v.AttestAndProvision(e, key); err != nil {
		t.Fatal(err)
	}
	out, err := e.ECall([]byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, append([]byte{0x42}, []byte("payload")...)) {
		t.Errorf("ECall = %q", out)
	}
}

func TestVerifierRejectsWrongProgram(t *testing.T) {
	e := newTestEnclave(t)
	v := NewVerifier([]byte("some-other-program"))
	err := v.AttestAndProvision(e, []byte("k"))
	if !errors.Is(err, ErrBadMeasurement) {
		t.Errorf("err = %v, want ErrBadMeasurement", err)
	}
	// The enclave must remain unprovisioned.
	if _, err := e.ECall(nil); !errors.Is(err, ErrNotProvisioned) {
		t.Error("enclave was provisioned despite failed attestation")
	}
}

func TestReportTamperDetected(t *testing.T) {
	e := newTestEnclave(t)
	var nonce [16]byte
	nonce[0] = 7
	report := e.Attest(nonce)
	// Forge the measurement without fixing the MAC.
	report.Measurement[0] ^= 1
	want := reportMAC(report.Measurement, nonce)
	if bytes.Equal(report.MAC[:], want[:]) {
		t.Error("tampered report still verifies")
	}
}

func TestMeasurementDeterministic(t *testing.T) {
	a := Measure([]byte("prog"))
	b := Measure([]byte("prog"))
	c := Measure([]byte("prog2"))
	if a != b {
		t.Error("Measure not deterministic")
	}
	if a == c {
		t.Error("distinct programs share a measurement")
	}
}

func TestTransitionCostApplied(t *testing.T) {
	e, err := Create(Config{
		Program:        echoProgram,
		ProgramID:      testProgramID,
		TransitionCost: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Provision([]byte{1}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := e.ECall(nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("ECall took %v, transition cost not applied", elapsed)
	}
}

func TestECallCounter(t *testing.T) {
	e := newTestEnclave(t)
	e.Provision([]byte{1})
	for i := 0; i < 5; i++ {
		e.ECall(nil)
	}
	if got := e.ECalls(); got != 5 {
		t.Errorf("ECalls = %d, want 5", got)
	}
}

func TestConcurrentECalls(t *testing.T) {
	e := newTestEnclave(t)
	e.Provision([]byte{9})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := e.ECall([]byte{byte(i)})
			if err != nil {
				t.Error(err)
				return
			}
			if len(out) != 2 || out[1] != byte(i) {
				t.Errorf("concurrent ECall %d corrupted: %v", i, out)
			}
		}(i)
	}
	wg.Wait()
	if e.ECalls() != 32 {
		t.Errorf("ECalls = %d, want 32", e.ECalls())
	}
}

func TestProvisionEmptyKey(t *testing.T) {
	e := newTestEnclave(t)
	if err := e.Provision(nil); err == nil {
		t.Error("Provision accepted empty key")
	}
}
