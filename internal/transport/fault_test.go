package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ortoa/internal/netsim"
	"ortoa/internal/obs"
)

// Tests for the fault-tolerance layer: per-call deadlines, at-most-once
// retries against the dedup cache, background reconnection, and the
// teardown paths that keep a broken connection from wedging callers.

func TestOversizedRequestRejected(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	_, err := c.Call(msgEcho, make([]byte, MaxFrameSize))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized call err = %v, want ErrFrameTooLarge", err)
	}
	if Ambiguous(err) {
		t.Error("local oversized rejection classified ambiguous; nothing was sent")
	}
	if st := c.Stats(); st.Calls != 0 || st.BytesSent != 0 {
		t.Errorf("oversized request reached the wire: %+v", st)
	}
}

func TestOversizedResponseBecomesRemoteError(t *testing.T) {
	s := NewServer()
	s.Handle(msgCount, func(_ context.Context, p []byte) ([]byte, error) {
		return make([]byte, MaxFrameSize), nil
	})
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()
	c := dialTest(t, l, 1)
	_, err := c.Call(msgCount, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("oversized response err = %v, want RemoteError", err)
	}
	if !strings.Contains(re.Msg, "exceeds max frame size") {
		t.Errorf("remote message = %q", re.Msg)
	}
	// The error response must not have torn the connection down.
	if _, err := c.Call(msgEcho, []byte("still alive")); err != nil {
		t.Errorf("connection dead after oversized-response error: %v", err)
	}
}

func TestCallTimeoutOnStalledServer(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Handle(msgSlow, func(_ context.Context, p []byte) ([]byte, error) { <-block; return nil, nil })
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()
	defer close(block) // unblock the handler before Close drains it
	c, err := DialOptions(l.Dial, Options{PoolSize: 1, CallTimeout: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Call(msgSlow, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled call err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("stalled call returned after %v; CallTimeout not enforced", elapsed)
	}
	if !Ambiguous(err) {
		t.Error("deadline expiry classified unambiguous; the server may have executed the request")
	}
}

func TestCallContextCancellation(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Handle(msgSlow, func(_ context.Context, p []byte) ([]byte, error) { <-block; return nil, nil })
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()
	defer close(block)
	c := dialTest(t, l, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := c.CallContext(ctx, msgSlow, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled call err = %v, want context.Canceled", err)
	}
}

func TestRetryReplaysWithoutReexecuting(t *testing.T) {
	// Blackhole exactly one response: the handler runs, its response
	// vanishes, the attempt times out, and the retry — same request id —
	// must be answered from the dedup cache, not by running the handler
	// again.
	plan := &netsim.FaultPlan{BlackholeProb: 1, MaxFaults: 1}
	s := NewServer()
	var execs atomic.Int64
	s.Handle(msgCount, func(_ context.Context, p []byte) ([]byte, error) {
		execs.Add(1)
		return append([]byte("ok:"), p...), nil
	})
	reg := obs.NewRegistry()
	s.Instrument(reg)
	l := netsim.Listen(netsim.Link{Fault: plan})
	go s.Serve(l)
	defer s.Close()
	c, err := DialOptions(l.Dial, Options{
		PoolSize:    1,
		CallTimeout: 50 * time.Millisecond,
		Retry:       RetryPolicy{Attempts: 6, Backoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Instrument(reg)

	resp, err := c.Call(msgCount, []byte("x"))
	if err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if string(resp) != "ok:x" {
		t.Errorf("resp = %q", resp)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("handler executed %d times, want exactly 1 (at-most-once broken)", n)
	}
	if v := reg.Counter("ortoa_transport_client_retries_total", "").Value(); v < 1 {
		t.Errorf("retries = %d, want >= 1", v)
	}
	if v := reg.Counter("ortoa_transport_server_dedup_hits_total", "").Value(); v < 1 {
		t.Errorf("dedup hits = %d, want >= 1", v)
	}
	if bh := plan.Stats().Blackholes; bh != 1 {
		t.Errorf("blackholes injected = %d, want 1", bh)
	}
}

func TestReconnectAfterReset(t *testing.T) {
	// Reset exactly one write: the first request tears the connection
	// down; the redial loop must restore the (only) pooled connection and
	// the retry must complete through it.
	plan := &netsim.FaultPlan{ResetProb: 1, MaxFaults: 1}
	s := NewServer()
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	l := netsim.Listen(netsim.Link{Fault: plan})
	go s.Serve(l)
	defer s.Close()
	reg := obs.NewRegistry()
	c, err := DialOptions(l.Dial, Options{
		PoolSize:         1,
		CallTimeout:      100 * time.Millisecond,
		Retry:            RetryPolicy{Attempts: 10, Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Instrument(reg)

	resp, err := c.Call(msgEcho, []byte("hi"))
	if err != nil {
		t.Fatalf("call failed despite reconnect+retry: %v", err)
	}
	if string(resp) != "hi" {
		t.Errorf("resp = %q", resp)
	}
	if v := reg.Counter("ortoa_transport_client_reconnects_total", "").Value(); v < 1 {
		t.Errorf("reconnects = %d, want >= 1", v)
	}
	if rs := plan.Stats().Resets; rs != 1 {
		t.Errorf("resets injected = %d, want 1", rs)
	}
}

func TestFailFastWhenPoolDown(t *testing.T) {
	// With every pooled connection dead and redials failing, calls must
	// fail fast with ErrNoLiveConns instead of queueing behind the pool.
	_, l := startTestServer(t, netsim.Loopback)
	var dials atomic.Int64
	dial := func() (net.Conn, error) {
		if dials.Add(1) > 1 {
			return nil, errors.New("dial refused")
		}
		return l.Dial()
	}
	c, err := DialOptions(dial, Options{PoolSize: 1, ReconnectBackoff: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(msgEcho, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	c.conns[0].mu.Lock()
	conn := c.conns[0].conn
	c.conns[0].mu.Unlock()
	conn.Close() // the read loop notices and marks the conn dead

	deadline := time.Now().Add(2 * time.Second)
	for {
		_, err := c.Call(msgEcho, nil)
		if errors.Is(err, ErrNoLiveConns) {
			if !Ambiguous(err) {
				t.Error("ErrNoLiveConns classified unambiguous; wrapped send paths may have executed")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw ErrNoLiveConns with a dead pool; last err = %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// writeFailConn fails every write, modeling a connection that can
// receive requests but not carry responses.
type writeFailConn struct{ net.Conn }

func (c *writeFailConn) Write(p []byte) (int, error) { return 0, errors.New("injected write failure") }

type writeFailListener struct{ net.Listener }

func (l *writeFailListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &writeFailConn{c}, nil
}

func TestServeConnTearsDownOnWriteError(t *testing.T) {
	// A server connection whose response writes fail must be torn down,
	// not left accepting requests: the client's pending call then fails
	// fast via its read loop instead of hanging forever.
	s := NewServer()
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	inner := netsim.Listen(netsim.Loopback)
	go s.Serve(&writeFailListener{inner})
	defer s.Close()
	c, err := Dial(inner.Dial, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(msgEcho, []byte("x"))
		errc <- err
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("call succeeded over a connection that cannot carry responses")
		}
		if !Ambiguous(err) {
			t.Errorf("lost-connection err %v classified unambiguous", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call hung; server kept a write-broken connection open")
	}
}

func TestDedupTombstoneOnByteEviction(t *testing.T) {
	oldBytes := dedupSessionBytes
	dedupSessionBytes = 100
	defer func() { dedupSessionBytes = oldBytes }()

	d := newDedupCache()
	sess, e1, isNew := d.begin(1, 1)
	if !isNew {
		t.Fatal("first begin not new")
	}
	sess.complete(1, e1, flagResponse, make([]byte, 80))
	_, e2, _ := d.begin(1, 2)
	sess.complete(2, e2, flagResponse, make([]byte, 80)) // over budget: e1 tombstoned

	_, e1again, isNew := d.begin(1, 1)
	if isNew {
		t.Fatal("byte eviction forgot the entry entirely; execution fact must survive as a tombstone")
	}
	flags, resp := sess.replay(e1again)
	if flags&flagError == 0 || string(resp) != replayEvictedMsg {
		t.Fatalf("tombstone replay = flags %x resp %q, want error %q", flags, resp, replayEvictedMsg)
	}
	if !IsReplayEvicted(&RemoteError{Msg: string(resp)}) {
		t.Error("IsReplayEvicted does not recognize a tombstone replay")
	}
	// The newest entry is exempt from eviction; its payload survives.
	if flags, resp := sess.replay(e2); flags&flagError != 0 || len(resp) != 80 {
		t.Errorf("newest entry evicted: flags %x, %d bytes", flags, len(resp))
	}
}

func TestDedupEntryCapForgetsOldest(t *testing.T) {
	oldCap := dedupEntryCap
	dedupEntryCap = 4
	defer func() { dedupEntryCap = oldCap }()

	d := newDedupCache()
	for id := uint64(1); id <= 8; id++ {
		sess, e, isNew := d.begin(1, id)
		if !isNew {
			t.Fatalf("id %d already present", id)
		}
		sess.complete(id, e, flagResponse, []byte{byte(id)})
	}
	if _, _, isNew := d.begin(1, 1); !isNew {
		t.Error("entry past the cap still cached; entry-cap eviction must forget it entirely")
	}
	if _, _, isNew := d.begin(1, 8); isNew {
		t.Error("newest entry forgotten by entry-cap eviction")
	}
}

func TestAmbiguousClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&RemoteError{Msg: "handler exploded"}, false},
		{ErrFrameTooLarge, false},
		{ErrClosed, false},
		{fmt.Errorf("wrap: %w", ErrClosed), false},
		{ErrNoLiveConns, true},
		{context.DeadlineExceeded, true},
		{errors.New("transport: connection lost: EOF"), true},
	}
	for _, c := range cases {
		if got := Ambiguous(c.err); got != c.want {
			t.Errorf("Ambiguous(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// retryable matches Ambiguous exactly: an outcome-known error cannot
	// be improved by retrying, an outcome-unknown one is safe to retry
	// under the same id.
	for _, c := range cases {
		if c.err == nil {
			continue
		}
		if got := retryable(c.err); got != Ambiguous(c.err) {
			t.Errorf("retryable(%v) = %v disagrees with Ambiguous", c.err, got)
		}
	}
}

func TestSessionIDsNonZeroAndDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		sid := newSessionID()
		if sid == 0 {
			t.Fatal("zero session id; zero is reserved for no-dedup peers")
		}
		if seen[sid] {
			t.Fatalf("session id %d repeated", sid)
		}
		seen[sid] = true
	}
}
