// Package transport implements the framed, pipelined RPC protocol that
// connects ORTOA clients, proxies, and storage servers.
//
// A frame is:
//
//	[4B little-endian frame length][8B request id][1B message type]
//	[1B flags][payload]
//
// where the length covers everything after the length field itself.
// Requests and responses share the format; FlagResponse distinguishes
// them and FlagError marks a response whose payload is an error string.
// Multiple requests may be in flight on one connection; responses are
// matched by id, so a slow request does not stall the pipeline.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/obs"
)

// Frame flags.
const (
	flagResponse = 1 << 0
	flagError    = 1 << 1
)

// MaxFrameSize caps a single frame; larger frames indicate corruption
// or abuse. LBL tables for multi-kilobyte values fit comfortably.
const MaxFrameSize = 64 << 20 // 64 MiB

const headerSize = 4 + 8 + 1 + 1

// ErrClosed reports use of a closed client or server.
var ErrClosed = errors.New("transport: closed")

// A RemoteError is an error string returned by the peer's handler.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// coalesceLimit is the largest payload writeFrame copies into one
// contiguous buffer; larger frames go out as a header+payload writev
// (net.Buffers) instead, trading the copy for a vectored write.
const coalesceLimit = 16 << 10

// writeFrame emits one frame with a single underlying write: header and
// payload are either copied into one buffer (small frames) or handed to
// the conn as a net.Buffers writev (large frames). The seed code issued
// two conn.Write calls per frame, which cost a second syscall — and a
// second small TCP segment under TCP_NODELAY — on every RPC.
func writeFrame(w io.Writer, id uint64, msgType, flags byte, payload []byte) error {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(8+1+1+len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	hdr[12] = msgType
	hdr[13] = flags
	if len(payload) == 0 {
		_, err := w.Write(hdr[:])
		return err
	}
	if len(payload) <= coalesceLimit {
		buf := make([]byte, 0, headerSize+len(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		_, err := w.Write(buf)
		return err
	}
	bufs := net.Buffers{hdr[:], payload}
	_, err := bufs.WriteTo(w)
	return err
}

func readFrame(r io.Reader) (id uint64, msgType, flags byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length < 10 || length > MaxFrameSize {
		return 0, 0, 0, nil, fmt.Errorf("transport: invalid frame length %d", length)
	}
	id = binary.LittleEndian.Uint64(hdr[4:12])
	msgType = hdr[12]
	flags = hdr[13]
	payload = make([]byte, length-10)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return id, msgType, flags, payload, nil
}

// A HandlerFunc serves one request payload and returns the response
// payload. Returning an error sends a RemoteError to the caller.
type HandlerFunc func(payload []byte) ([]byte, error)

// An Observer sees exactly what a network adversary at the server
// sees: the message type and the request/response payload sizes of
// every exchange. Security tests use it to check that reads and writes
// are indistinguishable at this boundary.
type Observer func(msgType byte, requestLen, responseLen int)

// serverMetrics is the server's wire-level instrumentation: what an
// operator needs to see load and saturation on a storage server or
// proxy front end.
type serverMetrics struct {
	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	inflight            *obs.Gauge
	handlerLatency      *obs.Histogram
	handlerErrors       *obs.Counter
	connsOpen           *obs.Gauge
}

// A Server dispatches inbound frames to handlers registered by message
// type. Handlers run concurrently, one goroutine per request.
type Server struct {
	mu       sync.RWMutex
	handlers map[byte]HandlerFunc
	observer Observer
	closed   atomic.Bool
	conns    sync.WaitGroup
	lns      []net.Listener
	metrics  atomic.Pointer[serverMetrics]

	connMu sync.Mutex
	open   map[net.Conn]struct{}
}

// NewServer returns a Server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[byte]HandlerFunc), open: make(map[net.Conn]struct{})}
}

// Handle registers h for msgType, replacing any previous handler.
func (s *Server) Handle(msgType byte, h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[msgType] = h
}

func (s *Server) handler(msgType byte) (HandlerFunc, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[msgType]
	return h, ok
}

// Instrument registers the server's wire metrics
// (ortoa_transport_server_*) with reg: frames and bytes in each
// direction, open connections, in-flight handlers, and handler
// latency. Call before Serve; a nil registry leaves the server
// uninstrumented at zero cost.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.metrics.Store(&serverMetrics{
		framesIn:       reg.Counter(`ortoa_transport_server_frames_total{dir="in"}`, "frames by direction"),
		framesOut:      reg.Counter(`ortoa_transport_server_frames_total{dir="out"}`, "frames by direction"),
		bytesIn:        reg.Counter(`ortoa_transport_server_bytes_total{dir="in"}`, "wire bytes (incl. headers) by direction"),
		bytesOut:       reg.Counter(`ortoa_transport_server_bytes_total{dir="out"}`, "wire bytes (incl. headers) by direction"),
		inflight:       reg.Gauge("ortoa_transport_server_inflight_requests", "requests currently being handled"),
		handlerLatency: reg.Histogram("ortoa_transport_server_handler_seconds", "request handler latency"),
		handlerErrors:  reg.Counter("ortoa_transport_server_handler_errors_total", "handler invocations that returned an error"),
		connsOpen:      reg.Gauge("ortoa_transport_server_open_connections", "currently open client connections"),
	})
}

// SetObserver installs an adversary's-eye traffic observer, invoked
// once per served request with the exchanged payload sizes.
func (s *Server) SetObserver(obs Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = obs
}

func (s *Server) observe(msgType byte, reqLen, respLen int) {
	s.mu.RLock()
	obs := s.observer
	s.mu.RUnlock()
	if obs != nil {
		obs(msgType, reqLen, respLen)
	}
}

// Serve accepts connections from l until l is closed or the server is
// closed. It always returns a non-nil error; after Close it returns
// ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return ErrClosed
			}
			return err
		}
		if !s.track(conn) {
			conn.Close() // raced with Close; refuse the connection
			continue
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track registers an accepted connection for shutdown, or reports false
// if the server is already closed.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.open[conn] = struct{}{}
	if m := s.metrics.Load(); m != nil {
		m.connsOpen.Inc()
	}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.open, conn)
	s.connMu.Unlock()
	if m := s.metrics.Load(); m != nil {
		m.connsOpen.Dec()
	}
}

// serveConn reads request frames until the connection fails or Close
// interrupts the read via a deadline; either way it then waits for
// in-flight handlers to write their responses before closing the conn,
// so requests already accepted complete cleanly during shutdown.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex // serializes response frames
	var pending sync.WaitGroup
	defer pending.Wait()
	for {
		id, msgType, _, payload, err := readFrame(conn)
		if err != nil {
			return // closed, draining, or corrupt; stop reading
		}
		m := s.metrics.Load()
		if m != nil {
			m.framesIn.Inc()
			m.bytesIn.Add(int64(headerSize + len(payload)))
		}
		pending.Add(1)
		go func() {
			defer pending.Done()
			if m != nil {
				m.inflight.Inc()
			}
			sw := obs.StartWatch(m != nil)
			h, ok := s.handler(msgType)
			var resp []byte
			flags := byte(flagResponse)
			if !ok {
				flags |= flagError
				resp = []byte(fmt.Sprintf("no handler for message type %d", msgType))
			} else if out, herr := h(payload); herr != nil {
				flags |= flagError
				resp = []byte(herr.Error())
			} else {
				resp = out
			}
			if m != nil {
				sw.Lap(m.handlerLatency)
				m.inflight.Dec()
				if flags&flagError != 0 {
					m.handlerErrors.Inc()
				}
				m.framesOut.Inc()
				m.bytesOut.Add(int64(headerSize + len(resp)))
			}
			s.observe(msgType, len(payload), len(resp))
			wmu.Lock()
			defer wmu.Unlock()
			writeFrame(conn, id, msgType, flags, resp) //nolint:errcheck // conn teardown is handled by the read loop
		}()
	}
}

// Close stops all listeners, interrupts every open connection's read
// loop, waits for in-flight requests to finish writing their responses,
// and then closes the connections. It blocks until all connection
// goroutines have exited, so after Close returns no handler is running
// and no response is in flight. Close is idempotent.
func (s *Server) Close() error {
	// Setting closed under connMu means track() can never admit a
	// connection after the drain below has run.
	s.connMu.Lock()
	already := s.closed.Swap(true)
	var open []net.Conn
	if !already {
		open = make([]net.Conn, 0, len(s.open))
		for c := range s.open {
			open = append(open, c)
		}
	}
	s.connMu.Unlock()
	if already {
		return nil
	}
	s.mu.Lock()
	lns := s.lns
	s.lns = nil
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	// Expire reads immediately: serveConn's read loop returns, waits
	// for its pending handlers (whose response writes are unaffected by
	// the read deadline), then closes the conn.
	for _, c := range open {
		c.SetReadDeadline(time.Now()) //nolint:errcheck // best effort; Close below still terminates the conn
	}
	s.conns.Wait()
	return nil
}

// Stats counts traffic through a Client, for the communication-
// overhead accounting of §6.3.2 / Fig 3c.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	Calls         int64
}

// clientMetrics is the client's wire-level instrumentation: call
// latency, pool pressure, and connection health.
type clientMetrics struct {
	inflight      *obs.Gauge
	poolSaturated *obs.Counter
	callLatency   *obs.Histogram
	callErrors    *obs.Counter
	connFailures  *obs.Counter
}

// A Client issues RPCs over a fixed-size pool of connections,
// pipelining concurrent calls. It is safe for concurrent use.
type Client struct {
	conns   []*clientConn
	next    atomic.Uint64
	closed  atomic.Bool
	metrics atomic.Pointer[clientMetrics]

	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	calls         atomic.Int64
}

type clientConn struct {
	client *Client
	conn   net.Conn
	wmu    sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan result
	dead    error
}

type result struct {
	payload []byte
	err     error
}

// Dial connects a Client using dial to create poolSize connections.
func Dial(dial func() (net.Conn, error), poolSize int) (*Client, error) {
	if poolSize < 1 {
		poolSize = 1
	}
	c := &Client{}
	for i := 0; i < poolSize; i++ {
		nc, err := dial()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: dial conn %d: %w", i, err)
		}
		cc := &clientConn{client: c, conn: nc, pending: make(map[uint64]chan result)}
		go cc.readLoop()
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

// Instrument registers the client's wire metrics
// (ortoa_transport_client_*) with reg: the cumulative Stats counters,
// in-flight calls, pool saturation, call latency, and connection
// failures. Call before issuing RPCs; a nil registry leaves the
// client uninstrumented at zero cost.
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("ortoa_transport_client_bytes_sent_total", "wire bytes (incl. headers) written", c.bytesSent.Load)
	reg.CounterFunc("ortoa_transport_client_bytes_received_total", "wire bytes (incl. headers) read", c.bytesReceived.Load)
	reg.CounterFunc("ortoa_transport_client_calls_total", "RPC calls issued", c.calls.Load)
	c.metrics.Store(&clientMetrics{
		inflight:      reg.Gauge("ortoa_transport_client_inflight_calls", "calls awaiting a response"),
		poolSaturated: reg.Counter("ortoa_transport_client_pool_saturated_total", "calls issued while every pooled connection already carried one in flight"),
		callLatency:   reg.Histogram("ortoa_transport_client_call_seconds", "RPC round-trip latency, send to response"),
		callErrors:    reg.Counter("ortoa_transport_client_call_errors_total", "calls that returned an error"),
		connFailures:  reg.Counter("ortoa_transport_client_conn_failures_total", "pooled connections lost to read errors"),
	})
}

// Call sends payload as a msgType request and blocks for the response.
func (c *Client) Call(msgType byte, payload []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	cc := c.conns[c.next.Add(1)%uint64(len(c.conns))]
	m := c.metrics.Load()
	if m == nil {
		return cc.call(msgType, payload)
	}
	if m.inflight.Inc() > int64(len(c.conns)) {
		m.poolSaturated.Inc()
	}
	start := time.Now()
	resp, err := cc.call(msgType, payload)
	m.callLatency.Since(start)
	m.inflight.Dec()
	if err != nil {
		m.callErrors.Inc()
	}
	return resp, err
}

// Stats returns cumulative traffic counters.
func (c *Client) Stats() Stats {
	return Stats{
		BytesSent:     c.bytesSent.Load(),
		BytesReceived: c.bytesReceived.Load(),
		Calls:         c.calls.Load(),
	}
}

// Close tears down all connections; outstanding calls fail.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cc := range c.conns {
		if cc != nil {
			cc.conn.Close()
		}
	}
	return nil
}

func (cc *clientConn) call(msgType byte, payload []byte) ([]byte, error) {
	ch := make(chan result, 1)
	cc.mu.Lock()
	if cc.dead != nil {
		err := cc.dead
		cc.mu.Unlock()
		return nil, err
	}
	cc.nextID++
	id := cc.nextID
	cc.pending[id] = ch
	cc.mu.Unlock()

	cc.wmu.Lock()
	err := writeFrame(cc.conn, id, msgType, 0, payload)
	cc.wmu.Unlock()
	if err != nil {
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	cc.client.bytesSent.Add(int64(headerSize + len(payload)))
	cc.client.calls.Add(1)

	res := <-ch
	return res.payload, res.err
}

func (cc *clientConn) readLoop() {
	for {
		id, _, flags, payload, err := readFrame(cc.conn)
		if err != nil {
			if m := cc.client.metrics.Load(); m != nil && !cc.client.closed.Load() {
				m.connFailures.Inc()
			}
			cc.fail(fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		cc.client.bytesReceived.Add(int64(headerSize + len(payload)))
		cc.mu.Lock()
		ch, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if !ok {
			continue // response to an abandoned call
		}
		if flags&flagError != 0 {
			ch <- result{err: &RemoteError{Msg: string(payload)}}
		} else {
			ch <- result{payload: payload}
		}
	}
}

func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.dead == nil {
		cc.dead = err
	}
	for id, ch := range cc.pending {
		ch <- result{err: err}
		delete(cc.pending, id)
	}
}
