// Package transport implements the framed, pipelined RPC protocol that
// connects ORTOA clients, proxies, and storage servers.
//
// A frame is:
//
//	[4B little-endian frame length][8B session id][8B request id]
//	[16B trace ref][4B deadline budget][1B message type][1B flags][payload]
//
// where the length covers everything after the length field itself.
// The trace ref (wire.TraceRefLen) carries distributed-tracing span
// context — trace id and parent span id — and is all zeros when the
// request is untraced; being fixed-size and always present, it never
// changes frame lengths and so cannot leak operation types through the
// transcript shape (DESIGN.md §13). Responses echo the request's ref.
// The deadline budget (wire.BudgetLen) carries the caller's remaining
// time in milliseconds, restamped at every hop so it decrements across
// a client→proxy→server chain; zero means "no deadline". Like the
// trace ref it is fixed-size and always present, so deadline
// propagation never changes the transcript shape either (DESIGN.md
// §15). Requests and responses share the format; FlagResponse
// distinguishes them and FlagError marks a response whose payload is
// an error string. FlagBusy marks a shape-neutral admission rejection
// (MsgBusy) whose payload is a fixed-width retry-after hint.
// Multiple requests may be in flight on one connection; responses are
// matched by id, so a slow request does not stall the pipeline.
//
// The session id gives the transport at-most-once semantics across
// connection failures: every Client stamps its frames with one random
// session id, request ids are unique within a session, and the server
// keeps a bounded per-session cache of completed responses (dedup.go).
// A retried request — same session, same id, possibly over a different
// pooled connection — is answered from the cache instead of being
// re-executed, so retrying after a lost response cannot apply a
// side-effecting handler twice. ORTOA's LBL proxy depends on this:
// replaying an access at a stale counter would desynchronize the label
// schedule from the server's records (§5.3.1), the one failure the
// proxy cannot recover from.
package transport

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
	"ortoa/internal/wire"
)

// Frame flags.
const (
	flagResponse = 1 << 0
	flagError    = 1 << 1
	flagBusy     = 1 << 2
	// flagStream marks a request frame that belongs to a chunked
	// stream: the first such frame for a (session, id) opens the
	// stream and dispatches the handler; later frames with the same id
	// are continuation chunks consumed by that handler via
	// StreamFrom(ctx). The server answers the whole stream with the
	// single response frame the handler returns.
	flagStream = 1 << 3
)

// MsgBusy is the message type of an admission-rejection response: the
// server (or proxy front end) declined to execute the request because
// its admission queue is saturated or the request's deadline budget
// had already expired on arrival. The payload is always exactly
// wire.BudgetLen bytes — a little-endian retry-after hint in
// milliseconds — whatever the rejected request's type or operation, so
// shedding leaks nothing about what was shed. 0xFF keeps the type out
// of the protocol range core registers handlers for.
const MsgBusy byte = 0xFF

// MaxFrameSize caps a single frame; larger frames indicate corruption
// or abuse. LBL tables for multi-kilobyte values fit comfortably.
const MaxFrameSize = 64 << 20 // 64 MiB

const headerSize = 4 + 8 + 8 + wire.TraceRefLen + wire.BudgetLen + 1 + 1

// minFrameLen is the smallest valid value of the length field: the
// header bytes it covers (everything after the length field itself).
const minFrameLen = headerSize - 4

// Errors reported by the client.
var (
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("transport: closed")
	// ErrFrameTooLarge reports a payload that cannot fit in one frame.
	ErrFrameTooLarge = errors.New("transport: frame exceeds max frame size")
	// ErrNoLiveConns reports that every pooled connection is currently
	// down. Calls fail fast with this error instead of queueing behind a
	// dead pool; the per-connection redial loops restore service in the
	// background, so a retry policy normally absorbs it.
	ErrNoLiveConns = errors.New("transport: no live connections in pool")
)

// A RemoteError is an error string returned by the peer's handler.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// replayEvictedMsg is the RemoteError a server returns for a replayed
// request whose handler DID execute but whose cached response bytes
// were evicted from the at-most-once cache. The distinction matters to
// stateful callers: "executed, response lost" commits their state
// step, where silent re-execution would corrupt it.
const replayEvictedMsg = "at-most-once cache: request executed, cached response evicted"

// IsReplayEvicted reports whether err is a server's answer to a
// replayed request that executed but whose cached response was
// evicted. The caller's operation DID run, exactly once; only its
// response payload is unrecoverable.
func IsReplayEvicted(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Msg == replayEvictedMsg
}

// A NotSentError reports a streamed call that failed before any frame
// went on the wire: the outcome is definite — the peer never saw the
// request — so Ambiguous reports false for it and stateful callers may
// rebuild and reissue freely.
type NotSentError struct{ Err error }

func (e *NotSentError) Error() string { return "transport: not sent: " + e.Err.Error() }
func (e *NotSentError) Unwrap() error { return e.Err }

// AmbiguousMsgPrefix marks a RemoteError whose handler itself hit an
// ambiguous failure one hop further upstream (a proxy whose server
// round's outcome is unknown). Relays prefix their error text with it
// so ambiguity survives the handler-error → RemoteError flattening and
// multi-hop callers (client → proxy → server) can still classify.
const AmbiguousMsgPrefix = "outcome unknown: "

// BusyMsgPrefix marks a RemoteError whose handler was itself shed by
// an overloaded peer one hop further upstream (a proxy whose server
// rejected the round with MsgBusy before executing anything). Relays
// prefix their error text with it so the definite-but-backoff
// classification survives the handler-error → RemoteError flattening,
// exactly like AmbiguousMsgPrefix does for ambiguity.
const BusyMsgPrefix = "busy: "

// A BusyError is a MsgBusy admission rejection: the peer was saturated
// (or the request's deadline budget had expired on arrival) and
// definitively did not execute the request. RetryAfter is the peer's
// backoff hint; the client's RetryPolicy honors it as a minimum delay
// before the next attempt.
type BusyError struct{ RetryAfter time.Duration }

func (e *BusyError) Error() string {
	return fmt.Sprintf("transport: busy: overloaded, retry after %v", e.RetryAfter)
}

// IsBusy reports whether err is an overload rejection — a direct
// MsgBusy from the peer, or a relayed one (BusyMsgPrefix) from a hop
// further upstream. A busy request definitively did not execute:
// callers may retry it freely after backing off, and stateful callers
// never need ambiguity resolution for it.
func IsBusy(err error) bool {
	var be *BusyError
	if errors.As(err, &be) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Msg, BusyMsgPrefix)
}

// Ambiguous reports whether err leaves the outcome of a call unknown:
// the request may or may not have executed on the server. Handler
// errors arrive in a response, so the server demonstrably executed the
// request and left its stores untouched — unambiguous, except when the
// handler says otherwise via AmbiguousMsgPrefix (it relayed the call
// and its own upstream outcome is unknown). Local validation failures
// (oversized frame, client already closed) happen before anything is
// sent — also unambiguous. Everything else (send errors, lost
// connections, deadline expiry) is ambiguous: stateful callers must
// resolve the outcome (e.g. by replaying the same request id, which
// the server's dedup cache answers without re-executing) before
// issuing a conflicting request.
func Ambiguous(err error) bool {
	if err == nil {
		return false
	}
	var ns *NotSentError
	if errors.As(err, &ns) {
		// The stream failed before its first frame: nothing reached the
		// peer, so the call definitively did not execute.
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return strings.HasPrefix(re.Msg, AmbiguousMsgPrefix)
	}
	var be *BusyError
	if errors.As(err, &be) {
		// A MsgBusy rejection is a definite outcome: the peer refused
		// admission before the handler (and before the dedup cache), so
		// the request demonstrably did not execute.
		return false
	}
	return !errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrClosed)
}

// maxPooledFrameBuf caps the coalesce buffers the frame pool retains;
// rare multi-megabyte batch frames are left to the garbage collector
// rather than pinned for the process lifetime.
const maxPooledFrameBuf = 4 << 20

// frameBufPool recycles the per-frame coalesce buffer of writeFrame.
// net.Conn.Write must not retain its argument past return, so the
// buffer's ownership round-trips cleanly: taken, filled, written,
// returned. The pool stores *[]byte to avoid boxing on Put.
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

// writeFrame emits one frame as exactly one conn.Write call: header
// and payload are coalesced into a single pooled buffer. One write per
// frame costs large frames an extra copy, but it buys two things: one
// syscall (and one TCP segment under TCP_NODELAY) for the common small
// frame, and frame-atomic failure semantics — a transport whose writes
// can be dropped whole (netsim partitions, a userspace proxy's queue
// overflow) then loses complete frames, never a frame's tail, so the
// peer's framing stays intact across every injected fault.
func writeFrame(w io.Writer, session, id uint64, tr trace.SpanContext, budget uint32, msgType, flags byte, payload []byte) error {
	if len(payload) > MaxFrameSize-minFrameLen {
		return ErrFrameTooLarge
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(minFrameLen+len(payload)))
	binary.LittleEndian.PutUint64(hdr[4:12], session)
	binary.LittleEndian.PutUint64(hdr[12:20], id)
	wire.PutTraceRef(hdr[20:20+wire.TraceRefLen], tr.TraceID, tr.SpanID)
	wire.PutBudget(hdr[36:36+wire.BudgetLen], budget)
	hdr[40] = msgType
	hdr[41] = flags
	if len(payload) == 0 {
		_, err := w.Write(hdr[:])
		return err
	}
	bp := frameBufPool.Get().(*[]byte)
	buf := append((*bp)[:0], hdr[:]...)
	buf = append(buf, payload...)
	*bp = buf
	_, err := w.Write(buf)
	if cap(buf) <= maxPooledFrameBuf {
		frameBufPool.Put(bp)
	}
	return err
}

func readFrame(r io.Reader) (session, id uint64, tr trace.SpanContext, budget uint32, msgType, flags byte, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, trace.SpanContext{}, 0, 0, 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length < minFrameLen || length > MaxFrameSize {
		return 0, 0, trace.SpanContext{}, 0, 0, 0, nil, fmt.Errorf("transport: invalid frame length %d", length)
	}
	session = binary.LittleEndian.Uint64(hdr[4:12])
	id = binary.LittleEndian.Uint64(hdr[12:20])
	tr.TraceID, tr.SpanID = wire.TraceRef(hdr[20 : 20+wire.TraceRefLen])
	budget = wire.Budget(hdr[36 : 36+wire.BudgetLen])
	msgType = hdr[40]
	flags = hdr[41]
	payload = make([]byte, length-minFrameLen)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, trace.SpanContext{}, 0, 0, 0, nil, err
	}
	return session, id, tr, budget, msgType, flags, payload, nil
}

// A HandlerFunc serves one request payload and returns the response
// payload. Returning an error sends a RemoteError to the caller. ctx
// carries the request's trace span (if the frame was traced and the
// server has a tracer); handlers start children of it via
// trace.StartChild and otherwise ignore it.
type HandlerFunc func(ctx context.Context, payload []byte) ([]byte, error)

// A ShapeClassifier maps a request payload to its obliviousness shape
// class for the ShapeAuditor: frames of the same message type and
// class must be byte-identical in length whichever operation they
// carry. class partitions legitimately different sizes (batch size);
// strictReq/strictResp say whether the request/response length is
// pinned within the class. Unclassified message types return
// (0, false, false) and feed only the length distributions.
type ShapeClassifier func(msgType byte, payload []byte) (class uint64, strictReq, strictResp bool)

// An Observer sees exactly what a network adversary at the server
// sees: the message type and the request/response payload sizes of
// every exchange — including dedup replays, which the adversary
// observes like any other response. Security tests use it to check
// that reads and writes are indistinguishable at this boundary.
type Observer func(msgType byte, requestLen, responseLen int)

// serverMetrics is the server's wire-level instrumentation: what an
// operator needs to see load and saturation on a storage server or
// proxy front end.
type serverMetrics struct {
	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	inflight            *obs.Gauge
	handlerLatency      *obs.Histogram
	handlerErrors       *obs.Counter
	connsOpen           *obs.Gauge
	dedupHits           *obs.Counter
}

// A Server dispatches inbound frames to handlers registered by message
// type. Handlers run concurrently, one goroutine per request — bounded,
// when LimitAdmission is set, by the admission queue (admission.go).
type Server struct {
	mu        sync.RWMutex
	handlers  map[byte]HandlerFunc
	observer  Observer
	closed    atomic.Bool
	conns     sync.WaitGroup
	lns       []net.Listener
	metrics   atomic.Pointer[serverMetrics]
	tracer    atomic.Pointer[trace.Tracer]
	dedup     *dedupCache
	admission atomic.Pointer[admission]

	shapeMu       sync.RWMutex
	shapeAud      *obs.ShapeAuditor
	shapeClassify ShapeClassifier

	connMu sync.Mutex
	open   map[net.Conn]struct{}
}

// NewServer returns a Server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[byte]HandlerFunc),
		open:     make(map[net.Conn]struct{}),
		dedup:    newDedupCache(),
	}
}

// Handle registers h for msgType, replacing any previous handler.
func (s *Server) Handle(msgType byte, h HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[msgType] = h
}

func (s *Server) handler(msgType byte) (HandlerFunc, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.handlers[msgType]
	return h, ok
}

// Instrument registers the server's wire metrics
// (ortoa_transport_server_*) with reg: frames and bytes in each
// direction, open connections, in-flight handlers, handler latency,
// and dedup-cache replays. Call before Serve; a nil registry leaves
// the server uninstrumented at zero cost.
func (s *Server) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.metrics.Store(&serverMetrics{
		framesIn:       reg.Counter(`ortoa_transport_server_frames_total{dir="in"}`, "frames by direction"),
		framesOut:      reg.Counter(`ortoa_transport_server_frames_total{dir="out"}`, "frames by direction"),
		bytesIn:        reg.Counter(`ortoa_transport_server_bytes_total{dir="in"}`, "wire bytes (incl. headers) by direction"),
		bytesOut:       reg.Counter(`ortoa_transport_server_bytes_total{dir="out"}`, "wire bytes (incl. headers) by direction"),
		inflight:       reg.Gauge("ortoa_transport_server_inflight_requests", "requests currently being handled"),
		handlerLatency: reg.Histogram("ortoa_transport_server_handler_seconds", "request handler latency"),
		handlerErrors:  reg.Counter("ortoa_transport_server_handler_errors_total", "handler invocations that returned an error"),
		connsOpen:      reg.Gauge("ortoa_transport_server_open_connections", "currently open client connections"),
		dedupHits:      reg.Counter("ortoa_transport_server_dedup_hits_total", "retried requests answered from the at-most-once cache without re-execution"),
	})
	// Admission metrics read through the atomic pointer at scrape time,
	// so Instrument and LimitAdmission may be called in either order.
	reg.GaugeFunc("ortoa_transport_server_admission_queue_depth", "requests waiting in the admission queue", func() int64 {
		if a := s.admission.Load(); a != nil {
			return a.depth.Load()
		}
		return 0
	})
	reg.CounterFunc("ortoa_transport_server_admission_shed_total", "requests rejected with MsgBusy because the admission queue was saturated", func() int64 {
		if a := s.admission.Load(); a != nil {
			return a.shed.Load()
		}
		return 0
	})
	reg.CounterFunc("ortoa_transport_server_admission_expired_total", "requests rejected with MsgBusy because their deadline budget expired before execution", func() int64 {
		if a := s.admission.Load(); a != nil {
			return a.expired.Load()
		}
		return 0
	})
}

// SetTracer installs a span tracer: every traced request frame starts
// a server-side span joined to the caller's trace, passed to the
// handler via ctx. A nil tracer (the default) disables server spans.
func (s *Server) SetTracer(t *trace.Tracer) {
	s.tracer.Store(t)
}

// AuditShape installs a continuous obliviousness shape auditor on the
// server: every exchanged frame is classified by classify and its
// payload length checked against the class's pinned length (shape.go).
// Error responses are observed but never length-checked — their
// payload is an error string, not protocol output.
func (s *Server) AuditShape(a *obs.ShapeAuditor, classify ShapeClassifier) {
	if a == nil || classify == nil {
		return
	}
	s.shapeMu.Lock()
	s.shapeAud, s.shapeClassify = a, classify
	s.shapeMu.Unlock()
}

// auditExchange records one request/response pair with the shape
// auditor, if installed.
func (s *Server) auditExchange(msgType byte, payload, resp []byte, flags byte) {
	s.shapeMu.RLock()
	a, classify := s.shapeAud, s.shapeClassify
	s.shapeMu.RUnlock()
	if a == nil {
		return
	}
	class, strictReq, strictResp := classify(msgType, payload)
	a.Observe("in", msgType, class, strictReq, len(payload))
	a.Observe("out", msgType, class, strictResp && flags&flagError == 0, len(resp))
}

// SetObserver installs an adversary's-eye traffic observer, invoked
// once per served request with the exchanged payload sizes.
func (s *Server) SetObserver(obs Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = obs
}

func (s *Server) observe(msgType byte, reqLen, respLen int) {
	s.mu.RLock()
	obs := s.observer
	s.mu.RUnlock()
	if obs != nil {
		obs(msgType, reqLen, respLen)
	}
}

// Serve accepts connections from l until l is closed or the server is
// closed. It always returns a non-nil error; after Close it returns
// ErrClosed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.lns = append(s.lns, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return ErrClosed
			}
			return err
		}
		if !s.track(conn) {
			conn.Close() // raced with Close; refuse the connection
			continue
		}
		go func() {
			defer s.conns.Done()
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// track registers an accepted connection for shutdown, or reports false
// if the server is already closed.
func (s *Server) track(conn net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.open[conn] = struct{}{}
	// The shutdown WaitGroup is incremented under the same lock that
	// Close's closed-flag flip takes: an Add after the flip cannot
	// happen, so Add never races Close's Wait.
	s.conns.Add(1)
	if m := s.metrics.Load(); m != nil {
		m.connsOpen.Inc()
	}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.open, conn)
	s.connMu.Unlock()
	if m := s.metrics.Load(); m != nil {
		m.connsOpen.Dec()
	}
}

// streamChunkBuffer bounds how many undelivered chunk frames a stream
// handler can fall behind by before the connection's read loop blocks,
// back-pressuring the sender through TCP instead of buffering an
// unbounded table in server memory.
const streamChunkBuffer = 8

// A StreamReader delivers the continuation chunk payloads of a
// streamed request (flagStream) to its handler, in arrival order.
type StreamReader struct {
	ch       chan []byte
	connDone chan struct{} // closed when the carrying connection's read loop exits
}

// Next returns the next chunk payload, blocking until one arrives, ctx
// expires, or the carrying connection is lost (no more chunks can ever
// arrive).
func (sr *StreamReader) Next(ctx context.Context) ([]byte, error) {
	select {
	case p := <-sr.ch:
		return p, nil
	default:
	}
	select {
	case p := <-sr.ch:
		return p, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-sr.connDone:
		// Drain anything the read loop delivered before dying.
		select {
		case p := <-sr.ch:
			return p, nil
		default:
			return nil, errors.New("transport: stream connection lost")
		}
	}
}

type streamCtxKey struct{}

// StreamFrom returns the request's StreamReader when the handler was
// dispatched for a streamed request, or nil for a monolithic one.
func StreamFrom(ctx context.Context) *StreamReader {
	sr, _ := ctx.Value(streamCtxKey{}).(*StreamReader)
	return sr
}

// streamState is the read loop's record of one active inbound stream.
type streamState struct {
	ch   chan []byte
	done chan struct{} // closed when the stream's handler has produced its response
}

// auditFrame records a single direction-only frame observation (a
// stream continuation chunk, which has no paired response) with the
// shape auditor, if installed.
func (s *Server) auditFrame(msgType byte, payload []byte) {
	s.shapeMu.RLock()
	a, classify := s.shapeAud, s.shapeClassify
	s.shapeMu.RUnlock()
	if a == nil {
		return
	}
	class, strictReq, _ := classify(msgType, payload)
	a.Observe("in", msgType, class, strictReq, len(payload))
}

// serveConn reads request frames until the connection fails or Close
// interrupts the read via a deadline; either way it then waits for
// in-flight handlers to write their responses before closing the conn,
// so requests already accepted complete cleanly during shutdown.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex // serializes response frames
	var pending sync.WaitGroup
	defer pending.Wait()
	// connDone closes before pending.Wait runs (defers are LIFO), so a
	// stream handler blocked on chunks that will never arrive wakes up
	// instead of deadlocking shutdown.
	connDone := make(chan struct{})
	defer close(connDone)
	// streams tracks active inbound streams by request id. Only this
	// read loop touches the map; handlers see the chunk channel.
	var streams map[uint64]*streamState
	for {
		sid, id, tr, budget, msgType, flags, payload, err := readFrame(conn)
		if err != nil {
			return // closed, draining, or corrupt; stop reading
		}
		// Rehydrate the frame's millisecond budget into an absolute
		// deadline at arrival time: queue time spent here counts against
		// the caller's remaining budget, exactly as wire time does.
		var deadline time.Time
		if budget > 0 {
			deadline = time.Now().Add(time.Duration(budget) * time.Millisecond)
		}
		m := s.metrics.Load()
		if m != nil {
			m.framesIn.Inc()
			m.bytesIn.Add(int64(headerSize + len(payload)))
		}
		var sr *StreamReader
		if flags&flagStream != 0 {
			isBegin := len(payload) > 0 && payload[0] == wire.StreamBegin
			if st, ok := streams[id]; ok {
				stale := false
				select {
				case <-st.done:
					// The handler already answered (shed, errored, or
					// completed): the id's stream is over.
					stale = true
					delete(streams, id)
				default:
				}
				if !stale {
					// Continuation chunk: audit it as the adversary sees
					// it, then feed the handler. A full buffer blocks
					// this read loop — deliberate backpressure — unless
					// the handler finishes first.
					s.auditFrame(msgType, payload)
					s.observe(msgType, len(payload), 0)
					select {
					case st.ch <- payload:
					case <-st.done:
						delete(streams, id)
					}
					continue
				}
			}
			if !isBegin {
				// A chunk with no open stream: its handler already
				// finished (early error, shed, or dedup replay). The
				// frame still crossed the wire, so it is still audited,
				// then dropped.
				s.auditFrame(msgType, payload)
				s.observe(msgType, len(payload), 0)
				continue
			}
			// Begin frame: open the stream, then dispatch the begin
			// payload like a normal request with the reader attached.
			// (A retried begin re-dispatches here and is answered from
			// the dedup cache like any monolithic retry.)
			if streams == nil {
				streams = make(map[uint64]*streamState)
			}
			st := &streamState{ch: make(chan []byte, streamChunkBuffer), done: make(chan struct{})}
			streams[id] = st
			sr = &StreamReader{ch: st.ch, connDone: connDone}
			pending.Add(1)
			go func() {
				defer pending.Done()
				defer close(st.done)
				s.serveRequest(conn, &wmu, sid, id, tr, deadline, msgType, payload, m, sr)
			}()
			continue
		}
		pending.Add(1)
		go func() {
			defer pending.Done()
			s.serveRequest(conn, &wmu, sid, id, tr, deadline, msgType, payload, m, nil)
		}()
	}
}

// serveRequest admits, executes, and answers one request frame (the
// begin frame, for a streamed request).
func (s *Server) serveRequest(conn net.Conn, wmu *sync.Mutex, sid, id uint64, tr trace.SpanContext, deadline time.Time, msgType byte, payload []byte, m *serverMetrics, sr *StreamReader) {
	var flags byte
	var resp []byte
	msgOut := msgType
	if adm := s.admission.Load(); adm != nil {
		switch adm.admit(deadline) {
		case admitRun:
			flags, resp = s.respondReleasing(adm, sid, id, tr, deadline, msgType, payload, m, sr)
		default: // admitShed, admitExpired — one wire shape for both
			msgOut, flags, resp = MsgBusy, flagResponse|flagBusy, adm.busyPayload()
			s.auditBusy(msgType, payload, resp)
		}
	} else {
		flags, resp = s.respond(sid, id, tr, deadline, msgType, payload, m, sr)
	}
	if m != nil {
		m.framesOut.Inc()
		m.bytesOut.Add(int64(headerSize + len(resp)))
	}
	s.observe(msgType, len(payload), len(resp))
	if msgOut != MsgBusy {
		s.auditExchange(msgType, payload, resp, flags)
	}
	wmu.Lock()
	// Responses echo the request's trace ref, so a traced
	// caller can stitch both directions into one trace.
	werr := writeFrame(conn, sid, id, tr, 0, msgOut, flags, resp)
	wmu.Unlock()
	if werr != nil {
		// A connection that cannot carry responses must not keep
		// accepting requests: tear it down so the read loop exits
		// and the client's pool redials. The response itself is
		// preserved in the dedup cache for the client's retry.
		conn.Close()
	}
}

// respondReleasing runs respond under an admission slot, releasing it
// however the handler exits. A streamed request holds its one slot for
// the whole stream: admission happened at the begin frame, and chunks
// ride the already-admitted call.
func (s *Server) respondReleasing(adm *admission, sid, id uint64, tr trace.SpanContext, deadline time.Time, msgType byte, payload []byte, m *serverMetrics, sr *StreamReader) (byte, []byte) {
	defer adm.release()
	return s.respond(sid, id, tr, deadline, msgType, payload, m, sr)
}

// auditBusy records a shed exchange with the shape auditor: the
// request under its own class as usual, the rejection under MsgBusy
// with the same class and a strictly pinned length — every busy frame
// is wire.BudgetLen bytes whatever was shed, so the auditor proves
// shedding is operation-type invisible.
func (s *Server) auditBusy(msgType byte, payload, resp []byte) {
	s.shapeMu.RLock()
	a, classify := s.shapeAud, s.shapeClassify
	s.shapeMu.RUnlock()
	if a == nil {
		return
	}
	class, strictReq, _ := classify(msgType, payload)
	a.Observe("in", msgType, class, strictReq, len(payload))
	a.Observe("out", MsgBusy, class, true, len(resp))
}

// respond produces the response for one request frame: a dedup-cache
// replay if this (session, id) already completed, otherwise one
// handler execution whose outcome is cached before it is written, so a
// response lost on the wire can still be replayed to a retry.
func (s *Server) respond(sid, id uint64, tr trace.SpanContext, deadline time.Time, msgType byte, payload []byte, m *serverMetrics, sr *StreamReader) (byte, []byte) {
	var sess *dedupSession
	var entry *dedupEntry
	if sid != 0 {
		var isNew bool
		sess, entry, isNew = s.dedup.begin(sid, id)
		if !isNew {
			// Retry of an in-flight or completed request: wait for the
			// one execution and replay its outcome (the verbatim
			// response, or ReplayEvicted if only the fact of execution
			// survived eviction). No new span: the retried frame carries
			// the original trace ref, so the replayed response already
			// belongs to the original trace; the handler's one execution
			// recorded its span then.
			<-entry.done
			if m != nil {
				m.dedupHits.Inc()
			}
			return sess.replay(entry)
		}
	}
	if m != nil {
		m.inflight.Inc()
	}
	ctx := context.Background()
	if !deadline.IsZero() {
		// The frame's deadline budget becomes the handler's context
		// deadline, so protocol code can drop expired-on-arrival work
		// before any expensive step and downstream calls restamp the
		// decremented budget onto their own frames.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	if sr != nil {
		ctx = context.WithValue(ctx, streamCtxKey{}, sr)
	}
	var sp *trace.Span
	if t := s.tracer.Load(); t != nil {
		if sp = t.StartRemote(tr, "server_handle"); sp != nil {
			ctx = trace.ContextWith(ctx, sp)
		}
	}
	sw := obs.StartWatch(m != nil)
	h, ok := s.handler(msgType)
	var resp []byte
	flags := byte(flagResponse)
	if !ok {
		flags |= flagError
		resp = []byte(fmt.Sprintf("no handler for message type %d", msgType))
	} else if out, herr := h(ctx, payload); herr != nil {
		flags |= flagError
		resp = []byte(herr.Error())
	} else {
		resp = out
	}
	sp.End()
	if len(resp) > MaxFrameSize-minFrameLen {
		// An oversized response would fail the frame write and tear the
		// connection down; surface it to the caller as an error instead.
		flags |= flagError
		resp = []byte(fmt.Sprintf("transport: %d byte response exceeds max frame size", len(resp)))
	}
	if m != nil {
		sw.Lap(m.handlerLatency)
		m.inflight.Dec()
		if flags&flagError != 0 {
			m.handlerErrors.Inc()
		}
	}
	if entry != nil {
		sess.complete(id, entry, flags, resp)
	}
	return flags, resp
}

// Close stops all listeners, interrupts every open connection's read
// loop, waits for in-flight requests to finish writing their responses,
// and then closes the connections. It blocks until all connection
// goroutines have exited, so after Close returns no handler is running
// and no response is in flight. Close is idempotent.
func (s *Server) Close() error {
	// Setting closed under connMu means track() can never admit a
	// connection after the drain below has run.
	s.connMu.Lock()
	already := s.closed.Swap(true)
	var open []net.Conn
	if !already {
		open = make([]net.Conn, 0, len(s.open))
		for c := range s.open {
			open = append(open, c)
		}
	}
	s.connMu.Unlock()
	if already {
		return nil
	}
	s.mu.Lock()
	lns := s.lns
	s.lns = nil
	s.mu.Unlock()
	for _, l := range lns {
		l.Close()
	}
	// Expire reads immediately: serveConn's read loop returns, waits
	// for its pending handlers (whose response writes are unaffected by
	// the read deadline), then closes the conn.
	for _, c := range open {
		c.SetReadDeadline(time.Now()) //nolint:errcheck // best effort; Close below still terminates the conn
	}
	// Wake queued admission waiters (they answer busy) so pending
	// handlers cannot deadlock the conns.Wait below.
	if adm := s.admission.Load(); adm != nil {
		adm.close()
	}
	s.conns.Wait()
	return nil
}

// Stats counts traffic through a Client, for the communication-
// overhead accounting of §6.3.2 / Fig 3c.
type Stats struct {
	BytesSent     int64
	BytesReceived int64
	Calls         int64
}

// A RetryPolicy governs at-most-once retries of failed calls. Retries
// reuse the original request id, so a request whose response was lost
// is answered from the server's dedup cache instead of re-executing —
// safe even for side-effecting handlers. The policy never inspects the
// request, so reads and writes retry identically and the retry pattern
// leaks nothing about operation types.
type RetryPolicy struct {
	// Attempts is the total number of attempts per call, including the
	// first; values below 2 disable retries.
	Attempts int
	// Backoff is the delay before the first retry; each further retry
	// doubles it (plus up to 50% random jitter). Zero means 10ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means 1s.
	MaxBackoff time.Duration
}

func (p RetryPolicy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// delay returns the backoff before retry number retry (0-based), with
// exponential growth and jitter.
func (p RetryPolicy) delay(retry int) time.Duration {
	base := p.Backoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = time.Second
	}
	d := base << uint(retry)
	if d > maxB || d <= 0 {
		d = maxB
	}
	return d + rand.N(d/2+1)
}

// Options tunes a Client's fault tolerance. The zero value (plus a
// pool size) reproduces the permissive defaults of Dial: no per-call
// deadline and no retries, with reconnection always on.
type Options struct {
	// PoolSize is the number of pooled connections (minimum 1).
	PoolSize int
	// CallTimeout bounds each call attempt; an attempt against a
	// stalled or blackholed server fails with context.DeadlineExceeded
	// after this long instead of hanging. Zero means no deadline.
	CallTimeout time.Duration
	// Retry governs at-most-once retries of failed attempts.
	Retry RetryPolicy
	// ReconnectBackoff is the initial delay between redial attempts for
	// a lost pooled connection; each failure doubles it (plus jitter).
	// Zero means 10ms.
	ReconnectBackoff time.Duration
	// ReconnectMaxBackoff caps the redial backoff. Zero means 2s.
	ReconnectMaxBackoff time.Duration
}

func (o Options) reconnectBackoff() (base, maxB time.Duration) {
	base = o.ReconnectBackoff
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxB = o.ReconnectMaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	return base, maxB
}

// clientMetrics is the client's wire-level instrumentation: call
// latency, pool pressure, and connection health.
type clientMetrics struct {
	inflight      *obs.Gauge
	poolSaturated *obs.Counter
	callLatency   *obs.Histogram
	callErrors    *obs.Counter
	connFailures  *obs.Counter
	reconnects    *obs.Counter
	retries       *obs.Counter
}

// A Client issues RPCs over a fixed-size pool of connections,
// pipelining concurrent calls. Lost connections redial in the
// background with exponential backoff; while a connection is down the
// round-robin skips it, and calls fail fast with ErrNoLiveConns only
// when the whole pool is down. It is safe for concurrent use.
type Client struct {
	dial    func() (net.Conn, error)
	opts    Options
	session uint64
	conns   []*clientConn
	next    atomic.Uint64
	reqID   atomic.Uint64
	closed  atomic.Bool
	metrics atomic.Pointer[clientMetrics]
	tracer  atomic.Pointer[trace.Tracer]

	shapeMu       sync.RWMutex
	shapeAud      *obs.ShapeAuditor
	shapeClassify ShapeClassifier

	bytesSent     atomic.Int64
	bytesReceived atomic.Int64
	calls         atomic.Int64
}

type clientConn struct {
	client *Client
	wmu    sync.Mutex // serializes frame writes on the current conn

	mu      sync.Mutex
	conn    net.Conn
	pending map[uint64]pendingCall
	dead    error // non-nil while disconnected; cleared by reconnect
}

// A pendingCall is one in-flight request on a connection. Besides the
// result channel it remembers the request's shape class, so the
// response frame can be audited against the same class on arrival.
type pendingCall struct {
	ch         chan result
	msgType    byte
	class      uint64
	strictResp bool
}

type result struct {
	payload []byte
	err     error
}

// newSessionID draws a random non-zero session id; zero is reserved
// for "no dedup" peers.
func newSessionID() uint64 {
	var buf [8]byte
	for {
		if _, err := cryptorand.Read(buf[:]); err != nil {
			// Rand never fails on supported platforms; fall back to the
			// seeded process-global PRNG rather than aborting the dial.
			return rand.Uint64() | 1
		}
		if sid := binary.LittleEndian.Uint64(buf[:]); sid != 0 {
			return sid
		}
	}
}

// Dial connects a Client using dial to create poolSize connections,
// with default Options (no deadline, no retries).
func Dial(dial func() (net.Conn, error), poolSize int) (*Client, error) {
	return DialOptions(dial, Options{PoolSize: poolSize})
}

// DialOptions connects a Client with explicit fault-tolerance options.
// All opts.PoolSize initial connections must succeed; connections lost
// later redial in the background.
func DialOptions(dial func() (net.Conn, error), opts Options) (*Client, error) {
	if opts.PoolSize < 1 {
		opts.PoolSize = 1
	}
	c := &Client{dial: dial, opts: opts, session: newSessionID()}
	for i := 0; i < opts.PoolSize; i++ {
		nc, err := dial()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("transport: dial conn %d: %w", i, err)
		}
		cc := &clientConn{client: c, conn: nc, pending: make(map[uint64]pendingCall)}
		go cc.readLoop(nc)
		c.conns = append(c.conns, cc)
	}
	return c, nil
}

// Instrument registers the client's wire metrics
// (ortoa_transport_client_*) with reg: the cumulative Stats counters,
// in-flight calls, pool saturation, call latency, connection
// failures, reconnects, and retries. Call before issuing RPCs; a nil
// registry leaves the client uninstrumented at zero cost.
func (c *Client) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("ortoa_transport_client_bytes_sent_total", "wire bytes (incl. headers) written", c.bytesSent.Load)
	reg.CounterFunc("ortoa_transport_client_bytes_received_total", "wire bytes (incl. headers) read", c.bytesReceived.Load)
	reg.CounterFunc("ortoa_transport_client_calls_total", "RPC calls issued", c.calls.Load)
	c.metrics.Store(&clientMetrics{
		inflight:      reg.Gauge("ortoa_transport_client_inflight_calls", "calls awaiting a response"),
		poolSaturated: reg.Counter("ortoa_transport_client_pool_saturated_total", "calls issued while every pooled connection already carried one in flight"),
		callLatency:   reg.Histogram("ortoa_transport_client_call_seconds", "RPC round-trip latency, send to response"),
		callErrors:    reg.Counter("ortoa_transport_client_call_errors_total", "calls that returned an error"),
		connFailures:  reg.Counter("ortoa_transport_client_conn_failures_total", "pooled connections lost to read errors"),
		reconnects:    reg.Counter("ortoa_transport_client_reconnects_total", "pooled connections restored by the redial loop"),
		retries:       reg.Counter("ortoa_transport_client_retries_total", "call attempts beyond the first (at-most-once, same request id)"),
	})
}

// SetTracer installs a span tracer used when a call's context carries
// no span of its own: each attempt then starts a fresh root trace.
// Calls whose ctx already carries a span (the proxy's rpc stage)
// always join that trace regardless of this tracer.
func (c *Client) SetTracer(t *trace.Tracer) {
	c.tracer.Store(t)
}

// AuditShape installs a continuous obliviousness shape auditor on the
// client: request payloads are classified and length-checked as they
// are sent, responses as they arrive (matched to their request's
// class). Error responses are observed but never length-checked.
func (c *Client) AuditShape(a *obs.ShapeAuditor, classify ShapeClassifier) {
	if a == nil || classify == nil {
		return
	}
	c.shapeMu.Lock()
	c.shapeAud, c.shapeClassify = a, classify
	c.shapeMu.Unlock()
}

func (c *Client) shape() (*obs.ShapeAuditor, ShapeClassifier) {
	c.shapeMu.RLock()
	defer c.shapeMu.RUnlock()
	return c.shapeAud, c.shapeClassify
}

// NextID reserves a fresh request id. Combined with CallContextID it
// lets stateful callers replay a request byte-for-byte after an
// ambiguous failure: the server's dedup cache answers the replay
// without re-executing if the original attempt did execute.
func (c *Client) NextID() uint64 { return c.reqID.Add(1) }

// Call sends payload as a msgType request and blocks for the response,
// applying the client's configured deadline and retry policy.
func (c *Client) Call(msgType byte, payload []byte) ([]byte, error) {
	return c.CallContext(context.Background(), msgType, payload)
}

// CallContext is Call with caller-controlled cancellation: the call
// (including retries and backoff) aborts when ctx is done. The
// configured CallTimeout additionally bounds each individual attempt.
func (c *Client) CallContext(ctx context.Context, msgType byte, payload []byte) ([]byte, error) {
	return c.CallContextID(ctx, c.NextID(), msgType, payload)
}

// CallContextID is CallContext with an explicit request id, for
// replaying a previously-attempted request under at-most-once
// semantics. ids must come from NextID; reusing an id with a different
// payload returns the original request's cached response, not the new
// payload's.
func (c *Client) CallContextID(ctx context.Context, id uint64, msgType byte, payload []byte) ([]byte, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	if len(payload) > MaxFrameSize-minFrameLen {
		return nil, ErrFrameTooLarge
	}
	m := c.metrics.Load()
	if m != nil {
		if m.inflight.Inc() > int64(len(c.conns)) {
			m.poolSaturated.Inc()
		}
		start := time.Now()
		defer func() {
			m.callLatency.Since(start)
			m.inflight.Dec()
		}()
	}
	resp, err := c.callRetry(ctx, id, msgType, payload, m)
	if err != nil && m != nil {
		m.callErrors.Inc()
	}
	return resp, err
}

// errStreamDone is the sentinel send returns once the peer has already
// answered (busy, error, or early response): the producer should stop
// sending and let the stream call return that response.
var errStreamDone = errors.New("transport: stream already answered")

// CallStreamContextID issues one logical request as a chunked stream
// of frames sharing the request id: produce is called with a send
// function and emits the begin, chunk, and end payloads in order; the
// call then blocks for the single response frame. The payload passed
// to send is copied before send returns, so the producer may reuse one
// buffer across chunks — peak memory stays bounded by the chunk size.
//
// Streams are conn-affine (every frame rides one pooled connection, in
// order) and never retried by the transport: a failure after the first
// frame is ambiguous exactly like a monolithic send failure, and a
// failure before it is reported as a *NotSentError, which Ambiguous
// classifies as definite. send returns errStreamDone (an internal
// sentinel) once the peer has answered early; produce should return
// any error from send unchanged.
func (c *Client) CallStreamContextID(ctx context.Context, id uint64, msgType byte, produce func(send func(payload []byte) error) error) ([]byte, error) {
	if c.closed.Load() {
		return nil, &NotSentError{Err: ErrClosed}
	}
	m := c.metrics.Load()
	if m != nil {
		if m.inflight.Inc() > int64(len(c.conns)) {
			m.poolSaturated.Inc()
		}
		start := time.Now()
		defer func() {
			m.callLatency.Since(start)
			m.inflight.Dec()
		}()
	}
	cc := c.pickConn()
	if cc == nil {
		if m != nil {
			m.callErrors.Inc()
		}
		return nil, &NotSentError{Err: ErrNoLiveConns}
	}
	sp := trace.StartChild(ctx, "transport_stream")
	if sp == nil {
		if t := c.tracer.Load(); t != nil {
			sp = t.StartRoot("transport_stream")
		}
	}
	defer sp.End()
	if c.opts.CallTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
		ctx = actx
	}
	resp, err := cc.callStream(ctx, id, sp.Context(), msgType, produce)
	if err != nil && m != nil {
		m.callErrors.Inc()
	}
	return resp, err
}

// callStream runs one streamed call on this connection. All frames are
// written under wmu in producer order, so chunks arrive in sequence.
func (cc *clientConn) callStream(ctx context.Context, id uint64, tr trace.SpanContext, msgType byte, produce func(send func(payload []byte) error) error) ([]byte, error) {
	pc := pendingCall{ch: make(chan result, 1), msgType: msgType}
	aud, classify := cc.client.shape()
	registered := false
	var conn net.Conn // pinned at registration: the whole stream rides one physical conn
	var early *result
	send := func(payload []byte) error {
		if early != nil {
			return errStreamDone
		}
		if registered {
			// An early response (busy, handler error) aborts the
			// producer: the remaining chunks would only be dropped.
			select {
			case res := <-pc.ch:
				early = &res
				return errStreamDone
			default:
			}
		}
		if len(payload) > MaxFrameSize-minFrameLen {
			return ErrFrameTooLarge
		}
		// The budget restamps on every frame, so the server's
		// rehydrated deadline tracks the caller's true remaining time
		// however long the stream takes to produce.
		budget, err := callBudget(ctx)
		if err != nil {
			return err
		}
		if aud != nil {
			class, strictReq, strictResp := classify(msgType, payload)
			if !registered {
				// The response is audited under the begin frame's class.
				pc.class, pc.strictResp = class, strictResp
			}
			aud.Observe("out", msgType, class, strictReq, len(payload))
		}
		if !registered {
			cc.mu.Lock()
			if cc.dead != nil {
				err := cc.dead
				cc.mu.Unlock()
				return err
			}
			conn = cc.conn
			cc.pending[id] = pc
			cc.mu.Unlock()
			registered = true
		}
		cc.wmu.Lock()
		err = writeFrame(conn, cc.client.session, id, tr, budget, msgType, flagStream, payload)
		cc.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("transport: stream send: %w", err)
		}
		cc.client.bytesSent.Add(int64(headerSize + len(payload)))
		return nil
	}
	perr := produce(send)
	if perr != nil && !errors.Is(perr, errStreamDone) {
		if registered {
			cc.mu.Lock()
			delete(cc.pending, id)
			cc.mu.Unlock()
			// At least the begin frame may have reached the peer: the
			// outcome is unknown, exactly like a monolithic send failure.
			return nil, perr
		}
		return nil, &NotSentError{Err: perr}
	}
	if !registered {
		// produce sent nothing and reported success — a producer bug,
		// but a definite one.
		return nil, &NotSentError{Err: errors.New("transport: stream produced no frames")}
	}
	cc.client.calls.Add(1)
	if early != nil {
		return early.payload, early.err
	}
	select {
	case res := <-pc.ch:
		return res.payload, res.err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (c *Client) callRetry(ctx context.Context, id uint64, msgType byte, payload []byte, m *clientMetrics) ([]byte, error) {
	attempts := c.opts.Retry.attempts()
	for attempt := 0; ; attempt++ {
		resp, err := c.attempt(ctx, id, msgType, payload)
		if err == nil {
			return resp, nil
		}
		if !retryable(err) || ctx.Err() != nil || c.closed.Load() || attempt+1 >= attempts {
			return nil, err
		}
		if m != nil {
			m.retries.Inc()
		}
		d := c.opts.Retry.delay(attempt)
		// A busy peer's retry-after hint is a floor on the backoff:
		// retrying sooner would only be shed again.
		var be *BusyError
		if errors.As(err, &be) && be.RetryAfter > d {
			d = be.RetryAfter
		}
		if serr := sleepCtx(ctx, d); serr != nil {
			return nil, err
		}
	}
}

// attempt issues one try of a call on the next live pooled connection,
// bounded by the per-attempt CallTimeout. Each attempt gets its own
// span — a child of the caller's span when ctx carries one, a fresh
// root when only the client's own tracer is set — and the attempt's
// span context rides the frame header, so retries reuse the request id
// AND the trace id: a response replayed from the server's dedup cache
// lands in the original trace.
func (c *Client) attempt(ctx context.Context, id uint64, msgType byte, payload []byte) ([]byte, error) {
	cc := c.pickConn()
	if cc == nil {
		return nil, ErrNoLiveConns
	}
	sp := trace.StartChild(ctx, "transport_attempt")
	if sp == nil {
		if t := c.tracer.Load(); t != nil {
			sp = t.StartRoot("transport_attempt")
		}
	}
	defer sp.End()
	if c.opts.CallTimeout > 0 {
		actx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
		defer cancel()
		ctx = actx
	}
	return cc.call(ctx, id, sp.Context(), msgType, payload)
}

// pickConn returns the next live connection in round-robin order, or
// nil if the whole pool is down.
func (c *Client) pickConn() *clientConn {
	n := uint64(len(c.conns))
	start := c.next.Add(1)
	for i := uint64(0); i < n; i++ {
		cc := c.conns[(start+i)%n]
		cc.mu.Lock()
		down := cc.dead != nil
		cc.mu.Unlock()
		if !down {
			return cc
		}
	}
	return nil
}

// retryable classifies call errors: remote handler errors mean the
// request executed (a retry would only replay the same error), and
// local validation errors cannot succeed on retry. A busy rejection is
// retryable — the request never executed and the peer asked for
// backoff, which callRetry honors. Everything else — send failures,
// lost connections, attempt deadlines, an all-dead pool — is
// transient.
func retryable(err error) bool {
	var be *BusyError
	if errors.As(err, &be) {
		return true
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	return !errors.Is(err, ErrFrameTooLarge) && !errors.Is(err, ErrClosed)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns cumulative traffic counters.
func (c *Client) Stats() Stats {
	return Stats{
		BytesSent:     c.bytesSent.Load(),
		BytesReceived: c.bytesReceived.Load(),
		Calls:         c.calls.Load(),
	}
}

// Close tears down all connections; outstanding calls fail and redial
// loops stop.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	for _, cc := range c.conns {
		if cc == nil {
			continue
		}
		cc.mu.Lock()
		conn := cc.conn
		cc.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
	}
	return nil
}

// callBudget converts the context's remaining time into the frame's
// millisecond deadline budget: zero when no deadline, else at least 1
// (sub-millisecond remainders round up — a positive remainder must not
// stamp "no deadline"). Stamping happens at send time from wall-clock
// remaining, so a proxy relaying a call naturally forwards a budget
// already decremented by its own queueing and compute.
func callBudget(ctx context.Context) (uint32, error) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, nil
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return 0, context.DeadlineExceeded
	}
	millis := int64((rem + time.Millisecond - 1) / time.Millisecond)
	if millis > int64(^uint32(0)) {
		return ^uint32(0), nil
	}
	return uint32(millis), nil
}

func (cc *clientConn) call(ctx context.Context, id uint64, tr trace.SpanContext, msgType byte, payload []byte) ([]byte, error) {
	budget, err := callBudget(ctx)
	if err != nil {
		// The budget is already exhausted: sending would only make the
		// peer shed it. Nothing went on the wire.
		return nil, err
	}
	pc := pendingCall{ch: make(chan result, 1), msgType: msgType}
	aud, classify := cc.client.shape()
	if aud != nil {
		var strictReq bool
		pc.class, strictReq, pc.strictResp = classify(msgType, payload)
		aud.Observe("out", msgType, pc.class, strictReq, len(payload))
	}
	cc.mu.Lock()
	if cc.dead != nil {
		err := cc.dead
		cc.mu.Unlock()
		return nil, err
	}
	conn := cc.conn
	cc.pending[id] = pc
	cc.mu.Unlock()

	cc.wmu.Lock()
	err = writeFrame(conn, cc.client.session, id, tr, budget, msgType, 0, payload)
	cc.wmu.Unlock()
	if err != nil {
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return nil, fmt.Errorf("transport: send: %w", err)
	}
	cc.client.bytesSent.Add(int64(headerSize + len(payload)))
	cc.client.calls.Add(1)

	select {
	case res := <-pc.ch:
		return res.payload, res.err
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.pending, id)
		cc.mu.Unlock()
		return nil, ctx.Err()
	}
}

// readLoop consumes responses from one physical connection until it
// fails, then hands the clientConn to the redial loop.
func (cc *clientConn) readLoop(conn net.Conn) {
	for {
		_, id, _, _, _, flags, payload, err := readFrame(conn)
		if err != nil {
			cc.lost(conn, fmt.Errorf("transport: connection lost: %w", err))
			return
		}
		cc.client.bytesReceived.Add(int64(headerSize + len(payload)))
		cc.mu.Lock()
		pc, ok := cc.pending[id]
		delete(cc.pending, id)
		cc.mu.Unlock()
		if !ok {
			continue // response to an abandoned or already-retried call
		}
		if flags&flagBusy != 0 {
			// Admission rejection: pinned strictly under the request's
			// class — every busy frame is the same fixed width, so the
			// client-side auditor proves it too.
			if aud, _ := cc.client.shape(); aud != nil {
				aud.Observe("in", MsgBusy, pc.class, true, len(payload))
			}
			var retryAfter time.Duration
			if len(payload) >= wire.BudgetLen {
				retryAfter = time.Duration(wire.Budget(payload)) * time.Millisecond
			}
			pc.ch <- result{err: &BusyError{RetryAfter: retryAfter}}
			continue
		}
		if aud, _ := cc.client.shape(); aud != nil {
			strict := pc.strictResp && flags&flagError == 0
			aud.Observe("in", pc.msgType, pc.class, strict, len(payload))
		}
		if flags&flagError != 0 {
			pc.ch <- result{err: &RemoteError{Msg: string(payload)}}
		} else {
			pc.ch <- result{payload: payload}
		}
	}
}

// lost marks the connection dead, fails its pending calls fast, and
// starts the background redial loop (unless the client is closing).
func (cc *clientConn) lost(conn net.Conn, err error) {
	conn.Close()
	cc.mu.Lock()
	if cc.conn != conn {
		// A stale read loop racing a completed reconnect; the live
		// connection already replaced this one.
		cc.mu.Unlock()
		return
	}
	cc.dead = err
	for id, pc := range cc.pending {
		pc.ch <- result{err: err}
		delete(cc.pending, id)
	}
	cc.mu.Unlock()
	closed := cc.client.closed.Load()
	if m := cc.client.metrics.Load(); m != nil && !closed {
		m.connFailures.Inc()
	}
	if closed {
		return
	}
	go cc.reconnect()
}

// reconnect redials a lost connection with exponential backoff plus
// jitter until it succeeds or the client closes. While it runs, calls
// round-robin past this connection instead of hanging on it.
func (cc *clientConn) reconnect() {
	backoff, maxB := cc.client.opts.reconnectBackoff()
	for {
		if cc.client.closed.Load() {
			return
		}
		nc, err := cc.client.dial()
		if err == nil {
			cc.mu.Lock()
			if cc.client.closed.Load() {
				cc.mu.Unlock()
				nc.Close()
				return
			}
			cc.conn = nc
			cc.dead = nil
			cc.mu.Unlock()
			if m := cc.client.metrics.Load(); m != nil {
				m.reconnects.Inc()
			}
			go cc.readLoop(nc)
			return
		}
		time.Sleep(backoff + rand.N(backoff/2+1))
		if backoff *= 2; backoff > maxB {
			backoff = maxB
		}
	}
}
