package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/wire"
)

// TestBusyClassification pins the error taxonomy the overload design
// rests on: a busy rejection is definite (never ambiguous — no parked
// rounds, no dedup resolution) and retryable, whether it arrived as a
// direct MsgBusy or flattened through a proxy hop's RemoteError.
func TestBusyClassification(t *testing.T) {
	cases := []struct {
		name                      string
		err                       error
		busy, ambiguous, canRetry bool
	}{
		{"nil", nil, false, false, true},
		{"direct busy", &BusyError{RetryAfter: 5 * time.Millisecond}, true, false, true},
		{"wrapped busy", fmt.Errorf("access: %w", &BusyError{}), true, false, true},
		// A busy relayed through a proxy arrives as a handler error:
		// still busy, still definite. The relay hop executed (it is the
		// hop that answers), so like any RemoteError it is not retried
		// at this hop — the caller backs off and reissues the access.
		{"relayed busy", &RemoteError{Msg: BusyMsgPrefix + "overloaded"}, true, false, false},
		{"relayed ambiguity", &RemoteError{Msg: AmbiguousMsgPrefix + "conn died"}, false, true, false},
		{"plain handler error", &RemoteError{Msg: "unknown key"}, false, false, false},
		{"replay evicted", &RemoteError{Msg: replayEvictedMsg}, false, false, false},
		{"client closed", ErrClosed, false, false, false},
		{"frame too large", ErrFrameTooLarge, false, false, false},
		{"lost connection", errors.New("transport: send: broken pipe"), false, true, true},
		{"attempt deadline", context.DeadlineExceeded, false, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsBusy(tc.err); got != tc.busy {
				t.Errorf("IsBusy = %v, want %v", got, tc.busy)
			}
			if got := Ambiguous(tc.err); got != tc.ambiguous {
				t.Errorf("Ambiguous = %v, want %v", got, tc.ambiguous)
			}
			if tc.err != nil {
				if got := retryable(tc.err); got != tc.canRetry {
					t.Errorf("retryable = %v, want %v", got, tc.canRetry)
				}
			}
		})
	}
}

// limitedServer installs admission control on a fresh test server.
func limitedServer(t *testing.T, cfg AdmissionConfig) (*Server, *admission) {
	t.Helper()
	s := NewServer()
	s.LimitAdmission(cfg)
	a := s.admission.Load()
	if a == nil {
		t.Fatal("LimitAdmission installed nothing")
	}
	return s, a
}

func TestAdmissionExpiredOnArrival(t *testing.T) {
	_, a := limitedServer(t, AdmissionConfig{MaxInflight: 4, ShedExpired: true})
	if v := a.admit(time.Now().Add(-time.Millisecond)); v != admitExpired {
		t.Fatalf("expired-on-arrival verdict = %v, want admitExpired", v)
	}
	if got := a.expired.Load(); got != 1 {
		t.Errorf("expired counter = %d, want 1", got)
	}
	// Without ShedExpired the budget field is advisory: the request runs.
	_, a = limitedServer(t, AdmissionConfig{MaxInflight: 4})
	if v := a.admit(time.Now().Add(-time.Millisecond)); v != admitRun {
		t.Fatalf("verdict without ShedExpired = %v, want admitRun", v)
	}
}

func TestAdmissionOverflowSheds(t *testing.T) {
	_, a := limitedServer(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 0})
	if v := a.admit(time.Time{}); v != admitRun {
		t.Fatalf("first admit = %v, want admitRun", v)
	}
	if v := a.admit(time.Time{}); v != admitShed {
		t.Fatalf("overflow admit = %v, want admitShed", v)
	}
	if got := a.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	a.release()
	if v := a.admit(time.Time{}); v != admitRun {
		t.Fatalf("admit after release = %v, want admitRun", v)
	}
}

// TestAdmissionLIFOService pins the queue discipline: when a slot
// frees, the newest waiter runs first — under overload the oldest
// waiters are the ones closest to deadline-death, so serving fresh
// work is what keeps goodput nonzero.
func TestAdmissionLIFOService(t *testing.T) {
	_, a := limitedServer(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 2})
	if v := a.admit(time.Time{}); v != admitRun {
		t.Fatalf("slot admit = %v", v)
	}

	order := make(chan string, 2)
	var wg sync.WaitGroup
	// Deterministic arrival order: A queues, then B (polling depth
	// serializes the two admits).
	for i, name := range []string{"A", "B"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			if v := a.admit(time.Time{}); v == admitRun {
				order <- name
				a.release()
			}
		}(name)
		want := int64(i + 1)
		waitFor(t, func() bool { return a.depth.Load() == want })
	}

	a.release() // slot transfers to the NEWEST waiter: B, then A
	wg.Wait()
	if first, second := <-order, <-order; first != "B" || second != "A" {
		t.Errorf("service order = %s, %s; want LIFO (B, A)", first, second)
	}
}

// TestAdmissionMakeRoomEvictsExpiredFirst drives makeRoomLocked
// directly: with an expired and a fresh waiter queued (fresh one
// older), the expired waiter is the eviction victim even though LIFO
// alone would have picked the oldest.
func TestAdmissionMakeRoomEvictsExpiredFirst(t *testing.T) {
	a := &admission{cfg: AdmissionConfig{MaxInflight: 1, MaxQueue: 2, ShedExpired: true}}
	fresh := &admWaiter{ch: make(chan admVerdict, 1), deadline: time.Now().Add(time.Hour)}
	dead := &admWaiter{ch: make(chan admVerdict, 1), deadline: time.Now().Add(-time.Millisecond)}
	a.queue = []*admWaiter{fresh, dead} // fresh is oldest

	a.mu.Lock()
	ok := a.makeRoomLocked(time.Now())
	a.mu.Unlock()
	if !ok {
		t.Fatal("makeRoomLocked found nothing to evict")
	}
	select {
	case v := <-dead.ch:
		if v != admitExpired {
			t.Errorf("expired waiter verdict = %v, want admitExpired", v)
		}
	default:
		t.Fatal("expired waiter was not the victim")
	}
	if len(a.queue) != 1 || a.queue[0] != fresh {
		t.Errorf("queue after eviction = %d waiters, fresh survived = %v", len(a.queue), len(a.queue) == 1 && a.queue[0] == fresh)
	}
	if a.expired.Load() != 1 || a.shed.Load() != 0 {
		t.Errorf("counters = shed %d expired %d, want 0/1", a.shed.Load(), a.expired.Load())
	}

	// With no expired waiter, the oldest overall goes.
	b := &admission{cfg: AdmissionConfig{MaxInflight: 1, MaxQueue: 2, ShedExpired: true}}
	w1 := &admWaiter{ch: make(chan admVerdict, 1)}
	w2 := &admWaiter{ch: make(chan admVerdict, 1)}
	b.queue = []*admWaiter{w1, w2}
	b.mu.Lock()
	b.makeRoomLocked(time.Now())
	b.mu.Unlock()
	select {
	case v := <-w1.ch:
		if v != admitShed {
			t.Errorf("oldest waiter verdict = %v, want admitShed", v)
		}
	default:
		t.Fatal("oldest waiter was not the victim")
	}
}

// TestAdmissionReleaseShedsExpiredWaiters: a freed slot first answers
// every deadline-dead waiter busy, then transfers to the newest
// survivor without changing the running count.
func TestAdmissionReleaseShedsExpiredWaiters(t *testing.T) {
	a := &admission{cfg: AdmissionConfig{MaxInflight: 1, MaxQueue: 4, ShedExpired: true}}
	a.running = 1
	dead := &admWaiter{ch: make(chan admVerdict, 1), deadline: time.Now().Add(-time.Millisecond)}
	live := &admWaiter{ch: make(chan admVerdict, 1), deadline: time.Now().Add(time.Hour)}
	a.queue = []*admWaiter{dead, live}

	a.release()
	if v := <-dead.ch; v != admitExpired {
		t.Errorf("dead waiter verdict = %v, want admitExpired", v)
	}
	if v := <-live.ch; v != admitRun {
		t.Errorf("live waiter verdict = %v, want admitRun (slot transfer)", v)
	}
	a.mu.Lock()
	running, depth := a.running, len(a.queue)
	a.mu.Unlock()
	if running != 1 || depth != 0 {
		t.Errorf("running = %d queue = %d after transfer, want 1/0", running, depth)
	}
}

// gateServer starts a server whose msgSlow handler blocks until the
// returned release func is called, so tests can hold its admission
// slots at will.
func gateServer(t *testing.T, cfg AdmissionConfig) (*Server, *netsim.Listener, chan struct{}, *atomic.Int64) {
	t.Helper()
	gate := make(chan struct{})
	var executed atomic.Int64
	s := NewServer()
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) {
		executed.Add(1)
		return p, nil
	})
	s.Handle(msgSlow, func(_ context.Context, p []byte) ([]byte, error) {
		executed.Add(1)
		<-gate
		return p, nil
	})
	s.LimitAdmission(cfg)
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l, gate, &executed
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedOverWire saturates a 1-slot server and checks the
// caller's view of a shed: a BusyError carrying the configured
// retry-after hint, classified busy and definite, with the shed
// counted server-side.
func TestAdmissionShedOverWire(t *testing.T) {
	const retryAfter = 30 * time.Millisecond
	s, l, gate, executed := gateServer(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: retryAfter})
	c := dialTest(t, l, 2)

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(msgSlow, []byte("occupy"))
		done <- err
	}()
	waitFor(t, func() bool { return executed.Load() == 1 })

	_, err := c.Call(msgEcho, []byte("overflow"))
	var be *BusyError
	if !errors.As(err, &be) {
		t.Fatalf("overflow call error = %v, want *BusyError", err)
	}
	if be.RetryAfter != retryAfter {
		t.Errorf("RetryAfter = %v, want %v", be.RetryAfter, retryAfter)
	}
	if !IsBusy(err) || Ambiguous(err) {
		t.Errorf("IsBusy = %v Ambiguous = %v, want true/false", IsBusy(err), Ambiguous(err))
	}
	if st := s.AdmissionStats(); st.Shed < 1 {
		t.Errorf("AdmissionStats.Shed = %d, want >= 1", st.Shed)
	}
	if got := executed.Load(); got != 1 {
		t.Errorf("handlers executed = %d, want 1 (shed request must not run)", got)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("occupying call failed: %v", err)
	}
}

// TestBusyFrameShapePinned audits a saturated server with shape
// auditors on both ends: whatever payload is shed, every rejection is
// the same wire.BudgetLen-byte MsgBusy frame, so shedding leaks
// nothing about what it shed.
func TestBusyFrameShapePinned(t *testing.T) {
	s, l, gate, executed := gateServer(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: 10 * time.Millisecond})
	c := dialTest(t, l, 2)

	classify := func(msgType byte, payload []byte) (uint64, bool, bool) {
		// Class = request length: every distinct request size is its
		// own class, so strict request pinning cannot trip while the
		// busy responses still must be identical within each class.
		return uint64(len(payload)), true, true
	}
	reg := obs.NewRegistry()
	sAud := obs.NewShapeAuditor(reg, "server")
	cAud := obs.NewShapeAuditor(reg, "client")
	s.AuditShape(sAud, classify)
	c.AuditShape(cAud, classify)

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(msgSlow, []byte("occupy"))
		done <- err
	}()
	waitFor(t, func() bool { return executed.Load() == 1 })

	for _, size := range []int{1, 7, 64, 300} {
		_, err := c.Call(msgEcho, bytes.Repeat([]byte{0xAB}, size))
		if !IsBusy(err) {
			t.Fatalf("size %d: err = %v, want busy", size, err)
		}
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("occupying call failed: %v", err)
	}
	if v := sAud.Violations(); v != 0 {
		t.Errorf("server shape violations = %d, want 0", v)
	}
	if v := cAud.Violations(); v != 0 {
		t.Errorf("client shape violations = %d, want 0", v)
	}
}

// TestExpiredBudgetNeverSent: a call whose deadline budget is already
// exhausted fails client-side with context.DeadlineExceeded and puts
// nothing on the wire — the cheapest possible shed.
func TestExpiredBudgetNeverSent(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	_, err := c.CallContext(ctx, msgEcho, []byte("late"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if st := c.Stats(); st.Calls != 0 || st.BytesSent != 0 {
		t.Errorf("stats after expired call = %+v, want nothing sent", st)
	}
	// A zero-budget (no deadline) call through the same client is
	// untouched by deadline machinery.
	if _, err := c.Call(msgEcho, []byte("fresh")); err != nil {
		t.Fatalf("background call after expired one: %v", err)
	}
}

// TestZeroBudgetUnaffectedByShedExpired: frames without a deadline
// budget (header field 0) pass a ShedExpired admission gate — absence
// of a deadline means "no deadline", never "already expired".
func TestZeroBudgetUnaffectedByShedExpired(t *testing.T) {
	_, l, gate, _ := gateServer(t, AdmissionConfig{MaxInflight: 2, MaxQueue: 2, ShedExpired: true})
	close(gate)
	c := dialTest(t, l, 1)
	resp, err := c.Call(msgEcho, []byte("no-deadline"))
	if err != nil {
		t.Fatalf("zero-budget call under ShedExpired: %v", err)
	}
	if !bytes.Equal(resp, []byte("no-deadline")) {
		t.Errorf("echo = %q", resp)
	}
}

// TestBudgetSurvivesDedupReplay: retrying a request id under admission
// control replays the cached response without re-executing the
// handler — admission runs before the dedup cache, so the replay needs
// (and gets) a slot, but the one execution stays one.
func TestBudgetSurvivesDedupReplay(t *testing.T) {
	_, l, gate, executed := gateServer(t, AdmissionConfig{MaxInflight: 1, MaxQueue: 1, ShedExpired: true})
	close(gate)
	c := dialTest(t, l, 1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	id := c.NextID()
	first, err := c.CallContextID(ctx, id, msgEcho, []byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	replay, err := c.CallContextID(ctx, id, msgEcho, []byte("once"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, replay) {
		t.Errorf("replay = %q, want %q", replay, first)
	}
	if got := executed.Load(); got != 1 {
		t.Errorf("handler executed %d times, want exactly 1", got)
	}
}

// TestBusyPayloadCarriesRetryAfter pins the busy frame's width and
// content at the wire level: exactly wire.BudgetLen bytes encoding the
// configured hint in millis.
func TestBusyPayloadCarriesRetryAfter(t *testing.T) {
	_, a := limitedServer(t, AdmissionConfig{MaxInflight: 1, RetryAfter: 40 * time.Millisecond})
	p := a.busyPayload()
	if len(p) != wire.BudgetLen {
		t.Fatalf("busy payload = %d bytes, want %d", len(p), wire.BudgetLen)
	}
	if got := wire.Budget(p); got != 40 {
		t.Errorf("busy payload budget = %d ms, want 40", got)
	}
}
