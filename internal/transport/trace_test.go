package transport

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
)

// Tests for span-context propagation through the frame header and for
// the shape consequences of carrying it: the trace field is fixed-size,
// so frames are byte-identical in length whether tracing is on or off.

func TestFrameLengthConstantTracedOrNot(t *testing.T) {
	payload := []byte("the payload does not change")
	var traced, untraced bytes.Buffer
	sc := trace.SpanContext{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00}
	if err := writeFrame(&traced, 7, 42, sc, 0, msgEcho, 0, payload); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&untraced, 7, 42, trace.SpanContext{}, 0, msgEcho, 0, payload); err != nil {
		t.Fatal(err)
	}
	if traced.Len() != untraced.Len() {
		t.Fatalf("traced frame is %d bytes, untraced %d: tracing changes the transcript shape",
			traced.Len(), untraced.Len())
	}
	if traced.Len() != headerSize+len(payload) {
		t.Fatalf("frame length %d, want header(%d)+payload(%d)", traced.Len(), headerSize, len(payload))
	}

	// The ref round-trips exactly, and an all-zero ref reads back as an
	// invalid (untraced) span context.
	_, _, gotSC, _, _, _, gotPayload, err := readFrame(&traced)
	if err != nil {
		t.Fatal(err)
	}
	if gotSC != sc {
		t.Fatalf("trace ref round-trip: got %+v, want %+v", gotSC, sc)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload round-trip: %q", gotPayload)
	}
	_, _, gotSC, _, _, _, _, err = readFrame(&untraced)
	if err != nil {
		t.Fatal(err)
	}
	if gotSC.Valid() {
		t.Fatalf("zero trace ref read back as valid context %+v", gotSC)
	}
}

func TestTracePropagatesToServer(t *testing.T) {
	reg := obs.NewRegistry()
	serverTr := reg.Tracer("server", 64)
	clientTr := reg.Tracer("proxy", 64)

	s := NewServer()
	s.SetTracer(serverTr)
	s.Handle(msgEcho, func(ctx context.Context, p []byte) ([]byte, error) {
		sp := trace.StartChild(ctx, "server_decrypt")
		sp.End()
		return p, nil
	})
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()
	c := dialTest(t, l, 1)
	c.SetTracer(clientTr)

	root, ctx := clientTr.Start(context.Background(), "lbl_access")
	if _, err := c.CallContext(ctx, msgEcho, []byte("traced")); err != nil {
		t.Fatal(err)
	}
	root.End()

	var attempt trace.SpanRecord
	for _, r := range clientTr.Snapshot() {
		if r.Name == "transport_attempt" {
			attempt = r
		}
	}
	if attempt.SpanID == 0 {
		t.Fatal("client recorded no transport_attempt span")
	}
	if attempt.TraceID != root.TraceID() || attempt.ParentID != root.Context().SpanID {
		t.Fatalf("attempt span %+v must be a child of the caller's root %016x", attempt, root.TraceID())
	}

	var handle, decrypt trace.SpanRecord
	for _, r := range serverTr.Snapshot() {
		switch r.Name {
		case "server_handle":
			handle = r
		case "server_decrypt":
			decrypt = r
		}
	}
	if handle.SpanID == 0 || decrypt.SpanID == 0 {
		t.Fatalf("server spans missing: handle=%+v decrypt=%+v", handle, decrypt)
	}
	if handle.TraceID != root.TraceID() {
		t.Fatalf("server_handle trace id %016x, want the client's %016x: span context did not cross the wire",
			handle.TraceID, root.TraceID())
	}
	if handle.ParentID != attempt.SpanID {
		t.Fatalf("server_handle parent %016x, want the attempt span %016x", handle.ParentID, attempt.SpanID)
	}
	if decrypt.ParentID != handle.SpanID {
		t.Fatalf("handler child parent %016x, want server_handle %016x", decrypt.ParentID, handle.SpanID)
	}
}

func TestUntracedClientSendsZeroRef(t *testing.T) {
	reg := obs.NewRegistry()
	serverTr := reg.Tracer("server", 64)
	s := NewServer()
	s.SetTracer(serverTr)
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()
	c := dialTest(t, l, 1) // no tracer, no ctx span
	if _, err := c.Call(msgEcho, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if recs := serverTr.Snapshot(); len(recs) != 0 {
		t.Fatalf("untraced request grew %d server spans (%+v); StartRemote must reject a zero ref", len(recs), recs)
	}
}

func TestReplayedResponseJoinsOriginalTrace(t *testing.T) {
	// Blackhole the first response so the retry is answered from the
	// dedup cache: the server must record exactly ONE server_handle span,
	// in the original attempt's trace — the replay re-sends bytes, it
	// does not re-execute or re-trace.
	plan := &netsim.FaultPlan{BlackholeProb: 1, MaxFaults: 1}
	reg := obs.NewRegistry()
	serverTr := reg.Tracer("server", 64)
	clientTr := reg.Tracer("proxy", 64)
	s := NewServer()
	s.SetTracer(serverTr)
	var execs atomic.Int64
	s.Handle(msgCount, func(_ context.Context, p []byte) ([]byte, error) {
		execs.Add(1)
		return p, nil
	})
	l := netsim.Listen(netsim.Link{Fault: plan})
	go s.Serve(l)
	defer s.Close()
	c, err := DialOptions(l.Dial, Options{
		PoolSize:    1,
		CallTimeout: 50 * time.Millisecond,
		Retry:       RetryPolicy{Attempts: 6, Backoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTracer(clientTr)

	root, ctx := clientTr.Start(context.Background(), "lbl_access")
	if _, err := c.CallContext(ctx, msgCount, []byte("x")); err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	root.End()
	if n := execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want 1", n)
	}

	handles := 0
	for _, r := range serverTr.Snapshot() {
		if r.Name != "server_handle" {
			continue
		}
		handles++
		if r.TraceID != root.TraceID() {
			t.Fatalf("server_handle trace %016x, want the original %016x", r.TraceID, root.TraceID())
		}
	}
	if handles != 1 {
		t.Fatalf("server recorded %d server_handle spans, want exactly 1 (replay must not re-trace)", handles)
	}
	// Both attempts were traced client-side, under the same trace.
	attempts := 0
	for _, r := range clientTr.Snapshot() {
		if r.Name == "transport_attempt" {
			attempts++
			if r.TraceID != root.TraceID() {
				t.Fatalf("attempt trace %016x, want %016x", r.TraceID, root.TraceID())
			}
		}
	}
	if attempts < 2 {
		t.Fatalf("client recorded %d attempt spans, want >= 2 (original + retry)", attempts)
	}
}

func TestShapeAuditorSeesTransportFrames(t *testing.T) {
	// A strict classifier at the transport layer: every msgEcho request
	// pinned to one length. Two equal-length calls pass; a third with a
	// different length trips the auditor exactly once on each side.
	classify := func(msgType byte, payload []byte) (uint64, bool, bool) {
		if msgType == msgEcho {
			return 0, true, true
		}
		return 0, false, false
	}
	reg := obs.NewRegistry()
	s := NewServer()
	s.AuditShape(obs.NewShapeAuditor(reg, "server"), classify)
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()
	c := dialTest(t, l, 1)
	proxyAud := obs.NewShapeAuditor(reg, "proxy")
	c.AuditShape(proxyAud, classify)

	for i := 0; i < 2; i++ {
		if _, err := c.Call(msgEcho, []byte("same-length-A")); err != nil {
			t.Fatal(err)
		}
	}
	vp, vs := proxyAud.Violations(), reg.Counter(`ortoa_obliviousness_shape_violations_total{proc="server"}`, "").Value()
	if vp != 0 || vs != 0 {
		t.Fatalf("uniform calls: proxy=%d server=%d violations, want 0/0", vp, vs)
	}
	if _, err := c.Call(msgEcho, []byte("longer-divergent-payload")); err != nil {
		t.Fatal(err)
	}
	// Request and response both diverge (echo), so each side counts 2.
	if vp := proxyAud.Violations(); vp != 2 {
		t.Fatalf("proxy violations = %d, want 2 (request + echoed response)", vp)
	}
	if vs := reg.Counter(`ortoa_obliviousness_shape_violations_total{proc="server"}`, "").Value(); vs != 2 {
		t.Fatalf("server violations = %d, want 2", vs)
	}
}
