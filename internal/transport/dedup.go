package transport

import "sync"

// The at-most-once dedup cache. The server keeps, per client session,
// the responses of recently completed requests keyed by request id. A
// retried request — same (session id, request id), possibly arriving
// over a different pooled connection — finds its entry here and is
// answered by replaying the cached response instead of re-executing
// the handler. That is what makes retrying a side-effecting request
// (an LBL access that advances a label counter) safe: however many
// times a request is sent, the handler runs at most once.
//
// The cache is bounded on three axes so a server cannot be grown
// without limit by misbehaving or long-lived clients:
//
//   - sessions: at most dedupSessionCap sessions, evicted LRU;
//   - bytes per session: cached response payloads are capped at
//     dedupSessionBytes. Over budget, the oldest completed responses
//     are reduced to tombstones: the payload bytes are dropped but the
//     fact of execution is kept, so a late replay is answered with
//     ReplayEvicted instead of being silently re-executed. "Executed
//     but response lost" is recoverable for stateful callers (the LBL
//     proxy commits its counter on it); silent re-execution is not.
//   - entries per session: at most dedupEntryCap entries including
//     tombstones; the oldest are then forgotten entirely.
//
// In-flight entries (handler still running) are never evicted; a
// replay that arrives while the original executes blocks on the
// entry's done channel and sees the same response. A replay of a
// fully forgotten id re-executes the handler — the one hole in the
// guarantee. LBL access handlers are self-fencing (a table keyed at
// counter ct only applies when the server holds exactly the ct
// labels), so even that re-execution cannot double-apply; DESIGN.md
// §9 discusses the failure model.
type dedupCache struct {
	mu       sync.Mutex
	sessions map[uint64]*dedupSession
	order    []uint64 // session ids, least recently used first
}

// Cache bounds; vars rather than consts so tests can shrink them.
var (
	dedupSessionCap   = 64
	dedupEntryCap     = 4096
	dedupSessionBytes = 8 << 20
)

type dedupSession struct {
	mu        sync.Mutex
	entries   map[uint64]*dedupEntry
	order     []uint64 // completed request ids, oldest first
	bytes     int      // sum of cached (non-tombstoned) response payload sizes
	evictHead int      // index into order of the oldest non-tombstoned entry
}

// A dedupEntry's flags/resp/evicted are written under the session
// mutex; readers that did not execute the handler themselves must hold
// it too (eviction can tombstone an entry long after done closes).
type dedupEntry struct {
	done    chan struct{} // closed once flags/resp are set
	flags   byte
	resp    []byte
	evicted bool // executed, but the response bytes were dropped
}

func newDedupCache() *dedupCache {
	return &dedupCache{sessions: make(map[uint64]*dedupSession)}
}

// begin claims (sid, id) for execution. isNew reports whether the
// caller won the claim and must execute the handler and then call
// sess.complete; otherwise the entry belongs to a prior arrival and
// the caller should wait on entry.done and replay entry's response.
func (d *dedupCache) begin(sid, id uint64) (sess *dedupSession, entry *dedupEntry, isNew bool) {
	d.mu.Lock()
	sess = d.sessions[sid]
	if sess == nil {
		sess = &dedupSession{entries: make(map[uint64]*dedupEntry)}
		d.sessions[sid] = sess
		d.order = append(d.order, sid)
		for len(d.order) > dedupSessionCap {
			delete(d.sessions, d.order[0])
			d.order = d.order[1:]
		}
	} else {
		d.touch(sid)
	}
	d.mu.Unlock()

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if e, ok := sess.entries[id]; ok {
		return sess, e, false
	}
	entry = &dedupEntry{done: make(chan struct{})}
	sess.entries[id] = entry
	return sess, entry, true
}

// touch moves sid to the most-recently-used end of the session order.
// Called with d.mu held.
func (d *dedupCache) touch(sid uint64) {
	for i, s := range d.order {
		if s == sid {
			copy(d.order[i:], d.order[i+1:])
			d.order[len(d.order)-1] = sid
			return
		}
	}
}

// complete records the response for a previously begun entry, wakes
// any replays blocked on it, and enforces the session budgets: over
// the byte budget, the oldest completed responses are tombstoned
// (payload dropped, execution remembered); over the entry cap, the
// oldest entries are forgotten entirely. The newest entry is exempt
// from both, so the response just cached always survives long enough
// to answer an immediate retry.
func (s *dedupSession) complete(id uint64, e *dedupEntry, flags byte, resp []byte) {
	s.mu.Lock()
	e.flags = flags
	e.resp = resp
	s.order = append(s.order, id)
	s.bytes += len(resp)
	for s.evictHead < len(s.order)-1 && s.bytes > dedupSessionBytes {
		if oe, ok := s.entries[s.order[s.evictHead]]; ok && !oe.evicted {
			s.bytes -= len(oe.resp)
			oe.resp = nil
			oe.evicted = true
		}
		s.evictHead++
	}
	for len(s.order) > dedupEntryCap && len(s.order) > 1 {
		old := s.order[0]
		s.order = s.order[1:]
		if s.evictHead > 0 {
			s.evictHead--
		}
		if oe, ok := s.entries[old]; ok {
			if !oe.evicted {
				s.bytes -= len(oe.resp)
			}
			delete(s.entries, old)
		}
	}
	s.mu.Unlock()
	close(e.done)
}

// replay returns the completed entry's cached outcome. Callers wait
// on e.done first; the lock is still required because eviction can
// tombstone the entry at any later point. Tombstoned entries replay
// as an error response carrying replayEvictedMsg — "executed, but the
// response bytes are gone" — which stateful callers treat as proof of
// execution.
func (s *dedupSession) replay(e *dedupEntry) (flags byte, resp []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.evicted {
		return flagResponse | flagError, []byte(replayEvictedMsg)
	}
	return e.flags, e.resp
}
