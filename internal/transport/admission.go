package transport

import (
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/wire"
)

// Admission control (DESIGN.md §15). A saturated server must degrade,
// not collapse: without a bound, every arriving frame spawns a handler
// goroutine that queues unboundedly on locks and CPU, latency grows
// without limit, and by the time a request executes its caller gave up
// long ago — work that burns trial decryptions for nobody. The
// admission queue bounds concurrently-running handlers, queues a
// bounded overflow, and sheds the rest with a constant-shape MsgBusy
// frame before the dedup cache or any handler sees them, so a shed
// request is a definite non-execution the caller may freely retry.
//
// Shed order under saturation:
//
//  1. Expired first: a queued request whose deadline budget has already
//     passed is answered busy the moment a slot frees or the queue
//     needs room — executing it would waste the server's most scarce
//     resource on a response nobody is waiting for.
//  2. Then LIFO: when a slot frees, the *newest* queued request runs.
//     Under overload FIFO is the worst possible discipline — every
//     request ages to the brink of its deadline in queue and the
//     server achieves zero goodput while doing maximal work. LIFO
//     serves requests that still have budget; the old ones it starves
//     are exactly the ones shedding would have killed anyway.
//
// Obliviousness: admission decisions depend only on arrival times,
// queue state, and the header's budget field — never on the payload —
// and every rejection is the same wire.BudgetLen-byte MsgBusy frame,
// so overload behavior cannot leak operation types (the ShapeAuditor
// pins the busy frame's length per request class on both ends).

// AdmissionConfig bounds a Server's concurrent work. The zero value
// disables admission control (the historical unbounded behavior).
type AdmissionConfig struct {
	// MaxInflight is the number of concurrently executing handlers; 0
	// or negative disables admission control entirely.
	MaxInflight int
	// MaxQueue is the number of requests that may wait beyond
	// MaxInflight before arrivals shed. Zero means no queue: overflow
	// sheds immediately.
	MaxQueue int
	// ShedExpired drops requests whose deadline budget expired before
	// execution — on arrival, while queued, and when the queue needs
	// room — answering them busy instead of burning handler time.
	ShedExpired bool
	// RetryAfter is the backoff hint stamped into busy frames. Zero
	// means 25ms.
	RetryAfter time.Duration
}

func (c AdmissionConfig) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return 25 * time.Millisecond
	}
	return c.RetryAfter
}

// LimitAdmission installs (or, with a zero MaxInflight, removes)
// admission control on the server. Safe to call before or after Serve;
// requests already past admission are unaffected.
func (s *Server) LimitAdmission(cfg AdmissionConfig) {
	if cfg.MaxInflight <= 0 {
		s.admission.Store(nil)
		return
	}
	a := &admission{cfg: cfg}
	a.busy = make([]byte, wire.BudgetLen)
	millis := cfg.retryAfter().Milliseconds()
	if millis < 1 {
		millis = 1
	}
	if millis > int64(^uint32(0)) {
		millis = int64(^uint32(0))
	}
	wire.PutBudget(a.busy, uint32(millis))
	s.admission.Store(a)
}

// AdmissionStats is a point-in-time snapshot of a server's admission
// queue, for harness assertions and operator introspection.
type AdmissionStats struct {
	// QueueDepth is the number of requests currently waiting.
	QueueDepth int64
	// Shed counts requests rejected because the queue was saturated.
	Shed int64
	// Expired counts requests rejected because their deadline budget
	// ran out before execution.
	Expired int64
}

// AdmissionStats snapshots the admission counters (zero value when
// admission control is off).
func (s *Server) AdmissionStats() AdmissionStats {
	a := s.admission.Load()
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		QueueDepth: a.depth.Load(),
		Shed:       a.shed.Load(),
		Expired:    a.expired.Load(),
	}
}

// admVerdict is one admission decision.
type admVerdict int

const (
	admitRun     admVerdict = iota // slot granted; caller must release()
	admitShed                      // queue saturated: answer busy
	admitExpired                   // deadline budget ran out: answer busy
)

// An admWaiter is one request parked in the admission queue. done is
// guarded by the admission mutex and makes wake-ups single-shot: the
// release path, the make-room shed path, and the waiter's own expiry
// timer race to decide it.
type admWaiter struct {
	ch       chan admVerdict // buffered 1
	deadline time.Time       // zero = no deadline
	done     bool
}

type admission struct {
	cfg  AdmissionConfig
	busy []byte // the constant busy payload: retry-after millis

	depth   atomic.Int64 // queued requests (gauge)
	shed    atomic.Int64
	expired atomic.Int64

	mu      sync.Mutex
	running int
	queue   []*admWaiter // arrival order: oldest first
	closed  bool
}

func (a *admission) busyPayload() []byte { return a.busy }

// admit blocks until the request may run, or returns a busy verdict.
// deadline is the request's rehydrated budget (zero = none).
func (a *admission) admit(deadline time.Time) admVerdict {
	now := time.Now()
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return admitShed
	}
	if a.cfg.ShedExpired && !deadline.IsZero() && now.After(deadline) {
		a.expired.Add(1)
		a.mu.Unlock()
		return admitExpired
	}
	if a.running < a.cfg.MaxInflight {
		a.running++
		a.mu.Unlock()
		return admitRun
	}
	if len(a.queue) >= a.cfg.MaxQueue {
		if !a.makeRoomLocked(now) {
			a.shed.Add(1)
			a.mu.Unlock()
			return admitShed
		}
	}
	w := &admWaiter{ch: make(chan admVerdict, 1), deadline: deadline}
	a.queue = append(a.queue, w)
	a.depth.Store(int64(len(a.queue)))
	a.mu.Unlock()

	if deadline.IsZero() || !a.cfg.ShedExpired {
		return <-w.ch
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case v := <-w.ch:
		return v
	case <-t.C:
		a.mu.Lock()
		if w.done {
			// release/close decided first; honor its verdict (an
			// admitRun must be run-or-released, never dropped).
			a.mu.Unlock()
			return <-w.ch
		}
		w.done = true
		a.removeLocked(w)
		a.expired.Add(1)
		a.depth.Store(int64(len(a.queue)))
		a.mu.Unlock()
		return admitExpired
	}
}

// makeRoomLocked evicts one queued waiter so a newcomer can queue:
// the oldest already-expired waiter if ShedExpired (it was dead
// anyway), else the oldest overall (LIFO service order means it was
// last in line regardless). Reports false when there is nothing to
// evict (MaxQueue == 0).
func (a *admission) makeRoomLocked(now time.Time) bool {
	if len(a.queue) == 0 {
		return false
	}
	victim := 0
	verdict := admitShed
	if a.cfg.ShedExpired {
		for i, w := range a.queue {
			if !w.deadline.IsZero() && now.After(w.deadline) {
				victim, verdict = i, admitExpired
				break
			}
		}
	}
	w := a.queue[victim]
	a.queue = append(a.queue[:victim], a.queue[victim+1:]...)
	w.done = true
	w.ch <- verdict
	if verdict == admitExpired {
		a.expired.Add(1)
	} else {
		a.shed.Add(1)
	}
	a.depth.Store(int64(len(a.queue)))
	return true
}

// removeLocked deletes w from the queue (it may already be gone if a
// concurrent decision won the race — done guards that before calling).
func (a *admission) removeLocked(w *admWaiter) {
	for i, q := range a.queue {
		if q == w {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return
		}
	}
}

// release returns a running slot. Expired waiters are answered busy
// first; the slot then transfers to the newest surviving waiter (LIFO)
// or retires.
func (a *admission) release() {
	now := time.Now()
	a.mu.Lock()
	if a.cfg.ShedExpired {
		kept := a.queue[:0]
		for _, w := range a.queue {
			if !w.deadline.IsZero() && now.After(w.deadline) {
				w.done = true
				w.ch <- admitExpired
				a.expired.Add(1)
			} else {
				kept = append(kept, w)
			}
		}
		a.queue = kept
	}
	if n := len(a.queue); n > 0 {
		w := a.queue[n-1]
		a.queue = a.queue[:n-1]
		w.done = true
		w.ch <- admitRun // slot transfers; running count unchanged
	} else {
		a.running--
	}
	a.depth.Store(int64(len(a.queue)))
	a.mu.Unlock()
}

// close wakes every queued waiter with a busy verdict so a draining
// server's handler goroutines can exit.
func (a *admission) close() {
	a.mu.Lock()
	a.closed = true
	for _, w := range a.queue {
		w.done = true
		w.ch <- admitShed
	}
	a.queue = nil
	a.depth.Store(0)
	a.mu.Unlock()
}
