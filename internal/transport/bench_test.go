package transport

import (
	"context"
	"fmt"
	"testing"

	"ortoa/internal/netsim"
)

func benchServer(b *testing.B) *netsim.Listener {
	b.Helper()
	s := NewServer()
	s.Handle(1, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	b.Cleanup(func() { s.Close() })
	return l
}

func BenchmarkCallEcho(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			l := benchServer(b)
			c, err := Dial(l.Dial, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			payload := make([]byte, size)
			b.SetBytes(int64(2 * size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Call(1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCallParallel(b *testing.B) {
	l := benchServer(b)
	c, err := Dial(l.Dial, 4)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 256)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Call(1, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}
