package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ortoa/internal/netsim"
)

const (
	msgEcho  = 1
	msgFail  = 2
	msgSlow  = 3
	msgCount = 4
)

func startTestServer(t *testing.T, link netsim.Link) (*Server, *netsim.Listener) {
	t.Helper()
	s := NewServer()
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	s.Handle(msgFail, func(_ context.Context, p []byte) ([]byte, error) { return nil, errors.New("handler exploded") })
	s.Handle(msgSlow, func(_ context.Context, p []byte) ([]byte, error) {
		time.Sleep(50 * time.Millisecond)
		return append([]byte("slow:"), p...), nil
	})
	l := netsim.Listen(link)
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l
}

func dialTest(t *testing.T, l *netsim.Listener, pool int) *Client {
	t.Helper()
	c, err := Dial(l.Dial, pool)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCallEcho(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	resp, err := c.Call(msgEcho, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("payload")) {
		t.Errorf("echo = %q", resp)
	}
}

func TestEmptyPayload(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	resp, err := c.Call(msgEcho, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Errorf("echo of empty = %q", resp)
	}
}

func TestLargePayload(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	payload := bytes.Repeat([]byte{0xA5}, 1<<20)
	resp, err := c.Call(msgEcho, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Error("1MiB payload corrupted in flight")
	}
}

func TestRemoteError(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	_, err := c.Call(msgFail, []byte("x"))
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if !strings.Contains(re.Msg, "handler exploded") {
		t.Errorf("remote message = %q", re.Msg)
	}
}

func TestUnknownMessageType(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	_, err := c.Call(99, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestPipelining(t *testing.T) {
	// A slow request must not block a fast one on the same connection.
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)

	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		if _, err := c.Call(msgSlow, []byte("a")); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(5 * time.Millisecond) // let the slow call get in flight

	start := time.Now()
	if _, err := c.Call(msgEcho, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Errorf("fast call took %v behind a slow one; pipelining broken", elapsed)
	}
	<-slowDone
}

func TestConcurrentCalls(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 4)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("req-%d", i))
			resp, err := c.Call(msgEcho, msg)
			if err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(resp, msg) {
				t.Errorf("call %d: got %q", i, resp)
			}
		}(i)
	}
	wg.Wait()
}

func TestCallAfterClose(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	c.Close()
	if _, err := c.Call(msgEcho, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Call after Close = %v, want ErrClosed", err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	s, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	// Verify the connection works, then kill the server.
	if _, err := c.Call(msgEcho, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Subsequent dials must fail.
	if _, err := Dial(l.Dial, 1); err == nil {
		t.Error("Dial succeeded after server close")
	}
}

func TestServerCloseDrainsInflight(t *testing.T) {
	// A request already accepted when Close begins must complete: its
	// handler finishes, its response reaches the caller, and only then
	// does Close return.
	s := NewServer()
	started := make(chan struct{})
	s.Handle(msgSlow, func(_ context.Context, p []byte) ([]byte, error) {
		close(started)
		time.Sleep(50 * time.Millisecond)
		return []byte("done"), nil
	})
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	c, err := Dial(l.Dial, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	type callResult struct {
		resp []byte
		err  error
	}
	callc := make(chan callResult, 1)
	go func() {
		resp, err := c.Call(msgSlow, nil)
		callc <- callResult{resp, err}
	}()
	<-started // the handler is running; now shut down under it

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()

	select {
	case res := <-callc:
		if res.err != nil {
			t.Errorf("in-flight call failed during Close: %v", res.err)
		} else if !bytes.Equal(res.resp, []byte("done")) {
			t.Errorf("in-flight call response = %q", res.resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call never completed during Close")
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close never returned after the in-flight handler finished")
	}
}

func TestServerCloseUnblocksIdleConns(t *testing.T) {
	// Close must not hang on connections that are open but idle — their
	// read loops sit blocked in readFrame with nothing in flight.
	s, l := startTestServer(t, netsim.Loopback)
	var clients []*Client
	for i := 0; i < 3; i++ {
		c := dialTest(t, l, 2)
		if _, err := c.Call(msgEcho, []byte("warm")); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung with idle open connections")
	}
	// The drained conns are really gone: further calls fail.
	for _, c := range clients {
		if _, err := c.Call(msgEcho, nil); err == nil {
			t.Error("call succeeded on a connection the server closed")
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	if _, err := c.Call(msgEcho, nil); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := s.Close(); err != nil {
			t.Errorf("first Close: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("second Close: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("repeated Close hung")
	}
}

func TestConnectionLossFailsPending(t *testing.T) {
	s := NewServer()
	block := make(chan struct{})
	s.Handle(msgSlow, func(_ context.Context, p []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()
	defer close(block)

	c, err := Dial(l.Dial, 1)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Call(msgSlow, nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close() // drops the conn under the pending call
	select {
	case err := <-errc:
		if err == nil {
			t.Error("pending call succeeded after connection loss")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending call never failed after connection loss")
	}
}

func TestStats(t *testing.T) {
	_, l := startTestServer(t, netsim.Loopback)
	c := dialTest(t, l, 1)
	payload := make([]byte, 100)
	if _, err := c.Call(msgEcho, payload); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Calls != 1 {
		t.Errorf("Calls = %d, want 1", st.Calls)
	}
	wantSent := int64(headerSize + 100)
	if st.BytesSent != wantSent {
		t.Errorf("BytesSent = %d, want %d", st.BytesSent, wantSent)
	}
	if st.BytesReceived != wantSent {
		t.Errorf("BytesReceived = %d, want %d", st.BytesReceived, wantSent)
	}
}

func TestOverSimulatedWAN(t *testing.T) {
	// One call over an Oregon-like link should take about one RTT.
	link := netsim.Link{RTT: 20 * time.Millisecond}
	_, l := startTestServer(t, link)
	c := dialTest(t, l, 1)
	start := time.Now()
	if _, err := c.Call(msgEcho, []byte("x")); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 18*time.Millisecond {
		t.Errorf("WAN call took %v, want ≥ ~20ms", elapsed)
	}
	if elapsed > 150*time.Millisecond {
		t.Errorf("WAN call took %v, want ~20ms", elapsed)
	}
}

func TestFrameCorruptionDropsConn(t *testing.T) {
	s := NewServer()
	s.Handle(msgEcho, func(_ context.Context, p []byte) ([]byte, error) { return p, nil })
	l := netsim.Listen(netsim.Loopback)
	go s.Serve(l)
	defer s.Close()

	raw, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// A frame declaring an absurd length must be rejected; the server
	// closes the connection rather than allocating.
	bad := make([]byte, headerSize)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := raw.Write(bad); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Error("server responded to a corrupt frame")
	}
}

var _ net.Listener = (*netsim.Listener)(nil)
