// Package netsim provides in-memory net.Conn pairs with configurable
// one-way propagation latency and per-connection bandwidth.
//
// It stands in for the paper's AWS/Azure WAN deployment and for the
// Linux `tc` shaping the authors used for TEE-ORTOA (§6). A Link's RTT
// models cross-datacenter propagation (Table 2); its Bandwidth models
// effective per-stream TCP throughput, which is what turns LBL-ORTOA's
// large encryption tables into the measurable communication-overhead
// term `o` of §6.3.2 and the Fig 3b crossover.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"time"
)

// A Link describes one bidirectional network path.
type Link struct {
	// RTT is the round-trip propagation delay; each direction delays
	// delivery by RTT/2.
	RTT time.Duration
	// Bandwidth is the per-connection throughput in bytes/second.
	// Zero means unlimited.
	Bandwidth int64
	// Jitter adds a uniform random extra delay in [0, Jitter) to each
	// delivery, modeling WAN variance. Zero means deterministic
	// latency (the default; experiments average over runs instead).
	Jitter time.Duration
	// Fault, when non-nil, injects connection resets, stalls,
	// blackholed responses, and partition windows into every
	// connection traversing the link (see FaultPlan). The plan is
	// shared by pointer, so one plan governs — and one Stats call
	// accounts for — all of the link's connections.
	Fault *FaultPlan
}

// DefaultBandwidth approximates the effective single-stream TCP
// throughput the paper's r5.xlarge cross-region links sustain
// (~100 Mbit/s). Experiments use it unless overridden.
const DefaultBandwidth = 12 << 20 // 12 MiB/s

// Datacenter links from Table 2: proxy/clients in California, server at
// the named location. Bandwidth set to DefaultBandwidth.
var (
	Loopback = Link{RTT: 0, Bandwidth: 0}
	Oregon   = Link{RTT: 21840 * time.Microsecond, Bandwidth: DefaultBandwidth}
	Virginia = Link{RTT: 62060 * time.Microsecond, Bandwidth: DefaultBandwidth}
	London   = Link{RTT: 147730 * time.Microsecond, Bandwidth: DefaultBandwidth}
	Mumbai   = Link{RTT: 230300 * time.Microsecond, Bandwidth: DefaultBandwidth}
)

// Locations maps Table 2 location names to their links, in the order
// the paper sweeps them (Fig 2a).
var Locations = []struct {
	Name string
	Link Link
}{
	{"Oregon", Oregon},
	{"N.Virginia", Virginia},
	{"London", London},
	{"Mumbai", Mumbai},
}

// OneWay returns the one-direction propagation delay.
func (l Link) OneWay() time.Duration { return l.RTT / 2 }

// TransferTime returns the serialization delay for n bytes.
func (l Link) TransferTime(n int) time.Duration {
	if l.Bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(l.Bandwidth) * float64(time.Second))
}

// String renders the link for experiment labels.
func (l Link) String() string {
	if l.Bandwidth <= 0 {
		return fmt.Sprintf("rtt=%v bw=inf", l.RTT)
	}
	return fmt.Sprintf("rtt=%v bw=%dMiB/s", l.RTT, l.Bandwidth>>20)
}

// Pipe returns a connected pair of net.Conns joined by link. Data
// written to one end becomes readable at the other after the link's
// serialization plus propagation delay. Closing either end closes both
// directions.
func Pipe(link Link) (net.Conn, net.Conn) {
	ab := newQueue()
	ba := newQueue()
	// The first end is by convention the dialing (client) side and the
	// second the accepting (server) side — Listener.Dial returns them
	// that way — so fault injection can target the response direction.
	a := &conn{link: link, rd: ba, wr: ab, local: addr("netsim-a"), remote: addr("netsim-b")}
	b := &conn{link: link, rd: ab, wr: ba, server: true, local: addr("netsim-b"), remote: addr("netsim-a")}
	return a, b
}

type addr string

func (a addr) Network() string { return "netsim" }
func (a addr) String() string  { return string(a) }

// A chunk is one Write's payload plus the time it becomes deliverable.
type chunk struct {
	deliverAt time.Time
	data      []byte
}

// A queue is one direction of a pipe. Exactly one conn reads from a
// queue, so the reader's deadline lives here: pop re-reads it on every
// wakeup, which is what lets SetReadDeadline interrupt a Read already
// in progress — the net.Conn contract graceful server shutdown relies
// on.
type queue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	chunks    []chunk
	busyUntil time.Time // link serialization horizon
	deadline  time.Time // reader's deadline; zero means none
	closed    bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues one write; stall adds an injected-fault delay on top
// of the link's modeled serialization and propagation time.
func (q *queue) push(link Link, p []byte, stall time.Duration) error {
	data := make([]byte, len(p))
	copy(data, p)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return io.ErrClosedPipe
	}
	now := time.Now()
	start := now
	if q.busyUntil.After(start) {
		start = q.busyUntil
	}
	done := start.Add(link.TransferTime(len(p)))
	q.busyUntil = done
	delay := link.OneWay() + stall
	if link.Jitter > 0 {
		delay += time.Duration(rand.Int64N(int64(link.Jitter)))
	}
	q.chunks = append(q.chunks, chunk{deliverAt: done.Add(delay), data: data})
	q.cond.Broadcast()
	return nil
}

// pop blocks until data is available (and its delivery time has
// passed), the queue is closed, or the reader's deadline expires. The
// deadline is re-read each iteration so a concurrent SetReadDeadline
// takes effect immediately.
func (q *queue) pop(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		deadline := q.deadline
		if len(q.chunks) > 0 {
			head := &q.chunks[0]
			now := time.Now()
			if wait := head.deliverAt.Sub(now); wait > 0 {
				if !deadline.IsZero() && deadline.Before(head.deliverAt) {
					if !deadline.After(now) {
						return 0, os.ErrDeadlineExceeded
					}
					q.sleepLocked(deadline.Sub(now))
					continue
				}
				q.sleepLocked(wait)
				continue
			}
			n := copy(p, head.data)
			if n == len(head.data) {
				q.chunks = q.chunks[1:]
				if len(q.chunks) == 0 {
					q.chunks = nil
				}
			} else {
				head.data = head.data[n:]
			}
			return n, nil
		}
		if q.closed {
			return 0, io.EOF
		}
		if !deadline.IsZero() {
			now := time.Now()
			if !deadline.After(now) {
				return 0, os.ErrDeadlineExceeded
			}
			q.sleepLocked(deadline.Sub(now))
			continue
		}
		q.cond.Wait()
	}
}

// sleepLocked waits for d or until the queue state changes, whichever
// comes first, releasing the lock while asleep.
func (q *queue) sleepLocked(d time.Duration) {
	timer := time.AfterFunc(d, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	q.cond.Wait()
	timer.Stop()
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

type conn struct {
	link   Link
	rd, wr *queue
	server bool // the accepting end; its writes are responses
	local  addr
	remote addr

	mu     sync.Mutex
	closed bool
}

func (c *conn) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	return c.rd.pop(p)
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, io.ErrClosedPipe
	}
	var stall time.Duration
	if f := c.link.Fault; f != nil {
		verdict, s := f.inject(c.server)
		switch verdict {
		case faultDrop:
			// Report success; the bytes vanish. The peer sees silence,
			// exactly like a response lost in a partition or blackhole.
			return len(p), nil
		case faultReset:
			c.Close()
			return 0, io.ErrClosedPipe
		}
		stall = s
	}
	if err := c.wr.push(c.link, p, stall); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.rd.close()
	c.wr.close()
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	return c.SetReadDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	// Store on the read queue and wake any blocked reader so it
	// re-evaluates the deadline — including a Read already in progress.
	c.rd.mu.Lock()
	c.rd.deadline = t
	c.rd.cond.Broadcast()
	c.rd.mu.Unlock()
	return nil
}

func (c *conn) SetWriteDeadline(time.Time) error {
	// Writes never block in netsim; the deadline is trivially met.
	return nil
}

// A Listener accepts in-memory connections created by its Dial method,
// so a server and many clients can share one simulated network segment.
type Listener struct {
	link    Link
	pending chan net.Conn
	done    chan struct{}
	once    sync.Once
}

// Listen returns a Listener whose connections traverse link.
func Listen(link Link) *Listener {
	return &Listener{
		link:    link,
		pending: make(chan net.Conn, 128),
		done:    make(chan struct{}),
	}
}

// Dial creates a new connection to the listener. It fails during a
// fault plan's partition windows, like a SYN into a partitioned
// network.
func (l *Listener) Dial() (net.Conn, error) {
	select {
	case <-l.done:
		return nil, errors.New("netsim: listener closed")
	default:
	}
	if f := l.link.Fault; f != nil && f.refuseDial() {
		return nil, errors.New("netsim: link partitioned")
	}
	client, server := Pipe(l.link)
	select {
	case l.pending <- server:
		return client, nil
	case <-l.done:
		client.Close()
		server.Close()
		return nil, errors.New("netsim: listener closed")
	}
}

// Accept waits for the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, errors.New("netsim: listener closed")
	}
}

// Close stops the listener. Established connections are unaffected.
func (l *Listener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return addr("netsim-listener") }
