package netsim

import (
	"bytes"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()
	msg := []byte("hello across the wire")
	go func() {
		if _, err := a.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("read %q, want %q", buf, msg)
	}
}

func TestLatencyApplied(t *testing.T) {
	link := Link{RTT: 40 * time.Millisecond}
	a, b := Pipe(link)
	defer a.Close()
	defer b.Close()

	start := time.Now()
	go a.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 18*time.Millisecond {
		t.Errorf("one-way delivery took %v, want ≥ ~20ms", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("one-way delivery took %v, far above 20ms", elapsed)
	}
}

func TestBandwidthApplied(t *testing.T) {
	// 1 MiB at 8 MiB/s ≈ 125ms of serialization.
	link := Link{Bandwidth: 8 << 20}
	a, b := Pipe(link)
	defer a.Close()
	defer b.Close()

	payload := make([]byte, 1<<20)
	start := time.Now()
	go a.Write(payload)
	buf := make([]byte, len(payload))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Errorf("1MiB at 8MiB/s delivered in %v, want ≥ ~125ms", elapsed)
	}
}

func TestSerializationQueues(t *testing.T) {
	// Two back-to-back writes must serialize: the second waits for the
	// first's transfer time.
	link := Link{Bandwidth: 4 << 20} // 256KiB = 62.5ms
	a, b := Pipe(link)
	defer a.Close()
	defer b.Close()

	start := time.Now()
	go func() {
		a.Write(make([]byte, 256<<10))
		a.Write(make([]byte, 256<<10))
	}()
	buf := make([]byte, 512<<10)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("two 256KiB writes delivered in %v, want ≥ ~125ms", elapsed)
	}
}

func TestTransferTime(t *testing.T) {
	l := Link{Bandwidth: 1 << 20}
	if got := l.TransferTime(1 << 20); got != time.Second {
		t.Errorf("TransferTime(1MiB @ 1MiB/s) = %v, want 1s", got)
	}
	if got := Loopback.TransferTime(1 << 30); got != 0 {
		t.Errorf("unlimited bandwidth TransferTime = %v, want 0", got)
	}
}

func TestBidirectional(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 4)
		io.ReadFull(b, buf)
		b.Write(append(buf, '!'))
	}()
	a.Write([]byte("ping"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(a, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping!" {
		t.Errorf("echo = %q", buf)
	}
}

func TestPartialReads(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()
	go a.Write([]byte("abcdef"))
	var got []byte
	for len(got) < 6 {
		buf := make([]byte, 2)
		n, err := b.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if string(got) != "abcdef" {
		t.Errorf("reassembled %q", got)
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	a, b := Pipe(Loopback)
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != io.EOF {
			t.Errorf("Read after Close = %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after Close")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	a, b := Pipe(Loopback)
	b.Close()
	a.Close()
	if _, err := a.Write([]byte("x")); err == nil {
		t.Error("Write after Close succeeded")
	}
}

func TestReadDeadline(t *testing.T) {
	a, b := Pipe(Loopback)
	defer a.Close()
	defer b.Close()
	b.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := b.Read(buf)
	if !os.IsTimeout(err) {
		t.Errorf("Read past deadline = %v, want timeout", err)
	}
	// Clearing the deadline makes reads work again.
	b.SetReadDeadline(time.Time{})
	go a.Write([]byte("y"))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatalf("Read after clearing deadline: %v", err)
	}
}

func TestListenerAcceptDial(t *testing.T) {
	l := Listen(Loopback)
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Error(err)
			return
		}
		conn.Write(buf)
	}()

	c, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("echo!"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "echo!" {
		t.Errorf("echo = %q", buf)
	}
	wg.Wait()
}

func TestListenerClose(t *testing.T) {
	l := Listen(Loopback)
	l.Close()
	if _, err := l.Accept(); err == nil {
		t.Error("Accept on closed listener succeeded")
	}
	if _, err := l.Dial(); err == nil {
		t.Error("Dial on closed listener succeeded")
	}
	// Idempotent close.
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestManyConcurrentConns(t *testing.T) {
	l := Listen(Link{RTT: 2 * time.Millisecond})
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(conn)
		}
	}()

	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := l.Dial()
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := []byte{byte(i), byte(i + 1)}
			c.Write(msg)
			buf := make([]byte, 2)
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(buf, msg) {
				t.Errorf("conn %d echo mismatch", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestJitterDelaysButPreservesOrder(t *testing.T) {
	link := Link{RTT: 4 * time.Millisecond, Jitter: 10 * time.Millisecond}
	a, b := Pipe(link)
	defer a.Close()
	defer b.Close()
	go func() {
		for i := 0; i < 8; i++ {
			a.Write([]byte{byte(i)})
		}
	}()
	start := time.Now()
	buf := make([]byte, 8)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if buf[i] != byte(i) {
			t.Fatalf("jitter reordered delivery: %v", buf)
		}
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("delivery took %v, want ≥ one-way latency", elapsed)
	}
}

func TestJitterVariesDelivery(t *testing.T) {
	link := Link{Jitter: 30 * time.Millisecond}
	var times []time.Duration
	for i := 0; i < 6; i++ {
		a, b := Pipe(link)
		start := time.Now()
		go a.Write([]byte{1})
		buf := make([]byte, 1)
		if _, err := io.ReadFull(b, buf); err != nil {
			t.Fatal(err)
		}
		times = append(times, time.Since(start))
		a.Close()
		b.Close()
	}
	minT, maxT := times[0], times[0]
	for _, d := range times {
		if d < minT {
			minT = d
		}
		if d > maxT {
			maxT = d
		}
	}
	if maxT-minT < time.Millisecond {
		t.Errorf("jitter produced near-identical deliveries: %v", times)
	}
}

func TestTable2Links(t *testing.T) {
	// Sanity-check that the Table 2 presets carry the paper's RTTs.
	want := map[string]time.Duration{
		"Oregon":     21840 * time.Microsecond,
		"N.Virginia": 62060 * time.Microsecond,
		"London":     147730 * time.Microsecond,
		"Mumbai":     230300 * time.Microsecond,
	}
	if len(Locations) != 4 {
		t.Fatalf("Locations has %d entries, want 4", len(Locations))
	}
	for _, loc := range Locations {
		if want[loc.Name] != loc.Link.RTT {
			t.Errorf("%s RTT = %v, want %v", loc.Name, loc.Link.RTT, want[loc.Name])
		}
	}
}
