package netsim

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// A FaultPlan injects failures into every connection that traverses a
// Link, modeling the WAN pathologies a production ORTOA deployment
// must survive: connection resets, delivery stalls, blackholed frames
// (sent but never delivered — the classic "did my write commit?"
// ambiguity), and timed partition windows during which the link drops
// all traffic and refuses new connections.
//
// Random faults draw from one PRNG seeded with Seed, so a chaos run is
// reproducible: the same plan against the same deterministic workload
// injects the same fault sequence. Determinism across two runs
// requires the runs to issue identical write sequences (e.g. a
// sequential single-client workload), since concurrent writers
// interleave their draws. Probabilities of zero consume no randomness,
// so plans that differ only in which fault is enabled stay comparable.
//
// Share one *FaultPlan per Link; the zero value injects nothing.
type FaultPlan struct {
	// Seed initializes the fault PRNG.
	Seed uint64
	// ResetProb is the per-write probability (either direction) that
	// the connection is torn down mid-conversation.
	ResetProb float64
	// StallProb is the per-write probability that delivery of the
	// written bytes is delayed by an extra StallFor.
	StallProb float64
	// StallFor is the extra delivery delay of a stalled write.
	StallFor time.Duration
	// BlackholeProb is the per-write probability that a server-to-
	// client write is silently dropped: the request executed but its
	// response never arrives, leaving the client's outcome ambiguous.
	BlackholeProb float64
	// PartitionEvery and PartitionFor open a partition window of
	// length PartitionFor at the end of every PartitionEvery period:
	// all writes are dropped and new dials refused. Zero disables
	// partitions.
	PartitionEvery time.Duration
	PartitionFor   time.Duration
	// MaxFaults caps the total number of random faults injected
	// (resets + blackholes + stalls; partitions are time-driven and
	// exempt). Zero means unlimited. Targeted tests use MaxFaults: 1
	// to inject exactly one failure.
	MaxFaults int64

	once     sync.Once
	mu       sync.Mutex
	rng      *rand.Rand
	start    time.Time
	disabled atomic.Bool
	used     atomic.Int64

	resets         atomic.Int64
	stalls         atomic.Int64
	blackholes     atomic.Int64
	partitionDrops atomic.Int64
	dialRefusals   atomic.Int64
}

// FaultStats counts the faults a plan has injected.
type FaultStats struct {
	Resets         int64 // connections torn down mid-write
	Stalls         int64 // writes delivered late
	Blackholes     int64 // responses silently dropped
	PartitionDrops int64 // writes dropped inside partition windows
	DialRefusals   int64 // dials refused inside partition windows
}

// Total returns the number of injected faults of all kinds.
func (s FaultStats) Total() int64 {
	return s.Resets + s.Stalls + s.Blackholes + s.PartitionDrops + s.DialRefusals
}

func (f *FaultPlan) init() {
	f.once.Do(func() {
		f.rng = rand.New(rand.NewPCG(f.Seed, 0x0470afa017))
		f.start = time.Now()
	})
}

// SetActive enables or disables fault injection. Plans start active;
// chaos experiments deactivate the plan before their verification
// pass so recovery is checked on a healthy network.
func (f *FaultPlan) SetActive(v bool) { f.disabled.Store(!v) }

func (f *FaultPlan) active() bool { return f != nil && !f.disabled.Load() }

// draw reports a hit with probability p. p <= 0 consumes no
// randomness, keeping plans with disjoint fault sets comparable under
// one seed.
func (f *FaultPlan) draw(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	hit := f.rng.Float64() < p
	f.mu.Unlock()
	return hit
}

// spend claims one unit of the MaxFaults budget.
func (f *FaultPlan) spend() bool {
	if f.MaxFaults <= 0 {
		return true
	}
	for {
		u := f.used.Load()
		if u >= f.MaxFaults {
			return false
		}
		if f.used.CompareAndSwap(u, u+1) {
			return true
		}
	}
}

// partitioned reports whether now falls inside a partition window.
// Every period starts healthy and ends with PartitionFor of partition,
// so a plan's first moments are always usable.
func (f *FaultPlan) partitioned(now time.Time) bool {
	if f.PartitionEvery <= 0 || f.PartitionFor <= 0 {
		return false
	}
	phase := now.Sub(f.start) % f.PartitionEvery
	return phase >= f.PartitionEvery-f.PartitionFor
}

// Stats returns cumulative injected-fault counts.
func (f *FaultPlan) Stats() FaultStats {
	return FaultStats{
		Resets:         f.resets.Load(),
		Stalls:         f.stalls.Load(),
		Blackholes:     f.blackholes.Load(),
		PartitionDrops: f.partitionDrops.Load(),
		DialRefusals:   f.dialRefusals.Load(),
	}
}

// inject applies the plan to one write of len n on a connection.
// server marks the server-to-client direction (responses), the only
// one blackholes apply to. The returned verdict tells the conn what to
// do with the bytes.
func (f *FaultPlan) inject(server bool) (v faultVerdict, stall time.Duration) {
	if !f.active() {
		return faultDeliver, 0
	}
	f.init()
	if f.partitioned(time.Now()) {
		f.partitionDrops.Add(1)
		return faultDrop, 0
	}
	if f.draw(f.ResetProb) && f.spend() {
		f.resets.Add(1)
		return faultReset, 0
	}
	if server && f.draw(f.BlackholeProb) && f.spend() {
		f.blackholes.Add(1)
		return faultDrop, 0
	}
	if f.draw(f.StallProb) && f.spend() {
		f.stalls.Add(1)
		return faultDeliver, f.StallFor
	}
	return faultDeliver, 0
}

// refuseDial reports whether a new connection should be refused (and
// counts it): dials fail inside partition windows, modeling the SYN
// going nowhere.
func (f *FaultPlan) refuseDial() bool {
	if !f.active() {
		return false
	}
	f.init()
	if !f.partitioned(time.Now()) {
		return false
	}
	f.dialRefusals.Add(1)
	return true
}

type faultVerdict int

const (
	faultDeliver faultVerdict = iota // deliver (possibly stalled)
	faultDrop                        // pretend success, never deliver
	faultReset                       // tear the connection down
)
