package netsim

import (
	"errors"
	"io"
	"os"
	"testing"
	"time"
)

func TestFaultPlanZeroValueInjectsNothing(t *testing.T) {
	var plan FaultPlan
	for i := 0; i < 100; i++ {
		if v, stall := plan.inject(i%2 == 0); v != faultDeliver || stall != 0 {
			t.Fatalf("zero plan injected verdict %v stall %v", v, stall)
		}
	}
	if got := plan.Stats(); got != (FaultStats{}) {
		t.Errorf("zero plan stats = %+v", got)
	}
}

func TestFaultPlanMaxFaultsBudget(t *testing.T) {
	plan := &FaultPlan{ResetProb: 1, MaxFaults: 2}
	resets := 0
	for i := 0; i < 10; i++ {
		if v, _ := plan.inject(false); v == faultReset {
			resets++
		}
	}
	if resets != 2 {
		t.Errorf("injected %d resets, want exactly MaxFaults=2", resets)
	}
	if got := plan.Stats().Resets; got != 2 {
		t.Errorf("Stats().Resets = %d, want 2", got)
	}
}

func TestFaultPlanSetActive(t *testing.T) {
	plan := &FaultPlan{ResetProb: 1}
	plan.SetActive(false)
	for i := 0; i < 10; i++ {
		if v, _ := plan.inject(false); v != faultDeliver {
			t.Fatal("deactivated plan injected a fault")
		}
	}
	if n := plan.Stats().Total(); n != 0 {
		t.Errorf("deactivated plan counted %d faults", n)
	}
	plan.SetActive(true)
	if v, _ := plan.inject(false); v != faultReset {
		t.Error("reactivated plan did not inject")
	}
}

func TestFaultPlanDeterministicUnderSeed(t *testing.T) {
	mk := func() *FaultPlan {
		return &FaultPlan{
			Seed:          7,
			ResetProb:     0.2,
			StallProb:     0.2,
			StallFor:      5 * time.Millisecond,
			BlackholeProb: 0.2,
		}
	}
	a, b := mk(), mk()
	var sawReset, sawStall, sawHole bool
	for i := 0; i < 300; i++ {
		server := i%3 == 0
		va, sa := a.inject(server)
		vb, sb := b.inject(server)
		if va != vb || sa != sb {
			t.Fatalf("draw %d diverged under one seed: (%v,%v) vs (%v,%v)", i, va, sa, vb, sb)
		}
		sawReset = sawReset || va == faultReset
		sawStall = sawStall || sa > 0
		sawHole = sawHole || (server && va == faultDrop)
	}
	if !sawReset || !sawStall || !sawHole {
		t.Errorf("300 draws exercised reset=%v stall=%v blackhole=%v; want all", sawReset, sawStall, sawHole)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestFaultPlanPartitionWindow(t *testing.T) {
	plan := &FaultPlan{PartitionEvery: 100 * time.Millisecond, PartitionFor: 30 * time.Millisecond}
	plan.init()
	cases := []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, // periods start healthy
		{69 * time.Millisecond, false},
		{71 * time.Millisecond, true}, // window is the period's last 30ms
		{99 * time.Millisecond, true},
		{100 * time.Millisecond, false}, // next period starts healthy again
		{171 * time.Millisecond, true},
	}
	for _, c := range cases {
		if got := plan.partitioned(plan.start.Add(c.at)); got != c.want {
			t.Errorf("partitioned at +%v = %v, want %v", c.at, got, c.want)
		}
	}
}

func TestDialRefusedDuringPartition(t *testing.T) {
	// A window as long as the period keeps the link partitioned for the
	// whole test run.
	plan := &FaultPlan{PartitionEvery: time.Hour, PartitionFor: time.Hour}
	l := Listen(Link{Fault: plan})
	defer l.Close()
	if _, err := l.Dial(); err == nil {
		t.Fatal("dial succeeded into a partitioned link")
	}
	if got := plan.Stats().DialRefusals; got < 1 {
		t.Errorf("DialRefusals = %d, want >= 1", got)
	}
	// Established connections drop their writes instead.
	a, b := Pipe(Link{Fault: plan})
	defer a.Close()
	defer b.Close()
	if n, err := a.Write([]byte("req")); err != nil || n != 3 {
		t.Fatalf("partitioned write = (%d, %v), want silent drop", n, err)
	}
	b.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := b.Read(make([]byte, 8)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("partitioned bytes were delivered (read err = %v)", err)
	}
	if got := plan.Stats().PartitionDrops; got < 1 {
		t.Errorf("PartitionDrops = %d, want >= 1", got)
	}
}

func TestFaultResetTearsConnDown(t *testing.T) {
	plan := &FaultPlan{ResetProb: 1, MaxFaults: 1}
	a, b := Pipe(Link{Fault: plan})
	defer b.Close()
	if _, err := a.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("reset write err = %v, want ErrClosedPipe", err)
	}
	// The reset closed the connection; the peer sees EOF.
	if _, err := b.Read(make([]byte, 1)); !errors.Is(err, io.EOF) {
		t.Errorf("peer read after reset = %v, want EOF", err)
	}
	if got := plan.Stats().Resets; got != 1 {
		t.Errorf("Resets = %d, want 1", got)
	}
}

func TestFaultStallDelaysDelivery(t *testing.T) {
	plan := &FaultPlan{StallProb: 1, StallFor: 60 * time.Millisecond, MaxFaults: 1}
	a, b := Pipe(Link{Fault: plan})
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if _, err := a.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := b.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Errorf("stalled write delivered after %v, want >= ~60ms", elapsed)
	}
	if string(buf[:n]) != "slow" {
		t.Errorf("stalled payload = %q", buf[:n])
	}
	if got := plan.Stats().Stalls; got != 1 {
		t.Errorf("Stalls = %d, want 1", got)
	}
}

func TestFaultBlackholeServerDirectionOnly(t *testing.T) {
	plan := &FaultPlan{BlackholeProb: 1, MaxFaults: 2}
	a, b := Pipe(Link{Fault: plan}) // a dials (client), b accepts (server)
	defer a.Close()
	defer b.Close()

	// Client-to-server writes are never blackholed.
	if _, err := a.Write([]byte("req")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := b.Read(buf)
	if err != nil || string(buf[:n]) != "req" {
		t.Fatalf("client write blackholed: (%q, %v)", buf[:n], err)
	}

	// The server's response vanishes: write reports success, nothing
	// arrives.
	if n, err := b.Write([]byte("resp")); err != nil || n != 4 {
		t.Fatalf("blackholed response write = (%d, %v), want silent drop", n, err)
	}
	a.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := a.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("blackholed response was delivered (read err = %v)", err)
	}
	if got := plan.Stats().Blackholes; got != 1 {
		t.Errorf("Blackholes = %d, want 1", got)
	}
}
