// Package vfs abstracts the small filesystem surface the kvstore's
// durability layer touches — open/rename/remove plus the two fsync
// shapes crash consistency needs (file data and directory entries) —
// so the same WAL, snapshot, and checkpoint code runs against the real
// disk in production and against the crash-fault injector
// (internal/crashfs) in tests. The surface is deliberately tiny: every
// method corresponds to an operation whose crash semantics the
// durability model in DESIGN.md §10 reasons about.
package vfs

import (
	"bufio"
	"io"
	"os"
)

// A File is an open file handle. Implementations must support
// concurrent Write/Sync from different goroutines (the WAL's group
// commit flushes from one goroutine while a leader fsyncs from
// another).
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Truncate changes the file size without moving the offset.
	Truncate(size int64) error
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Name returns the path the file was opened with.
	Name() string
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
}

// An FS provides the filesystem operations the durability layer uses.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making renames and file
	// creations under it durable. POSIX does not guarantee a renamed
	// file survives a crash until its parent directory is synced.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// OpenFile opens name with os.OpenFile semantics.
func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename renames (moves) oldpath to newpath.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove removes the named file.
func (OS) Remove(name string) error { return os.Remove(name) }

// MkdirAll creates dir and any missing parents.
func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

// SyncDir opens dir and fsyncs it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the directory component of path ("." if none), using
// forward slashes only — the durability layer builds its own paths.
func Dir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			if i == 0 {
				return "/"
			}
			return path[:i]
		}
	}
	return "."
}

// WriteFileAtomic publishes a file crash-atomically: it writes the
// content produced by write to a temporary sibling, fsyncs it, renames
// it over path, and fsyncs the parent directory. After a crash,
// readers of path see either the old content or the complete new
// content, never a torn mix — the invariant every snapshot, manifest,
// and counter-state save in the repo relies on.
//
// The temporary name is deterministic (path + ".tmp"), so callers must
// serialize concurrent saves of the same path; every caller in the
// repo already does.
func WriteFileAtomic(fsys FS, path string, write func(w io.Writer) error) (err error) {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(Dir(path))
}
