package oram

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"ortoa/internal/core"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// A positionMap resolves and reassigns block positions. The in-memory
// implementation is the classic O(N)-client-state PathORAM map; the
// recursive construction (recursive.go) stores it in a smaller ORAM.
type positionMap interface {
	// swap returns the block's current leaf and installs newLeaf, as
	// one logical operation (an access consults the map exactly once).
	swap(id int, newLeaf uint32) (uint32, error)
}

// memPositions is the in-memory position map.
type memPositions []uint32

func (m memPositions) swap(id int, newLeaf uint32) (uint32, error) {
	old := m[id]
	m[id] = newLeaf
	return old, nil
}

// A Client is the trusted side of the ORAM: it owns the position map
// and the stash (the O(N) proxy state §5.3.1 discusses for oblivious
// schemes) and the bucket encryption key.
type Client struct {
	cfg  Config
	mode Mode
	box  *secretbox.Box
	rpc  *transport.Client

	mu        sync.Mutex
	positions positionMap
	stash     map[uint32]block
	rng       *rand.Rand
}

// NewClient returns a client for cfg in the given mode. If cfg.Key is
// nil a fresh key is generated.
func NewClient(cfg Config, mode Mode, rpc *transport.Client) (*Client, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Key == nil {
		cfg.Key = secretbox.NewRandomKey()
	}
	box, err := secretbox.NewBox(cfg.Key)
	if err != nil {
		return nil, err
	}
	c := &Client{
		cfg:   cfg,
		mode:  mode,
		box:   box,
		rpc:   rpc,
		stash: make(map[uint32]block),
		rng:   rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
	}
	pos := make(memPositions, cfg.NumBlocks)
	for i := range pos {
		pos[i] = c.randomLeaf()
	}
	c.positions = pos
	return c, nil
}

func (c *Client) randomLeaf() uint32 {
	return uint32(c.rng.IntN(c.cfg.numLeaves()))
}

// Mode returns the client's access protocol.
func (c *Client) Mode() Mode { return c.mode }

// StashSize returns the current stash occupancy.
func (c *Client) StashSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.stash)
}

// BuildInitialBuckets assigns every block a random position, packs
// blocks into their paths (overflow stays in the stash), and returns
// sealed buckets for every tree node, ready for Server.Load.
func (c *Client) BuildInitialBuckets(values map[int][]byte) (map[int][]byte, error) {
	buckets, _, err := c.BuildInitialBucketsAssign(values)
	return buckets, err
}

// BuildInitialBucketsAssign is BuildInitialBuckets, additionally
// returning the full position assignment (indexed by block id). The
// recursive construction packs these positions into the next level's
// blocks instead of keeping them in client memory.
func (c *Client) BuildInitialBucketsAssign(values map[int][]byte) (map[int][]byte, []uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Fresh random assignment for every block id, not just loaded ones
	// (never-written blocks still need defined positions).
	positions := make([]uint32, c.cfg.NumBlocks)
	for i := range positions {
		positions[i] = c.randomLeaf()
	}
	if mem, ok := c.positions.(memPositions); ok {
		copy(mem, positions)
	}
	// Tentative placement: blocks per node.
	placement := make(map[int][]block)
	for id, v := range values {
		if id < 0 || id >= c.cfg.NumBlocks {
			return nil, nil, fmt.Errorf("oram: block id %d out of range", id)
		}
		if len(v) != c.cfg.BlockSize {
			return nil, nil, fmt.Errorf("oram: block %d has %d bytes, want %d", id, len(v), c.cfg.BlockSize)
		}
		leaf := positions[id]
		b := block{id: uint32(id), leaf: leaf, value: append([]byte(nil), v...)}
		placed := false
		// Deepest level first.
		for level := c.cfg.levels() - 1; level >= 0; level-- {
			node := c.cfg.nodeAt(leaf, level)
			if len(placement[node]) < c.cfg.BucketSize {
				placement[node] = append(placement[node], b)
				placed = true
				break
			}
		}
		if !placed {
			c.stash[b.id] = b
		}
	}
	out := make(map[int][]byte, c.cfg.numNodes())
	for node := 1; node <= c.cfg.numNodes(); node++ {
		sealed, err := c.cfg.sealBucket(c.box, placement[node])
		if err != nil {
			return nil, nil, err
		}
		out[node] = sealed
	}
	return out, positions, nil
}

// Access reads or writes one logical block obliviously. Reads of
// never-written blocks return zeros.
func (c *Client) Access(op core.Op, id int, newValue []byte) ([]byte, error) {
	if id < 0 || id >= c.cfg.NumBlocks {
		return nil, fmt.Errorf("oram: block id %d out of range", id)
	}
	if op == core.OpWrite && len(newValue) != c.cfg.BlockSize {
		return nil, fmt.Errorf("oram: write of %d bytes, want %d", len(newValue), c.cfg.BlockSize)
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	newLeaf := c.randomLeaf()
	oldLeaf, err := c.positions.swap(id, newLeaf)
	if err != nil {
		return nil, fmt.Errorf("oram: position map: %w", err)
	}

	switch c.mode {
	case TwoRound:
		return c.accessTwoRound(op, uint32(id), oldLeaf, newLeaf, newValue, nil)
	case OneRound:
		return c.accessOneRound(op, uint32(id), oldLeaf, newLeaf, newValue, nil)
	default:
		return nil, fmt.Errorf("oram: unknown mode %d", c.mode)
	}
}

// AccessModify atomically reads block id and replaces its value with
// modify(old) within a single ORAM access — the read-modify-write the
// recursive position map needs to stay at one access per level.
// It returns the pre-modification value.
func (c *Client) AccessModify(id int, modify func(old []byte) []byte) ([]byte, error) {
	if id < 0 || id >= c.cfg.NumBlocks {
		return nil, fmt.Errorf("oram: block id %d out of range", id)
	}
	if modify == nil {
		return nil, fmt.Errorf("oram: AccessModify requires a modify function")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	newLeaf := c.randomLeaf()
	oldLeaf, err := c.positions.swap(id, newLeaf)
	if err != nil {
		return nil, fmt.Errorf("oram: position map: %w", err)
	}
	switch c.mode {
	case TwoRound:
		return c.accessTwoRound(core.OpWrite, uint32(id), oldLeaf, newLeaf, nil, modify)
	case OneRound:
		return c.accessOneRound(core.OpWrite, uint32(id), oldLeaf, newLeaf, nil, modify)
	default:
		return nil, fmt.Errorf("oram: unknown mode %d", c.mode)
	}
}

// accessTwoRound is classic PathORAM: round 1 reads the path into the
// stash, round 2 writes the re-shuffled path back.
func (c *Client) accessTwoRound(op core.Op, id, leaf, newLeaf uint32, newValue []byte, modify func([]byte) []byte) ([]byte, error) {
	w := wire.NewWriter(8)
	w.Uint32(leaf)
	resp, err := c.rpc.Call(MsgReadPath, w.Bytes())
	if err != nil {
		return nil, err
	}
	if err := c.mergePath(resp); err != nil {
		return nil, err
	}
	result := c.serveFromStash(op, id, newLeaf, newValue, modify)

	buckets, err := c.buildEviction(leaf, dummyID)
	if err != nil {
		return nil, err
	}
	w = wire.NewWriter(len(buckets) * (c.cfg.bucketPlainLen() + 64))
	w.Uint32(leaf)
	w.Uvarint(uint64(len(buckets)))
	for _, b := range buckets {
		w.BytesPfx(b)
	}
	if _, err := c.rpc.Call(MsgWritePath, w.Bytes()); err != nil {
		return nil, err
	}
	return result, nil
}

// accessOneRound fuses the two rounds (§8): evict *current* stash
// blocks into the requested path and read the path's previous contents
// in one message. The requested block is excluded from this eviction
// so it can be served after the response arrives.
func (c *Client) accessOneRound(op core.Op, id, leaf, newLeaf uint32, newValue []byte, modify func([]byte) []byte) ([]byte, error) {
	buckets, err := c.buildEviction(leaf, id)
	if err != nil {
		return nil, err
	}
	w := wire.NewWriter(len(buckets) * (c.cfg.bucketPlainLen() + 64))
	w.Uint32(leaf)
	w.Uvarint(uint64(len(buckets)))
	for _, b := range buckets {
		w.BytesPfx(b)
	}
	resp, err := c.rpc.Call(MsgAccessPath, w.Bytes())
	if err != nil {
		return nil, err
	}
	if err := c.mergePath(resp); err != nil {
		return nil, err
	}
	return c.serveFromStash(op, id, newLeaf, newValue, modify), nil
}

// mergePath decrypts a serialized path and adds its real blocks to the
// stash.
func (c *Client) mergePath(payload []byte) error {
	r := wire.NewReader(payload)
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return err
	}
	if n != c.cfg.levels() {
		return fmt.Errorf("oram: path has %d buckets, want %d", n, c.cfg.levels())
	}
	for i := 0; i < n; i++ {
		sealed := r.BytesPfx()
		if err := r.Err(); err != nil {
			return err
		}
		if len(sealed) == 0 {
			continue // node never written (bootstrap-free deployments)
		}
		blocks, err := c.cfg.openBucket(c.box, sealed)
		if err != nil {
			return fmt.Errorf("oram: bucket %d: %w", i, err)
		}
		for _, b := range blocks {
			c.stash[b.id] = b
		}
	}
	return r.Finish()
}

// serveFromStash answers the request from the stash, applies writes
// (or a read-modify-write), and stamps the accessed block with its
// freshly assigned leaf. Reads of absent blocks return zeros.
func (c *Client) serveFromStash(op core.Op, id, newLeaf uint32, newValue []byte, modify func([]byte) []byte) []byte {
	if modify != nil {
		old := make([]byte, c.cfg.BlockSize)
		if b, ok := c.stash[id]; ok {
			copy(old, b.value)
		}
		result := append([]byte(nil), old...)
		c.stash[id] = block{id: id, leaf: newLeaf, value: modify(old)}
		return result
	}
	if op == core.OpWrite {
		c.stash[id] = block{id: id, leaf: newLeaf, value: append([]byte(nil), newValue...)}
		return append([]byte(nil), newValue...)
	}
	if b, ok := c.stash[id]; ok {
		b.leaf = newLeaf
		c.stash[id] = b
		return append([]byte(nil), b.value...)
	}
	return make([]byte, c.cfg.BlockSize)
}

// buildEviction greedily places stash blocks (except exclude) into the
// path to leaf, removes the placed blocks from the stash, and returns
// the sealed per-level buckets (root first).
func (c *Client) buildEviction(leaf uint32, exclude uint32) ([][]byte, error) {
	levels := c.cfg.levels()
	placed := make([][]block, levels)

	// Candidates sorted by deepest placeable level, deepest first, so
	// blocks sink as far as possible (PathORAM's greedy eviction).
	type cand struct {
		b       block
		deepest int
	}
	var cands []cand
	for _, b := range c.stash {
		if b.id == exclude {
			continue
		}
		deepest := -1
		for level := levels - 1; level >= 0; level-- {
			if c.cfg.onPath(b.leaf, leaf, level) {
				deepest = level
				break
			}
		}
		if deepest >= 0 {
			cands = append(cands, cand{b: b, deepest: deepest})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].deepest > cands[j].deepest })
	for _, cd := range cands {
		for level := cd.deepest; level >= 0; level-- {
			if len(placed[level]) < c.cfg.BucketSize {
				placed[level] = append(placed[level], cd.b)
				delete(c.stash, cd.b.id)
				break
			}
		}
	}

	out := make([][]byte, levels)
	for level := range out {
		sealed, err := c.cfg.sealBucket(c.box, placed[level])
		if err != nil {
			return nil, err
		}
		out[level] = sealed
	}
	return out, nil
}
