package oram

import (
	"encoding/binary"
	"fmt"
	"sync"

	"ortoa/internal/core"
)

// Recursive position maps: the classic PathORAM construction that
// shrinks the client's O(N) position map to O(1) by storing each
// level's map as the data of a smaller ORAM. §5.3.1 frames the O(N)
// proxy state as the price oblivious schemes pay for performance; this
// file implements the other end of that trade-off.
//
// Level 0 is the data ORAM. Level i+1 stores level i's position map,
// packed positionsPerBlock entries per block, down to a level small
// enough to keep in memory. Each access consults its level's map
// exactly once (blocks carry their leaf, so eviction needs no
// lookups), and the consultation is a single read-modify-write access
// at the next level — so a full access costs exactly one access per
// level, each a single round trip in OneRound mode.

// positionsPerBlock returns how many uint32 positions one block of
// cfg holds.
func positionsPerBlock(cfg Config) int { return cfg.BlockSize / 4 }

// RecursiveChain computes the level configurations for a data ORAM of
// dataCfg, with position-map ORAMs of mapBlockSize-byte blocks,
// recursing until a level's map has at most minMapEntries entries
// (which then stays in client memory). The result includes dataCfg as
// element 0.
func RecursiveChain(dataCfg Config, mapBlockSize, minMapEntries int) ([]Config, error) {
	dataCfg = dataCfg.withDefaults()
	if err := dataCfg.validate(); err != nil {
		return nil, err
	}
	if mapBlockSize < 4 || mapBlockSize%4 != 0 {
		return nil, fmt.Errorf("oram: map block size %d must be a positive multiple of 4", mapBlockSize)
	}
	if minMapEntries < 1 {
		return nil, fmt.Errorf("oram: minMapEntries %d must be positive", minMapEntries)
	}
	chain := []Config{dataCfg}
	entries := dataCfg.NumBlocks
	per := mapBlockSize / 4
	for entries > minMapEntries {
		blocks := (entries + per - 1) / per
		cfg := Config{
			NumBlocks:  blocks,
			BlockSize:  mapBlockSize,
			BucketSize: dataCfg.BucketSize,
			Key:        dataCfg.Key, // nil → each level generates its own
		}.withDefaults()
		chain = append(chain, cfg)
		if blocks >= entries {
			return nil, fmt.Errorf("oram: recursion does not shrink (%d → %d blocks); increase map block size", entries, blocks)
		}
		entries = blocks
	}
	return chain, nil
}

// remotePositions stores a level's position map in the next level's
// ORAM.
type remotePositions struct {
	next     *Client
	perBlock int
}

func (r *remotePositions) swap(id int, newLeaf uint32) (uint32, error) {
	blockID := id / r.perBlock
	slot := (id % r.perBlock) * 4
	old, err := r.next.AccessModify(blockID, func(raw []byte) []byte {
		binary.LittleEndian.PutUint32(raw[slot:], newLeaf)
		return raw
	})
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(old[slot:]), nil
}

// A RecursiveClient is a chain of ORAM clients whose position maps
// recurse; only the smallest level's map lives in client memory.
type RecursiveClient struct {
	mu     sync.Mutex
	levels []*Client
}

// NewRecursiveClient wires pre-built level clients (as returned by
// RecursiveChain order: levels[0] = data ORAM, each level i+1 stores
// level i's position map). Every level talks to its own Server.
func NewRecursiveClient(levels []*Client) (*RecursiveClient, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("oram: recursive client needs at least one level")
	}
	for i := 0; i < len(levels)-1; i++ {
		per := positionsPerBlock(levels[i+1].cfg)
		need := (levels[i].cfg.NumBlocks + per - 1) / per
		if levels[i+1].cfg.NumBlocks < need {
			return nil, fmt.Errorf("oram: level %d has %d blocks, level %d's map needs %d",
				i+1, levels[i+1].cfg.NumBlocks, i, need)
		}
		levels[i].positions = &remotePositions{next: levels[i+1], perBlock: per}
	}
	return &RecursiveClient{levels: levels}, nil
}

// Levels returns the recursion depth (1 = plain ORAM).
func (rc *RecursiveClient) Levels() int { return len(rc.levels) }

// ClientPositionEntries returns how many position-map entries remain
// in client memory — the state the recursion exists to shrink.
func (rc *RecursiveClient) ClientPositionEntries() int {
	return rc.levels[len(rc.levels)-1].cfg.NumBlocks
}

// StashBlocks returns the total stash occupancy across levels.
func (rc *RecursiveClient) StashBlocks() int {
	total := 0
	for _, l := range rc.levels {
		total += l.StashSize()
	}
	return total
}

// Init assigns positions bottom-up and returns the per-level sealed
// buckets for each level's Server.Load: level i's position assignment
// becomes level i+1's initial data.
func (rc *RecursiveClient) Init(values map[int][]byte) ([]map[int][]byte, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]map[int][]byte, len(rc.levels))
	data := values
	for i, level := range rc.levels {
		buckets, positions, err := level.BuildInitialBucketsAssign(data)
		if err != nil {
			return nil, fmt.Errorf("oram: level %d init: %w", i, err)
		}
		out[i] = buckets
		if i == len(rc.levels)-1 {
			// Smallest level keeps its map in memory; install the
			// fresh assignment.
			if mem, ok := level.positions.(memPositions); ok {
				copy(mem, positions)
			}
			break
		}
		// Pack this level's positions as the next level's data.
		per := positionsPerBlock(rc.levels[i+1].cfg)
		next := make(map[int][]byte)
		for b := 0; b < rc.levels[i+1].cfg.NumBlocks; b++ {
			blk := make([]byte, rc.levels[i+1].cfg.BlockSize)
			for s := 0; s < per; s++ {
				idx := b*per + s
				if idx < len(positions) {
					binary.LittleEndian.PutUint32(blk[s*4:], positions[idx])
				}
			}
			next[b] = blk
		}
		data = next
	}
	return out, nil
}

// Access reads or writes one logical data block. Position resolution
// recurses through the map levels: Levels single-round accesses total
// in OneRound mode (each map level is one read-modify-write access).
func (rc *RecursiveClient) Access(op core.Op, id int, newValue []byte) ([]byte, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.levels[0].Access(op, id, newValue)
}
