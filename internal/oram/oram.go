// Package oram implements the paper's §8 sketch: tree-based ORAM in
// the style of PathORAM [58], in two flavours —
//
//   - TwoRound: the classic scheme (read the path, then write the
//     shuffled path back), costing two round trips per access exactly
//     like the oblivious baselines ORTOA argues against, and
//   - OneRound: the ORTOA-fused variant the paper sketches, where a
//     single message both reads a path and evicts stash blocks from
//     *previous* accesses into it. The server returns the path's old
//     buckets and atomically installs the new ones, so reading and
//     evicting share one round trip.
//
// Unlike the rest of the repository, this scheme hides the accessed
// object too (the adversary sees a uniformly random path per access),
// on top of ORTOA's operation-type obliviousness.
package oram

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"ortoa/internal/crypto/secretbox"
)

// Mode selects the access protocol.
type Mode uint8

// Access protocol variants.
const (
	// TwoRound is classic PathORAM: read path, then evict path.
	TwoRound Mode = iota
	// OneRound fuses read and eviction into one round trip (§8).
	OneRound
)

// String names the mode.
func (m Mode) String() string {
	if m == OneRound {
		return "one-round"
	}
	return "two-round"
}

// Transport message types (disjoint from core's).
const (
	// MsgReadPath returns a path's buckets (TwoRound, round 1).
	MsgReadPath byte = 0x20
	// MsgWritePath installs a path's buckets (TwoRound, round 2).
	MsgWritePath byte = 0x21
	// MsgAccessPath atomically swaps a path: returns the old buckets
	// and installs the provided ones (OneRound).
	MsgAccessPath byte = 0x22
)

// Config fixes an ORAM deployment's shape.
type Config struct {
	// NumBlocks is the logical address space (block ids 0..NumBlocks-1).
	NumBlocks int
	// BlockSize is the fixed block payload size in bytes.
	BlockSize int
	// BucketSize is Z, the blocks per tree node (default 4, as in
	// PathORAM).
	BucketSize int
	// Key is the AES key encrypting buckets (shared by client;
	// generated if nil at client construction).
	Key []byte
}

func (c Config) withDefaults() Config {
	if c.BucketSize == 0 {
		c.BucketSize = 4
	}
	return c
}

func (c Config) validate() error {
	if c.NumBlocks <= 0 {
		return fmt.Errorf("oram: NumBlocks %d must be positive", c.NumBlocks)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("oram: BlockSize %d must be positive", c.BlockSize)
	}
	if c.BucketSize <= 0 {
		return fmt.Errorf("oram: BucketSize %d must be positive", c.BucketSize)
	}
	return nil
}

// levels returns the number of tree levels L+1 (root is level 0,
// leaves level L) for n logical blocks: enough leaves to give each
// block its own leaf.
func (c Config) levels() int {
	n := c.NumBlocks
	if n < 2 {
		n = 2
	}
	return bits.Len(uint(n-1)) + 1
}

// numLeaves returns the leaf count 2^L.
func (c Config) numLeaves() int { return 1 << (c.levels() - 1) }

// numNodes returns the total node count of the complete tree
// (1-indexed heap layout: node 1 is the root, children of i are 2i and
// 2i+1).
func (c Config) numNodes() int { return 2*c.numLeaves() - 1 }

// nodeAt returns the heap index of the level-th node on the path to
// leaf (level 0 = root).
func (c Config) nodeAt(leaf uint32, level int) int {
	leafNode := c.numLeaves() + int(leaf) // heap index of the leaf
	return leafNode >> uint(c.levels()-1-level)
}

// pathNodes returns the heap indices of the root→leaf path.
func (c Config) pathNodes(leaf uint32) []int {
	nodes := make([]int, c.levels())
	for l := range nodes {
		nodes[l] = c.nodeAt(leaf, l)
	}
	return nodes
}

// onPath reports whether the level-th bucket of the path to leaf a is
// also on the path to leaf b (the PathORAM eviction condition).
func (c Config) onPath(a, b uint32, level int) bool {
	return c.nodeAt(a, level) == c.nodeAt(b, level)
}

// dummyID marks an empty slot inside a bucket.
const dummyID = ^uint32(0)

// A block is one stash entry. Each block carries its assigned leaf so
// eviction never needs a position-map lookup — the property that makes
// recursive position maps affordable (one map access per ORAM access).
type block struct {
	id    uint32
	leaf  uint32
	value []byte
}

// slotLen is the serialized size of one bucket slot: id + leaf +
// payload.
func (c Config) slotLen() int { return 8 + c.BlockSize }

// bucketPlainLen is the plaintext bucket size: Z slots.
func (c Config) bucketPlainLen() int { return c.BucketSize * c.slotLen() }

// sealBucket encrypts Z slots. blocks beyond len are dummies.
func (c Config) sealBucket(box *secretbox.Box, blocks []block) ([]byte, error) {
	if len(blocks) > c.BucketSize {
		return nil, fmt.Errorf("oram: %d blocks exceed bucket size %d", len(blocks), c.BucketSize)
	}
	plain := make([]byte, c.bucketPlainLen())
	for i := 0; i < c.BucketSize; i++ {
		slot := plain[i*c.slotLen():]
		if i < len(blocks) {
			binary.LittleEndian.PutUint32(slot, blocks[i].id)
			binary.LittleEndian.PutUint32(slot[4:], blocks[i].leaf)
			copy(slot[8:8+c.BlockSize], blocks[i].value)
		} else {
			binary.LittleEndian.PutUint32(slot, dummyID)
		}
	}
	return box.Seal(plain), nil
}

// openBucket decrypts a bucket and returns its real blocks.
func (c Config) openBucket(box *secretbox.Box, sealed []byte) ([]block, error) {
	plain, err := box.Open(sealed)
	if err != nil {
		return nil, err
	}
	if len(plain) != c.bucketPlainLen() {
		return nil, fmt.Errorf("oram: bucket plaintext %d bytes, want %d", len(plain), c.bucketPlainLen())
	}
	var blocks []block
	for i := 0; i < c.BucketSize; i++ {
		slot := plain[i*c.slotLen():]
		id := binary.LittleEndian.Uint32(slot)
		if id == dummyID {
			continue
		}
		v := make([]byte, c.BlockSize)
		copy(v, slot[8:])
		blocks = append(blocks, block{id: id, leaf: binary.LittleEndian.Uint32(slot[4:]), value: v})
	}
	return blocks, nil
}
