package oram

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"testing"

	"ortoa/internal/core"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

func newDeployment(t *testing.T, cfg Config, mode Mode) (*Client, *Server, *transport.Client) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := transport.NewServer()
	srv.Register(ts)
	l := netsim.Listen(netsim.Loopback)
	go ts.Serve(l)
	t.Cleanup(func() { ts.Close() })
	rpc, err := transport.Dial(l.Dial, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rpc.Close() })
	client, err := NewClient(cfg, mode, rpc)
	if err != nil {
		t.Fatal(err)
	}
	return client, srv, rpc
}

func initValues(n, size int) map[int][]byte {
	values := make(map[int][]byte, n)
	for i := 0; i < n; i++ {
		v := make([]byte, size)
		for j := range v {
			v[j] = byte(i + j)
		}
		values[i] = v
	}
	return values
}

func bootstrap(t *testing.T, client *Client, srv *Server, values map[int][]byte) {
	t.Helper()
	buckets, err := client.BuildInitialBuckets(values)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Load(buckets); err != nil {
		t.Fatal(err)
	}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Config{NumBlocks: 8, BlockSize: 4}.withDefaults()
	if cfg.numLeaves() < 8 {
		t.Errorf("numLeaves = %d, want ≥ 8", cfg.numLeaves())
	}
	if cfg.numNodes() != 2*cfg.numLeaves()-1 {
		t.Errorf("numNodes = %d", cfg.numNodes())
	}
	// Path from any leaf has `levels` nodes, root first, leaf last.
	nodes := cfg.pathNodes(3)
	if len(nodes) != cfg.levels() {
		t.Fatalf("path has %d nodes", len(nodes))
	}
	if nodes[0] != 1 {
		t.Errorf("path does not start at root: %v", nodes)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i]/2 != nodes[i-1] {
			t.Errorf("node %d is not a child of %d", nodes[i], nodes[i-1])
		}
	}
}

func TestOnPath(t *testing.T) {
	cfg := Config{NumBlocks: 16, BlockSize: 4}.withDefaults()
	// Every pair shares the root.
	if !cfg.onPath(0, uint32(cfg.numLeaves()-1), 0) {
		t.Error("disjoint leaves do not share the root")
	}
	// A leaf shares its whole path with itself.
	for level := 0; level < cfg.levels(); level++ {
		if !cfg.onPath(5, 5, level) {
			t.Errorf("leaf not on its own path at level %d", level)
		}
	}
}

func TestBucketSealRoundTrip(t *testing.T) {
	cfg := Config{NumBlocks: 8, BlockSize: 6}.withDefaults()
	box, _ := secretbox.NewBox(secretbox.NewRandomKey())
	blocks := []block{
		{id: 3, value: []byte{1, 2, 3, 4, 5, 6}},
		{id: 7, value: []byte{9, 9, 9, 9, 9, 9}},
	}
	sealed, err := cfg.sealBucket(box, blocks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cfg.openBucket(box, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d blocks", len(got))
	}
	if got[0].id != 3 || !bytes.Equal(got[0].value, blocks[0].value) {
		t.Errorf("block 0 = %+v", got[0])
	}
}

func TestBucketOverflowRejected(t *testing.T) {
	cfg := Config{NumBlocks: 8, BlockSize: 2, BucketSize: 2}
	box, _ := secretbox.NewBox(secretbox.NewRandomKey())
	blocks := []block{{id: 1}, {id: 2}, {id: 3}}
	if _, err := cfg.sealBucket(box, blocks); err == nil {
		t.Error("sealBucket accepted overflow")
	}
}

func TestReadInitialValues(t *testing.T) {
	for _, mode := range []Mode{TwoRound, OneRound} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{NumBlocks: 16, BlockSize: 8}
			client, srv, _ := newDeployment(t, cfg, mode)
			values := initValues(16, 8)
			bootstrap(t, client, srv, values)
			for id, want := range values {
				got, err := client.Access(core.OpRead, id, nil)
				if err != nil {
					t.Fatalf("read %d: %v", id, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("read %d = %v, want %v", id, got, want)
				}
			}
		})
	}
}

func TestWriteThenRead(t *testing.T) {
	for _, mode := range []Mode{TwoRound, OneRound} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{NumBlocks: 8, BlockSize: 4}
			client, srv, _ := newDeployment(t, cfg, mode)
			bootstrap(t, client, srv, initValues(8, 4))
			want := []byte{0xCA, 0xFE, 0xBA, 0xBE}
			if _, err := client.Access(core.OpWrite, 5, want); err != nil {
				t.Fatal(err)
			}
			got, err := client.Access(core.OpRead, 5, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("read after write = %v", got)
			}
		})
	}
}

func TestRoundCounts(t *testing.T) {
	// The paper's point: the fused protocol costs one RPC per access,
	// classic PathORAM two.
	for _, tc := range []struct {
		mode Mode
		want int64
	}{{TwoRound, 2}, {OneRound, 1}} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			cfg := Config{NumBlocks: 8, BlockSize: 4}
			client, srv, rpc := newDeployment(t, cfg, tc.mode)
			bootstrap(t, client, srv, initValues(8, 4))
			before := rpc.Stats().Calls
			const accesses = 6
			for i := 0; i < accesses; i++ {
				if _, err := client.Access(core.OpRead, i%8, nil); err != nil {
					t.Fatal(err)
				}
			}
			got := rpc.Stats().Calls - before
			if got != tc.want*accesses {
				t.Errorf("%d accesses made %d RPCs, want %d", accesses, got, tc.want*accesses)
			}
		})
	}
}

// TestNoDataLossLongWorkload is the §8 invariant check: a long random
// mixed workload against an in-memory model, with bounded stash.
func TestNoDataLossLongWorkload(t *testing.T) {
	for _, mode := range []Mode{TwoRound, OneRound} {
		t.Run(mode.String(), func(t *testing.T) {
			const n = 32
			const blockSize = 8
			cfg := Config{NumBlocks: n, BlockSize: blockSize}
			client, srv, _ := newDeployment(t, cfg, mode)
			model := initValues(n, blockSize)
			bootstrap(t, client, srv, model)

			rng := rand.New(rand.NewPCG(99, uint64(mode)))
			for i := 0; i < 400; i++ {
				id := rng.IntN(n)
				if rng.IntN(2) == 0 {
					got, err := client.Access(core.OpRead, id, nil)
					if err != nil {
						t.Fatalf("op %d read %d: %v", i, id, err)
					}
					if !bytes.Equal(got, model[id]) {
						t.Fatalf("op %d: read %d = %v, want %v", i, id, got, model[id])
					}
				} else {
					v := make([]byte, blockSize)
					for j := range v {
						v[j] = byte(rng.Uint32())
					}
					if _, err := client.Access(core.OpWrite, id, v); err != nil {
						t.Fatalf("op %d write %d: %v", i, id, err)
					}
					model[id] = v
				}
				if s := client.StashSize(); s > n {
					t.Fatalf("op %d: stash grew to %d (> %d blocks)", i, s, n)
				}
			}
			t.Logf("%s: final stash size %d / %d blocks", mode, client.StashSize(), n)
		})
	}
}

func TestUnwrittenBlockReadsZero(t *testing.T) {
	cfg := Config{NumBlocks: 8, BlockSize: 4}
	client, srv, _ := newDeployment(t, cfg, OneRound)
	bootstrap(t, client, srv, map[int][]byte{}) // empty database
	got, err := client.Access(core.OpRead, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4)) {
		t.Errorf("unwritten read = %v, want zeros", got)
	}
}

func TestAccessValidation(t *testing.T) {
	cfg := Config{NumBlocks: 4, BlockSize: 4}
	client, srv, _ := newDeployment(t, cfg, OneRound)
	bootstrap(t, client, srv, initValues(4, 4))
	if _, err := client.Access(core.OpRead, -1, nil); err == nil {
		t.Error("accepted negative id")
	}
	if _, err := client.Access(core.OpRead, 4, nil); err == nil {
		t.Error("accepted out-of-range id")
	}
	if _, err := client.Access(core.OpWrite, 0, []byte{1}); err == nil {
		t.Error("accepted short value")
	}
}

func TestServerSeesUniformPaths(t *testing.T) {
	// Observability check: accessing the same block repeatedly must
	// touch fresh random leaves (position remapping), not one leaf.
	cfg := Config{NumBlocks: 64, BlockSize: 4}
	client, srv, _ := newDeployment(t, cfg, OneRound)
	bootstrap(t, client, srv, initValues(64, 4))
	leaves := map[uint32]bool{}
	for i := 0; i < 40; i++ {
		leaves[client.positions.(memPositions)[7]] = true
		if _, err := client.Access(core.OpRead, 7, nil); err != nil {
			t.Fatal(err)
		}
	}
	if len(leaves) < 10 {
		t.Errorf("40 accesses used only %d distinct leaves", len(leaves))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumBlocks: 0, BlockSize: 4},
		{NumBlocks: 4, BlockSize: 0},
	}
	for i, cfg := range bad {
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBuildInitialBucketsValidation(t *testing.T) {
	cfg := Config{NumBlocks: 4, BlockSize: 4}
	client, _, _ := newDeployment(t, cfg, OneRound)
	if _, err := client.BuildInitialBuckets(map[int][]byte{9: make([]byte, 4)}); err == nil {
		t.Error("accepted out-of-range id")
	}
	if _, err := client.BuildInitialBuckets(map[int][]byte{0: {1}}); err == nil {
		t.Error("accepted wrong-size block")
	}
}

func TestLoadValidation(t *testing.T) {
	srv, err := NewServer(Config{NumBlocks: 4, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Load(map[int][]byte{0: {1}}); err == nil {
		t.Error("Load accepted index 0")
	}
	if err := srv.Load(map[int][]byte{1 << 20: {1}}); err == nil {
		t.Error("Load accepted out-of-range index")
	}
}

func TestManyBlocksSweep(t *testing.T) {
	// Geometry check across sizes: every block readable after init.
	for _, n := range []int{1, 2, 3, 5, 17, 33} {
		t.Run(fmt.Sprint(n), func(t *testing.T) {
			cfg := Config{NumBlocks: n, BlockSize: 4}
			client, srv, _ := newDeployment(t, cfg, TwoRound)
			values := initValues(n, 4)
			bootstrap(t, client, srv, values)
			for id, want := range values {
				got, err := client.Access(core.OpRead, id, nil)
				if err != nil {
					t.Fatalf("n=%d read %d: %v", n, id, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("n=%d read %d mismatch", n, id)
				}
			}
		})
	}
}
