package oram

import (
	"testing"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

func benchDeployment(b *testing.B, mode Mode) *Client {
	b.Helper()
	cfg := Config{NumBlocks: 256, BlockSize: 64}
	srv, err := NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := transport.NewServer()
	srv.Register(ts)
	l := netsim.Listen(netsim.Loopback)
	go ts.Serve(l)
	b.Cleanup(func() { ts.Close() })
	rpc, err := transport.Dial(l.Dial, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { rpc.Close() })
	client, err := NewClient(cfg, mode, rpc)
	if err != nil {
		b.Fatal(err)
	}
	values := map[int][]byte{}
	for i := 0; i < cfg.NumBlocks; i++ {
		values[i] = make([]byte, cfg.BlockSize)
	}
	buckets, err := client.BuildInitialBuckets(values)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Load(buckets); err != nil {
		b.Fatal(err)
	}
	return client
}

// BenchmarkAccess compares the per-access cost of the classic
// two-round PathORAM and the fused one-round variant (§8).
func BenchmarkAccess(b *testing.B) {
	for _, mode := range []Mode{TwoRound, OneRound} {
		b.Run(mode.String(), func(b *testing.B) {
			client := benchDeployment(b, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Access(core.OpRead, i%256, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
