package oram

import (
	"context"
	"fmt"
	"sync"

	"ortoa/internal/transport"
	"ortoa/internal/wire"
)

// A Server stores the encrypted bucket tree. It sees only sealed
// buckets and uniformly random paths; in the OneRound protocol it
// cannot tell which installed buckets carry evictions (writes) versus
// re-encrypted dummies, giving ORTOA-style operation obliviousness on
// top of path obliviousness.
type Server struct {
	cfg Config

	mu      sync.RWMutex
	buckets [][]byte // heap-indexed, entry 0 unused
}

// NewServer returns a server with an uninitialized tree; the client
// bootstraps buckets via Load.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, buckets: make([][]byte, cfg.numNodes()+1)}, nil
}

// Register installs the ORAM handlers on ts.
func (s *Server) Register(ts *transport.Server) {
	ts.Handle(MsgReadPath, s.handleReadPath)
	ts.Handle(MsgWritePath, s.handleWritePath)
	ts.Handle(MsgAccessPath, s.handleAccessPath)
}

// Load installs initial sealed buckets (index → bucket).
func (s *Server) Load(buckets map[int][]byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for idx, b := range buckets {
		if idx < 1 || idx > s.cfg.numNodes() {
			return fmt.Errorf("oram: bucket index %d out of range", idx)
		}
		s.buckets[idx] = b
	}
	return nil
}

func (s *Server) parseLeaf(r *wire.Reader) (uint32, error) {
	leaf := r.Uint32()
	if err := r.Err(); err != nil {
		return 0, err
	}
	if int(leaf) >= s.cfg.numLeaves() {
		return 0, fmt.Errorf("oram: leaf %d out of range", leaf)
	}
	return leaf, nil
}

// readPathLocked serializes the buckets along the path to leaf.
func (s *Server) readPathLocked(leaf uint32) []byte {
	nodes := s.cfg.pathNodes(leaf)
	w := wire.NewWriter(len(nodes) * (s.cfg.bucketPlainLen() + 64))
	w.Uvarint(uint64(len(nodes)))
	for _, n := range nodes {
		w.BytesPfx(s.buckets[n]) // may be empty (never-written node)
	}
	return w.Bytes()
}

func (s *Server) handleReadPath(_ context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	leaf, err := s.parseLeaf(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.readPathLocked(leaf), nil
}

// parseBuckets reads the per-level bucket list of a write/access
// request.
func (s *Server) parseBuckets(r *wire.Reader) ([][]byte, error) {
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n != s.cfg.levels() {
		return nil, fmt.Errorf("oram: %d buckets, want %d", n, s.cfg.levels())
	}
	buckets := make([][]byte, n)
	for i := range buckets {
		buckets[i] = r.BytesCopy()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return buckets, nil
}

func (s *Server) installLocked(leaf uint32, buckets [][]byte) {
	for level, n := range s.cfg.pathNodes(leaf) {
		s.buckets[n] = buckets[level]
	}
}

func (s *Server) handleWritePath(_ context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	leaf, err := s.parseLeaf(r)
	if err != nil {
		return nil, err
	}
	buckets, err := s.parseBuckets(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.installLocked(leaf, buckets)
	return nil, nil
}

// handleAccessPath is the one-round fused operation (§8): return the
// old path and install the new one atomically.
func (s *Server) handleAccessPath(_ context.Context, payload []byte) ([]byte, error) {
	r := wire.NewReader(payload)
	leaf, err := s.parseLeaf(r)
	if err != nil {
		return nil, err
	}
	buckets, err := s.parseBuckets(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.readPathLocked(leaf)
	s.installLocked(leaf, buckets)
	return old, nil
}
