package oram

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

// newRecursiveDeployment builds a full recursive deployment: one
// server per level, loaded via Init.
func newRecursiveDeployment(t *testing.T, dataCfg Config, mode Mode, mapBlockSize, minMapEntries int) (*RecursiveClient, []*transport.Client) {
	t.Helper()
	chain, err := RecursiveChain(dataCfg, mapBlockSize, minMapEntries)
	if err != nil {
		t.Fatal(err)
	}
	var clients []*Client
	var rpcs []*transport.Client
	var servers []*Server
	for _, cfg := range chain {
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := transport.NewServer()
		srv.Register(ts)
		l := netsim.Listen(netsim.Loopback)
		go ts.Serve(l)
		t.Cleanup(func() { ts.Close() })
		rpc, err := transport.Dial(l.Dial, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rpc.Close() })
		client, err := NewClient(cfg, mode, rpc)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, client)
		rpcs = append(rpcs, rpc)
		servers = append(servers, srv)
	}
	rc, err := NewRecursiveClient(clients)
	if err != nil {
		t.Fatal(err)
	}
	values := initValues(dataCfg.NumBlocks, dataCfg.BlockSize)
	allBuckets, err := rc.Init(values)
	if err != nil {
		t.Fatal(err)
	}
	for i, buckets := range allBuckets {
		if err := servers[i].Load(buckets); err != nil {
			t.Fatal(err)
		}
	}
	return rc, rpcs
}

func TestRecursiveChainShapes(t *testing.T) {
	chain, err := RecursiveChain(Config{NumBlocks: 1024, BlockSize: 32}, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 1024 → 128 → 16 → 2 (≤ 8 stops).
	if len(chain) < 3 {
		t.Fatalf("chain too shallow: %d levels", len(chain))
	}
	if chain[0].NumBlocks != 1024 {
		t.Errorf("level 0 = %d blocks", chain[0].NumBlocks)
	}
	for i := 1; i < len(chain); i++ {
		per := positionsPerBlock(chain[i])
		need := (chain[i-1].NumBlocks + per - 1) / per
		if chain[i].NumBlocks != need {
			t.Errorf("level %d has %d blocks, want %d", i, chain[i].NumBlocks, need)
		}
	}
	last := chain[len(chain)-1]
	if last.NumBlocks > 8 {
		t.Errorf("final level still has %d entries", last.NumBlocks)
	}
}

func TestRecursiveChainValidation(t *testing.T) {
	if _, err := RecursiveChain(Config{NumBlocks: 16, BlockSize: 8}, 7, 4); err == nil {
		t.Error("accepted non-multiple-of-4 map block size")
	}
	if _, err := RecursiveChain(Config{NumBlocks: 16, BlockSize: 8}, 4, 0); err == nil {
		t.Error("accepted zero minMapEntries")
	}
	if _, err := RecursiveChain(Config{NumBlocks: 16, BlockSize: 8}, 4, 2); err == nil {
		t.Error("accepted non-shrinking recursion (1 entry/block)")
	}
}

func TestRecursiveReadInitialValues(t *testing.T) {
	for _, mode := range []Mode{TwoRound, OneRound} {
		t.Run(mode.String(), func(t *testing.T) {
			dataCfg := Config{NumBlocks: 64, BlockSize: 8}
			rc, _ := newRecursiveDeployment(t, dataCfg, mode, 16, 4)
			if rc.Levels() < 3 {
				t.Fatalf("expected ≥3 levels, got %d", rc.Levels())
			}
			values := initValues(64, 8)
			for id, want := range values {
				got, err := rc.Access(core.OpRead, id, nil)
				if err != nil {
					t.Fatalf("read %d: %v", id, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("read %d = %v, want %v", id, got, want)
				}
			}
		})
	}
}

func TestRecursiveMixedWorkload(t *testing.T) {
	const n = 48
	const blockSize = 8
	dataCfg := Config{NumBlocks: n, BlockSize: blockSize}
	rc, _ := newRecursiveDeployment(t, dataCfg, OneRound, 16, 4)
	model := initValues(n, blockSize)

	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 250; i++ {
		id := rng.IntN(n)
		if rng.IntN(2) == 0 {
			got, err := rc.Access(core.OpRead, id, nil)
			if err != nil {
				t.Fatalf("op %d read %d: %v", i, id, err)
			}
			if !bytes.Equal(got, model[id]) {
				t.Fatalf("op %d: read %d = %v, want %v", i, id, got, model[id])
			}
		} else {
			v := make([]byte, blockSize)
			for j := range v {
				v[j] = byte(rng.Uint32())
			}
			if _, err := rc.Access(core.OpWrite, id, v); err != nil {
				t.Fatalf("op %d write %d: %v", i, id, err)
			}
			model[id] = v
		}
	}
	t.Logf("levels=%d client-entries=%d total-stash=%d",
		rc.Levels(), rc.ClientPositionEntries(), rc.StashBlocks())
}

func TestRecursiveShrinksClientState(t *testing.T) {
	dataCfg := Config{NumBlocks: 256, BlockSize: 16}
	rc, _ := newRecursiveDeployment(t, dataCfg, OneRound, 16, 4)
	if got := rc.ClientPositionEntries(); got > 4 {
		t.Errorf("client still holds %d position entries, want ≤ 4", got)
	}
}

func TestRecursiveRoundCount(t *testing.T) {
	// One RPC per level per access in OneRound mode: the map levels
	// use read-modify-write accesses, so recursion costs are linear in
	// depth, not exponential.
	dataCfg := Config{NumBlocks: 64, BlockSize: 8}
	rc, rpcs := newRecursiveDeployment(t, dataCfg, OneRound, 16, 4)
	before := make([]int64, len(rpcs))
	for i, rpc := range rpcs {
		before[i] = rpc.Stats().Calls
	}
	const accesses = 5
	for i := 0; i < accesses; i++ {
		if _, err := rc.Access(core.OpRead, i, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := range rpcs {
		if got := rpcs[i].Stats().Calls - before[i]; got != accesses {
			t.Errorf("level %d made %d RPCs, want %d", i, got, accesses)
		}
	}
}

func TestNewRecursiveClientValidation(t *testing.T) {
	if _, err := NewRecursiveClient(nil); err == nil {
		t.Error("accepted empty level list")
	}
	// Mismatched chain: level 1 too small for level 0's map.
	big, _, _ := newDeploymentQuiet(t, Config{NumBlocks: 64, BlockSize: 8}, OneRound)
	small, _, _ := newDeploymentQuiet(t, Config{NumBlocks: 2, BlockSize: 8}, OneRound)
	if _, err := NewRecursiveClient([]*Client{big, small}); err == nil {
		t.Error("accepted undersized map level")
	}
}

func newDeploymentQuiet(t *testing.T, cfg Config, mode Mode) (*Client, *Server, *transport.Client) {
	t.Helper()
	return newDeployment(t, cfg, mode)
}
