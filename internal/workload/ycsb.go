package workload

import "fmt"

// YCSB-style preset mixes. The paper's evaluation sweeps the write
// ratio directly (Fig 2c); these presets name the standard points the
// storage literature uses, so experiments and examples can say
// "YCSB-A" instead of repeating ratios.
//
// Only the read/update mixes map onto ORTOA's single-object GET/PUT
// model (workload E is a range scan — see Client.ReadRange for the
// §8.2 direction; D's "latest" distribution needs insert tracking).

// A Mix names a standard workload mix.
type Mix string

// Standard mixes.
const (
	// MixA is YCSB workload A: update heavy, 50% reads / 50% writes —
	// also the paper's default mix.
	MixA Mix = "A"
	// MixB is YCSB workload B: read mostly, 95% reads.
	MixB Mix = "B"
	// MixC is YCSB workload C: read only.
	MixC Mix = "C"
	// MixWriteOnly is the 100%-write end of Fig 2c, the IoT-style
	// profile the paper's introduction cites as write-heavy.
	MixWriteOnly Mix = "write-only"
)

// WriteFraction returns the mix's write probability.
func (m Mix) WriteFraction() (float64, error) {
	switch m {
	case MixA:
		return 0.5, nil
	case MixB:
		return 0.05, nil
	case MixC:
		return 0, nil
	case MixWriteOnly:
		return 1, nil
	default:
		return 0, fmt.Errorf("workload: unknown mix %q", m)
	}
}

// Preset returns a Config for the named mix over numKeys objects of
// valueSize bytes, using the distribution the YCSB spec pairs with the
// mix (Zipfian for A and B, uniform otherwise — the paper's own
// experiments are uniform).
func Preset(mix Mix, numKeys, valueSize int, seed uint64) (Config, error) {
	frac, err := mix.WriteFraction()
	if err != nil {
		return Config{}, err
	}
	dist := Uniform
	if mix == MixA || mix == MixB {
		dist = Zipfian
	}
	return Config{
		NumKeys:       numKeys,
		ValueSize:     valueSize,
		WriteFraction: frac,
		Distribution:  dist,
		Seed:          seed,
	}, nil
}
