package workload

import (
	"fmt"
	"math/rand/v2"
)

// This file provides deterministic synthetic stand-ins for the three
// real-world datasets of §6.4. The paper's own methodology already
// replicates the small originals up to 1M records; what matters to the
// protocols is the record count and the key/value sizes, which are
// matched exactly:
//
//   - EHR heart-disease records [19]: UUID key, 10 B value
//     (resting blood pressure attribute).
//   - SmallBank [1]: UUID customer key, 50 B combined balances value
//     (checking, savings, account numbers).
//   - UCI e-commerce retail [60]: invoice-number key, 40 B value
//     (customer_id ‖ productDescription, 5+35 characters).

// A Record is one dataset row, already padded to the dataset's fixed
// value size.
type Record struct {
	Key   string
	Value []byte
}

// A Dataset is a named collection of fixed-size records.
type Dataset struct {
	Name      string
	ValueSize int
	Records   []Record
}

// Data returns the dataset as the map form the protocol loaders use.
func (d Dataset) Data() map[string][]byte {
	m := make(map[string][]byte, len(d.Records))
	for _, r := range d.Records {
		m[r.Key] = r.Value
	}
	return m
}

// uuidLike renders a deterministic UUID-format string from rng.
func uuidLike(rng *rand.Rand) string {
	return fmt.Sprintf("%08x-%04x-%04x-%04x-%012x",
		rng.Uint32(), rng.Uint32()&0xFFFF, rng.Uint32()&0xFFFF,
		rng.Uint32()&0xFFFF, rng.Uint64()&0xFFFFFFFFFFFF)
}

// EHR synthesizes n electronic-health-record rows: UUID patient keys
// with 10-byte resting-blood-pressure values (§6.4 dataset i).
func EHR(n int) Dataset {
	rng := rand.New(rand.NewPCG(0xE48, 1))
	d := Dataset{Name: "EHR", ValueSize: 10, Records: make([]Record, n)}
	for i := range d.Records {
		// Blood pressure as ASCII mmHg reading padded to 10 bytes,
		// e.g. "bp=124". Plausible range 90–180.
		v := make([]byte, d.ValueSize)
		copy(v, fmt.Sprintf("bp=%03d", 90+rng.IntN(91)))
		d.Records[i] = Record{Key: uuidLike(rng), Value: v}
	}
	return d
}

// SmallBank synthesizes n banking rows: UUID customer keys with
// 50-byte combined balance values (§6.4 dataset ii).
func SmallBank(n int) Dataset {
	rng := rand.New(rand.NewPCG(0x5BA4, 2))
	d := Dataset{Name: "SmallBank", ValueSize: 50, Records: make([]Record, n)}
	for i := range d.Records {
		v := make([]byte, d.ValueSize)
		copy(v, fmt.Sprintf("chk=%08d.%02d;sav=%08d.%02d;acct=%010d",
			rng.IntN(100000000), rng.IntN(100),
			rng.IntN(100000000), rng.IntN(100),
			rng.Uint64()%10000000000))
		d.Records[i] = Record{Key: uuidLike(rng), Value: v}
	}
	return d
}

// ECommerce synthesizes n retail rows: invoice-number keys with
// 40-byte customer-id ‖ product-description values (§6.4 dataset iii).
func ECommerce(n int) Dataset {
	rng := rand.New(rand.NewPCG(0xEC03, 3))
	products := []string{
		"WHITE HANGING HEART T-LIGHT HOLDER",
		"REGENCY CAKESTAND 3 TIER",
		"JUMBO BAG RED RETROSPOT",
		"ASSORTED COLOUR BIRD ORNAMENT",
		"PARTY BUNTING",
		"LUNCH BAG RED RETROSPOT",
		"SET OF 3 CAKE TINS PANTRY DESIGN",
		"PACK OF 72 RETROSPOT CAKE CASES",
	}
	d := Dataset{Name: "e-commerce", ValueSize: 40, Records: make([]Record, n)}
	for i := range d.Records {
		v := make([]byte, d.ValueSize)
		desc := products[rng.IntN(len(products))]
		if len(desc) > 35 {
			desc = desc[:35]
		}
		copy(v, fmt.Sprintf("%05d%s", rng.IntN(100000), desc))
		d.Records[i] = Record{Key: fmt.Sprintf("inv-%07d", i), Value: v}
	}
	return d
}

// Datasets returns all three §6.4 datasets at n records each, in the
// order Fig 4 plots them.
func Datasets(n int) []Dataset {
	return []Dataset{EHR(n), SmallBank(n), ECommerce(n)}
}
