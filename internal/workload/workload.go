// Package workload generates the client request streams of the
// paper's evaluation (§6): synthetic uniform/Zipfian key-value
// workloads with a configurable write fraction, and deterministic
// stand-ins for the three real-world datasets of §6.4.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"ortoa/internal/core"
)

// A Request is one client operation.
type Request struct {
	Op    core.Op
	Key   string
	Value []byte // nil for reads
}

// Distribution selects how keys are drawn.
type Distribution uint8

// Key distributions.
const (
	// Uniform draws keys uniformly at random — the paper's default
	// ("each client thread picks an object to access uniformly at
	// random", §6).
	Uniform Distribution = iota
	// Zipfian draws keys with a skewed distribution (s = 0.99,
	// YCSB-style), for hot-key stress beyond the paper's setup.
	Zipfian
)

// Config describes a synthetic workload.
type Config struct {
	// NumKeys is the database size N.
	NumKeys int
	// ValueSize is the fixed value length in bytes (ℓ/8).
	ValueSize int
	// WriteFraction is the probability an operation is a write; the
	// paper's default is 0.5 ("it decides to read or write the data
	// also uniformly at random", §6).
	WriteFraction float64
	// Distribution selects the key distribution.
	Distribution Distribution
	// Seed makes the stream reproducible.
	Seed uint64
}

// Key returns the canonical synthetic key name for index i.
func Key(i int) string { return fmt.Sprintf("key-%08d", i) }

// A Generator produces a deterministic request stream. It is not safe
// for concurrent use; give each worker its own (same Config, different
// Seed).
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *zipf
}

// NewGenerator returns a generator over cfg.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.NumKeys <= 0 {
		return nil, fmt.Errorf("workload: NumKeys %d must be positive", cfg.NumKeys)
	}
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("workload: ValueSize %d must be positive", cfg.ValueSize)
	}
	if cfg.WriteFraction < 0 || cfg.WriteFraction > 1 {
		return nil, fmt.Errorf("workload: WriteFraction %f out of [0,1]", cfg.WriteFraction)
	}
	g := &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0x0A7A0A7A)),
	}
	if cfg.Distribution == Zipfian {
		g.zipf = newZipf(g.rng, 0.99, uint64(cfg.NumKeys))
	}
	return g, nil
}

// Next returns the next request in the stream.
func (g *Generator) Next() Request {
	var idx int
	if g.zipf != nil {
		idx = int(g.zipf.next())
	} else {
		idx = g.rng.IntN(g.cfg.NumKeys)
	}
	req := Request{Key: Key(idx)}
	if g.rng.Float64() < g.cfg.WriteFraction {
		req.Op = core.OpWrite
		req.Value = make([]byte, g.cfg.ValueSize)
		for i := range req.Value {
			req.Value[i] = byte(g.rng.Uint32())
		}
	} else {
		req.Op = core.OpRead
	}
	return req
}

// InitialData returns the deterministic initial database contents for
// cfg: NumKeys records of ValueSize bytes.
func InitialData(cfg Config) map[string][]byte {
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x1717))
	data := make(map[string][]byte, cfg.NumKeys)
	for i := 0; i < cfg.NumKeys; i++ {
		v := make([]byte, cfg.ValueSize)
		for j := range v {
			v[j] = byte(rng.Uint32())
		}
		data[Key(i)] = v
	}
	return data
}

// zipf is a bounded Zipf(s) sampler (rejection-inversion, following
// W. Hörmann & G. Derflinger). math/rand/v2 dropped rand.Zipf, so the
// sampler lives here.
type zipf struct {
	rng          *rand.Rand
	n            uint64
	s            float64
	oneMinusS    float64
	hIntegralX1  float64
	hIntegralNum float64
	sDiv         float64
}

func newZipf(rng *rand.Rand, s float64, n uint64) *zipf {
	z := &zipf{rng: rng, n: n, s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNum = z.hIntegral(float64(n) + 0.5)
	z.sDiv = 2 - z.hInverse(z.hIntegral(2.5)-z.h(2))
	return z
}

// hIntegral is the antiderivative of h(x) = x^{-s}.
func (z *zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

func (z *zipf) hInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

func (z *zipf) next() uint64 {
	for {
		u := z.hIntegralNum + z.rng.Float64()*(z.hIntegralX1-z.hIntegralNum)
		x := z.hInverse(u)
		k := x + 0.5
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		ki := uint64(k)
		if float64(ki)-x <= z.sDiv || u >= z.hIntegral(float64(ki)+0.5)-z.h(float64(ki)) {
			return ki - 1
		}
	}
}

// helper1 computes math.Log1p(x)/x with a series near zero.
func helper1(x float64) float64 {
	if x > -0.5 && x < 0.5 {
		return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
	}
	return math.Log1p(x) / x
}

// helper2 computes math.Expm1(x)/x with a series near zero.
func helper2(x float64) float64 {
	if x > -0.5 && x < 0.5 {
		return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
	}
	return math.Expm1(x) / x
}
