package workload

import (
	"testing"

	"ortoa/internal/core"
)

func TestMixWriteFractions(t *testing.T) {
	cases := map[Mix]float64{MixA: 0.5, MixB: 0.05, MixC: 0, MixWriteOnly: 1}
	for mix, want := range cases {
		got, err := mix.WriteFraction()
		if err != nil {
			t.Errorf("%s: %v", mix, err)
			continue
		}
		if got != want {
			t.Errorf("%s write fraction = %f, want %f", mix, got, want)
		}
	}
	if _, err := Mix("Z").WriteFraction(); err == nil {
		t.Error("unknown mix accepted")
	}
}

func TestPresetDistributions(t *testing.T) {
	a, err := Preset(MixA, 100, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Distribution != Zipfian {
		t.Error("YCSB-A should be Zipfian")
	}
	c, err := Preset(MixC, 100, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Distribution != Uniform {
		t.Error("YCSB-C should be uniform")
	}
	if _, err := Preset("bogus", 100, 16, 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetGenerates(t *testing.T) {
	cfg, err := Preset(MixB, 50, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if gen.Next().Op == core.OpWrite {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.02 || frac > 0.10 {
		t.Errorf("YCSB-B write fraction = %.3f, want ≈0.05", frac)
	}
}
