package workload

import (
	"math"
	"testing"

	"ortoa/internal/core"
)

func TestGeneratorValidation(t *testing.T) {
	bad := []Config{
		{NumKeys: 0, ValueSize: 4},
		{NumKeys: 10, ValueSize: 0},
		{NumKeys: 10, ValueSize: 4, WriteFraction: 1.5},
		{NumKeys: 10, ValueSize: 4, WriteFraction: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewGenerator(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{NumKeys: 100, ValueSize: 8, WriteFraction: 0.5, Seed: 7}
	g1, _ := NewGenerator(cfg)
	g2, _ := NewGenerator(cfg)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Op != b.Op || a.Key != b.Key || string(a.Value) != string(b.Value) {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	g1, _ := NewGenerator(Config{NumKeys: 1000, ValueSize: 4, Seed: 1})
	g2, _ := NewGenerator(Config{NumKeys: 1000, ValueSize: 4, Seed: 2})
	same := 0
	for i := 0; i < 50; i++ {
		if g1.Next().Key == g2.Next().Key {
			same++
		}
	}
	if same > 25 {
		t.Errorf("%d/50 identical keys across seeds", same)
	}
}

func TestWriteFraction(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 1} {
		g, _ := NewGenerator(Config{NumKeys: 100, ValueSize: 4, WriteFraction: frac, Seed: 3})
		writes := 0
		const n = 2000
		for i := 0; i < n; i++ {
			req := g.Next()
			if req.Op == core.OpWrite {
				writes++
				if len(req.Value) != 4 {
					t.Fatalf("write value has %d bytes", len(req.Value))
				}
			} else if req.Value != nil {
				t.Fatal("read carries a value")
			}
		}
		got := float64(writes) / n
		if math.Abs(got-frac) > 0.05 {
			t.Errorf("write fraction = %.3f, want %.2f", got, frac)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	const keys = 20
	g, _ := NewGenerator(Config{NumKeys: keys, ValueSize: 2, WriteFraction: 0, Seed: 5})
	seen := map[string]int{}
	for i := 0; i < 2000; i++ {
		seen[g.Next().Key]++
	}
	if len(seen) != keys {
		t.Errorf("uniform generator visited %d/%d keys", len(seen), keys)
	}
	for k, n := range seen {
		if n < 40 || n > 200 { // expected 100 each
			t.Errorf("key %s drawn %d times (expected ≈100)", k, n)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g, err := NewGenerator(Config{NumKeys: 1000, ValueSize: 2, Distribution: Zipfian, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		req := g.Next()
		counts[req.Key]++
		if req.Key == "" {
			t.Fatal("empty key")
		}
	}
	// The hottest key under Zipf(0.99) over 1000 keys should take a
	// few percent of traffic; uniform would give 0.1%.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / n; frac < 0.01 {
		t.Errorf("hottest key has %.4f of traffic; distribution not skewed", frac)
	}
}

func TestZipfianInRange(t *testing.T) {
	const keys = 10
	g, _ := NewGenerator(Config{NumKeys: keys, ValueSize: 2, Distribution: Zipfian, Seed: 13})
	for i := 0; i < 5000; i++ {
		k := g.Next().Key
		found := false
		for j := 0; j < keys; j++ {
			if k == Key(j) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("generated out-of-range key %q", k)
		}
	}
}

func TestInitialData(t *testing.T) {
	cfg := Config{NumKeys: 50, ValueSize: 16, Seed: 9}
	data := InitialData(cfg)
	if len(data) != 50 {
		t.Fatalf("InitialData has %d keys", len(data))
	}
	for k, v := range data {
		if len(v) != 16 {
			t.Errorf("key %s value has %d bytes", k, len(v))
		}
	}
	again := InitialData(cfg)
	for k, v := range data {
		if string(again[k]) != string(v) {
			t.Error("InitialData not deterministic")
			break
		}
	}
}

func TestDatasets(t *testing.T) {
	const n = 100
	ds := Datasets(n)
	if len(ds) != 3 {
		t.Fatalf("Datasets returned %d entries", len(ds))
	}
	wantSizes := map[string]int{"EHR": 10, "SmallBank": 50, "e-commerce": 40}
	for _, d := range ds {
		want, ok := wantSizes[d.Name]
		if !ok {
			t.Errorf("unexpected dataset %q", d.Name)
			continue
		}
		if d.ValueSize != want {
			t.Errorf("%s value size = %d, want %d (paper §6.4)", d.Name, d.ValueSize, want)
		}
		if len(d.Records) != n {
			t.Errorf("%s has %d records", d.Name, len(d.Records))
		}
		for _, r := range d.Records {
			if len(r.Value) != d.ValueSize {
				t.Errorf("%s record %q has %d-byte value", d.Name, r.Key, len(r.Value))
				break
			}
		}
		data := d.Data()
		if len(data) != n {
			t.Errorf("%s Data() lost records to duplicate keys: %d/%d", d.Name, len(data), n)
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, b := EHR(10), EHR(10)
	for i := range a.Records {
		if a.Records[i].Key != b.Records[i].Key || string(a.Records[i].Value) != string(b.Records[i].Value) {
			t.Fatal("EHR not deterministic")
		}
	}
}
