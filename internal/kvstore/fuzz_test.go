package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ortoa/internal/crashfs"
)

// FuzzSnapshotRead: snapshot files may come from disk an attacker (or
// bitrot) touched; parsing must fail cleanly.
func FuzzSnapshotRead(f *testing.F) {
	s := New()
	s.Put("seed", []byte("value"))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ORTOAKV1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		New().ReadSnapshot(bytes.NewReader(data)) //nolint:errcheck
	})
}

// FuzzWALReplay: WAL files survive crashes mid-write; arbitrary
// content must replay without panicking and leave the store usable.
func FuzzWALReplay(f *testing.F) {
	dir := f.TempDir()
	s := New()
	path := filepath.Join(dir, "seed.wal")
	if err := s.AttachWAL(path); err != nil {
		f.Fatal(err)
	}
	s.Put("k", []byte("v"))
	s.DetachWAL()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)-1])
	// Organic crash shapes: journal through the crash model with torn
	// final writes and seed whatever each crash leaves on "disk".
	for cseed := uint64(0); cseed < 4; cseed++ {
		fsys := crashfs.New(&crashfs.Plan{Seed: cseed, TornWriteProb: 1})
		cs := New()
		if err := cs.AttachWALOptions("fuzz.wal", WALOptions{FS: fsys}); err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			cs.Put(fmt.Sprintf("crash-%d", i), bytes.Repeat([]byte{byte(i)}, 32))
		}
		cs.SyncWAL()
		cs.Put("tail", []byte("unsynced"))
		cs.wal.mu.Lock()
		cs.wal.w.Flush() //nolint:errcheck // fuzz seeding only
		cs.wal.mu.Unlock()
		fsys.Crash()
		if shaped, ok := fsys.ReadFileDurable("fuzz.wal"); ok {
			f.Add(shaped)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(p, data, 0o600); err != nil {
			t.Skip()
		}
		st := New()
		if err := st.AttachWAL(p); err != nil {
			return // rejected cleanly
		}
		// Store must remain usable after arbitrary replay.
		st.Put("post", []byte("ok"))
		if v, err := st.Get("post"); err != nil || string(v) != "ok" {
			t.Fatalf("store unusable after replay: %v %v", v, err)
		}
		st.DetachWAL()
	})
}
