package kvstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSnapshotRead: snapshot files may come from disk an attacker (or
// bitrot) touched; parsing must fail cleanly.
func FuzzSnapshotRead(f *testing.F) {
	s := New()
	s.Put("seed", []byte("value"))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ORTOAKV1garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		New().ReadSnapshot(bytes.NewReader(data)) //nolint:errcheck
	})
}

// FuzzWALReplay: WAL files survive crashes mid-write; arbitrary
// content must replay without panicking and leave the store usable.
func FuzzWALReplay(f *testing.F) {
	dir := f.TempDir()
	s := New()
	path := filepath.Join(dir, "seed.wal")
	if err := s.AttachWAL(path); err != nil {
		f.Fatal(err)
	}
	s.Put("k", []byte("v"))
	s.DetachWAL()
	seed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(p, data, 0o600); err != nil {
			t.Skip()
		}
		st := New()
		if err := st.AttachWAL(p); err != nil {
			return // rejected cleanly
		}
		// Store must remain usable after arbitrary replay.
		st.Put("post", []byte("ok"))
		if v, err := st.Get("post"); err != nil || string(v) != "ok" {
			t.Fatalf("store unusable after replay: %v %v", v, err)
		}
		st.DetachWAL()
	})
}
