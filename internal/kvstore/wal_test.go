package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

func TestWALReplayAfterRestart(t *testing.T) {
	path := t.TempDir() + "/store.wal"

	s1 := New()
	if err := s1.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s1.Put(fmt.Sprintf("key-%03d", i), []byte{byte(i), byte(i + 1)})
	}
	s1.Put("key-050", []byte("overwritten")) // later record wins
	s1.Delete("key-099")
	if err := s1.DetachWAL(); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	if err := s2.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	defer s2.DetachWAL()
	if s2.Len() != 99 {
		t.Fatalf("replayed Len = %d, want 99", s2.Len())
	}
	v, err := s2.Get("key-050")
	if err != nil || !bytes.Equal(v, []byte("overwritten")) {
		t.Errorf("key-050 = %q, %v", v, err)
	}
	if _, err := s2.Get("key-099"); err == nil {
		t.Error("deleted key survived replay")
	}
	v, _ = s2.Get("key-007")
	if !bytes.Equal(v, []byte{7, 8}) {
		t.Errorf("key-007 = %v", v)
	}
}

func TestWALUpdateJournaled(t *testing.T) {
	path := t.TempDir() + "/store.wal"
	s1 := New()
	if err := s1.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	s1.Put("k", []byte("v1"))
	if err := s1.Update("k", func(old []byte) ([]byte, error) {
		return append(old, '2'), nil
	}); err != nil {
		t.Fatal(err)
	}
	s1.DetachWAL()

	s2 := New()
	if err := s2.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	defer s2.DetachWAL()
	v, err := s2.Get("k")
	if err != nil || !bytes.Equal(v, []byte("v12")) {
		t.Errorf("updated value after replay = %q, %v", v, err)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	path := t.TempDir() + "/store.wal"
	s1 := New()
	if err := s1.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	s1.Put("a", []byte("complete"))
	s1.Put("b", []byte("also-complete"))
	s1.DetachWAL()

	// Simulate a crash mid-append: chop bytes off the tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o600); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	if err := s2.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Get("a"); err != nil {
		t.Error("first complete record lost to torn tail")
	}
	if _, err := s2.Get("b"); err == nil {
		t.Error("torn record replayed as complete")
	}
	// The log must remain appendable after truncation.
	s2.Put("c", []byte("post-crash"))
	s2.DetachWAL()

	s3 := New()
	if err := s3.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	defer s3.DetachWAL()
	if _, err := s3.Get("c"); err != nil {
		t.Error("post-crash record lost")
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := t.TempDir() + "/store.wal"
	s1 := New()
	s1.AttachWAL(path)
	s1.Put("first", []byte("ok"))
	s1.Put("second", []byte("ok"))
	s1.DetachWAL()

	raw, _ := os.ReadFile(path)
	raw[len(raw)-3] ^= 0xFF // corrupt the CRC region of the last record
	os.WriteFile(path, raw, 0o600)

	s2 := New()
	if err := s2.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	defer s2.DetachWAL()
	if _, err := s2.Get("first"); err != nil {
		t.Error("record before corruption lost")
	}
	if _, err := s2.Get("second"); err == nil {
		t.Error("corrupt record replayed")
	}
}

func TestWALCompact(t *testing.T) {
	path := t.TempDir() + "/store.wal"
	s1 := New()
	if err := s1.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	// Many updates to few keys: log grows, live set stays small.
	for i := 0; i < 200; i++ {
		s1.Put(fmt.Sprintf("k%d", i%4), bytes.Repeat([]byte{byte(i)}, 64))
	}
	s1.SyncWAL()
	before, _ := os.Stat(path)
	if err := s1.CompactWAL(); err != nil {
		t.Fatal(err)
	}
	s1.SyncWAL()
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink log: %d -> %d", before.Size(), after.Size())
	}
	// Appends after compaction still work and replay correctly.
	s1.Put("post", []byte("compact"))
	s1.DetachWAL()

	s2 := New()
	if err := s2.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	defer s2.DetachWAL()
	if s2.Len() != 5 {
		t.Errorf("replayed Len = %d, want 5", s2.Len())
	}
	if _, err := s2.Get("post"); err != nil {
		t.Error("post-compaction record lost")
	}
}

func TestWALDoubleAttach(t *testing.T) {
	dir := t.TempDir()
	s := New()
	if err := s.AttachWAL(dir + "/a.wal"); err != nil {
		t.Fatal(err)
	}
	defer s.DetachWAL()
	if err := s.AttachWAL(dir + "/b.wal"); err != ErrWALAttached {
		t.Errorf("second attach = %v, want ErrWALAttached", err)
	}
}

func TestWALDetachWithoutAttach(t *testing.T) {
	if err := New().DetachWAL(); err != nil {
		t.Errorf("DetachWAL on plain store = %v", err)
	}
	if err := New().SyncWAL(); err != nil {
		t.Errorf("SyncWAL on plain store = %v", err)
	}
	if err := New().CompactWAL(); err == nil {
		t.Error("CompactWAL on plain store succeeded")
	}
}

func TestWALBadMagic(t *testing.T) {
	path := t.TempDir() + "/bad.wal"
	os.WriteFile(path, []byte("NOTAWAL-12345678"), 0o600)
	if err := New().AttachWAL(path); err == nil {
		t.Error("AttachWAL accepted bad magic")
	}
}

func TestWALEmptyValueAndKey(t *testing.T) {
	path := t.TempDir() + "/edge.wal"
	s1 := New()
	s1.AttachWAL(path)
	s1.Put("", []byte{})
	s1.Put("k", nil)
	s1.DetachWAL()

	s2 := New()
	if err := s2.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	defer s2.DetachWAL()
	if v, err := s2.Get(""); err != nil || len(v) != 0 {
		t.Errorf("empty key roundtrip = %v, %v", v, err)
	}
	if v, err := s2.Get("k"); err != nil || len(v) != 0 {
		t.Errorf("nil value roundtrip = %v, %v", v, err)
	}
}
