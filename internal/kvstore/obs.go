package kvstore

import "ortoa/internal/obs"

// storeMetrics is the store's durability instrumentation: WAL write
// volume and error state, fsync latency, and snapshot timings.
type storeMetrics struct {
	walAppends      *obs.Counter
	walAppendErrors *obs.Counter
	walFsync        *obs.Histogram
	snapshotWrite   *obs.Histogram
	snapshotLoad    *obs.Histogram
}

// Instrument registers the store's metrics (ortoa_kvstore_*) with reg:
// live record count and byte footprint (the quantity §5.3.1 prices),
// WAL queue depth and append/fsync activity, and snapshot timings.
// A nil registry leaves the store uninstrumented at zero cost.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("ortoa_kvstore_records", "live keys in the store",
		func() int64 { return int64(s.Len()) })
	reg.GaugeFunc("ortoa_kvstore_bytes", "total key+value bytes resident", s.Bytes)
	reg.GaugeFunc("ortoa_kvstore_wal_buffered_bytes", "journal bytes buffered but not yet flushed to the WAL file", s.walBuffered)
	s.metrics.Store(&storeMetrics{
		walAppends:      reg.Counter("ortoa_kvstore_wal_appends_total", "mutations journaled to the WAL"),
		walAppendErrors: reg.Counter("ortoa_kvstore_wal_append_errors_total", "journal writes that failed (surfaced on Sync/Detach)"),
		walFsync:        reg.Histogram("ortoa_kvstore_wal_fsync_seconds", "WAL flush+fsync latency"),
		snapshotWrite:   reg.Histogram("ortoa_kvstore_snapshot_write_seconds", "full-store snapshot serialization time"),
		snapshotLoad:    reg.Histogram("ortoa_kvstore_snapshot_load_seconds", "snapshot load time"),
	})
}

// walBuffered reports journal bytes sitting in the bufio layer — the
// WAL queue depth an operator watches to size fsync cadence.
func (s *Store) walBuffered() int64 {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(w.w.Buffered())
}
