package kvstore

import "ortoa/internal/obs"

// storeMetrics is the store's durability instrumentation: WAL write
// volume and error state, fsync latency, snapshot timings, and
// checkpoint activity.
type storeMetrics struct {
	walAppends      *obs.Counter
	walAppendErrors *obs.Counter
	walFsync        *obs.Histogram
	snapshotWrite   *obs.Histogram
	snapshotLoad    *obs.Histogram

	checkpointTime   *obs.Histogram
	checkpoints      *obs.Counter
	checkpointErrors *obs.Counter
}

// Instrument registers the store's metrics (ortoa_kvstore_*) with reg:
// live record count and byte footprint (the quantity §5.3.1 prices),
// WAL queue depth, append/fsync activity and failure state, recovery
// replay volume, snapshot and checkpoint timings. It also registers a
// kvstore_wal health check so a poisoned journal flips /healthz to
// 503. A nil registry leaves the store uninstrumented at zero cost.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("ortoa_kvstore_records", "live keys in the store",
		func() int64 { return int64(s.Len()) })
	reg.GaugeFunc("ortoa_kvstore_bytes", "total key+value bytes resident", s.Bytes)
	reg.GaugeFunc("ortoa_kvstore_wal_buffered_bytes", "journal bytes buffered but not yet flushed to the WAL file", s.walBuffered)
	reg.GaugeFunc("ortoa_kvstore_wal_failed", "1 when the WAL has a sticky failure and the store is rejecting journaled mutations",
		func() int64 {
			if s.WALErr() != nil {
				return 1
			}
			return 0
		})
	reg.CounterFunc("ortoa_kvstore_wal_replayed_records_total", "log records replayed into this store at recovery", s.WALReplayed)
	reg.GaugeFunc("ortoa_kvstore_checkpoint_generation", "committed checkpoint generation",
		func() int64 { return int64(s.Generation()) })
	reg.Health("kvstore_wal", s.WALErr)
	s.metrics.Store(&storeMetrics{
		walAppends:      reg.Counter("ortoa_kvstore_wal_appends_total", "mutations journaled to the WAL"),
		walAppendErrors: reg.Counter("ortoa_kvstore_wal_append_errors_total", "journal writes that failed (sticky; see wal_failed)"),
		walFsync:        reg.Histogram("ortoa_kvstore_wal_fsync_seconds", "WAL flush+fsync latency (one sample per group commit)"),
		snapshotWrite:   reg.Histogram("ortoa_kvstore_snapshot_write_seconds", "full-store snapshot serialization time"),
		snapshotLoad:    reg.Histogram("ortoa_kvstore_snapshot_load_seconds", "snapshot load time"),

		checkpointTime:   reg.Histogram("ortoa_kvstore_checkpoint_seconds", "checkpoint duration: WAL rotation + snapshot + manifest commit"),
		checkpoints:      reg.Counter("ortoa_kvstore_checkpoints_total", "checkpoints committed"),
		checkpointErrors: reg.Counter("ortoa_kvstore_checkpoint_errors_total", "checkpoints that failed (retried next tick)"),
	})
}

// walBuffered reports journal bytes sitting in the bufio layer — the
// WAL queue depth an operator watches to size fsync cadence.
func (s *Store) walBuffered() int64 {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(w.w.Buffered())
}
