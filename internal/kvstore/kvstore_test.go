package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetPut(t *testing.T) {
	s := New()
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get(missing) = %v, want ErrNotFound", err)
	}
	s.Put("a", []byte("1"))
	got, err := s.Get("a")
	if err != nil || !bytes.Equal(got, []byte("1")) {
		t.Errorf("Get(a) = %q, %v", got, err)
	}
	s.Put("a", []byte("22"))
	got, _ = s.Get("a")
	if !bytes.Equal(got, []byte("22")) {
		t.Errorf("Get after overwrite = %q", got)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("k", []byte{1, 2, 3})
	v, _ := s.Get("k")
	v[0] = 99
	v2, _ := s.Get("k")
	if v2[0] != 1 {
		t.Error("Get result aliases stored value")
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := New()
	in := []byte{5}
	s.Put("k", in)
	in[0] = 6
	v, _ := s.Get("k")
	if v[0] != 5 {
		t.Error("Put retained caller's slice")
	}
}

func TestUpdate(t *testing.T) {
	s := New()
	if err := s.Update("nope", func(old []byte) ([]byte, error) { return old, nil }); !errors.Is(err, ErrNotFound) {
		t.Errorf("Update(missing) = %v, want ErrNotFound", err)
	}
	s.Put("k", []byte("old"))
	err := s.Update("k", func(old []byte) ([]byte, error) {
		if !bytes.Equal(old, []byte("old")) {
			t.Errorf("Update saw %q", old)
		}
		return []byte("newer"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := s.Get("k")
	if !bytes.Equal(v, []byte("newer")) {
		t.Errorf("after Update = %q", v)
	}
}

func TestUpdateError(t *testing.T) {
	s := New()
	s.Put("k", []byte("keep"))
	wantErr := errors.New("boom")
	if err := s.Update("k", func([]byte) ([]byte, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("Update error = %v", err)
	}
	v, _ := s.Get("k")
	if !bytes.Equal(v, []byte("keep")) {
		t.Error("failed Update modified the value")
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	if ok, err := s.Delete("k"); !ok || err != nil {
		t.Errorf("Delete(existing) = %v, %v", ok, err)
	}
	if ok, err := s.Delete("k"); ok || err != nil {
		t.Errorf("Delete(deleted) = %v, %v", ok, err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Error("key still present after Delete")
	}
}

func TestLenAndBytes(t *testing.T) {
	s := New()
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatalf("empty store: Len=%d Bytes=%d", s.Len(), s.Bytes())
	}
	s.Put("ab", []byte("xyz")) // 2+3
	s.Put("c", []byte("12"))   // 1+2
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if s.Bytes() != 8 {
		t.Errorf("Bytes = %d, want 8", s.Bytes())
	}
	s.Put("ab", []byte("x")) // now 2+1
	if s.Bytes() != 6 {
		t.Errorf("Bytes after overwrite = %d, want 6", s.Bytes())
	}
	s.Delete("c")
	if s.Bytes() != 3 {
		t.Errorf("Bytes after delete = %d, want 3", s.Bytes())
	}
}

func TestRange(t *testing.T) {
	s := New()
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		s.Put(k, []byte(v))
	}
	got := map[string]string{}
	s.Range(func(k string, v []byte) bool {
		got[k] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("Range[%q] = %q, want %q", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New()
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	n := 0
	s.Range(func(string, []byte) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("Range visited %d after stop, want 5", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	const workers = 16
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := fmt.Sprintf("w%d-k%d", w, i)
				s.Put(k, []byte{byte(i)})
				if v, err := s.Get(k); err != nil || v[0] != byte(i) {
					t.Errorf("Get(%s) = %v, %v", k, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*perWorker {
		t.Errorf("Len = %d, want %d", s.Len(), workers*perWorker)
	}
}

func TestConcurrentUpdateAtomicity(t *testing.T) {
	s := New()
	s.Put("ctr", []byte{0, 0, 0, 0, 0, 0, 0, 0})
	const workers = 8
	const increments = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				err := s.Update("ctr", func(old []byte) ([]byte, error) {
					n := uint64(old[0]) | uint64(old[1])<<8 | uint64(old[2])<<16 | uint64(old[3])<<24 |
						uint64(old[4])<<32 | uint64(old[5])<<40 | uint64(old[6])<<48 | uint64(old[7])<<56
					n++
					nv := make([]byte, 8)
					for b := 0; b < 8; b++ {
						nv[b] = byte(n >> (8 * b))
					}
					return nv, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v, _ := s.Get("ctr")
	n := uint64(0)
	for b := 7; b >= 0; b-- {
		n = n<<8 | uint64(v[b])
	}
	if n != workers*increments {
		t.Errorf("counter = %d, want %d (lost updates)", n, workers*increments)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	for i := 0; i < 500; i++ {
		s.Put(fmt.Sprintf("key-%04d", i), bytes.Repeat([]byte{byte(i)}, i%40))
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != s.Len() {
		t.Fatalf("restored Len = %d, want %d", restored.Len(), s.Len())
	}
	s.Range(func(k string, v []byte) bool {
		got, err := restored.Get(k)
		if err != nil || !bytes.Equal(got, v) {
			t.Errorf("restored[%q] = %q, %v; want %q", k, got, err, v)
			return false
		}
		return true
	})
	if restored.Bytes() != s.Bytes() {
		t.Errorf("restored Bytes = %d, want %d", restored.Bytes(), s.Bytes())
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	s := New()
	if err := s.ReadSnapshot(bytes.NewReader([]byte("NOTAMAGIC0000000"))); err == nil {
		t.Error("ReadSnapshot accepted bad magic")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	s := New()
	s.Put("k", []byte("v"))
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	if err := New().ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Error("ReadSnapshot accepted truncated input")
	}
}

func TestSaveLoadFile(t *testing.T) {
	s := New()
	s.Put("alpha", []byte("beta"))
	path := t.TempDir() + "/snap.kv"
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	v, err := s2.Get("alpha")
	if err != nil || !bytes.Equal(v, []byte("beta")) {
		t.Errorf("loaded Get = %q, %v", v, err)
	}
}

func TestQuickPutGet(t *testing.T) {
	s := New()
	f := func(k string, v []byte) bool {
		s.Put(k, v)
		got, err := s.Get(k)
		return err == nil && bytes.Equal(got, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
