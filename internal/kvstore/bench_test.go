package kvstore

import (
	"fmt"
	"testing"
)

func benchStore(n int) *Store {
	s := New()
	for i := 0; i < n; i++ {
		s.Put(fmt.Sprintf("key-%08d", i), make([]byte, 160))
	}
	return s
}

func BenchmarkGet(b *testing.B) {
	s := benchStore(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("key-%08d", i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	s := benchStore(10000)
	v := make([]byte, 160)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Put(fmt.Sprintf("key-%08d", i%10000), v)
	}
}

// BenchmarkUpdate is the protocols' atomic read-modify-replace path.
func BenchmarkUpdate(b *testing.B) {
	s := benchStore(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := s.Update(fmt.Sprintf("key-%08d", i%10000), func(old []byte) ([]byte, error) {
			return old, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetParallel(b *testing.B) {
	s := benchStore(10000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := s.Get(fmt.Sprintf("key-%08d", i%10000)); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkUpdateParallelDisjoint(b *testing.B) {
	s := benchStore(10000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("key-%08d", i%10000)
			if err := s.Update(key, func(old []byte) ([]byte, error) { return old, nil }); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
