// Package kvstore is the in-memory key-value store the untrusted ORTOA
// server keeps its encoded records in. It plays the role Redis plays in
// the paper's deployment (§4.1): a fast GET/PUT map under the server
// process, oblivious to what the bytes mean.
//
// The store is sharded to keep concurrent accesses from serializing on
// one mutex, and tracks byte-level statistics so experiments can report
// server storage exactly as §5.3.1 computes it.
package kvstore

import (
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// ErrNotFound reports a Get or Update of a key that is not present.
var ErrNotFound = errors.New("kvstore: key not found")

const numShards = 256

// A Store is a sharded in-memory byte-string map, safe for concurrent
// use. AttachWAL adds crash-durable journaling (wal.go).
type Store struct {
	seed    maphash.Seed
	shards  [numShards]shard
	metrics atomic.Pointer[storeMetrics]

	walMu sync.Mutex
	wal   *wal
}

type shard struct {
	mu    sync.RWMutex
	items map[string][]byte
	bytes int64 // sum of key+value lengths in this shard
}

// New returns an empty Store.
func New() *Store {
	s := &Store{seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].items = make(map[string][]byte)
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	h := maphash.String(s.seed, key)
	return &s.shards[h%numShards]
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.items[key]
	if !ok {
		sh.mu.RUnlock()
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	sh.mu.RUnlock()
	return out, nil
}

// Put stores a copy of value under key, replacing any previous value.
func (s *Store) Put(key string, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	if old, ok := sh.items[key]; ok {
		sh.bytes -= int64(len(old))
	} else {
		sh.bytes += int64(len(key))
	}
	sh.items[key] = v
	sh.bytes += int64(len(v))
	s.journal(walOpPut, key, v)
	sh.mu.Unlock()
}

// applyPut mutates without journaling (WAL replay).
func (s *Store) applyPut(key string, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if old, ok := sh.items[key]; ok {
		sh.bytes -= int64(len(old))
	} else {
		sh.bytes += int64(len(key))
	}
	sh.items[key] = value
	sh.bytes += int64(len(value))
	sh.mu.Unlock()
}

// applyDelete mutates without journaling (WAL replay).
func (s *Store) applyDelete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if v, ok := sh.items[key]; ok {
		sh.bytes -= int64(len(key) + len(v))
		delete(sh.items, key)
	}
	sh.mu.Unlock()
}

// journal appends a mutation to the WAL, if attached. Called with the
// key's shard lock held, so replay order per key matches application
// order. Journal failures are recorded and surfaced by SyncWAL /
// DetachWAL rather than failing the in-memory operation.
func (s *Store) journal(op byte, key string, value []byte) {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return
	}
	err := w.append(op, key, value) // surfaced on Sync/Detach via file state
	if m := s.metrics.Load(); m != nil {
		m.walAppends.Inc()
		if err != nil {
			m.walAppendErrors.Inc()
		}
	}
}

// Update applies fn to the value stored under key while holding the
// shard lock, storing fn's result. It returns ErrNotFound if key is
// absent. The protocols use Update for their atomic
// read-decrypt-replace step so two concurrent accesses to the same
// object cannot interleave (the LBL server's decrypt-and-install must
// see a consistent label array).
func (s *Store) Update(key string, fn func(old []byte) ([]byte, error)) error {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.items[key]
	if !ok {
		return ErrNotFound
	}
	nv, err := fn(old)
	if err != nil {
		return err
	}
	sh.bytes += int64(len(nv)) - int64(len(old))
	sh.items[key] = nv
	s.journal(walOpPut, key, nv)
	return nil
}

// Delete removes key. It reports whether the key was present.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	v, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.bytes -= int64(len(key) + len(v))
	delete(sh.items, key)
	s.journal(walOpDelete, key, nil)
	return true
}

// Len returns the number of keys in the store.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.items)
		sh.mu.RUnlock()
	}
	return n
}

// Bytes returns the total size of all keys and values, the quantity
// the paper's storage cost analysis (§5.3.1, §6.3.3) prices.
func (s *Store) Bytes() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.bytes
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for every key/value pair until fn returns false. The
// value passed to fn must not be retained or modified. Range holds one
// shard lock at a time, so it sees a consistent view per shard but not
// across shards.
func (s *Store) Range(fn func(key string, value []byte) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.items {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}
