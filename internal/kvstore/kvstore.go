// Package kvstore is the in-memory key-value store the untrusted ORTOA
// server keeps its encoded records in. It plays the role Redis plays in
// the paper's deployment (§4.1): a fast GET/PUT map under the server
// process, oblivious to what the bytes mean.
//
// The store is sharded to keep concurrent accesses from serializing on
// one mutex, and tracks byte-level statistics so experiments can report
// server storage exactly as §5.3.1 computes it.
package kvstore

import (
	"errors"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// ErrNotFound reports a Get or Update of a key that is not present.
var ErrNotFound = errors.New("kvstore: key not found")

const numShards = 256

// A Store is a sharded in-memory byte-string map, safe for concurrent
// use. AttachWAL adds crash-durable journaling (wal.go); Recover adds
// generation-based checkpointing on top (durability.go).
type Store struct {
	seed    maphash.Seed
	shards  [numShards]shard
	metrics atomic.Pointer[storeMetrics]

	walMu sync.Mutex
	wal   *wal
	ckpt  *checkpointer // non-nil after Recover

	walReplayed atomic.Int64 // records replayed at recovery
}

type shard struct {
	mu    sync.RWMutex
	items map[string][]byte
	bytes int64 // sum of key+value lengths in this shard
}

// New returns an empty Store.
func New() *Store {
	s := &Store{seed: maphash.MakeSeed()}
	for i := range s.shards {
		s.shards[i].items = make(map[string][]byte)
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	h := maphash.String(s.seed, key)
	return &s.shards[h%numShards]
}

// Get returns a copy of the value stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.items[key]
	if !ok {
		sh.mu.RUnlock()
		return nil, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	sh.mu.RUnlock()
	return out, nil
}

// Put stores a copy of value under key, replacing any previous value.
// With a WAL attached the mutation is journaled before it is applied,
// so an error means the store is unchanged; under SyncGroupCommit Put
// returns only after the record is on stable storage.
func (s *Store) Put(key string, value []byte) error {
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	lsn, err := s.journal(walOpPut, key, v)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if old, ok := sh.items[key]; ok {
		sh.bytes -= int64(len(old))
	} else {
		sh.bytes += int64(len(key))
	}
	sh.items[key] = v
	sh.bytes += int64(len(v))
	sh.mu.Unlock()
	// The durability wait happens after the shard lock is released:
	// fsync latency must never serialize a shard, and group commit
	// needs concurrent writers parked together to share the fsync.
	return s.waitDurable(lsn)
}

// applyPut mutates without journaling (WAL replay).
func (s *Store) applyPut(key string, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if old, ok := sh.items[key]; ok {
		sh.bytes -= int64(len(old))
	} else {
		sh.bytes += int64(len(key))
	}
	sh.items[key] = value
	sh.bytes += int64(len(value))
	sh.mu.Unlock()
}

// applyDelete mutates without journaling (WAL replay).
func (s *Store) applyDelete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	if v, ok := sh.items[key]; ok {
		sh.bytes -= int64(len(key) + len(v))
		delete(sh.items, key)
	}
	sh.mu.Unlock()
}

// journal appends a mutation to the WAL, if attached, returning its
// LSN. Called with the key's shard lock held, so replay order per key
// matches application order. A failure is sticky (see wal.fail):
// callers must not apply the mutation, keeping memory and log
// consistent — "error ⇒ store unchanged" is what lets the proxy treat
// a rejected round as never executed.
func (s *Store) journal(op byte, key string, value []byte) (uint64, error) {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return 0, nil
	}
	lsn, err := w.append(op, key, value)
	if m := s.metrics.Load(); m != nil {
		m.walAppends.Inc()
		if err != nil {
			m.walAppendErrors.Inc()
		}
	}
	return lsn, err
}

// Update applies fn to the value stored under key while holding the
// shard lock, storing fn's result. It returns ErrNotFound if key is
// absent. The protocols use Update for their atomic
// read-decrypt-replace step so two concurrent accesses to the same
// object cannot interleave (the LBL server's decrypt-and-install must
// see a consistent label array). Like Put, a journaling error leaves
// the record untouched, and under SyncGroupCommit Update returns only
// after the mutation's commit point — this is where durable-on-ack
// threads into the LBL access path.
func (s *Store) Update(key string, fn func(old []byte) ([]byte, error)) error {
	sh := s.shardFor(key)
	sh.mu.Lock()
	old, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		return ErrNotFound
	}
	nv, err := fn(old)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	lsn, err := s.journal(walOpPut, key, nv)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.bytes += int64(len(nv)) - int64(len(old))
	sh.items[key] = nv
	sh.mu.Unlock()
	return s.waitDurable(lsn)
}

// Delete removes key. It reports whether the key was present; the
// error mirrors Put's journaling contract.
func (s *Store) Delete(key string) (bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	v, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		return false, nil
	}
	lsn, err := s.journal(walOpDelete, key, nil)
	if err != nil {
		sh.mu.Unlock()
		return false, err
	}
	sh.bytes -= int64(len(key) + len(v))
	delete(sh.items, key)
	sh.mu.Unlock()
	return true, s.waitDurable(lsn)
}

// Len returns the number of keys in the store.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.items)
		sh.mu.RUnlock()
	}
	return n
}

// Bytes returns the total size of all keys and values, the quantity
// the paper's storage cost analysis (§5.3.1, §6.3.3) prices.
func (s *Store) Bytes() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.bytes
		sh.mu.RUnlock()
	}
	return n
}

// Range calls fn for every key/value pair until fn returns false. The
// value passed to fn must not be retained or modified. Range holds one
// shard lock at a time, so it sees a consistent view per shard but not
// across shards.
func (s *Store) Range(fn func(key string, value []byte) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, v := range sh.items {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}
