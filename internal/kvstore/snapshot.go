package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"
)

// Snapshot format: magic, version, entry count, then count entries of
// varint(keyLen) key varint(valLen) val. Values and keys are opaque
// (already encrypted/encoded by the protocol layer).
var snapshotMagic = [8]byte{'O', 'R', 'T', 'O', 'A', 'K', 'V', '1'}

// WriteSnapshot serializes the full store contents to w. Concurrent
// writers may interleave with the snapshot; per-shard consistency is
// guaranteed, cross-shard is not (same contract as Range).
func (s *Store) WriteSnapshot(w io.Writer) error {
	if m := s.metrics.Load(); m != nil {
		defer m.snapshotWrite.Since(time.Now())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(s.Len()))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	var writeErr error
	written := uint64(0)
	s.Range(func(k string, v []byte) bool {
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(k)))
		if _, writeErr = bw.Write(lenBuf[:n]); writeErr != nil {
			return false
		}
		if _, writeErr = bw.WriteString(k); writeErr != nil {
			return false
		}
		n = binary.PutUvarint(lenBuf[:], uint64(len(v)))
		if _, writeErr = bw.Write(lenBuf[:n]); writeErr != nil {
			return false
		}
		if _, writeErr = bw.Write(v); writeErr != nil {
			return false
		}
		written++
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	// The count was captured before iterating; if a concurrent writer
	// changed the key set the snapshot is inconsistent — report it.
	if got := uint64(s.Len()); got != written {
		return fmt.Errorf("kvstore: store mutated during snapshot (wrote %d, now %d keys)", written, got)
	}
	return bw.Flush()
}

// ReadSnapshot loads entries from r into the store, overwriting
// duplicates.
func (s *Store) ReadSnapshot(r io.Reader) error {
	if m := s.metrics.Load(); m != nil {
		defer m.snapshotLoad.Since(time.Now())
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("kvstore: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("kvstore: bad snapshot magic %q", magic[:])
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return fmt.Errorf("kvstore: reading snapshot count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	for i := uint64(0); i < n; i++ {
		key, err := readBlob(br)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot entry %d key: %w", i, err)
		}
		val, err := readBlob(br)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot entry %d value: %w", i, err)
		}
		s.Put(string(key), val)
	}
	return nil
}

func readBlob(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("blob length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// SaveFile writes a snapshot to path atomically (write to a temp file
// in the same directory, then rename).
func (s *Store) SaveFile(path string) error {
	tmp, err := os.CreateTemp(dirOf(path), ".ortoa-kv-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := s.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads a snapshot from path into the store.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
