package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"ortoa/internal/vfs"
)

// Snapshot format: magic, entry count, then count entries of
// varint(keyLen) key varint(valLen) val. Values and keys are opaque
// (already encrypted/encoded by the protocol layer).
var snapshotMagic = [8]byte{'O', 'R', 'T', 'O', 'A', 'K', 'V', '1'}

// writeSnapshotEntries streams every key/value pair to bw and returns
// how many entries were written.
func (s *Store) writeSnapshotEntries(bw *bufio.Writer) (uint64, error) {
	var writeErr error
	written := uint64(0)
	s.Range(func(k string, v []byte) bool {
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(k)))
		if _, writeErr = bw.Write(lenBuf[:n]); writeErr != nil {
			return false
		}
		if _, writeErr = bw.WriteString(k); writeErr != nil {
			return false
		}
		n = binary.PutUvarint(lenBuf[:], uint64(len(v)))
		if _, writeErr = bw.Write(lenBuf[:n]); writeErr != nil {
			return false
		}
		if _, writeErr = bw.Write(v); writeErr != nil {
			return false
		}
		written++
		return true
	})
	return written, writeErr
}

// WriteSnapshot serializes the full store contents to w. Concurrent
// writers may interleave with the snapshot; per-shard consistency is
// guaranteed, cross-shard is not (same contract as Range). Because the
// entry count leads the stream, WriteSnapshot fails if the key set
// changes mid-iteration; SaveFile has no such restriction (it patches
// the count in place).
func (s *Store) WriteSnapshot(w io.Writer) error {
	if m := s.metrics.Load(); m != nil {
		defer m.snapshotWrite.Since(time.Now())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(s.Len()))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	written, err := s.writeSnapshotEntries(bw)
	if err != nil {
		return err
	}
	// The count was captured before iterating; if a concurrent writer
	// changed the key set the snapshot is inconsistent — report it.
	if got := uint64(s.Len()); got != written {
		return fmt.Errorf("kvstore: store mutated during snapshot (wrote %d, now %d keys)", written, got)
	}
	return bw.Flush()
}

// ReadSnapshot loads entries from r into the store, overwriting
// duplicates.
func (s *Store) ReadSnapshot(r io.Reader) error {
	if m := s.metrics.Load(); m != nil {
		defer m.snapshotLoad.Since(time.Now())
	}
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("kvstore: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("kvstore: bad snapshot magic %q", magic[:])
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return fmt.Errorf("kvstore: reading snapshot count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	for i := uint64(0); i < n; i++ {
		key, err := readBlob(br)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot entry %d key: %w", i, err)
		}
		val, err := readBlob(br)
		if err != nil {
			return fmt.Errorf("kvstore: snapshot entry %d value: %w", i, err)
		}
		if err := s.Put(string(key), val); err != nil {
			return err
		}
	}
	return nil
}

func readBlob(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("blob length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// SaveFile writes a snapshot to path crash-atomically: temp file in
// the same directory, fsync, rename, directory fsync. A crash at any
// point leaves either the old snapshot or the complete new one.
func (s *Store) SaveFile(path string) error {
	return s.saveFile(vfs.OS{}, path)
}

func (s *Store) saveFile(fsys vfs.FS, path string) (err error) {
	if m := s.metrics.Load(); m != nil {
		defer m.snapshotWrite.Since(time.Now())
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp) //nolint:errcheck // best-effort cleanup
		}
	}()
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err = bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	// Entry-count placeholder, patched below: the store may be taking
	// writes while Range iterates, so the count is only known after.
	var cnt [8]byte
	if _, err = bw.Write(cnt[:]); err != nil {
		return err
	}
	written, err := s.writeSnapshotEntries(bw)
	if err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return err
	}
	if _, err = f.Seek(int64(len(snapshotMagic)), io.SeekStart); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(cnt[:], written)
	if _, err = f.Write(cnt[:]); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(vfs.Dir(path))
}

// LoadFile reads a snapshot from path into the store.
func (s *Store) LoadFile(path string) error {
	return s.loadFile(vfs.OS{}, path)
}

func (s *Store) loadFile(fsys vfs.FS, path string) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}
