package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// WAL support: a Store can journal every mutation to an append-only
// log, so a crashed server restarts with its (encrypted) records
// intact — the durability a Redis-style substrate would provide with
// AOF persistence. Records are CRC-framed; replay stops cleanly at a
// torn tail.
//
// Log record: [1B op][uvarint keyLen][key][uvarint valLen][value]
// [4B crc32 of everything before it]. Deletes carry no value.

const (
	walOpPut    byte = 1
	walOpDelete byte = 2
)

var walMagic = [8]byte{'O', 'R', 'T', 'O', 'A', 'W', 'L', '1'}

// ErrWALAttached reports an AttachWAL on a store that already has one.
var ErrWALAttached = errors.New("kvstore: WAL already attached")

type wal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
}

// AttachWAL replays the log at path into the store (creating it if
// absent) and journals every subsequent Put, Update, and Delete.
// Writes are buffered; call SyncWAL for durability points and
// DetachWAL on shutdown.
func (s *Store) AttachWAL(path string) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal != nil {
		return ErrWALAttached
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return err
	}
	replayed, err := s.replayWAL(f)
	if err != nil {
		f.Close()
		return err
	}
	// Truncate any torn tail so new records append after the last
	// valid one.
	if err := f.Truncate(replayed); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(replayed, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w := &wal{f: f, w: bufio.NewWriterSize(f, 1<<16), path: path}
	if replayed == 0 {
		if _, err := w.w.Write(walMagic[:]); err != nil {
			f.Close()
			return err
		}
	}
	s.wal = w
	return nil
}

// replayWAL applies valid records and returns the byte offset of the
// end of the last valid record.
func (s *Store) replayWAL(f *os.File) (int64, error) {
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if info.Size() == 0 {
		return 0, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("kvstore: reading WAL magic: %w", err)
	}
	if magic != walMagic {
		return 0, fmt.Errorf("kvstore: bad WAL magic %q", magic[:])
	}
	valid := int64(len(walMagic))
	for {
		rec, n, err := readWALRecord(br)
		if err != nil {
			// Torn or corrupt tail: keep what was valid.
			return valid, nil
		}
		switch rec.op {
		case walOpPut:
			s.applyPut(rec.key, rec.value)
		case walOpDelete:
			s.applyDelete(rec.key)
		}
		valid += n
	}
}

type walRecord struct {
	op    byte
	key   string
	value []byte
}

func readWALRecord(br *bufio.Reader) (walRecord, int64, error) {
	var rec walRecord
	crc := crc32.NewIEEE()
	tee := io.TeeReader(br, crc)
	var opBuf [1]byte
	if _, err := io.ReadFull(tee, opBuf[:]); err != nil {
		return rec, 0, err
	}
	rec.op = opBuf[0]
	if rec.op != walOpPut && rec.op != walOpDelete {
		return rec, 0, errors.New("kvstore: bad WAL op")
	}
	n := int64(1)
	readBlobLen := func() ([]byte, error) {
		l, vn, err := readUvarintCounted(tee)
		if err != nil {
			return nil, err
		}
		n += vn
		if l > 1<<30 {
			return nil, errors.New("kvstore: WAL blob too large")
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(tee, buf); err != nil {
			return nil, err
		}
		n += int64(l)
		return buf, nil
	}
	key, err := readBlobLen()
	if err != nil {
		return rec, 0, err
	}
	rec.key = string(key)
	if rec.op == walOpPut {
		rec.value, err = readBlobLen()
		if err != nil {
			return rec, 0, err
		}
	}
	want := crc.Sum32()
	var crcBuf [4]byte
	if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
		return rec, 0, err
	}
	n += 4
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return rec, 0, errors.New("kvstore: WAL record CRC mismatch")
	}
	return rec, n, nil
}

// readUvarintCounted reads a uvarint and reports how many bytes it
// consumed.
func readUvarintCounted(r io.Reader) (uint64, int64, error) {
	var v uint64
	var shift uint
	var n int64
	var b [1]byte
	for {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, n, err
		}
		n++
		if shift >= 64 {
			return 0, n, errors.New("kvstore: uvarint overflow")
		}
		v |= uint64(b[0]&0x7F) << shift
		if b[0] < 0x80 {
			return v, n, nil
		}
		shift += 7
	}
}

// append journals one mutation. Callers hold the relevant shard lock,
// so per-key replay order matches application order.
func (w *wal) append(op byte, key string, value []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w.w, crc)
	var lenBuf [binary.MaxVarintLen64]byte
	if _, err := out.Write([]byte{op}); err != nil {
		return err
	}
	n := binary.PutUvarint(lenBuf[:], uint64(len(key)))
	if _, err := out.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := io.WriteString(out, key); err != nil {
		return err
	}
	if op == walOpPut {
		n = binary.PutUvarint(lenBuf[:], uint64(len(value)))
		if _, err := out.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := out.Write(value); err != nil {
			return err
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	_, err := w.w.Write(crcBuf[:])
	return err
}

// SyncWAL flushes buffered log records and fsyncs the file. No-op
// without an attached WAL.
func (s *Store) SyncWAL() error {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return nil
	}
	if m := s.metrics.Load(); m != nil {
		defer m.walFsync.Since(time.Now())
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// DetachWAL flushes, fsyncs, and closes the log; the store keeps its
// contents and stops journaling.
func (s *Store) DetachWAL() error {
	s.walMu.Lock()
	w := s.wal
	s.wal = nil
	s.walMu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// CompactWAL rewrites the log as one Put per live key, bounding replay
// time after long histories of record updates (every ORTOA access is
// an update, so logs grow fast). The store must have a WAL attached.
func (s *Store) CompactWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return errors.New("kvstore: no WAL attached")
	}
	w := s.wal
	w.mu.Lock()
	defer w.mu.Unlock()

	tmpPath := w.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer os.Remove(tmpPath)
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := bw.Write(walMagic[:]); err != nil {
		tmp.Close()
		return err
	}
	fresh := &wal{f: tmp, w: bw, path: w.path}
	var writeErr error
	s.Range(func(key string, value []byte) bool {
		// fresh.append locks fresh.mu; uncontended here.
		if err := fresh.append(walOpPut, key, value); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		tmp.Close()
		return writeErr
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		tmp.Close()
		return err
	}
	// Swap the live handle to the compacted file.
	old := w.f
	w.f = tmp
	w.w = bw
	old.Close()
	return nil
}
