package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/vfs"
)

// WAL support: a Store can journal every mutation to an append-only
// log, so a crashed server restarts with its (encrypted) records
// intact — the durability a Redis-style substrate would provide with
// AOF persistence. Records are CRC-framed; replay truncates a torn
// tail and rejects mid-file corruption (see replayWAL).
//
// Log record: [1B op][uvarint keyLen][key][uvarint valLen][value]
// [4B crc32 of everything before it]. Deletes carry no value.
//
// Durability is governed by a SyncPolicy. Under SyncGroupCommit a
// mutation is acknowledged only after its record is fsynced; the fsync
// is shared: the first waiter becomes the leader, flushes everything
// appended so far, issues one fsync, and wakes the group. Any append,
// flush, or fsync failure is sticky — once the log's on-disk state is
// uncertain the store fails every subsequent journaled mutation fast
// (fail-stop) rather than acknowledge writes it may not be able to
// replay. The sticky error is surfaced by WALErr, the wal_failed
// gauge, and the /healthz endpoint.

const (
	walOpPut    byte = 1
	walOpDelete byte = 2
)

var walMagic = [8]byte{'O', 'R', 'T', 'O', 'A', 'W', 'L', '1'}

// ErrWALAttached reports an AttachWAL on a store that already has one.
var ErrWALAttached = errors.New("kvstore: WAL already attached")

// A SyncPolicy says when journaled mutations reach stable storage.
type SyncPolicy uint8

const (
	// SyncNever leaves fsync scheduling to the caller: mutations are
	// acknowledged from the OS buffer cache and survive process death
	// but not machine crashes until SyncWAL (or a checkpoint) runs.
	SyncNever SyncPolicy = iota
	// SyncInterval runs a background flush+fsync loop every
	// WALOptions.Interval; a crash loses at most one interval of
	// acknowledged writes.
	SyncInterval
	// SyncGroupCommit acknowledges a mutation only after its record is
	// fsynced. Concurrent writers share one fsync (group commit), so
	// throughput degrades far less than one-fsync-per-write.
	SyncGroupCommit
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncNever:
		return "never"
	case SyncInterval:
		return "interval"
	case SyncGroupCommit:
		return "group-commit"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", p)
	}
}

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never":
		return SyncNever, nil
	case "interval":
		return SyncInterval, nil
	case "group-commit":
		return SyncGroupCommit, nil
	}
	return 0, fmt.Errorf("kvstore: unknown fsync policy %q (want never, interval, or group-commit)", s)
}

// WALOptions configures an attached journal.
type WALOptions struct {
	Policy   SyncPolicy
	Interval time.Duration // SyncInterval cadence; default 2s
	FS       vfs.FS        // nil: the real filesystem
}

type wal struct {
	fs     vfs.FS
	policy SyncPolicy

	mu   sync.Mutex
	cond *sync.Cond // broadcast on durable/syncing/failed changes
	f    vfs.File
	w    *bufio.Writer
	path string

	seq     uint64 // LSN of the last appended record
	durable uint64 // highest LSN known to be fsynced
	syncing bool   // a group-commit leader is mid-fsync
	failed  error  // sticky first append/flush/fsync failure

	stop chan struct{} // closes the SyncInterval loop; nil otherwise
	done chan struct{}

	metrics *atomic.Pointer[storeMetrics] // the owning store's metrics
}

// fail records the first journaling failure; the error is sticky and
// every later journaled mutation fails with it. Callers hold w.mu.
func (w *wal) fail(err error) {
	if w.failed == nil {
		w.failed = fmt.Errorf("kvstore: WAL failed: %w", err)
	}
	w.cond.Broadcast()
}

// AttachWAL replays the log at path into the store (creating it if
// absent) and journals every subsequent Put, Update, and Delete with
// the seed SyncNever policy. Call SyncWAL for durability points and
// DetachWAL on shutdown.
func (s *Store) AttachWAL(path string) error {
	return s.AttachWALOptions(path, WALOptions{})
}

// AttachWALOptions is AttachWAL with an explicit durability policy and
// filesystem.
func (s *Store) AttachWALOptions(path string, opts WALOptions) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal != nil {
		return ErrWALAttached
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return err
	}
	replayed, records, err := s.replayWAL(f)
	if err != nil {
		f.Close()
		return err
	}
	s.walReplayed.Add(records)
	// Truncate any torn tail so new records append after the last
	// valid one.
	if err := f.Truncate(replayed); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(replayed, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w := &wal{
		fs:      fsys,
		policy:  opts.Policy,
		f:       f,
		w:       bufio.NewWriterSize(f, 1<<16),
		path:    path,
		metrics: &s.metrics,
	}
	w.cond = sync.NewCond(&w.mu)
	if replayed == 0 {
		// A brand-new log: make the file itself durable before any
		// record is acknowledged against it — a crash must not lose
		// the journal that writes were promised to be in.
		if _, err := w.w.Write(walMagic[:]); err != nil {
			f.Close()
			return err
		}
		if err := w.w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := fsys.SyncDir(vfs.Dir(path)); err != nil {
			f.Close()
			return err
		}
	}
	if opts.Policy == SyncInterval {
		interval := opts.Interval
		if interval <= 0 {
			interval = 2 * time.Second
		}
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.intervalLoop(interval)
	}
	s.wal = w
	return nil
}

// intervalLoop is the SyncInterval background fsync.
func (w *wal) intervalLoop(interval time.Duration) {
	defer close(w.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			w.syncTo(w.seq) //nolint:errcheck // sticky; surfaced by WALErr
			w.mu.Unlock()
		}
	}
}

// replayWAL applies valid records, returning the byte offset after the
// last valid record and the number of records applied. A tail the
// crash model can produce — a truncated record, or a final record
// whose CRC does not match — is tolerated: replay keeps the valid
// prefix and the caller truncates the rest. Corruption strictly before
// the last record (valid data following a bad record) cannot come from
// a torn write and is rejected, because silently dropping interior
// records would resurrect stale values.
func (s *Store) replayWAL(f vfs.File) (int64, int64, error) {
	size, err := f.Size()
	if err != nil {
		return 0, 0, err
	}
	if size == 0 {
		return 0, 0, nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	br := bufio.NewReaderSize(f, 1<<16)
	var magic [8]byte
	if n, err := io.ReadFull(br, magic[:]); err != nil {
		if n < len(magic) && size < int64(len(magic)) {
			// Shorter than the magic: a crash before the header
			// sync. Treat as empty; the attach rewrites it.
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("kvstore: reading WAL magic: %w", err)
	}
	if magic != walMagic {
		return 0, 0, fmt.Errorf("kvstore: bad WAL magic %q", magic[:])
	}
	valid := int64(len(walMagic))
	var records int64
	for {
		rec, n, err := readWALRecord(br)
		switch {
		case err == nil:
			switch rec.op {
			case walOpPut:
				s.applyPut(rec.key, rec.value)
			case walOpDelete:
				s.applyDelete(rec.key)
			}
			valid += n
			records++
		case errors.Is(err, io.EOF) && n == 0:
			// Clean end of log.
			return valid, records, nil
		case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
			// Torn final record: the crash cut the write short.
			return valid, records, nil
		case errors.Is(err, errWALCRC) && valid+n == size:
			// The last record is complete in length but garbled — a
			// torn in-place overwrite. Nothing follows it, so treat
			// it as the tail and truncate.
			return valid, records, nil
		default:
			return 0, 0, fmt.Errorf("kvstore: WAL corrupt at offset %d: %w", valid, err)
		}
	}
}

var errWALCRC = errors.New("kvstore: WAL record CRC mismatch")

type walRecord struct {
	op    byte
	key   string
	value []byte
}

// readWALRecord parses one record, returning how many bytes it
// consumed even on failure so replayWAL can classify the damage.
func readWALRecord(br *bufio.Reader) (walRecord, int64, error) {
	var rec walRecord
	var n int64
	crc := crc32.NewIEEE()
	tee := io.TeeReader(br, crc)
	var opBuf [1]byte
	if _, err := io.ReadFull(tee, opBuf[:]); err != nil {
		return rec, n, err
	}
	n = 1
	rec.op = opBuf[0]
	if rec.op != walOpPut && rec.op != walOpDelete {
		return rec, n, errors.New("kvstore: bad WAL op")
	}
	readBlobLen := func() ([]byte, error) {
		l, vn, err := readUvarintCounted(tee)
		n += vn
		if err != nil {
			return nil, err
		}
		if l > 1<<30 {
			return nil, errors.New("kvstore: WAL blob too large")
		}
		buf := make([]byte, l)
		nr, err := io.ReadFull(tee, buf)
		n += int64(nr)
		if err != nil {
			return nil, err
		}
		return buf, nil
	}
	key, err := readBlobLen()
	if err != nil {
		return rec, n, err
	}
	rec.key = string(key)
	if rec.op == walOpPut {
		rec.value, err = readBlobLen()
		if err != nil {
			return rec, n, err
		}
	}
	want := crc.Sum32()
	var crcBuf [4]byte
	nr, err := io.ReadFull(br, crcBuf[:])
	n += int64(nr)
	if err != nil {
		return rec, n, err
	}
	if binary.LittleEndian.Uint32(crcBuf[:]) != want {
		return rec, n, errWALCRC
	}
	return rec, n, nil
}

// readUvarintCounted reads a uvarint and reports how many bytes it
// consumed.
func readUvarintCounted(r io.Reader) (uint64, int64, error) {
	var v uint64
	var shift uint
	var n int64
	var b [1]byte
	for {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, n, err
		}
		n++
		if shift >= 64 {
			return 0, n, errors.New("kvstore: uvarint overflow")
		}
		v |= uint64(b[0]&0x7F) << shift
		if b[0] < 0x80 {
			return v, n, nil
		}
		shift += 7
	}
}

// append journals one mutation and returns its LSN. Callers hold the
// relevant shard lock, so per-key replay order matches application
// order. After any failure the log is poisoned: the write may be
// partially in the buffer, so every later append fails with the same
// sticky error.
func (w *wal) append(op byte, key string, value []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, w.failed
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w.w, crc)
	var lenBuf [binary.MaxVarintLen64]byte
	if _, err := out.Write([]byte{op}); err != nil {
		w.fail(err)
		return 0, w.failed
	}
	n := binary.PutUvarint(lenBuf[:], uint64(len(key)))
	if _, err := out.Write(lenBuf[:n]); err != nil {
		w.fail(err)
		return 0, w.failed
	}
	if _, err := io.WriteString(out, key); err != nil {
		w.fail(err)
		return 0, w.failed
	}
	if op == walOpPut {
		n = binary.PutUvarint(lenBuf[:], uint64(len(value)))
		if _, err := out.Write(lenBuf[:n]); err != nil {
			w.fail(err)
			return 0, w.failed
		}
		if _, err := out.Write(value); err != nil {
			w.fail(err)
			return 0, w.failed
		}
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc.Sum32())
	if _, err := w.w.Write(crcBuf[:]); err != nil {
		w.fail(err)
		return 0, w.failed
	}
	w.seq++
	return w.seq, nil
}

// syncTo blocks until every record up to lsn is fsynced, joining an
// in-flight group fsync or leading a new one. Callers hold w.mu; the
// lock is released for the fsync itself so appends keep flowing into
// the buffer while the disk works.
func (w *wal) syncTo(lsn uint64) error {
	for {
		if w.failed != nil {
			return w.failed
		}
		if w.durable >= lsn {
			return nil
		}
		if w.syncing {
			w.cond.Wait()
			continue
		}
		// Leader: flush the whole buffer — covering this waiter and
		// everyone who appended since the last sync — then fsync once
		// for the group.
		w.syncing = true
		if err := w.w.Flush(); err != nil {
			w.syncing = false
			w.fail(err)
			return w.failed
		}
		target := w.seq
		start := time.Now()
		w.mu.Unlock()
		err := w.f.Sync()
		w.mu.Lock()
		if w.metrics != nil {
			if m := w.metrics.Load(); m != nil {
				m.walFsync.Since(start)
			}
		}
		w.syncing = false
		if err != nil {
			w.fail(err)
			return w.failed
		}
		if target > w.durable {
			w.durable = target
		}
		w.cond.Broadcast()
	}
}

// waitDurable blocks until the record at lsn is on stable storage,
// under policies that promise that at acknowledgement time. Callers
// must not hold shard locks (fsync latency must never serialize a
// shard).
func (s *Store) waitDurable(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil || w.policy != SyncGroupCommit {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncTo(lsn)
}

// SyncWAL flushes buffered log records and fsyncs the file. No-op
// without an attached WAL.
func (s *Store) SyncWAL() error {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncTo(w.seq)
}

// WALErr returns the sticky journaling failure, if any. A non-nil
// result means the on-disk log no longer reflects acknowledged state
// and the store is refusing new journaled mutations (fail-stop); it
// feeds the wal_failed gauge and the /healthz probe.
func (s *Store) WALErr() error {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// WALReplayed returns the number of log records replayed into this
// store by AttachWAL/Recover — the recovery volume metric.
func (s *Store) WALReplayed() int64 { return s.walReplayed.Load() }

// DetachWAL flushes, fsyncs, and closes the log; the store keeps its
// contents and stops journaling.
func (s *Store) DetachWAL() error {
	s.walMu.Lock()
	w := s.wal
	s.wal = nil
	s.ckpt = nil
	s.walMu.Unlock()
	if w == nil {
		return nil
	}
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		w.f.Close()
		return w.failed
	}
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// CompactWAL rewrites the log as one Put per live key, bounding replay
// time after long histories of record updates (every ORTOA access is
// an update, so logs grow fast). The store must have a WAL attached.
func (s *Store) CompactWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return errors.New("kvstore: no WAL attached")
	}
	w := s.wal
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	for w.syncing {
		w.cond.Wait()
	}

	tmpPath := w.path + ".compact"
	tmp, err := w.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	defer w.fs.Remove(tmpPath) //nolint:errcheck // gone after rename
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if _, err := bw.Write(walMagic[:]); err != nil {
		tmp.Close()
		return err
	}
	fresh := &wal{fs: w.fs, f: tmp, w: bw, path: w.path}
	fresh.cond = sync.NewCond(&fresh.mu)
	var writeErr error
	s.Range(func(key string, value []byte) bool {
		// fresh.append locks fresh.mu; uncontended here.
		if _, err := fresh.append(walOpPut, key, value); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		tmp.Close()
		return writeErr
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := w.fs.Rename(tmpPath, w.path); err != nil {
		tmp.Close()
		return err
	}
	// Make the rename itself durable: without the directory fsync a
	// crash can roll the directory entry back to the pre-compaction
	// log even though the data file was synced.
	if err := w.fs.SyncDir(vfs.Dir(w.path)); err != nil {
		tmp.Close()
		return err
	}
	// Swap the live handle to the compacted file. Its entire content
	// is synced, so everything journaled so far is durable.
	old := w.f
	w.f = tmp
	w.w = bw
	if w.seq > w.durable {
		w.durable = w.seq
	}
	w.cond.Broadcast()
	old.Close()
	return nil
}
