package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ortoa/internal/crashfs"
)

// buildWAL writes a log with the given mutations applied in order and
// returns its raw bytes plus the offset where each record starts (the
// first offset is len(magic)).
func buildWAL(t *testing.T, muts [][2]string) (raw []byte, offsets []int64) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "build.wal")
	s := New()
	if err := s.AttachWAL(path); err != nil {
		t.Fatal(err)
	}
	sizeAt := func() int64 {
		if err := s.SyncWAL(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	for _, m := range muts {
		offsets = append(offsets, sizeAt())
		if err := s.Put(m[0], []byte(m[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DetachWAL(); err != nil {
		t.Fatal(err)
	}
	var err error
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw, offsets
}

// TestReplayEveryTornTailShape truncates a two-record log at every
// byte boundary inside the final record: each shape is exactly what a
// torn final write produces, and every one must be tolerated by
// keeping the valid prefix, truncating the damage, and appending
// cleanly afterwards.
func TestReplayEveryTornTailShape(t *testing.T) {
	raw, offsets := buildWAL(t, [][2]string{{"alpha", "first-value"}, {"beta", "second-value"}})
	last := offsets[1]
	for cut := last; cut < int64(len(raw)); cut++ {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, raw[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		s := New()
		if err := s.AttachWAL(path); err != nil {
			t.Fatalf("cut at %d rejected: %v", cut, err)
		}
		if v, err := s.Get("alpha"); err != nil || string(v) != "first-value" {
			t.Fatalf("cut at %d lost the complete record: %q, %v", cut, v, err)
		}
		if _, err := s.Get("beta"); err == nil {
			t.Fatalf("cut at %d replayed a torn record as complete", cut)
		}
		// Truncate-and-continue: the log accepts appends at the right
		// offset and replays them on the next attach.
		if err := s.Put("gamma", []byte("appended")); err != nil {
			t.Fatal(err)
		}
		if err := s.DetachWAL(); err != nil {
			t.Fatal(err)
		}
		r := New()
		if err := r.AttachWAL(path); err != nil {
			t.Fatalf("re-attach after cut %d: %v", cut, err)
		}
		if v, err := r.Get("gamma"); err != nil || string(v) != "appended" {
			t.Fatalf("cut at %d: post-truncation append lost: %q, %v", cut, v, err)
		}
		r.DetachWAL()
	}
}

// TestReplayMidFileCorruptionRejected flips a byte in the FIRST of two
// records: valid data follows the damage, so this cannot be a torn
// tail and replay must reject the log rather than resurrect stale
// state by skipping interior records.
func TestReplayMidFileCorruptionRejected(t *testing.T) {
	raw, offsets := buildWAL(t, [][2]string{{"alpha", "first-value"}, {"beta", "second-value"}})
	for _, off := range []int64{offsets[0], offsets[0] + 3, offsets[1] - 2} {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0xFF
		path := filepath.Join(t.TempDir(), "corrupt.wal")
		if err := os.WriteFile(path, mut, 0o600); err != nil {
			t.Fatal(err)
		}
		if err := New().AttachWAL(path); err == nil {
			t.Errorf("corruption at offset %d (mid-file) accepted", off)
		}
	}
}

// TestReplayTornFinalOverwriteTolerated garbles the final record
// in-place without changing the length — the shape an interrupted
// in-place sector write leaves. Nothing follows it, so replay treats
// it as the torn tail.
func TestReplayTornFinalOverwriteTolerated(t *testing.T) {
	raw, offsets := buildWAL(t, [][2]string{{"alpha", "first-value"}, {"beta", "second-value"}})
	mut := append([]byte(nil), raw...)
	mut[offsets[1]+5] ^= 0xFF // inside the final record's key bytes
	path := filepath.Join(t.TempDir(), "torn.wal")
	if err := os.WriteFile(path, mut, 0o600); err != nil {
		t.Fatal(err)
	}
	s := New()
	if err := s.AttachWAL(path); err != nil {
		t.Fatalf("torn final overwrite rejected: %v", err)
	}
	defer s.DetachWAL()
	if _, err := s.Get("alpha"); err != nil {
		t.Error("record before torn tail lost")
	}
	if _, err := s.Get("beta"); err == nil {
		t.Error("garbled final record replayed")
	}
}

// TestReplayCrashfsShapes drives the journal through the crash model
// itself: seeded crashes with torn final writes produce organic
// crash-shaped logs, and every one must recover to a state where all
// fsynced writes are present and the log stays appendable.
func TestReplayCrashfsShapes(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		fsys := crashfs.New(&crashfs.Plan{Seed: seed, TornWriteProb: 0.8})
		s := New()
		if err := s.AttachWALOptions("crash.wal", WALOptions{FS: fsys}); err != nil {
			t.Fatal(err)
		}
		synced := 0
		for i := 0; i < 20; i++ {
			if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(seed), byte(i)}); err != nil {
				t.Fatal(err)
			}
			if i == 9 {
				if err := s.SyncWAL(); err != nil {
					t.Fatal(err)
				}
				synced = 10
			}
			if i > 9 {
				// Flush to the file WITHOUT fsync: each record becomes
				// an unsynced write the crash model can drop or tear.
				s.wal.mu.Lock()
				if err := s.wal.w.Flush(); err != nil {
					s.wal.mu.Unlock()
					t.Fatal(err)
				}
				s.wal.mu.Unlock()
			}
		}
		fsys.Crash()

		r := New()
		if err := r.AttachWALOptions("crash.wal", WALOptions{FS: fsys}); err != nil {
			t.Fatalf("seed %d: crash-shaped log rejected: %v", seed, err)
		}
		// Everything synced must be back; the unsynced tail may be
		// partially present but only as a contiguous prefix of the
		// write order.
		for i := 0; i < synced; i++ {
			if _, err := r.Get(fmt.Sprintf("k%02d", i)); err != nil {
				t.Errorf("seed %d: fsynced k%02d lost", seed, i)
			}
		}
		present := synced
		for i := synced; i < 20; i++ {
			if _, err := r.Get(fmt.Sprintf("k%02d", i)); err == nil {
				present = i + 1
			}
		}
		for i := synced; i < present; i++ {
			if _, err := r.Get(fmt.Sprintf("k%02d", i)); err != nil {
				t.Errorf("seed %d: recovered tail has a hole at k%02d (replay reordered records)", seed, i)
			}
		}
		if err := r.Put("post", []byte("ok")); err != nil {
			t.Fatalf("seed %d: log not appendable after crash recovery: %v", seed, err)
		}
		if err := r.DetachWAL(); err != nil {
			t.Fatal(err)
		}
	}
}
