package kvstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	fspkg "io/fs"
	"os"
	"sync"
	"time"

	"ortoa/internal/vfs"
)

// Generation-based checkpointing. A recovered store lives in a state
// directory with this layout:
//
//	MANIFEST    "ORTOAMF1 <gen>\n" — the committed generation
//	snap-<gen>  full snapshot taken when wal-<gen> became current
//	wal-<gen>   journal of every mutation since snap-<gen>
//
// Recovery loads snap-<gen> (if present; generation 0 starts empty)
// and replays wal-<gen>. A checkpoint advances the generation in an
// order that keeps a consistent pair recoverable at every instant:
//
//	1. create and sync wal-<gen+1>, then switch journaling to it —
//	   from here on, new mutations land in the next generation;
//	2. write snap-<gen+1> crash-atomically — it includes everything
//	   journaled to wal-<gen>, because those mutations are in memory;
//	3. commit MANIFEST to <gen+1> crash-atomically;
//	4. delete the retired snap-<gen>/wal-<gen>.
//
// A crash between 1 and 3 leaves MANIFEST at <gen> with wal-<gen+1>
// also on disk; Recover detects that shape, replays both logs in
// order, and completes the interrupted checkpoint (roll-forward).
// Mutations journaled between the switch and the snapshot may appear
// in both snap-<gen+1> and wal-<gen+1>; replay is idempotent and
// preserves per-key order, so the overlap is harmless.

const manifestName = "MANIFEST"

var manifestMagic = "ORTOAMF1"

// DurabilityOptions configures Recover.
type DurabilityOptions struct {
	// Policy and SyncInterval govern the attached WAL exactly as in
	// WALOptions.
	Policy       SyncPolicy
	SyncInterval time.Duration
	// FS is the filesystem to recover from and journal to; nil means
	// the real one.
	FS vfs.FS
}

// checkpointer tracks the generation state of a recovered store.
type checkpointer struct {
	fsys vfs.FS
	dir  string

	mu      sync.Mutex // serializes Checkpoint
	gen     uint64     // committed (MANIFEST) generation
	liveGen uint64     // generation the WAL currently journals to
}

func genPath(dir, kind string, gen uint64) string {
	return fmt.Sprintf("%s/%s-%08d", dir, kind, gen)
}

// Recover restores the newest consistent checkpoint generation from
// dir into the (empty) store and attaches its WAL, creating the
// directory and generation 0 on first run. After Recover the store
// journals every mutation under opts.Policy and supports Checkpoint.
func (s *Store) Recover(dir string, opts DurabilityOptions) error {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	s.walMu.Lock()
	attached := s.wal != nil
	s.walMu.Unlock()
	if attached {
		return ErrWALAttached
	}
	if err := fsys.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	gen, found, err := readManifest(fsys, dir)
	if err != nil {
		return err
	}
	if !found {
		// First run: commit generation 0 before taking any writes so
		// later recoveries have a manifest to anchor on.
		if err := writeManifest(fsys, dir, 0); err != nil {
			return err
		}
	}
	snapPath := genPath(dir, "snap", gen)
	if ok, err := fileExists(fsys, snapPath); err != nil {
		return err
	} else if ok {
		if err := s.loadFile(fsys, snapPath); err != nil {
			return fmt.Errorf("kvstore: loading %s: %w", snapPath, err)
		}
	}
	walPath := genPath(dir, "wal", gen)
	nextWalPath := genPath(dir, "wal", gen+1)
	rollForward, err := fileExists(fsys, nextWalPath)
	if err != nil {
		return err
	}
	if rollForward {
		// A checkpoint was interrupted after its WAL switch: the
		// retired log holds the older records, the next-generation
		// log the newer ones. Replay both in order, then finish the
		// checkpoint below.
		if ok, err := fileExists(fsys, walPath); err != nil {
			return err
		} else if ok {
			if err := s.replayWALFile(fsys, walPath); err != nil {
				return fmt.Errorf("kvstore: replaying %s: %w", walPath, err)
			}
		}
		walPath = nextWalPath
	}
	walOpts := WALOptions{Policy: opts.Policy, Interval: opts.SyncInterval, FS: fsys}
	if err := s.AttachWALOptions(walPath, walOpts); err != nil {
		return err
	}
	ck := &checkpointer{fsys: fsys, dir: dir, gen: gen, liveGen: gen}
	if rollForward {
		ck.liveGen = gen + 1
		if err := ck.commit(s); err != nil {
			s.DetachWAL() //nolint:errcheck // already failing
			return fmt.Errorf("kvstore: completing interrupted checkpoint: %w", err)
		}
	}
	// Sweep leftovers a crash mid-retirement can strand (best-effort).
	if ck.gen > 0 {
		fsys.Remove(genPath(dir, "snap", ck.gen-1)) //nolint:errcheck
		fsys.Remove(genPath(dir, "wal", ck.gen-1))  //nolint:errcheck
	}
	s.walMu.Lock()
	s.ckpt = ck
	s.walMu.Unlock()
	return nil
}

// replayWALFile replays a retired generation's log without attaching
// it.
func (s *Store) replayWALFile(fsys vfs.FS, path string) error {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, records, err := s.replayWAL(f)
	s.walReplayed.Add(records)
	return err
}

// Checkpoint takes a snapshot, rotates the WAL to a fresh generation,
// and retires the previous pair, bounding recovery replay time. It is
// safe under concurrent mutations and serializes with itself. The
// store must have been opened with Recover.
func (s *Store) Checkpoint() error {
	s.walMu.Lock()
	ck := s.ckpt
	s.walMu.Unlock()
	if ck == nil {
		return errors.New("kvstore: Checkpoint requires a store opened with Recover")
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	m := s.metrics.Load()
	start := time.Now()
	if ck.liveGen == ck.gen {
		// Create and sync the next generation's log before any record
		// can be acknowledged against it.
		newGen := ck.gen + 1
		newPath := genPath(ck.dir, "wal", newGen)
		f, err := ck.fsys.OpenFile(newPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
		if err != nil {
			return ck.fail(m, err)
		}
		if _, err := f.Write(walMagic[:]); err != nil {
			f.Close()
			return ck.fail(m, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return ck.fail(m, err)
		}
		if err := ck.fsys.SyncDir(ck.dir); err != nil {
			f.Close()
			return ck.fail(m, err)
		}
		if err := s.switchWAL(f, newPath); err != nil {
			f.Close()
			return ck.fail(m, err)
		}
		ck.liveGen = newGen
	}
	// If a previous attempt switched but failed before committing,
	// liveGen is already ahead: just retry the snapshot and commit.
	if err := ck.commit(s); err != nil {
		return ck.fail(m, err)
	}
	if m != nil {
		m.checkpointTime.Since(start)
		m.checkpoints.Inc()
	}
	return nil
}

// commit writes the snapshot for ck.liveGen, commits the manifest, and
// retires the previous generation. Callers hold ck.mu (or are in
// single-threaded recovery).
func (ck *checkpointer) commit(s *Store) error {
	if err := s.saveFile(ck.fsys, genPath(ck.dir, "snap", ck.liveGen)); err != nil {
		return err
	}
	if err := writeManifest(ck.fsys, ck.dir, ck.liveGen); err != nil {
		return err
	}
	old := ck.gen
	ck.gen = ck.liveGen
	// Retirement is best-effort: stranded files cost disk space, not
	// correctness, and Recover sweeps them.
	ck.fsys.Remove(genPath(ck.dir, "snap", old)) //nolint:errcheck
	ck.fsys.Remove(genPath(ck.dir, "wal", old))  //nolint:errcheck
	ck.fsys.SyncDir(ck.dir)                      //nolint:errcheck
	return nil
}

func (ck *checkpointer) fail(m *storeMetrics, err error) error {
	if m != nil {
		m.checkpointErrors.Inc()
	}
	return err
}

// switchWAL atomically redirects journaling to the already-synced file
// nf, draining and closing the old one. Everything appended so far
// becomes durable (the old file is flushed and fsynced), so group
// commit waiters are released.
func (s *Store) switchWAL(nf vfs.File, newPath string) error {
	s.walMu.Lock()
	w := s.wal
	s.walMu.Unlock()
	if w == nil {
		return errors.New("kvstore: no WAL attached")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	// Wait out any in-flight group fsync: its leader holds a handle to
	// the old file.
	for w.syncing {
		w.cond.Wait()
	}
	if w.failed != nil {
		return w.failed
	}
	if err := w.w.Flush(); err != nil {
		w.fail(err)
		return w.failed
	}
	if err := w.f.Sync(); err != nil {
		w.fail(err)
		return w.failed
	}
	if w.seq > w.durable {
		w.durable = w.seq
	}
	old := w.f
	w.f = nf
	w.w = bufio.NewWriterSize(nf, 1<<16)
	w.path = newPath
	w.cond.Broadcast()
	return old.Close()
}

// StartCheckpoints runs Checkpoint every interval until the returned
// stop function is called. Errors are counted (checkpoint_errors
// metric) and retried next tick; the WAL keeps growing meanwhile, so
// nothing is lost.
func (s *Store) StartCheckpoints(interval time.Duration) (stop func()) {
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-t.C:
				s.Checkpoint() //nolint:errcheck // counted in metrics
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stopCh)
			<-done
		})
	}
}

// Generation returns the committed checkpoint generation (0 before the
// first checkpoint, or for a store not opened with Recover).
func (s *Store) Generation() uint64 {
	s.walMu.Lock()
	ck := s.ckpt
	s.walMu.Unlock()
	if ck == nil {
		return 0
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return ck.gen
}

func readManifest(fsys vfs.FS, dir string) (uint64, bool, error) {
	f, err := fsys.OpenFile(dir+"/"+manifestName, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fspkg.ErrNotExist) {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	buf, err := io.ReadAll(io.LimitReader(f, 64))
	if err != nil {
		return 0, false, err
	}
	var magic string
	var gen uint64
	if _, err := fmt.Sscanf(string(buf), "%s %d", &magic, &gen); err != nil || magic != manifestMagic {
		return 0, false, fmt.Errorf("kvstore: corrupt manifest %q", buf)
	}
	return gen, true, nil
}

func writeManifest(fsys vfs.FS, dir string, gen uint64) error {
	return vfs.WriteFileAtomic(fsys, dir+"/"+manifestName, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "%s %d\n", manifestMagic, gen)
		return err
	})
}

func fileExists(fsys vfs.FS, path string) (bool, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fspkg.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	f.Close()
	return true, nil
}
