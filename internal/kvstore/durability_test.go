package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ortoa/internal/crashfs"
	"ortoa/internal/obs"
)

// recoverStore opens a fresh store against dir on fsys, failing the
// test on error.
func recoverStore(t *testing.T, fsys *crashfs.FS, dir string, policy SyncPolicy) *Store {
	t.Helper()
	s := New()
	if err := s.Recover(dir, DurabilityOptions{Policy: policy, FS: fsys}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return s
}

func TestGroupCommitDurableOnAck(t *testing.T) {
	fsys := crashfs.New(&crashfs.Plan{Seed: 42, TornWriteProb: 0.7})
	s := recoverStore(t, fsys, "state", SyncGroupCommit)

	// Concurrent writers race a crash. Every Put that returns nil was
	// acknowledged durable-on-ack and MUST survive; in-flight writes
	// may or may not.
	var mu sync.Mutex
	acked := map[string][]byte{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("w%d-%d", w, i)
				v := []byte(fmt.Sprintf("v%d-%d", w, i))
				if err := s.Put(k, v); err != nil {
					return // crash landed; later writes fail-stop
				}
				mu.Lock()
				acked[k] = v
				mu.Unlock()
			}
		}(w)
	}
	// Let some writes accumulate, then pull the plug mid-traffic.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= 64 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fsys.Crash()
	close(stop)
	wg.Wait()

	r := recoverStore(t, fsys, "state", SyncGroupCommit)
	defer r.DetachWAL()
	mu.Lock()
	defer mu.Unlock()
	lost := 0
	for k, v := range acked {
		got, err := r.Get(k)
		if err != nil {
			lost++
			t.Errorf("acknowledged write %q lost in crash", k)
			continue
		}
		if !bytes.Equal(got, v) {
			t.Errorf("recovered %q = %q, want %q", k, got, v)
		}
	}
	if lost == 0 && len(acked) == 0 {
		t.Fatal("test made no progress: zero acknowledged writes")
	}
}

func TestSyncNeverLosesUnsynced(t *testing.T) {
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncNever)
	if err := s.Put("volatile", []byte("v")); err != nil {
		t.Fatal(err)
	}
	fsys.Crash()

	r := recoverStore(t, fsys, "state", SyncNever)
	defer r.DetachWAL()
	if _, err := r.Get("volatile"); err == nil {
		t.Error("SyncNever write survived a crash without any fsync — crash model is not dropping buffers")
	}
}

func TestSyncNeverSurvivesAfterSyncWAL(t *testing.T) {
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncNever)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	fsys.Crash()

	r := recoverStore(t, fsys, "state", SyncNever)
	defer r.DetachWAL()
	if v, err := r.Get("k"); err != nil || !bytes.Equal(v, []byte("v")) {
		t.Errorf("explicitly synced write lost: %q, %v", v, err)
	}
}

func TestWALStickyFailureFailStop(t *testing.T) {
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncGroupCommit)
	reg := obs.NewRegistry()
	s.Instrument(reg)
	if err := s.Put("ok", []byte("1")); err != nil {
		t.Fatal(err)
	}

	// Disk starts failing fsyncs: the next acknowledged-durable write
	// must fail, and the failure must be sticky even after the disk
	// "recovers".
	fsys.SetPlan(&crashfs.Plan{SyncErrProb: 1})
	if err := s.Put("doomed", []byte("2")); err == nil {
		t.Fatal("Put succeeded while fsync was failing")
	}
	if s.WALErr() == nil {
		t.Fatal("WALErr nil after fsync failure")
	}
	fsys.SetPlan(nil)
	if err := s.Put("after", []byte("3")); err == nil {
		t.Error("journaled mutation accepted on a poisoned WAL (sticky failure not enforced)")
	}
	if err := s.Update("ok", func(old []byte) ([]byte, error) { return old, nil }); err == nil {
		t.Error("Update accepted on a poisoned WAL")
	}
	if _, err := s.Delete("ok"); err == nil {
		t.Error("Delete accepted on a poisoned WAL")
	}
	if err := s.Checkpoint(); err == nil {
		t.Error("Checkpoint succeeded on a poisoned WAL")
	}

	// The failure is operator-visible: health check red, gauge set.
	failed := false
	for _, res := range reg.CheckHealth() {
		if res.Name == "kvstore_wal" && res.Err != nil {
			failed = true
		}
	}
	if !failed {
		t.Error("kvstore_wal health check did not report the sticky failure")
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf) //nolint:errcheck
	if !strings.Contains(buf.String(), "ortoa_kvstore_wal_failed 1") {
		t.Error("wal_failed gauge not 1 on poisoned WAL")
	}
	if err := s.DetachWAL(); err == nil {
		t.Error("DetachWAL returned nil for a poisoned WAL")
	}
}

func TestCheckpointBoundsReplayAndRetires(t *testing.T) {
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncGroupCommit)
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("pre-%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("Generation after checkpoint = %d, want 1", g)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("post-%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fsys.Crash()

	r := recoverStore(t, fsys, "state", SyncGroupCommit)
	defer r.DetachWAL()
	if r.Len() != 60 {
		t.Errorf("recovered Len = %d, want 60", r.Len())
	}
	// Replay only covered the records journaled after the checkpoint:
	// the 50 pre-checkpoint keys came from the snapshot.
	if n := r.WALReplayed(); n != 10 {
		t.Errorf("WALReplayed = %d, want 10 (checkpoint did not bound replay)", n)
	}
	// Generation 0 is retired.
	for _, p := range []string{"state/snap-00000000", "state/wal-00000000"} {
		if ok, _ := fileExists(fsys, p); ok {
			t.Errorf("%s not retired by checkpoint", p)
		}
	}
}

func TestCheckpointInterruptedRollForward(t *testing.T) {
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncGroupCommit)
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := s.Put(k, []byte("gen0-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DetachWAL(); err != nil {
		t.Fatal(err)
	}

	// Hand-build the crash-mid-checkpoint shape: wal-00000001 exists
	// and holds newer records, but MANIFEST still says generation 0 and
	// no snap-00000001 was written. (A throwaway store journals the
	// extra key into the next generation's log.)
	aux := New()
	if err := aux.AttachWALOptions("state/wal-00000001", WALOptions{FS: fsys}); err != nil {
		t.Fatal(err)
	}
	if err := aux.Put("k4", []byte("gen1-k4")); err != nil {
		t.Fatal(err)
	}
	if err := aux.Put("k2", []byte("gen1-k2")); err != nil { // overwrite across logs
		t.Fatal(err)
	}
	if err := aux.DetachWAL(); err != nil {
		t.Fatal(err)
	}

	r := recoverStore(t, fsys, "state", SyncGroupCommit)
	defer r.DetachWAL()
	// Both logs replayed, in order: gen-0 values then gen-1 overwrites.
	for k, want := range map[string]string{
		"k1": "gen0-k1", "k2": "gen1-k2", "k3": "gen0-k3", "k4": "gen1-k4",
	} {
		if v, err := r.Get(k); err != nil || string(v) != want {
			t.Errorf("rolled-forward %s = %q, %v; want %q", k, v, err, want)
		}
	}
	// The interrupted checkpoint was completed: generation advanced,
	// snapshot written, old generation retired.
	if g := r.Generation(); g != 1 {
		t.Errorf("Generation after roll-forward = %d, want 1", g)
	}
	if ok, _ := fileExists(fsys, "state/snap-00000001"); !ok {
		t.Error("roll-forward did not write snap-00000001")
	}
	if ok, _ := fileExists(fsys, "state/wal-00000000"); ok {
		t.Error("roll-forward did not retire wal-00000000")
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	fsys := crashfs.New(&crashfs.Plan{Seed: 7, TornWriteProb: 0.5})
	expect := map[string]string{}
	for cycle := 0; cycle < 20; cycle++ {
		s := recoverStore(t, fsys, "state", SyncGroupCommit)
		// Everything acknowledged in earlier cycles must still be here.
		for k, v := range expect {
			if got, err := s.Get(k); err != nil || string(got) != v {
				t.Fatalf("cycle %d: lost %q (= %q, %v; want %q)", cycle, k, got, err, v)
			}
		}
		for i := 0; i < 5; i++ {
			k := fmt.Sprintf("c%02d-%d", cycle, i)
			v := fmt.Sprintf("val-%02d-%d", cycle, i)
			if err := s.Put(k, []byte(v)); err != nil {
				t.Fatalf("cycle %d put: %v", cycle, err)
			}
			expect[k] = v
		}
		if cycle%5 == 4 {
			if err := s.Checkpoint(); err != nil {
				t.Fatalf("cycle %d checkpoint: %v", cycle, err)
			}
		}
		fsys.Crash()
	}
}

func TestStartCheckpointsRuns(t *testing.T) {
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncNever)
	defer s.DetachWAL()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	stop := s.StartCheckpoints(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for s.Generation() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if s.Generation() == 0 {
		t.Error("background checkpointer never advanced the generation")
	}
}

func TestRecoverRequiresDetachedStore(t *testing.T) {
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncNever)
	defer s.DetachWAL()
	if err := s.Recover("other", DurabilityOptions{FS: fsys}); !errors.Is(err, ErrWALAttached) {
		t.Errorf("second Recover = %v, want ErrWALAttached", err)
	}
	if err := New().Checkpoint(); err == nil {
		t.Error("Checkpoint without Recover succeeded")
	}
}

func TestGroupCommitConcurrentWritersShareFsyncs(t *testing.T) {
	// Correctness-flavored smoke for the group path: many goroutines on
	// the group-commit policy finish, and every write is durable.
	fsys := crashfs.New(nil)
	s := recoverStore(t, fsys, "state", SyncGroupCommit)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := s.Put(fmt.Sprintf("w%d-%d", w, i), []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	fsys.Crash()
	r := recoverStore(t, fsys, "state", SyncGroupCommit)
	defer r.DetachWAL()
	if r.Len() != workers*per {
		t.Errorf("recovered %d keys, want %d", r.Len(), workers*per)
	}
}

func benchmarkPutPolicy(b *testing.B, policy SyncPolicy) {
	dir := b.TempDir()
	s := New()
	if err := s.Recover(dir, DurabilityOptions{Policy: policy, SyncInterval: 50 * time.Millisecond}); err != nil {
		b.Fatal(err)
	}
	defer s.DetachWAL()
	value := bytes.Repeat([]byte{0xAB}, 256)
	b.SetBytes(int64(len(value)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := s.Put(fmt.Sprintf("key-%d", i%1024), value); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkPutSyncNever(b *testing.B)       { benchmarkPutPolicy(b, SyncNever) }
func BenchmarkPutSyncInterval(b *testing.B)    { benchmarkPutPolicy(b, SyncInterval) }
func BenchmarkPutSyncGroupCommit(b *testing.B) { benchmarkPutPolicy(b, SyncGroupCommit) }
