package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// Crash runs a mixed LBL read/write workload while shard servers are
// repeatedly crash-killed — no flush, open file handles die, unsynced
// disk state settles per a seeded crash plan with torn final writes —
// and recovered from their WAL + snapshot, with background checkpoints
// racing the crashes. It is the end-to-end check of the durability
// layer: the WAL's group-commit contract (§ DESIGN.md 10) promises
// that an acknowledged write survives any crash, and this experiment
// is where the repo demonstrates it, across dozens of kill/restart
// cycles.
//
// The audit asserts the three properties a crash must never break
// under the group-commit policy:
//
//   - No lost acknowledged writes. Each worker owns a disjoint key set
//     and tracks the values a key may legitimately hold — the last
//     confirmed write, plus writes whose outcome a crash left
//     ambiguous. Every read, and the final post-crash audit, must
//     return a member of that set; a write that was acknowledged and
//     then rolled back would surface as a non-member.
//   - No duplicate applications. Counter fencing makes a replayed
//     round idempotent — re-executing an already-applied round is
//     fenced as stale — so a double apply would desynchronize the
//     label schedule and fail the audit read (ErrTampered / stale).
//   - Re-convergence. Crashes strand proxy/server counter desync
//     (parked rounds against a rolled-back server); the proxies'
//     reconciliation scan must re-locate every counter so the final
//     audit reads all keys cleanly.
//
// A second, smaller phase reruns the crash machinery at the lossy end
// of the policy spectrum (SyncNever): acknowledged writes since the
// last checkpoint are legitimately rolled back, and what must still
// hold is re-convergence — the proxy's reconciliation probes re-locate
// every rolled-back counter, reads return the durable (checkpointed)
// value, and the schedule accepts fresh traffic.
func Crash(opt Options) (*Table, error) {
	t := &Table{
		ID:    "crash",
		Title: "Repeated kill/restart under durable-on-ack (LBL, group-commit WAL + checkpoints)",
		Columns: []string{"phase", "ops", "ok", "ambiguous", "down", "restarts",
			"wal-replayed", "parked/settled", "probes/reconciled"},
	}

	workers := opt.conc()
	const keysPerWorker = 2
	const shards = 2
	opsPerCycle := opt.ops()
	cycles := 50
	if opt.Quick {
		cycles = 12
	}

	nKeys := workers * keysPerWorker
	data := make(map[string][]byte, nKeys)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("crash-%04d", i)
		data[keys[i]] = chaosValue(paperValueSize, uint64(i), 0)
	}

	reg := obs.NewRegistry()
	cluster, err := NewCluster(Config{
		System:        SystemLBL,
		Link:          netsim.Link{RTT: 500 * time.Microsecond},
		ValueSize:     paperValueSize,
		Data:          data,
		Shards:        shards,
		LBLMode:       core.LBLPointPermute,
		ConnsPerShard: 4,
		Transport: transport.Options{
			CallTimeout:      250 * time.Millisecond,
			Retry:            transport.RetryPolicy{Attempts: 8, Backoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
			ReconnectBackoff: time.Millisecond,
		},
		Metrics: reg,
		Durability: &DurabilityConfig{
			Policy:             kvstore.SyncGroupCommit,
			CheckpointInterval: 15 * time.Millisecond,
			Seed:               1,
			TornWriteProb:      0.7,
			ReconcileScan:      32,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Worker state mirrors the chaos experiment: per key, the set of
	// values the key may legitimately hold. A confirmed write collapses
	// the set; an ambiguous one (crash mid-call) widens it.
	type keyState struct {
		acceptable map[string]bool
	}
	states := make([]map[string]*keyState, workers)
	for w := 0; w < workers; w++ {
		st := make(map[string]*keyState, keysPerWorker)
		for _, k := range keys[w*keysPerWorker : (w+1)*keysPerWorker] {
			st[k] = &keyState{acceptable: map[string]bool{string(data[k]): true}}
		}
		states[w] = st
	}

	var (
		mu                                    sync.Mutex
		firstFatal                            error
		totalOps, totalOK, totalAmb, totalDwn int64
	)
	restarts := 0
	for cycle := 0; cycle < cycles; cycle++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w, cycle int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(cycle), uint64(w)))
				own := keys[w*keysPerWorker : (w+1)*keysPerWorker]
				st := states[w]
				var ops, ok, amb, dwn int64
				var fatal error
				for i := 0; i < opsPerCycle && fatal == nil; i++ {
					key := own[rng.IntN(len(own))]
					ops++
					if rng.IntN(2) == 0 { // read
						got, _, err := cluster.Access(core.OpRead, key, nil)
						switch {
						case err == nil:
							if !st[key].acceptable[string(got)] {
								fatal = fmt.Errorf("worker %d: read %q returned a value no acknowledged or in-flight write produced (lost or duplicated write)", w, key)
								break
							}
							ok++
							st[key].acceptable = map[string]bool{string(got): true}
						case transport.Ambiguous(err):
							amb++ // reads don't change state
						case errors.Is(err, core.ErrTampered):
							fatal = fmt.Errorf("worker %d: read %q: %w", w, key, err)
						default:
							dwn++ // server down or mid-recovery; state unchanged
						}
						continue
					}
					val := chaosValue(paperValueSize, uint64((cycle*workers+w)*opsPerCycle+i), 2)
					_, _, err := cluster.Access(core.OpWrite, key, val)
					switch {
					case err == nil:
						ok++
						st[key].acceptable = map[string]bool{string(val): true}
					case transport.Ambiguous(err):
						amb++
						st[key].acceptable[string(val)] = true // may or may not have applied
					case errors.Is(err, core.ErrTampered):
						fatal = fmt.Errorf("worker %d: write %q: %w", w, key, err)
					default:
						dwn++
					}
				}
				mu.Lock()
				totalOps += ops
				totalOK += ok
				totalAmb += amb
				totalDwn += dwn
				if fatal != nil && firstFatal == nil {
					firstFatal = fatal
				}
				mu.Unlock()
			}(w, cycle)
		}
		// Kill a shard mid-cycle, while the workload is in flight.
		time.Sleep(2 * time.Millisecond)
		if err := cluster.Restart(cycle % shards); err != nil {
			wg.Wait()
			return nil, fmt.Errorf("harness: crash cycle %d: %w", cycle, err)
		}
		restarts++
		wg.Wait()
		mu.Lock()
		fatal := firstFatal
		mu.Unlock()
		if fatal != nil {
			return nil, fmt.Errorf("harness: crash workload: %w", fatal)
		}
	}

	// Final audit on live servers: every key must read cleanly (label
	// schedule re-converged) and return an acceptable value (no
	// acknowledged write lost, none applied twice). Residual parked
	// rounds and counter desync settle through these reads.
	var audited int
	for w := 0; w < workers; w++ {
		for key, st := range states[w] {
			var got []byte
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				got, _, err = cluster.Access(core.OpRead, key, nil)
				if err == nil || errors.Is(err, core.ErrTampered) {
					break
				}
				time.Sleep(5 * time.Millisecond) // transient: pool redialing
			}
			if err != nil {
				if errors.Is(err, core.ErrTampered) {
					return nil, fmt.Errorf("harness: crash audit: %q label schedule desynchronized (duplicate or half-applied round): %w", key, err)
				}
				return nil, fmt.Errorf("harness: crash audit: read %q after final restart: %w", key, err)
			}
			if !st.acceptable[string(got)] {
				return nil, fmt.Errorf("harness: crash audit: %q lost an acknowledged write (or applied one twice)", key)
			}
			audited++
		}
	}

	parked := reg.Counter("ortoa_lbl_pending_rounds_total", "").Value()
	settled := reg.Counter("ortoa_lbl_pending_resolved_total", "").Value()
	probes := reg.Counter("ortoa_lbl_reconcile_probes_total", "").Value()
	reconciled := reg.Counter("ortoa_lbl_reconciled_keys_total", "").Value()
	replayed := cluster.WALReplayedTotal()
	disk := cluster.DiskStats()
	t.AddRow("workload", fmt.Sprint(totalOps), fmt.Sprint(totalOK), fmt.Sprint(totalAmb),
		fmt.Sprint(totalDwn), fmt.Sprint(restarts), fmt.Sprint(replayed),
		fmt.Sprintf("%d/%d", parked, settled), fmt.Sprintf("%d/%d", probes, reconciled))
	t.AddRow("audit", fmt.Sprint(audited), fmt.Sprint(audited), "0", "0", "0", "-", "-", "-")
	gens := cluster.Generations()

	rb, err := crashRollbackPhase()
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rb.row)

	tp, err := crashThroughputPhase(opt)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, tp.rows...)

	t.Notes = append(t.Notes,
		fmt.Sprintf("audit passed: %d keys consistent after %d crash/restart cycles — zero acknowledged writes lost, zero duplicate applications, all counters re-converged", audited, restarts),
		fmt.Sprintf("disk: %d crashes, %d torn writes, %d unsynced writes dropped, %d dir entries rolled back; checkpoint generations %v",
			disk.Crashes, disk.TornWrites, disk.DroppedWrites, disk.DroppedOps, gens),
		"group commit leaves nothing unsynced at a crash by construction, so the workload phase expects zero rollbacks; \"down\" ops failed fast against a killed shard, \"ambiguous\" ops stay in the audit's acceptable sets",
		fmt.Sprintf("rollback phase (SyncNever): %d acknowledged-but-unsynced writes rolled back by a crash as the policy permits; all %d keys re-converged via %d reconciliation probes and accepted fresh traffic",
			rb.lost, rb.keys, rb.probes),
		fmt.Sprintf("bench phase: group-commit %.0f ops/s vs never-fsync %.0f ops/s — %.2fx the never-fsync time (bound: 2x); concurrent writers share each fsync, so durable-on-ack costs far less than one fsync per write",
			tp.gcRate, tp.neverRate, tp.ratio))
	return t, nil
}

// crashThroughput summarizes the policy-cost phase.
type crashThroughput struct {
	rows              [][]string
	neverRate, gcRate float64 // ops/s
	ratio             float64 // gc time / never time
}

// crashThroughputPhase prices durable-on-ack: the same concurrent
// mixed workload runs against two identical clusters differing only in
// fsync policy, and the acceptance bound is that group commit stays
// within 2x of never-fsync. Batching concurrent writers into a shared
// fsync is what makes that hold — serial fsync-per-write would be
// orders of magnitude off. The clusters run on the paper's datacenter
// link (Table 2's 500µs RTT, like the workload phase): durability cost
// is a claim about deployments, where commit latency overlaps the
// network round trip, not about a zero-RTT lock microbenchmark.
func crashThroughputPhase(opt Options) (*crashThroughput, error) {
	workers := opt.conc()
	const keysPerWorker = 2
	perWorker := opt.ops() * 4
	nKeys := workers * keysPerWorker
	data := make(map[string][]byte, nKeys)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%04d", i)
		data[keys[i]] = chaosValue(paperValueSize, uint64(i), 11)
	}
	run := func(policy kvstore.SyncPolicy) (time.Duration, error) {
		cluster, err := NewCluster(Config{
			System:        SystemLBL,
			Link:          netsim.Link{RTT: 500 * time.Microsecond},
			ValueSize:     paperValueSize,
			Data:          data,
			LBLMode:       core.LBLPointPermute,
			ConnsPerShard: 8,
			Durability:    &DurabilityConfig{Policy: policy, Seed: 3},
		})
		if err != nil {
			return 0, err
		}
		defer cluster.Close()
		start := time.Now()
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(17, uint64(w)))
				own := keys[w*keysPerWorker : (w+1)*keysPerWorker]
				for i := 0; i < perWorker; i++ {
					key := own[rng.IntN(len(own))]
					var err error
					if rng.IntN(2) == 0 {
						_, _, err = cluster.Access(core.OpRead, key, nil)
					} else {
						_, _, err = cluster.Access(core.OpWrite, key, chaosValue(paperValueSize, uint64(w*perWorker+i), 12))
					}
					if err != nil {
						errs <- fmt.Errorf("harness: bench worker %d: %w", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	// Two runs per policy, keep the faster: damps scheduler noise so
	// the 2x bound measures the policy, not the machine.
	best := func(policy kvstore.SyncPolicy) (time.Duration, error) {
		d1, err := run(policy)
		if err != nil {
			return 0, err
		}
		d2, err := run(policy)
		if err != nil {
			return 0, err
		}
		if d2 < d1 {
			return d2, nil
		}
		return d1, nil
	}
	dNever, err := best(kvstore.SyncNever)
	if err != nil {
		return nil, err
	}
	dGC, err := best(kvstore.SyncGroupCommit)
	if err != nil {
		return nil, err
	}
	total := workers * perWorker
	ratio := dGC.Seconds() / dNever.Seconds()
	if ratio > 2.0 {
		return nil, fmt.Errorf("harness: group-commit ran %.2fx slower than never-fsync (%v vs %v for %d ops), exceeding the 2x durable-on-ack budget",
			ratio, dGC, dNever, total)
	}
	rate := func(d time.Duration) float64 { return float64(total) / d.Seconds() }
	row := func(name string) []string {
		return []string{name, fmt.Sprint(total), fmt.Sprint(total), "0", "0", "0", "-", "-", "-"}
	}
	return &crashThroughput{
		rows:      [][]string{row("bench(never)"), row("bench(group-commit)")},
		neverRate: rate(dNever),
		gcRate:    rate(dGC),
		ratio:     ratio,
	}, nil
}

// crashRollback summarizes the lossy-policy phase for the table.
type crashRollback struct {
	row    []string
	lost   int
	keys   int
	probes int64
}

// crashRollbackPhase crashes a SyncNever shard holding
// acknowledged-but-unsynced writes and verifies the §5.3.1 failure
// mode is healed: the server rolls back to the last checkpoint, and
// the proxy's reconciliation scan must re-locate every counter.
func crashRollbackPhase() (*crashRollback, error) {
	const rbKeys = 8
	const rbWrites = 3
	data := make(map[string][]byte, rbKeys)
	keys := make([]string, rbKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("rollback-%02d", i)
		data[keys[i]] = chaosValue(paperValueSize, uint64(i), 7)
	}
	reg := obs.NewRegistry()
	cluster, err := NewCluster(Config{
		System:        SystemLBL,
		Link:          netsim.Loopback,
		ValueSize:     paperValueSize,
		Data:          data,
		LBLMode:       core.LBLPointPermute,
		ConnsPerShard: 2,
		Transport: transport.Options{
			CallTimeout:      250 * time.Millisecond,
			Retry:            transport.RetryPolicy{Attempts: 8, Backoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
			ReconnectBackoff: time.Millisecond,
		},
		Metrics:    reg,
		Durability: &DurabilityConfig{Policy: kvstore.SyncNever, Seed: 2, ReconcileScan: 32},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	// Make the loaded database the durable baseline; everything after
	// this checkpoint is acknowledged but unsynced.
	if err := cluster.Checkpoint(0); err != nil {
		return nil, fmt.Errorf("harness: rollback baseline checkpoint: %w", err)
	}
	var ops, lost int
	for _, k := range keys {
		for i := 0; i < rbWrites; i++ {
			if _, _, err := cluster.Access(core.OpWrite, k, chaosValue(paperValueSize, uint64(i), 8)); err != nil {
				return nil, fmt.Errorf("harness: rollback write %q: %w", k, err)
			}
			ops++
			lost++
		}
	}
	if err := cluster.Restart(0); err != nil {
		return nil, fmt.Errorf("harness: rollback restart: %w", err)
	}
	for _, k := range keys {
		var got []byte
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			got, _, err = cluster.Access(core.OpRead, k, nil)
			if err == nil || errors.Is(err, core.ErrTampered) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if err != nil {
			return nil, fmt.Errorf("harness: rollback audit: %q did not re-converge: %w", k, err)
		}
		ops++
		if string(got) != string(data[k]) {
			return nil, fmt.Errorf("harness: rollback audit: %q = %x, want the checkpointed value (rollback must land on the durable baseline)", k, got[:4])
		}
		// The schedule must accept fresh traffic after reconciliation.
		nv := chaosValue(paperValueSize, uint64(len(k)), 9)
		if _, _, err := cluster.Access(core.OpWrite, k, nv); err != nil {
			return nil, fmt.Errorf("harness: rollback post-write %q: %w", k, err)
		}
		got, _, err = cluster.Access(core.OpRead, k, nil)
		if err != nil || string(got) != string(nv) {
			return nil, fmt.Errorf("harness: rollback post-read %q: %v", k, err)
		}
		ops += 2
	}
	probes := reg.Counter("ortoa_lbl_reconcile_probes_total", "").Value()
	reconciled := reg.Counter("ortoa_lbl_reconciled_keys_total", "").Value()
	if reconciled != int64(rbKeys) {
		return nil, fmt.Errorf("harness: rollback reconciled %d keys, want %d", reconciled, rbKeys)
	}
	row := []string{"rollback", fmt.Sprint(ops), fmt.Sprint(ops), "0", "0", "1",
		fmt.Sprint(cluster.WALReplayedTotal()),
		"0/0", fmt.Sprintf("%d/%d", probes, reconciled)}
	return &crashRollback{row: row, lost: lost, keys: rbKeys, probes: probes}, nil
}
