package harness

import (
	"fmt"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/workload"
)

// Options scales experiments. The paper runs 1M-object databases on a
// dedicated fleet; the defaults here are container-friendly while
// preserving every shape the paper reports. Quick shrinks further for
// unit tests and smoke benchmarks.
type Options struct {
	// Quick selects minimal sizes (seconds per experiment).
	Quick bool
	// Keys overrides the database size (0 = default).
	Keys int
	// Ops overrides operations per client thread (0 = default).
	Ops int
	// Concurrency overrides the client thread count (0 = default 32,
	// the paper's default).
	Concurrency int
	// BenchOut, when non-empty, is a path the "bench" experiment writes
	// its machine-readable JSON report to (see BENCH_5.json).
	BenchOut string
	// BenchBaseline, when non-empty, is a prior BenchOut report to
	// compare against: the "bench" experiment fails if any kernel
	// point's ops/s dropped more than benchRegressionPct below the
	// baseline. The comparison only gates when the run is shaped like
	// the baseline (same value size and CPU count); otherwise it is
	// reported as a note and skipped.
	BenchBaseline string
}

func (o Options) keys() int {
	if o.Keys > 0 {
		return o.Keys
	}
	if o.Quick {
		return 128
	}
	return 2048
}

func (o Options) ops() int {
	if o.Ops > 0 {
		return o.Ops
	}
	if o.Quick {
		return 3
	}
	return 12
}

func (o Options) conc() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	if o.Quick {
		return 8
	}
	return 32
}

func (o Options) locations() []struct {
	Name string
	Link netsim.Link
} {
	if o.Quick {
		return netsim.Locations[:2]
	}
	return netsim.Locations
}

// paperValueSize is the evaluation's default object size: 160 B,
// ℓ = 1280 bits (§6).
const paperValueSize = 160

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Millisecond))
}

func fmtTput(t float64) string { return fmt.Sprintf("%.0f", t) }

// measureSystems runs each system against the same workload/link and
// returns results keyed by system order.
func measureSystems(systems []System, link netsim.Link, wl workload.Config, opt Options, shards int) ([]Result, error) {
	results := make([]Result, 0, len(systems))
	for _, sys := range systems {
		res, err := Measure(
			Config{System: sys, Link: link, ValueSize: wl.ValueSize, Shards: shards, LBLMode: core.LBLPointPermute},
			wl, opt.conc()*maxInt(1, shards), opt.ops(),
		)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sys, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Fig2a reproduces Figure 2a: latency and throughput of LBL-ORTOA,
// TEE-ORTOA, and the 2RTT baseline as the proxy→server distance grows
// across the Table 2 datacenters.
func Fig2a(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig2a",
		Title:   "ORTOA vs 2RTT baseline across server locations (160B values, 50/50 R/W)",
		Columns: []string{"location", "system", "mean-lat(ms)", "p99-lat(ms)", "tput(ops/s)"},
	}
	systems := []System{SystemLBL, SystemTEE, SystemBaseline}
	wl := workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 1}
	var lblTput, teeTput, baseTput, lblLat, baseLat float64
	for _, loc := range opt.locations() {
		results, err := measureSystems(systems, loc.Link, wl, opt, 1)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			t.AddRow(loc.Name, string(systems[i]), fmtMS(res.Latency.Mean), fmtMS(res.Latency.P99), fmtTput(res.Throughput))
		}
		if loc.Name == "Oregon" {
			lblTput, teeTput, baseTput = results[0].Throughput, results[1].Throughput, results[2].Throughput
			lblLat, baseLat = float64(results[0].Latency.Mean), float64(results[2].Latency.Mean)
		}
	}
	if baseTput > 0 && baseLat > 0 && lblLat > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("Oregon: LBL tput %.2fx of baseline (paper ~1.7x), TEE %.2fx (paper ~3.2x)", lblTput/baseTput, teeTput/baseTput),
			fmt.Sprintf("Oregon: baseline latency %.2fx of LBL (paper 1.5-1.9x)", baseLat/lblLat))
	}
	return t, nil
}

// Fig2b reproduces Figure 2b: throughput/latency of both ORTOA
// versions as client concurrency increases.
func Fig2b(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig2b",
		Title:   "Increasing concurrency (Oregon link, 160B values)",
		Columns: []string{"clients", "system", "mean-lat(ms)", "tput(ops/s)"},
	}
	levels := []int{1, 2, 4, 8, 16, 32, 64}
	if opt.Quick {
		levels = []int{1, 4, 8}
	}
	wl := workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 2}
	for _, sys := range []System{SystemLBL, SystemTEE} {
		for _, clients := range levels {
			res, err := Measure(
				Config{System: sys, Link: netsim.Oregon, ValueSize: wl.ValueSize, LBLMode: core.LBLPointPermute},
				wl, clients, opt.ops(),
			)
			if err != nil {
				return nil, fmt.Errorf("%s @%d clients: %w", sys, clients, err)
			}
			t.AddRow(fmt.Sprint(clients), string(sys), fmtMS(res.Latency.Mean), fmtTput(res.Throughput))
		}
	}
	t.Notes = append(t.Notes, "paper: throughput grows ~24x from 1 to 32 clients, then latency spikes past the knee")
	return t, nil
}

// Fig2c reproduces Figure 2c: performance while the write percentage
// sweeps 0→100 — flatness is the experimental witness of access-type
// obliviousness.
func Fig2c(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig2c",
		Title:   "Varying write percentage (Oregon link, 160B values)",
		Columns: []string{"write%", "system", "mean-lat(ms)", "tput(ops/s)"},
	}
	fractions := []float64{0, 0.25, 0.5, 0.75, 1}
	if opt.Quick {
		fractions = []float64{0, 0.5, 1}
	}
	for _, sys := range []System{SystemLBL, SystemTEE} {
		var minT, maxT float64
		for _, frac := range fractions {
			wl := workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: frac, Seed: 3}
			res, err := Measure(
				Config{System: sys, Link: netsim.Oregon, ValueSize: wl.ValueSize, LBLMode: core.LBLPointPermute},
				wl, opt.conc(), opt.ops(),
			)
			if err != nil {
				return nil, fmt.Errorf("%s @%d%% writes: %w", sys, int(frac*100), err)
			}
			t.AddRow(fmt.Sprint(int(frac*100)), string(sys), fmtMS(res.Latency.Mean), fmtTput(res.Throughput))
			if minT == 0 || res.Throughput < minT {
				minT = res.Throughput
			}
			if res.Throughput > maxT {
				maxT = res.Throughput
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: max/min throughput across write ratios = %.2f (paper: ~constant)", sys, maxT/minT))
	}
	return t, nil
}

// Fig2d reproduces Figure 2d: performance as the database size N
// grows. The paper sweeps 2^10..2^22 on 32 GiB servers; this harness
// sweeps a container-scaled range (LBL records are ~10 KiB each at
// 160 B values).
func Fig2d(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig2d",
		Title:   "Varying database size N (Oregon link, 160B values; paper sweeps to 2^22)",
		Columns: []string{"N", "system", "mean-lat(ms)", "tput(ops/s)"},
	}
	sizes := []int{1 << 10, 1 << 12, 1 << 14}
	if opt.Quick {
		sizes = []int{1 << 7, 1 << 9}
	}
	for _, sys := range []System{SystemLBL, SystemTEE} {
		for _, n := range sizes {
			wl := workload.Config{NumKeys: n, ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 4}
			res, err := Measure(
				Config{System: sys, Link: netsim.Oregon, ValueSize: wl.ValueSize, LBLMode: core.LBLPointPermute},
				wl, opt.conc(), opt.ops(),
			)
			if err != nil {
				return nil, fmt.Errorf("%s @N=%d: %w", sys, n, err)
			}
			t.AddRow(fmt.Sprint(n), string(sys), fmtMS(res.Latency.Mean), fmtTput(res.Throughput))
		}
	}
	t.Notes = append(t.Notes, "paper: flat for TEE; LBL degrades ~11% only at 2^22 objects (memory pressure)")
	return t, nil
}

// Fig3a reproduces Figure 3a: near-linear scaling as proxy/server
// pairs (shards) grow 1→5 with client load scaled alongside.
func Fig3a(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig3a",
		Title:   "Scaling proxy/server pairs (Oregon link, 160B values, 32·s clients)",
		Columns: []string{"shards", "system", "mean-lat(ms)", "tput(ops/s)", "speedup"},
	}
	shardCounts := []int{1, 2, 3, 4, 5}
	if opt.Quick {
		shardCounts = []int{1, 2}
	}
	for _, sys := range []System{SystemLBL, SystemTEE} {
		var base float64
		for _, s := range shardCounts {
			wl := workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 5}
			res, err := Measure(
				Config{System: sys, Link: netsim.Oregon, ValueSize: wl.ValueSize, Shards: s, LBLMode: core.LBLPointPermute},
				wl, opt.conc()*s, opt.ops(),
			)
			if err != nil {
				return nil, fmt.Errorf("%s @%d shards: %w", sys, s, err)
			}
			if s == shardCounts[0] {
				base = res.Throughput
			}
			t.AddRow(fmt.Sprint(s), string(sys), fmtMS(res.Latency.Mean), fmtTput(res.Throughput),
				fmt.Sprintf("%.2fx", res.Throughput/base))
		}
	}
	t.Notes = append(t.Notes, "paper: ~5x throughput at 5 shards, latency flat")
	return t, nil
}

// fig3bSizes is the value-size sweep of Figures 3b/3c.
func fig3bSizes(opt Options) []int {
	if opt.Quick {
		return []int{10, 160, 300}
	}
	return []int{10, 50, 100, 160, 300, 450, 600}
}

// Fig3b reproduces Figure 3b: LBL-ORTOA vs TEE-ORTOA vs the baseline
// as the value size ℓ grows — the experiment that reveals the
// LBL/baseline crossover near 300 B.
func Fig3b(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig3b",
		Title:   "Varying value size (Oregon link)",
		Columns: []string{"value(B)", "system", "mean-lat(ms)", "tput(ops/s)"},
	}
	var cross int
	for _, size := range fig3bSizes(opt) {
		wl := workload.Config{NumKeys: opt.keys(), ValueSize: size, WriteFraction: 0.5, Seed: 6}
		results, err := measureSystems([]System{SystemLBL, SystemTEE, SystemBaseline}, netsim.Oregon, wl, opt, 1)
		if err != nil {
			return nil, fmt.Errorf("@%dB: %w", size, err)
		}
		for i, sys := range []System{SystemLBL, SystemTEE, SystemBaseline} {
			t.AddRow(fmt.Sprint(size), string(sys), fmtMS(results[i].Latency.Mean), fmtTput(results[i].Throughput))
		}
		if cross == 0 && results[0].Latency.Mean > results[2].Latency.Mean {
			cross = size
		}
	}
	if cross > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("baseline first outperforms LBL at %dB values (paper: ~300B)", cross))
	} else {
		t.Notes = append(t.Notes, "LBL stayed ahead of the baseline across this sweep (paper crossover: ~300B)")
	}
	t.Notes = append(t.Notes, "paper: TEE flat across value sizes; LBL degrades with ℓ")
	return t, nil
}

// Fig3c reproduces Figure 3c: the latency breakdown of LBL-ORTOA —
// computation, the constant link RTT, and the large-message
// communication overhead `o` — against the baseline's total latency.
func Fig3c(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig3c",
		Title:   "LBL-ORTOA latency breakdown vs value size (Oregon link)",
		Columns: []string{"value(B)", "total(ms)", "rtt(ms)", "comm-ovhd(ms)", "compute(ms)", "2rtt-total(ms)", "LBL wins (c>p+o)"},
	}
	link := netsim.Oregon
	for _, size := range fig3bSizes(opt) {
		wl := workload.Config{NumKeys: opt.keys(), ValueSize: size, WriteFraction: 0.5, Seed: 7}
		lbl, err := Measure(Config{System: SystemLBL, Link: link, ValueSize: size, LBLMode: core.LBLPointPermute}, wl, opt.conc(), opt.ops())
		if err != nil {
			return nil, fmt.Errorf("lbl @%dB: %w", size, err)
		}
		base, err := Measure(Config{System: SystemBaseline, Link: link, ValueSize: size}, wl, opt.conc(), opt.ops())
		if err != nil {
			return nil, fmt.Errorf("baseline @%dB: %w", size, err)
		}
		total := lbl.Latency.Mean
		rtt := link.RTT
		commOvhd := link.TransferTime(int(lbl.BytesSentOp)) + link.TransferTime(int(lbl.BytesRecvOp))
		compute := total - rtt - commOvhd
		if compute < 0 {
			compute = 0
		}
		// §6.3.2's rule: one extra round (c) vs processing + overhead.
		wins := float64(rtt) > float64(compute+commOvhd)
		t.AddRow(fmt.Sprint(size), fmtMS(total), fmtMS(rtt), fmtMS(commOvhd), fmtMS(compute),
			fmtMS(base.Latency.Mean), fmt.Sprint(wins))
	}
	t.Notes = append(t.Notes,
		"paper: communication overhead (not compute) dominates LBL's growth with ℓ",
		"decision rule (§6.3.2): choose LBL-ORTOA when c > p + o")
	return t, nil
}

// Fig3d reproduces Figure 3d: a GDPR-style placement (server in
// London, 300 B objects) where the long link makes the one-round
// protocol win despite large messages.
func Fig3d(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig3d",
		Title:   "EU-resident server, 300B objects (GDPR scenario)",
		Columns: []string{"system", "mean-lat(ms)", "tput(ops/s)"},
	}
	wl := workload.Config{NumKeys: opt.keys(), ValueSize: 300, WriteFraction: 0.5, Seed: 8}
	results, err := measureSystems([]System{SystemLBL, SystemBaseline}, netsim.London, wl, opt, 1)
	if err != nil {
		return nil, err
	}
	for i, sys := range []System{SystemLBL, SystemBaseline} {
		t.AddRow(string(sys), fmtMS(results[i].Latency.Mean), fmtTput(results[i].Throughput))
	}
	if results[1].Throughput > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("LBL throughput %.2fx of baseline (paper: ~1.7x with c=147.7ms)",
			results[0].Throughput/results[1].Throughput))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: all three systems on the three real-world
// dataset stand-ins (EHR 10 B, SmallBank 50 B, e-commerce 40 B).
func Fig4(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig4",
		Title:   "Real-world datasets (Oregon link)",
		Columns: []string{"dataset", "value(B)", "system", "mean-lat(ms)", "tput(ops/s)", "tput vs 2RTT"},
	}
	for _, ds := range workload.Datasets(opt.keys()) {
		systems := []System{SystemLBL, SystemTEE, SystemBaseline}
		results := make([]Result, len(systems))
		for i, sys := range systems {
			// Dataset keys are not the synthetic key-%08d space, so
			// drive the workload over the dataset's own keys.
			res, err := measureDataset(sys, ds, opt)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ds.Name, sys, err)
			}
			results[i] = res
		}
		base := results[2].Throughput
		for i, sys := range systems {
			ratio := "-"
			if base > 0 && sys != SystemBaseline {
				ratio = fmt.Sprintf("%.2fx", results[i].Throughput/base)
			}
			t.AddRow(ds.Name, fmt.Sprint(ds.ValueSize), string(sys), fmtMS(results[i].Latency.Mean), fmtTput(results[i].Throughput), ratio)
		}
	}
	t.Notes = append(t.Notes, "paper: TEE ~3.2x baseline throughput; LBL 1.7-1.9x depending on value size")
	return t, nil
}

// measureDataset runs a 50/50 read-write workload over a dataset's own
// key space.
func measureDataset(sys System, ds workload.Dataset, opt Options) (Result, error) {
	data := ds.Data()
	cluster, err := NewCluster(Config{
		System: sys, Link: netsim.Oregon, ValueSize: ds.ValueSize,
		LBLMode: core.LBLPointPermute, ConnsPerShard: minInt(opt.conc(), 64), Data: data,
	})
	if err != nil {
		return Result{}, err
	}
	defer cluster.Close()
	return RunKeyed(cluster, ds.Records, opt.conc(), opt.ops(), ds.ValueSize)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
