package harness

import (
	"fmt"
	"sort"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/obs/trace"
	"ortoa/internal/workload"
)

// traceStageSpans are the four proxy-side stage spans whose durations
// must sum to the lbl_access root span — the same decomposition the
// stages experiment reads from histograms, here reconstructed from a
// single trace.
var traceStageSpans = []string{"counter_acquire", "table_build", "rpc", "label_recover"}

// traceRequiredSpans is what a complete cross-process trace of one
// access must contain: the proxy's root and stage spans, the
// transport's attempt span, and the server's handler and decrypt
// spans (the two processes meet at rpc → transport_attempt →
// server_handle).
var traceRequiredSpans = []string{
	"lbl_access", "counter_acquire", "table_build", "rpc", "label_recover",
	"transport_attempt", "server_handle", "server_decrypt",
}

// tracePaperSteps maps span names to the §5.2 steps they time.
var tracePaperSteps = map[string]string{
	"lbl_access":        "end-to-end access (§5.2)",
	"counter_acquire":   "1.1 counter lookup",
	"table_build":       "1.2-1.4 PRF labels + enc table",
	"rpc":               "one round trip (wire)",
	"transport_attempt": "frame send/recv (one attempt)",
	"server_handle":     "server-side frame execution",
	"server_decrypt":    "2.1-2.2 trial decrypt + install",
	"label_recover":     "3.1-3.2 decrypt result",
}

// TraceBreakdown reproduces the Fig 3c latency breakdown from a single
// distributed trace instead of aggregate histograms: it runs a traced
// LBL workload over the Oregon link, picks the slowest complete trace,
// and reports every span of that one access — proxy stages and server
// decrypt joined by the trace id that crossed the simulated WAN in the
// frame header's fixed-size trace field. It fails if no trace resolves
// to a complete cross-process span tree, if the proxy stage spans do
// not sum to the end-to-end root span within 1%, or if the shape
// auditor saw any frame-length divergence while tracing was on.
func TraceBreakdown(opt Options) (*Table, error) {
	t := &Table{
		ID:      "trace",
		Title:   "Fig 3c breakdown from one cross-process distributed trace (Oregon link, 160B values)",
		Columns: []string{"span", "process", "paper step", "ms", "share"},
	}
	reg := obs.NewRegistry()
	wl := workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 11}
	if _, err := Measure(
		Config{System: SystemLBL, Link: netsim.Oregon, ValueSize: paperValueSize,
			LBLMode: core.LBLPointPermute, Metrics: reg, TraceBuffer: 1 << 15},
		wl, opt.conc(), opt.ops(),
	); err != nil {
		return nil, err
	}

	byTrace := make(map[uint64][]trace.SpanRecord)
	for _, rec := range reg.TraceRecords() {
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], rec)
	}
	var best []trace.SpanRecord
	var bestRoot trace.SpanRecord
	complete := 0
	for _, spans := range byTrace {
		have := make(map[string]bool, len(spans))
		var root *trace.SpanRecord
		for i := range spans {
			have[spans[i].Name] = true
			if spans[i].ParentID == 0 && spans[i].Name == "lbl_access" {
				root = &spans[i]
			}
		}
		ok := root != nil
		for _, name := range traceRequiredSpans {
			ok = ok && have[name]
		}
		if !ok {
			continue
		}
		complete++
		if best == nil || root.Duration > bestRoot.Duration {
			best, bestRoot = spans, *root
		}
	}
	if best == nil {
		return nil, fmt.Errorf("harness: no complete cross-process trace among %d recorded traces", len(byTrace))
	}

	sort.Slice(best, func(a, b int) bool { return best[a].Start.Before(best[b].Start) })
	for _, sp := range best {
		share := "-"
		if bestRoot.Duration > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(sp.Duration)/float64(bestRoot.Duration))
		}
		t.AddRow(sp.Name, sp.Process, tracePaperSteps[sp.Name], fmtMS(sp.Duration), share)
	}

	// The stage spans bracket the same boundaries as the e2e stopwatch,
	// so their sum must reproduce the root span: a larger gap means a
	// stage went untimed (acceptance: within 1%).
	var stageSum int64
	for _, sp := range best {
		for _, name := range traceStageSpans {
			if sp.Name == name {
				stageSum += int64(sp.Duration)
			}
		}
	}
	dev := 100 * (float64(stageSum) - float64(bestRoot.Duration)) / float64(bestRoot.Duration)
	t.Notes = append(t.Notes,
		fmt.Sprintf("trace %016x: %d spans across proxy+server; stage-span sum %s ms vs end-to-end span %s ms (%+.2f%% deviation, acceptance: within 1%%)",
			bestRoot.TraceID, len(best), fmtMSf(stageSum), fmtMSf(int64(bestRoot.Duration)), dev),
		fmt.Sprintf("%d of %d recorded traces resolved to complete cross-process span trees (incomplete ones were evicted from a ring buffer side)",
			complete, len(byTrace)),
		"span context crossed the simulated WAN in the frame header's fixed-size trace field: identical frame lengths traced or not (see the shape rows of /metrics)")
	if dev > 1 || dev < -1 {
		return nil, fmt.Errorf("harness: stage spans sum to %+.2f%% of the end-to-end span (acceptance: within 1%%)", dev)
	}
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		return nil, fmt.Errorf("harness: obliviousness shape violations while tracing: proxy=%d server=%d", vp, vs)
	}
	t.Notes = append(t.Notes, "shape auditor: 0 length violations with tracing enabled on every frame")
	return t, nil
}

// shapeViolations reads both processes' obliviousness shape-violation
// counters from reg (get-or-create: zero if never armed).
func shapeViolations(reg *obs.Registry) (proxy, server int64) {
	return reg.Counter(`ortoa_obliviousness_shape_violations_total{proc="proxy"}`, "").Value(),
		reg.Counter(`ortoa_obliviousness_shape_violations_total{proc="server"}`, "").Value()
}

// fmtMSf renders nanoseconds as milliseconds with two decimals.
func fmtMSf(ns int64) string { return fmt.Sprintf("%.2f", float64(ns)/1e6) }
