package harness

import (
	"strings"
	"testing"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// TestFailoverQuick runs the failover experiment end to end at
// unit-test scale. The drill self-audits (zero lost acked writes,
// label-schedule consistency across the handoff, zero shape
// violations), so a nil error is the assertion.
func TestFailoverQuick(t *testing.T) {
	tbl, err := Failover(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: 2 scaling rows + kill-adopt + audit.
	if len(tbl.Rows) != 4 {
		t.Fatalf("failover table has %d rows, want 4", len(tbl.Rows))
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "audit passed") {
			found = true
		}
	}
	if !found {
		t.Errorf("failover notes missing audit confirmation: %v", tbl.Notes)
	}
}

// newFailoverCluster builds a small 3-proxy deployment for the
// lifecycle tests below.
func newFailoverCluster(t *testing.T, reg *obs.Registry) *Cluster {
	t.Helper()
	data := map[string][]byte{}
	for _, k := range []string{"fa", "fb", "fc", "fd", "fe", "ff"} {
		data[k] = []byte("0123456789abcdef")
	}
	cluster, err := NewCluster(Config{
		System:    SystemLBL,
		Link:      netsim.Loopback,
		ValueSize: 16,
		Data:      data,
		LBLMode:   core.LBLPointPermute,
		Proxies:   3,
		Transport: transport.Options{
			CallTimeout:      time.Second,
			ReconnectBackoff: time.Millisecond,
		},
		ConnsPerShard: 2,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	return cluster
}

// TestRestartProxyStableIdentity crash-kills and recovers one proxy
// behind its listener identity: accesses keep succeeding throughout,
// and the reborn proxy re-adopts ownership on demand.
func TestRestartProxyStableIdentity(t *testing.T) {
	reg := obs.NewRegistry()
	cluster := newFailoverCluster(t, reg)
	rw := func(tag string) {
		for _, k := range []string{"fa", "fb", "fc", "fd", "fe", "ff"} {
			if _, _, err := cluster.Access(core.OpWrite, k, []byte(tag+"123456789abc")); err != nil {
				t.Fatalf("write %q (%s): %v", k, tag, err)
			}
			got, _, err := cluster.Access(core.OpRead, k, nil)
			if err != nil {
				t.Fatalf("read %q (%s): %v", k, tag, err)
			}
			if string(got) != tag+"123456789abc" {
				t.Fatalf("read %q (%s) = %q", k, tag, got)
			}
		}
	}
	rw("pre-")
	for i := 0; i < cluster.Proxies(); i++ {
		if err := cluster.RestartProxy(i); err != nil {
			t.Fatalf("restarting proxy %d: %v", i, err)
		}
		rw("r" + string(rune('0'+i)) + "--")
	}
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		t.Fatalf("shape violations across restarts: proxy=%d server=%d", vp, vs)
	}
}

// TestKillProxyLifecycleErrors pins the kill/recover state machine:
// double kills and spurious recoveries are errors, not silent no-ops.
func TestKillProxyLifecycleErrors(t *testing.T) {
	cluster := newFailoverCluster(t, obs.NewRegistry())
	if err := cluster.RecoverProxy(1); err == nil {
		t.Fatal("recovering a live proxy should fail")
	}
	if err := cluster.KillProxy(1); err != nil {
		t.Fatal(err)
	}
	if err := cluster.KillProxy(1); err == nil {
		t.Fatal("double kill should fail")
	}
	if err := cluster.KillProxy(99); err == nil {
		t.Fatal("killing an out-of-range proxy should fail")
	}
	if err := cluster.RecoverProxy(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cluster.Access(core.OpRead, "fa", nil); err != nil {
		t.Fatalf("access after recover: %v", err)
	}
}
