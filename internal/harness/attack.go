package harness

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"sort"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
	"ortoa/internal/workload"
)

// SnapshotAttack operationalizes the paper's §1 motivation: the
// John et al. [35] style multi-snapshot adversary, who diffs database
// snapshots between client operations and flags an operation as a
// write iff any stored record changed.
//
// Against a conventional encrypted store (CryptDB/Arx-style: reads
// fetch, writes re-encrypt and store) the attack identifies every
// operation exactly. Against ORTOA every access rewrites a record, so
// the adversary's best strategy degrades to majority guessing — the
// quantitative version of "hiding reads and writes ... can help
// mitigate or at least weaken the accuracy of such attacks".
func SnapshotAttack(opt Options) (*Table, error) {
	t := &Table{
		ID:      "attack-snapshot",
		Title:   "Multi-snapshot adversary (§1, John et al. [35] style)",
		Columns: []string{"store", "ops", "writes", "attack-accuracy", "write-precision"},
	}
	numKeys := 32
	ops := 120
	if opt.Quick {
		ops = 40
	}
	writeFrac := 0.3 // an imbalanced mix makes majority-guessing visible

	for _, target := range []string{"plain-encrypted", "ORTOA-LBL"} {
		acc, precision, writes, err := runSnapshotAttack(target, numKeys, ops, writeFrac)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", target, err)
		}
		t.AddRow(target, fmt.Sprint(ops), fmt.Sprint(writes),
			fmt.Sprintf("%.0f%%", acc*100), fmt.Sprintf("%.0f%%", precision*100))
	}
	t.Notes = append(t.Notes,
		"adversary: snapshot the store around every operation; classify as write iff any record changed",
		"plain encrypted store: perfect identification; ORTOA: every op mutates, so the adversary is reduced to guessing the majority class")
	return t, nil
}

// plainEncryptedAccessor is the conventional encrypted store the paper
// contrasts against (§1): reads GET and decrypt; only writes PUT.
type plainEncryptedAccessor struct {
	prf *prf.PRF
	box *secretbox.Box
	rpc *transport.Client
}

func (p *plainEncryptedAccessor) Access(op core.Op, key string, newValue []byte) ([]byte, core.AccessStats, error) {
	var stats core.AccessStats
	ek := p.prf.EncodeKey(key)
	if op == core.OpWrite {
		return nil, stats, p.putRecord(ek[:], p.box.Seal(newValue))
	}
	resp, err := p.rpc.Call(core.MsgBaselineGet, ek[:])
	if err != nil {
		return nil, stats, err
	}
	v, err := p.box.Open(resp)
	return v, stats, err
}

func (p *plainEncryptedAccessor) putRecord(ek, sealed []byte) error {
	// MsgBaselinePut payload: encKey ‖ uvarint len ‖ sealed.
	buf := make([]byte, 0, len(ek)+len(sealed)+4)
	buf = append(buf, ek...)
	// Single-byte uvarint is fine for test-sized records; fall back to
	// two-byte form when needed.
	n := len(sealed)
	for n >= 0x80 {
		buf = append(buf, byte(n)|0x80)
		n >>= 7
	}
	buf = append(buf, byte(n))
	buf = append(buf, sealed...)
	_, err := p.rpc.Call(core.MsgBaselinePut, buf)
	return err
}

func (p *plainEncryptedAccessor) BuildRecord(key string, value []byte) (string, []byte, error) {
	ek := p.prf.EncodeKey(key)
	return string(ek[:]), p.box.Seal(value), nil
}

// runSnapshotAttack drives the mixed workload against the chosen store
// and plays the adversary. Returns (accuracy, write precision, writes).
func runSnapshotAttack(target string, numKeys, ops int, writeFrac float64) (float64, float64, int, error) {
	const valueSize = 16
	store := kvstore.New()
	srv := transport.NewServer()
	defer srv.Close()
	listener := netsim.Listen(netsim.Loopback)
	go srv.Serve(listener) //nolint:errcheck // returns on Close
	rpc, err := transport.Dial(listener.Dial, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	defer rpc.Close()

	var accessor core.Accessor
	var builder interface {
		BuildRecord(key string, value []byte) (string, []byte, error)
	}
	switch target {
	case "plain-encrypted":
		core.NewBaselineServer(store).Register(srv)
		pa := &plainEncryptedAccessor{prf: prf.NewRandom(), rpc: rpc}
		pa.box, err = secretbox.NewBox(secretbox.NewRandomKey())
		if err != nil {
			return 0, 0, 0, err
		}
		accessor, builder = pa, pa
	case "ORTOA-LBL":
		core.NewLBLServer(store).Register(srv)
		proxy, perr := core.NewLBLProxy(core.LBLConfig{ValueSize: valueSize, Mode: core.LBLPointPermute}, prf.NewRandom(), rpc)
		if perr != nil {
			return 0, 0, 0, perr
		}
		accessor, builder = proxy, proxy
	default:
		return 0, 0, 0, fmt.Errorf("unknown target %q", target)
	}

	for i := 0; i < numKeys; i++ {
		ek, rec, err := builder.BuildRecord(workload.Key(i), make([]byte, valueSize))
		if err != nil {
			return 0, 0, 0, err
		}
		store.Put(ek, rec)
	}

	// snapshot captures a canonical (sorted) image of the store;
	// kvstore iteration order is not deterministic, so raw snapshot
	// bytes cannot be diffed directly.
	snapshot := func() []byte {
		type pair struct {
			k string
			v []byte
		}
		var pairs []pair
		store.Range(func(k string, v []byte) bool {
			pairs = append(pairs, pair{k, append([]byte(nil), v...)})
			return true
		})
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
		var buf bytes.Buffer
		for _, p := range pairs {
			buf.WriteString(p.k)
			buf.Write(p.v)
		}
		return buf.Bytes()
	}

	rng := rand.New(rand.NewPCG(7, 13))
	correct, writes, flaggedWrites, truePositives := 0, 0, 0, 0
	before := snapshot()
	for i := 0; i < ops; i++ {
		isWrite := rng.Float64() < writeFrac
		key := workload.Key(rng.IntN(numKeys))
		var err error
		if isWrite {
			writes++
			v := make([]byte, valueSize)
			v[0] = byte(i)
			_, _, err = accessor.Access(core.OpWrite, key, v)
		} else {
			_, _, err = accessor.Access(core.OpRead, key, nil)
		}
		if err != nil {
			return 0, 0, 0, err
		}
		after := snapshot()
		guessWrite := !bytes.Equal(before, after)
		before = after
		if guessWrite {
			flaggedWrites++
			if isWrite {
				truePositives++
			}
		}
		if guessWrite == isWrite {
			correct++
		}
	}
	accuracy := float64(correct) / float64(ops)
	precision := 0.0
	if flaggedWrites > 0 {
		precision = float64(truePositives) / float64(flaggedWrites)
	}
	// For ORTOA the adversary's diff fires on every op; its best
	// strategy is then the majority class, which for writeFrac < 0.5
	// is "read" — accuracy max(p, 1-p). Report the better of the two
	// strategies, as a real adversary would use.
	majority := float64(ops-writes) / float64(ops)
	if majority > accuracy {
		accuracy = majority
	}
	return accuracy, precision, writes, nil
}
