package harness

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
	"ortoa/internal/workload"
)

// aggWindowLen is the coalescing window the aggregated path waits per
// batch — the latency each access risks paying to share a round trip.
const aggWindowLen = 2 * time.Millisecond

// gatedAccessor bounds concurrent proxy→server accesses at the shared
// slot budget, modeling the bounded in-flight window every real
// proxy→server path runs under (connection-level flow control, server
// admission limits); netsim's transport would otherwise pipeline
// unboundedly.
type gatedAccessor struct {
	slots chan struct{}
	next  core.Accessor
}

func (g gatedAccessor) Access(op core.Op, key string, newValue []byte) ([]byte, core.AccessStats, error) {
	g.slots <- struct{}{}
	defer func() { <-g.slots }()
	return g.next.Access(op, key, newValue)
}

// gatedBatchAccessor is the same budget applied to the aggregated
// path: one whole batch round trip occupies one slot, exactly like
// one single access does.
type gatedBatchAccessor struct {
	slots chan struct{}
	next  core.BatchAccessor
}

func (g gatedBatchAccessor) AccessBatchResults(ctx context.Context, ops []core.BatchOp) ([]core.BatchResult, core.AccessStats) {
	g.slots <- struct{}{}
	defer func() { <-g.slots }()
	return g.next.AccessBatchResults(ctx, ops)
}

// aggRig is one end-to-end deployment for the aggregate experiment:
// end-user sessions → proxy front end (netsim loopback) → LBL proxy →
// server (netsim WAN RTT), with the proxy→server path gated at
// fallbackWindow concurrent round trips for both compared paths.
type aggRig struct {
	serverTS *transport.Server
	proxyTS  *transport.Server
	rpc      *transport.Client
	users    []*transport.Client
	agg      *core.Aggregator
	sessions []*core.RemoteAccessor
}

func newAggRig(sessions, valueSize int, aggregated bool, reg *obs.Registry) (*aggRig, error) {
	r := &aggRig{}
	fail := func(err error) (*aggRig, error) {
		r.Close()
		return nil, err
	}

	// Untrusted server over an RTT-only WAN link. Like BatchPipeline,
	// the link models propagation delay without per-connection
	// bandwidth: netsim meters bandwidth per connection, so the
	// many-connection singles path would enjoy aggregate bandwidth no
	// shared uplink provides, hiding the round-trip effect under a
	// simulation artifact.
	store := kvstore.New()
	r.serverTS = transport.NewServer()
	r.serverTS.AuditShape(obs.NewShapeAuditor(reg, "server"), core.ShapeClassify)
	core.RegisterLoader(r.serverTS, store)
	core.NewLBLServer(store).Register(r.serverTS)
	serverLn := netsim.Listen(netsim.Link{RTT: netsim.London.RTT})
	go r.serverTS.Serve(serverLn)

	rpc, err := transport.Dial(serverLn.Dial, fallbackWindow)
	if err != nil {
		return fail(err)
	}
	r.rpc = rpc
	rpc.AuditShape(obs.NewShapeAuditor(reg, "proxy"), core.ShapeClassify)
	proxy, err := core.NewLBLProxy(core.LBLConfig{ValueSize: valueSize, Mode: core.LBLPointPermute}, prf.NewRandom(), rpc)
	if err != nil {
		return fail(err)
	}

	records := make([]core.KV, sessions)
	for i := range records {
		value := make([]byte, valueSize)
		ek, rec, err := proxy.BuildRecord(workload.Key(i), value)
		if err != nil {
			return fail(err)
		}
		records[i] = core.KV{Key: ek, Record: rec}
	}
	if err := core.BulkLoad(rpc, records); err != nil {
		return fail(err)
	}

	// Both paths spend the same fallbackWindow-slot budget on server
	// round trips; aggregation differs only in how many accesses one
	// slot carries.
	gate := make(chan struct{}, fallbackWindow)
	var accessor core.Accessor
	if aggregated {
		r.agg = core.NewAggregator(core.AggregatorConfig{
			Window:   aggWindowLen,
			MaxBatch: sessions,
		}, gatedBatchAccessor{slots: gate, next: proxy})
		accessor = r.agg
	} else {
		accessor = gatedAccessor{slots: gate, next: proxy}
	}

	// Proxy front end and one connection per end-user session, as in
	// the §2.1 deployment: every session is an independent client that
	// issues one access at a time.
	r.proxyTS = transport.NewServer()
	core.RegisterProxyService(r.proxyTS, accessor)
	userLn := netsim.Listen(netsim.Loopback)
	go r.proxyTS.Serve(userLn)
	for s := 0; s < sessions; s++ {
		uc, err := transport.Dial(userLn.Dial, 1)
		if err != nil {
			return fail(err)
		}
		r.users = append(r.users, uc)
		r.sessions = append(r.sessions, core.NewRemoteAccessor(uc))
	}
	return r, nil
}

func (r *aggRig) Close() {
	for _, uc := range r.users {
		uc.Close()
	}
	if r.proxyTS != nil {
		r.proxyTS.Close()
	}
	if r.agg != nil {
		r.agg.Close()
	}
	if r.rpc != nil {
		r.rpc.Close()
	}
	if r.serverTS != nil {
		r.serverTS.Close()
	}
}

// Aggregate measures the cross-session aggregation front end: N
// concurrent end-user sessions each looping single-key accesses
// through the proxy, with and without the time/size coalescing window
// in front of the LBL batch path. Throughput, server round trips per
// access, and the realized coalesce ratio all come from the
// components' own counters.
func Aggregate(opt Options) (*Table, error) {
	t := &Table{
		ID:    "aggregate",
		Title: "Cross-session aggregation window vs per-request proxying (London RTT, 160B values)",
		Columns: []string{"sessions", "path", "tput(ops/s)", "speedup",
			"server-rpcs/op", "coalesce"},
	}
	sessionCounts := []int{16, 64}
	rounds := 6
	if opt.Quick {
		sessionCounts = []int{64}
		rounds = 3
	}
	if opt.Concurrency > 0 {
		sessionCounts = []int{opt.Concurrency}
	}

	run := func(sessions int, aggregated bool) (tput, rpcsPerOp, coalesce float64, err error) {
		// A fresh registry per rig: the shape auditor pins frame lengths
		// per deployment, and every window size must stay byte-identical
		// within its class across the whole run.
		reg := obs.NewRegistry()
		r, err := newAggRig(sessions, paperValueSize, aggregated, reg)
		if err != nil {
			return 0, 0, 0, err
		}
		defer r.Close()

		before := r.rpc.Stats().Calls
		start := make(chan struct{})
		var wg sync.WaitGroup
		errc := make(chan error, 1)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				<-start
				key := workload.Key(s)
				for i := 0; i < rounds; i++ {
					if _, _, err := r.sessions[s].Access(core.OpRead, key, nil); err != nil {
						select {
						case errc <- fmt.Errorf("session %d: %w", s, err):
						default:
						}
						return
					}
				}
			}(s)
		}
		begin := time.Now()
		close(start)
		wg.Wait()
		elapsed := time.Since(begin)
		select {
		case err := <-errc:
			return 0, 0, 0, err
		default:
		}

		ops := sessions * rounds
		rpcs := r.rpc.Stats().Calls - before
		tput = float64(ops) / elapsed.Seconds()
		rpcsPerOp = float64(rpcs) / float64(ops)
		if r.agg != nil {
			coalesce = r.agg.Stats().CoalesceRatio()
		}
		if vp, vs := shapeViolations(reg); vp+vs != 0 {
			return 0, 0, 0, fmt.Errorf("obliviousness shape violations: proxy=%d server=%d", vp, vs)
		}
		return tput, rpcsPerOp, coalesce, nil
	}

	for _, sessions := range sessionCounts {
		baseTput, baseRPCs, _, err := run(sessions, false)
		if err != nil {
			return nil, fmt.Errorf("unaggregated %d sessions: %w", sessions, err)
		}
		aggTput, aggRPCs, coalesce, err := run(sessions, true)
		if err != nil {
			return nil, fmt.Errorf("aggregated %d sessions: %w", sessions, err)
		}
		t.AddRow(fmt.Sprint(sessions), "per-request", fmtTput(baseTput), "1.00x",
			fmt.Sprintf("%.2f", baseRPCs), "-")
		t.AddRow(fmt.Sprint(sessions), "aggregated", fmtTput(aggTput),
			fmt.Sprintf("%.2fx", aggTput/baseTput),
			fmt.Sprintf("%.2f", aggRPCs), fmt.Sprintf("%.1f", coalesce))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("both paths share a %d-slot proxy→server round-trip budget; aggregation packs a whole window into one slot", fallbackWindow),
		fmt.Sprintf("aggregation window: %s or %s accesses, whichever closes first", aggWindowLen, "MaxBatch=sessions"),
		"RTT-only link (no per-connection bandwidth), as in the batch experiment: netsim meters bandwidth per connection, which would gift the per-request path unshared aggregate bandwidth",
		"sessions gain from aggregation once they outnumber the round-trip budget; at sessions <= budget the window only adds its wait",
		"shape auditor: 0 length violations — every batch frame of a given window size was byte-identical, aggregated or not")
	return t, nil
}
