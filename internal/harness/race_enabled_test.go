//go:build race

package harness

// raceEnabled reports whether the race detector is compiled in, so
// measured-throughput assertions can stand down: instrumentation
// multiplies CPU-bound stage costs and invalidates timing claims.
const raceEnabled = true
