// Package harness deploys in-process ORTOA clusters over simulated WAN
// links and runs the paper's experiments (§6). Each figure/table of
// the evaluation has a runner that produces the same rows/series the
// paper reports; cmd/ortoa-bench and the repository-root benchmarks
// drive them.
package harness

import (
	"fmt"
	"hash/fnv"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/crashfs"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// System identifies a protocol under test.
type System string

// Systems of the evaluation.
const (
	SystemLBL      System = "LBL-ORTOA"
	SystemTEE      System = "TEE-ORTOA"
	SystemBaseline System = "2RTT"
)

// Config describes one cluster deployment.
type Config struct {
	// System selects the protocol.
	System System
	// Link is the proxy↔server network path (clients are colocated
	// with the proxy, as in the paper's California placement).
	Link netsim.Link
	// ValueSize is the fixed value length in bytes (paper default
	// 160 B).
	ValueSize int
	// Data is the initial database. Every key in it is accessible.
	Data map[string][]byte
	// Shards is the number of proxy/server pairs (Fig 3a); keys are
	// hash-partitioned across them. Zero means 1.
	Shards int
	// LBLMode selects the LBL variant (default point-and-permute, the
	// configuration of the paper's cost analysis).
	LBLMode core.LBLMode
	// EnclaveTransition is the simulated ecall overhead for TEE.
	EnclaveTransition time.Duration
	// ConnsPerShard sizes the proxy→server connection pool. Zero
	// means one per expected concurrent client (set by Run).
	ConnsPerShard int
	// Transport tunes the proxy→server clients' fault tolerance
	// (per-call deadlines, at-most-once retries, reconnect backoff).
	// PoolSize is ignored — ConnsPerShard wins. The zero value keeps
	// the historical behavior: no deadline, no retries.
	Transport transport.Options
	// Metrics, when non-nil, instruments every shard's store,
	// transport, and protocol sides against one shared registry (series
	// aggregate across shards). The stages experiment uses it to read
	// per-stage latency breakdowns. Metrics also arms the obliviousness
	// shape auditors on both sides of every shard's link.
	Metrics *obs.Registry
	// TraceBuffer, when positive, turns on distributed tracing
	// (requires Metrics): proxies and servers retain up to this many
	// finished spans each, and span context crosses the simulated WAN
	// in the frame headers' fixed-size trace field.
	TraceBuffer int
	// Durability, when non-nil, backs every shard store with a
	// crash-faulty filesystem and a WAL under the given fsync policy,
	// enabling Restart (kill-without-flush + recovery). LBL only.
	Durability *DurabilityConfig
	// Proxies, when positive, deploys that many trusted proxies sharing
	// one PRF secret over a single LBL shard, with counter ownership
	// ring-partitioned and epoch-fenced; Cluster.Access then routes
	// through a health-probing core.Router, and KillProxy /
	// RecoverProxy / RestartProxy drive live failover. Requires
	// System == SystemLBL and Shards <= 1.
	Proxies int
	// ProxyLink is the client↔proxy network path in multi-proxy
	// deployments. The zero value is an ideal local link (the paper
	// colocates clients with the trusted proxy).
	ProxyLink netsim.Link
	// ProxyReconcileScan bounds an adopting proxy's counter-rebase
	// probe spiral (multi-proxy only). Zero picks a harness default
	// large enough for every built-in workload.
	ProxyReconcileScan int
	// StreamChunkBytes, when positive, puts every LBL proxy on the
	// chunked-streaming request path (core.LBLConfig.StreamChunkBytes):
	// access tables cross the WAN in sealed chunks of about this many
	// bytes as they are built, overlapping garbling with transmission.
	StreamChunkBytes int
	// Admission, when non-nil, installs deadline-aware admission
	// control on every shard server and (in multi-proxy deployments)
	// every proxy front end: bounded concurrency, LIFO queueing under
	// saturation, constant-size busy rejections. The overload
	// experiment drives a cluster configured this way far past
	// capacity.
	Admission *transport.AdmissionConfig
}

// DurabilityConfig makes shard stores durable and crashable. Each
// shard gets its own crashfs disk seeded with Seed+shard so runs are
// reproducible.
type DurabilityConfig struct {
	// Policy is the WAL fsync policy (kvstore.SyncNever /
	// SyncInterval / SyncGroupCommit).
	Policy kvstore.SyncPolicy
	// SyncInterval is the background fsync cadence for SyncInterval.
	SyncInterval time.Duration
	// CheckpointInterval starts background checkpoints when positive.
	CheckpointInterval time.Duration
	// Seed seeds the per-shard fault PRNGs.
	Seed uint64
	// TornWriteProb is the probability a crash tears the first
	// dropped write mid-buffer.
	TornWriteProb float64
	// ReconcileScan bounds the proxies' counter-reconciliation probe
	// spiral after a crash (0 disables recovery, the §5.3.1 behavior).
	ReconcileScan int
}

// A Cluster is a running deployment: servers, proxies, and the routing
// needed to access any key.
type Cluster struct {
	cfg    Config
	shards []*shard

	// Multi-proxy deployments only (Config.Proxies > 0, proxies.go).
	prf     *prf.PRF // shared proxy secret — all peers derive identical labels
	proxies []*proxyNode
	router  *core.Router
}

type shard struct {
	rpc      *transport.Client
	accessor core.Accessor

	// listener is swapped on Restart; the client pool's dial closure
	// reads it, so reconnects find the reborn server.
	listener atomic.Pointer[netsim.Listener]

	auds clusterAuditors

	mu       sync.Mutex // guards the restartable fields below
	store    *kvstore.Store
	lblSrv   *core.LBLServer
	srv      *transport.Server
	stopCkpt func()

	// Durable shards only.
	fsys     *crashfs.FS
	stateDir string
	dur      *DurabilityConfig
	link     netsim.Link
	replayed int64 // WAL records replayed across all restarts

	// admission, when non-nil, is reapplied to rebuilt servers on
	// Restart so a recovered shard keeps shedding overload.
	admission *transport.AdmissionConfig
}

// NewCluster builds, loads, and connects a deployment.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ConnsPerShard <= 0 {
		cfg.ConnsPerShard = 32
	}
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("harness: ValueSize must be positive")
	}
	if cfg.Durability != nil && cfg.System != SystemLBL {
		return nil, fmt.Errorf("harness: Durability requires %s (got %s)", SystemLBL, cfg.System)
	}
	if cfg.Proxies > 0 {
		if cfg.System != SystemLBL {
			return nil, fmt.Errorf("harness: Proxies requires %s (got %s)", SystemLBL, cfg.System)
		}
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("harness: Proxies requires a single shard (got %d)", cfg.Shards)
		}
	}
	c := &Cluster{cfg: cfg}
	auds := clusterAuditors{
		server: obs.NewShapeAuditor(cfg.Metrics, "server"),
		proxy:  obs.NewShapeAuditor(cfg.Metrics, "proxy"),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(cfg, i, auds)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.shards = append(c.shards, sh)
	}
	if cfg.Proxies > 0 {
		if err := c.buildProxies(cfg, c.shards[0]); err != nil {
			c.Close()
			return nil, err
		}
	}
	if err := c.load(cfg.Data); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// clusterAuditors is the per-process shape-auditor pair every shard's
// transport endpoints share: one deployment, one violations counter
// per side.
type clusterAuditors struct {
	server *obs.ShapeAuditor
	proxy  *obs.ShapeAuditor
}

func newShard(cfg Config, idx int, auds clusterAuditors) (*shard, error) {
	sh := &shard{link: cfg.Link, dur: cfg.Durability, auds: auds, admission: cfg.Admission}
	ok := false
	defer func() {
		if !ok {
			if sh.stopCkpt != nil {
				sh.stopCkpt()
			}
			if sh.rpc != nil {
				sh.rpc.Close()
			}
			if sh.srv != nil {
				sh.srv.Close()
			}
			if sh.store != nil {
				sh.store.DetachWAL() //nolint:errcheck
			}
		}
	}()
	store := kvstore.New()
	if d := cfg.Durability; d != nil {
		// Durable shards skip store instrumentation: restarts replace
		// the store, and re-registering its gauges would double-count.
		sh.fsys = crashfs.New(&crashfs.Plan{Seed: d.Seed + uint64(idx), TornWriteProb: d.TornWriteProb})
		sh.stateDir = "state"
		if err := store.Recover(sh.stateDir, kvstore.DurabilityOptions{
			Policy: d.Policy, SyncInterval: d.SyncInterval, FS: sh.fsys,
		}); err != nil {
			return nil, err
		}
		if d.CheckpointInterval > 0 {
			sh.stopCkpt = store.StartCheckpoints(d.CheckpointInterval)
		}
	} else {
		store.Instrument(cfg.Metrics)
	}
	sh.store = store
	srv := transport.NewServer()
	srv.Instrument(cfg.Metrics)
	srv.AuditShape(auds.server, core.ShapeClassify)
	if cfg.Metrics != nil && cfg.TraceBuffer > 0 {
		srv.SetTracer(cfg.Metrics.Tracer("server", cfg.TraceBuffer))
	}
	if cfg.Admission != nil {
		srv.LimitAdmission(*cfg.Admission)
	}
	listener := netsim.Listen(cfg.Link)
	go srv.Serve(listener) //nolint:errcheck // returns on Close
	sh.srv = srv
	sh.listener.Store(listener)

	topts := cfg.Transport
	topts.PoolSize = cfg.ConnsPerShard
	dial := listener.Dial
	if cfg.Durability != nil {
		// Indirect through the listener pointer so reconnects after a
		// Restart reach the replacement server.
		dial = func() (net.Conn, error) { return sh.listener.Load().Dial() }
	}
	client, err := transport.DialOptions(dial, topts)
	if err != nil {
		return nil, err
	}
	client.Instrument(cfg.Metrics)
	client.AuditShape(auds.proxy, core.ShapeClassify)
	if cfg.Metrics != nil && cfg.TraceBuffer > 0 {
		client.SetTracer(cfg.Metrics.Tracer("proxy", cfg.TraceBuffer))
	}
	sh.rpc = client

	switch cfg.System {
	case SystemLBL:
		lblSrv := core.NewLBLServer(store)
		lblSrv.Instrument(cfg.Metrics)
		lblSrv.Register(srv)
		lcfg := core.LBLConfig{ValueSize: cfg.ValueSize, Mode: cfg.LBLMode, StreamChunkBytes: cfg.StreamChunkBytes}
		if cfg.Durability != nil {
			lcfg.ReconcileScan = cfg.Durability.ReconcileScan
		}
		proxy, err := core.NewLBLProxy(lcfg, prf.NewRandom(), client)
		if err != nil {
			return nil, err
		}
		proxy.Instrument(cfg.Metrics)
		if cfg.Metrics != nil && cfg.TraceBuffer > 0 {
			proxy.TraceWith(cfg.Metrics.Tracer("proxy", cfg.TraceBuffer))
		}
		sh.accessor = proxy
		sh.lblSrv = lblSrv
	case SystemTEE:
		teeSrv, err := core.NewTEEServer(store, cfg.EnclaveTransition)
		if err != nil {
			return nil, err
		}
		teeSrv.Instrument(cfg.Metrics)
		teeSrv.Register(srv)
		teeClient, err := core.NewTEEClient(core.TEEConfig{ValueSize: cfg.ValueSize}, prf.NewRandom(), secretbox.NewRandomKey(), client)
		if err != nil {
			return nil, err
		}
		if err := teeClient.AttestAndProvision(teeSrv.Enclave()); err != nil {
			return nil, err
		}
		teeClient.Instrument(cfg.Metrics)
		sh.accessor = teeClient
	case SystemBaseline:
		core.NewBaselineServer(store).Register(srv)
		proxy, err := core.NewBaselineProxy(core.BaselineConfig{ValueSize: cfg.ValueSize}, prf.NewRandom(), secretbox.NewRandomKey(), client)
		if err != nil {
			return nil, err
		}
		sh.accessor = proxy
	default:
		return nil, fmt.Errorf("harness: unknown system %q", cfg.System)
	}
	ok = true
	return sh, nil
}

// Restart crash-kills shard i's server — no flush, open handles die,
// unsynced disk state resolves per the crash plan — then recovers a
// replacement from the surviving WAL + snapshot and points the proxy's
// connection pool at it. In-flight calls fail over the proxy's
// ambiguity/pending machinery; acknowledged writes survive per the
// fsync policy's contract. Requires Config.Durability.
func (c *Cluster) Restart(i int) error {
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("harness: no shard %d", i)
	}
	sh := c.shards[i]
	if sh.fsys == nil {
		return fmt.Errorf("harness: shard %d is not durable (Config.Durability unset)", i)
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.stopCkpt != nil {
		sh.stopCkpt()
		sh.stopCkpt = nil
	}
	sh.srv.Close() //nolint:errcheck // best-effort kill
	sh.fsys.Crash()

	store := kvstore.New()
	if err := store.Recover(sh.stateDir, kvstore.DurabilityOptions{
		Policy: sh.dur.Policy, SyncInterval: sh.dur.SyncInterval, FS: sh.fsys,
	}); err != nil {
		return fmt.Errorf("harness: recovering shard %d: %w", i, err)
	}
	sh.replayed += sh.store.WALReplayed() // retire the dead store's count
	lblSrv := core.NewLBLServer(store)
	srv := transport.NewServer()
	srv.AuditShape(sh.auds.server, core.ShapeClassify)
	if sh.admission != nil {
		srv.LimitAdmission(*sh.admission)
	}
	lblSrv.Register(srv)
	listener := netsim.Listen(sh.link)
	go srv.Serve(listener) //nolint:errcheck // returns on Close
	sh.store, sh.lblSrv, sh.srv = store, lblSrv, srv
	sh.listener.Store(listener)
	if sh.dur.CheckpointInterval > 0 {
		sh.stopCkpt = store.StartCheckpoints(sh.dur.CheckpointInterval)
	}
	return nil
}

// WALReplayedTotal sums WAL records replayed during recoveries across
// all shards and restarts.
func (c *Cluster) WALReplayedTotal() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.replayed + sh.store.WALReplayed()
		sh.mu.Unlock()
	}
	return n
}

// DiskStats aggregates crash-fault statistics across the shards'
// simulated disks (zero value for non-durable clusters).
func (c *Cluster) DiskStats() crashfs.Stats {
	var total crashfs.Stats
	for _, sh := range c.shards {
		if sh.fsys == nil {
			continue
		}
		st := sh.fsys.Stats()
		total.WriteErrs += st.WriteErrs
		total.SyncErrs += st.SyncErrs
		total.Crashes += st.Crashes
		total.TornWrites += st.TornWrites
		total.DroppedWrites += st.DroppedWrites
		total.DroppedOps += st.DroppedOps
	}
	return total
}

// Checkpoint forces shard i's store to checkpoint now — durable
// snapshot plus WAL rotation — giving crash tests a known durable
// baseline. Requires Config.Durability.
func (c *Cluster) Checkpoint(i int) error {
	if i < 0 || i >= len(c.shards) {
		return fmt.Errorf("harness: no shard %d", i)
	}
	sh := c.shards[i]
	if sh.fsys == nil {
		return fmt.Errorf("harness: shard %d is not durable (Config.Durability unset)", i)
	}
	sh.mu.Lock()
	store := sh.store
	sh.mu.Unlock()
	return store.Checkpoint()
}

// Generations returns each shard's committed checkpoint generation.
func (c *Cluster) Generations() []uint64 {
	gens := make([]uint64, len(c.shards))
	for i, sh := range c.shards {
		sh.mu.Lock()
		gens[i] = sh.store.Generation()
		sh.mu.Unlock()
	}
	return gens
}

// recordBuilder is implemented by every trusted-side protocol client.
type recordBuilder interface {
	BuildRecord(key string, value []byte) (string, []byte, error)
}

// load encodes and installs the initial database, building records in
// parallel (record building is PRF/AES-heavy for LBL).
func (c *Cluster) load(data map[string][]byte) error {
	type kv struct{ k, v string }
	keys := make([]kv, 0, len(data))
	for k, v := range data {
		keys = append(keys, kv{k, string(v)})
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []kv) {
			defer wg.Done()
			for _, e := range part {
				sh := c.shardFor(e.k)
				builder, ok := sh.accessor.(recordBuilder)
				if !ok {
					errc <- fmt.Errorf("harness: %T cannot build records", sh.accessor)
					return
				}
				ek, rec, err := builder.BuildRecord(e.k, []byte(e.v))
				if err != nil {
					errc <- fmt.Errorf("harness: building record for %q: %w", e.k, err)
					return
				}
				if err := sh.store.Put(ek, rec); err != nil {
					errc <- fmt.Errorf("harness: loading %q: %w", e.k, err)
					return
				}
			}
		}(keys[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

func (c *Cluster) shardFor(key string) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Access routes one operation to the owning shard — or, in a
// multi-proxy deployment, through the failover router to the proxy
// owning the key's counter range.
func (c *Cluster) Access(op core.Op, key string, value []byte) ([]byte, core.AccessStats, error) {
	if c.router != nil {
		return c.router.Access(op, key, value)
	}
	return c.shardFor(key).Access(op, key, value)
}

func (s *shard) Access(op core.Op, key string, value []byte) ([]byte, core.AccessStats, error) {
	return s.accessor.Access(op, key, value)
}

// TrafficStats aggregates proxy→server traffic across shards and, in
// multi-proxy deployments, across the proxy fleet's server pools.
func (c *Cluster) TrafficStats() transport.Stats {
	var total transport.Stats
	add := func(st transport.Stats) {
		total.BytesSent += st.BytesSent
		total.BytesReceived += st.BytesReceived
		total.Calls += st.Calls
	}
	for _, sh := range c.shards {
		add(sh.rpc.Stats())
	}
	for _, pn := range c.proxies {
		pn.mu.Lock()
		add(pn.rpc.Stats())
		pn.mu.Unlock()
	}
	return total
}

// AdmissionStats sums admission-control counters across shard servers
// and live proxy front ends (zero value when Config.Admission is
// unset).
func (c *Cluster) AdmissionStats() transport.AdmissionStats {
	var total transport.AdmissionStats
	add := func(st transport.AdmissionStats) {
		total.QueueDepth += st.QueueDepth
		total.Shed += st.Shed
		total.Expired += st.Expired
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		add(sh.srv.AdmissionStats())
		sh.mu.Unlock()
	}
	for _, pn := range c.proxies {
		pn.mu.Lock()
		if !pn.down {
			add(pn.front.AdmissionStats())
		}
		pn.mu.Unlock()
	}
	return total
}

// ServerBytes returns total server-side storage, for §5.3.1 reporting.
func (c *Cluster) ServerBytes() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.store.Bytes()
		sh.mu.Unlock()
	}
	return n
}

// Shards returns the number of proxy/server pairs.
func (c *Cluster) Shards() int { return len(c.shards) }

// Close tears down all connections, servers, and checkpointers.
func (c *Cluster) Close() {
	c.closeProxies()
	for _, sh := range c.shards {
		if sh == nil {
			continue
		}
		if sh.rpc != nil {
			sh.rpc.Close()
		}
		sh.mu.Lock()
		if sh.stopCkpt != nil {
			sh.stopCkpt()
			sh.stopCkpt = nil
		}
		if sh.srv != nil {
			sh.srv.Close()
		}
		if sh.store != nil {
			sh.store.DetachWAL() //nolint:errcheck // best-effort flush
		}
		sh.mu.Unlock()
	}
}
