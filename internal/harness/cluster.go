// Package harness deploys in-process ORTOA clusters over simulated WAN
// links and runs the paper's experiments (§6). Each figure/table of
// the evaluation has a runner that produces the same rows/series the
// paper reports; cmd/ortoa-bench and the repository-root benchmarks
// drive them.
package harness

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/crypto/secretbox"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// System identifies a protocol under test.
type System string

// Systems of the evaluation.
const (
	SystemLBL      System = "LBL-ORTOA"
	SystemTEE      System = "TEE-ORTOA"
	SystemBaseline System = "2RTT"
)

// Config describes one cluster deployment.
type Config struct {
	// System selects the protocol.
	System System
	// Link is the proxy↔server network path (clients are colocated
	// with the proxy, as in the paper's California placement).
	Link netsim.Link
	// ValueSize is the fixed value length in bytes (paper default
	// 160 B).
	ValueSize int
	// Data is the initial database. Every key in it is accessible.
	Data map[string][]byte
	// Shards is the number of proxy/server pairs (Fig 3a); keys are
	// hash-partitioned across them. Zero means 1.
	Shards int
	// LBLMode selects the LBL variant (default point-and-permute, the
	// configuration of the paper's cost analysis).
	LBLMode core.LBLMode
	// EnclaveTransition is the simulated ecall overhead for TEE.
	EnclaveTransition time.Duration
	// ConnsPerShard sizes the proxy→server connection pool. Zero
	// means one per expected concurrent client (set by Run).
	ConnsPerShard int
	// Transport tunes the proxy→server clients' fault tolerance
	// (per-call deadlines, at-most-once retries, reconnect backoff).
	// PoolSize is ignored — ConnsPerShard wins. The zero value keeps
	// the historical behavior: no deadline, no retries.
	Transport transport.Options
	// Metrics, when non-nil, instruments every shard's store,
	// transport, and protocol sides against one shared registry (series
	// aggregate across shards). The stages experiment uses it to read
	// per-stage latency breakdowns.
	Metrics *obs.Registry
}

// A Cluster is a running deployment: servers, proxies, and the routing
// needed to access any key.
type Cluster struct {
	cfg     Config
	shards  []*shard
	servers []*transport.Server
}

type shard struct {
	store    *kvstore.Store
	rpc      *transport.Client
	accessor core.Accessor
	lblSrv   *core.LBLServer
}

// NewCluster builds, loads, and connects a deployment.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.ConnsPerShard <= 0 {
		cfg.ConnsPerShard = 32
	}
	if cfg.ValueSize <= 0 {
		return nil, fmt.Errorf("harness: ValueSize must be positive")
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		sh, srv, err := newShard(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.shards = append(c.shards, sh)
		c.servers = append(c.servers, srv)
	}
	if err := c.load(cfg.Data); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

func newShard(cfg Config) (*shard, *transport.Server, error) {
	store := kvstore.New()
	store.Instrument(cfg.Metrics)
	srv := transport.NewServer()
	srv.Instrument(cfg.Metrics)
	listener := netsim.Listen(cfg.Link)
	go srv.Serve(listener) //nolint:errcheck // returns on Close

	topts := cfg.Transport
	topts.PoolSize = cfg.ConnsPerShard
	client, err := transport.DialOptions(listener.Dial, topts)
	if err != nil {
		return nil, nil, err
	}
	client.Instrument(cfg.Metrics)
	sh := &shard{store: store, rpc: client}

	switch cfg.System {
	case SystemLBL:
		lblSrv := core.NewLBLServer(store)
		lblSrv.Instrument(cfg.Metrics)
		lblSrv.Register(srv)
		proxy, err := core.NewLBLProxy(core.LBLConfig{ValueSize: cfg.ValueSize, Mode: cfg.LBLMode}, prf.NewRandom(), client)
		if err != nil {
			return nil, nil, err
		}
		proxy.Instrument(cfg.Metrics)
		sh.accessor = proxy
		sh.lblSrv = lblSrv
	case SystemTEE:
		teeSrv, err := core.NewTEEServer(store, cfg.EnclaveTransition)
		if err != nil {
			return nil, nil, err
		}
		teeSrv.Instrument(cfg.Metrics)
		teeSrv.Register(srv)
		teeClient, err := core.NewTEEClient(core.TEEConfig{ValueSize: cfg.ValueSize}, prf.NewRandom(), secretbox.NewRandomKey(), client)
		if err != nil {
			return nil, nil, err
		}
		if err := teeClient.AttestAndProvision(teeSrv.Enclave()); err != nil {
			return nil, nil, err
		}
		teeClient.Instrument(cfg.Metrics)
		sh.accessor = teeClient
	case SystemBaseline:
		core.NewBaselineServer(store).Register(srv)
		proxy, err := core.NewBaselineProxy(core.BaselineConfig{ValueSize: cfg.ValueSize}, prf.NewRandom(), secretbox.NewRandomKey(), client)
		if err != nil {
			return nil, nil, err
		}
		sh.accessor = proxy
	default:
		return nil, nil, fmt.Errorf("harness: unknown system %q", cfg.System)
	}
	return sh, srv, nil
}

// recordBuilder is implemented by every trusted-side protocol client.
type recordBuilder interface {
	BuildRecord(key string, value []byte) (string, []byte, error)
}

// load encodes and installs the initial database, building records in
// parallel (record building is PRF/AES-heavy for LBL).
func (c *Cluster) load(data map[string][]byte) error {
	type kv struct{ k, v string }
	keys := make([]kv, 0, len(data))
	for k, v := range data {
		keys = append(keys, kv{k, string(v)})
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(keys) {
		workers = len(keys)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(part []kv) {
			defer wg.Done()
			for _, e := range part {
				sh := c.shardFor(e.k)
				builder, ok := sh.accessor.(recordBuilder)
				if !ok {
					errc <- fmt.Errorf("harness: %T cannot build records", sh.accessor)
					return
				}
				ek, rec, err := builder.BuildRecord(e.k, []byte(e.v))
				if err != nil {
					errc <- fmt.Errorf("harness: building record for %q: %w", e.k, err)
					return
				}
				sh.store.Put(ek, rec)
			}
		}(keys[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

func (c *Cluster) shardFor(key string) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Access routes one operation to the owning shard.
func (c *Cluster) Access(op core.Op, key string, value []byte) ([]byte, core.AccessStats, error) {
	return c.shardFor(key).Access(op, key, value)
}

func (s *shard) Access(op core.Op, key string, value []byte) ([]byte, core.AccessStats, error) {
	return s.accessor.Access(op, key, value)
}

// TrafficStats aggregates proxy→server traffic across shards.
func (c *Cluster) TrafficStats() transport.Stats {
	var total transport.Stats
	for _, sh := range c.shards {
		st := sh.rpc.Stats()
		total.BytesSent += st.BytesSent
		total.BytesReceived += st.BytesReceived
		total.Calls += st.Calls
	}
	return total
}

// ServerBytes returns total server-side storage, for §5.3.1 reporting.
func (c *Cluster) ServerBytes() int64 {
	var n int64
	for _, sh := range c.shards {
		n += sh.store.Bytes()
	}
	return n
}

// Shards returns the number of proxy/server pairs.
func (c *Cluster) Shards() int { return len(c.shards) }

// Close tears down all connections and servers.
func (c *Cluster) Close() {
	for _, sh := range c.shards {
		if sh != nil && sh.rpc != nil {
			sh.rpc.Close()
		}
	}
	for _, srv := range c.servers {
		srv.Close()
	}
}
