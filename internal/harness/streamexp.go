package harness

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// This file implements the "stream" experiment: the chunked-streaming
// request path (core.LBLConfig.StreamChunkBytes) against the
// monolithic single-frame path, over a WAN link calibrated so table
// garbling and wire transmission cost about the same — the regime
// where pipelining the build against the wire pays the most. The
// experiment self-audits: it fails unless streaming wins by the gate
// factor, unless streamed request frames stay bounded by the chunk
// budget, and unless the shape auditors see zero length violations,
// including through the mid-stream fault drill.

// streamChunksTarget is how many chunks one access table spans.
const streamChunksTarget = 16

// streamSpeedupGate / streamSpeedupGateQuick are the self-audit
// thresholds on monolithic/streamed end-to-end latency. A perfectly
// pipelined stream on the calibrated link approaches (2b+r)/(b+b/n+r)
// ≈ 1.7x; the gates leave room for scheduler noise and the chunked
// build's smaller per-chunk worker fan-out.
const (
	streamSpeedupGate      = 1.3
	streamSpeedupGateQuick = 1.2
)

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// calibrateStreamLink measures the host's table-build time for cfg
// (full worker fan-out, as in production) and returns a link whose
// bandwidth puts one table on the wire in about one build time, with a
// quarter-build RTT. On this link the monolithic path pays
// build + transmit serially; a pipelined stream pays roughly
// max(build, transmit).
func calibrateStreamLink(cfg core.LBLConfig) (netsim.Link, time.Duration, error) {
	k, err := core.NewTableBuildKernel(cfg, runtime.GOMAXPROCS(0))
	if err != nil {
		return netsim.Link{}, 0, err
	}
	if err := k.Op(); err != nil { // warm pools and page the table in
		return netsim.Link{}, 0, err
	}
	const samples = 3
	start := time.Now()
	for i := 0; i < samples; i++ {
		if err := k.Op(); err != nil {
			return netsim.Link{}, 0, err
		}
	}
	build := time.Since(start) / samples
	if build < 100*time.Microsecond {
		build = 100 * time.Microsecond
	}
	bw := int64(float64(cfg.TableBytes()) / build.Seconds())
	return netsim.Link{RTT: build / 4, Bandwidth: bw}, build, nil
}

// streamRun is one measured path of the experiment.
type streamRun struct {
	perOp    time.Duration // mean end-to-end access latency
	maxFrame int           // largest access request frame the server saw
	frames   int           // access request frames per access
}

// runStreamPath deploys one proxy/server pair over link and measures
// rounds sequential accesses. A cfg with StreamChunkBytes > 0 selects
// the streaming path; 0 the monolithic one. The deployment's shape
// auditors must come back clean.
func runStreamPath(cfg core.LBLConfig, rounds int, link netsim.Link) (streamRun, error) {
	var run streamRun
	reg := obs.NewRegistry()
	store := kvstore.New()
	serverTS := transport.NewServer()
	serverTS.AuditShape(obs.NewShapeAuditor(reg, "server"), core.ShapeClassify)
	core.RegisterLoader(serverTS, store)
	core.NewLBLServer(store).Register(serverTS)
	ln := netsim.Listen(link)
	go serverTS.Serve(ln) //nolint:errcheck // returns on Close
	defer serverTS.Close()

	rpc, err := transport.Dial(ln.Dial, 2)
	if err != nil {
		return run, err
	}
	defer rpc.Close()
	rpc.AuditShape(obs.NewShapeAuditor(reg, "proxy"), core.ShapeClassify)
	proxy, err := core.NewLBLProxy(cfg, prf.NewRandom(), rpc)
	if err != nil {
		return run, err
	}
	ek, rec, err := proxy.BuildRecord("stream-key", make([]byte, cfg.ValueSize))
	if err != nil {
		return run, err
	}
	if err := core.BulkLoad(rpc, []core.KV{{Key: ek, Record: rec}}); err != nil {
		return run, err
	}

	var mu sync.Mutex
	accessFrames := 0
	serverTS.SetObserver(func(msgType byte, reqLen, respLen int) {
		if msgType != core.MsgLBLAccess && msgType != core.MsgLBLAccessStream {
			return
		}
		mu.Lock()
		accessFrames++
		if reqLen > run.maxFrame {
			run.maxFrame = reqLen
		}
		mu.Unlock()
	})

	if _, _, err := proxy.Access(core.OpRead, "stream-key", nil); err != nil { // warm
		return run, err
	}
	mu.Lock()
	accessFrames = 0
	mu.Unlock()
	value := make([]byte, cfg.ValueSize)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if i%2 == 0 {
			value[0] = byte(i)
			if _, _, err := proxy.Access(core.OpWrite, "stream-key", value); err != nil {
				return run, fmt.Errorf("access %d: %w", i, err)
			}
		} else {
			got, _, err := proxy.Access(core.OpRead, "stream-key", nil)
			if err != nil {
				return run, fmt.Errorf("access %d: %w", i, err)
			}
			if !bytes.Equal(got, value) {
				return run, fmt.Errorf("access %d: read back wrong value", i)
			}
		}
	}
	run.perOp = time.Since(start) / time.Duration(rounds)
	mu.Lock()
	run.frames = accessFrames / rounds
	mu.Unlock()
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		return run, fmt.Errorf("obliviousness shape violations: proxy=%d server=%d", vp, vs)
	}
	return run, nil
}

// streamFaultDrill runs a sequential streamed workload through random
// connection resets (streams dying mid-chunk) and verifies the
// ambiguity machinery: every read observes a value the write history
// could have produced, the final state loses no acknowledged write,
// and the shape auditors stay clean through every fault.
func streamFaultDrill(cfg core.LBLConfig, accesses int) (resets int64, failed int, err error) {
	plan := &netsim.FaultPlan{Seed: 11, ResetProb: 0.05, MaxFaults: 8}
	plan.SetActive(false)
	reg := obs.NewRegistry()
	store := kvstore.New()
	serverTS := transport.NewServer()
	serverTS.AuditShape(obs.NewShapeAuditor(reg, "server"), core.ShapeClassify)
	core.RegisterLoader(serverTS, store)
	core.NewLBLServer(store).Register(serverTS)
	ln := netsim.Listen(netsim.Link{Fault: plan})
	go serverTS.Serve(ln) //nolint:errcheck // returns on Close
	defer serverTS.Close()

	rpc, err := transport.Dial(ln.Dial, 2)
	if err != nil {
		return 0, 0, err
	}
	defer rpc.Close()
	rpc.AuditShape(obs.NewShapeAuditor(reg, "proxy"), core.ShapeClassify)
	proxy, err := core.NewLBLProxy(cfg, prf.NewRandom(), rpc)
	if err != nil {
		return 0, 0, err
	}
	initial := make([]byte, cfg.ValueSize)
	ek, rec, err := proxy.BuildRecord("fault-key", initial)
	if err != nil {
		return 0, 0, err
	}
	if err := core.BulkLoad(rpc, []core.KV{{Key: ek, Record: rec}}); err != nil {
		return 0, 0, err
	}

	plan.SetActive(true)
	// possible tracks every value the key may hold: an ambiguous write
	// (stream cut after the table reached the server, or the response
	// lost) may or may not have applied; a successful access collapses
	// the set to what it observed or wrote.
	possible := map[string]bool{string(initial): true}
	// A failed access usually means the reset killed the pooled
	// connections; pausing briefly lets the background redial land so
	// the drill spends its accesses on live streams, not dead sockets.
	backoff := func() { time.Sleep(20 * time.Millisecond) }
	for i := 0; i < accesses; i++ {
		if i%3 == 2 {
			got, _, rerr := proxy.Access(core.OpRead, "fault-key", nil)
			if rerr != nil {
				failed++
				backoff()
				continue
			}
			if !possible[string(got)] {
				return 0, 0, fmt.Errorf("access %d read a value outside the possible set", i)
			}
			possible = map[string]bool{string(got): true}
			continue
		}
		v := make([]byte, cfg.ValueSize)
		v[0], v[1] = byte(i+1), byte(i>>8)
		if _, _, werr := proxy.Access(core.OpWrite, "fault-key", v); werr != nil {
			failed++
			if transport.Ambiguous(werr) {
				possible[string(v)] = true
			}
			backoff()
			continue
		}
		possible = map[string]bool{string(v): true}
	}
	plan.SetActive(false)

	// Final verification on a healthy network; the retry loop gives the
	// pool's background redial (exponential backoff) time to restore
	// connections killed by the last reset.
	var got []byte
	for attempt := 0; ; attempt++ {
		var rerr error
		got, _, rerr = proxy.Access(core.OpRead, "fault-key", nil)
		if rerr == nil {
			break
		}
		if attempt == 40 {
			return 0, 0, fmt.Errorf("final read after fault drill: %w", rerr)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !possible[string(got)] {
		return 0, 0, fmt.Errorf("final value outside the possible set: an acknowledged write was lost or a ghost write applied")
	}
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		return 0, 0, fmt.Errorf("obliviousness shape violations under faults: proxy=%d server=%d", vp, vs)
	}
	return plan.Stats().Resets, failed, nil
}

// StreamBench is the bench experiment's streamed-vs-monolithic
// end-to-end point (BenchReport.Stream). It is additive: the bench
// regression gate reads only the kernel sections, so baselines
// written before this section exist stay comparable.
type StreamBench struct {
	ValueSize     int     `json:"value_size"`
	Chunks        int     `json:"chunks"`
	ChunkBytes    int     `json:"chunk_bytes"`
	BandwidthBps  int64   `json:"link_bandwidth_bps"`
	RTTMillis     float64 `json:"link_rtt_ms"`
	MonoMsPerOp   float64 `json:"monolithic_ms_per_op"`
	StreamMsPerOp float64 `json:"streamed_ms_per_op"`
	Speedup       float64 `json:"speedup"`
}

// measureStreamBench runs the calibrated monolithic-vs-streamed pair
// at valueSize and returns the machine-readable point.
func measureStreamBench(valueSize, rounds int) (StreamBench, error) {
	mono := core.LBLConfig{ValueSize: valueSize, Mode: core.LBLPointPermute}
	streamed := mono
	streamed.StreamChunkBytes = (mono.TableBytes() + streamChunksTarget - 1) / streamChunksTarget
	link, _, err := calibrateStreamLink(mono)
	if err != nil {
		return StreamBench{}, err
	}
	monoRun, err := runStreamPath(mono, rounds, link)
	if err != nil {
		return StreamBench{}, fmt.Errorf("monolithic path: %w", err)
	}
	strRun, err := runStreamPath(streamed, rounds, link)
	if err != nil {
		return StreamBench{}, fmt.Errorf("streamed path: %w", err)
	}
	return StreamBench{
		ValueSize:     valueSize,
		Chunks:        strRun.frames - 2, // begin + chunks + end
		ChunkBytes:    streamed.StreamChunkBytes,
		BandwidthBps:  link.Bandwidth,
		RTTMillis:     float64(link.RTT) / 1e6,
		MonoMsPerOp:   float64(monoRun.perOp) / 1e6,
		StreamMsPerOp: float64(strRun.perOp) / 1e6,
		Speedup:       float64(monoRun.perOp) / float64(strRun.perOp),
	}, nil
}

// Stream measures the chunked-streaming request path against the
// monolithic one at large values over a calibrated WAN link, then
// drives the streamed path through a mid-stream fault drill.
func Stream(opt Options) (*Table, error) {
	valueSize := 64 << 10 // 64 KiB values: ~33 MiB tables, past the Fig 3b sweep's far end
	rounds := 5
	gate := streamSpeedupGate
	if opt.Quick {
		valueSize = 4 << 10
		rounds = 4
		gate = streamSpeedupGateQuick
	}
	if opt.Ops > 0 {
		rounds = opt.Ops
	}

	mono := core.LBLConfig{ValueSize: valueSize, Mode: core.LBLPointPermute}
	streamed := mono
	streamed.StreamChunkBytes = (mono.TableBytes() + streamChunksTarget - 1) / streamChunksTarget

	link, build, err := calibrateStreamLink(mono)
	if err != nil {
		return nil, err
	}
	monoRun, err := runStreamPath(mono, rounds, link)
	if err != nil {
		return nil, fmt.Errorf("monolithic path: %w", err)
	}
	strRun, err := runStreamPath(streamed, rounds, link)
	if err != nil {
		return nil, fmt.Errorf("streamed path: %w", err)
	}
	speedup := float64(monoRun.perOp) / float64(strRun.perOp)

	// Framing witnesses: the monolithic path must cross as one frame
	// per access, the streamed path as begin + chunks + end, and no
	// streamed request frame may exceed the chunk budget plus its fixed
	// headers — that bound is what caps per-stream buffering on both
	// ends instead of a whole-table frame.
	if monoRun.frames != 1 {
		return nil, fmt.Errorf("harness: monolithic path crossed as %d frames per access, want 1", monoRun.frames)
	}
	if strRun.frames < 3 {
		return nil, fmt.Errorf("harness: streamed path crossed as %d frames per access; streaming did not engage", strRun.frames)
	}
	frameBound := streamed.StreamChunkBytes + 64
	if strRun.maxFrame > frameBound {
		return nil, fmt.Errorf("harness: streamed request frame %dB exceeds chunk budget bound %dB",
			strRun.maxFrame, frameBound)
	}

	// Mid-stream fault drill on a small streamed config: the ambiguity
	// machinery is size-independent, and faults on 33 MiB tables would
	// only be slow.
	drill := core.LBLConfig{ValueSize: 512, Mode: core.LBLPointPermute}
	drill.StreamChunkBytes = drill.TableBytes() / 4
	drillAccesses := 60
	if opt.Quick {
		drillAccesses = 30
	}
	resets, failed, err := streamFaultDrill(drill, drillAccesses)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID: "stream",
		Title: fmt.Sprintf("Chunk-streamed table build pipelined against the wire (%d KiB values, point-permute, calibrated WAN)",
			valueSize>>10),
		Columns: []string{"path", "frames/op", "ms/op", "speedup", "max-req-frame"},
	}
	t.AddRow("monolithic", fmt.Sprint(monoRun.frames), fmtMSf(int64(monoRun.perOp)), "1.00x",
		fmtBytes(int64(monoRun.maxFrame)))
	t.AddRow("streamed", fmt.Sprint(strRun.frames), fmtMSf(int64(strRun.perOp)),
		fmt.Sprintf("%.2fx", speedup), fmtBytes(int64(strRun.maxFrame)))
	t.Notes = append(t.Notes,
		fmt.Sprintf("link calibrated to this host: table build %s, bandwidth %s/s (one table ≈ one build time on the wire), RTT %s",
			build.Round(time.Microsecond), fmtBytes(link.Bandwidth), link.RTT.Round(time.Microsecond)),
		fmt.Sprintf("streamed request frames bounded by the %s chunk budget; the monolithic frame carries the whole %s table",
			fmtBytes(int64(streamed.StreamChunkBytes)), fmtBytes(int64(mono.TableBytes()))),
		fmt.Sprintf("fault drill: %d injected connection resets, %d failed accesses, no acknowledged write lost, 0 shape violations",
			resets, failed),
		"netsim meters transmission time without blocking the sender, so build/wire overlap is genuine simulated-clock overlap")
	if speedup < gate {
		return nil, fmt.Errorf("harness: streaming speedup %.2fx below the %.1fx gate (mono %s/op, streamed %s/op)",
			speedup, gate, monoRun.perOp.Round(time.Microsecond), strRun.perOp.Round(time.Microsecond))
	}
	return t, nil
}
