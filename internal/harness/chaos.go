package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/transport"
)

// Chaos runs a mixed LBL read/write workload while the link injects
// connection resets, delivery stalls, blackholed responses, and timed
// partition windows, then switches the faults off and audits every
// key. It is the end-to-end check of the fault-tolerance layer: the
// paper's protocol analysis (§5) assumes the one round trip completes,
// and this experiment is where the repo demonstrates what happens when
// it doesn't.
//
// The audit asserts the two properties a fault must never break:
//
//   - No lost or duplicated writes. Each worker owns a disjoint key
//     set and tracks the set of values a key may legitimately hold —
//     the last confirmed value, plus any write whose outcome the
//     transport left ambiguous. The post-fault read must return a
//     member of that set.
//   - Counter/label-schedule consistency. A read only succeeds if the
//     proxy recognizes every returned label under the key's current
//     counter (§5.4); after recovery every key must read cleanly, so a
//     single double-applied or half-applied round — which would
//     desynchronize the schedule permanently (§5.3.1) — fails the
//     audit as ErrTampered.
//
// Obliviousness under retries is asserted separately by the
// deterministic-fault test in internal/core (the traces here are
// fault-timing dependent); transport retries are op-type blind by
// construction, and the experiment reports the retry/replay counters
// so runs can confirm faults actually exercised that path.
func Chaos(opt Options) (*Table, error) {
	t := &Table{
		ID:    "chaos",
		Title: "Mixed workload under injected transport faults (LBL, at-most-once retries)",
		Columns: []string{"phase", "ops", "ok", "ambiguous", "retries", "reconnects",
			"dedup hits", "rounds parked/settled", "faults (reset/stall/hole/part)"},
	}

	workers := opt.conc()
	const keysPerWorker = 4
	opsPerWorker := opt.ops() * 8

	plan := &netsim.FaultPlan{
		Seed:           42,
		ResetProb:      0.02,
		StallProb:      0.05,
		StallFor:       25 * time.Millisecond,
		BlackholeProb:  0.03,
		PartitionEvery: 400 * time.Millisecond,
		PartitionFor:   60 * time.Millisecond,
	}
	link := netsim.Link{RTT: 2 * time.Millisecond, Fault: plan}

	nKeys := workers * keysPerWorker
	data := make(map[string][]byte, nKeys)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos-%04d", i)
		data[keys[i]] = chaosValue(paperValueSize, uint64(i), 0)
	}

	reg := obs.NewRegistry()
	cluster, err := NewCluster(Config{
		System:        SystemLBL,
		Link:          link,
		ValueSize:     paperValueSize,
		Data:          data,
		LBLMode:       core.LBLPointPermute,
		ConnsPerShard: 4,
		Transport: transport.Options{
			CallTimeout:      150 * time.Millisecond,
			Retry:            transport.RetryPolicy{Attempts: 8, Backoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
			ReconnectBackoff: 5 * time.Millisecond,
		},
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Each worker owns keys [w*keysPerWorker, (w+1)*keysPerWorker) and
	// tracks, per key, every value the key may legitimately hold: the
	// last confirmed value plus writes with unresolved outcomes. A
	// successful read collapses the set to what it returned — after
	// checking membership.
	type keyState struct {
		acceptable map[string]bool
	}
	var (
		mu                          sync.Mutex
		firstFatal                  error
		totalOps, totalOK, totalAmb int64
	)
	states := make([]map[string]*keyState, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(7, uint64(w)))
			own := keys[w*keysPerWorker : (w+1)*keysPerWorker]
			st := make(map[string]*keyState, len(own))
			for _, k := range own {
				st[k] = &keyState{acceptable: map[string]bool{string(data[k]): true}}
			}
			states[w] = st
			var ops, ok, amb int64
			var fatal error
			for i := 0; i < opsPerWorker && fatal == nil; i++ {
				key := own[rng.IntN(len(own))]
				ops++
				if rng.IntN(2) == 0 { // read
					got, _, err := cluster.Access(core.OpRead, key, nil)
					switch {
					case err == nil:
						if !st[key].acceptable[string(got)] {
							fatal = fmt.Errorf("worker %d: read %q returned a value no write produced (lost or duplicated write)", w, key)
							break
						}
						ok++
						st[key].acceptable = map[string]bool{string(got): true}
					case transport.Ambiguous(err):
						amb++ // outcome unknown; reads don't change state
					default:
						fatal = fmt.Errorf("worker %d: read %q: %w", w, key, err)
					}
					continue
				}
				val := chaosValue(paperValueSize, uint64(w*opsPerWorker+i), 1)
				_, _, err := cluster.Access(core.OpWrite, key, val)
				switch {
				case err == nil:
					ok++
					st[key].acceptable = map[string]bool{string(val): true}
				case transport.Ambiguous(err):
					amb++
					st[key].acceptable[string(val)] = true // may or may not have applied
				default:
					fatal = fmt.Errorf("worker %d: write %q: %w", w, key, err)
				}
			}
			mu.Lock()
			totalOps += ops
			totalOK += ok
			totalAmb += amb
			if fatal != nil && firstFatal == nil {
				firstFatal = fatal
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstFatal != nil {
		return nil, fmt.Errorf("harness: chaos workload: %w", firstFatal)
	}

	// Recovery audit on a healthy network: every key must read cleanly
	// (label schedule consistent) and return an acceptable value (no
	// write lost or applied twice). Residual parked rounds are settled
	// by these reads' at-most-once replays.
	plan.SetActive(false)
	var audited int
	for w := 0; w < workers; w++ {
		for key, st := range states[w] {
			got, _, err := cluster.Access(core.OpRead, key, nil)
			if err != nil {
				if errors.Is(err, core.ErrTampered) {
					return nil, fmt.Errorf("harness: chaos audit: %q label schedule desynchronized: %w", key, err)
				}
				return nil, fmt.Errorf("harness: chaos audit: read %q after recovery: %w", key, err)
			}
			if !st.acceptable[string(got)] {
				return nil, fmt.Errorf("harness: chaos audit: %q holds a value no write produced (lost or duplicated write)", key)
			}
			audited++
		}
	}

	retries := reg.Counter("ortoa_transport_client_retries_total", "").Value()
	reconnects := reg.Counter("ortoa_transport_client_reconnects_total", "").Value()
	dedupHits := reg.Counter("ortoa_transport_server_dedup_hits_total", "").Value()
	parked := reg.Counter("ortoa_lbl_pending_rounds_total", "").Value()
	settled := reg.Counter("ortoa_lbl_pending_resolved_total", "").Value()
	fs := plan.Stats()
	faults := fmt.Sprintf("%d/%d/%d/%d", fs.Resets, fs.Stalls, fs.Blackholes, fs.PartitionDrops+fs.DialRefusals)
	counters := fmt.Sprintf("%d/%d", parked, settled)
	t.AddRow("workload", fmt.Sprint(totalOps), fmt.Sprint(totalOK), fmt.Sprint(totalAmb),
		fmt.Sprint(retries), fmt.Sprint(reconnects), fmt.Sprint(dedupHits), counters, faults)
	t.AddRow("audit", fmt.Sprint(audited), fmt.Sprint(audited), "0", "-", "-", "-", "-", "faults off")
	t.Notes = append(t.Notes,
		fmt.Sprintf("audit passed: %d keys consistent after %d injected faults — no lost/duplicated writes, label schedules intact", audited, fs.Total()),
		"ambiguous ops are calls whose outcome the transport could not determine; their parked rounds settle via at-most-once replay on the key's next access")
	if fs.Total() == 0 {
		t.Notes = append(t.Notes, "warning: fault plan injected nothing; increase ops for a meaningful run")
	}
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		return nil, fmt.Errorf("harness: obliviousness shape violations under faults: proxy=%d server=%d", vp, vs)
	}
	t.Notes = append(t.Notes, "shape auditor: 0 length violations on either side — retried and replayed frames stayed byte-identical to first sends")

	if err := chaosMultiProxy(t, opt); err != nil {
		return nil, err
	}
	return t, nil
}

// chaosMultiProxy reruns the fault-injected workload against a 3-proxy
// HA deployment and crash-restarts one proxy mid-run, so transport
// faults, ownership handoff, and epoch-fence adoption all overlap. The
// same two invariants must hold — no lost/duplicated writes, label
// schedules consistent — plus the failover one: zero obliviousness
// shape violations across the handoff.
func chaosMultiProxy(t *Table, opt Options) error {
	workers := opt.conc()
	const keysPerWorker = 4
	opsPerWorker := opt.ops() * 8

	plan := &netsim.FaultPlan{
		Seed:           43,
		ResetProb:      0.02,
		StallProb:      0.05,
		StallFor:       25 * time.Millisecond,
		BlackholeProb:  0.03,
		PartitionEvery: 400 * time.Millisecond,
		PartitionFor:   60 * time.Millisecond,
	}

	nKeys := workers * keysPerWorker
	data := make(map[string][]byte, nKeys)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos-mp-%04d", i)
		data[keys[i]] = chaosValue(paperValueSize, uint64(i), 5)
	}

	reg := obs.NewRegistry()
	cluster, err := NewCluster(Config{
		System:        SystemLBL,
		Link:          netsim.Link{RTT: 2 * time.Millisecond, Fault: plan},
		ValueSize:     paperValueSize,
		Data:          data,
		LBLMode:       core.LBLPointPermute,
		ConnsPerShard: 4,
		Proxies:       3,
		Transport: transport.Options{
			CallTimeout:      150 * time.Millisecond,
			Retry:            transport.RetryPolicy{Attempts: 8, Backoff: 5 * time.Millisecond, MaxBackoff: 100 * time.Millisecond},
			ReconnectBackoff: 5 * time.Millisecond,
		},
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// Crash-restart one proxy halfway through: its ranges are adopted by
	// the survivors under fault injection, then re-adopted back on
	// demand once it returns.
	total := int64(workers * opsPerWorker)
	var done atomic.Int64
	coordErr := make(chan error, 1)
	go func() {
		for done.Load() < total/2 {
			time.Sleep(time.Millisecond)
		}
		coordErr <- cluster.RestartProxy(0)
	}()
	states, totals, werr := mixedWorkload(cluster, keys, workers, opsPerWorker, 6, &done, nil)
	cerr := <-coordErr
	if werr != nil {
		return fmt.Errorf("harness: multi-proxy chaos workload: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("harness: multi-proxy chaos restart: %w", cerr)
	}

	plan.SetActive(false)
	audited, err := auditKeys(cluster, states)
	if err != nil {
		return fmt.Errorf("harness: multi-proxy chaos audit: %w", err)
	}
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		return fmt.Errorf("harness: obliviousness shape violations under multi-proxy faults: proxy=%d server=%d", vp, vs)
	}

	retries := reg.Value("ortoa_transport_client_retries_total")
	reconnects := reg.Value("ortoa_transport_client_reconnects_total")
	dedupHits := reg.Value("ortoa_transport_server_dedup_hits_total")
	counters := fmt.Sprintf("%d/%d", reg.Value("ortoa_lbl_pending_rounds_total"), reg.Value("ortoa_lbl_pending_resolved_total"))
	fs := plan.Stats()
	faults := fmt.Sprintf("%d/%d/%d/%d", fs.Resets, fs.Stalls, fs.Blackholes, fs.PartitionDrops+fs.DialRefusals)
	t.AddRow("mp-workload", fmt.Sprint(totals.ops), fmt.Sprint(totals.ok), fmt.Sprint(totals.amb),
		fmt.Sprint(retries), fmt.Sprint(reconnects), fmt.Sprint(dedupHits), counters, faults)
	t.AddRow("mp-audit", fmt.Sprint(audited), fmt.Sprint(audited), "0", "-", "-", "-", "-", "faults off")
	t.Notes = append(t.Notes,
		fmt.Sprintf("multi-proxy audit passed: %d keys consistent across %d faults plus a proxy crash-restart — %d adoption claims, %d rounds fenced, 0 shape violations",
			audited, fs.Total(), reg.Value("ortoa_lbl_epoch_claims_total"), reg.Value("ortoa_lbl_server_fenced_rounds_total")))
	return nil
}

// chaosValue builds a deterministic ValueSize-byte value for write i of
// generation gen, distinguishable from every other (i, gen).
func chaosValue(size int, i, gen uint64) []byte {
	v := make([]byte, size)
	for j := range v {
		v[j] = byte(i>>((uint(j)%8)*8)) ^ byte(gen*131) ^ byte(j)
	}
	return v
}
