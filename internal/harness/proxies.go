package harness

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

// Multi-proxy high-availability deployments (LBL only). With
// Config.Proxies > 0 the cluster runs N trusted proxies sharing one PRF
// secret against a single LBL server. Counter ownership is partitioned
// across the proxies by the consistent-hash ring and enforced by the
// server's epoch fence (core/ring.go, core/epoch.go); clients reach the
// deployment through a core.Router that health-checks the proxies and
// fails over between them. KillProxy / RecoverProxy / RestartProxy
// crash-kill and rebuild individual proxies behind stable listener
// identities, so experiments can drive live ownership handoffs.

// defaultProxyReconcileScan bounds an adopting proxy's counter-rebase
// probe spiral when the experiment does not set one. Adopters start
// from empty counter tables, so the spiral must reach the hottest key's
// true counter; 4096 covers every workload in this harness.
const defaultProxyReconcileScan = 4096

// A proxyNode is one restartable trusted proxy: its own connection pool
// to the shard server, its own LBL proxy state, and a front-end
// transport server clients reach through a stable listener pointer.
type proxyNode struct {
	name string
	auds clusterAuditors

	// listener is swapped on recovery; the router's dial closure reads
	// it, so a reborn proxy is reachable at the same identity.
	listener atomic.Pointer[netsim.Listener]

	mu    sync.Mutex // guards the restartable fields below
	rpc   *transport.Client
	proxy *core.LBLProxy
	front *transport.Server
	down  bool
}

// buildProxies stands up the proxy fleet and router over the already
// built shard. Called before load(), which then builds records through
// the shared-PRF proxy at c.proxies[0].
func (c *Cluster) buildProxies(cfg Config, sh *shard) error {
	c.prf = prf.NewRandom()
	names := make([]string, cfg.Proxies)
	for i := range names {
		names[i] = fmt.Sprintf("proxy-%d", i)
	}
	ring := core.NewRing(names)
	for i := 0; i < cfg.Proxies; i++ {
		pn := &proxyNode{name: names[i], auds: sh.auds}
		if err := pn.start(cfg, sh, c.prf, true); err != nil {
			return fmt.Errorf("harness: starting %s: %w", names[i], err)
		}
		// Startup handshake: each proxy claims its ring partition, so
		// every range starts at epoch ≥ 1 with exactly one owner.
		if err := pn.proxy.ClaimOwned(ring, pn.name); err != nil {
			return fmt.Errorf("harness: %s claiming ranges: %w", pn.name, err)
		}
		c.proxies = append(c.proxies, pn)
	}
	// The shard's record builder must use the shared PRF: replace the
	// placeholder accessor before load() runs.
	sh.accessor = c.proxies[0].proxy

	members := make([]core.RouterMember, len(c.proxies))
	for i, pn := range c.proxies {
		pn := pn
		members[i] = core.RouterMember{
			Name: pn.name,
			Dial: func() (net.Conn, error) { return pn.listener.Load().Dial() },
		}
	}
	router, err := core.NewRouter(members, core.RouterOptions{
		Client: transport.Options{
			PoolSize:         4,
			CallTimeout:      cfg.Transport.CallTimeout,
			Retry:            cfg.Transport.Retry,
			ReconnectBackoff: cfg.Transport.ReconnectBackoff,
		},
		ProbeInterval: 25 * time.Millisecond,
		Metrics:       cfg.Metrics,
	})
	if err != nil {
		return err
	}
	c.router = router
	return nil
}

// start builds (or rebuilds) the node's server client, proxy state, and
// front end. A rebuilt node starts with empty counters and no claimed
// ranges: ownership is re-acquired on demand through the epoch fence
// (AutoAdopt), exactly like a production proxy restarted from nothing.
// instrument is false on recovery — handles with per-instance callbacks
// would double-register (the restarted-store precedent in newShard).
func (pn *proxyNode) start(cfg Config, sh *shard, f *prf.PRF, instrument bool) error {
	topts := cfg.Transport
	topts.PoolSize = cfg.ConnsPerShard
	dial := func() (net.Conn, error) { return sh.listener.Load().Dial() }
	client, err := transport.DialOptions(dial, topts)
	if err != nil {
		return err
	}
	if instrument {
		client.Instrument(cfg.Metrics)
	}
	client.AuditShape(pn.auds.proxy, core.ShapeClassify)

	scan := cfg.ProxyReconcileScan
	if scan <= 0 {
		scan = defaultProxyReconcileScan
	}
	proxy, err := core.NewLBLProxy(core.LBLConfig{
		ValueSize:        cfg.ValueSize,
		Mode:             cfg.LBLMode,
		ReconcileScan:    scan,
		AutoAdopt:        true,
		StreamChunkBytes: cfg.StreamChunkBytes,
	}, f, client)
	if err != nil {
		client.Close()
		return err
	}
	if instrument {
		proxy.Instrument(cfg.Metrics)
		if cfg.Metrics != nil && cfg.TraceBuffer > 0 {
			proxy.TraceWith(cfg.Metrics.Tracer("proxy", cfg.TraceBuffer))
		}
	}

	front := transport.NewServer()
	front.AuditShape(pn.auds.proxy, core.ShapeClassify)
	if cfg.Admission != nil {
		front.LimitAdmission(*cfg.Admission)
	}
	core.RegisterProxyService(front, proxy)
	l := netsim.Listen(cfg.ProxyLink)
	go front.Serve(l) //nolint:errcheck // returns on Close

	pn.rpc, pn.proxy, pn.front = client, proxy, front
	pn.down = false
	pn.listener.Store(l)
	return nil
}

// proxyNodeAt validates i against the proxy fleet.
func (c *Cluster) proxyNodeAt(i int) (*proxyNode, error) {
	if len(c.proxies) == 0 {
		return nil, fmt.Errorf("harness: cluster has no proxy fleet (Config.Proxies unset)")
	}
	if i < 0 || i >= len(c.proxies) {
		return nil, fmt.Errorf("harness: no proxy %d", i)
	}
	return c.proxies[i], nil
}

// KillProxy crash-kills proxy i: its server connections drop, its
// front end closes (in-flight client rounds fail over at the router),
// and its listener stops answering — counters, claimed ranges, and all.
// The proxy stays dead until RecoverProxy.
func (c *Cluster) KillProxy(i int) error {
	pn, err := c.proxyNodeAt(i)
	if err != nil {
		return err
	}
	pn.mu.Lock()
	defer pn.mu.Unlock()
	if pn.down {
		return fmt.Errorf("harness: proxy %d already down", i)
	}
	// Server pool first: in-flight accesses inside front-end handlers
	// fail fast instead of gracefully draining — this is a crash, not a
	// shutdown.
	pn.rpc.Close()
	pn.front.Close() //nolint:errcheck // best-effort kill
	pn.down = true
	return nil
}

// RecoverProxy rebuilds a killed proxy behind its stable listener
// identity, with empty counters and no owned ranges: like any restarted
// proxy it re-adopts ranges on demand through the epoch fence and
// rebases counters through the reconcile spiral.
func (c *Cluster) RecoverProxy(i int) error {
	pn, err := c.proxyNodeAt(i)
	if err != nil {
		return err
	}
	pn.mu.Lock()
	defer pn.mu.Unlock()
	if !pn.down {
		return fmt.Errorf("harness: proxy %d is not down", i)
	}
	return pn.start(c.cfg, c.shards[0], c.prf, false)
}

// RestartProxy crash-kills proxy i and immediately recovers it — the
// proxy-side analogue of Cluster.Restart for shard servers.
func (c *Cluster) RestartProxy(i int) error {
	if err := c.KillProxy(i); err != nil {
		return err
	}
	return c.RecoverProxy(i)
}

// Proxies returns the proxy fleet size (0 for single-proxy clusters).
func (c *Cluster) Proxies() int { return len(c.proxies) }

// Router returns the client-side proxy router (nil for single-proxy
// clusters).
func (c *Cluster) Router() *core.Router { return c.router }

// closeProxies tears down the router and every proxy node.
func (c *Cluster) closeProxies() {
	if c.router != nil {
		c.router.Close() //nolint:errcheck
	}
	for _, pn := range c.proxies {
		pn.mu.Lock()
		if !pn.down {
			pn.rpc.Close()
			pn.front.Close() //nolint:errcheck
			pn.down = true
		}
		pn.mu.Unlock()
	}
}
