package harness

import (
	"fmt"
	"math/rand/v2"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/oram"
	"ortoa/internal/stats"
	"ortoa/internal/transport"
	"ortoa/internal/workload"
)

// ORAMRounds measures the §8 sketch: a PathORAM-style tree ORAM whose
// fused access completes in one round trip, against the classic
// two-round scheme, across server distances. This is the paper's
// "future work" made concrete: ORTOA's one-round principle applied to
// a scheme that also hides which object is accessed.
func ORAMRounds(opt Options) (*Table, error) {
	t := &Table{
		ID:      "oram-rounds",
		Title:   "One-round vs two-round tree ORAM (§8 sketch)",
		Columns: []string{"location", "variant", "rpcs/access", "mean-lat(ms)", "tput(ops/s)", "stash"},
	}
	numBlocks := 256
	accesses := opt.ops() * 8
	if opt.Quick {
		numBlocks = 64
	}
	locations := opt.locations()

	for _, loc := range locations {
		for _, mode := range []oram.Mode{oram.TwoRound, oram.OneRound} {
			res, err := runORAM(loc.Link, mode, numBlocks, accesses)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", loc.Name, mode, err)
			}
			t.AddRow(loc.Name, mode.String(),
				fmt.Sprintf("%.1f", res.rpcsPerAccess),
				fmtMS(res.latency.Mean), fmtTput(res.throughput),
				fmt.Sprint(res.stash))
		}
	}
	t.Notes = append(t.Notes,
		"the fused variant reads a path and evicts prior stash blocks in ONE message (§8)",
		"expected: one-round latency ≈ half of two-round at every distance; identical data")
	return t, nil
}

type oramRunResult struct {
	rpcsPerAccess float64
	latency       stats.Summary
	throughput    float64
	stash         int
}

func runORAM(link netsim.Link, mode oram.Mode, numBlocks, accesses int) (oramRunResult, error) {
	cfg := oram.Config{NumBlocks: numBlocks, BlockSize: 64}
	srv, err := oram.NewServer(cfg)
	if err != nil {
		return oramRunResult{}, err
	}
	ts := transport.NewServer()
	srv.Register(ts)
	listener := netsim.Listen(link)
	go ts.Serve(listener) //nolint:errcheck // returns on Close
	defer ts.Close()

	rpc, err := transport.Dial(listener.Dial, 1)
	if err != nil {
		return oramRunResult{}, err
	}
	defer rpc.Close()
	client, err := oram.NewClient(cfg, mode, rpc)
	if err != nil {
		return oramRunResult{}, err
	}
	values := map[int][]byte{}
	for i := 0; i < numBlocks; i++ {
		v := make([]byte, cfg.BlockSize)
		v[0] = byte(i)
		values[i] = v
	}
	buckets, err := client.BuildInitialBuckets(values)
	if err != nil {
		return oramRunResult{}, err
	}
	if err := srv.Load(buckets); err != nil {
		return oramRunResult{}, err
	}

	rng := rand.New(rand.NewPCG(41, uint64(mode)))
	rec := stats.NewRecorder(accesses)
	start := time.Now()
	for i := 0; i < accesses; i++ {
		id := rng.IntN(numBlocks)
		op := core.OpRead
		var v []byte
		if i%3 == 2 {
			op = core.OpWrite
			v = make([]byte, cfg.BlockSize)
			v[0] = byte(i)
		}
		opStart := time.Now()
		if _, err := client.Access(op, id, v); err != nil {
			return oramRunResult{}, err
		}
		rec.Add(time.Since(opStart))
	}
	elapsed := time.Since(start)
	return oramRunResult{
		rpcsPerAccess: float64(rpc.Stats().Calls) / float64(accesses),
		latency:       rec.Summarize(),
		throughput:    stats.Throughput(accesses, elapsed),
		stash:         client.StashSize(),
	}, nil
}

// ZipfAblation contrasts LBL-ORTOA under uniform vs Zipfian key
// popularity (an extension: the paper evaluates uniform only). Hot
// keys stress LBL's per-key access-counter serialization — concurrent
// accesses to one object must not interleave, so skew converts
// parallelism into queueing.
func ZipfAblation(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation-zipf",
		Title:   "LBL-ORTOA under key skew (Oregon link, 160B values)",
		Columns: []string{"distribution", "mean-lat(ms)", "p99-lat(ms)", "tput(ops/s)"},
	}
	for _, dist := range []struct {
		name string
		d    workload.Distribution
	}{{"uniform", workload.Uniform}, {"zipf(0.99)", workload.Zipfian}} {
		wl := workload.Config{
			NumKeys: opt.keys(), ValueSize: paperValueSize,
			WriteFraction: 0.5, Distribution: dist.d, Seed: 12,
		}
		res, err := Measure(Config{
			System: SystemLBL, Link: netsim.Oregon, ValueSize: paperValueSize,
			LBLMode: core.LBLPointPermute,
		}, wl, opt.conc(), opt.ops())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dist.name, err)
		}
		t.AddRow(dist.name, fmtMS(res.Latency.Mean), fmtMS(res.Latency.P99), fmtTput(res.Throughput))
	}
	t.Notes = append(t.Notes,
		"hot keys serialize on the per-key counter lock (§5.2's schedule), lifting tail latency under skew")
	return t, nil
}
