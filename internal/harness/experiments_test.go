package harness

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpts keeps experiment smoke tests fast.
var quickOpts = Options{Quick: true, Keys: 32, Ops: 2, Concurrency: 4}

func TestORAMRoundsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	tbl, err := ORAMRounds(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 locations × 2 variants in quick mode.
	if len(tbl.Rows) != 4 {
		t.Fatalf("oram-rounds has %d rows", len(tbl.Rows))
	}
	// The one-round variant must report exactly 1.0 RPCs/access and
	// the two-round variant 2.0.
	for _, row := range tbl.Rows {
		variant, rpcs := row[1], row[2]
		want := "2.0"
		if variant == "one-round" {
			want = "1.0"
		}
		if rpcs != want {
			t.Errorf("%s: rpcs/access = %s, want %s", variant, rpcs, want)
		}
	}
	// One-round latency must be materially below two-round at the
	// same location.
	lat := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad latency %q", row[3])
		}
		return v
	}
	if !(lat(tbl.Rows[1]) < lat(tbl.Rows[0])*0.75) {
		t.Errorf("one-round latency %.1f not well below two-round %.1f", lat(tbl.Rows[1]), lat(tbl.Rows[0]))
	}
}

func TestZipfAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	tbl, err := ZipfAblation(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("ablation-zipf has %d rows", len(tbl.Rows))
	}
}

func TestFHERelinAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	tbl, err := FHERelinAblation(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rows for both configurations must be present.
	var sawPlain, sawRelin bool
	var plainSizes, relinSizes []string
	for _, row := range tbl.Rows {
		switch row[0] {
		case "false":
			sawPlain = true
			plainSizes = append(plainSizes, row[3])
		case "true":
			sawRelin = true
			relinSizes = append(relinSizes, row[3])
		}
	}
	if !sawPlain || !sawRelin {
		t.Fatal("missing configuration rows")
	}
	// Relinearized sizes constant; plain sizes growing.
	for i := 1; i < len(relinSizes); i++ {
		if relinSizes[i] != relinSizes[0] {
			t.Errorf("relin ciphertext size changed: %v", relinSizes)
			break
		}
	}
	if len(plainSizes) >= 2 && plainSizes[0] == plainSizes[len(plainSizes)-1] {
		t.Errorf("plain ciphertext size did not grow: %v", plainSizes)
	}
}

func TestFig3bNotesMentionCrossover(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	tbl, err := Fig3b(Options{Quick: true, Keys: 32, Ops: 2, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "300B") || strings.Contains(n, "crossover") {
			found = true
		}
	}
	if !found {
		t.Errorf("fig3b notes missing crossover commentary: %v", tbl.Notes)
	}
}

func TestRunAllQuickSubset(t *testing.T) {
	// RunAll over just the analytic experiments, by building a custom
	// writer run. (The measured set is exercised individually above
	// and by the benchmarks.)
	for _, id := range []string{"table2", "cost", "fig6"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exp.Run(Options{Quick: true}); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestSnapshotAttackQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	tbl, err := SnapshotAttack(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("attack-snapshot has %d rows", len(tbl.Rows))
	}
	// The plain store must be fully identified; ORTOA must not be.
	if tbl.Rows[0][3] != "100%" {
		t.Errorf("plain store attack accuracy = %s, want 100%%", tbl.Rows[0][3])
	}
	if tbl.Rows[1][3] == "100%" {
		t.Error("attack fully identified ORTOA operations")
	}
}

func TestAggregateQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	// No Concurrency override: the point is sessions (64) far above
	// the round-trip budget (16), where aggregation must win.
	tbl, err := Aggregate(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("aggregate has %d rows", len(tbl.Rows))
	}
	base, agg := tbl.Rows[0], tbl.Rows[1]
	tput := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad tput %q", row[2])
		}
		return v
	}
	// One server RPC per access unaggregated; far fewer aggregated.
	if base[4] != "1.00" {
		t.Errorf("per-request rpcs/op = %s, want 1.00", base[4])
	}
	rpcs, err := strconv.ParseFloat(agg[4], 64)
	if err != nil || rpcs >= 0.5 {
		t.Errorf("aggregated rpcs/op = %s, want well below 1", agg[4])
	}
	coalesce, err := strconv.ParseFloat(agg[5], 64)
	if err != nil || coalesce < 2 {
		t.Errorf("coalesce ratio = %s, want >= 2 accesses/window", agg[5])
	}
	// The acceptance target is 2x; assert a floor with headroom for
	// shared-runner timing noise (measured ~2.9x). Race-detector
	// instrumentation inflates the batch table-build stage enough to
	// erase the timing win, so only the functional assertions above
	// run under -race.
	if !raceEnabled && tput(agg) < 1.5*tput(base) {
		t.Errorf("aggregated tput %.0f not well above per-request %.0f", tput(agg), tput(base))
	}
}
