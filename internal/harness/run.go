package harness

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/stats"
	"ortoa/internal/workload"
)

// RunConfig describes one measured run against a cluster.
type RunConfig struct {
	Cluster *Cluster
	// Workload drives the request mix; NumKeys/ValueSize must match
	// the cluster's loaded data.
	Workload workload.Config
	// Concurrency is the number of closed-loop client threads (each
	// waits for its response before issuing the next request, §6).
	Concurrency int
	// OpsPerClient is the number of operations each thread performs.
	OpsPerClient int
}

// Result is one measured data point.
type Result struct {
	System      System
	Latency     stats.Summary
	Throughput  float64 // ops/s
	Elapsed     time.Duration
	Ops         int
	Errors      int
	BytesSentOp float64 // proxy→server bytes per op
	BytesRecvOp float64 // server→proxy bytes per op
}

// Run drives the workload and measures latency and throughput.
func Run(cfg RunConfig) (Result, error) {
	if cfg.Cluster == nil {
		return Result{}, fmt.Errorf("harness: RunConfig requires a Cluster")
	}
	if cfg.Concurrency <= 0 || cfg.OpsPerClient <= 0 {
		return Result{}, fmt.Errorf("harness: Concurrency and OpsPerClient must be positive")
	}
	totalOps := cfg.Concurrency * cfg.OpsPerClient
	rec := stats.NewRecorder(totalOps)
	before := cfg.Cluster.TrafficStats()

	var wg sync.WaitGroup
	var mu sync.Mutex
	errCount := 0
	var firstErr error

	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			wl := cfg.Workload
			wl.Seed = cfg.Workload.Seed + uint64(worker)*1_000_003 + 1
			gen, err := workload.NewGenerator(wl)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			for i := 0; i < cfg.OpsPerClient; i++ {
				req := gen.Next()
				opStart := time.Now()
				_, _, err := cfg.Cluster.Access(req.Op, req.Key, req.Value)
				rec.Add(time.Since(opStart))
				if err != nil {
					mu.Lock()
					errCount++
					if firstErr == nil {
						firstErr = fmt.Errorf("harness: %s %q: %w", req.Op, req.Key, err)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil && errCount == totalOps {
		return Result{}, firstErr
	}

	after := cfg.Cluster.TrafficStats()
	res := Result{
		System:     cfg.Cluster.cfg.System,
		Latency:    rec.Summarize(),
		Throughput: stats.Throughput(totalOps, elapsed),
		Elapsed:    elapsed,
		Ops:        totalOps,
		Errors:     errCount,
	}
	if totalOps > 0 {
		res.BytesSentOp = float64(after.BytesSent-before.BytesSent) / float64(totalOps)
		res.BytesRecvOp = float64(after.BytesReceived-before.BytesReceived) / float64(totalOps)
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// RunKeyed drives a 50/50 read/write closed-loop workload over an
// explicit key set (the real-dataset experiments of Fig 4, whose keys
// are not the synthetic key space).
func RunKeyed(cluster *Cluster, records []workload.Record, concurrency, opsPerClient, valueSize int) (Result, error) {
	if len(records) == 0 {
		return Result{}, fmt.Errorf("harness: RunKeyed needs records")
	}
	totalOps := concurrency * opsPerClient
	rec := stats.NewRecorder(totalOps)
	before := cluster.TrafficStats()

	var wg sync.WaitGroup
	var mu sync.Mutex
	errCount := 0
	var firstErr error

	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(worker), 0xDA7A))
			for i := 0; i < opsPerClient; i++ {
				r := records[rng.IntN(len(records))]
				op := core.OpRead
				var value []byte
				if rng.IntN(2) == 1 {
					op = core.OpWrite
					value = make([]byte, valueSize)
					for j := range value {
						value[j] = byte(rng.Uint32())
					}
				}
				opStart := time.Now()
				_, _, err := cluster.Access(op, r.Key, value)
				rec.Add(time.Since(opStart))
				if err != nil {
					mu.Lock()
					errCount++
					if firstErr == nil {
						firstErr = fmt.Errorf("harness: %s %q: %w", op, r.Key, err)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after := cluster.TrafficStats()
	res := Result{
		System:     cluster.cfg.System,
		Latency:    rec.Summarize(),
		Throughput: stats.Throughput(totalOps, elapsed),
		Elapsed:    elapsed,
		Ops:        totalOps,
		Errors:     errCount,
	}
	if totalOps > 0 {
		res.BytesSentOp = float64(after.BytesSent-before.BytesSent) / float64(totalOps)
		res.BytesRecvOp = float64(after.BytesReceived-before.BytesReceived) / float64(totalOps)
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}

// Measure builds a cluster for cfg, runs the workload once, and tears
// the cluster down — the one-shot helper most experiments use.
func Measure(ccfg Config, wl workload.Config, concurrency, opsPerClient int) (Result, error) {
	if ccfg.ConnsPerShard == 0 {
		per := concurrency / max(1, ccfg.Shards)
		if per < 1 {
			per = 1
		}
		if per > 64 {
			per = 64
		}
		ccfg.ConnsPerShard = per
	}
	if ccfg.Data == nil {
		ccfg.Data = workload.InitialData(wl)
	}
	cluster, err := NewCluster(ccfg)
	if err != nil {
		return Result{}, err
	}
	defer cluster.Close()
	return Run(RunConfig{
		Cluster:      cluster,
		Workload:     wl,
		Concurrency:  concurrency,
		OpsPerClient: opsPerClient,
	})
}
