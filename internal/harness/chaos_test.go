package harness

import (
	"strings"
	"testing"
)

// TestChaosQuick runs the chaos experiment end to end at unit-test
// scale. The experiment self-audits (lost/duplicated writes, label-
// schedule consistency after recovery), so a nil error is the
// assertion; the table checks here only guard the reporting shape.
func TestChaosQuick(t *testing.T) {
	tbl, err := Chaos(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Single-proxy workload + audit, multi-proxy workload + audit.
	if len(tbl.Rows) != 4 {
		t.Fatalf("chaos table has %d rows, want 4", len(tbl.Rows))
	}
	var single, multi bool
	for _, n := range tbl.Notes {
		if strings.Contains(n, "audit passed") {
			single = true
		}
		if strings.Contains(n, "multi-proxy audit passed") {
			multi = true
		}
	}
	if !single || !multi {
		t.Errorf("chaos notes missing audit confirmation (single=%v multi=%v): %v", single, multi, tbl.Notes)
	}
}
