package harness

import (
	"strings"
	"testing"
)

// TestChaosQuick runs the chaos experiment end to end at unit-test
// scale. The experiment self-audits (lost/duplicated writes, label-
// schedule consistency after recovery), so a nil error is the
// assertion; the table checks here only guard the reporting shape.
func TestChaosQuick(t *testing.T) {
	tbl, err := Chaos(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("chaos table has %d rows, want 2", len(tbl.Rows))
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "audit passed") {
			found = true
		}
	}
	if !found {
		t.Errorf("chaos notes missing audit confirmation: %v", tbl.Notes)
	}
}
