package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/workload"
)

// fastLink keeps unit tests quick while still exercising the netsim
// path.
var fastLink = netsim.Link{RTT: 2 * time.Millisecond, Bandwidth: 64 << 20}

func quickWorkload() workload.Config {
	return workload.Config{NumKeys: 64, ValueSize: 16, WriteFraction: 0.5, Seed: 1}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{System: SystemLBL}); err == nil {
		t.Error("NewCluster accepted zero ValueSize")
	}
	if _, err := NewCluster(Config{System: "nope", ValueSize: 8, Data: map[string][]byte{}}); err == nil {
		t.Error("NewCluster accepted unknown system")
	}
}

func TestMeasureAllSystems(t *testing.T) {
	wl := quickWorkload()
	for _, sys := range []System{SystemLBL, SystemTEE, SystemBaseline} {
		t.Run(string(sys), func(t *testing.T) {
			res, err := Measure(Config{System: sys, Link: fastLink, ValueSize: wl.ValueSize}, wl, 4, 5)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 20 {
				t.Errorf("Ops = %d, want 20", res.Ops)
			}
			if res.Errors != 0 {
				t.Errorf("Errors = %d", res.Errors)
			}
			if res.Throughput <= 0 {
				t.Error("Throughput not positive")
			}
			if res.Latency.Mean < fastLink.RTT {
				t.Errorf("mean latency %v below one RTT %v", res.Latency.Mean, fastLink.RTT)
			}
			if res.BytesSentOp <= 0 || res.BytesRecvOp <= 0 {
				t.Error("per-op traffic not recorded")
			}
		})
	}
}

func TestBaselineSlowerThanOneRound(t *testing.T) {
	// The heart of the paper: on the same link, the 2RTT baseline's
	// latency must be roughly twice the one-round protocols'.
	link := netsim.Link{RTT: 20 * time.Millisecond, Bandwidth: 0}
	wl := quickWorkload()
	tee, err := Measure(Config{System: SystemTEE, Link: link, ValueSize: wl.ValueSize}, wl, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Measure(Config{System: SystemBaseline, Link: link, ValueSize: wl.ValueSize}, wl, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(base.Latency.Mean) / float64(tee.Latency.Mean)
	if ratio < 1.4 {
		t.Errorf("baseline/TEE latency ratio = %.2f, want ≥ 1.4 (paper: 1.5-1.9)", ratio)
	}
}

func TestMultiShardCluster(t *testing.T) {
	wl := quickWorkload()
	res, err := Measure(Config{System: SystemLBL, Link: fastLink, ValueSize: wl.ValueSize, Shards: 3}, wl, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Errorf("multi-shard run had %d errors", res.Errors)
	}
}

func TestClusterRouting(t *testing.T) {
	// Every key must be accessible in a sharded cluster (routing is
	// consistent between load and access).
	wl := workload.Config{NumKeys: 40, ValueSize: 8, WriteFraction: 0, Seed: 2}
	data := workload.InitialData(wl)
	cluster, err := NewCluster(Config{System: SystemLBL, Link: netsim.Loopback, ValueSize: 8, Shards: 4, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for k, v := range data {
		got, _, err := cluster.Access(core.OpRead, k, nil)
		if err != nil {
			t.Fatalf("read %q: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("read %q = %x, want %x", k, got, v)
		}
	}
	if cluster.Shards() != 4 {
		t.Errorf("Shards = %d", cluster.Shards())
	}
	if cluster.ServerBytes() <= 0 {
		t.Error("ServerBytes not positive")
	}
}

func TestRunKeyed(t *testing.T) {
	ds := workload.EHR(32)
	cluster, err := NewCluster(Config{System: SystemBaseline, Link: fastLink, ValueSize: ds.ValueSize, Data: ds.Data()})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	res, err := RunKeyed(cluster, ds.Records, 4, 4, ds.ValueSize)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 16 || res.Errors != 0 {
		t.Errorf("RunKeyed ops=%d errors=%d", res.Ops, res.Errors)
	}
}

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("Run accepted nil cluster")
	}
	cluster, err := NewCluster(Config{System: SystemBaseline, Link: netsim.Loopback, ValueSize: 8,
		Data: map[string][]byte{"k": make([]byte, 8)}})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := Run(RunConfig{Cluster: cluster}); err == nil {
		t.Error("Run accepted zero concurrency")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "x",
		Title:   "test",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: test ==", "a", "bb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig2a"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Error("Lookup accepted unknown id")
	}
	// Every registered experiment has a unique, nonempty id.
	seen := map[string]bool{}
	for _, e := range Experiments {
		if e.ID == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestAnalyticExperiments(t *testing.T) {
	// The analytic (non-measuring) experiments must run instantly.
	for _, id := range []string{"table2", "cost", "fig6"} {
		exp, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := exp.Run(Options{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
	}
}

func TestCostModelAgainstPaperShape(t *testing.T) {
	e := EstimateCost(core.LBLConfig{ValueSize: 160, Mode: core.LBLPointPermute}, 1_000_000)
	// Paper §6.3.3: ~8MB of proxy counters for 1M objects.
	if e.ProxyCounterMB != 8 {
		t.Errorf("proxy counters = %.1f MB, want 8", e.ProxyCounterMB)
	}
	// Storage in the right ballpark: ℓ/y labels × 16B ≈ 10KB/object →
	// ~10GB + overheads.
	if e.StorageGB < 5 || e.StorageGB > 30 {
		t.Errorf("storage = %.1f GB, implausible", e.StorageGB)
	}
	// Cost per request is small but nonzero (paper: $0.000023).
	if e.PerRequestUSD <= 0 || e.PerRequestUSD > 0.001 {
		t.Errorf("per-request cost = %f", e.PerRequestUSD)
	}
}

func TestFig6OptimumAtY2(t *testing.T) {
	tbl, err := Fig6Factors(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("fig6 has %d rows", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Notes[0], "y=2") {
		t.Errorf("fig6 optimum note = %q, want y=2", tbl.Notes[0])
	}
}

func TestFHENoiseQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("FHE noise experiment in -short mode")
	}
	tbl, err := FHENoise(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no accesses recorded")
	}
	// The last row must be the failure (or the note must say none).
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[len(last)-1] == "true" && !strings.Contains(tbl.Notes[0], "no failure") {
		t.Errorf("inconsistent failure reporting: last row %v, note %q", last, tbl.Notes[0])
	}
	t.Log(tbl.Notes[0])
}

func TestFig2aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	tbl, err := Fig2a(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// 2 locations × 3 systems in quick mode.
	if len(tbl.Rows) != 6 {
		t.Errorf("fig2a quick has %d rows, want 6", len(tbl.Rows))
	}
}

func TestLBLModeAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment in -short mode")
	}
	tbl, err := LBLModeAblation(Options{Quick: true, Keys: 32, Ops: 2, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("ablation has %d rows", len(tbl.Rows))
	}
}
