package harness

import (
	"fmt"
	"sync"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/workload"
)

// fallbackWindow mirrors the public client's concurrent-fallback batch
// parallelism, so the comparison below measures exactly the seed path a
// batched deployment replaces.
const fallbackWindow = 16

// AccessBatch routes a batch of operations to their owning shards, one
// LBL batch RPC per touched shard, and returns values in input order.
// Only SystemLBL clusters support it.
func (c *Cluster) AccessBatch(ops []core.BatchOp) ([][]byte, error) {
	perShard := make(map[*shard][]int)
	for i := range ops {
		sh := c.shardFor(ops[i].Key)
		perShard[sh] = append(perShard[sh], i)
	}
	values := make([][]byte, len(ops))
	var wg sync.WaitGroup
	errc := make(chan error, 1)
	for sh, idxs := range perShard {
		proxy, ok := sh.accessor.(*core.LBLProxy)
		if !ok {
			return nil, fmt.Errorf("harness: %T has no batch path", sh.accessor)
		}
		wg.Add(1)
		go func(proxy *core.LBLProxy, idxs []int) {
			defer wg.Done()
			sub := make([]core.BatchOp, len(idxs))
			for j, i := range idxs {
				sub[j] = ops[i]
			}
			vals, _, err := proxy.AccessBatch(sub)
			if err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
			for j, i := range idxs {
				values[i] = vals[j]
			}
		}(proxy, idxs)
	}
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
		return values, nil
	}
}

// BatchPipeline measures the batched oblivious-access pipeline against
// the concurrent single-access path it replaces: same keys, same link,
// same protocol — one MsgLBLAccessBatch frame versus one RPC per key
// windowed at fallbackWindow in flight. Reported RPC counts come from
// the transport's own counters, so the one-round-trip claim is measured,
// not assumed.
func BatchPipeline(opt Options) (*Table, error) {
	t := &Table{
		ID:      "batch",
		Title:   "Batched access pipeline vs concurrent singles (Oregon RTT, 160B values)",
		Columns: []string{"batch", "path", "lat/batch(ms)", "tput(ops/s)", "rpcs/batch"},
	}
	// RTT-only link: netsim models bandwidth per connection, so the
	// 16-connection fallback pool would enjoy 16x the batch path's
	// aggregate bandwidth — an artifact no shared WAN uplink provides.
	// Dropping the cap isolates the quantity batching actually changes,
	// the round-trip count.
	link := netsim.Link{RTT: netsim.Oregon.RTT}
	sizes := []int{16, 64, 256}
	iters := 5
	if opt.Quick {
		sizes = []int{8, 32}
		iters = 2
	}
	for _, size := range sizes {
		keys := size
		if opt.Keys > keys {
			keys = opt.Keys
		}
		wl := workload.Config{NumKeys: keys, ValueSize: paperValueSize, Seed: 11}
		cluster, err := NewCluster(Config{
			System:        SystemLBL,
			Link:          link,
			ValueSize:     paperValueSize,
			LBLMode:       core.LBLPointPermute,
			Data:          workload.InitialData(wl),
			ConnsPerShard: fallbackWindow,
		})
		if err != nil {
			return nil, fmt.Errorf("batch size %d: %w", size, err)
		}
		ops := make([]core.BatchOp, size)
		for i := range ops {
			ops[i] = core.BatchOp{Op: core.OpRead, Key: workload.Key(i)}
		}

		measure := func(run func() error) (time.Duration, int64, error) {
			before := cluster.TrafficStats().Calls
			start := time.Now()
			for it := 0; it < iters; it++ {
				if err := run(); err != nil {
					return 0, 0, err
				}
			}
			elapsed := time.Since(start) / time.Duration(iters)
			rpcs := (cluster.TrafficStats().Calls - before) / int64(iters)
			return elapsed, rpcs, nil
		}

		batched, batchedRPCs, err := measure(func() error {
			_, err := cluster.AccessBatch(ops)
			return err
		})
		if err != nil {
			cluster.Close()
			return nil, fmt.Errorf("batched size %d: %w", size, err)
		}
		singles, singleRPCs, err := measure(func() error {
			sem := make(chan struct{}, fallbackWindow)
			var wg sync.WaitGroup
			errc := make(chan error, 1)
			for i := range ops {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					if _, _, err := cluster.Access(ops[i].Op, ops[i].Key, nil); err != nil {
						select {
						case errc <- err:
						default:
						}
					}
				}(i)
			}
			wg.Wait()
			select {
			case err := <-errc:
				return err
			default:
				return nil
			}
		})
		cluster.Close()
		if err != nil {
			return nil, fmt.Errorf("concurrent size %d: %w", size, err)
		}

		t.AddRow(fmt.Sprint(size), "batched", fmtMS(batched),
			fmtTput(float64(size)/batched.Seconds()), fmt.Sprint(batchedRPCs))
		t.AddRow(fmt.Sprint(size), "concurrent", fmtMS(singles),
			fmtTput(float64(size)/singles.Seconds()), fmt.Sprint(singleRPCs))
	}
	t.Notes = append(t.Notes,
		"batched path packs the whole batch into one MsgLBLAccessBatch frame (1 rpc/batch)",
		fmt.Sprintf("concurrent path issues one RPC per key, %d in flight, so latency scales with ceil(batch/%d) round trips", fallbackWindow, fallbackWindow))
	return t, nil
}
