package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func renderTestTable() *Table {
	t := &Table{
		ID:      "demo",
		Title:   "demo table",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	t.AddRow("alpha", "1")
	t.AddRow("beta|pipe", "2")
	return t
}

func TestRenderCSVParses(t *testing.T) {
	var buf bytes.Buffer
	if err := renderTestTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	// title + header + 2 rows + 1 note.
	if len(records) != 5 {
		t.Fatalf("CSV has %d records, want 5", len(records))
	}
	if records[1][0] != "name" || records[2][0] != "alpha" {
		t.Errorf("unexpected CSV layout: %v", records[:3])
	}
}

func TestRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := renderTestTable().RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"### demo:", "| name | value |", "| --- | --- |", "| alpha | 1 |", `beta\|pipe`, "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderAs(t *testing.T) {
	tbl := renderTestTable()
	for _, format := range []string{"", "text", "csv", "markdown", "md"} {
		var buf bytes.Buffer
		if err := tbl.RenderAs(&buf, format); err != nil {
			t.Errorf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Errorf("format %q produced no output", format)
		}
	}
	if err := tbl.RenderAs(&bytes.Buffer{}, "xml"); err == nil {
		t.Error("unknown format accepted")
	}
}
