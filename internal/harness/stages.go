package harness

import (
	"fmt"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/workload"
)

// lblStages are the proxy-side pipeline stages of one LBL access, in
// execution order (§5.2): counter acquire (step 1.1), encryption-table
// build (1.2–1.4), the single round trip, and label/value recovery
// (3.1–3.2). The names match LBLProxy.Instrument's stage labels.
var lblStages = []struct{ name, paperStep string }{
	{"counter_acquire", "§5.2 1.1 counter lookup"},
	{"table_build", "§5.2 1.2-1.4 PRF labels + enc table"},
	{"rpc", "one round trip (wire)"},
	{"label_recover", "§5.2 3.1-3.2 decrypt result"},
}

// Stages is the observability companion to Fig 3c: instead of deriving
// the LBL latency breakdown from link parameters, it instruments a
// cluster with an obs.Registry and reports the per-stage histograms the
// proxy actually recorded. The sum of stage means should match the
// measured end-to-end mean (stage laps share one stopwatch), which the
// note verifies.
func Stages(opt Options) (*Table, error) {
	t := &Table{
		ID:      "stages",
		Title:   "Measured LBL per-stage latency breakdown (Oregon link, 160B values)",
		Columns: []string{"stage", "paper step", "count", "mean(ms)", "p99(ms)", "share"},
	}
	reg := obs.NewRegistry()
	wl := workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 9}
	res, err := Measure(
		Config{System: SystemLBL, Link: netsim.Oregon, ValueSize: paperValueSize,
			LBLMode: core.LBLPointPermute, Metrics: reg},
		wl, opt.conc(), opt.ops(),
	)
	if err != nil {
		return nil, err
	}

	// Registry lookups are get-or-create, so these return the same
	// histograms the instrumented proxy observed into.
	e2e := reg.Histogram("ortoa_lbl_access_seconds", "")
	var stageSum time.Duration
	for _, st := range lblStages {
		h := reg.Histogram(`ortoa_lbl_stage_seconds{stage="`+st.name+`"}`, "")
		share := "-"
		if m := e2e.Mean(); m > 0 {
			share = fmt.Sprintf("%.0f%%", 100*float64(h.Mean())/float64(m))
		}
		stageSum += h.Mean()
		t.AddRow(st.name, st.paperStep, fmt.Sprint(h.Count()), fmtMS(h.Mean()),
			fmtMS(h.Quantile(0.99)), share)
	}
	t.AddRow("end-to-end", "", fmt.Sprint(e2e.Count()), fmtMS(e2e.Mean()),
		fmtMS(e2e.Quantile(0.99)), "100%")

	if m := e2e.Mean(); m > 0 {
		dev := 100 * (float64(stageSum) - float64(m)) / float64(m)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"stage-mean sum %s ms vs end-to-end mean %s ms (%.1f%% deviation; acceptance: within 10%%)",
			fmtMS(stageSum), fmtMS(m), dev))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"harness-side mean %s ms includes cluster routing above the proxy; paper: RTT dominates, compute+comm overhead grows with ℓ",
		fmtMS(res.Latency.Mean)))
	return t, nil
}
