package harness

import (
	"strings"
	"testing"

	"ortoa/internal/core"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
	"time"
)

// TestCrashQuick runs the crash experiment end to end at unit-test
// scale. The experiment self-audits (lost acknowledged writes,
// duplicate applications, counter re-convergence after kill/restart
// cycles), so a nil error is the assertion; the table checks here only
// guard the reporting shape.
func TestCrashQuick(t *testing.T) {
	tbl, err := Crash(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("crash table has %d rows, want 5 (workload, audit, rollback, bench x2)", len(tbl.Rows))
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "audit passed") {
			found = true
		}
	}
	if !found {
		t.Errorf("crash notes missing audit confirmation: %v", tbl.Notes)
	}
}

// durableClusterConfig is a minimal durable single-shard deployment
// for direct Restart tests.
func durableClusterConfig(data map[string][]byte, policy kvstore.SyncPolicy) Config {
	return Config{
		System:        SystemLBL,
		Link:          netsim.Loopback,
		ValueSize:     16,
		Data:          data,
		LBLMode:       core.LBLPointPermute,
		ConnsPerShard: 2,
		Transport: transport.Options{
			CallTimeout:      200 * time.Millisecond,
			Retry:            transport.RetryPolicy{Attempts: 6, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond},
			ReconnectBackoff: time.Millisecond,
		},
		Durability: &DurabilityConfig{Policy: policy, Seed: 9, ReconcileScan: 8},
	}
}

// TestClusterRestartDurable kills and recovers a shard between
// accesses: acknowledged writes must survive and the proxy must keep
// working against the reborn server.
func TestClusterRestartDurable(t *testing.T) {
	val := func(b byte) []byte {
		v := make([]byte, 16)
		for i := range v {
			v[i] = b
		}
		return v
	}
	cluster, err := NewCluster(durableClusterConfig(map[string][]byte{"k": val(0)}, kvstore.SyncGroupCommit))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for cycle := byte(1); cycle <= 3; cycle++ {
		if _, _, err := cluster.Access(core.OpWrite, "k", val(cycle)); err != nil {
			t.Fatalf("cycle %d write: %v", cycle, err)
		}
		if err := cluster.Restart(0); err != nil {
			t.Fatalf("cycle %d restart: %v", cycle, err)
		}
		got, _, err := cluster.Access(core.OpRead, "k", nil)
		if err != nil {
			t.Fatalf("cycle %d read after restart: %v", cycle, err)
		}
		if got[0] != cycle {
			t.Fatalf("cycle %d: read %d after restart, want %d (acknowledged write lost)", cycle, got[0], cycle)
		}
	}
	if n := cluster.WALReplayedTotal(); n == 0 {
		t.Error("restarts replayed no WAL records")
	}
	if st := cluster.DiskStats(); st.Crashes != 3 {
		t.Errorf("DiskStats.Crashes = %d, want 3", st.Crashes)
	}
}

// TestClusterRestartRequiresDurability checks the guard rails: Restart
// without Config.Durability, durability on a non-LBL system.
func TestClusterRestartRequiresDurability(t *testing.T) {
	cluster, err := NewCluster(Config{
		System: SystemLBL, Link: netsim.Loopback, ValueSize: 16,
		Data: map[string][]byte{"k": make([]byte, 16)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.Restart(0); err == nil {
		t.Error("Restart succeeded on a non-durable cluster")
	}
	if err := cluster.Restart(7); err == nil {
		t.Error("Restart succeeded on a shard that does not exist")
	}

	cfg := durableClusterConfig(map[string][]byte{"k": make([]byte, 16)}, kvstore.SyncGroupCommit)
	cfg.System = SystemTEE
	if _, err := NewCluster(cfg); err == nil {
		t.Error("NewCluster accepted Durability on a TEE system")
	}
}
