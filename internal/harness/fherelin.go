package harness

import (
	"fmt"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/fhe"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
)

// FHERelinAblation contrasts FHE-ORTOA with and without
// relinearization keys (an extension beyond the paper's prototype,
// which used neither). It shows exactly which §3.3 problem
// relinearization solves — ciphertext growth — and which it does not:
// the noise drain that caps accesses per object.
func FHERelinAblation(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation-fhe-relin",
		Title:   "FHE-ORTOA with vs without relinearization (per-access trajectory)",
		Columns: []string{"relin", "access", "ct-degree", "ct-size(B)", "noise-budget(bits)", "ok"},
	}
	n, qBits := 256, 260
	maxAccesses := 16
	if opt.Quick {
		n, qBits = 64, 220
		maxAccesses = 10
	}
	params, err := fhe.NewParameters(n, qBits)
	if err != nil {
		return nil, err
	}
	valueSize := minInt(32, params.PlaintextCapacity()-2)

	type outcome struct {
		failedAt  int
		finalSize int
	}
	outcomes := map[bool]outcome{}

	for _, relin := range []bool{false, true} {
		cfg := core.FHEConfig{Params: params, ValueSize: valueSize, MaxDegree: 64}
		store := kvstore.New()
		srv := transport.NewServer()
		listener := netsim.Listen(netsim.Loopback)
		go srv.Serve(listener) //nolint:errcheck // returns on Close
		core.NewFHEServer(store, cfg).Register(srv)
		rpc, err := transport.Dial(listener.Dial, 1)
		if err != nil {
			srv.Close()
			return nil, err
		}
		client, err := core.NewFHEClient(cfg, prf.NewRandom(), rpc)
		if err != nil {
			rpc.Close()
			srv.Close()
			return nil, err
		}
		if relin {
			if err := client.ProvisionRelinKey(); err != nil {
				rpc.Close()
				srv.Close()
				return nil, err
			}
		}
		value := make([]byte, valueSize)
		for i := range value {
			value[i] = byte(i)
		}
		ek, rec, err := client.BuildRecord("object", value)
		if err != nil {
			rpc.Close()
			srv.Close()
			return nil, err
		}
		store.Put(ek, rec)

		oc := outcome{}
		for access := 1; access <= maxAccesses; access++ {
			got, _, err := client.Access(core.OpRead, "object", nil)
			ok := err == nil && string(got) == string(value)
			recNow, _ := store.Get(ek)
			degree := "-"
			if ct, uerr := fhe.UnmarshalCiphertext(params, recNow); uerr == nil {
				degree = fmt.Sprint(ct.Degree())
			}
			budget, berr := client.NoiseBudgetOf(recNow)
			if berr != nil {
				budget = -1
			}
			t.AddRow(fmt.Sprint(relin), fmt.Sprint(access), degree, fmt.Sprint(len(recNow)), fmt.Sprint(budget), fmt.Sprint(ok))
			oc.finalSize = len(recNow)
			if !ok {
				oc.failedAt = access
				break
			}
		}
		outcomes[relin] = oc
		rpc.Close()
		srv.Close()
	}

	plain, rl := outcomes[false], outcomes[true]
	t.Notes = append(t.Notes,
		fmt.Sprintf("without relin: ciphertext grows every access (final %d B); with relin: constant degree 1 (final %d B)",
			plain.finalSize, rl.finalSize))
	if plain.failedAt > 0 && rl.failedAt > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("noise failure at access %d (plain) vs %d (relin): relinearization fixes size, not the §3.3 noise wall — bootstrapping would be needed",
				plain.failedAt, rl.failedAt))
	}
	return t, nil
}
