package harness

import (
	"fmt"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/crypto/prf"
	"ortoa/internal/fhe"
	"ortoa/internal/kvstore"
	"ortoa/internal/netsim"
	"ortoa/internal/transport"
	"ortoa/internal/workload"
)

// Table2 reports the datacenter RTT configuration (Table 2 of the
// paper), as wired into netsim.
func Table2(Options) (*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "RTT latencies from California to server locations (ms)",
		Columns: []string{"location", "rtt(ms)", "bandwidth(MiB/s)"},
	}
	for _, loc := range netsim.Locations {
		t.AddRow(loc.Name, fmtMS(loc.Link.RTT), fmt.Sprint(loc.Link.Bandwidth>>20))
	}
	return t, nil
}

// FHENoise reproduces the §3.3 finding: repeated Proc applications to
// one object exhaust the BFV noise budget within a small number of
// accesses, making FHE-ORTOA impractical. It runs the full protocol
// (client + server over a loopback link) and reports the budget after
// each access until decryption degrades.
func FHENoise(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fhe-noise",
		Title:   "FHE-ORTOA noise budget vs accesses to one object (§3.3)",
		Columns: []string{"access", "ct-degree", "noise-budget(bits)", "ct-size(B)", "decrypts-ok"},
	}
	// 260-bit modulus: enough budget for roughly the paper's ~10
	// accesses before decryption degrades (each access costs ~24 bits).
	n, qBits := 512, 260
	if opt.Quick {
		n, qBits = 64, 220
	}
	params, err := fhe.NewParameters(n, qBits)
	if err != nil {
		return nil, err
	}
	valueSize := minInt(paperValueSize, params.PlaintextCapacity()-2)
	cfg := core.FHEConfig{Params: params, ValueSize: valueSize, MaxDegree: 64}

	store := kvstore.New()
	srv := transport.NewServer()
	defer srv.Close()
	listener := netsim.Listen(netsim.Loopback)
	go srv.Serve(listener) //nolint:errcheck // returns on Close
	core.NewFHEServer(store, cfg).Register(srv)
	rpc, err := transport.Dial(listener.Dial, 1)
	if err != nil {
		return nil, err
	}
	defer rpc.Close()
	client, err := core.NewFHEClient(cfg, prf.NewRandom(), rpc)
	if err != nil {
		return nil, err
	}

	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte(i)
	}
	ek, rec, err := client.BuildRecord("object", value)
	if err != nil {
		return nil, err
	}
	store.Put(ek, rec)

	failedAt := 0
	maxAccesses := 20
	if opt.Quick {
		maxAccesses = 12
	}
	for access := 1; access <= maxAccesses; access++ {
		got, _, err := client.Access(core.OpRead, "object", nil)
		ok := err == nil && string(got) == string(value)
		recNow, gerr := store.Get(ek)
		if gerr != nil {
			return nil, gerr
		}
		degree := "-"
		budget := 0
		if ct, uerr := fhe.UnmarshalCiphertext(params, recNow); uerr == nil {
			degree = fmt.Sprint(ct.Degree())
		}
		budget, berr := client.NoiseBudgetOf(recNow)
		if berr != nil {
			budget = -1
		}
		t.AddRow(fmt.Sprint(access), degree, fmt.Sprint(budget), fmt.Sprint(len(recNow)), fmt.Sprint(ok))
		if !ok {
			failedAt = access
			break
		}
	}
	if failedAt > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("decryption degraded at access %d (paper: ~10 with SEAL N=32768 defaults)", failedAt))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("no failure within %d accesses at these parameters", maxAccesses))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("ciphertext expansion: %.0fx (paper: ~225x for SEAL)", params.CiphertextExpansion()))
	return t, nil
}

// Google Cloud prices used by §6.3.3.
const (
	usdPerGBMonth      = 0.02
	usdPerGBNetwork    = 0.12
	usdPerMInvocations = 0.4
	usdPer100msCPU     = 0.00000165
	computeMSPerOp     = 2.0 // "ORTOA needs 2 ms to encrypt/decrypt labels"
)

// CostEstimate is the §6.3.3 dollar-cost model, evaluated over our
// exact wire/record sizes.
type CostEstimate struct {
	Objects         int
	StorageGB       float64
	StorageUSDMonth float64
	NetworkGBPer1M  float64
	NetworkUSDPer1M float64
	ComputeUSDPer1M float64
	PerRequestUSD   float64
	RequestBytes    int
	ResponseBytes   int
	RecordBytes     int
	ProxyCounterMB  float64
}

// EstimateCost evaluates the model for an LBL configuration and
// database size.
func EstimateCost(cfg core.LBLConfig, objects int) CostEstimate {
	e := CostEstimate{Objects: objects}
	e.RecordBytes = cfg.ServerBytesPerValue() + prf.Size // record + encoded key
	e.RequestBytes = cfg.RequestBytesPerAccess()
	e.ResponseBytes = cfg.Groups() * prf.Size
	e.StorageGB = float64(e.RecordBytes) * float64(objects) / 1e9
	e.StorageUSDMonth = e.StorageGB * usdPerGBMonth
	e.NetworkGBPer1M = float64(e.RequestBytes+e.ResponseBytes) * 1e6 / 1e9
	e.NetworkUSDPer1M = e.NetworkGBPer1M * usdPerGBNetwork
	e.ComputeUSDPer1M = usdPerMInvocations + (computeMSPerOp*1e6/100)*usdPer100msCPU
	e.PerRequestUSD = (e.NetworkUSDPer1M + e.ComputeUSDPer1M) / 1e6
	e.ProxyCounterMB = float64(objects) * 8 / 1e6
	return e
}

// CostModel renders the §6.3.3 analysis for the paper's configuration:
// r=128, ℓ=1280 (160 B values), y=2 point-and-permute, 1M objects.
func CostModel(opt Options) (*Table, error) {
	objects := 1_000_000
	if opt.Quick {
		objects = 100_000
	}
	cfg := core.LBLConfig{ValueSize: paperValueSize, Mode: core.LBLPointPermute}
	e := EstimateCost(cfg, objects)
	t := &Table{
		ID:      "cost",
		Title:   fmt.Sprintf("LBL-ORTOA dollar-cost estimate (%d objects, 160B values, y=2)", objects),
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("server record size", fmt.Sprintf("%d B", e.RecordBytes))
	t.AddRow("request size", fmt.Sprintf("%d B", e.RequestBytes))
	t.AddRow("response size", fmt.Sprintf("%d B", e.ResponseBytes))
	t.AddRow("server storage", fmt.Sprintf("%.2f GB", e.StorageGB))
	t.AddRow("storage cost", fmt.Sprintf("$%.2f /month", e.StorageUSDMonth))
	t.AddRow("network per 1M accesses", fmt.Sprintf("%.1f GB", e.NetworkGBPer1M))
	t.AddRow("bandwidth cost per 1M", fmt.Sprintf("$%.2f", e.NetworkUSDPer1M))
	t.AddRow("compute cost per 1M", fmt.Sprintf("$%.2f", e.ComputeUSDPer1M))
	t.AddRow("cost per request", fmt.Sprintf("$%.7f", e.PerRequestUSD))
	t.AddRow("proxy counter state", fmt.Sprintf("%.1f MB", e.ProxyCounterMB))
	t.Notes = append(t.Notes,
		"paper (§6.3.3): $1.52/month storage, $18.3 bandwidth + $3.7 compute per 1M accesses, $0.000023/request",
		"our sizes include AES-GCM tags and framing; the paper prices idealized 128-bit ciphertexts")
	return t, nil
}

// Fig6Factors reproduces the appendix Figure 6 trade-off: storage
// factor f_s = 1/y, communication factor f_c = 2^y/y, and the total,
// showing the optimum at y=2.
func Fig6Factors(Options) (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Storage vs communication overhead factors across y (appendix §10.1)",
		Columns: []string{"y", "f_s (storage)", "f_c (comm)", "total"},
	}
	bestY, bestTotal := 0, 0.0
	for y := 1; y <= 6; y++ {
		fs := 1.0 / float64(y)
		fc := float64(int(1)<<uint(y)) / float64(y)
		total := fs + fc
		if bestY == 0 || total < bestTotal {
			bestY, bestTotal = y, total
		}
		t.AddRow(fmt.Sprint(y), fmt.Sprintf("%.3f", fs), fmt.Sprintf("%.3f", fc), fmt.Sprintf("%.3f", total))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("minimum total overhead at y=%d (paper: y=2)", bestY))
	return t, nil
}

// LBLModeAblation compares the three LBL variants' request sizes,
// record sizes, and server decrypt work — the design choices §10
// motivates. It is an extension beyond the paper's figures.
func LBLModeAblation(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation-lbl",
		Title:   "LBL variant ablation (Oregon link, 160B values)",
		Columns: []string{"mode", "record(B)", "request(B)", "mean-lat(ms)", "tput(ops/s)", "decrypts/op"},
	}
	wl := workloadDefaults(opt)
	modes := []core.LBLMode{core.LBLBasic, core.LBLSpaceOpt, core.LBLPointPermute, core.LBLWide, core.LBLWidePointPermute}
	if opt.Quick {
		modes = modes[:3]
	}
	for _, mode := range modes {
		cfg := core.LBLConfig{ValueSize: paperValueSize, Mode: mode}
		cluster, err := NewCluster(Config{
			System: SystemLBL, Link: netsim.Oregon, ValueSize: paperValueSize,
			LBLMode: mode, ConnsPerShard: minInt(opt.conc(), 64),
			Data: workload.InitialData(wl),
		})
		if err != nil {
			return nil, err
		}
		res, err := Run(RunConfig{Cluster: cluster, Workload: wl, Concurrency: opt.conc(), OpsPerClient: opt.ops()})
		if err != nil {
			cluster.Close()
			return nil, fmt.Errorf("%v: %w", mode, err)
		}
		decryptsPerOp := float64(cluster.shards[0].lblSrv.DecryptAttempts()) / float64(res.Ops)
		cluster.Close()
		t.AddRow(mode.String(), fmt.Sprint(cfg.ServerBytesPerValue()), fmt.Sprint(cfg.RequestBytesPerAccess()),
			fmtMS(res.Latency.Mean), fmtTput(res.Throughput), fmt.Sprintf("%.0f", decryptsPerOp))
	}
	t.Notes = append(t.Notes,
		"space-opt halves the record vs basic; point-and-permute halves server decrypts vs space-opt (§10)",
		"y=4 halves the record again but doubles the request (Fig 6's f_c=4) — why the paper picks y=2")
	return t, nil
}

func workloadDefaults(opt Options) workload.Config {
	return workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 10}
}

// EnclaveCostAblation measures TEE-ORTOA latency as the simulated
// enclave transition cost grows — the §6.2.1 observation that enclave
// paging dominates past the core count.
func EnclaveCostAblation(opt Options) (*Table, error) {
	t := &Table{
		ID:      "ablation-tee",
		Title:   "TEE enclave transition-cost sensitivity (Oregon link, 160B values)",
		Columns: []string{"ecall-cost", "mean-lat(ms)", "tput(ops/s)"},
	}
	costs := []time.Duration{0, 100 * time.Microsecond, time.Millisecond, 5 * time.Millisecond}
	if opt.Quick {
		costs = []time.Duration{0, time.Millisecond}
	}
	wl := workloadDefaults(opt)
	for _, cost := range costs {
		res, err := Measure(Config{
			System: SystemTEE, Link: netsim.Oregon, ValueSize: paperValueSize,
			EnclaveTransition: cost,
		}, wl, opt.conc(), opt.ops())
		if err != nil {
			return nil, err
		}
		t.AddRow(cost.String(), fmtMS(res.Latency.Mean), fmtTput(res.Throughput))
	}
	return t, nil
}
