package harness

import (
	"errors"
	"fmt"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/stats"
	"ortoa/internal/transport"
)

// busyDelay returns how long a workload worker backs off after a busy
// rejection: the shedder's retry-after hint when it reached the client
// intact, else a small default — enough to let a slot free up without
// the saturation drill ever going idle.
func busyDelay(err error) time.Duration {
	var be *transport.BusyError
	if errors.As(err, &be) && be.RetryAfter > 0 {
		return be.RetryAfter
	}
	return 2 * time.Millisecond
}

// Overload drives the deployment past saturation and checks that it
// degrades the way §15 of DESIGN.md promises instead of collapsing:
//
//   - Phase 1 measures capacity: the admission-limited 2-proxy cluster
//     under exactly as many workers as it has admission slots, i.e. the
//     load it was provisioned for. No shedding is expected here.
//   - Phase 2 offers 10x that concurrency against the same cluster.
//     Admission control must shed the overflow with constant-size busy
//     frames while the accepted requests keep flowing.
//
// The experiment then asserts the overload invariants:
//
//   - Goodput under 10x overload stays >= 70% of measured capacity —
//     shedding costs a little throughput, saturation collapse costs all
//     of it.
//   - Accepted requests keep a bounded p99 (no accepted request rode a
//     multi-second queue; the queue's job is to stay short and shed).
//   - The overflow was actually shed: admission counters moved.
//   - Zero lost acknowledged writes: busy rejections are definite
//     not-executed outcomes, so the audit's acceptable sets never widen
//     on a shed write.
//   - Zero obliviousness shape violations: busy frames, expired-round
//     rejections, and breaker traffic all stay inside the fixed frame
//     classes the shape auditor pins.
func Overload(opt Options) (*Table, error) {
	t := &Table{
		ID:    "overload",
		Title: "Overload shedding: goodput and bounded latency at 10x offered load (LBL, admission-limited)",
		Columns: []string{"phase", "workers", "ops", "ok", "busy", "expired",
			"shed@adm", "tput(ops/s)", "p99(ms)"},
	}

	baseWorkers := opt.conc()
	capOps := opt.ops() * 8
	overWorkers := 10 * baseWorkers
	overOps := opt.ops() * 3

	// Disjoint key sets per phase: a key written in phase 1 must never
	// be read against phase 2's acceptable sets (and vice versa), so
	// each phase audits only its own writes.
	capKeys := make([]string, baseWorkers*4)
	overKeys := make([]string, overWorkers*2)
	data := make(map[string][]byte, len(capKeys)+len(overKeys))
	for i := range capKeys {
		capKeys[i] = fmt.Sprintf("capacity-%04d", i)
		data[capKeys[i]] = chaosValue(paperValueSize, uint64(i), 13)
	}
	for i := range overKeys {
		overKeys[i] = fmt.Sprintf("overload-%04d", i)
		data[overKeys[i]] = chaosValue(paperValueSize, uint64(i), 15)
	}

	// One cluster for both phases, provisioned for baseWorkers: every
	// shard server and proxy front end admits at most baseWorkers
	// concurrent requests plus a bounded LIFO queue, sheds
	// deadline-expired work, and hints the retry pace.
	reg := obs.NewRegistry()
	cluster, err := NewCluster(Config{
		System:        SystemLBL,
		Link:          netsim.Link{RTT: time.Millisecond},
		ValueSize:     paperValueSize,
		Data:          data,
		LBLMode:       core.LBLPointPermute,
		ConnsPerShard: 8,
		Proxies:       2,
		Transport: transport.Options{
			CallTimeout:      250 * time.Millisecond,
			Retry:            transport.RetryPolicy{Attempts: 3, Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
			ReconnectBackoff: 5 * time.Millisecond,
		},
		Admission: &transport.AdmissionConfig{
			MaxInflight: baseWorkers,
			MaxQueue:    2 * baseWorkers,
			ShedExpired: true,
			RetryAfter:  5 * time.Millisecond,
		},
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	// Phase 1: capacity at provisioned concurrency.
	rec1 := stats.NewRecorder(baseWorkers * capOps)
	start := time.Now()
	states1, tot1, werr := mixedWorkload(cluster, capKeys, baseWorkers, capOps, 14, nil, rec1)
	elapsed1 := time.Since(start)
	if werr != nil {
		return nil, fmt.Errorf("harness: overload capacity phase: %w", werr)
	}
	if tot1.ok == 0 {
		return nil, fmt.Errorf("harness: capacity phase completed no operations")
	}
	capacity := float64(tot1.ok) / elapsed1.Seconds()
	adm1 := cluster.AdmissionStats()
	sum1 := rec1.Summarize()

	// Phase 2: 10x offered load against the same admission limits.
	rec2 := stats.NewRecorder(overWorkers * overOps)
	start = time.Now()
	states2, tot2, werr := mixedWorkload(cluster, overKeys, overWorkers, overOps, 16, nil, rec2)
	elapsed2 := time.Since(start)
	if werr != nil {
		return nil, fmt.Errorf("harness: overload 10x phase: %w", werr)
	}
	goodput := float64(tot2.ok) / elapsed2.Seconds()
	adm2 := cluster.AdmissionStats()
	sum2 := rec2.Summarize()
	shed2 := (adm2.Shed + adm2.Expired) - (adm1.Shed + adm1.Expired)

	// Invariants. Goodput is the one the paper's threat model cannot
	// buy back: an overloaded oblivious store must stay an oblivious
	// store, not become a slow open one.
	if goodput < 0.7*capacity {
		return nil, fmt.Errorf("harness: goodput collapsed under 10x load: %.0f ops/s vs capacity %.0f (floor 70%%; %d busy, %d expired, p99 %s)",
			goodput, capacity, tot2.busy, tot2.expired, sum2.P99)
	}
	if sum2.P99 > 2*time.Second {
		return nil, fmt.Errorf("harness: accepted-request p99 unbounded under overload: %s", sum2.P99)
	}
	if shed2 <= 0 {
		return nil, fmt.Errorf("harness: 10x offered load shed nothing (shed=%d expired=%d) — admission control inert",
			adm2.Shed-adm1.Shed, adm2.Expired-adm1.Expired)
	}

	// Audit both phases' keys on the now-idle cluster: every busy or
	// expired rejection claimed "not executed", so no acceptable set may
	// have silently widened, and no acknowledged write may be lost.
	audited := 0
	for _, states := range [][]map[string]*keyAudit{states1, states2} {
		n, err := auditKeys(cluster, states)
		if err != nil {
			return nil, fmt.Errorf("harness: overload audit: %w", err)
		}
		audited += n
	}
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		return nil, fmt.Errorf("harness: obliviousness shape violations under overload: proxy=%d server=%d", vp, vs)
	}

	t.AddRow("capacity", fmt.Sprint(baseWorkers), fmt.Sprint(tot1.ops), fmt.Sprint(tot1.ok),
		fmt.Sprint(tot1.busy), fmt.Sprint(tot1.expired), fmt.Sprint(adm1.Shed+adm1.Expired),
		fmtTput(capacity), fmtMS(sum1.P99))
	t.AddRow("10x-overload", fmt.Sprint(overWorkers), fmt.Sprint(tot2.ops), fmt.Sprint(tot2.ok),
		fmt.Sprint(tot2.busy), fmt.Sprint(tot2.expired), fmt.Sprint(shed2),
		fmtTput(goodput), fmtMS(sum2.P99))
	t.Notes = append(t.Notes,
		fmt.Sprintf("goodput under 10x load: %.0f%% of measured capacity (floor 70%%); accepted-request p99 %s (bound 2s)",
			100*goodput/capacity, sum2.P99.Round(time.Millisecond)),
		fmt.Sprintf("audit passed: %d keys consistent across both phases — every busy/expired rejection really was not executed",
			audited),
		fmt.Sprintf("router under saturation: %d busy rejections surfaced for backoff, %d breaker trips; server dropped %d expired-on-arrival rounds before decrypt",
			reg.Value("ortoa_router_busy_total"), reg.Value("ortoa_router_breaker_trips_total"),
			reg.Value("ortoa_lbl_server_expired_rounds_total")),
		"shape auditor: 0 length violations — busy frames and expired-round rejections are frame-class invisible")
	return t, nil
}
