package harness

import (
	"fmt"
	"io"
	"sort"
)

// An Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID          string
	Description string
	Run         func(Options) (*Table, error)
}

// Experiments lists every reproducible result, in the paper's order.
var Experiments = []Experiment{
	{"table2", "datacenter RTT configuration (Table 2)", Table2},
	{"fig2a", "ORTOA vs 2RTT across server locations (Fig 2a)", Fig2a},
	{"fig2b", "increasing concurrency (Fig 2b)", Fig2b},
	{"fig2c", "varying write percentage (Fig 2c)", Fig2c},
	{"fig2d", "varying database size (Fig 2d)", Fig2d},
	{"fig3a", "scaling proxy/server pairs (Fig 3a)", Fig3a},
	{"fig3b", "varying value size vs baseline (Fig 3b)", Fig3b},
	{"fig3c", "LBL latency breakdown (Fig 3c)", Fig3c},
	{"fig3d", "EU server, 300B objects (Fig 3d)", Fig3d},
	{"fig4", "real-world datasets (Fig 4)", Fig4},
	{"fhe-noise", "FHE noise growth to failure (§3.3)", FHENoise},
	{"cost", "dollar-cost model (§6.3.3)", CostModel},
	{"fig6", "storage/communication overhead factors (appendix Fig 6)", Fig6Factors},
	{"ablation-lbl", "LBL variant ablation (§10, extension)", LBLModeAblation},
	{"ablation-tee", "TEE transition-cost sensitivity (§6.2.1, extension)", EnclaveCostAblation},
	{"ablation-fhe-relin", "FHE-ORTOA with vs without relinearization (extension)", FHERelinAblation},
	{"ablation-zipf", "LBL-ORTOA under Zipfian key skew (extension)", ZipfAblation},
	{"batch", "batched access pipeline vs concurrent singles (extension)", BatchPipeline},
	{"aggregate", "cross-session aggregation window vs per-request proxying (extension)", Aggregate},
	{"chaos", "mixed workload under injected transport faults (robustness extension)", Chaos},
	{"failover", "multi-proxy kill-and-adopt drill with epoch-fenced ownership (robustness extension)", Failover},
	{"overload", "overload shedding: goodput and bounded latency at 10x offered load (robustness extension)", Overload},
	{"crash", "repeated kill/restart under durable-on-ack group commit (robustness extension)", Crash},
	{"attack-snapshot", "multi-snapshot adversary vs plain store and ORTOA (§1)", SnapshotAttack},
	{"oram-rounds", "one-round vs two-round tree ORAM (§8 sketch)", ORAMRounds},
	{"stages", "measured LBL per-stage latency breakdown (Fig 3c companion)", Stages},
	{"trace", "Fig 3c breakdown from one cross-process distributed trace (observability extension)", TraceBreakdown},
	{"bench", "LBL kernel microbenchmarks with JSON output (perf baseline)", Bench},
	{"stream", "chunk-streamed table build pipelined against the wire vs monolithic (perf extension)", Stream},
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(Experiments))
	for i, e := range Experiments {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment and renders results to w.
func RunAll(w io.Writer, opt Options) error {
	for _, e := range Experiments {
		t, err := e.Run(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
