package harness

import (
	"fmt"
	"io"
	"strings"
)

// A Table is one experiment's output: the rows/series the paper's
// corresponding figure or table reports.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry shape commentary (factors, crossovers) that the
	// paper states in prose.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); i < len(cells)-1 && pad > 0 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total >= 2 {
		total -= 2
	}
	return total
}
