package harness

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"ortoa/internal/core"
	"ortoa/internal/netsim"
	"ortoa/internal/obs"
	"ortoa/internal/stats"
	"ortoa/internal/transport"
	"ortoa/internal/workload"
)

// Failover exercises the multi-proxy high-availability deployment:
// N trusted proxies share one PRF secret, counter ownership is
// ring-partitioned and epoch-fenced at the server, and clients reach
// the fleet through the health-probing core.Router.
//
// Phase 1 scales the fleet 1→8 proxies over one server and reports
// latency/throughput — proxy-side crypto (table build, label recovery)
// scales out until the shared server saturates.
//
// Phase 2 is the kill-and-adopt drill: a 3-proxy fleet serves a live
// mixed workload while the coordinator crash-kills the proxy owning
// the first key's range, lets the survivors adopt its ranges through
// the epoch fence (claim → counter rebase via the reconcile spiral),
// then recovers it — the reborn proxy starts empty and re-adopts on
// demand. The audit then asserts the failover invariants:
//
//   - Zero lost acknowledged writes: every confirmed write's value (or
//     a legitimately ambiguous successor) is what the key reads back.
//   - At most one round per counter value applied: every key reads
//     cleanly after the handoff — a double-applied round would
//     desynchronize the label schedule permanently (ErrTampered).
//   - Zero obliviousness shape violations: fences, claims, adoption
//     retries, and failover traffic all stay inside the fixed frame
//     classes the shape auditor pins.
func Failover(opt Options) (*Table, error) {
	t := &Table{
		ID:    "failover",
		Title: "Multi-proxy HA: fleet scaling and kill-and-adopt drill (LBL, epoch-fenced ownership)",
		Columns: []string{"phase", "proxies", "ops", "ok", "mean-lat(ms)",
			"tput(ops/s)", "failovers", "claims", "fenced@server"},
	}

	// Phase 1: fleet scaling over one shared server.
	levels := []int{1, 2, 4, 8}
	if opt.Quick {
		levels = []int{1, 3}
	}
	wl := workload.Config{NumKeys: opt.keys(), ValueSize: paperValueSize, WriteFraction: 0.5, Seed: 21}
	for _, n := range levels {
		res, err := Measure(Config{
			System: SystemLBL, Link: netsim.Oregon, ValueSize: paperValueSize,
			LBLMode: core.LBLPointPermute, Proxies: n,
			Transport: transport.Options{ReconnectBackoff: 5 * time.Millisecond},
		}, wl, opt.conc(), opt.ops())
		if err != nil {
			return nil, fmt.Errorf("harness: failover scaling @%d proxies: %w", n, err)
		}
		t.AddRow("scale", fmt.Sprint(n), fmt.Sprint(opt.conc()*opt.ops()), "-",
			fmtMS(res.Latency.Mean), fmtTput(res.Throughput), "-", "-", "-")
	}

	// Phase 2: the kill-and-adopt drill.
	workers := opt.conc()
	const keysPerWorker = 4
	opsPerWorker := opt.ops() * 8

	nKeys := workers * keysPerWorker
	data := make(map[string][]byte, nKeys)
	keys := make([]string, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("failover-%04d", i)
		data[keys[i]] = chaosValue(paperValueSize, uint64(i), 3)
	}

	reg := obs.NewRegistry()
	cluster, err := NewCluster(Config{
		System:        SystemLBL,
		Link:          netsim.Link{RTT: time.Millisecond},
		ValueSize:     paperValueSize,
		Data:          data,
		LBLMode:       core.LBLPointPermute,
		ConnsPerShard: 4,
		Proxies:       3,
		Transport: transport.Options{
			CallTimeout:      250 * time.Millisecond,
			Retry:            transport.RetryPolicy{Attempts: 4, Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
			ReconnectBackoff: 5 * time.Millisecond,
		},
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	startupClaims := reg.Value("ortoa_lbl_epoch_claims_total")

	// Kill the proxy that owns the first key's range, so at least that
	// key's traffic is guaranteed to cross the ownership fence.
	victim := -1
	if owner := cluster.Router().Ring().OwnerOfKey(keys[0]); owner != "" {
		fmt.Sscanf(owner, "proxy-%d", &victim) //nolint:errcheck // validated below
	}
	if victim < 0 || victim >= cluster.Proxies() {
		return nil, fmt.Errorf("harness: cannot resolve victim proxy for %q", keys[0])
	}

	total := int64(workers * opsPerWorker)
	killAt, recoverAt := total/3, 2*total/3
	var done atomic.Int64
	coordErr := make(chan error, 1)
	go func() {
		for done.Load() < killAt {
			time.Sleep(time.Millisecond)
		}
		if err := cluster.KillProxy(victim); err != nil {
			coordErr <- fmt.Errorf("killing proxy %d: %w", victim, err)
			return
		}
		for done.Load() < recoverAt {
			time.Sleep(time.Millisecond)
		}
		coordErr <- cluster.RecoverProxy(victim)
	}()

	start := time.Now()
	states, totals, werr := mixedWorkload(cluster, keys, workers, opsPerWorker, 4, &done, nil)
	elapsed := time.Since(start)
	// Always drain the coordinator (mixedWorkload's final done.Store
	// releases it) so kill/recover never race the deferred Close.
	cerr := <-coordErr
	if werr != nil {
		return nil, fmt.Errorf("harness: failover workload: %w", werr)
	}
	if cerr != nil {
		return nil, fmt.Errorf("harness: failover drill: %w", cerr)
	}

	// The reborn proxy must be probed back into the ring before the
	// audit, so audit reads exercise its on-demand re-adoption too.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Value("ortoa_router_healthy_members") < int64(cluster.Proxies()) {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("harness: recovered proxy %d never readmitted (healthy=%d)",
				victim, reg.Value("ortoa_router_healthy_members"))
		}
		time.Sleep(5 * time.Millisecond)
	}

	audited, err := auditKeys(cluster, states)
	if err != nil {
		return nil, fmt.Errorf("harness: failover audit: %w", err)
	}

	failovers := reg.Value("ortoa_router_failovers_total")
	claims := reg.Value("ortoa_lbl_epoch_claims_total")
	fenced := reg.Value("ortoa_lbl_server_fenced_rounds_total")
	if fenced == 0 {
		return nil, fmt.Errorf("harness: kill drill never crossed the epoch fence (victim %d owned no live keys?)", victim)
	}
	if claims <= startupClaims {
		return nil, fmt.Errorf("harness: no adoption claims after the kill (claims %d, startup %d)", claims, startupClaims)
	}
	if failovers == 0 {
		return nil, fmt.Errorf("harness: router recorded no failovers across a proxy kill")
	}
	if vp, vs := shapeViolations(reg); vp+vs != 0 {
		return nil, fmt.Errorf("harness: obliviousness shape violations during failover: proxy=%d server=%d", vp, vs)
	}

	tput := float64(totals.ops) / elapsed.Seconds()
	t.AddRow("kill-adopt", "3", fmt.Sprint(totals.ops), fmt.Sprint(totals.ok), "-",
		fmtTput(tput), fmt.Sprint(failovers), fmt.Sprint(claims), fmt.Sprint(fenced))
	t.AddRow("audit", "3", fmt.Sprint(audited), fmt.Sprint(audited), "-", "-", "-",
		fmt.Sprint(reg.Value("ortoa_lbl_epoch_claims_total")), fmt.Sprint(reg.Value("ortoa_lbl_server_fenced_rounds_total")))
	t.Notes = append(t.Notes,
		fmt.Sprintf("audit passed: %d keys consistent across kill+recovery of proxy-%d — zero lost acked writes, label schedules intact", audited, victim),
		fmt.Sprintf("ownership handoff: %d adoption claims past the %d startup claims; %d rounds fenced at the server; %d router failovers",
			claims-startupClaims, startupClaims, fenced, failovers),
		"shape auditor: 0 length violations — fence rejections, claims, and adoption retries are frame-class invisible")
	return t, nil
}

// workloadTotals aggregates a mixedWorkload run.
type workloadTotals struct{ ops, ok, amb, busy, expired int64 }

// keyAudit tracks the set of values one key may legitimately hold: the
// last confirmed value plus any write whose outcome was left ambiguous.
type keyAudit struct{ acceptable map[string]bool }

func opName(isRead bool) string {
	if isRead {
		return "read"
	}
	return "write"
}

// maxBusyRetries bounds how often one operation may be re-offered
// after busy rejections before the workload declares starvation. At
// millisecond retry-after hints this is tens of seconds of refusal on
// one op — admission control always admits MaxInflight requests, so a
// live deployment can only hit this if shedding stopped making progress.
const maxBusyRetries = 10000

// mixedWorkload drives a 50/50 read/write workload with workers owning
// disjoint key sets (keys is split evenly), tracking per-key acceptable
// value sets for a later audit. Busy rejections are definite
// not-executed outcomes, so the op is re-offered in place after the
// shedder's retry-after hint (counted per rejection in totals.busy) —
// the closed-loop behavior of a client honoring the hint. gen
// namespaces written values; done, when non-nil, is bumped after every
// completed operation so a coordinator can time fault injection
// against progress; rec, when non-nil, records the latency of every
// successful operation (the accepted-request latency the overload
// experiment bounds).
func mixedWorkload(cluster *Cluster, keys []string, workers, opsPerWorker int, gen uint64, done *atomic.Int64, rec *stats.Recorder) ([]map[string]*keyAudit, workloadTotals, error) {
	keysPerWorker := len(keys) / workers
	states := make([]map[string]*keyAudit, workers)
	var (
		mu         sync.Mutex
		firstFatal error
		totals     workloadTotals
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(gen, uint64(w)))
			own := keys[w*keysPerWorker : (w+1)*keysPerWorker]
			st := make(map[string]*keyAudit, len(own))
			for _, k := range own {
				ka := &keyAudit{acceptable: map[string]bool{}}
				if v, seeded := cluster.cfg.Data[k]; seeded {
					ka.acceptable[string(v)] = true
				}
				st[k] = ka
			}
			states[w] = st
			var ops, ok, amb, busy, expired int64
			var fatal error
			for i := 0; i < opsPerWorker && fatal == nil; i++ {
				key := own[rng.IntN(len(own))]
				ops++
				isRead := rng.IntN(2) == 0
				var val []byte
				if !isRead {
					val = chaosValue(cluster.cfg.ValueSize, uint64(w*opsPerWorker+i), gen)
				}
				for tries := 0; fatal == nil; tries++ {
					opStart := time.Now()
					var got []byte
					var err error
					if isRead {
						got, _, err = cluster.Access(core.OpRead, key, nil)
					} else {
						_, _, err = cluster.Access(core.OpWrite, key, val)
					}
					if transport.IsBusy(err) {
						// Shed before executing — definite, so the acceptable
						// set is unchanged and the op can simply be offered
						// again after the shedder's hint.
						busy++
						if tries >= maxBusyRetries {
							fatal = fmt.Errorf("worker %d: %q starved: %d consecutive busy rejections", w, key, tries)
							break
						}
						time.Sleep(busyDelay(err))
						continue
					}
					switch {
					case err == nil:
						if isRead && len(st[key].acceptable) > 0 && !st[key].acceptable[string(got)] {
							fatal = fmt.Errorf("worker %d: read %q returned a value no write produced (lost or duplicated write)", w, key)
							break
						}
						ok++
						if rec != nil {
							rec.Add(time.Since(opStart))
						}
						if isRead {
							st[key].acceptable = map[string]bool{string(got): true}
						} else {
							st[key].acceptable = map[string]bool{string(val): true}
						}
					case transport.Ambiguous(err):
						amb++ // outcome unknown; reads don't change state
						if !isRead {
							st[key].acceptable[string(val)] = true // may or may not have applied
						}
					case core.IsHandoffTransient(err), core.IsDeadlineExpired(err):
						// Definite rejection mid-handoff, or the deadline
						// budget ran out before the round executed — the
						// acceptable set is unchanged either way. An app
						// would retry; here it is a skipped op.
						if core.IsDeadlineExpired(err) {
							expired++
						}
					default:
						fatal = fmt.Errorf("worker %d: %s %q: %w", w, opName(isRead), key, err)
					}
					break
				}
				if done != nil {
					done.Add(1)
				}
			}
			mu.Lock()
			totals.ops += ops
			totals.ok += ok
			totals.amb += amb
			totals.busy += busy
			totals.expired += expired
			if fatal != nil && firstFatal == nil {
				firstFatal = fatal
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if done != nil {
		// Release a coordinator still waiting on a progress threshold.
		done.Store(int64(workers) * int64(opsPerWorker))
	}
	return states, totals, firstFatal
}

// auditKeys re-reads every tracked key on a healthy deployment: reads
// must succeed (label schedule consistent — at most one round per
// counter value ever applied) and return an acceptable value (no
// acknowledged write lost, none applied twice).
func auditKeys(cluster *Cluster, states []map[string]*keyAudit) (int, error) {
	audited := 0
	for _, st := range states {
		for key, ka := range st {
			got, _, err := cluster.Access(core.OpRead, key, nil)
			if err != nil {
				if errors.Is(err, core.ErrTampered) {
					return audited, fmt.Errorf("%q label schedule desynchronized: %w", key, err)
				}
				return audited, fmt.Errorf("read %q after recovery: %w", key, err)
			}
			if len(ka.acceptable) > 0 && !ka.acceptable[string(got)] {
				return audited, fmt.Errorf("%q holds a value no write produced (lost or duplicated write)", key)
			}
			audited++
		}
	}
	return audited, nil
}
