package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"ortoa/internal/core"
)

// This file implements the "bench" experiment: machine-readable
// microbenchmarks of the two LBL-ORTOA CPU kernels (table build and
// recover/apply) across worker counts, written as JSON so CI and the
// perf baseline (BENCH_5.json) can compare runs mechanically.

// A BenchPoint is one measured kernel configuration.
type BenchPoint struct {
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// A BenchReport is the bench experiment's JSON document.
type BenchReport struct {
	ValueSize  int          `json:"value_size"`
	Mode       string       `json:"mode"`
	NumCPU     int          `json:"cpus_available"`
	GoMaxProcs int          `json:"gomaxprocs"`
	GoVersion  string       `json:"go_version"`
	TableBuild []BenchPoint `json:"table_build"`
	Recover    []BenchPoint `json:"recover"`
	// TableBuildSpeedup8w is ops/s at 8 workers over ops/s at 1 worker.
	// It only reflects multicore scaling when cpus_available >= 8;
	// regenerate with `make bench-json` on the target hardware.
	TableBuildSpeedup8w float64 `json:"table_build_speedup_8w_vs_1w"`
	Note                string  `json:"note,omitempty"`
}

// benchWorkerCounts are the fan-outs BENCH_5.json records.
var benchWorkerCounts = []int{1, 4, 8}

// measureKernel times ops calls of run, returning throughput, latency
// quantiles, and heap churn per op.
func measureKernel(ops int, run func() error) (BenchPoint, error) {
	lat := make([]time.Duration, ops)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := run(); err != nil {
			return BenchPoint{}, err
		}
		lat[i] = time.Since(t0)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		i := int(p * float64(ops-1))
		return float64(lat[i]) / float64(time.Microsecond)
	}
	return BenchPoint{
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		P50Micros:   q(0.50),
		P99Micros:   q(0.99),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
	}, nil
}

// Bench measures the table-build and recover kernels at 1 KiB values
// in basic mode (the ISSUE-5 baseline configuration) across worker
// counts, and writes the JSON report to opt.BenchOut if set.
func Bench(opt Options) (*Table, error) {
	valueSize := 1024
	buildOps := 300
	recoverWindows := 6
	window := 32
	if opt.Quick {
		valueSize = 64
		buildOps = 30
		recoverWindows = 2
		window = 8
	}
	cfg := core.LBLConfig{ValueSize: valueSize, Mode: core.LBLBasic}

	report := BenchReport{
		ValueSize:  valueSize,
		Mode:       cfg.Mode.String(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if report.NumCPU < 8 {
		report.Note = fmt.Sprintf("only %d CPU(s) available: multi-worker points measure goroutine overhead, not parallel speedup; regenerate on >=8 cores for the scaling claim", report.NumCPU)
	}

	// Worker counts above GOMAXPROCS cannot run in parallel; raise the
	// limit for the duration so an 8-worker point on an 8-core box
	// actually uses 8 cores.
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	for _, workers := range benchWorkerCounts {
		if workers > prevProcs {
			runtime.GOMAXPROCS(workers)
		}
		k, err := core.NewTableBuildKernel(cfg, workers)
		if err != nil {
			return nil, err
		}
		k.Op() // warm the writer pool and page in the table
		pt, err := measureKernel(buildOps, k.Op)
		if err != nil {
			return nil, err
		}
		pt.Workers = workers
		report.TableBuild = append(report.TableBuild, pt)

		rk, err := core.NewRecoverKernel(cfg, window, workers)
		if err != nil {
			return nil, err
		}
		rlat := make([]BenchPoint, 0, recoverWindows)
		for w := 0; w < recoverWindows; w++ {
			if err := rk.Prepare(); err != nil {
				return nil, err
			}
			rp, err := measureKernel(rk.Window(), rk.Op)
			if err != nil {
				return nil, err
			}
			rlat = append(rlat, rp)
		}
		// Merge the windows: total ops over total time, worst quantiles.
		var merged BenchPoint
		merged.Workers = workers
		var totalSec float64
		for _, rp := range rlat {
			merged.Ops += rp.Ops
			totalSec += float64(rp.Ops) / rp.OpsPerSec
			merged.BytesPerOp += rp.BytesPerOp * float64(rp.Ops)
			merged.AllocsPerOp += rp.AllocsPerOp * float64(rp.Ops)
			if rp.P50Micros > merged.P50Micros {
				merged.P50Micros = rp.P50Micros
			}
			if rp.P99Micros > merged.P99Micros {
				merged.P99Micros = rp.P99Micros
			}
		}
		merged.OpsPerSec = float64(merged.Ops) / totalSec
		merged.BytesPerOp /= float64(merged.Ops)
		merged.AllocsPerOp /= float64(merged.Ops)
		report.Recover = append(report.Recover, merged)
		runtime.GOMAXPROCS(prevProcs)
	}

	if len(report.TableBuild) >= 3 && report.TableBuild[0].OpsPerSec > 0 {
		report.TableBuildSpeedup8w = report.TableBuild[2].OpsPerSec / report.TableBuild[0].OpsPerSec
	}

	if opt.BenchOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(opt.BenchOut, blob, 0o644); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:      "bench",
		Title:   fmt.Sprintf("LBL kernel microbenchmarks (%dB values, %s)", valueSize, report.Mode),
		Columns: []string{"kernel", "workers", "ops/s", "p50 us", "p99 us", "B/op", "allocs/op"},
	}
	for _, pt := range report.TableBuild {
		t.AddRow("table-build", fmt.Sprint(pt.Workers), fmt.Sprintf("%.0f", pt.OpsPerSec),
			fmt.Sprintf("%.0f", pt.P50Micros), fmt.Sprintf("%.0f", pt.P99Micros),
			fmt.Sprintf("%.0f", pt.BytesPerOp), fmt.Sprintf("%.1f", pt.AllocsPerOp))
	}
	for _, pt := range report.Recover {
		t.AddRow("recover", fmt.Sprint(pt.Workers), fmt.Sprintf("%.0f", pt.OpsPerSec),
			fmt.Sprintf("%.0f", pt.P50Micros), fmt.Sprintf("%.0f", pt.P99Micros),
			fmt.Sprintf("%.0f", pt.BytesPerOp), fmt.Sprintf("%.1f", pt.AllocsPerOp))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("table-build speedup 8w vs 1w: %.2fx on %d CPU(s)", report.TableBuildSpeedup8w, report.NumCPU))
	if report.Note != "" {
		t.Notes = append(t.Notes, report.Note)
	}
	return t, nil
}
