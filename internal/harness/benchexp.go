package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"ortoa/internal/core"
)

// This file implements the "bench" experiment: machine-readable
// microbenchmarks of the two LBL-ORTOA CPU kernels (table build and
// recover/apply) across worker counts, written as JSON so CI and the
// perf baseline (BENCH_5.json) can compare runs mechanically.

// A BenchPoint is one measured kernel configuration.
type BenchPoint struct {
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// A BenchReport is the bench experiment's JSON document.
type BenchReport struct {
	ValueSize  int          `json:"value_size"`
	Mode       string       `json:"mode"`
	NumCPU     int          `json:"cpus_available"`
	GoMaxProcs int          `json:"gomaxprocs"`
	GoVersion  string       `json:"go_version"`
	TableBuild []BenchPoint `json:"table_build"`
	Recover    []BenchPoint `json:"recover"`
	// TableBuildSpeedup8w is ops/s at 8 workers over ops/s at 1 worker.
	// It only reflects multicore scaling when cpus_available >= 8;
	// regenerate with `make bench-json` on the target hardware.
	TableBuildSpeedup8w float64 `json:"table_build_speedup_8w_vs_1w"`
	// Stream is the streamed-vs-monolithic end-to-end point over a
	// calibrated netsim link (see StreamBench). Additive: baselines
	// without it stay comparable, and the regression gate ignores it
	// (end-to-end numbers fold in simulated link time, not just code).
	Stream *StreamBench `json:"stream,omitempty"`
	Note   string       `json:"note,omitempty"`
}

// benchWorkerCounts are the fan-outs BENCH_5.json records.
var benchWorkerCounts = []int{1, 4, 8}

// benchRegressionPct is the CI perf gate: a kernel point whose ops/s
// dropped more than this far below the checked-in baseline fails the
// bench experiment (when the run is comparable to the baseline at
// all — see compareBenchBaseline).
const benchRegressionPct = 25.0

// compareBenchBaseline checks report against the baseline JSON at
// path. It returns notes describing the comparison and an error when
// any kernel point regressed beyond benchRegressionPct. The gate only
// arms when the runs are actually comparable: same value size (quick
// mode measures 64B kernels, the baseline 1024B — numbers from
// different shapes mean nothing) and same CPU count (a 2-core CI
// runner is not slower code, it is a smaller machine). Incomparable
// runs produce a skip note, not a pass.
func compareBenchBaseline(path string, report BenchReport) ([]string, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench baseline: %w", err)
	}
	var base BenchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	if base.ValueSize != report.ValueSize {
		return []string{fmt.Sprintf("baseline %s measures %dB values, this run %dB: regression gate skipped (never compare quick to full)",
			path, base.ValueSize, report.ValueSize)}, nil
	}
	if base.NumCPU != report.NumCPU {
		return []string{fmt.Sprintf("baseline %s recorded on %d CPU(s), this host has %d: regression gate skipped (different machine, not different code)",
			path, base.NumCPU, report.NumCPU)}, nil
	}

	index := func(pts []BenchPoint) map[int]BenchPoint {
		m := make(map[int]BenchPoint, len(pts))
		for _, pt := range pts {
			m[pt.Workers] = pt
		}
		return m
	}
	var worst float64
	var worstAt string
	check := func(kernel string, basePts, gotPts []BenchPoint) {
		baseBy := index(basePts)
		for _, got := range gotPts {
			b, ok := baseBy[got.Workers]
			if !ok || b.OpsPerSec <= 0 {
				continue
			}
			drop := 100 * (b.OpsPerSec - got.OpsPerSec) / b.OpsPerSec
			if drop > worst {
				worst = drop
				worstAt = fmt.Sprintf("%s@%dw (%.0f -> %.0f ops/s)", kernel, got.Workers, b.OpsPerSec, got.OpsPerSec)
			}
		}
	}
	check("table-build", base.TableBuild, report.TableBuild)
	check("recover", base.Recover, report.Recover)

	note := fmt.Sprintf("vs baseline %s: worst ops/s drop %.1f%% at %s (gate: %.0f%%)",
		path, worst, worstAt, benchRegressionPct)
	if worstAt == "" {
		note = fmt.Sprintf("vs baseline %s: no overlapping kernel points", path)
	}
	if worst > benchRegressionPct {
		return []string{note}, fmt.Errorf("harness: bench regression: ops/s dropped %.1f%% at %s (gate: %.0f%%)",
			worst, worstAt, benchRegressionPct)
	}
	return []string{note}, nil
}

// measureKernel times ops calls of run, returning throughput, latency
// quantiles, and heap churn per op.
func measureKernel(ops int, run func() error) (BenchPoint, error) {
	lat := make([]time.Duration, ops)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		t0 := time.Now()
		if err := run(); err != nil {
			return BenchPoint{}, err
		}
		lat[i] = time.Since(t0)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		i := int(p * float64(ops-1))
		return float64(lat[i]) / float64(time.Microsecond)
	}
	return BenchPoint{
		Ops:         ops,
		OpsPerSec:   float64(ops) / elapsed.Seconds(),
		P50Micros:   q(0.50),
		P99Micros:   q(0.99),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
	}, nil
}

// Bench measures the table-build and recover kernels at 1 KiB values
// in basic mode (the ISSUE-5 baseline configuration) across worker
// counts, and writes the JSON report to opt.BenchOut if set.
func Bench(opt Options) (*Table, error) {
	valueSize := 1024
	buildOps := 300
	recoverWindows := 6
	window := 32
	if opt.Quick {
		valueSize = 64
		buildOps = 30
		recoverWindows = 2
		window = 8
	}
	cfg := core.LBLConfig{ValueSize: valueSize, Mode: core.LBLBasic}

	report := BenchReport{
		ValueSize:  valueSize,
		Mode:       cfg.Mode.String(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	if report.NumCPU < 8 {
		report.Note = fmt.Sprintf("only %d CPU(s) available: multi-worker points measure goroutine overhead, not parallel speedup; regenerate on >=8 cores for the scaling claim", report.NumCPU)
	}

	// Worker counts above GOMAXPROCS cannot run in parallel; raise the
	// limit for the duration so an 8-worker point on an 8-core box
	// actually uses 8 cores.
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	for _, workers := range benchWorkerCounts {
		if workers > prevProcs {
			runtime.GOMAXPROCS(workers)
		}
		k, err := core.NewTableBuildKernel(cfg, workers)
		if err != nil {
			return nil, err
		}
		k.Op() // warm the writer pool and page in the table
		pt, err := measureKernel(buildOps, k.Op)
		if err != nil {
			return nil, err
		}
		pt.Workers = workers
		report.TableBuild = append(report.TableBuild, pt)

		rk, err := core.NewRecoverKernel(cfg, window, workers)
		if err != nil {
			return nil, err
		}
		rlat := make([]BenchPoint, 0, recoverWindows)
		for w := 0; w < recoverWindows; w++ {
			if err := rk.Prepare(); err != nil {
				return nil, err
			}
			rp, err := measureKernel(rk.Window(), rk.Op)
			if err != nil {
				return nil, err
			}
			rlat = append(rlat, rp)
		}
		// Merge the windows: total ops over total time, worst quantiles.
		var merged BenchPoint
		merged.Workers = workers
		var totalSec float64
		for _, rp := range rlat {
			merged.Ops += rp.Ops
			totalSec += float64(rp.Ops) / rp.OpsPerSec
			merged.BytesPerOp += rp.BytesPerOp * float64(rp.Ops)
			merged.AllocsPerOp += rp.AllocsPerOp * float64(rp.Ops)
			if rp.P50Micros > merged.P50Micros {
				merged.P50Micros = rp.P50Micros
			}
			if rp.P99Micros > merged.P99Micros {
				merged.P99Micros = rp.P99Micros
			}
		}
		merged.OpsPerSec = float64(merged.Ops) / totalSec
		merged.BytesPerOp /= float64(merged.Ops)
		merged.AllocsPerOp /= float64(merged.Ops)
		report.Recover = append(report.Recover, merged)
		runtime.GOMAXPROCS(prevProcs)
	}

	if len(report.TableBuild) >= 3 && report.TableBuild[0].OpsPerSec > 0 {
		report.TableBuildSpeedup8w = report.TableBuild[2].OpsPerSec / report.TableBuild[0].OpsPerSec
	}

	// End-to-end streamed-vs-monolithic point at a size where one table
	// is a meaningful wire payload but the pair still runs in seconds.
	streamValue, streamRounds := 4096, 3
	if opt.Quick {
		streamValue, streamRounds = 1024, 2
	}
	sb, err := measureStreamBench(streamValue, streamRounds)
	if err != nil {
		return nil, fmt.Errorf("stream point: %w", err)
	}
	report.Stream = &sb

	if opt.BenchOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return nil, err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(opt.BenchOut, blob, 0o644); err != nil {
			return nil, err
		}
	}

	t := &Table{
		ID:      "bench",
		Title:   fmt.Sprintf("LBL kernel microbenchmarks (%dB values, %s)", valueSize, report.Mode),
		Columns: []string{"kernel", "workers", "ops/s", "p50 us", "p99 us", "B/op", "allocs/op"},
	}
	for _, pt := range report.TableBuild {
		t.AddRow("table-build", fmt.Sprint(pt.Workers), fmt.Sprintf("%.0f", pt.OpsPerSec),
			fmt.Sprintf("%.0f", pt.P50Micros), fmt.Sprintf("%.0f", pt.P99Micros),
			fmt.Sprintf("%.0f", pt.BytesPerOp), fmt.Sprintf("%.1f", pt.AllocsPerOp))
	}
	for _, pt := range report.Recover {
		t.AddRow("recover", fmt.Sprint(pt.Workers), fmt.Sprintf("%.0f", pt.OpsPerSec),
			fmt.Sprintf("%.0f", pt.P50Micros), fmt.Sprintf("%.0f", pt.P99Micros),
			fmt.Sprintf("%.0f", pt.BytesPerOp), fmt.Sprintf("%.1f", pt.AllocsPerOp))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("table-build speedup 8w vs 1w: %.2fx on %d CPU(s)", report.TableBuildSpeedup8w, report.NumCPU),
		fmt.Sprintf("stream point (%dB values, %d chunks): monolithic %.1f ms/op vs streamed %.1f ms/op = %.2fx on the calibrated link",
			sb.ValueSize, sb.Chunks, sb.MonoMsPerOp, sb.StreamMsPerOp, sb.Speedup))
	if report.Note != "" {
		t.Notes = append(t.Notes, report.Note)
	}
	if opt.BenchBaseline != "" {
		notes, err := compareBenchBaseline(opt.BenchBaseline, report)
		t.Notes = append(t.Notes, notes...)
		if err != nil {
			// Render the table before failing so the regressed numbers are
			// visible in the CI log, not just the error line.
			t.Render(os.Stderr) //nolint:errcheck
			return nil, err
		}
	}
	return t, nil
}
