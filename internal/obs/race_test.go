package obs

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestConcurrentHammer drives one histogram, counter, and gauge from
// many goroutines at once. Under `go test -race` (the Makefile's
// verify target) this proves the hot path is contention-free by
// construction: Observe/Add/Set are single atomic operations with no
// mutex, so the race detector sees only atomics and the final counts
// must be exact.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	g := r.Gauge("hammer_inflight", "")
	h := r.Histogram("hammer_seconds", "")
	l := r.SlowLog("hammer", 16)

	workers := 4 * runtime.GOMAXPROCS(0)
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				d := time.Duration(i%1000+1) * time.Microsecond
				h.Observe(d)
				if l.Worthy(d) {
					l.Record(Trace{Total: d, Label: "w", Stages: []Stage{{Name: "s", D: d}}})
				}
				g.Dec()
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers) * perWorker
	if got := c.Value(); got != total {
		t.Fatalf("counter = %d, want %d (lost updates)", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != uint64(total) {
		t.Fatalf("histogram count = %d, want %d (lost updates)", got, total)
	}
	// Bucket sums must equal the count: no torn bucket updates.
	var bucketSum uint64
	for i := range h.buckets {
		bucketSum += h.buckets[i].Load()
	}
	if bucketSum != uint64(total) {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, total)
	}
	if l.Len() != 16 {
		t.Fatalf("slowlog retained %d, want 16", l.Len())
	}
	// All retained traces must be from the slow tail.
	for _, e := range l.Entries() {
		if e.Total < 900*time.Microsecond {
			t.Fatalf("slowlog retained fast request %v", e.Total)
		}
	}
}

// TestConcurrentScrape scrapes the registry while writers are active:
// exposition must never race with hot-path updates.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("scrape_seconds", "")
	c := r.Counter("scrape_total", "")
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					h.Observe(time.Microsecond)
					c.Inc()
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := r.WritePrometheus(discard{}); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
