package obs

import (
	"fmt"
	"sync"
	"time"
)

// A ShapeAuditor continuously verifies ORTOA's transcript-shape
// invariant in a live deployment: every access frame of a given
// message type and class (for batches, the batch size) must be
// byte-identical in length, whichever operation — read or write — it
// carries. The unit tests pin this property for fixed workloads; the
// auditor turns it into a production alarm by watching every frame a
// proxy or server actually exchanges.
//
// The auditor records per-message-type frame counts and length
// distributions for all traffic, and additionally pins the first
// observed length of each (direction, message type, class) marked
// strict by the classifier. Any later frame of the same class with a
// different length increments ortoa_obliviousness_shape_violations_total
// and fails the process's /healthz — a length divergence means the
// deployment is leaking information the protocol promises to hide, and
// should page someone.
type ShapeAuditor struct {
	violations *Counter
	reg        *Registry
	proc       string

	mu            sync.Mutex
	pinned        map[shapeClass]int // first-seen payload length per strict class
	frames        map[shapeSeries]*Counter
	lengths       map[shapeSeries]*Histogram
	lastViolation string
}

type shapeClass struct {
	dir     string
	msgType byte
	class   uint64
}

type shapeSeries struct {
	dir     string
	msgType byte
}

// NewShapeAuditor returns an auditor exporting its counters under the
// given process label ("proxy" or "server") and registering a
// shape_<proc> health check that fails once any violation is seen.
// Returns nil on a nil registry; a nil auditor ignores all frames.
func NewShapeAuditor(reg *Registry, proc string) *ShapeAuditor {
	if reg == nil {
		return nil
	}
	a := &ShapeAuditor{
		violations: reg.Counter(
			fmt.Sprintf(`ortoa_obliviousness_shape_violations_total{proc=%q}`, proc),
			"access frames whose length diverged from their class's pinned length (any nonzero value is an information leak)"),
		reg:     reg,
		proc:    proc,
		pinned:  make(map[shapeClass]int),
		frames:  make(map[shapeSeries]*Counter),
		lengths: make(map[shapeSeries]*Histogram),
	}
	reg.Health("shape_"+proc, func() error {
		if n := a.violations.Value(); n > 0 {
			a.mu.Lock()
			last := a.lastViolation
			a.mu.Unlock()
			return fmt.Errorf("%d obliviousness shape violation(s); last: %s", n, last)
		}
		return nil
	})
	return a
}

// Observe records one frame payload: dir is "in" or "out" from this
// process's point of view, class partitions frames that are allowed to
// differ in length (batch size), and strict marks frames whose length
// the protocol requires to be constant within the class. Non-strict
// frames only feed the count/length distributions.
func (a *ShapeAuditor) Observe(dir string, msgType byte, class uint64, strict bool, length int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	series := shapeSeries{dir, msgType}
	c := a.frames[series]
	if c == nil {
		c = a.reg.Counter(
			fmt.Sprintf(`ortoa_shape_frames_total{proc=%q,type="0x%02x",dir=%q}`, a.proc, msgType, dir),
			"frames observed by the shape auditor, by message type and direction")
		a.frames[series] = c
		// Lengths ride the histogram's nanosecond scale as plain byte
		// counts — the buckets are log2 either way.
		a.lengths[series] = a.reg.Histogram(
			fmt.Sprintf(`ortoa_shape_frame_bytes{proc=%q,type="0x%02x",dir=%q}`, a.proc, msgType, dir),
			"payload length distribution, in bytes on the bucket scale")
	}
	h := a.lengths[series]
	var violated string
	if strict {
		key := shapeClass{dir, msgType, class}
		if pinned, ok := a.pinned[key]; !ok {
			a.pinned[key] = length
		} else if pinned != length {
			violated = fmt.Sprintf("proc=%s dir=%s type=0x%02x class=%d: length %d != pinned %d",
				a.proc, dir, msgType, class, length, pinned)
			a.lastViolation = violated
		}
	}
	a.mu.Unlock()
	c.Inc()
	h.Observe(time.Duration(length))
	if violated != "" {
		a.violations.Inc()
	}
}

// Violations returns the number of shape violations seen so far (0 for
// nil).
func (a *ShapeAuditor) Violations() int64 {
	if a == nil {
		return 0
	}
	return a.violations.Value()
}
