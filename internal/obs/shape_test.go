package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestShapeAuditorNilRegistry(t *testing.T) {
	if aud := NewShapeAuditor(nil, "proxy"); aud != nil {
		t.Fatal("nil registry must yield a nil (no-op) auditor")
	}
	var aud *ShapeAuditor
	aud.Observe("in", 0x02, 0, true, 100) // must not panic
	if aud.Violations() != 0 {
		t.Fatal("nil auditor must report zero violations")
	}
}

func TestShapeAuditorPinsPerClass(t *testing.T) {
	reg := NewRegistry()
	aud := NewShapeAuditor(reg, "server")

	// Same class, same length: no violation however many frames.
	for i := 0; i < 10; i++ {
		aud.Observe("in", 0x02, 0, true, 4096)
	}
	// A different class may have a different length.
	aud.Observe("in", 0x0B, 4, true, 16384)
	aud.Observe("in", 0x0B, 4, true, 16384)
	// Same msgType, different direction: independent pin.
	aud.Observe("out", 0x02, 0, true, 640)
	if got := aud.Violations(); got != 0 {
		t.Fatalf("uniform lengths produced %d violations, want 0", got)
	}

	// A length divergence within a pinned class is a violation.
	aud.Observe("in", 0x02, 0, true, 4097)
	if got := aud.Violations(); got != 1 {
		t.Fatalf("divergent length produced %d violations, want 1", got)
	}
	// Non-strict observations never violate, whatever their length.
	aud.Observe("in", 0x07, 0, false, 1)
	aud.Observe("in", 0x07, 0, false, 999)
	if got := aud.Violations(); got != 1 {
		t.Fatalf("non-strict frames changed the count to %d, want 1", got)
	}
}

func TestShapeAuditorFailsHealthz(t *testing.T) {
	reg := NewRegistry()
	aud := NewShapeAuditor(reg, "server")
	mux := AdminMux(reg)

	get := func() (int, string) {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get(); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("clean auditor: /healthz = %d %q, want 200 ok", code, body)
	}

	aud.Observe("in", 0x02, 0, true, 100)
	aud.Observe("in", 0x02, 0, true, 101)
	code, body := get()
	if code != 503 {
		t.Fatalf("/healthz after violation = %d, want 503", code)
	}
	if !strings.Contains(body, "shape_server") {
		t.Fatalf("/healthz body %q must name the failing shape_server check", body)
	}
	if !strings.Contains(body, "0x02") {
		t.Fatalf("/healthz body %q must describe the violating message type", body)
	}

	// The violations counter is exported for scraping.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `ortoa_obliviousness_shape_violations_total{proc="server"} 1`) {
		t.Fatalf("/metrics missing violations counter:\n%s", sb.String())
	}
}

func TestShapeAuditorConcurrent(t *testing.T) {
	reg := NewRegistry()
	aud := NewShapeAuditor(reg, "proxy")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				aud.Observe("in", byte(w%3), uint64(w%2), true, 512+(w%3)*16)
				aud.Observe("out", byte(w%3), uint64(w%2), false, i)
			}
		}(w)
	}
	wg.Wait()
	// Each (dir=in, msgType, class) combination above has exactly one
	// length, so concurrency alone must not manufacture violations.
	if got := aud.Violations(); got != 0 {
		t.Fatalf("concurrent uniform observations produced %d violations", got)
	}
}
