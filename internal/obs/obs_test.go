package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("inflight", "in-flight")
	if got := g.Inc(); got != 1 {
		t.Fatalf("Inc = %d, want 1", got)
	}
	g.Set(10)
	g.Dec()
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want 9", got)
	}
}

func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond} {
		h.Observe(d)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Mean(); got != 3*time.Millisecond {
		t.Fatalf("mean = %v, want 3ms", got)
	}
	if got := h.Sum(); got != 9*time.Millisecond {
		t.Fatalf("sum = %v, want 9ms", got)
	}
}

func TestHistogramQuantileWithinBucketError(t *testing.T) {
	var h Histogram
	// 1000 samples at exactly 1ms: every quantile must land in the
	// bucket containing 1ms, i.e. within a factor of 2.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	for _, p := range []float64{0.5, 0.95, 0.99} {
		q := h.Quantile(p)
		if q < 512*time.Microsecond || q > 2*time.Millisecond {
			t.Fatalf("quantile(%v) = %v, want within 2x of 1ms", p, q)
		}
	}
	if h.Quantile(0.5) > h.Quantile(0.99)+1 {
		t.Fatal("quantiles are not monotone")
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("sum = %v, want 0 (negative clamped)", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x", "")
	l := r.SlowLog("x", 8)
	if c != nil || g != nil || h != nil || l != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Second)
	h.Since(time.Now())
	if l.Worthy(time.Hour) {
		t.Fatal("nil slowlog admitted a trace")
	}
	l.Record(Trace{Total: time.Hour})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || l.Len() != 0 {
		t.Fatal("nil metrics must stay zero")
	}
	r.CounterFunc("f", "", func() int64 { return 1 })
	r.GaugeFunc("f", "", func() int64 { return 1 })
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledPathAllocationFree locks down the acceptance criterion
// that uninstrumented hot paths allocate nothing: nil metric updates
// and disabled stopwatch laps must be alloc-free (and, for the
// stopwatch, clock-read-free — not measurable here, but the branch
// structure is).
func TestDisabledPathAllocationFree(t *testing.T) {
	var c *Counter
	var h *Histogram
	var l *SlowLog
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(time.Millisecond)
		sw := StartWatch(false)
		sw.Lap(h)
		l.Worthy(time.Second)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f per op, want 0", allocs)
	}
}

// TestEnabledHotPathAllocationFree proves the instrumented fast path
// is allocation-free too: histogram observes and counter adds are
// atomic ops on pre-allocated cells.
func TestEnabledHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h_seconds", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		h.Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f per op, want 0", allocs)
	}
}

func TestStopwatchLaps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("stage_seconds", "")
	sw := StartWatch(true)
	time.Sleep(2 * time.Millisecond)
	d := sw.Lap(h)
	if d < time.Millisecond {
		t.Fatalf("lap = %v, want >= 1ms", d)
	}
	if h.Count() != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count())
	}
	off := StartWatch(false)
	if got := off.Lap(h); got != 0 {
		t.Fatalf("disabled lap = %v, want 0", got)
	}
	if h.Count() != 1 {
		t.Fatal("disabled lap recorded a sample")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(`frames_total{dir="in"}`, "frames by direction").Add(7)
	r.Counter(`frames_total{dir="out"}`, "frames by direction").Add(9)
	r.Gauge("inflight", "in-flight calls").Set(3)
	r.GaugeFunc("records", "record count", func() int64 { return 42 })
	h := r.Histogram(`stage_seconds{stage="build"}`, "stage latency")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE frames_total counter",
		`frames_total{dir="in"} 7`,
		`frames_total{dir="out"} 9`,
		"# TYPE inflight gauge",
		"inflight 3",
		"records 42",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="build",le="+Inf"} 2`,
		`stage_seconds_count{stage="build"} 2`,
		`stage_seconds_sum{stage="build"} 0.003`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even with two labelled series.
	if got := strings.Count(out, "# TYPE frames_total"); got != 1 {
		t.Errorf("frames_total TYPE lines = %d, want 1", got)
	}
}

func TestSlowLogRetainsSlowest(t *testing.T) {
	r := NewRegistry()
	l := r.SlowLog("access", 4)
	for i := 1; i <= 10; i++ {
		total := time.Duration(i) * time.Millisecond
		if l.Worthy(total) {
			l.Record(Trace{At: time.Now(), Label: "req", Total: total,
				Stages: []Stage{{Name: "build", D: total / 2}, {Name: "rpc", D: total / 2}}})
		}
	}
	entries := l.Entries()
	if len(entries) != 4 {
		t.Fatalf("retained %d, want 4", len(entries))
	}
	wants := []time.Duration{10, 9, 8, 7}
	for i, want := range wants {
		if entries[i].Total != want*time.Millisecond {
			t.Fatalf("entry %d = %v, want %vms", i, entries[i].Total, want)
		}
	}
	// Once full, the floor rejects faster requests without locking.
	if l.Worthy(3 * time.Millisecond) {
		t.Fatal("slowlog should reject below-floor totals")
	}
	if l.Worthy(7 * time.Millisecond) {
		t.Fatal("floor is inclusive: equal totals are rejected")
	}
	if !l.Worthy(11 * time.Millisecond) {
		t.Fatal("slowlog should admit a new slowest")
	}
}

func TestAdminEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total", "ops").Add(5)
	h := r.Histogram("lat_seconds", "latency")
	h.Observe(time.Millisecond)
	l := r.SlowLog("access", 4)
	l.Record(Trace{At: time.Now(), Label: "k", Total: time.Second,
		Stages: []Stage{{Name: "rpc", D: time.Second}}})

	ts := httptest.NewServer(AdminMux(r))
	defer ts.Close()

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("healthz = %q", body)
	}
	metrics := get("/metrics")
	for _, want := range []string{"ops_total 5", "lat_seconds_count 1"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	slow := get("/slowlog")
	for _, want := range []string{"access", "total=1s", "rpc=1s"} {
		if !strings.Contains(slow, want) {
			t.Errorf("slowlog missing %q:\n%s", want, slow)
		}
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("pprof index missing goroutine profile")
	}
}

func TestServeAdmin(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	srv, err := ServeAdmin("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
